// Figure 3: hop-number of the delay-optimal path, normalized by ln(N),
// as a function of the contact rate lambda -- theory curves for short
// and long contacts, validated by Monte-Carlo simulation of random
// temporal networks.
//
// The paper's qualitative claims checked here:
//  * both curves tend to 1 as lambda -> 0 (k ~ ln N in sparse networks),
//  * they agree in sparse and dense regimes,
//  * the long-contact curve has a singularity at lambda = 1.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "random/phase_transition.hpp"
#include "random/theory.hpp"
#include "util/csv.hpp"

using namespace odtn;

int main(int argc, char** argv) {
  bench::banner("Figure 3",
                "hop-number of the delay-optimal path vs contact rate");

  // Theory curves.
  std::vector<double> lambdas;
  for (double l = 0.05; l <= 4.001; l += 0.05) lambdas.push_back(l);

  CsvWriter csv(bench::csv_path("fig03_hop_number"));
  csv.write_row({"lambda", "theory_short", "theory_long", "mc_short",
                 "mc_short_stderr", "mc_long", "mc_long_stderr"});

  PlotSeries short_theory{"short contacts (theory)", {}, {}};
  PlotSeries long_theory{"long contacts (theory)", {}, {}};
  for (double l : lambdas) {
    short_theory.x.push_back(l);
    short_theory.y.push_back(hop_constant_short(l));
    if (std::abs(l - 1.0) > 0.02) {  // singularity at lambda = 1
      long_theory.x.push_back(l);
      long_theory.y.push_back(std::min(hop_constant_long(l), 5.0));
    }
  }

  // Monte-Carlo validation at a few rates, through the deterministic
  // parallel harness: every (lambda, contact-case) run gets its own
  // seed, each trial its own keyed stream. The whole set runs twice --
  // 1 thread and --threads N -- and the bench exits non-zero unless the
  // per-trial outcomes match bit-for-bit (bench_perf_engine pattern),
  // which also keeps the CSV identical across thread counts.
  const std::size_t n = 3000;
  const std::size_t trials = 60;
  const std::size_t max_slots = 60000;
  const unsigned num_threads = bench::parse_threads(argc, argv);
  constexpr std::uint64_t kSeed = 0xF163;
  PlotSeries short_mc{"short contacts (simulated, N=3000)", {}, {}};
  PlotSeries long_mc{"long contacts (simulated, N=3000)", {}, {}};

  int determinism_failures = 0;
  double serial_ms = 0.0, parallel_ms = 0.0;
  const auto measure_gated = [&](double lambda, ContactCase mode,
                                 std::uint64_t seed) {
    const auto serial =
        measure_delay_optimal(n, lambda, mode, trials, max_slots, {seed, 1});
    auto parallel = measure_delay_optimal(n, lambda, mode, trials, max_slots,
                                          {seed, num_threads});
    serial_ms += serial.mc.wall_ms;
    parallel_ms += parallel.mc.wall_ms;
    for (std::size_t i = 0; i < trials; ++i) {
      if (serial.trials[i].reached != parallel.trials[i].reached ||
          serial.trials[i].delay_over_log_n !=
              parallel.trials[i].delay_over_log_n ||
          serial.trials[i].hops_over_log_n !=
              parallel.trials[i].hops_over_log_n)
        ++determinism_failures;
    }
    return parallel;
  };

  std::printf("%-8s %-13s %-19s %-13s %-19s\n", "lambda", "theory", "MC mean",
              "theory", "MC mean");
  std::printf("%-8s %-33s %-33s\n", "", "---- short contacts ----",
              "---- long contacts ----");
  std::size_t rate_index = 0;
  for (double l : {0.1, 0.25, 0.5, 1.0, 1.5, 2.5, 4.0}) {
    const auto s = measure_gated(l, ContactCase::kShort,
                                 kSeed + 2 * rate_index);
    const auto g = measure_gated(l, ContactCase::kLong,
                                 kSeed + 2 * rate_index + 1);
    ++rate_index;
    const double ms = s.hops_over_log_n.mean();
    const double ml = g.hops_over_log_n.mean();
    short_mc.x.push_back(l);
    short_mc.y.push_back(ms);
    long_mc.x.push_back(l);
    long_mc.y.push_back(ml);
    const double th_l = hop_constant_long(l);
    std::printf("%-8.2f %-13.3f %.3f +/- %-11.3f %-13.3f %.3f +/- %-11.3f\n",
                l, hop_constant_short(l), ms, s.hops_over_log_n.stderr_mean(),
                th_l > 99 ? 99.0 : th_l, ml, g.hops_over_log_n.stderr_mean());
    csv.write_numeric_row({l, hop_constant_short(l), th_l, ms,
                           s.hops_over_log_n.stderr_mean(), ml,
                           g.hops_over_log_n.stderr_mean()});
  }

  PlotOptions opt;
  opt.x_label = "contact rate lambda";
  opt.y_label = "k / ln(N), delay-optimal path";
  std::printf("%s",
              render_ascii_plot(
                  {short_theory, long_theory, short_mc, long_mc}, opt)
                  .c_str());

  std::printf(
      "\nPaper check: both curves -> 1 as lambda -> 0; short and long agree\n"
      "away from lambda = 1, where the long-contact case has its "
      "singularity.\n");
  std::printf("[csv] wrote %s\n", bench::csv_path("fig03_hop_number").c_str());

  bench::write_mc_timing_csv("fig03_mc_timing",
                             {{1u, serial_ms},
                              {shared_thread_pool().num_workers(),
                               parallel_ms}});
  std::printf("  wall-clock: 1 thread %.1f ms, parallel %.1f ms (%.2fx)\n",
              serial_ms, parallel_ms,
              serial_ms / std::max(parallel_ms, 1e-9));
  if (!bench::check(determinism_failures == 0,
                    "MC per-trial outcomes bit-identical across thread "
                    "counts")) {
    std::printf("\n%d trial(s) diverged between thread counts\n",
                determinism_failures);
    return 1;
  }
  return 0;
}
