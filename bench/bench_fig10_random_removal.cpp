// Figure 10: empirical CDF of minimum delay when contacts are removed
// uniformly at random (Infocom06, second day): original trace, 10% of
// contacts remaining (p = 0.9) and 1% remaining (p = 0.99), averaged
// over 5 independent removals.
//
// Paper claims checked: removing contacts collapses success at small
// time scales (35% -> 0.2% within 10 minutes at p = 0.99; ~90% -> ~5%
// within 6 hours) while the diameter stays small (<= 5), and the
// multi-hop improvement shifts from small to large time scales.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/log_grid.hpp"
#include "trace/datasets.hpp"
#include "trace/transforms.hpp"
#include "util/rng.hpp"

using namespace odtn;

namespace {

TemporalGraph infocom06_day2() {
  const auto trace = dataset_infocom06().generate();
  const auto internal =
      keep_internal_contacts(trace.graph, trace.num_internal);
  return restrict_time_window(internal, 1.0 * kDay, 2.0 * kDay);
}

DelayCdfOptions day2_options(const TemporalGraph& g) {
  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kDay, 40);
  opt.max_hops = 12;
  opt.t_lo = g.start_time();
  opt.t_hi = g.end_time();
  return opt;
}

/// Averages CDFs over `runs` independent removals.
DelayCdfResult averaged_removal(const TemporalGraph& base, double p,
                                int runs, Rng& rng) {
  DelayCdfResult total;
  for (int r = 0; r < runs; ++r) {
    auto thinned = remove_contacts_random(base, p, rng);
    auto opt = day2_options(base);  // window pinned to the ORIGINAL trace
    const auto result = compute_delay_cdf(thinned, opt);
    if (r == 0) {
      total = result;
    } else {
      for (std::size_t k = 0; k < total.cdf_by_hops.size(); ++k)
        for (std::size_t j = 0; j < total.grid.size(); ++j)
          total.cdf_by_hops[k][j] += result.cdf_by_hops[k][j];
      for (std::size_t j = 0; j < total.grid.size(); ++j)
        total.cdf_unbounded[j] += result.cdf_unbounded[j];
      total.fixpoint_hops = std::max(total.fixpoint_hops,
                                     result.fixpoint_hops);
    }
  }
  for (std::size_t k = 0; k < total.cdf_by_hops.size(); ++k)
    for (std::size_t j = 0; j < total.grid.size(); ++j)
      total.cdf_by_hops[k][j] /= runs;
  for (std::size_t j = 0; j < total.grid.size(); ++j)
    total.cdf_unbounded[j] /= runs;
  return total;
}

double cdf_at(const DelayCdfResult& r, double delay) {
  std::size_t j = 0;
  while (j + 1 < r.grid.size() && r.grid[j] < delay) ++j;
  return r.cdf_unbounded[j];
}

}  // namespace

int main() {
  bench::banner("Figure 10",
                "CDF of minimum delay under random contact removal "
                "(Infocom06 day 2, 5 runs)");
  const auto base = infocom06_day2();
  std::printf("base trace: %zu contacts among %zu devices\n",
              base.num_contacts(), base.num_nodes());

  Rng rng(0xF16A);
  const std::vector<int> shown{1, 2, 3, 4, 5, kUnboundedHops};
  struct Variant {
    const char* name;
    double p;
  };
  for (const Variant& v : {Variant{"(a) original data set", 0.0},
                          Variant{"(b) 10% of contacts remaining", 0.9},
                          Variant{"(c) 1% of contacts remaining", 0.99}}) {
    const auto result =
        v.p == 0.0 ? compute_delay_cdf(base, day2_options(base))
                   : averaged_removal(base, v.p, 5, rng);
    std::printf("\n--- %s ---\n", v.name);
    bench::print_cdf_table(result, shown);
    bench::plot_cdf_family(result, shown, v.name);
    std::printf("P[success within 10 min] = %5.2f%%   "
                "P[success within 6 h] = %5.2f%%\n",
                100.0 * cdf_at(result, 10 * kMinute),
                100.0 * cdf_at(result, 6 * kHour));
    std::printf("diameter: %d hops at strict 99%%-of-flooding; %d hops "
                "within 0.01 absolute of flooding (plot resolution)\n",
                result.diameter(0.01), result.diameter_absolute(0.01));
    bench::write_cdf_csv(std::string("fig10_p") + std::to_string(v.p), result,
                         shown, v.name);
  }

  std::printf(
      "\nPaper check: success within 10 minutes collapses by orders of\n"
      "magnitude as 99%% of contacts are removed, success within 6 hours\n"
      "drops from ~90%% to a few percent -- but the diameter stays small\n"
      "(the <=5-hop curve is within plot resolution of flooding, which is\n"
      "how the paper's figure reads), and the multi-hop gain moves from\n"
      "small to large time scales. The strict 99%%-ratio criterion is\n"
      "noisier after removal because flooding success itself drops to a\n"
      "fraction of a percent at small time scales.\n");
  return 0;
}
