// Figure 9: CDF of the optimal transmission delay over all source-
// destination pairs and all start times, for hop budgets 1..k and
// unbounded -- Infocom05 (a), Reality Mining (b), Hong-Kong (c) -- plus
// the 99%-diameter reported under each subfigure.
//
// Paper values: diameter 5 (Infocom05), 4 (Reality Mining),
// 6 (Hong-Kong); the 4-6 hop CDF is visually indistinguishable from
// unbounded flooding at every time scale; Infocom05 is far better
// connected at small delays than the two sparse data sets.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/log_grid.hpp"
#include "trace/datasets.hpp"
#include "trace/transforms.hpp"

using namespace odtn;

namespace {

void run_dataset(const DatasetPreset& preset, int paper_diameter,
                 bool use_external) {
  const auto trace = preset.generate();
  TemporalGraph graph = use_external
                            ? trace.graph
                            : keep_internal_contacts(trace.graph,
                                                     trace.num_internal);
  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kWeek, 48);
  opt.max_hops = 12;
  if (use_external) opt.endpoints = trace.internal_nodes();

  const auto result = compute_delay_cdf(graph, opt);
  const int diameter = result.diameter(0.01);

  std::printf("\n--- %s (%zu devices, %zu contacts%s) ---\n",
              preset.spec.name.c_str(), trace.num_internal,
              graph.num_contacts(),
              use_external ? ", incl. external relays" : ", internal only");
  const std::vector<int> shown{1, 2, 3, 4, 6, kUnboundedHops};
  bench::print_cdf_table(result, shown);
  bench::plot_cdf_family(result, shown, preset.spec.name);
  std::printf("Diameter (99%% of flooding success at every time scale): "
              "%d hops   [paper: %d]\n",
              diameter, paper_diameter);
  std::printf("No delay-optimal path in the whole trace uses more than %d "
              "hops (DP fixpoint).\n",
              result.fixpoint_hops);
  bench::write_cdf_csv("fig09_" + preset.spec.name, result, shown);
}

}  // namespace

int main() {
  bench::banner("Figure 9",
                "CDF of optimal delay, all pairs x all start times");
  run_dataset(dataset_infocom05(), 5, /*use_external=*/false);
  run_dataset(dataset_reality_mining(), 4, /*use_external=*/false);
  run_dataset(dataset_hong_kong(), 6, /*use_external=*/true);
  std::printf(
      "\nPaper check: diameters land in the paper's 3-6 hop band; the\n"
      "4-6 hop CDF hugs unbounded flooding at every time scale; the\n"
      "conference trace dominates at small delays while sparse traces\n"
      "only catch up at the multi-hour scale.\n");
  return 0;
}
