// Figure 2: phase transition boundary, LONG contact case.
//
// Plots gamma * ln(lambda) + g(gamma) over gamma for lambda in
// {0.5, 1.0, 1.5}. For lambda < 1 the curve peaks at
// gamma* = lambda/(1-lambda) with maximum -ln(1-lambda); for lambda >= 1
// it is increasing and unbounded (the almost-simultaneous giant
// component regime).
// A Monte-Carlo section validates the long-contact dichotomy through
// the deterministic parallel harness (1-thread vs N-thread outcomes are
// gated bit-identical; divergence exits non-zero).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "random/phase_transition.hpp"
#include "random/theory.hpp"
#include "stats/log_grid.hpp"
#include "util/csv.hpp"

using namespace odtn;

int main(int argc, char** argv) {
  const unsigned num_threads = bench::parse_threads(argc, argv);
  bench::banner("Figure 2",
                "phase transition boundary gamma*ln(lambda)+g(gamma), "
                "long contacts");

  const std::vector<double> lambdas{0.5, 1.0, 1.5};
  const auto gammas = make_linear_grid(0.001, 3.0, 91);

  CsvWriter csv(bench::csv_path("fig02_phase_long"));
  csv.write_row({"gamma", "lambda", "rate"});

  std::vector<PlotSeries> series;
  for (double lambda : lambdas) {
    PlotSeries s;
    char label[64];
    std::snprintf(label, sizeof label, "lambda = %.1f", lambda);
    s.label = label;
    for (double g : gammas) {
      const double rate = rate_long(g, lambda);
      s.x.push_back(g);
      s.y.push_back(rate);
      csv.write_numeric_row({g, lambda, rate});
    }
    series.push_back(std::move(s));
  }

  PlotOptions opt;
  opt.x_label = "gamma (hops per slot of delay budget)";
  opt.y_label = "gamma*ln(lambda) + g(gamma)";
  std::printf("%s", render_ascii_plot(series, opt).c_str());

  std::printf("\n%-8s %-24s %-26s %-20s\n", "lambda", "gamma* = l/(1-l)",
              "max M = -ln(1-lambda)", "critical tau");
  for (double lambda : lambdas) {
    if (lambda < 1.0) {
      std::printf("%-8.2f %-24.4f %-26.4f %-20.4f\n", lambda,
                  gamma_star_long(lambda), max_rate_long(lambda),
                  delay_constant_long(lambda));
    } else {
      std::printf("%-8.2f %-24s %-26s %-20s\n", lambda, "unbounded",
                  "unbounded", "0 (any tau works)");
    }
  }
  std::printf(
      "\nPaper check: for lambda = 0.5 the curve peaks at gamma* = 1 with\n"
      "M = ln 2, so delay and hop count of the optimal path coincide\n"
      "(t ~ k ~ %.2f ln N, Section 3.2.3); for lambda > 1 the curve is\n"
      "increasing and unbounded, hence paths exist for arbitrarily small "
      "tau.\n",
      delay_constant_long(0.5));
  std::printf("[csv] wrote %s\n", bench::csv_path("fig02_phase_long").c_str());

  // -- Monte-Carlo validation of the long-contact dichotomy ------------
  struct Probe {
    const char* what;
    std::size_t n;
    double lambda, tau, gamma;
  };
  const std::size_t trials = 200;
  const std::vector<Probe> probes{
      {"lambda=0.5 subcritical (0.4 tau*)", 800, 0.5,
       0.4 * delay_constant_long(0.5), gamma_star_long(0.5)},
      {"lambda=0.5 supercritical (3 tau*)", 800, 0.5,
       3.0 * delay_constant_long(0.5), gamma_star_long(0.5)},
      {"lambda=2.0 tiny tau (giant component)", 800, 2.0, 0.35, 8.0},
  };
  std::printf("\n-- Monte-Carlo: long-contact path probability, %zu trials "
              "--\n", trials);
  int failures = 0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const Probe& p = probes[i];
    const std::uint64_t seed = 0xF102 + i;
    const auto serial = probe_path_probability(
        p.n, p.lambda, p.tau, p.gamma, ContactCase::kLong, trials, {seed, 1});
    const auto parallel =
        probe_path_probability(p.n, p.lambda, p.tau, p.gamma,
                               ContactCase::kLong, trials,
                               {seed, num_threads});
    std::printf("  %-40s P = %.3f\n", p.what, parallel.probability);
    if (serial.outcomes != parallel.outcomes) ++failures;
  }
  bench::check(failures == 0,
               "MC outcomes bit-identical on 1 thread vs default workers");
  if (failures) {
    std::printf("\n%d Monte-Carlo determinism check(s) FAILED\n", failures);
    return 1;
  }
  return 0;
}
