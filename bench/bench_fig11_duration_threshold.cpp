// Figure 11: empirical CDF of minimum delay when SHORT contacts are
// removed (Infocom06 day 2): thresholds 2, 10 and 30 minutes.
//
// Paper claims checked: the thresholds remove roughly 75% / 92% / 99% of
// contacts; unlike random removal of a comparable volume, keeping the
// longest contacts preserves much more small-delay success -- but at the
// cost of a LARGER diameter (5 -> 7 at the 10-minute threshold in the
// paper): short contacts are the bridges that keep the network's
// diameter small (§6.2).
#include <cstdio>

#include "bench_util.hpp"
#include "stats/log_grid.hpp"
#include "trace/datasets.hpp"
#include "trace/transforms.hpp"

using namespace odtn;

namespace {

DelayCdfOptions day2_options(const TemporalGraph& g) {
  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kDay, 40);
  opt.max_hops = 14;
  opt.t_lo = g.start_time();
  opt.t_hi = g.end_time();
  return opt;
}

double cdf_at(const DelayCdfResult& r, double delay) {
  std::size_t j = 0;
  while (j + 1 < r.grid.size() && r.grid[j] < delay) ++j;
  return r.cdf_unbounded[j];
}

}  // namespace

int main() {
  bench::banner("Figure 11",
                "CDF of minimum delay when short contacts are removed "
                "(Infocom06 day 2)");
  const auto trace = dataset_infocom06().generate();
  const auto internal =
      keep_internal_contacts(trace.graph, trace.num_internal);
  const auto base = restrict_time_window(internal, 1.0 * kDay, 2.0 * kDay);
  std::printf("base trace: %zu contacts among %zu devices\n",
              base.num_contacts(), base.num_nodes());

  const std::vector<int> shown{1, 2, 3, 4, 5, 7, kUnboundedHops};
  const auto base_result = compute_delay_cdf(base, day2_options(base));
  std::printf("\n--- original data set: diameter %d ---\n",
              base_result.diameter(0.01));

  for (double threshold : {2 * kMinute, 10 * kMinute, 30 * kMinute}) {
    // "contacts that last less than t are removed": one-scan contacts
    // have duration == granularity == 2 min, so the 2-minute threshold
    // uses a strict cut just above one scan.
    const double cut = threshold + 1.0;
    const auto filtered = remove_contacts_shorter_than(base, cut);
    const double removed = 100.0 * (1.0 - static_cast<double>(
                                              filtered.num_contacts()) /
                                              base.num_contacts());
    const auto result = compute_delay_cdf(filtered, day2_options(base));
    std::printf("\n--- contact durations > %s  (%.0f%% of contacts removed) "
                "---\n",
                format_duration(threshold).c_str(), removed);
    bench::print_cdf_table(result, shown);
    bench::plot_cdf_family(result, shown,
                           "durations > " + format_duration(threshold));
    std::printf("P[success within 10 min] = %5.2f%%   diameter = %d "
                "(original: %d); within plot resolution: %d "
                "(original: %d)\n",
                100.0 * cdf_at(result, 10 * kMinute), result.diameter(0.01),
                base_result.diameter(0.01), result.diameter_absolute(0.01),
                base_result.diameter_absolute(0.01));
    bench::write_cdf_csv(
        "fig11_gt_" + std::to_string(static_cast<int>(threshold / kMinute)) +
            "min",
        result, shown, format_duration(threshold));
  }

  std::printf(
      "\nPaper check: each threshold removes most contacts yet preserves\n"
      "far more short-delay success than random removal of the same\n"
      "volume (compare Figure 10); the diameter INCREASES when the short\n"
      "bridging contacts disappear -- opportunistic schemes should use\n"
      "short contacts not only because they are many, but because they\n"
      "keep the diameter small.\n");
  return 0;
}
