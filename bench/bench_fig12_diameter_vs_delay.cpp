// Figure 12: diameter (99% confidence) as a function of the delay
// constraint, for Infocom06 (day 2) and its duration-filtered variants
// (contacts > 10 min, contacts > 30 min).
//
// Paper claims checked: with a high contact rate the diameter DECREASES
// with delay; with a low rate (aggressively filtered trace) it
// INCREASES with delay; in between an intermediate regime shows a bump
// over a narrow range of time scales.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/log_grid.hpp"
#include "trace/datasets.hpp"
#include "trace/transforms.hpp"

using namespace odtn;

int main() {
  bench::banner("Figure 12", "diameter as a function of the delay budget");
  const auto trace = dataset_infocom06().generate();
  const auto internal =
      keep_internal_contacts(trace.graph, trace.num_internal);
  const auto base = restrict_time_window(internal, 1.0 * kDay, 2.0 * kDay);

  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, 12 * kHour, 40);
  opt.max_hops = 14;
  opt.t_lo = base.start_time();
  opt.t_hi = base.end_time();

  CsvWriter csv(bench::csv_path("fig12_diameter_vs_delay"));
  csv.write_row({"variant", "delay_seconds", "diameter"});

  struct Variant {
    std::string name;
    double threshold;  // 0 = original
  };
  std::vector<PlotSeries> series;
  std::printf("%-10s %18s %18s %18s\n", "delay", "Infocom06",
              "contacts > 10 min", "contacts > 30 min");
  std::vector<std::vector<int>> columns;
  std::vector<double> grid;
  for (const Variant& v :
       {Variant{"Infocom06", 0.0}, Variant{"contacts>10min", 10 * kMinute},
        Variant{"contacts>30min", 30 * kMinute}}) {
    const TemporalGraph g =
        v.threshold == 0.0
            ? base
            : remove_contacts_shorter_than(base, v.threshold + 1.0);
    const auto result = compute_delay_cdf(g, opt);
    const auto per_delay = result.diameter_per_delay(0.01);
    grid = result.grid;
    columns.push_back(per_delay);
    PlotSeries s{v.name, {}, {}};
    for (std::size_t j = 0; j < result.grid.size(); ++j) {
      s.x.push_back(result.grid[j]);
      s.y.push_back(per_delay[j]);
      csv.write_row({v.name, std::to_string(result.grid[j]),
                     std::to_string(per_delay[j])});
    }
    series.push_back(std::move(s));
  }
  for (std::size_t j = 0; j < grid.size(); j += 2) {
    std::printf("%-10s %18d %18d %18d\n", format_duration(grid[j]).c_str(),
                columns[0][j], columns[1][j], columns[2][j]);
  }

  PlotOptions popt;
  popt.log_x = true;
  popt.x_as_duration = true;
  popt.x_label = "delay budget";
  popt.y_label = "hops needed for 99% of flooding success";
  std::printf("%s", render_ascii_plot(series, popt).c_str());

  std::printf(
      "\nPaper check: the original (high contact rate) curve decreases\n"
      "with delay; the heavily filtered (low rate) trace needs MORE hops\n"
      "at larger delays; the intermediate filter bumps over a narrow\n"
      "range -- connected, but missing shortcuts between far-away nodes.\n");
  std::printf("[csv] wrote %s\n",
              bench::csv_path("fig12_diameter_vs_delay").c_str());
  return 0;
}
