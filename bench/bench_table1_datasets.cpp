// Table 1: characteristics of the four experimental data sets.
//
// Generates the four synthetic stand-ins and prints their measured
// characteristics next to the paper's reported values. Cells the paper
// reports but our copy renders illegibly are reconstructed (marked ~);
// the Reality Mining trace substitutes 90 days for 9 months with the
// contact count scaled to preserve the contact rate (see DESIGN.md).
#include <cstdio>

#include "bench_util.hpp"
#include "trace/datasets.hpp"
#include "util/csv.hpp"

using namespace odtn;

int main() {
  bench::banner("Table 1", "characteristics of the four data sets");
  CsvWriter csv(bench::csv_path("table1_datasets"));
  csv.write_row({"dataset", "metric", "paper", "generated"});

  const auto datasets = all_datasets();
  std::vector<SyntheticTrace> traces;
  traces.reserve(datasets.size());
  for (const auto& d : datasets) traces.push_back(d.generate());

  auto row = [&](const char* metric, auto paper_of, auto gen_of) {
    std::printf("%-34s", metric);
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      char cell[64];
      std::snprintf(cell, sizeof cell, "%s / %s",
                    paper_of(datasets[i]).c_str(), gen_of(traces[i]).c_str());
      std::printf(" %20s", cell);
      csv.write_row({datasets[i].spec.name, metric, paper_of(datasets[i]),
                     gen_of(traces[i])});
    }
    std::printf("\n");
  };
  auto num = [](double v) {
    char b[32];
    std::snprintf(b, sizeof b, "%.0f", v);
    return std::string(b);
  };
  auto num1 = [](double v) {
    char b[32];
    std::snprintf(b, sizeof b, "%.1f", v);
    return std::string(b);
  };

  std::printf("%-34s", "metric (paper / generated)");
  for (const auto& d : datasets) std::printf(" %20s", d.spec.name.c_str());
  std::printf("\n");
  std::printf("%s\n", std::string(34 + 21 * 4, '-').c_str());

  row("Duration (days)",
      [&](const DatasetPreset& d) { return num(d.paper.duration_days); },
      [&](const SyntheticTrace& t) { return num1(t.graph.duration() / kDay); });
  row("Granularity (seconds)",
      [&](const DatasetPreset& d) { return num(d.paper.granularity_seconds); },
      [&](const SyntheticTrace&) { return std::string("same"); });
  row("Experimental devices",
      [&](const DatasetPreset& d) { return num(d.paper.devices); },
      [&](const SyntheticTrace& t) { return num(t.num_internal); });
  row("Internal contacts",
      [&](const DatasetPreset& d) { return num(d.paper.internal_contacts); },
      [&](const SyntheticTrace& t) { return num(t.internal_contact_count()); });
  row("Contact rate (per device per day)",
      [&](const DatasetPreset&) { return std::string("n/a*"); },
      [&](const SyntheticTrace& t) {
        return num1(t.internal_contact_rate(kDay, false));
      });
  row("External devices",
      [&](const DatasetPreset& d) {
        return d.paper.external_devices ? num(d.paper.external_devices)
                                        : std::string("N/A");
      },
      [&](const SyntheticTrace& t) {
        return t.graph.num_nodes() > t.num_internal
                   ? num(static_cast<double>(t.graph.num_nodes() -
                                             t.num_internal))
                   : std::string("N/A");
      });
  row("External contacts",
      [&](const DatasetPreset& d) {
        return d.paper.external_contacts ? "~" + num(d.paper.external_contacts)
                                         : std::string("N/A");
      },
      [&](const SyntheticTrace& t) {
        return t.external_contact_count() ? num(t.external_contact_count())
                                          : std::string("N/A");
      });

  std::printf("\n(*) the paper's per-data-set rate cells are illegible in the\n"
              "available copy; we print the generated rates instead.\n");
  std::printf("\nNotes on reconstructed / substituted cells:\n");
  for (const auto& d : datasets)
    std::printf("  %-14s %s\n", d.spec.name.c_str(), d.paper.note.c_str());
  std::printf("[csv] wrote %s\n", bench::csv_path("table1_datasets").c_str());
  return 0;
}
