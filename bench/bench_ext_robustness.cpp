// Extension bench (paper §3.4): robustness of the hop-number to the
// model simplifications the paper discusses.
//
// §3.4 predicts that relaxing the Poisson/Bernoulli contact assumption
// to (a) renewal inter-contact laws with general finite-variance
// distributions, (b) heterogeneous contact rates, or (c) diurnal
// non-stationarity should have "a major impact on the delay of a path,
// but a relatively small impact on hop-number".
//
// For each variant we simulate the continuous-time network at equal
// mean contact rate, flood from random (source, time) samples, and
// report the delay and hop-number of the delay-optimal path. The paper
// prediction holds if delay moves by large factors across variants
// while mean hops moves by little.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "random/contact_process.hpp"
#include "sim/flooding.hpp"
#include "stats/summary.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace odtn;

namespace {

struct VariantResult {
  double mean_delay = 0.0;
  double mean_hops = 0.0;
  double hops_stderr = 0.0;
  std::size_t unreached = 0;
};

VariantResult measure(const ContactProcessOptions& options, double lambda,
                      Rng& rng) {
  const std::size_t n = 150;
  const double duration = 400.0 / lambda * 1.0;  // plenty of contacts
  VariantResult out;
  SummaryStats delay, hops;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    Rng local = rng.split();
    const auto g =
        make_contact_process_graph(n, lambda, duration, options, local);
    const auto src = static_cast<NodeId>(local.below(n));
    auto dst = static_cast<NodeId>(local.below(n - 1));
    if (dst >= src) ++dst;
    const double t0 = local.uniform(0.0, duration / 2.0);
    const auto fr = flood(g, src, t0);
    if (fr.best_arrival(dst) > duration) {
      ++out.unreached;
      continue;
    }
    delay.add(fr.best_arrival(dst) - t0);
    hops.add(fr.optimal_hops(dst));
  }
  out.mean_delay = delay.mean();
  out.mean_hops = hops.mean();
  out.hops_stderr = hops.stderr_mean();
  return out;
}

}  // namespace

int main() {
  bench::banner("Extension (paper §3.4)",
                "delay vs hop-number under relaxed contact assumptions");
  CsvWriter csv(bench::csv_path("ext_robustness"));
  csv.write_row({"variant", "lambda", "inter_contact_cv", "mean_delay",
                 "mean_hops", "hops_stderr", "unreached"});

  const double lambda = 0.5;
  Rng rng(0x304);

  struct Variant {
    std::string name;
    ContactProcessOptions options;
    double cv;
  };
  std::vector<Variant> variants;

  for (InterContactLaw law :
       {InterContactLaw::kDeterministic, InterContactLaw::kUniform,
        InterContactLaw::kExponential, InterContactLaw::kHyperExponential,
        InterContactLaw::kBoundedPareto}) {
    ContactProcessOptions options;
    options.renewal.law = law;
    options.renewal.hyper_cv = 4.0;
    variants.push_back({std::string("renewal: ") +
                            inter_contact_law_name(law),
                        options, inter_contact_cv(options.renewal)});
  }
  {
    ContactProcessOptions heterogeneous;
    heterogeneous.node_weight_sigma = 1.0;
    variants.push_back({"heterogeneous rates (sigma=1)", heterogeneous, 1.0});
  }
  const ActivityProfile diurnal = ActivityProfile::conference();
  {
    ContactProcessOptions cyclic;
    cyclic.profile = &diurnal;
    variants.push_back({"diurnal non-stationarity", cyclic, 1.0});
  }

  std::printf("%-36s %8s %14s %12s\n", "variant (lambda = 0.5, N = 150)",
              "CV", "mean delay", "mean hops");
  double base_delay = 0.0, base_hops = 0.0;
  for (const auto& variant : variants) {
    const auto r = measure(variant.options, lambda, rng);
    if (variant.name == "renewal: exponential") {
      base_delay = r.mean_delay;
      base_hops = r.mean_hops;
    }
    std::printf("%-36s %8.2f %14.1f %7.2f +/- %.2f\n", variant.name.c_str(),
                variant.cv, r.mean_delay, r.mean_hops, r.hops_stderr);
    csv.write_row({variant.name, std::to_string(lambda),
                   std::to_string(variant.cv), std::to_string(r.mean_delay),
                   std::to_string(r.mean_hops),
                   std::to_string(r.hops_stderr),
                   std::to_string(r.unreached)});
  }

  std::printf(
      "\nPaper check (§3.4): across inter-contact laws spanning CV 0 to\n"
      "heavy-tailed, and under heterogeneity / diurnal cycles, the DELAY\n"
      "of the optimal path moves by large factors (baseline exponential:\n"
      "%.1f) while its HOP-NUMBER stays within a narrow band around the\n"
      "baseline %.2f -- the diameter is a property of the contact\n"
      "structure, not of the timing fine print.\n",
      base_delay, base_hops);
  std::printf("[csv] wrote %s\n", bench::csv_path("ext_robustness").c_str());
  return 0;
}
