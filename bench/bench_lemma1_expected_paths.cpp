// Lemma 1: expected number of constrained paths E[Pi_N].
//
// Prints the EXACT expected number of paths with delay <= tau*ln(N) and
// hops = gamma*tau*ln(N) between two fixed nodes of the discrete-time
// random temporal network, next to the Theta-exponent prediction
// N^(tau*(gamma*ln(lambda)+h(gamma)) - 1), across N -- showing
// ln(E)/ln(N) converging to the exponent, and the super/sub-critical
// dichotomy of Corollary 1.
// A Monte-Carlo section corroborates the Corollary-1 dichotomy on
// simulated networks through the deterministic parallel harness: the
// path probability collapses under the subcritical budget and
// saturates under the supercritical one as N grows, with the 1-thread
// and N-thread runs gated bit-identical.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "random/phase_transition.hpp"
#include "random/theory.hpp"
#include "util/csv.hpp"

using namespace odtn;

namespace {

void run_case(const char* name, double lambda, double tau, CsvWriter& csv) {
  const double gamma = gamma_star_short(lambda);
  std::printf("\n%s: lambda=%.2f, tau=%.3f (critical tau*=%.3f), "
              "gamma=gamma*=%.3f\n",
              name, lambda, tau, delay_constant_short(lambda), gamma);
  std::printf("%-10s %-8s %-6s %-16s %-16s %-14s\n", "N", "t", "k",
              "ln E[Pi] (short)", "ln E[Pi] (long)", "Theta exponent*lnN");
  for (std::size_t n : {100u, 1000u, 10000u, 100000u, 1000000u}) {
    const double log_n = std::log(static_cast<double>(n));
    const auto t = std::max<long>(1, std::llround(tau * log_n));
    const auto k = std::max<long>(1, std::llround(gamma * t));
    const double e_short = log_expected_paths_short(n, lambda, t, k);
    const double e_long = log_expected_paths_long(n, lambda, t, k);
    const double predicted =
        lemma1_exponent_short(static_cast<double>(t) / log_n,
                              static_cast<double>(k) / static_cast<double>(t),
                              lambda) *
        log_n;
    std::printf("%-10zu %-8ld %-6ld %-16.3f %-16.3f %-14.3f\n", n, t, k,
                e_short, e_long, predicted);
    csv.write_numeric_row({static_cast<double>(n), lambda, tau,
                           static_cast<double>(t), static_cast<double>(k),
                           e_short, e_long, predicted});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned num_threads = bench::parse_threads(argc, argv);
  bench::banner("Lemma 1 / Corollary 1",
                "exact E[Pi_N] vs the Theta asymptotics");
  CsvWriter csv(bench::csv_path("lemma1_expected_paths"));
  csv.write_row({"n", "lambda", "tau", "t", "k", "ln_e_short", "ln_e_long",
                 "theta_exponent_times_ln_n"});

  const double lambda = 0.5;
  const double tau_c = delay_constant_short(lambda);
  run_case("SUBCRITICAL (tau = 0.5 tau*): E[Pi] -> 0", lambda, 0.5 * tau_c,
           csv);
  run_case("NEAR-CRITICAL (tau = tau*)", lambda, tau_c, csv);
  run_case("SUPERCRITICAL (tau = 2 tau*): E[Pi] -> infinity", lambda,
           2.0 * tau_c, csv);

  std::printf(
      "\nPaper check: below the boundary 1/tau > gamma*ln(lambda)+h(gamma)\n"
      "the expected path count vanishes with N (so no path exists whp, by\n"
      "Markov); above it, it diverges. The long-contact expectation always\n"
      "dominates the short-contact one.\n");
  std::printf("[csv] wrote %s\n",
              bench::csv_path("lemma1_expected_paths").c_str());

  // -- Monte-Carlo dichotomy: P[path] across N, sub vs supercritical ---
  const double gamma = gamma_star_short(lambda);
  const std::size_t trials = 200;
  std::printf("\n-- Monte-Carlo: P[constrained path], %zu trials/point --\n",
              trials);
  std::printf("%-8s %-22s %-22s\n", "N", "subcritical (0.5 tau*)",
              "supercritical (2 tau*)");
  CsvWriter mc_csv(bench::csv_path("lemma1_mc_dichotomy"));
  mc_csv.write_row({"n", "tau_over_tau_star", "successes", "trials",
                    "probability"});
  int failures = 0;
  std::size_t point = 0;
  for (std::size_t n : {200u, 400u, 800u}) {
    double p[2];
    int col = 0;
    for (double m : {0.5, 2.0}) {
      const std::uint64_t seed = 0xF1C1 + point++;
      const auto serial =
          probe_path_probability(n, lambda, m * tau_c, gamma,
                                 ContactCase::kShort, trials, {seed, 1});
      const auto parallel = probe_path_probability(
          n, lambda, m * tau_c, gamma, ContactCase::kShort, trials,
          {seed, num_threads});
      if (serial.outcomes != parallel.outcomes) ++failures;
      p[col++] = parallel.probability;
      mc_csv.write_numeric_row({static_cast<double>(n), m,
                                static_cast<double>(parallel.successes),
                                static_cast<double>(trials),
                                parallel.probability});
    }
    std::printf("%-8zu %-22.3f %-22.3f\n", n, p[0], p[1]);
    // The dichotomy: the subcritical probability sits below the
    // supercritical one at every size.
    if (p[0] >= p[1]) ++failures;
  }
  std::printf("[csv] wrote %s\n",
              bench::csv_path("lemma1_mc_dichotomy").c_str());
  if (!bench::check(failures == 0,
                    "MC dichotomy holds and outcomes are thread-count "
                    "invariant")) {
    return 1;
  }
  return 0;
}
