// Lemma 1: expected number of constrained paths E[Pi_N].
//
// Prints the EXACT expected number of paths with delay <= tau*ln(N) and
// hops = gamma*tau*ln(N) between two fixed nodes of the discrete-time
// random temporal network, next to the Theta-exponent prediction
// N^(tau*(gamma*ln(lambda)+h(gamma)) - 1), across N -- showing
// ln(E)/ln(N) converging to the exponent, and the super/sub-critical
// dichotomy of Corollary 1.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "random/theory.hpp"
#include "util/csv.hpp"

using namespace odtn;

namespace {

void run_case(const char* name, double lambda, double tau, CsvWriter& csv) {
  const double gamma = gamma_star_short(lambda);
  std::printf("\n%s: lambda=%.2f, tau=%.3f (critical tau*=%.3f), "
              "gamma=gamma*=%.3f\n",
              name, lambda, tau, delay_constant_short(lambda), gamma);
  std::printf("%-10s %-8s %-6s %-16s %-16s %-14s\n", "N", "t", "k",
              "ln E[Pi] (short)", "ln E[Pi] (long)", "Theta exponent*lnN");
  for (std::size_t n : {100u, 1000u, 10000u, 100000u, 1000000u}) {
    const double log_n = std::log(static_cast<double>(n));
    const auto t = std::max<long>(1, std::llround(tau * log_n));
    const auto k = std::max<long>(1, std::llround(gamma * t));
    const double e_short = log_expected_paths_short(n, lambda, t, k);
    const double e_long = log_expected_paths_long(n, lambda, t, k);
    const double predicted =
        lemma1_exponent_short(static_cast<double>(t) / log_n,
                              static_cast<double>(k) / static_cast<double>(t),
                              lambda) *
        log_n;
    std::printf("%-10zu %-8ld %-6ld %-16.3f %-16.3f %-14.3f\n", n, t, k,
                e_short, e_long, predicted);
    csv.write_numeric_row({static_cast<double>(n), lambda, tau,
                           static_cast<double>(t), static_cast<double>(k),
                           e_short, e_long, predicted});
  }
}

}  // namespace

int main() {
  bench::banner("Lemma 1 / Corollary 1",
                "exact E[Pi_N] vs the Theta asymptotics");
  CsvWriter csv(bench::csv_path("lemma1_expected_paths"));
  csv.write_row({"n", "lambda", "tau", "t", "k", "ln_e_short", "ln_e_long",
                 "theta_exponent_times_ln_n"});

  const double lambda = 0.5;
  const double tau_c = delay_constant_short(lambda);
  run_case("SUBCRITICAL (tau = 0.5 tau*): E[Pi] -> 0", lambda, 0.5 * tau_c,
           csv);
  run_case("NEAR-CRITICAL (tau = tau*)", lambda, tau_c, csv);
  run_case("SUPERCRITICAL (tau = 2 tau*): E[Pi] -> infinity", lambda,
           2.0 * tau_c, csv);

  std::printf(
      "\nPaper check: below the boundary 1/tau > gamma*ln(lambda)+h(gamma)\n"
      "the expected path count vanishes with N (so no path exists whp, by\n"
      "Markov); above it, it diverges. The long-contact expectation always\n"
      "dominates the short-contact one.\n");
  std::printf("[csv] wrote %s\n",
              bench::csv_path("lemma1_expected_paths").c_str());
  return 0;
}
