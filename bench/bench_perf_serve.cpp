// Serve-path perf bench (PR 8): mmap-able graph snapshots and the
// LRU-cached batched query engine behind `odtn serve`.
//
// Sections (rows land in bench_out/perf_serve.csv):
//
//   snapshot_load -- a ~1M-contact synthetic trace written both as
//                    canonical trace text and as a .odtns snapshot;
//                    hard gates: load_snapshot_file is >= 5x faster
//                    than read_trace_file + index construction, and
//                    the loaded view is bit-identical to the parsed
//                    graph (contacts, re-encoded bytes, and an engine
//                    run over both).
//   warm_cache    -- conference-trace all-pairs batch through
//                    QueryEngine; hard gates: a warm repeat of the
//                    same batch is >= 10x faster than the cold run,
//                    cold == compute_delay_cdf bit-identical, warm ==
//                    cold bit-identical, and a snapshot-loaded graph
//                    answers bit-identically to the parsed one.
//
// Emits machine-readable bench_out/BENCH_pr8.json (gate fields only on
// gated records, bench_perf_engine conventions). Exit status is
// non-zero iff any hard gate fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/diameter.hpp"
#include "core/query_engine.hpp"
#include "stats/log_grid.hpp"
#include "trace/generators.hpp"
#include "trace/snapshot.hpp"
#include "trace/trace_io.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/time_format.hpp"

using namespace odtn;

namespace {

double now_ms() {
  using namespace std::chrono;
  return duration<double, std::milli>(steady_clock::now().time_since_epoch())
      .count();
}

/// Random trace in the shape of a week-long campus data set, the same
/// regime as bench_perf_trace_io: ~1M contacts so startup cost is
/// dominated by parse/index work rather than noise.
TemporalGraph synthetic_trace(std::size_t nodes, std::size_t contacts,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Contact> all;
  all.reserve(contacts);
  const double horizon = 7.0 * 86400.0;
  for (std::size_t i = 0; i < contacts; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    const double begin = rng.uniform(0.0, horizon);
    const double length = rng.uniform(0.0, 3600.0);
    all.push_back({u, v, begin, begin + length});
  }
  return TemporalGraph(nodes, std::move(all));
}

/// Conference-style community trace, the regime of Figures 9-12.
TemporalGraph make_workload_trace() {
  SyntheticTraceSpec spec;
  spec.name = "conference_serve";
  spec.num_internal = 120;
  spec.duration = 3 * kDay;
  spec.pair_contacts_mean = 0.10;
  spec.num_communities = 8;
  spec.gatherings = {25.0, 0.2, 0.04, 10 * kMinute, 0.8, 0.05};
  spec.profile = ActivityProfile::conference();
  return generate_trace(spec, 7117).graph;
}

/// Bitwise result equality over everything a serve client can observe:
/// CDFs, diameters, scalars. Instrumentation counters are deliberately
/// excluded -- a warm run examines zero contacts by design.
bool results_bit_identical(const DelayCdfResult& a, const DelayCdfResult& b,
                           std::string* why) {
  auto fail = [&](const char* what) {
    if (why) *why = what;
    return false;
  };
  if (a.grid != b.grid) return fail("grid");
  if (a.cdf_by_hops != b.cdf_by_hops) return fail("cdf_by_hops");
  if (a.cdf_unbounded != b.cdf_unbounded) return fail("cdf_unbounded");
  if (a.fixpoint_hops != b.fixpoint_hops) return fail("fixpoint_hops");
  if (a.converged != b.converged) return fail("converged");
  if (a.denominator != b.denominator) return fail("denominator");
  for (const double eps : {0.001, 0.01, 0.05, 0.1, 0.5}) {
    if (a.diameter(eps) != b.diameter(eps)) return fail("diameter(eps)");
    if (a.diameter_per_delay(eps) != b.diameter_per_delay(eps))
      return fail("diameter_per_delay(eps)");
  }
  for (const double tol : {0.001, 0.01, 0.05})
    if (a.diameter_absolute(tol) != b.diameter_absolute(tol))
      return fail("diameter_absolute(tol)");
  return true;
}

bool graphs_identical(const TemporalGraph& a, const TemporalGraph& b) {
  return a.num_nodes() == b.num_nodes() && a.directed() == b.directed() &&
         a.start_time() == b.start_time() && a.end_time() == b.end_time() &&
         std::ranges::equal(a.contacts(), b.contacts());
}

struct ServeRecord {
  std::string section;
  std::string variant;
  double wall_ms = 0.0;
  double speedup = 0.0;
  bool gated = false;
  std::string gate;
  bool gate_pass = true;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
};

ServeRecord make_record(std::string section, std::string variant,
                        double wall_ms, double speedup) {
  ServeRecord r;
  r.section = std::move(section);
  r.variant = std::move(variant);
  r.wall_ms = wall_ms;
  r.speedup = speedup;
  return r;
}

void emit(CsvWriter& csv, std::vector<ServeRecord>& records, ServeRecord r) {
  csv.write_row({r.section, r.variant, std::to_string(r.wall_ms),
                 std::to_string(r.speedup), r.gated ? r.gate : "",
                 r.gated ? (r.gate_pass ? "1" : "0") : "",
                 std::to_string(r.cache_hits), std::to_string(r.cache_misses),
                 std::to_string(r.cache_evictions)});
  records.push_back(std::move(r));
}

int section_snapshot_load(CsvWriter& csv, std::vector<ServeRecord>& records) {
  const TemporalGraph original = synthetic_trace(500, 1000000, 42);
  const std::string trace_path = "bench_out/perf_serve_workload.trace";
  const std::string snap_path = "bench_out/perf_serve_workload.odtns";
  write_trace_file(trace_path, original);
  write_snapshot_file(snap_path, original);

  std::printf("\n-- snapshot_load: %zu contacts, parse+index vs mmap "
              "(gated) --\n",
              original.num_contacts());
  int failures = 0;

  // Parse + index: what `odtn serve --trace` pays at startup. Touching
  // the per-node indexes forces the lazy CSR build the engines need.
  double parse_ms = 1e300;
  TemporalGraph parsed(0, {});
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_ms();
    TemporalGraph g = read_trace_file(trace_path);
    const std::size_t touched =
        g.neighbor_records().size() + g.node_offsets().size();
    const double wall = now_ms() - t0;
    if (touched == 0) std::printf("  (unexpected empty index)\n");
    if (wall < parse_ms) {
      parse_ms = wall;
      parsed = std::move(g);
    }
  }

  // Snapshot: mmap + bounds/invariant sweep, indexes ride along in the
  // mapping -- nothing is rebuilt.
  double load_ms = 1e300;
  TemporalGraph loaded(0, {});
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_ms();
    TemporalGraph g = load_snapshot_file(snap_path);
    const std::size_t touched =
        g.neighbor_records().size() + g.node_offsets().size();
    const double wall = now_ms() - t0;
    if (touched == 0) std::printf("  (unexpected empty index)\n");
    if (wall < load_ms) {
      load_ms = wall;
      loaded = std::move(g);
    }
  }
  const double speedup = parse_ms / std::max(load_ms, 1e-9);

  std::printf("  parse+index : %8.1f ms\n", parse_ms);
  std::printf("  mmap load   : %8.1f ms\n", load_ms);
  std::printf("  speedup     : %.2fx\n", speedup);

  const bool identical = graphs_identical(parsed, loaded) &&
                         encode_snapshot(loaded) == encode_snapshot(parsed);
  if (!bench::check(identical,
                    "snapshot view bit-identical to the parsed graph "
                    "(contacts + re-encoded bytes)"))
    ++failures;
  if (!bench::check(loaded.is_view(), "snapshot load is zero-copy"))
    ++failures;
  if (!bench::check(speedup >= 5.0, "snapshot load >= 5x parse+index"))
    ++failures;

  ServeRecord parse_rec = make_record("snapshot_load", "parse+index", parse_ms, 1.0);
  emit(csv, records, parse_rec);
  ServeRecord load_rec = make_record("snapshot_load", "mmap", load_ms, speedup);
  load_rec.gated = true;
  load_rec.gate = "load_5x_and_bit_identical";
  load_rec.gate_pass = identical && loaded.is_view() && speedup >= 5.0;
  emit(csv, records, load_rec);

  std::remove(trace_path.c_str());
  std::remove(snap_path.c_str());
  return failures;
}

int section_warm_cache(CsvWriter& csv, std::vector<ServeRecord>& records) {
  const TemporalGraph g = make_workload_trace();
  std::printf("\n-- warm_cache: all-pairs batch, %zu nodes, %zu contacts "
              "(gated) --\n",
              g.num_nodes(), g.num_contacts());
  int failures = 0;

  QueryEngineOptions qo;
  qo.grid = make_log_grid(2 * kMinute, kDay, 48);
  qo.max_hops = 10;

  DelayCdfOptions ref_opt;
  ref_opt.grid = qo.grid;
  ref_opt.max_hops = qo.max_hops;
  ref_opt.max_levels = qo.max_levels;
  const DelayCdfResult reference = compute_delay_cdf(g, ref_opt);

  // Cold: fresh engine per rep so the cache really starts empty.
  double cold_ms = 1e300;
  DelayCdfResult cold;
  EngineStats cold_stats;
  QueryEngine engine(g, qo);
  for (int rep = 0; rep < 2; ++rep) {
    QueryEngine fresh(g, qo);
    const double t0 = now_ms();
    DelayCdfResult run = fresh.all_pairs();
    const double wall = now_ms() - t0;
    if (wall < cold_ms) cold_ms = wall;
    if (rep == 0) {
      cold = std::move(run);
      cold_stats = cold.stats;
    }
  }
  (void)engine.all_pairs();  // prime the timed engine's cache

  // Warm: the identical batch against the primed cache.
  double warm_ms = 1e300;
  DelayCdfResult warm;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_ms();
    DelayCdfResult run = engine.all_pairs();
    const double wall = now_ms() - t0;
    if (wall < warm_ms) {
      warm_ms = wall;
      warm = std::move(run);
    }
  }
  const double speedup = cold_ms / std::max(warm_ms, 1e-9);

  std::printf("  reference   : diameter(0.01)=%d, fixpoint=%d\n",
              reference.diameter(0.01), reference.fixpoint_hops);
  std::printf("  cold batch  : %8.1f ms  (%llu misses, %llu evictions)\n",
              cold_ms,
              static_cast<unsigned long long>(cold_stats.cache_misses),
              static_cast<unsigned long long>(cold_stats.cache_evictions));
  std::printf("  warm batch  : %8.1f ms  (%llu hits)\n", warm_ms,
              static_cast<unsigned long long>(warm.stats.cache_hits));
  std::printf("  speedup     : %.2fx\n", speedup);

  std::string why;
  const bool cold_ok = results_bit_identical(cold, reference, &why);
  if (!bench::check(cold_ok, "cold QueryEngine batch == compute_delay_cdf "
                             "bit-identical" +
                                 (cold_ok ? "" : " (" + why + ")")))
    ++failures;
  const bool warm_ok = results_bit_identical(warm, cold, &why);
  if (!bench::check(warm_ok,
                    "warm batch == cold batch bit-identical" +
                        (warm_ok ? "" : " (" + why + ")")))
    ++failures;
  const bool all_hits = warm.stats.cache_misses == 0 &&
                        warm.stats.cache_hits == g.num_nodes();
  if (!bench::check(all_hits, "warm batch answered entirely from cache"))
    ++failures;
  if (!bench::check(speedup >= 10.0, "warm batch >= 10x cold batch"))
    ++failures;

  // Snapshot-loaded graphs must answer exactly like parsed ones.
  const TemporalGraph view = decode_snapshot(
      std::make_shared<const std::vector<std::uint8_t>>(encode_snapshot(g)));
  QueryEngine mapped(view, qo);
  const DelayCdfResult via_snapshot = mapped.all_pairs();
  const bool snap_ok = results_bit_identical(via_snapshot, cold, &why);
  if (!bench::check(snap_ok,
                    "snapshot-loaded batch == parsed batch bit-identical" +
                        (snap_ok ? "" : " (" + why + ")")))
    ++failures;

  ServeRecord cold_rec = make_record("warm_cache", "cold", cold_ms, 1.0);
  cold_rec.gated = true;
  cold_rec.gate = "cold_matches_compute_delay_cdf";
  cold_rec.gate_pass = cold_ok;
  cold_rec.cache_hits = cold_stats.cache_hits;
  cold_rec.cache_misses = cold_stats.cache_misses;
  cold_rec.cache_evictions = cold_stats.cache_evictions;
  emit(csv, records, cold_rec);

  ServeRecord warm_rec = make_record("warm_cache", "warm", warm_ms, speedup);
  warm_rec.gated = true;
  warm_rec.gate = "warm_10x_and_bit_identical";
  warm_rec.gate_pass = warm_ok && all_hits && speedup >= 10.0;
  warm_rec.cache_hits = warm.stats.cache_hits;
  warm_rec.cache_misses = warm.stats.cache_misses;
  warm_rec.cache_evictions = warm.stats.cache_evictions;
  emit(csv, records, warm_rec);

  ServeRecord snap_rec = make_record("warm_cache", "snapshot_view", 0.0, 0.0);
  snap_rec.gated = true;
  snap_rec.gate = "snapshot_view_bit_identical";
  snap_rec.gate_pass = snap_ok;
  snap_rec.cache_hits = via_snapshot.stats.cache_hits;
  snap_rec.cache_misses = via_snapshot.stats.cache_misses;
  snap_rec.cache_evictions = via_snapshot.stats.cache_evictions;
  emit(csv, records, snap_rec);
  return failures;
}

void write_bench_json_pr8(const std::vector<ServeRecord>& records) {
  const std::string path = "bench_out/BENCH_pr8.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::printf("[json] could not open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_perf_serve\",\n  \"pr\": 8,\n"
               "  \"metric\": \"snapshot startup + cached batch queries\",\n"
               "  \"workers\": %u,\n  \"records\": [\n",
               shared_thread_pool().num_workers());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ServeRecord& r = records[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"variant\": \"%s\", "
                 "\"wall_ms\": %.3f, \"speedup\": %.3f, ",
                 r.section.c_str(), r.variant.c_str(), r.wall_ms, r.speedup);
    if (r.gated)
      std::fprintf(f, "\"gate\": \"%s\", \"gate_pass\": %s, ",
                   r.gate.c_str(), r.gate_pass ? "true" : "false");
    std::fprintf(f,
                 "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                 "\"cache_evictions\": %llu}%s\n",
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.cache_misses),
                 static_cast<unsigned long long>(r.cache_evictions),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  bench::banner("Serve path",
                "mmap snapshot startup vs parse+index, and warm vs cold "
                "cached query batches: speedup + bit-identity gates");
  CsvWriter csv(bench::csv_path("perf_serve"));
  csv.write_row({"section", "variant", "wall_ms", "speedup", "gate",
                 "gate_pass", "cache_hits", "cache_misses",
                 "cache_evictions"});

  std::vector<ServeRecord> records;
  int failures = 0;
  failures += section_snapshot_load(csv, records);
  failures += section_warm_cache(csv, records);
  write_bench_json_pr8(records);
  std::printf("[csv] wrote %s\n", bench::csv_path("perf_serve").c_str());

  if (failures) {
    std::printf("\n%d serve gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall serve gates passed\n");
  return 0;
}
