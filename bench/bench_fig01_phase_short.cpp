// Figure 1: phase transition boundary, SHORT contact case.
//
// Plots gamma * ln(lambda) + h(gamma) over gamma in [0, 1] for
// lambda in {0.5, 1.0, 1.5}. Paths within tau*ln(N) slots and
// gamma*tau*ln(N) hops exist iff 1/tau is below the curve; the maximum
// M = ln(1 + lambda) is attained at gamma* = lambda / (1 + lambda).
//
// The theory curves are validated by a Monte-Carlo sweep: for each
// lambda, P[constrained path] is estimated at gamma = gamma* across a
// ladder of delay budgets tau around the critical tau* -- the empirical
// phase transition. The sweep runs through the deterministic parallel
// harness twice, once on 1 thread and once on --threads N (default:
// hardware concurrency); the bench exits non-zero if any per-point
// success count differs (same gating pattern as bench_perf_engine), so
// the CSV is bit-identical no matter the thread count. Wall-clock for
// both configurations lands in bench_out/fig01_mc_timing.csv.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "random/phase_transition.hpp"
#include "random/theory.hpp"
#include "stats/log_grid.hpp"
#include "util/csv.hpp"

using namespace odtn;

namespace {

constexpr std::size_t kMcNodes = 1200;
constexpr std::size_t kMcTrials = 300;
constexpr std::uint64_t kMcSeed = 0xF101;

struct McPoint {
  double lambda = 0.0;
  double tau_multiplier = 0.0;
  PathProbeResult probe;
};

std::vector<McPoint> run_mc_sweep(const std::vector<double>& lambdas,
                                  const std::vector<double>& multipliers,
                                  unsigned num_threads, double* wall_ms) {
  std::vector<McPoint> points;
  double total_ms = 0.0;
  for (double lambda : lambdas) {
    const double gamma = gamma_star_short(lambda);
    const double tau_c = delay_constant_short(lambda);
    for (double m : multipliers) {
      McPoint p;
      p.lambda = lambda;
      p.tau_multiplier = m;
      // One fixed seed for the whole sweep keyed per point by its index:
      // every point is reproducible in isolation.
      const auto point_seed =
          kMcSeed + points.size() * 0x9E3779B97F4A7C15ULL;
      p.probe = probe_path_probability(kMcNodes, lambda, m * tau_c, gamma,
                                       ContactCase::kShort, kMcTrials,
                                       {point_seed, num_threads});
      total_ms += p.probe.mc.wall_ms;
      points.push_back(std::move(p));
    }
  }
  *wall_ms = total_ms;
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Figure 1",
                "phase transition boundary gamma*ln(lambda)+h(gamma), "
                "short contacts");
  const unsigned num_threads = bench::parse_threads(argc, argv);

  const std::vector<double> lambdas{0.5, 1.0, 1.5};
  const auto gammas = make_linear_grid(0.001, 0.999, 81);

  CsvWriter csv(bench::csv_path("fig01_phase_short"));
  csv.write_row({"gamma", "lambda", "rate"});

  std::vector<PlotSeries> series;
  for (double lambda : lambdas) {
    PlotSeries s;
    char label[64];
    std::snprintf(label, sizeof label, "lambda = %.1f", lambda);
    s.label = label;
    for (double g : gammas) {
      const double rate = rate_short(g, lambda);
      s.x.push_back(g);
      s.y.push_back(rate);
      csv.write_numeric_row({g, lambda, rate});
    }
    series.push_back(std::move(s));
  }

  PlotOptions opt;
  opt.x_label = "gamma (hops per slot of delay budget)";
  opt.y_label = "gamma*ln(lambda) + h(gamma)";
  std::printf("%s", render_ascii_plot(series, opt).c_str());

  std::printf("\n%-8s %-22s %-26s %-22s\n", "lambda",
              "gamma* = l/(1+l)", "max M = ln(1+lambda)",
              "critical tau = 1/M");
  for (double lambda : lambdas) {
    std::printf("%-8.2f %-22.4f %-26.4f %-22.4f\n", lambda,
                gamma_star_short(lambda), max_rate_short(lambda),
                delay_constant_short(lambda));
  }
  std::printf("\nPaper check: maxima sit at gamma* = lambda/(1+lambda) and\n"
              "equal ln(1+lambda); for lambda=0.5 the critical delay is\n"
              "tau* = %.2f ln(N), as stated in Section 3.2.2.\n",
              delay_constant_short(0.5));
  std::printf("[csv] wrote %s\n", bench::csv_path("fig01_phase_short").c_str());

  // -- Monte-Carlo phase transition at gamma*, around tau* --------------
  std::printf("\n-- Monte-Carlo sweep: P[path] at gamma*, N=%zu, "
              "%zu trials/point --\n",
              kMcNodes, kMcTrials);
  const std::vector<double> multipliers{0.4, 0.7, 1.0, 1.5, 2.5};

  double serial_ms = 0.0, parallel_ms = 0.0;
  const auto serial = run_mc_sweep(lambdas, multipliers, 1, &serial_ms);
  const auto parallel =
      run_mc_sweep(lambdas, multipliers, num_threads, &parallel_ms);

  CsvWriter mc_csv(bench::csv_path("fig01_phase_short_mc"));
  mc_csv.write_row({"lambda", "tau_over_tau_star", "tau", "gamma", "trials",
                    "successes", "probability"});
  std::printf("%-8s %-10s %-8s %-12s %-12s\n", "lambda", "tau/tau*",
              "gamma*", "P[path]", "successes");
  int failures = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const McPoint& p = parallel[i];
    const double gamma = gamma_star_short(p.lambda);
    const double tau_c = delay_constant_short(p.lambda);
    std::printf("%-8.2f %-10.2f %-8.3f %-12.4f %zu/%zu\n", p.lambda,
                p.tau_multiplier, gamma, p.probe.probability,
                p.probe.successes, kMcTrials);
    mc_csv.write_numeric_row(
        {p.lambda, p.tau_multiplier, p.tau_multiplier * tau_c, gamma,
         static_cast<double>(kMcTrials),
         static_cast<double>(p.probe.successes), p.probe.probability});
    if (serial[i].probe.outcomes != p.probe.outcomes) ++failures;
  }
  bench::print_mc_stats("parallel sweep", parallel.back().probe.mc);
  std::printf("[csv] wrote %s\n",
              bench::csv_path("fig01_phase_short_mc").c_str());

  bench::write_mc_timing_csv(
      "fig01_mc_timing",
      {{1u, serial_ms},
       {parallel.back().probe.mc.workers, parallel_ms}});
  const double speedup = serial_ms / std::max(parallel_ms, 1e-9);
  std::printf("  wall-clock: 1 thread %.1f ms, %u worker(s) %.1f ms "
              "(%.2fx)\n",
              serial_ms, parallel.back().probe.mc.workers, parallel_ms,
              speedup);
  bench::check(
      failures == 0,
      "MC outcomes bit-identical on 1 thread vs " +
          std::to_string(parallel.back().probe.mc.workers) + " worker(s)");
  if (parallel.back().probe.mc.workers >= 4) {
    // Speedup is informational on small machines (bench_perf_engine
    // pattern: shortfalls print FAIL but only divergence aborts).
    bench::check(speedup >= 3.0, "parallel sweep >= 3x faster");
  }

  // Phase-transition sanity: below tau* the path probability is small,
  // above it close to 1 (finite-N softening allowed).
  for (const McPoint& p : parallel) {
    if (p.tau_multiplier <= 0.4 && p.probe.probability > 0.3) ++failures;
    if (p.tau_multiplier >= 2.5 && p.probe.probability < 0.7) ++failures;
  }

  if (failures) {
    std::printf("\n%d Monte-Carlo check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall Monte-Carlo checks passed\n");
  return 0;
}
