// Figure 1: phase transition boundary, SHORT contact case.
//
// Plots gamma * ln(lambda) + h(gamma) over gamma in [0, 1] for
// lambda in {0.5, 1.0, 1.5}. Paths within tau*ln(N) slots and
// gamma*tau*ln(N) hops exist iff 1/tau is below the curve; the maximum
// M = ln(1 + lambda) is attained at gamma* = lambda / (1 + lambda).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "random/theory.hpp"
#include "stats/log_grid.hpp"
#include "util/csv.hpp"

using namespace odtn;

int main() {
  bench::banner("Figure 1",
                "phase transition boundary gamma*ln(lambda)+h(gamma), "
                "short contacts");

  const std::vector<double> lambdas{0.5, 1.0, 1.5};
  const auto gammas = make_linear_grid(0.001, 0.999, 81);

  CsvWriter csv(bench::csv_path("fig01_phase_short"));
  csv.write_row({"gamma", "lambda", "rate"});

  std::vector<PlotSeries> series;
  for (double lambda : lambdas) {
    PlotSeries s;
    char label[64];
    std::snprintf(label, sizeof label, "lambda = %.1f", lambda);
    s.label = label;
    for (double g : gammas) {
      const double rate = rate_short(g, lambda);
      s.x.push_back(g);
      s.y.push_back(rate);
      csv.write_numeric_row({g, lambda, rate});
    }
    series.push_back(std::move(s));
  }

  PlotOptions opt;
  opt.x_label = "gamma (hops per slot of delay budget)";
  opt.y_label = "gamma*ln(lambda) + h(gamma)";
  std::printf("%s", render_ascii_plot(series, opt).c_str());

  std::printf("\n%-8s %-22s %-26s %-22s\n", "lambda",
              "gamma* = l/(1+l)", "max M = ln(1+lambda)",
              "critical tau = 1/M");
  for (double lambda : lambdas) {
    std::printf("%-8.2f %-22.4f %-26.4f %-22.4f\n", lambda,
                gamma_star_short(lambda), max_rate_short(lambda),
                delay_constant_short(lambda));
  }
  std::printf("\nPaper check: maxima sit at gamma* = lambda/(1+lambda) and\n"
              "equal ln(1+lambda); for lambda=0.5 the critical delay is\n"
              "tau* = %.2f ln(N), as stated in Section 3.2.2.\n",
              delay_constant_short(0.5));
  std::printf("[csv] wrote %s\n", bench::csv_path("fig01_phase_short").c_str());
  return 0;
}
