// Figure 6: time of the next contact with any other device, as seen by
// six representative participants (two each from Hong-Kong, Reality
// Mining and Infocom05).
//
// For each participant we sweep departure times over the trace and
// report the arrival time of the next contact. Long flat "steps" are
// disconnection periods; the diagonal means the node is continuously in
// contact. We print summary statistics (fraction of time in contact,
// longest disconnection) that make the figure's point quantitative.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "trace/datasets.hpp"
#include "util/csv.hpp"

using namespace odtn;

namespace {

struct Participant {
  std::string label;
  const TemporalGraph* graph;
  NodeId node;
};

/// Picks the internal node with median contact count (a "representative"
/// participant) and one from the lower quartile.
std::pair<NodeId, NodeId> pick_nodes(const SyntheticTrace& trace) {
  std::vector<std::pair<std::size_t, NodeId>> by_degree;
  for (NodeId v = 0; v < trace.num_internal; ++v)
    by_degree.emplace_back(trace.graph.contacts_of(v).size(), v);
  std::sort(by_degree.begin(), by_degree.end());
  return {by_degree[by_degree.size() / 2].second,
          by_degree[by_degree.size() / 4].second};
}

}  // namespace

int main() {
  bench::banner("Figure 6",
                "next-contact time vs departure time, six participants");

  const auto hk = dataset_hong_kong().generate();
  const auto rm = dataset_reality_mining().generate();
  const auto ic = dataset_infocom05().generate();
  const auto [hk1, hk2] = pick_nodes(hk);
  const auto [rm1, rm2] = pick_nodes(rm);
  const auto [ic1, ic2] = pick_nodes(ic);

  const std::vector<Participant> participants{
      {"1 (Hong Kong)", &hk.graph, hk1},
      {"2 (Hong Kong)", &hk.graph, hk2},
      {"3 (Reality Mining)", &rm.graph, rm1},
      {"4 (Reality Mining)", &rm.graph, rm2},
      {"5 (Infocom05)", &ic.graph, ic1},
      {"6 (Infocom05)", &ic.graph, ic2},
  };

  CsvWriter csv(bench::csv_path("fig06_next_contact"));
  csv.write_row({"participant", "departure_seconds", "arrival_seconds"});

  std::printf("%-22s %12s %12s %16s %18s\n", "participant", "trace",
              "in-contact", "median wait", "longest gap");
  for (const auto& p : participants) {
    const double t0 = p.graph->start_time();
    const double t1 = p.graph->end_time();
    const double step = std::max(60.0, (t1 - t0) / 2000.0);
    double in_contact = 0.0, samples = 0.0, longest_gap = 0.0;
    std::vector<double> waits;
    for (double t = t0; t <= t1; t += step) {
      const double next = p.graph->next_contact_time(p.node, t);
      csv.write_numeric_row(
          {static_cast<double>(&p - participants.data()) + 1, t,
           std::isfinite(next) ? next : -1.0});
      ++samples;
      if (next == t) {
        in_contact += 1;
        waits.push_back(0.0);
      } else if (std::isfinite(next)) {
        waits.push_back(next - t);
        longest_gap = std::max(longest_gap, next - t);
      } else {
        longest_gap = std::max(longest_gap, t1 - t);
      }
    }
    std::sort(waits.begin(), waits.end());
    const double median_wait =
        waits.empty() ? 0.0 : waits[waits.size() / 2];
    std::printf("%-22s %12s %11.1f%% %16s %18s\n", p.label.c_str(),
                format_duration(t1 - t0).c_str(),
                100.0 * in_contact / samples,
                format_duration(median_wait).c_str(),
                format_duration(longest_gap).c_str());
  }

  // The staircase itself (the paper's z-axis), one participant per
  // environment: diagonal stretches = continuously in contact, flat
  // steps = disconnected until the step's height.
  for (std::size_t pick : {0ul, 2ul, 4ul}) {
    const auto& p = participants[pick];
    const double t0 = p.graph->start_time();
    const double t1 = std::min(p.graph->end_time(), t0 + 3 * kDay);
    PlotSeries arrival{"next contact", {}, {}};
    PlotSeries diagonal{"now (diagonal)", {}, {}};
    for (double t = t0; t <= t1; t += (t1 - t0) / 140.0) {
      const double next = p.graph->next_contact_time(p.node, t);
      diagonal.x.push_back((t - t0) / kDay);
      diagonal.y.push_back((t - t0) / kDay);
      if (!std::isfinite(next) || next > t1) continue;
      arrival.x.push_back((t - t0) / kDay);
      arrival.y.push_back((next - t0) / kDay);
    }
    PlotOptions popt;
    popt.height = 12;
    popt.x_label = "departure time (days)";
    popt.y_label = "participant " + p.label + ": next-contact time (days)";
    std::printf("\n%s", render_ascii_plot({arrival, diagonal}, popt).c_str());
  }

  std::printf(
      "\nPaper check: Hong-Kong and Reality-Mining participants show long\n"
      "disconnections (steps, sometimes > 1 day) and rare high-contact\n"
      "periods; Infocom05 participants are almost always within reach of\n"
      "another device except at night.\n");
  std::printf("[csv] wrote %s\n", bench::csv_path("fig06_next_contact").c_str());
  return 0;
}
