// Figure 8: delivery function of one Hong-Kong source-destination pair
// for maximum hop counts 1, 2, 3, 4 and unbounded.
//
// Reproduces the figure's qualitative content: a pair with NO direct
// path (1 hop: empty function), where allowing more relays both makes
// delivery possible and multiplies the number of delay-optimal paths,
// and where some hop count saturates the function (identical to the
// unbounded one -- "no optimal path uses more hops").
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/optimal_paths.hpp"
#include "trace/datasets.hpp"
#include "util/csv.hpp"

using namespace odtn;

int main() {
  bench::banner("Figure 8",
                "delivery function of a Hong-Kong pair, by max hop count");

  const auto trace = dataset_hong_kong().generate();
  const auto& g = trace.graph;
  const std::vector<int> budgets{1, 2, 3, 4, kUnboundedHops};

  // Find a pair shaped like the paper's example: no direct contact,
  // several delay-optimal paths once relays are allowed, and a delivery
  // function that SATURATES at 3 or 4 hops (identical to unbounded).
  NodeId best_src = 0, best_dst = 1;
  std::size_t best_paths = 0;
  int best_saturation = 0;
  for (NodeId src = 0; src < trace.num_internal; ++src) {
    const auto profiles = compute_hop_profiles(g, src, budgets);
    for (NodeId dst = 0; dst < trace.num_internal; ++dst) {
      if (dst == src) continue;
      if (!profiles[0][dst].empty()) continue;    // has a direct contact
      if (profiles[4][dst].size() < 5) continue;  // too few optimal paths
      int saturation = 0;
      for (std::size_t b = 1; b + 1 < budgets.size(); ++b) {
        if (profiles[b][dst] == profiles[4][dst]) {
          saturation = budgets[b];
          break;
        }
      }
      if (saturation == 0) continue;  // does not saturate within 4 hops
      if (profiles[4][dst].size() > best_paths) {
        best_paths = profiles[4][dst].size();
        best_src = src;
        best_dst = dst;
        best_saturation = saturation;
      }
    }
    if (best_paths >= 8) break;  // good enough example
  }

  std::printf("chosen pair: source=%u destination=%u "
              "(no direct contact; %zu delay-optimal paths via relays; "
              "saturates at %d hops)\n\n",
              best_src, best_dst, best_paths, best_saturation);

  CsvWriter csv(bench::csv_path("fig08_delivery_function"));
  csv.write_row({"max_hops", "last_departure", "earliest_arrival"});

  const auto profiles = compute_hop_profiles(g, best_src, budgets);
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    const auto& f = profiles[b][best_dst];
    std::printf("max %-9s: %2zu delay-optimal paths",
                bench::hop_label(budgets[b]).c_str(), f.size());
    if (f.empty()) {
      std::printf("  (destination unreachable)\n");
      continue;
    }
    std::printf("\n    %-22s %-22s %s\n", "last departure (LD)",
                "earliest arrival (EA)", "kind");
    for (const PathPair& p : f.pairs()) {
      std::printf("    %-22s %-22s %s\n", format_timestamp(p.ld).c_str(),
                  format_timestamp(p.ea).c_str(),
                  p.ea <= p.ld ? "contemporaneous" : "store-and-forward");
      csv.write_numeric_row({budgets[b] == kUnboundedHops
                                 ? -1.0
                                 : static_cast<double>(budgets[b]),
                             p.ld, p.ea});
    }
  }

  // Sample the delivery functions over the trace for the ASCII plot.
  std::vector<PlotSeries> series;
  for (std::size_t b = 1; b < budgets.size(); ++b) {
    PlotSeries s{bench::hop_label(budgets[b]), {}, {}};
    const auto& f = profiles[b][best_dst];
    const double t0 = g.start_time(), t1 = g.end_time();
    for (double t = t0; t <= t1; t += (t1 - t0) / 160.0) {
      const double arr = f.deliver_at(t);
      if (!std::isfinite(arr)) continue;
      s.x.push_back((t - t0) / kDay);
      s.y.push_back((arr - t0) / kDay);
    }
    series.push_back(std::move(s));
  }
  PlotOptions opt;
  opt.x_label = "departure time (days)";
  opt.y_label = "arrival time (days); missing = unreachable";
  std::printf("%s", render_ascii_plot(series, opt).c_str());

  std::printf(
      "\nPaper check: with 1 hop there is no path; allowing 2-3 relays\n"
      "creates several optimal paths; beyond the saturation hop count the\n"
      "function no longer changes (no optimal path needs more relays).\n");
  std::printf("[csv] wrote %s\n",
              bench::csv_path("fig08_delivery_function").c_str());
  return 0;
}
