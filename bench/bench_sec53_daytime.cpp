// §5.3.1 (last paragraph): "studying the CDF of the minimum delay
// during day time only ... confirms the correlation between multi-hop
// delay improvement at small time-scale and high contact rate."
//
// We compare, on Infocom05, the delay CDFs for messages created at ANY
// time vs only during conference hours (9h-18h). Day-time creation
// times see a much higher contact rate, so the relative improvement of
// multi-hop paths over direct contacts at small time scales must be
// larger in the day-time-only analysis.
#include <cstdio>

#include "bench_util.hpp"
#include "core/reachability.hpp"
#include "stats/log_grid.hpp"
#include "trace/datasets.hpp"
#include "trace/transforms.hpp"

using namespace odtn;

int main() {
  bench::banner("Section 5.3.1",
                "minimum-delay CDF, all start times vs day time only "
                "(Infocom05)");
  const auto trace = dataset_infocom05().generate();
  const auto g = keep_internal_contacts(trace.graph, trace.num_internal);

  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kDay, 40);
  opt.max_hops = 8;
  const auto all_times = compute_delay_cdf(g, opt);

  DelayCdfOptions day_opt = opt;
  day_opt.windows =
      daily_time_windows(g.start_time(), g.end_time(), 9.0, 18.0);
  const auto day_only = compute_delay_cdf(g, day_opt);

  const std::vector<int> shown{1, 2, 4, kUnboundedHops};
  std::printf("\n--- all start times ---\n");
  bench::print_cdf_table(all_times, shown);
  std::printf("\n--- day time (9h-18h) start times only ---\n");
  bench::print_cdf_table(day_only, shown);
  bench::write_cdf_csv("sec53_all_times", all_times, shown, "all");
  bench::write_cdf_csv("sec53_day_only", day_only, shown, "day");

  // The paper's point, quantified: the multi-hop improvement factor
  // (unbounded / 1-hop success) at a small time scale.
  auto improvement = [&](const DelayCdfResult& r, std::size_t j) {
    return r.cdf_by_hops[0][j] > 0 ? r.cdf_unbounded[j] / r.cdf_by_hops[0][j]
                                   : 0.0;
  };
  const std::size_t j_small = 8;  // ~10 minutes on this grid
  std::printf("\nmulti-hop improvement (flooding / direct) at %s:\n",
              format_duration(all_times.grid[j_small]).c_str());
  std::printf("  all start times:       %.2fx (success %.1f%% -> %.1f%%)\n",
              improvement(all_times, j_small),
              100.0 * all_times.cdf_by_hops[0][j_small],
              100.0 * all_times.cdf_unbounded[j_small]);
  std::printf("  day-time starts only:  %.2fx (success %.1f%% -> %.1f%%)\n",
              improvement(day_only, j_small),
              100.0 * day_only.cdf_by_hops[0][j_small],
              100.0 * day_only.cdf_unbounded[j_small]);

  std::printf(
      "\nPaper check: restricted to day-time (high contact rate) start\n"
      "times, both absolute success and the RELATIVE multi-hop gain at\n"
      "small time scales are larger -- the correlation §5.3.1 reports.\n");
  return 0;
}
