// Batched multi-source engine bench (PR 10): blocks of B sources
// advancing in lockstep through one shared by-end index walk per hop
// level (core/batched_engine) vs the per-source pooled path.
//
// Sections (rows land in bench_out/perf_batch.csv):
//
//   identity  -- the hard gate: for every workload (conference K=16/32,
//                campus K=16) and batch size B in {4, 16, 64}, the
//                batched all-pairs delay CDF must be BIT-identical to
//                the per-source pooled run (B=1) -- every CDF double,
//                every diameter at every eps/tol, fixpoint,
//                denominator, and the additive EngineStats counters.
//   integrate -- the hard gate on the other batched surfaces: the
//                sharded driver (each shard running its owned sources
//                in blocks), the query engine's cold all-pairs path,
//                and the live engine's bulk bootstrap must all
//                reproduce the per-source result bit for bit.
//   arena     -- the hard gate on memory: the shared block arena's
//                PER-LANE peak must stay flat as B grows (a block of B
//                lanes may not peak at more than kArenaSlack times B
//                per-source peaks).
//   speedup   -- B sweep {1, 4, 16, 64}, interleaved best-of
//                process-CPU (bench_util.hpp); B=1 is the per-source
//                pooled path. The ≥1.25x-at-best-B target is evaluated
//                and recorded in the JSON gate record. NOTE: on every
//                workload measured in this container the sweep is a
//                documented NEGATIVE result -- the by-end index of
//                trace-scale opportunistic workloads is L2-resident, so
//                there is no stream to amortize, and interleaving B
//                lanes' frontier state costs locality the shared walk
//                cannot buy back (EXPERIMENTS.md). Exit status reflects
//                the correctness gates, which is what CI enforces
//                (single-core container, PR 7 precedent).
//
// Emits machine-readable bench_out/BENCH_pr10.json (bench_perf_engine
// conventions). Exit status is non-zero iff a bit-identity, integration
// or arena-flatness check fails.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/diameter.hpp"
#include "core/incremental_engine.hpp"
#include "core/query_engine.hpp"
#include "stats/log_grid.hpp"
#include "trace/generators.hpp"
#include "util/csv.hpp"
#include "util/time_format.hpp"

using namespace odtn;

namespace {

/// A block of B lanes may not peak at more than this many times B
/// per-source arena peaks (shared slabs round per-lane spans up to the
/// alignment quantum, and the block peaks when its LARGEST lane does).
constexpr double kArenaSlack = 1.5;

/// The ISSUE target for the best-B process-CPU speedup over the
/// per-source pooled path.
constexpr double kCpuSpeedupTarget = 1.25;

constexpr int kBatchSweep[] = {1, 4, 16, 64};

/// Conference workload of bench_perf_engine (community-structured,
/// sparse, many hop levels -- the regime of Reality Mining, Table 1).
TemporalGraph make_conference_trace() {
  SyntheticTraceSpec spec;
  spec.name = "conference_batch";
  spec.num_internal = 240;
  spec.duration = 3 * kDay;
  spec.pair_contacts_mean = 0.06;
  spec.num_communities = 12;
  spec.gatherings = {25.0, 0.18, 0.04, 10 * kMinute, 0.75, 0.05};
  spec.profile = ActivityProfile::conference();
  return generate_trace(spec, 1717).graph;
}

/// Campus workload of bench_perf_engine (diurnal class schedule over a
/// five-day observation window).
TemporalGraph make_campus_trace() {
  SyntheticTraceSpec spec;
  spec.name = "campus_batch";
  spec.num_internal = 160;
  spec.duration = 5 * kDay;
  spec.pair_contacts_mean = 0.10;
  spec.num_communities = 10;
  spec.gatherings = {30.0, 0.22, 0.04, 15 * kMinute, 0.8, 0.05};
  spec.profile = ActivityProfile::campus();
  return generate_trace(spec, 2024).graph;
}

/// Bitwise result equality (bench_perf_shard conventions): CDFs,
/// diameters, scalars and the additive propagation counters. The
/// batch_* counters and arena peaks are structural -- they describe the
/// block execution shape, not the DP -- and are reported, not compared.
bool results_bit_identical(const DelayCdfResult& a, const DelayCdfResult& b,
                           std::string* why, bool compare_stats = true) {
  auto fail = [&](const char* what) {
    if (why) *why = what;
    return false;
  };
  if (a.grid != b.grid) return fail("grid");
  if (a.cdf_by_hops != b.cdf_by_hops) return fail("cdf_by_hops");
  if (a.cdf_unbounded != b.cdf_unbounded) return fail("cdf_unbounded");
  if (a.fixpoint_hops != b.fixpoint_hops) return fail("fixpoint_hops");
  if (a.converged != b.converged) return fail("converged");
  if (a.denominator != b.denominator) return fail("denominator");
  for (const double eps : {0.001, 0.01, 0.05, 0.1, 0.5}) {
    if (a.diameter(eps) != b.diameter(eps)) return fail("diameter(eps)");
    if (a.diameter_per_delay(eps) != b.diameter_per_delay(eps))
      return fail("diameter_per_delay(eps)");
  }
  for (const double tol : {0.001, 0.01, 0.05})
    if (a.diameter_absolute(tol) != b.diameter_absolute(tol))
      return fail("diameter_absolute(tol)");
  if (!compare_stats) return true;
  const EngineStats& s = a.stats;
  const EngineStats& t = b.stats;
  if (s.contacts_examined != t.contacts_examined ||
      s.pairs_inserted != t.pairs_inserted ||
      s.pairs_dominated != t.pairs_dominated ||
      s.frontier_copies_avoided != t.frontier_copies_avoided ||
      s.cdf_pairs_integrated != t.cdf_pairs_integrated ||
      s.merge_batches != t.merge_batches)
    return fail("additive EngineStats counters");
  return true;
}

struct Workload {
  std::string name;
  const TemporalGraph* graph;
  int max_hops;
};

struct BatchRecord {
  std::string section;
  std::string workload;
  int batch = 1;
  double cpu_ms = 0.0;
  double wall_ms = 0.0;
  double speedup_vs_pooled = 1.0;
  bool gated = false;
  bool pass = true;
  EngineStats stats;
};

DelayCdfOptions base_options(int max_hops) {
  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kDay, 48);
  opt.max_hops = max_hops;
  opt.num_threads = 1;
  return opt;
}

int section_identity(CsvWriter& csv, std::vector<BatchRecord>& records,
                     const std::vector<Workload>& workloads,
                     std::vector<DelayCdfResult>& references) {
  std::printf("\n-- identity: batched vs per-source pooled, every workload "
              "x batch size (gated) --\n");
  int failures = 0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const Workload& wl = workloads[w];
    DelayCdfOptions opt = base_options(wl.max_hops);
    const DelayCdfResult& reference = references[w];
    for (const int batch : kBatchSweep) {
      if (batch == 1) continue;  // the reference itself
      opt.source_batch = batch;
      const bench::TimedRun t =
          bench::time_once([&] { (void)compute_delay_cdf(*wl.graph, opt); });
      const DelayCdfResult run = compute_delay_cdf(*wl.graph, opt);
      std::string why;
      const bool ok = results_bit_identical(run, reference, &why);
      std::printf("  %-20s B=%-3d %8.1f ms  blocks=%-4llu walks_saved=%-7llu "
                  "%s%s\n",
                  wl.name.c_str(), batch, t.cpu_ms,
                  static_cast<unsigned long long>(run.stats.batch_blocks),
                  static_cast<unsigned long long>(run.stats.index_walks_saved),
                  ok ? "bit-identical" : "MISMATCH: ", ok ? "" : why.c_str());
      if (!ok) ++failures;
      csv.write_row({"identity", wl.name, std::to_string(batch),
                     std::to_string(t.cpu_ms), std::to_string(t.wall_ms), "1.0",
                     ok ? "1" : "0", std::to_string(run.stats.pairs_peak),
                     std::to_string(run.stats.batch_blocks),
                     std::to_string(run.stats.index_walks_saved)});
      records.push_back({"identity", wl.name, batch, t.cpu_ms, t.wall_ms, 1.0,
                         true, ok, run.stats});
    }
  }
  bench::check(failures == 0,
               "batched CDFs and diameters bit-identical to the per-source "
               "pooled path for every workload and batch size");
  return failures;
}

int section_integrations(CsvWriter& csv, std::vector<BatchRecord>& records,
                         const TemporalGraph& g, int max_hops,
                         const DelayCdfResult& reference) {
  std::printf("\n-- integrate: sharded / query-engine / live-bootstrap "
              "batched surfaces (gated) --\n");
  int failures = 0;
  // The live engine's all_pairs() serves CDFs from its version lists, so
  // its counters describe that machinery, not a fresh batch DP: the gate
  // for it compares the results, not the stats (as test_batched_engine
  // and test_incremental_engine do).
  auto gate = [&](const char* what, const DelayCdfResult& run,
                  bool compare_stats = true) {
    std::string why;
    const bool ok =
        results_bit_identical(run, reference, &why, compare_stats);
    std::printf("  %-24s %s%s\n", what,
                ok ? "bit-identical" : "MISMATCH: ", ok ? "" : why.c_str());
    if (!ok) ++failures;
    csv.write_row({"integrate", what, "4", "", "", "", ok ? "1" : "0",
                   std::to_string(run.stats.pairs_peak),
                   std::to_string(run.stats.batch_blocks),
                   std::to_string(run.stats.index_walks_saved)});
    records.push_back({"integrate", what, 4, 0.0, 0.0, 1.0, true, ok,
                       run.stats});
  };

  DelayCdfOptions opt = base_options(max_hops);
  opt.source_batch = 4;
  opt.sharding.num_shards = 3;
  opt.sharding.policy = ShardPolicy::kDegreeBalanced;
  gate("sharded S=3 B=4", compute_delay_cdf(g, opt));

  QueryEngineOptions qopt;
  qopt.grid = make_log_grid(2 * kMinute, kDay, 48);
  qopt.max_hops = max_hops;
  qopt.num_threads = 1;
  qopt.source_batch = 4;
  QueryEngine qe(TemporalGraph(g), qopt);
  gate("query-engine cold B=4", qe.all_pairs());

  // Live bootstrap: the whole trace (already in canonical order) as the
  // first bulk batch, blocks of 4 lanes seeding the per-source DPs.
  IncrementalCdfOptions iopt;
  iopt.grid = make_log_grid(2 * kMinute, kDay, 48);
  iopt.max_hops = max_hops;
  iopt.num_threads = 1;
  iopt.source_batch = 4;
  IncrementalAllPairsEngine live(g.num_nodes(), g.directed(), iopt);
  live.append(g.contacts());
  gate("live bootstrap B=4", live.all_pairs(), /*compare_stats=*/false);

  bench::check(failures == 0,
               "sharded, query-engine and live-bootstrap batched surfaces "
               "bit-identical to the per-source pooled path");
  return failures;
}

int section_arena(const std::vector<BatchRecord>& identity,
                  const std::vector<DelayCdfResult>& references,
                  const std::vector<Workload>& workloads) {
  std::printf("\n-- arena: per-lane block-arena peak vs per-source peak "
              "(gated, slack %.2fx) --\n", kArenaSlack);
  int failures = 0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const double solo_peak =
        static_cast<double>(references[w].stats.pairs_peak);
    for (const BatchRecord& r : identity) {
      if (r.section != "identity" || r.workload != workloads[w].name) continue;
      const double per_lane =
          static_cast<double>(r.stats.pairs_peak) / r.batch;
      const bool ok = per_lane <= kArenaSlack * solo_peak;
      std::printf("  %-20s B=%-3d peak=%-9llu per-lane=%-8.0f solo=%-8.0f "
                  "%s\n",
                  r.workload.c_str(), r.batch,
                  static_cast<unsigned long long>(r.stats.pairs_peak),
                  per_lane, solo_peak, ok ? "flat" : "EXCEEDS SLACK");
      if (!ok) ++failures;
    }
  }
  bench::check(failures == 0,
               "per-lane arena peak flat across batch sizes (shared slabs "
               "do not amplify per-source memory)");
  return failures;
}

double section_speedup(CsvWriter& csv, std::vector<BatchRecord>& records,
                       const std::vector<Workload>& workloads) {
  std::printf("\n-- speedup: B sweep, interleaved best-of-3 process-CPU "
              "(target %.2fx at best B, recorded in JSON) --\n",
              kCpuSpeedupTarget);
  double best_overall = 0.0;
  for (const Workload& wl : workloads) {
    std::vector<std::function<void()>> arms;
    for (const int batch : kBatchSweep)
      arms.push_back([&wl, batch] {
        DelayCdfOptions opt = base_options(wl.max_hops);
        opt.source_batch = batch;
        (void)compute_delay_cdf(*wl.graph, opt);
      });
    const std::vector<bench::TimedRun> best =
        bench::best_of_interleaved(3, arms);
    const double pooled_cpu = best[0].cpu_ms;
    for (std::size_t a = 0; a < arms.size(); ++a) {
      const int batch = kBatchSweep[a];
      const double speedup = pooled_cpu / std::max(best[a].cpu_ms, 1e-9);
      if (batch > 1) best_overall = std::max(best_overall, speedup);
      std::printf("  %-20s B=%-3d %8.1f ms CPU  (%.2fx vs pooled)%s\n",
                  wl.name.c_str(), batch, best[a].cpu_ms, speedup,
                  batch == 1 ? "  [baseline]" : "");
      csv.write_row({"speedup", wl.name, std::to_string(batch),
                     std::to_string(best[a].cpu_ms),
                     std::to_string(best[a].wall_ms), std::to_string(speedup),
                     "", "", "", ""});
      records.push_back({"speedup", wl.name, batch, best[a].cpu_ms,
                         best[a].wall_ms, speedup, false, true, EngineStats{}});
    }
  }
  std::printf("  best batched speedup across workloads: %.2fx (target "
              "%.2fx)\n",
              best_overall, kCpuSpeedupTarget);
  if (best_overall < kCpuSpeedupTarget)
    std::printf("  NEGATIVE RESULT: the shared index walk does not pay for "
                "lane-state interleaving on cache-resident indexes; see "
                "EXPERIMENTS.md (perf_batch) for the full analysis.\n");
  return best_overall;
}

void write_bench_json_pr10(const std::vector<BatchRecord>& records,
                           const std::vector<Workload>& workloads,
                           double best_speedup, int identity_failures,
                           int arena_failures) {
  const std::string path = "bench_out/BENCH_pr10.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::printf("[json] could not open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_perf_batch\",\n  \"pr\": 10,\n"
               "  \"metric\": \"batched multi-source blocks vs per-source "
               "pooled path\",\n  \"workloads\": [\n");
  for (std::size_t w = 0; w < workloads.size(); ++w)
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"nodes\": %zu, \"contacts\": %zu, "
                 "\"max_hops\": %d}%s\n",
                 workloads[w].name.c_str(), workloads[w].graph->num_nodes(),
                 workloads[w].graph->num_contacts(), workloads[w].max_hops,
                 w + 1 < workloads.size() ? "," : "");
  std::fprintf(f, "  ],\n  \"records\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BatchRecord& r = records[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"workload\": \"%s\", "
                 "\"batch\": %d, \"cpu_ms\": %.3f, \"wall_ms\": %.3f, "
                 "\"speedup_vs_pooled\": %.3f, ",
                 r.section.c_str(), r.workload.c_str(), r.batch, r.cpu_ms,
                 r.wall_ms, r.speedup_vs_pooled);
    if (r.gated)
      std::fprintf(f, "\"gate\": \"bit_identical\", \"gate_pass\": %s, ",
                   r.pass ? "true" : "false");
    std::fprintf(
        f,
        "\"batch_blocks\": %llu, \"index_walks_saved\": %llu, "
        "\"batch_lane_steps\": %llu, \"batch_lane_slots\": %llu, "
        "\"pairs_peak\": %llu}%s\n",
        static_cast<unsigned long long>(r.stats.batch_blocks),
        static_cast<unsigned long long>(r.stats.index_walks_saved),
        static_cast<unsigned long long>(r.stats.batch_lane_steps),
        static_cast<unsigned long long>(r.stats.batch_lane_slots),
        static_cast<unsigned long long>(r.stats.pairs_peak),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"gates\": [\n"
               "    {\"gate\": \"bit_identical_every_batch\", "
               "\"gate_pass\": %s},\n"
               "    {\"gate\": \"per_lane_arena_peak_flat\", "
               "\"gate_pass\": %s},\n"
               "    {\"gate\": \"cpu_speedup_best_b\", \"value\": %.3f, "
               "\"threshold\": %.2f, \"gate_pass\": %s}\n  ]\n}\n",
               identity_failures == 0 ? "true" : "false",
               arena_failures == 0 ? "true" : "false", best_speedup,
               kCpuSpeedupTarget,
               best_speedup >= kCpuSpeedupTarget ? "true" : "false");
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  bench::banner("Batched multi-source engine",
                "lockstep source blocks sharing one index walk per level: "
                "bit-identity + arena gates, B-sweep CPU measurement");
  const TemporalGraph conference = make_conference_trace();
  const TemporalGraph campus = make_campus_trace();
  const std::vector<Workload> workloads = {
      {"conference_n240_k16", &conference, 16},
      {"conference_n240_k32", &conference, 32},
      {"campus_n160_k16", &campus, 16},
  };
  for (const Workload& wl : workloads)
    std::printf("  %-20s %zu nodes, %zu contacts, %s, K=%d\n",
                wl.name.c_str(), wl.graph->num_nodes(),
                wl.graph->num_contacts(),
                format_duration(wl.graph->duration()).c_str(), wl.max_hops);

  // Per-source pooled references (source_batch = 1).
  std::vector<DelayCdfResult> references;
  for (const Workload& wl : workloads)
    references.push_back(
        compute_delay_cdf(*wl.graph, base_options(wl.max_hops)));

  CsvWriter csv(bench::csv_path("perf_batch"));
  csv.write_row({"section", "workload", "batch", "cpu_ms", "wall_ms",
                 "speedup_vs_pooled", "bit_identical", "pairs_peak",
                 "batch_blocks", "index_walks_saved"});

  std::vector<BatchRecord> records;
  int failures = section_identity(csv, records, workloads, references);
  failures += section_integrations(csv, records, conference, 16,
                                   references[0]);
  const int arena_failures = section_arena(records, references, workloads);
  failures += arena_failures;
  const double best_speedup = section_speedup(csv, records, workloads);
  write_bench_json_pr10(records, workloads, best_speedup,
                        failures - arena_failures, arena_failures);
  std::printf("[csv] wrote %s\n", bench::csv_path("perf_batch").c_str());

  if (failures) {
    std::printf("\n%d gated check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall gated checks passed\n");
  return 0;
}
