// Sharded all-pairs engine bench (PR 7): the partitioned execution
// layer (core/sharded_engine) vs the classic driver on trace-scale
// workloads.
//
// Sections (rows land in bench_out/perf_shard.csv):
//
//   identity -- the hard gate: for every policy (contiguous,
//               block-cyclic, degree-balanced) and shard count
//               S in {1, 2, 3, 7}, the sharded all-pairs delay CDF must
//               be BIT-identical to the unsharded run -- every CDF
//               double, every diameter at every eps/tol, fixpoint,
//               denominator -- and the additive EngineStats counters
//               must match (workspace allocation/reuse counters are
//               structural: one workspace per shard vs per worker).
//               Every sharded run round-trips its ShardRequest and
//               ShardResult through the versioned byte encodings, so
//               the wire format is gated here too.
//   locality -- shard-count timing sweep, REPORT ONLY (not gated):
//               each shard runs against a private graph copy with a
//               private arena pool, so on a multi-core host partitioned
//               execution buys cache locality; this container is
//               single-core, so the sweep documents the overhead/
//               speedup trajectory rather than gating it.
//
// Emits machine-readable bench_out/BENCH_pr7.json (gate fields only on
// gated records, bench_perf_engine conventions). Exit status is
// non-zero iff a bit-identity check fails.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/diameter.hpp"
#include "core/partition.hpp"
#include "core/sharded_engine.hpp"
#include "stats/log_grid.hpp"
#include "trace/generators.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"
#include "util/time_format.hpp"

using namespace odtn;

namespace {

using bench::now_ms;  // shared wall clock (bench_util.hpp)

/// Conference-style community trace, the regime of Figures 9-12.
TemporalGraph make_workload_trace() {
  SyntheticTraceSpec spec;
  spec.name = "conference_shard";
  spec.num_internal = 120;
  spec.duration = 3 * kDay;
  spec.pair_contacts_mean = 0.10;
  spec.num_communities = 8;
  spec.gatherings = {25.0, 0.2, 0.04, 10 * kMinute, 0.8, 0.05};
  spec.profile = ActivityProfile::conference();
  return generate_trace(spec, 7117).graph;
}

/// Bitwise result equality: CDFs, diameters, scalars. Additive stats
/// must agree; workspace allocation/reuse counters are structural (per
/// shard vs per worker) and are compared as a sum only.
bool results_bit_identical(const DelayCdfResult& a, const DelayCdfResult& b,
                           std::string* why) {
  auto fail = [&](const char* what) {
    if (why) *why = what;
    return false;
  };
  if (a.grid != b.grid) return fail("grid");
  if (a.cdf_by_hops != b.cdf_by_hops) return fail("cdf_by_hops");
  if (a.cdf_unbounded != b.cdf_unbounded) return fail("cdf_unbounded");
  if (a.fixpoint_hops != b.fixpoint_hops) return fail("fixpoint_hops");
  if (a.converged != b.converged) return fail("converged");
  if (a.denominator != b.denominator) return fail("denominator");
  for (const double eps : {0.001, 0.01, 0.05, 0.1, 0.5}) {
    if (a.diameter(eps) != b.diameter(eps)) return fail("diameter(eps)");
    if (a.diameter_per_delay(eps) != b.diameter_per_delay(eps))
      return fail("diameter_per_delay(eps)");
  }
  for (const double tol : {0.001, 0.01, 0.05})
    if (a.diameter_absolute(tol) != b.diameter_absolute(tol))
      return fail("diameter_absolute(tol)");
  const EngineStats& s = a.stats;
  const EngineStats& t = b.stats;
  if (s.contacts_examined != t.contacts_examined ||
      s.pairs_inserted != t.pairs_inserted ||
      s.pairs_dominated != t.pairs_dominated ||
      s.frontier_copies_avoided != t.frontier_copies_avoided ||
      s.cdf_pairs_integrated != t.cdf_pairs_integrated ||
      s.merge_batches != t.merge_batches)
    return fail("additive EngineStats counters");
  if (s.workspace_allocations + s.workspace_reuses !=
      t.workspace_allocations + t.workspace_reuses)
    return fail("workspace counter sum");
  return true;
}

struct ShardRecord {
  std::string section;
  std::string policy;
  std::size_t shards = 0;
  double wall_ms = 0.0;
  double speedup_vs_unsharded = 1.0;
  bool gated = false;
  bool bit_identical = true;
  EngineStats stats;
};

int section_identity(CsvWriter& csv, std::vector<ShardRecord>& records,
                     const TemporalGraph& g, const DelayCdfOptions& opt,
                     const DelayCdfResult& reference, double base_ms) {
  std::printf("\n-- identity: sharded vs unsharded, every policy x shard "
              "count (gated) --\n");
  int failures = 0;
  for (const ShardPolicy policy :
       {ShardPolicy::kContiguous, ShardPolicy::kBlockCyclic,
        ShardPolicy::kDegreeBalanced}) {
    for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
      DelayCdfOptions sharded_opt = opt;
      sharded_opt.sharding.num_shards = shards;
      sharded_opt.sharding.policy = policy;
      const double t0 = now_ms();
      const DelayCdfResult run = compute_delay_cdf(g, sharded_opt);
      const double wall = now_ms() - t0;
      std::string why;
      const bool ok = results_bit_identical(run, reference, &why);
      std::printf("  %-16s S=%zu  %8.1f ms  diameter(0.01)=%d  %s%s\n",
                  shard_policy_name(policy), shards, wall,
                  run.diameter(0.01), ok ? "bit-identical" : "MISMATCH: ",
                  ok ? "" : why.c_str());
      if (!ok) ++failures;
      csv.write_row({"identity", shard_policy_name(policy),
                     std::to_string(shards), std::to_string(wall),
                     std::to_string(base_ms / std::max(wall, 1e-9)),
                     ok ? "1" : "0",
                     std::to_string(run.stats.workspace_allocations),
                     std::to_string(run.stats.workspace_reuses)});
      records.push_back({"identity", shard_policy_name(policy), shards, wall,
                         base_ms / std::max(wall, 1e-9), true, ok, run.stats});
    }
  }
  bench::check(failures == 0,
               "sharded CDFs and diameters bit-identical to unsharded for "
               "every policy and shard count");
  return failures;
}

void section_locality(CsvWriter& csv, std::vector<ShardRecord>& records,
                      const TemporalGraph& g, const DelayCdfOptions& opt,
                      double base_ms) {
  std::printf("\n-- locality: shard-count timing sweep (report only) --\n");
  std::printf("  unsharded baseline: %.1f ms (%u worker(s))\n", base_ms,
              shared_thread_pool().num_workers());
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    DelayCdfOptions sharded_opt = opt;
    sharded_opt.sharding.num_shards = shards;
    sharded_opt.sharding.policy = ShardPolicy::kDegreeBalanced;
    double wall = 1e300;
    EngineStats stats;
    for (int rep = 0; rep < 2; ++rep) {
      const double t0 = now_ms();
      const DelayCdfResult run = compute_delay_cdf(g, sharded_opt);
      wall = std::min(wall, now_ms() - t0);
      stats = run.stats;
    }
    const double speedup = base_ms / std::max(wall, 1e-9);
    std::printf("  S=%zu degree-balanced: %8.1f ms (%.2fx vs unsharded)\n",
                shards, wall, speedup);
    csv.write_row({"locality", "degree-balanced", std::to_string(shards),
                   std::to_string(wall), std::to_string(speedup), "",
                   std::to_string(stats.workspace_allocations),
                   std::to_string(stats.workspace_reuses)});
    records.push_back({"locality", "degree-balanced", shards, wall, speedup,
                       false, true, stats});
  }
  std::printf("  (single-core container: the sweep documents partitioning "
              "overhead; per-shard private graphs + arenas pay off on "
              "multi-core hosts)\n");
}

void write_bench_json_pr7(const std::vector<ShardRecord>& records,
                          const TemporalGraph& g, double base_ms) {
  const std::string path = "bench_out/BENCH_pr7.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::printf("[json] could not open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_perf_shard\",\n  \"pr\": 7,\n"
               "  \"metric\": \"sharded all-pairs engine vs unsharded\",\n"
               "  \"workload\": {\"nodes\": %zu, \"contacts\": %zu},\n"
               "  \"unsharded_wall_ms\": %.3f,\n  \"workers\": %u,\n"
               "  \"records\": [\n",
               g.num_nodes(), g.num_contacts(), base_ms,
               shared_thread_pool().num_workers());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ShardRecord& r = records[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"policy\": \"%s\", "
                 "\"shards\": %zu, \"wall_ms\": %.3f, "
                 "\"speedup_vs_unsharded\": %.3f, ",
                 r.section.c_str(), r.policy.c_str(), r.shards, r.wall_ms,
                 r.speedup_vs_unsharded);
    if (r.gated)
      std::fprintf(f, "\"gate\": \"bit_identical\", \"gate_pass\": %s, ",
                   r.bit_identical ? "true" : "false");
    std::fprintf(
        f,
        "\"cdf_pairs_integrated\": %llu, \"workspace_allocations\": %llu, "
        "\"workspace_reuses\": %llu}%s\n",
        static_cast<unsigned long long>(r.stats.cdf_pairs_integrated),
        static_cast<unsigned long long>(r.stats.workspace_allocations),
        static_cast<unsigned long long>(r.stats.workspace_reuses),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  bench::banner("Sharded engine",
                "partitioned source execution vs the classic all-pairs "
                "driver: bit-identity gate + locality sweep");
  const TemporalGraph g = make_workload_trace();
  std::printf("  trace: %zu nodes, %zu contacts, %s\n", g.num_nodes(),
              g.num_contacts(), format_duration(g.duration()).c_str());

  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kDay, 48);
  opt.max_hops = 10;

  // Unsharded reference, best of 2 (the result is identical across reps).
  double base_ms = 1e300;
  DelayCdfResult reference;
  for (int rep = 0; rep < 2; ++rep) {
    const double t0 = now_ms();
    reference = compute_delay_cdf(g, opt);
    base_ms = std::min(base_ms, now_ms() - t0);
  }
  std::printf("  unsharded: %.1f ms, diameter(0.01)=%d, fixpoint=%d\n",
              base_ms, reference.diameter(0.01), reference.fixpoint_hops);

  CsvWriter csv(bench::csv_path("perf_shard"));
  csv.write_row({"section", "policy", "shards", "wall_ms",
                 "speedup_vs_unsharded", "bit_identical",
                 "workspace_allocations", "workspace_reuses"});

  std::vector<ShardRecord> records;
  const int failures =
      section_identity(csv, records, g, opt, reference, base_ms);
  section_locality(csv, records, g, opt, base_ms);
  write_bench_json_pr7(records, g, base_ms);
  std::printf("[csv] wrote %s\n", bench::csv_path("perf_shard").c_str());

  if (failures) {
    std::printf("\n%d bit-identity check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall bit-identity checks passed\n");
  return 0;
}
