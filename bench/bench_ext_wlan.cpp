// Extension bench: the diameter of campus WLAN association networks.
//
// §5.1: "We also made the same observations on ... traces from campus
// WLAN in Dartmouth [16] and UCSD [13]" (results in the tech report
// [3]). Contacts are co-associations with the same access point. This
// bench builds Dartmouth-like and UCSD-like synthetic association
// traces and runs the full diameter analysis: the small-world result
// should hold in this very different contact substrate too.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/log_grid.hpp"
#include "trace/wlan_generator.hpp"

using namespace odtn;

namespace {

void run(const WlanTraceSpec& spec, std::uint64_t seed) {
  const auto trace = generate_wlan_trace(spec, seed);
  const auto& g = trace.graph;
  std::printf("\n--- %s: %zu devices, %zu APs, %zu sessions, %zu contacts "
              "over %s ---\n",
              spec.name.c_str(), spec.num_devices, spec.num_access_points,
              trace.num_sessions, g.num_contacts(),
              format_duration(g.duration()).c_str());

  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kWeek, 40);
  opt.max_hops = 12;
  const auto result = compute_delay_cdf(g, opt);
  const std::vector<int> shown{1, 2, 3, 4, 6, kUnboundedHops};
  bench::print_cdf_table(result, shown);
  bench::plot_cdf_family(result, shown, spec.name);
  std::printf("diameter (99%%): %d hops; fixpoint %d; flooding success "
              "%.1f%%\n",
              result.diameter(0.01), result.fixpoint_hops,
              100.0 * result.cdf_unbounded.back());
  bench::write_cdf_csv("ext_wlan_" + spec.name, result, shown);
}

}  // namespace

int main() {
  bench::banner("Extension (§5.1, tech report [3])",
                "diameter of campus WLAN association networks");

  WlanTraceSpec dartmouth;
  dartmouth.name = "Dartmouth-like";
  dartmouth.num_devices = 120;
  dartmouth.num_access_points = 60;
  dartmouth.duration = 14 * kDay;
  dartmouth.sessions_per_day = 5.0;
  dartmouth.home_ap_bias = 0.65;
  run(dartmouth, 0xDA27);

  WlanTraceSpec ucsd;
  ucsd.name = "UCSD-like";
  ucsd.num_devices = 80;
  ucsd.num_access_points = 30;
  ucsd.duration = 10 * kDay;
  ucsd.sessions_per_day = 4.0;
  ucsd.session_mean = 60 * kMinute;
  ucsd.home_ap_bias = 0.7;
  run(ucsd, 0x0C5D);

  std::printf(
      "\nPaper check: even though WLAN co-association is a coarser proxy\n"
      "for proximity than Bluetooth scanning, the network diameter stays\n"
      "in the same small band -- the small-world-over-time phenomenon is\n"
      "substrate-independent, as the tech report observed.\n");
  return 0;
}
