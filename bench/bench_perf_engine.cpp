// Performance bench (§4.4 claim): the indexed dirty-set engine vs the
// seed level-sweep engine, and the hop-incremental CDF accumulation vs
// the direct reference, on the all-pairs delay-CDF -- the hottest path
// behind Figures 9-12 and Table 1.
//
// Sections (all rows land in bench_out/perf_engine.csv together with the
// engine instrumentation counters):
//
//   scaling -- single-source fixpoint runs by trace density, per engine.
//   perf    -- all-pairs delay-CDF on a synthetic trace with >= 200
//              nodes; acceptance: indexed engine >= 2x faster wall-clock
//              than the level-sweep engine, identical CDFs. Both runs
//              use the direct accumulation path so the gate compares the
//              propagation schemes alone, bit for bit.
//   fig09   -- the three Figure-9 dataset configs; the indexed engine's
//              CDF vectors must match the level-sweep engine within
//              1e-12 at every grid point and hop budget.
//   accum   -- hop-incremental accumulation + per-worker engine reuse
//              (CdfAccumulation::kIncremental) vs the direct reference
//              (kDirect), both on the indexed engine, over trace-scale
//              conference / campus workloads under the paper's day-time
//              traffic model, swept across hop-budget depths K: direct
//              pays a full re-integration per budget, incremental only
//              the level deltas, so the gap widens with K. Acceptance on
//              the deep (K=32) sweep: >= 1.5x end-to-end
//              compute_delay_cdf speedup; at every K: CDFs within 1e-9,
//              bit-identical diameter() at every eps, and zero
//              steady-state workspace allocations after the first source
//              per worker (EngineStats counters). Also emits
//              machine-readable bench_out/BENCH_pr3.json.
//   kernels -- the pooled-arena engine (EngineMode::kPooled, PR 5) vs
//              the per-pair-insert indexed engine (the PR 3 path), plus
//              the runtime-dispatched SIMD kernel micros (PR 6).
//              Microbenchmarks isolate the rewritten kernels
//              (per-candidate insert() vs prune + two-way merge into
//              fresh arena space; per-pair CDF integration vs SoA
//              streaming, gated >= 1.0x) and the dispatched variants
//              against their scalar references (micro_prune on
//              presorted sawtooth batches and micro_merge on a large
//              frontier, both gated >= 1.2x when a vector level is
//              active; micro_difftrim ungated), then the end-to-end
//              gate runs single-thread all-pairs compute_delay_cdf
//              (pooled+incremental vs indexed+incremental) on the
//              conference K=32 and campus workloads with day-time
//              windows. Acceptance: >= 1.3x end-to-end on process-CPU
//              time, best-of-9 interleaved reps (contention only
//              inflates CPU time, so the per-arm minimum rejects it),
//              bit-identical frontiers on sampled sources, identical
//              diameters, CDFs within 1e-9, and zero arena growth
//              after the warm pass (workspace_allocations == 1,
//              arena_bytes_peak flat across sources). Emits
//              bench_out/BENCH_pr6.json with the active SIMD level
//              (BENCH_pr5.json stays as the PR 5 historical record).
//
// Exit status is non-zero when a CDF equivalence / diameter / allocation
// check fails (so CI catches semantic regressions); speedup shortfalls
// are reported as FAIL lines but do not abort the remaining sections.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/delivery_function.hpp"
#include "core/diameter.hpp"
#include "core/frontier_kernels.hpp"
#include "core/optimal_paths.hpp"
#include "stats/log_grid.hpp"
#include "util/rng.hpp"
#include "trace/datasets.hpp"
#include "trace/generators.hpp"
#include "trace/transforms.hpp"
#include "util/csv.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/time_format.hpp"

using namespace odtn;

namespace {

const char* engine_name(EngineMode mode) {
  switch (mode) {
    case EngineMode::kPooled:
      return "pooled";
    case EngineMode::kIndexed:
      return "indexed";
    case EngineMode::kLevelSweep:
      return "level_sweep";
  }
  return "?";
}

// Shared timing clocks (bench_util.hpp): wall for reporting, process
// CPU for single-thread gates.
using bench::cpu_now_ms;
using bench::now_ms;

struct CdfRun {
  DelayCdfResult result;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
};

CdfRun run_cdf(const TemporalGraph& graph, DelayCdfOptions opt,
               EngineMode mode, CdfAccumulation accumulation) {
  opt.engine = mode;
  opt.accumulation = accumulation;
  CdfRun run;
  const double c0 = cpu_now_ms();
  const double t0 = now_ms();
  run.result = compute_delay_cdf(graph, opt);
  run.wall_ms = now_ms() - t0;
  run.cpu_ms = cpu_now_ms() - c0;
  return run;
}

/// Best-of-`reps` wall time (the standard robust estimator under
/// scheduler and frequency noise); the result itself is identical across
/// repetitions, so the last one is returned.
CdfRun run_cdf_best(const TemporalGraph& graph, const DelayCdfOptions& opt,
                    EngineMode mode, CdfAccumulation accumulation, int reps) {
  CdfRun best = run_cdf(graph, opt, mode, accumulation);
  for (int r = 1; r < reps; ++r) {
    CdfRun run = run_cdf(graph, opt, mode, accumulation);
    run.wall_ms = std::min(run.wall_ms, best.wall_ms);
    best = std::move(run);
  }
  return best;
}

/// Largest absolute CDF discrepancy across every hop budget + unbounded.
double max_cdf_diff(const DelayCdfResult& a, const DelayCdfResult& b) {
  double worst = 0.0;
  auto scan = [&](const std::vector<double>& x, const std::vector<double>& y) {
    for (std::size_t j = 0; j < x.size(); ++j)
      worst = std::max(worst, std::abs(x[j] - y[j]));
  };
  for (std::size_t k = 0; k < a.cdf_by_hops.size(); ++k)
    scan(a.cdf_by_hops[k], b.cdf_by_hops[k]);
  scan(a.cdf_unbounded, b.cdf_unbounded);
  return worst;
}

void write_row(CsvWriter& csv, const std::string& section,
               const std::string& trace, const TemporalGraph& g,
               const std::string& scheme, double wall_ms, double speedup,
               const EngineStats& stats, double cdf_diff, bool converged) {
  csv.write_row({section, trace, std::to_string(g.num_nodes()),
                 std::to_string(g.num_contacts()), scheme,
                 std::to_string(wall_ms), std::to_string(speedup),
                 std::to_string(stats.contacts_examined),
                 std::to_string(stats.pairs_inserted),
                 std::to_string(stats.pairs_dominated),
                 std::to_string(stats.frontier_copies_avoided),
                 std::to_string(stats.cdf_pairs_integrated),
                 std::to_string(stats.workspace_allocations),
                 std::to_string(stats.workspace_reuses),
                 std::to_string(stats.merge_batches),
                 std::to_string(stats.pairs_peak),
                 std::to_string(stats.arena_bytes_peak),
                 std::to_string(cdf_diff), converged ? "1" : "0"});
}

void print_stats(const EngineStats& s) {
  std::printf("    %llu contact extensions, %llu pairs kept, %llu dominated, "
              "%llu frontier copies avoided\n",
              static_cast<unsigned long long>(s.contacts_examined),
              static_cast<unsigned long long>(s.pairs_inserted),
              static_cast<unsigned long long>(s.pairs_dominated),
              static_cast<unsigned long long>(s.frontier_copies_avoided));
  std::printf("    %llu cdf pairs integrated, %llu workspace allocations, "
              "%llu workspace reuses\n",
              static_cast<unsigned long long>(s.cdf_pairs_integrated),
              static_cast<unsigned long long>(s.workspace_allocations),
              static_cast<unsigned long long>(s.workspace_reuses));
  if (s.merge_batches > 0)
    std::printf("    %llu merge batches, %llu pairs peak, %llu arena bytes "
                "peak\n",
                static_cast<unsigned long long>(s.merge_batches),
                static_cast<unsigned long long>(s.pairs_peak),
                static_cast<unsigned long long>(s.arena_bytes_peak));
}

TemporalGraph make_scaling_trace(double scale) {
  SyntheticTraceSpec spec;
  spec.num_internal = 30;
  spec.duration = 2 * kDay;
  spec.pair_contacts_mean = 2.0 * scale;
  spec.num_communities = 4;
  spec.gatherings = {80.0 * scale, 0.35, 0.06, 12 * kMinute, 0.8, 0.06};
  spec.profile = ActivityProfile::conference();
  return generate_trace(spec, 4242).graph;
}

/// Campus-style trace with N >= 200 nodes for the headline speedup
/// measurement: community-structured and sparse, so propagation reaches
/// the fixpoint over many hop levels with small per-level active sets --
/// the regime opportunistic traces live in (Reality Mining, Table 1).
TemporalGraph make_large_trace() {
  SyntheticTraceSpec spec;
  spec.num_internal = 240;
  spec.duration = 3 * kDay;
  spec.pair_contacts_mean = 0.06;
  spec.num_communities = 12;
  spec.gatherings = {25.0, 0.18, 0.04, 10 * kMinute, 0.75, 0.05};
  spec.profile = ActivityProfile::conference();
  return generate_trace(spec, 1717).graph;
}

/// Campus workload for the accumulation section: diurnal class schedule,
/// community-structured and sparse like Reality Mining, over a five-day
/// observation window.
TemporalGraph make_campus_trace() {
  SyntheticTraceSpec spec;
  spec.name = "campus_accum";
  spec.num_internal = 160;
  spec.duration = 5 * kDay;
  spec.pair_contacts_mean = 0.10;
  spec.num_communities = 10;
  spec.gatherings = {30.0, 0.22, 0.04, 15 * kMinute, 0.8, 0.05};
  spec.profile = ActivityProfile::campus();
  return generate_trace(spec, 2024).graph;
}

/// Day-time-only start windows (08:00-20:00 each day), the paper's
/// §5.3.1 traffic model: messages are created during waking hours only.
/// Integration cost scales with the window count while propagation work
/// is unchanged -- exactly the accumulation-bound regime this section
/// measures.
std::vector<std::pair<double, double>> day_time_windows(
    const TemporalGraph& g) {
  std::vector<std::pair<double, double>> w;
  for (double day = g.start_time(); day + 20 * kHour <= g.end_time();
       day += kDay)
    w.emplace_back(day + 8 * kHour, day + 20 * kHour);
  return w;
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

int section_scaling(CsvWriter& csv) {
  std::printf("\n-- scaling: single-source fixpoint by trace density --\n");
  std::printf("%8s %10s %14s %14s %14s %9s\n", "scale", "contacts",
              "sweep(ms)", "indexed(ms)", "pooled(ms)", "speedup");
  for (const double scale : {1.0, 2.0, 4.0, 8.0}) {
    const auto g = make_scaling_trace(scale);
    double wall[3];
    EngineStats stats[3];
    const EngineMode modes[3] = {EngineMode::kLevelSweep,
                                 EngineMode::kIndexed, EngineMode::kPooled};
    for (int m = 0; m < 3; ++m) {
      const double t0 = now_ms();
      SingleSourceEngine engine(g, 0, modes[m]);
      engine.run_to_fixpoint();
      wall[m] = now_ms() - t0;
      stats[m] = engine.stats();
    }
    const double speedup = wall[0] / std::max(wall[2], 1e-9);
    std::printf("%8.1f %10zu %14.2f %14.2f %14.2f %8.2fx\n", scale,
                g.num_contacts(), wall[0], wall[1], wall[2], speedup);
    const std::string trace = "synthetic_x" + std::to_string(scale);
    for (int m = 0; m < 3; ++m)
      write_row(csv, "scaling", trace, g, engine_name(modes[m]), wall[m],
                wall[0] / std::max(wall[m], 1e-9), stats[m], 0.0, true);
  }
  return 0;
}

int section_perf(CsvWriter& csv) {
  std::printf("\n-- perf: all-pairs delay CDF, N >= 200 synthetic trace --\n");
  const auto g = make_large_trace();
  std::printf("  trace: %zu nodes, %zu contacts, %s\n", g.num_nodes(),
              g.num_contacts(), format_duration(g.duration()).c_str());
  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kDay, 32);
  opt.max_hops = 8;

  // Direct accumulation on both sides: this section gates the two
  // propagation schemes against each other bit for bit.
  const CdfRun sweep = run_cdf_best(g, opt, EngineMode::kLevelSweep,
                                    CdfAccumulation::kDirect, 2);
  const CdfRun indexed = run_cdf_best(g, opt, EngineMode::kIndexed,
                                      CdfAccumulation::kDirect, 2);
  const double speedup = sweep.wall_ms / std::max(indexed.wall_ms, 1e-9);
  const double diff = max_cdf_diff(sweep.result, indexed.result);

  std::printf("  level-sweep: %10.1f ms\n", sweep.wall_ms);
  print_stats(sweep.result.stats);
  std::printf("  indexed:     %10.1f ms  (%.2fx)\n", indexed.wall_ms, speedup);
  print_stats(indexed.result.stats);
  std::printf("  max |CDF diff| = %.3g, diameter %d vs %d, fixpoint %d\n",
              diff, indexed.result.diameter(0.01), sweep.result.diameter(0.01),
              indexed.result.fixpoint_hops);

  write_row(csv, "perf", "synthetic_n220", g, "level_sweep+direct",
            sweep.wall_ms, 1.0, sweep.result.stats, 0.0,
            sweep.result.converged);
  write_row(csv, "perf", "synthetic_n220", g, "indexed+direct",
            indexed.wall_ms, speedup, indexed.result.stats, diff,
            indexed.result.converged);

  int failures = 0;
  if (!check(diff <= 1e-12, "CDF vectors identical within 1e-12")) ++failures;
  check(speedup >= 2.0, "indexed engine >= 2x faster than level-sweep");
  return failures;
}

int section_fig09(CsvWriter& csv) {
  std::printf("\n-- fig09 configs: indexed vs level-sweep CDF equality --\n");
  int failures = 0;
  struct Config {
    DatasetPreset preset;
    bool use_external;
  };
  const Config configs[] = {{dataset_infocom05(), false},
                            {dataset_reality_mining(), false},
                            {dataset_hong_kong(), true}};
  for (const Config& cfg : configs) {
    const auto trace = cfg.preset.generate();
    TemporalGraph graph = cfg.use_external
                              ? trace.graph
                              : keep_internal_contacts(trace.graph,
                                                       trace.num_internal);
    DelayCdfOptions opt;
    opt.grid = make_log_grid(2 * kMinute, kWeek, 48);
    opt.max_hops = 12;
    if (cfg.use_external) opt.endpoints = trace.internal_nodes();

    const CdfRun sweep = run_cdf(graph, opt, EngineMode::kLevelSweep,
                                 CdfAccumulation::kDirect);
    const CdfRun indexed = run_cdf(graph, opt, EngineMode::kIndexed,
                                   CdfAccumulation::kDirect);
    const double speedup = sweep.wall_ms / std::max(indexed.wall_ms, 1e-9);
    const double diff = max_cdf_diff(sweep.result, indexed.result);

    std::printf("  %-16s %7zu contacts: sweep %8.1f ms, indexed %8.1f ms "
                "(%.2fx), max |diff| %.3g\n",
                cfg.preset.spec.name.c_str(), graph.num_contacts(),
                sweep.wall_ms, indexed.wall_ms, speedup, diff);
    print_stats(indexed.result.stats);

    write_row(csv, "fig09", cfg.preset.spec.name, graph, "level_sweep+direct",
              sweep.wall_ms, 1.0, sweep.result.stats, 0.0,
              sweep.result.converged);
    write_row(csv, "fig09", cfg.preset.spec.name, graph, "indexed+direct",
              indexed.wall_ms, speedup, indexed.result.stats, diff,
              indexed.result.converged);

    if (!check(diff <= 1e-12,
               (cfg.preset.spec.name + ": CDF identical within 1e-12").c_str()))
      ++failures;
  }
  return failures;
}

/// One accumulation-section record, mirrored into BENCH_pr3.json.
struct AccumRecord {
  std::string workload;
  std::string scheme;
  int max_hops = 0;
  double wall_ms = 0.0;
  double speedup_vs_direct = 1.0;
  EngineStats stats;
  double max_abs_cdf_diff_vs_direct = 0.0;
  bool diameters_match = true;
  bool zero_steady_state_allocs = true;
};

/// Diameters must be bit-identical between the two accumulation schemes
/// at every eps/tol of interest (the headline numbers of Figs. 9-12).
bool diameters_match(const DelayCdfResult& a, const DelayCdfResult& b) {
  for (const double eps : {0.001, 0.01, 0.05, 0.1, 0.5}) {
    if (a.diameter(eps) != b.diameter(eps)) return false;
    if (a.diameter_per_delay(eps) != b.diameter_per_delay(eps)) return false;
  }
  for (const double tol : {0.001, 0.01, 0.05})
    if (a.diameter_absolute(tol) != b.diameter_absolute(tol)) return false;
  return true;
}

int section_accumulation(CsvWriter& csv, std::vector<AccumRecord>& records) {
  std::printf("\n-- accum: hop-incremental accumulation + engine reuse vs "
              "direct reference --\n");
  int failures = 0;
  struct Workload {
    const char* name;
    TemporalGraph graph;
    // Hop-budget sweep depths: direct accumulation pays a full
    // re-integration per budget (O(K * sum |frontier|)) while the
    // incremental scheme pays only the level deltas, so the gap widens
    // with K -- the tentpole's complexity claim, measured directly. The
    // deepest sweep is the gated config: the budget range one needs when
    // the trace's fixpoint level is not known a priori (max_levels
    // defaults to 64; this trace's fixpoint is ~14).
    std::vector<int> budgets;
    // The >= 1.5x end-to-end gate applies at budgets >= this depth.
    int gate_at;
  };
  const Workload workloads[] = {
      {"conference_n240", make_large_trace(), {8, 16, 32}, 32},
      {"campus_n160", make_campus_trace(), {16}, 0}};
  const unsigned workers = shared_thread_pool().num_workers();
  for (const Workload& wl : workloads) {
    std::printf("  %-16s %zu nodes, %zu contacts, %s, day-time windows\n",
                wl.name, wl.graph.num_nodes(), wl.graph.num_contacts(),
                format_duration(wl.graph.duration()).c_str());
    for (const int max_hops : wl.budgets) {
      DelayCdfOptions opt;
      opt.grid = make_log_grid(2 * kMinute, kDay, 48);
      opt.max_hops = max_hops;
      // Paper's day-time-only traffic model (§5.3.1): messages are
      // created during waking hours only (one window per day).
      opt.windows = day_time_windows(wl.graph);

      const bool gated = wl.gate_at > 0 && max_hops >= wl.gate_at;
      const int reps = gated ? 3 : 2;
      const CdfRun direct = run_cdf_best(wl.graph, opt, EngineMode::kIndexed,
                                         CdfAccumulation::kDirect, reps);
      const CdfRun inc = run_cdf_best(wl.graph, opt, EngineMode::kIndexed,
                                      CdfAccumulation::kIncremental, reps);
      const double speedup = direct.wall_ms / std::max(inc.wall_ms, 1e-9);
      const double diff = max_cdf_diff(direct.result, inc.result);
      const bool diam_ok = diameters_match(direct.result, inc.result);
      // Zero steady-state allocations: each worker materializes exactly
      // one engine workspace; every further source is a capacity-keeping
      // reset.
      const EngineStats& is = inc.result.stats;
      const std::uint64_t sources = wl.graph.num_nodes();
      const bool alloc_ok =
          is.workspace_allocations <= workers &&
          is.workspace_allocations + is.workspace_reuses == sources;

      std::printf("  K=%-2d direct %8.1f ms, incremental %8.1f ms (%.2fx), "
                  "max |diff| %.3g, diameter(0.01) %d vs %d, fixpoint %d, "
                  "%llu/%llu pairs integrated (%.1fx less), "
                  "%llu allocs / %llu reuses\n",
                  max_hops, direct.wall_ms, inc.wall_ms, speedup, diff,
                  inc.result.diameter(0.01), direct.result.diameter(0.01),
                  inc.result.fixpoint_hops,
                  static_cast<unsigned long long>(is.cdf_pairs_integrated),
                  static_cast<unsigned long long>(
                      direct.result.stats.cdf_pairs_integrated),
                  static_cast<double>(
                      direct.result.stats.cdf_pairs_integrated) /
                      std::max<double>(1.0, is.cdf_pairs_integrated),
                  static_cast<unsigned long long>(is.workspace_allocations),
                  static_cast<unsigned long long>(is.workspace_reuses));

      const std::string trace =
          std::string(wl.name) + "_k" + std::to_string(max_hops);
      write_row(csv, "accum", trace, wl.graph, "indexed+direct",
                direct.wall_ms, 1.0, direct.result.stats, 0.0,
                direct.result.converged);
      write_row(csv, "accum", trace, wl.graph, "indexed+incremental",
                inc.wall_ms, speedup, inc.result.stats, diff,
                inc.result.converged);
      records.push_back({wl.name, "direct", max_hops, direct.wall_ms, 1.0,
                         direct.result.stats, 0.0, true, false});
      records.push_back({wl.name, "incremental", max_hops, inc.wall_ms,
                         speedup, inc.result.stats, diff, diam_ok, alloc_ok});

      if (!check(diff <= 1e-9,
                 "incremental CDFs match direct within 1e-9")) ++failures;
      if (!check(diam_ok, "diameters bit-identical at every eps/tol"))
        ++failures;
      if (!check(alloc_ok,
                 "zero steady-state workspace allocations after first "
                 "source per worker")) ++failures;
      if (gated)
        check(speedup >= 1.5,
              "incremental + engine reuse >= 1.5x faster than direct on the "
              "trace-scale budget sweep");
    }
  }
  return failures;
}

/// One kernels-section record, mirrored into BENCH_pr6.json.
struct KernelRecord {
  std::string name;
  std::string workload;
  double baseline_ms = 0.0;
  double optimized_ms = 0.0;
  double speedup = 1.0;
  /// Minimum speedup this record is gated on; 0 means ungated, and the
  /// JSON then omits the gate fields entirely (a literal `false` on an
  /// ungated record reads as a failed gate).
  double gate_min_speedup = 0.0;
  bool semantics_ok = true;
  /// Real counters for the measured workload: engine stats for the
  /// end-to-end and propagation records, kernel-side tallies (batches,
  /// kept/dominated pairs, integrated pairs) for the micros -- never
  /// default-initialized zeros.
  EngineStats stats;
};

/// Synthetic frontier + candidate batches for the insert-vs-merge micro.
/// Frontiers are built directly in double-monotone order (random uniform
/// pairs would Pareto-collapse to O(log n) survivors); candidates land in
/// the same value range so a realistic fraction survives dominance. The
/// SoA lanes are precomputed: in the engine the frontier is permanently
/// arena-resident, so lane extraction is not part of the merge path.
struct MicroRound {
  DeliveryFunction frontier;
  std::vector<double> f_ld, f_ea;
  std::vector<PathPair> cands;
};

std::vector<MicroRound> make_micro_rounds(int rounds, int fsize, int csize) {
  std::vector<MicroRound> out(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    Rng rng = Rng::keyed(0xbead5, static_cast<std::uint64_t>(r));
    MicroRound& mr = out[static_cast<std::size_t>(r)];
    double ld = 0.0, ea = -1000.0;
    mr.frontier.reserve(static_cast<std::size_t>(fsize));
    for (int i = 0; i < fsize; ++i) {
      ld += rng.uniform(0.1, 10.0);
      ea += rng.uniform(0.1, 10.0);
      mr.frontier.insert({ld, ea});
    }
    for (const PathPair& p : mr.frontier.pairs()) {
      mr.f_ld.push_back(p.ld);
      mr.f_ea.push_back(p.ea);
    }
    // Mirror the engine's publish regime: candidates reach the merge only
    // after surviving the offer-time dominance filter, so the batch is
    // mostly-kept. Unfiltered batches would instead measure the
    // mostly-rejected regime the offer path already handles.
    mr.cands.reserve(static_cast<std::size_t>(csize));
    while (mr.cands.size() < static_cast<std::size_t>(csize)) {
      const PathPair p{rng.uniform(0.0, ld + 5.0),
                       rng.uniform(-1000.0, ea + 5.0)};
      if (!mr.frontier.is_dominated(p)) mr.cands.push_back(p);
    }
  }
  return out;
}

/// Microbenchmark 1: frontier maintenance. Per-candidate insert() into a
/// copy of the frontier vs prune + one two-way merge into fresh arrays.
int micro_insert_vs_merge(std::vector<KernelRecord>& records) {
  // Engine-shaped publish step: a sizable resident frontier receives a
  // small surviving batch per level. The insert baseline pays what the
  // indexed incremental path pays at publish -- a pre-change snapshot
  // copy plus per-candidate positional inserts; the pooled path pays
  // prune + merge into fresh space (the snapshot is the superseded span,
  // free).
  const int kRounds = 200, kF = 96, kC = 8;
  const auto rounds = make_micro_rounds(kRounds, kF, kC);
  DeliveryFunction ref;
  std::vector<PathPair> batch;
  std::vector<double> out_ld(kF + kC), out_ea(kF + kC);
  std::vector<double> d_ld(kC), d_ea(kC), d_succ(kC);

  double insert_ms = 0.0, merge_ms = 0.0;
  for (int rep = 0; rep < 30; ++rep) {
    double t0 = now_ms();
    for (const MicroRound& mr : rounds) {
      ref = mr.frontier;  // the snapshot copy change tracking pays
      for (const PathPair& p : mr.cands) ref.insert(p);
    }
    insert_ms = rep == 0 ? now_ms() - t0 : std::min(insert_ms, now_ms() - t0);
    t0 = now_ms();
    for (const MicroRound& mr : rounds) {
      batch = mr.cands;
      const std::size_t m = prune_candidate_batch(batch.data(), batch.size());
      merge_frontier(mr.f_ld.data(), mr.f_ea.data(), mr.f_ld.size(),
                     batch.data(), m, out_ld.data(), out_ea.data(),
                     d_ld.data(), d_ea.data(), d_succ.data());
    }
    merge_ms = rep == 0 ? now_ms() - t0 : std::min(merge_ms, now_ms() - t0);
  }

  // Semantics: the merge output must equal the insert() result bit for
  // bit on every round. The same pass tallies the real kernel counters
  // for the bench record.
  bool identical = true;
  EngineStats st{};
  for (const MicroRound& mr : rounds) {
    ref = mr.frontier;
    for (const PathPair& p : mr.cands) ref.insert(p);
    batch = mr.cands;
    const std::size_t m = prune_candidate_batch(batch.data(), batch.size());
    const FrontierMerge r = merge_frontier(
        mr.f_ld.data(), mr.f_ea.data(), mr.f_ld.size(), batch.data(), m,
        out_ld.data(), out_ea.data(), d_ld.data(), d_ea.data(),
        d_succ.data());
    const std::size_t off = mr.f_ld.size() + m - r.kept;
    const DeliveryFunction merged = materialize(
        FrontierView(out_ld.data() + off, out_ea.data() + off, r.kept));
    identical = identical && merged == ref;
    st.merge_batches += 1;
    st.pairs_inserted += r.kept_new;
    st.pairs_dominated += mr.f_ld.size() + m - r.kept;
    st.pairs_peak = std::max<std::uint64_t>(st.pairs_peak,
                                            mr.f_ld.size() + m);
  }

  const double speedup = insert_ms / std::max(merge_ms, 1e-9);
  const double per_cand = 1e6 * merge_ms / (double(kRounds) * kC);
  std::printf("  insert-vs-merge: insert %7.2f ms, merge %7.2f ms (%.2fx), "
              "%.0f ns/candidate, F=%d C=%d x%d rounds\n",
              insert_ms, merge_ms, speedup, per_cand, kF, kC, kRounds);
  records.push_back({"micro_insert_vs_merge", "synthetic_frontiers",
                     insert_ms, merge_ms, speedup, 0.0, identical, st});
  return check(identical, "merge kernel bit-identical to insert() reference")
             ? 0
             : 1;
}

/// Microbenchmark 2: CDF integration. Per-pair AoS accumulation vs the
/// SoA add_delivery_segments streaming path, identical segment stream.
/// The stream cycles through 64 DISTINCT frontiers: the all-pairs loop
/// integrates a different destination's frontier every call, so a
/// single-frontier loop would let the branch predictor memorize the
/// baseline's binary-search paths -- a regime the engine never sees.
int micro_integrate(std::vector<KernelRecord>& records) {
  const int kF = 384, kRounds = 4000, kVariants = 64;
  struct Variant {
    DeliveryFunction f;
    std::vector<double> ld, ea;
    double t_hi = 0.0;
  };
  std::vector<Variant> vars(static_cast<std::size_t>(kVariants));
  for (int v = 0; v < kVariants; ++v) {
    Rng rng = Rng::keyed(0xcdf5, static_cast<std::uint64_t>(v));
    Variant& vr = vars[static_cast<std::size_t>(v)];
    // Real frontiers have ea >= ld (a path arrives no earlier than it
    // departs), so the delay keys (arrival minus start time) fed to the
    // grid searches are non-negative and cluster at the low end of the
    // log grid -- the regime both search strategies actually see.
    double l = 0.0, e = 0.0;
    vr.f.reserve(kF);
    for (int i = 0; i < kF; ++i) {
      l += rng.uniform(0.1, 8.0);
      e = std::max(e + rng.uniform(0.1, 8.0), l + rng.uniform(0.0, 4.0));
      vr.f.insert({l, e});
      vr.ld.push_back(l);
      vr.ea.push_back(e);
    }
    vr.t_hi = l * 0.9;
  }
  const std::vector<double> grid = make_log_grid(1.0, 4000.0, 48);
  const double t_lo = 0.0;

  MeasureCdfAccumulator aos(grid), soa(grid);
  double aos_ms = 0.0, soa_ms = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    double t0 = now_ms();
    for (int r = 0; r < kRounds; ++r) {
      const Variant& vr = vars[static_cast<std::size_t>(r % kVariants)];
      vr.f.accumulate_delay_measure(aos, t_lo, vr.t_hi);
    }
    aos_ms = rep == 0 ? now_ms() - t0 : std::min(aos_ms, now_ms() - t0);
    t0 = now_ms();
    for (int r = 0; r < kRounds; ++r) {
      const Variant& vr = vars[static_cast<std::size_t>(r % kVariants)];
      soa.add_delivery_segments(vr.ld.data(), vr.ea.data(), vr.ld.size(),
                                t_lo, vr.t_hi);
    }
    soa_ms = rep == 0 ? now_ms() - t0 : std::min(soa_ms, now_ms() - t0);
  }
  aos.add_observation_measure(1.0);
  soa.add_observation_measure(1.0);
  const bool identical = aos.cdf() == soa.cdf();
  const double speedup = aos_ms / std::max(soa_ms, 1e-9);
  std::printf("  integrate:       per-pair %7.2f ms, SoA stream %7.2f ms "
              "(%.2fx), F=%d x%d rounds, simd %s\n",
              aos_ms, soa_ms, speedup, kF, kRounds,
              simd::level_name(simd::active_level()));
  EngineStats st{};
  st.cdf_pairs_integrated =
      static_cast<std::uint64_t>(kF) * static_cast<std::uint64_t>(kRounds);
  st.pairs_peak = static_cast<std::uint64_t>(kF);
  // The PR 5 regression this PR recovers: the SoA stream must now be at
  // least as fast as the per-pair path (its batched grid searches go
  // through the dispatched lower_bound4).
  records.push_back({"micro_integrate", "synthetic_frontier", aos_ms, soa_ms,
                     speedup, 1.0, identical, st});
  check(speedup >= 1.0, "SoA integration >= 1.0x vs per-pair path");
  return check(identical, "SoA integration bit-identical to per-pair path")
             ? 0
             : 1;
}

/// Microbenchmark 3: batch dominance collapse, dispatched vs the scalar
/// reference, on PRESORTED sawtooth batches. The sort half of
/// prune_candidate_batch is shared verbatim by both arms and dominates
/// ~7/8 of the full prune's cost, so the full kernel is NOT the bench
/// seam -- collapse_sorted_batch is. The sawtooth makes every tooth end
/// in one long dominance pop, the regime the vectorized tail scan is
/// built for (the engine hits it whenever a late low-EA path retires a
/// whole ridge of candidates at once).
int micro_prune(std::vector<KernelRecord>& records) {
  const int kBatches = 64, kTeeth = 12, kTooth = 32;
  const int kM = kTeeth * kTooth;
  std::vector<std::vector<PathPair>> batches(
      static_cast<std::size_t>(kBatches));
  for (int b = 0; b < kBatches; ++b) {
    Rng rng = Rng::keyed(0x9f0e, static_cast<std::uint64_t>(b));
    auto& batch = batches[static_cast<std::size_t>(b)];
    batch.reserve(static_cast<std::size_t>(kM));
    double ld = 0.0;
    double base_ea = 1e4;
    for (int t = 0; t < kTeeth; ++t) {
      // Each tooth starts below ALL of the previous tooth: its first
      // element pops the whole stacked tooth in one run.
      base_ea -= 1000.0;
      double ea = base_ea;
      for (int i = 0; i < kTooth; ++i) {
        ld += rng.uniform(0.01, 1.0);
        ea += rng.uniform(0.01, 1.0);
        batch.push_back({ld, ea});
      }
    }
  }
  // The collapse is destructive, so each timed pass runs on a working
  // copy refilled OUTSIDE the timed region -- the restore memcpy is not
  // part of either kernel.
  const std::size_t bytes = sizeof(PathPair) * static_cast<std::size_t>(kM);
  std::vector<PathPair> work(static_cast<std::size_t>(kBatches * kM));
  auto refill = [&] {
    for (int b = 0; b < kBatches; ++b)
      std::memcpy(work.data() + static_cast<std::size_t>(b) * kM,
                  batches[static_cast<std::size_t>(b)].data(), bytes);
  };

  const int kInner = 10;
  double scalar_ms = 0.0, simd_ms = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    double acc = 0.0;
    for (int it = 0; it < kInner; ++it) {
      refill();
      const double t0 = now_ms();
      for (int b = 0; b < kBatches; ++b)
        collapse_sorted_batch_scalar(
            work.data() + static_cast<std::size_t>(b) * kM,
            static_cast<std::size_t>(kM));
      acc += now_ms() - t0;
    }
    scalar_ms = rep == 0 ? acc : std::min(scalar_ms, acc);
    acc = 0.0;
    for (int it = 0; it < kInner; ++it) {
      refill();
      const double t0 = now_ms();
      for (int b = 0; b < kBatches; ++b)
        collapse_sorted_batch(work.data() + static_cast<std::size_t>(b) * kM,
                              static_cast<std::size_t>(kM));
      acc += now_ms() - t0;
    }
    simd_ms = rep == 0 ? acc : std::min(simd_ms, acc);
  }

  // Semantics + real counters: dispatched output bit-identical to the
  // scalar reference on every batch.
  bool identical = true;
  EngineStats st{};
  std::vector<PathPair> scratch(static_cast<std::size_t>(kM));
  std::vector<PathPair> scratch2(static_cast<std::size_t>(kM));
  for (const auto& b : batches) {
    std::memcpy(scratch.data(), b.data(), bytes);
    std::memcpy(scratch2.data(), b.data(), bytes);
    const std::size_t ns =
        collapse_sorted_batch_scalar(scratch.data(), scratch.size());
    const std::size_t nv = collapse_sorted_batch(scratch2.data(),
                                                 scratch2.size());
    identical = identical && ns == nv &&
                std::memcmp(scratch.data(), scratch2.data(),
                            ns * sizeof(PathPair)) == 0;
    st.merge_batches += 1;
    st.pairs_inserted += ns;
    st.pairs_dominated += static_cast<std::uint64_t>(kM) - ns;
    st.pairs_peak = std::max<std::uint64_t>(st.pairs_peak,
                                            static_cast<std::uint64_t>(kM));
  }

  const bool vec = simd::active_level() != simd::Level::kScalar;
  const double speedup = scalar_ms / std::max(simd_ms, 1e-9);
  std::printf("  prune collapse:  scalar %7.2f ms, %s %7.2f ms (%.2fx), "
              "m=%d x%d batches, sawtooth\n",
              scalar_ms, simd::level_name(simd::active_level()), simd_ms,
              speedup, kM, kBatches);
  records.push_back({"micro_prune", "sawtooth_batches", scalar_ms, simd_ms,
                     speedup, vec ? 1.2 : 0.0, identical, st});
  if (vec)
    check(speedup >= 1.2, "dispatched collapse >= 1.2x vs scalar reference");
  return check(identical,
               "dispatched collapse bit-identical to scalar reference")
             ? 0
             : 1;
}

/// Microbenchmark 4: merge_frontier, dispatched run-structured walk vs
/// the scalar element walk, on a large resident frontier with a small
/// candidate batch spread evenly through it -- long all-survivor runs,
/// where the dispatched path's bulk copies replace the scalar per-
/// element compare-and-store loop.
int micro_merge(std::vector<KernelRecord>& records) {
  const int kF = 512, kC = 16, kRounds = 400;
  Rng rng = Rng::keyed(0x3e46e, 0);
  std::vector<double> f_ld, f_ea;
  double ld = 0.0, ea = -2000.0;
  for (int i = 0; i < kF; ++i) {
    ld += rng.uniform(0.5, 4.0);
    ea += rng.uniform(0.5, 4.0);
    f_ld.push_back(ld);
    f_ea.push_back(ea);
  }
  // Candidates strictly interleaved between frontier neighbors in BOTH
  // lanes: every candidate is kept, nothing is dominated, and the merge
  // becomes kC long survivor runs of ~kF/kC elements each.
  std::vector<PathPair> cands;
  const int stride = kF / kC;
  for (int c = 0; c < kC; ++c) {
    const std::size_t i = static_cast<std::size_t>(c * stride + stride / 2);
    cands.push_back({0.5 * (f_ld[i] + f_ld[i + 1]),
                     0.5 * (f_ea[i] + f_ea[i + 1])});
  }

  std::vector<double> out_ld(kF + kC), out_ea(kF + kC);
  std::vector<double> d_ld(kC), d_ea(kC), d_succ(kC);
  double scalar_ms = 0.0, simd_ms = 0.0;
  for (int rep = 0; rep < 40; ++rep) {
    double t0 = now_ms();
    for (int r = 0; r < kRounds; ++r)
      merge_frontier_scalar(f_ld.data(), f_ea.data(), f_ld.size(),
                            cands.data(), cands.size(), out_ld.data(),
                            out_ea.data(), d_ld.data(), d_ea.data(),
                            d_succ.data());
    scalar_ms =
        rep == 0 ? now_ms() - t0 : std::min(scalar_ms, now_ms() - t0);
    t0 = now_ms();
    for (int r = 0; r < kRounds; ++r)
      merge_frontier(f_ld.data(), f_ea.data(), f_ld.size(), cands.data(),
                     cands.size(), out_ld.data(), out_ea.data(), d_ld.data(),
                     d_ea.data(), d_succ.data());
    simd_ms = rep == 0 ? now_ms() - t0 : std::min(simd_ms, now_ms() - t0);
  }

  // Semantics: dispatched output bit-identical to the scalar walk.
  std::vector<double> s_out_ld(kF + kC), s_out_ea(kF + kC);
  std::vector<double> s_d_ld(kC), s_d_ea(kC), s_d_succ(kC);
  const FrontierMerge rs = merge_frontier_scalar(
      f_ld.data(), f_ea.data(), f_ld.size(), cands.data(), cands.size(),
      s_out_ld.data(), s_out_ea.data(), s_d_ld.data(), s_d_ea.data(),
      s_d_succ.data());
  const FrontierMerge rv = merge_frontier(
      f_ld.data(), f_ea.data(), f_ld.size(), cands.data(), cands.size(),
      out_ld.data(), out_ea.data(), d_ld.data(), d_ea.data(), d_succ.data());
  const std::size_t off = f_ld.size() + cands.size() - rs.kept;
  const std::size_t doff = cands.size() - rs.kept_new;
  const bool identical =
      rs.kept == rv.kept && rs.kept_new == rv.kept_new &&
      std::memcmp(out_ld.data() + off, s_out_ld.data() + off,
                  rs.kept * sizeof(double)) == 0 &&
      std::memcmp(out_ea.data() + off, s_out_ea.data() + off,
                  rs.kept * sizeof(double)) == 0 &&
      std::memcmp(d_succ.data() + doff, s_d_succ.data() + doff,
                  rs.kept_new * sizeof(double)) == 0;
  EngineStats st{};
  st.merge_batches = kRounds;
  st.pairs_inserted = static_cast<std::uint64_t>(kRounds) * rs.kept_new;
  st.pairs_dominated = static_cast<std::uint64_t>(kRounds) *
                       (f_ld.size() + cands.size() - rs.kept);
  st.pairs_peak = static_cast<std::uint64_t>(kF + kC);

  const bool vec = simd::active_level() != simd::Level::kScalar;
  const double speedup = scalar_ms / std::max(simd_ms, 1e-9);
  std::printf("  merge runs:      scalar %7.2f ms, %s %7.2f ms (%.2fx), "
              "F=%d C=%d x%d rounds\n",
              scalar_ms, simd::level_name(simd::active_level()), simd_ms,
              speedup, kF, kC, kRounds);
  records.push_back({"micro_merge", "interleaved_frontier", scalar_ms,
                     simd_ms, speedup, vec ? 1.2 : 0.0, identical, st});
  if (vec)
    check(speedup >= 1.2, "dispatched merge >= 1.2x vs scalar reference");
  return check(identical, "dispatched merge bit-identical to scalar walk")
             ? 0
             : 1;
}

/// Microbenchmark 5 (ungated): the diff-trim prefix/suffix scan of the
/// hop-incremental CDF path -- two long nearly-equal frontier snapshots
/// differing in a narrow middle window, the shape successive hop levels
/// actually produce.
int micro_difftrim(std::vector<KernelRecord>& records) {
  const int kN = 4096, kRounds = 600;
  Rng rng = Rng::keyed(0xd1ff, 0);
  std::vector<double> o_ld, o_ea;
  double ld = 0.0, ea = -5000.0;
  for (int i = 0; i < kN; ++i) {
    ld += rng.uniform(0.1, 2.0);
    ea += rng.uniform(0.1, 2.0);
    o_ld.push_back(ld);
    o_ea.push_back(ea);
  }
  std::vector<double> n_ld = o_ld, n_ea = o_ea;
  for (int i = kN / 2; i < kN / 2 + 24; ++i)
    n_ea[static_cast<std::size_t>(i)] += 0.5;  // the changed window

  const simd::Ops& vops = simd::ops();
  const simd::Ops& sops = simd::ops_for(simd::Level::kScalar);
  const std::size_t n = o_ld.size();
  volatile std::size_t sink = 0;
  double scalar_ms = 0.0, simd_ms = 0.0;
  for (int rep = 0; rep < 40; ++rep) {
    double t0 = now_ms();
    for (int r = 0; r < kRounds; ++r) {
      const std::size_t p = sops.equal_prefix2(o_ld.data(), o_ea.data(),
                                               n_ld.data(), n_ea.data(), n);
      sink += p + sops.equal_suffix2(o_ld.data(), o_ea.data(), n,
                                     n_ld.data(), n_ea.data(), n, n - p);
    }
    scalar_ms =
        rep == 0 ? now_ms() - t0 : std::min(scalar_ms, now_ms() - t0);
    t0 = now_ms();
    for (int r = 0; r < kRounds; ++r) {
      const std::size_t p = vops.equal_prefix2(o_ld.data(), o_ea.data(),
                                               n_ld.data(), n_ea.data(), n);
      sink += p + vops.equal_suffix2(o_ld.data(), o_ea.data(), n,
                                     n_ld.data(), n_ea.data(), n, n - p);
    }
    simd_ms = rep == 0 ? now_ms() - t0 : std::min(simd_ms, now_ms() - t0);
  }
  const bool identical =
      vops.equal_prefix2(o_ld.data(), o_ea.data(), n_ld.data(), n_ea.data(),
                         n) == sops.equal_prefix2(o_ld.data(), o_ea.data(),
                                                  n_ld.data(), n_ea.data(),
                                                  n) &&
      vops.equal_suffix2(o_ld.data(), o_ea.data(), n, n_ld.data(),
                         n_ea.data(), n, n) ==
          sops.equal_suffix2(o_ld.data(), o_ea.data(), n, n_ld.data(),
                             n_ea.data(), n, n);
  EngineStats st{};
  st.frontier_copies_avoided = static_cast<std::uint64_t>(kRounds);
  st.pairs_peak = static_cast<std::uint64_t>(kN);
  const double speedup = scalar_ms / std::max(simd_ms, 1e-9);
  std::printf("  diff trim:       scalar %7.2f ms, %s %7.2f ms (%.2fx), "
              "n=%d x%d rounds\n",
              scalar_ms, simd::level_name(simd::active_level()), simd_ms,
              speedup, kN, kRounds);
  records.push_back({"micro_difftrim", "near_equal_snapshots", scalar_ms,
                     simd_ms, speedup, 0.0, identical, st});
  return check(identical, "dispatched trim scans match scalar reference")
             ? 0
             : 1;
}

/// Bit-identical frontier cross-check on sampled sources: the pooled
/// engine must reproduce the indexed engine's frontiers exactly at every
/// hop level.
bool frontiers_bit_identical(const TemporalGraph& g) {
  const NodeId stride =
      static_cast<NodeId>(std::max<std::size_t>(1, g.num_nodes() / 8));
  for (NodeId src = 0; src < g.num_nodes(); src += stride) {
    SingleSourceEngine pooled(g, src, EngineMode::kPooled);
    SingleSourceEngine indexed(g, src, EngineMode::kIndexed);
    for (int level = 0; level < 64; ++level) {
      const bool pc = pooled.step(), ic = indexed.step();
      if (pc != ic) return false;
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        if (pooled.frontier(v) != indexed.frontier(v)) return false;
      if (!pc) break;
    }
  }
  return true;
}

/// Steady-state arena flatness: one pooled engine recycled over every
/// source twice; the second (steady-state) pass must not grow any arena
/// and must never re-allocate the workspace.
bool arena_flat_across_sources(const TemporalGraph& g,
                               std::uint64_t* peak_bytes) {
  SingleSourceEngine engine(g, 0, EngineMode::kPooled);
  auto pass = [&] {
    for (NodeId src = 0; src < g.num_nodes(); ++src) {
      engine.reset(src);
      engine.run_to_fixpoint();
    }
  };
  pass();  // warm: slabs grow to the high-water capacity
  const std::uint64_t warm_bytes = engine.stats().arena_bytes_peak;
  pass();  // steady state: must be allocation-free and growth-free
  *peak_bytes = engine.stats().arena_bytes_peak;
  return engine.stats().arena_bytes_peak == warm_bytes &&
         engine.stats().workspace_allocations == 1;
}

int section_kernels(CsvWriter& csv, std::vector<KernelRecord>& records) {
  std::printf("\n-- kernels: pooled-arena engine vs per-pair-insert indexed "
              "engine --\n");
  int failures = 0;
  failures += micro_insert_vs_merge(records);
  failures += micro_integrate(records);
  failures += micro_prune(records);
  failures += micro_merge(records);
  failures += micro_difftrim(records);

  // BENCH_SECTIONS=kernels_micro: per-kernel micros only, skipping the
  // heavy propagation / end-to-end workloads (fast gate iteration).
  const char* only = std::getenv("BENCH_SECTIONS");
  if (only != nullptr && std::strstr(only, "kernels_micro") != nullptr)
    return failures;

  // Propagation micro: single-source fixpoint, engine workspace recycled
  // across sources, no CDF work. The pooled arm's engine counters are
  // the record's stats.
  {
    const auto g = make_large_trace();
    double wall[2];
    EngineStats stats[2];
    const EngineMode modes[2] = {EngineMode::kIndexed, EngineMode::kPooled};
    for (int m = 0; m < 2; ++m) {
      wall[m] = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        SingleSourceEngine engine(g, 0, modes[m]);
        const double t0 = now_ms();
        for (NodeId src = 0; src < g.num_nodes(); src += 4) {
          engine.reset(src);
          engine.run_to_fixpoint();
        }
        wall[m] = std::min(wall[m], now_ms() - t0);
        stats[m] = engine.stats();
      }
    }
    const double speedup = wall[0] / std::max(wall[1], 1e-9);
    std::printf("  extend/publish:  indexed %7.1f ms, pooled %7.1f ms "
                "(%.2fx), 60 sources to fixpoint\n",
                wall[0], wall[1], speedup);
    records.push_back({"micro_propagation", "conference_n240", wall[0],
                       wall[1], speedup, 0.0, true, stats[1]});
  }

  // End-to-end gate: single-thread all-pairs compute_delay_cdf, pooled
  // vs the PR 3 path (indexed + incremental), day-time windows.
  struct Workload {
    const char* name;
    TemporalGraph graph;
    int max_hops;
  };
  const Workload workloads[] = {
      {"conference_n240_k32", make_large_trace(), 32},
      {"campus_n160_k16", make_campus_trace(), 16}};
  for (const Workload& wl : workloads) {
    DelayCdfOptions opt;
    opt.grid = make_log_grid(2 * kMinute, kDay, 48);
    opt.max_hops = wl.max_hops;
    opt.windows = day_time_windows(wl.graph);
    opt.num_threads = 1;  // single-thread: kernel speedup, not scheduling

    // Interleave the arms (i p i p ...) so frequency / scheduler drift
    // over the measurement window biases both best-of estimates alike
    // instead of whichever arm ran last. CPU-time noise from host
    // contention is one-sided (interference only ever inflates), so the
    // per-arm minimum converges on the true compute cost as reps grow.
    CdfRun indexed = run_cdf(wl.graph, opt, EngineMode::kIndexed,
                             CdfAccumulation::kIncremental);
    CdfRun pooled = run_cdf(wl.graph, opt, EngineMode::kPooled,
                            CdfAccumulation::kIncremental);
    for (int r = 1; r < 9; ++r) {
      CdfRun run = run_cdf(wl.graph, opt, EngineMode::kIndexed,
                           CdfAccumulation::kIncremental);
      indexed.wall_ms = std::min(indexed.wall_ms, run.wall_ms);
      indexed.cpu_ms = std::min(indexed.cpu_ms, run.cpu_ms);
      run = run_cdf(wl.graph, opt, EngineMode::kPooled,
                    CdfAccumulation::kIncremental);
      pooled.wall_ms = std::min(pooled.wall_ms, run.wall_ms);
      pooled.cpu_ms = std::min(pooled.cpu_ms, run.cpu_ms);
    }
    // Both runs are single-threaded, so CPU time is the faithful
    // compute measure; wall time (reported alongside) additionally
    // absorbs whatever else the host is running.
    const double speedup = indexed.cpu_ms / std::max(pooled.cpu_ms, 1e-9);
    const double diff = max_cdf_diff(indexed.result, pooled.result);
    const bool diam_ok = diameters_match(indexed.result, pooled.result);
    const bool bits_ok = frontiers_bit_identical(wl.graph);
    std::uint64_t peak_bytes = 0;
    const bool flat_ok = arena_flat_across_sources(wl.graph, &peak_bytes);

    std::printf("  %-20s indexed %8.1f ms cpu (%.1f wall), pooled %8.1f "
                "ms cpu (%.1f wall) -> %.2fx, max |diff| %.3g, "
                "diameter(0.01) %d vs %d, arena peak %.1f KiB\n",
                wl.name, indexed.cpu_ms, indexed.wall_ms, pooled.cpu_ms,
                pooled.wall_ms, speedup, diff,
                pooled.result.diameter(0.01), indexed.result.diameter(0.01),
                static_cast<double>(peak_bytes) / 1024.0);
    print_stats(pooled.result.stats);

    write_row(csv, "kernels", wl.name, wl.graph, "indexed+incremental",
              indexed.cpu_ms, 1.0, indexed.result.stats, 0.0,
              indexed.result.converged);
    write_row(csv, "kernels", wl.name, wl.graph, "pooled+incremental",
              pooled.cpu_ms, speedup, pooled.result.stats, diff,
              pooled.result.converged);

    const bool sem_ok = diff <= 1e-9 && diam_ok && bits_ok && flat_ok;
    records.push_back({"end_to_end", wl.name, indexed.cpu_ms,
                       pooled.cpu_ms, speedup, 1.3, sem_ok,
                       pooled.result.stats});

    if (!check(bits_ok, "pooled frontiers bit-identical to indexed "
                        "(sampled sources, every level)")) ++failures;
    if (!check(diff <= 1e-9, "pooled CDFs match indexed within 1e-9"))
      ++failures;
    if (!check(diam_ok, "diameters bit-identical at every eps/tol"))
      ++failures;
    if (!check(flat_ok, "zero arena growth across steady-state sources "
                        "(workspace_allocations == 1)")) ++failures;
    check(speedup >= 1.3,
          "pooled kernels >= 1.3x faster end-to-end (single thread)");
  }
  return failures;
}

/// Machine-readable perf trajectory record for CI (PR 3 onward).
void write_bench_json(const std::vector<AccumRecord>& records) {
  const std::string path = "bench_out/BENCH_pr3.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::printf("[json] could not open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_perf_engine\",\n  \"pr\": 3,\n"
                  "  \"metric\": \"all-pairs delay CDF accumulation\",\n"
                  "  \"records\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const AccumRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"scheme\": \"%s\", \"max_hops\": %d, "
        "\"wall_ms\": %.3f, \"speedup_vs_direct\": %.3f, "
        "\"pairs_integrated\": %llu, \"workspace_allocations\": %llu, "
        "\"workspace_reuses\": %llu, \"max_abs_cdf_diff_vs_direct\": %.3g, "
        "\"diameters_match\": %s, \"zero_steady_state_allocs\": %s}%s\n",
        r.workload.c_str(), r.scheme.c_str(), r.max_hops, r.wall_ms,
        r.speedup_vs_direct,
        static_cast<unsigned long long>(r.stats.cdf_pairs_integrated),
        static_cast<unsigned long long>(r.stats.workspace_allocations),
        static_cast<unsigned long long>(r.stats.workspace_reuses),
        r.max_abs_cdf_diff_vs_direct, r.diameters_match ? "true" : "false",
        r.zero_steady_state_allocs ? "true" : "false",
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

/// Machine-readable record of the kernels section (PR 6 onward; the
/// committed BENCH_pr5.json stays untouched as the PR 5 baseline). Gate
/// fields are emitted ONLY on gated records and name the threshold --
/// a literal false on an ungated record used to read as a failed gate.
void write_bench_json_pr6(const std::vector<KernelRecord>& records) {
  const std::string path = "bench_out/BENCH_pr6.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::printf("[json] could not open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_perf_engine\",\n  \"pr\": 6,\n"
               "  \"metric\": \"runtime-dispatched SIMD frontier kernels\",\n"
               "  \"simd\": \"%s\",\n  \"simd_best_supported\": \"%s\",\n"
               "  \"records\": [\n",
               simd::level_name(simd::active_level()),
               simd::level_name(simd::best_supported()));
  for (std::size_t i = 0; i < records.size(); ++i) {
    const KernelRecord& r = records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"workload\": \"%s\", "
                 "\"baseline_ms\": %.3f, \"optimized_ms\": %.3f, "
                 "\"speedup\": %.3f, ",
                 r.name.c_str(), r.workload.c_str(), r.baseline_ms,
                 r.optimized_ms, r.speedup);
    if (r.gate_min_speedup > 0.0)
      std::fprintf(f, "\"gate_min_speedup\": %.2f, \"gate_pass\": %s, ",
                   r.gate_min_speedup,
                   r.speedup >= r.gate_min_speedup ? "true" : "false");
    std::fprintf(
        f,
        "\"semantics_ok\": %s, \"pairs_inserted\": %llu, "
        "\"pairs_dominated\": %llu, \"cdf_pairs_integrated\": %llu, "
        "\"merge_batches\": %llu, \"pairs_peak\": %llu, "
        "\"arena_bytes_peak\": %llu}%s\n",
        r.semantics_ok ? "true" : "false",
        static_cast<unsigned long long>(r.stats.pairs_inserted),
        static_cast<unsigned long long>(r.stats.pairs_dominated),
        static_cast<unsigned long long>(r.stats.cdf_pairs_integrated),
        static_cast<unsigned long long>(r.stats.merge_batches),
        static_cast<unsigned long long>(r.stats.pairs_peak),
        static_cast<unsigned long long>(r.stats.arena_bytes_peak),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  bench::banner("Engine perf",
                "pooled-arena kernels, indexed dirty-set engine and "
                "hop-incremental accumulation vs the reference schemes");
  CsvWriter csv(bench::csv_path("perf_engine"));
  csv.write_row({"section", "trace", "nodes", "contacts", "scheme", "wall_ms",
                 "speedup_vs_baseline", "contacts_examined", "pairs_inserted",
                 "pairs_dominated", "frontier_copies_avoided",
                 "cdf_pairs_integrated", "workspace_allocations",
                 "workspace_reuses", "merge_batches", "pairs_peak",
                 "arena_bytes_peak", "max_abs_cdf_diff_vs_baseline",
                 "converged"});

  // BENCH_SECTIONS=perf,accum (comma list) restricts the run -- handy
  // when iterating on one section; default runs everything.
  const char* only = std::getenv("BENCH_SECTIONS");
  auto enabled = [&](const char* name) {
    return only == nullptr || std::strstr(only, name) != nullptr;
  };

  int failures = 0;
  std::vector<AccumRecord> records;
  std::vector<KernelRecord> kernel_records;
  if (enabled("scaling")) failures += section_scaling(csv);
  if (enabled("perf")) failures += section_perf(csv);
  if (enabled("fig09")) failures += section_fig09(csv);
  if (enabled("accum")) failures += section_accumulation(csv, records);
  if (enabled("kernels")) failures += section_kernels(csv, kernel_records);
  write_bench_json(records);
  write_bench_json_pr6(kernel_records);
  std::printf("[csv] wrote %s\n", bench::csv_path("perf_engine").c_str());
  if (failures) {
    std::printf("\n%d equivalence/allocation check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall equivalence and allocation checks passed\n");
  return 0;
}
