// Performance bench (google-benchmark): the concise-representation
// engine of §4.4 vs the flooding-per-boundary comparator [8].
//
// BM_EngineSingleSource   -- all delay-optimal paths from one source
//                            (our algorithm), by trace size.
// BM_FloodingBaseline     -- same output sampled by flooding from every
//                            contact boundary (the [8]-style approach).
// BM_EngineAllPairsCdf    -- the full Figure-9 pipeline on a
//                            conference-scale trace.
#include <benchmark/benchmark.h>

#include "core/diameter.hpp"
#include "core/optimal_paths.hpp"
#include "sim/profile_baseline.hpp"
#include "stats/log_grid.hpp"
#include "trace/generators.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

TemporalGraph make_trace(double scale) {
  SyntheticTraceSpec spec;
  spec.num_internal = 30;
  spec.duration = 2 * kDay;
  spec.pair_contacts_mean = 2.0 * scale;
  spec.num_communities = 4;
  spec.gatherings = {80.0 * scale, 0.35, 0.06, 12 * kMinute, 0.8, 0.06};
  spec.profile = ActivityProfile::conference();
  return generate_trace(spec, 4242).graph;
}

void BM_EngineSingleSource(benchmark::State& state) {
  const auto g = make_trace(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    SingleSourceEngine engine(g, 0);
    engine.run_to_fixpoint();
    benchmark::DoNotOptimize(engine.total_pairs());
  }
  state.counters["contacts"] = static_cast<double>(g.num_contacts());
}
BENCHMARK(BM_EngineSingleSource)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_FloodingBaseline(benchmark::State& state) {
  const auto g = make_trace(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    const auto profiles = profiles_by_flooding(g, 0);
    benchmark::DoNotOptimize(profiles.times.size());
  }
  state.counters["contacts"] = static_cast<double>(g.num_contacts());
}
// The baseline is quadratic in contacts; keep its sizes modest.
BENCHMARK(BM_FloodingBaseline)->Arg(1)->Arg(2);

void BM_EngineAllPairsCdf(benchmark::State& state) {
  const auto g = make_trace(4.0);
  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kDay, 32);
  opt.max_hops = 8;
  for (auto _ : state) {
    const auto result = compute_delay_cdf(g, opt);
    benchmark::DoNotOptimize(result.diameter(0.01));
  }
  state.counters["contacts"] = static_cast<double>(g.num_contacts());
}
BENCHMARK(BM_EngineAllPairsCdf)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace odtn
