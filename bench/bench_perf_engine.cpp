// Performance bench (§4.4 claim): the indexed dirty-set engine vs the
// seed level-sweep engine on the all-pairs delay-CDF -- the hottest path
// behind Figures 9-12 and Table 1.
//
// Sections (all rows land in bench_out/perf_engine.csv together with the
// engine instrumentation counters):
//
//   scaling -- single-source fixpoint runs by trace density, per engine.
//   perf    -- all-pairs delay-CDF on a synthetic trace with >= 200
//              nodes; acceptance: indexed engine >= 2x faster wall-clock
//              than the level-sweep engine, identical CDFs.
//   fig09   -- the three Figure-9 dataset configs; the indexed engine's
//              CDF vectors must match the level-sweep engine within
//              1e-12 at every grid point and hop budget.
//
// Exit status is non-zero when a CDF equivalence check fails (so CI
// catches semantic regressions); speedup shortfalls are reported as
// FAIL lines but do not abort the remaining sections.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/diameter.hpp"
#include "core/optimal_paths.hpp"
#include "stats/log_grid.hpp"
#include "trace/datasets.hpp"
#include "trace/generators.hpp"
#include "trace/transforms.hpp"
#include "util/csv.hpp"
#include "util/time_format.hpp"

using namespace odtn;

namespace {

const char* engine_name(EngineMode mode) {
  return mode == EngineMode::kIndexed ? "indexed" : "level_sweep";
}

double now_ms() {
  using namespace std::chrono;
  return duration<double, std::milli>(steady_clock::now().time_since_epoch())
      .count();
}

struct CdfRun {
  DelayCdfResult result;
  double wall_ms = 0.0;
};

CdfRun run_cdf(const TemporalGraph& graph, DelayCdfOptions opt,
               EngineMode mode) {
  opt.engine = mode;
  CdfRun run;
  const double t0 = now_ms();
  run.result = compute_delay_cdf(graph, opt);
  run.wall_ms = now_ms() - t0;
  return run;
}

/// Best-of-`reps` wall time (the standard robust estimator under
/// scheduler and frequency noise); the result itself is identical across
/// repetitions, so the last one is returned.
CdfRun run_cdf_best(const TemporalGraph& graph, const DelayCdfOptions& opt,
                    EngineMode mode, int reps) {
  CdfRun best = run_cdf(graph, opt, mode);
  for (int r = 1; r < reps; ++r) {
    CdfRun run = run_cdf(graph, opt, mode);
    run.wall_ms = std::min(run.wall_ms, best.wall_ms);
    best = std::move(run);
  }
  return best;
}

/// Largest absolute CDF discrepancy across every hop budget + unbounded.
double max_cdf_diff(const DelayCdfResult& a, const DelayCdfResult& b) {
  double worst = 0.0;
  auto scan = [&](const std::vector<double>& x, const std::vector<double>& y) {
    for (std::size_t j = 0; j < x.size(); ++j)
      worst = std::max(worst, std::abs(x[j] - y[j]));
  };
  for (std::size_t k = 0; k < a.cdf_by_hops.size(); ++k)
    scan(a.cdf_by_hops[k], b.cdf_by_hops[k]);
  scan(a.cdf_unbounded, b.cdf_unbounded);
  return worst;
}

void write_row(CsvWriter& csv, const std::string& section,
               const std::string& trace, const TemporalGraph& g,
               EngineMode mode, double wall_ms, double speedup,
               const EngineStats& stats, double cdf_diff, bool converged) {
  csv.write_row({section, trace, std::to_string(g.num_nodes()),
                 std::to_string(g.num_contacts()), engine_name(mode),
                 std::to_string(wall_ms), std::to_string(speedup),
                 std::to_string(stats.contacts_examined),
                 std::to_string(stats.pairs_inserted),
                 std::to_string(stats.pairs_dominated),
                 std::to_string(stats.frontier_copies_avoided),
                 std::to_string(cdf_diff), converged ? "1" : "0"});
}

void print_stats(const EngineStats& s) {
  std::printf("    %llu contact extensions, %llu pairs kept, %llu dominated, "
              "%llu frontier copies avoided\n",
              static_cast<unsigned long long>(s.contacts_examined),
              static_cast<unsigned long long>(s.pairs_inserted),
              static_cast<unsigned long long>(s.pairs_dominated),
              static_cast<unsigned long long>(s.frontier_copies_avoided));
}

TemporalGraph make_scaling_trace(double scale) {
  SyntheticTraceSpec spec;
  spec.num_internal = 30;
  spec.duration = 2 * kDay;
  spec.pair_contacts_mean = 2.0 * scale;
  spec.num_communities = 4;
  spec.gatherings = {80.0 * scale, 0.35, 0.06, 12 * kMinute, 0.8, 0.06};
  spec.profile = ActivityProfile::conference();
  return generate_trace(spec, 4242).graph;
}

/// Campus-style trace with N >= 200 nodes for the headline speedup
/// measurement: community-structured and sparse, so propagation reaches
/// the fixpoint over many hop levels with small per-level active sets --
/// the regime opportunistic traces live in (Reality Mining, Table 1).
TemporalGraph make_large_trace() {
  SyntheticTraceSpec spec;
  spec.num_internal = 240;
  spec.duration = 3 * kDay;
  spec.pair_contacts_mean = 0.06;
  spec.num_communities = 12;
  spec.gatherings = {25.0, 0.18, 0.04, 10 * kMinute, 0.75, 0.05};
  spec.profile = ActivityProfile::conference();
  return generate_trace(spec, 1717).graph;
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

int section_scaling(CsvWriter& csv) {
  std::printf("\n-- scaling: single-source fixpoint by trace density --\n");
  std::printf("%8s %10s %14s %14s %9s\n", "scale", "contacts", "sweep(ms)",
              "indexed(ms)", "speedup");
  for (const double scale : {1.0, 2.0, 4.0, 8.0}) {
    const auto g = make_scaling_trace(scale);
    double wall[2];
    EngineStats stats[2];
    const EngineMode modes[2] = {EngineMode::kLevelSweep,
                                 EngineMode::kIndexed};
    for (int m = 0; m < 2; ++m) {
      const double t0 = now_ms();
      SingleSourceEngine engine(g, 0, modes[m]);
      engine.run_to_fixpoint();
      wall[m] = now_ms() - t0;
      stats[m] = engine.stats();
    }
    const double speedup = wall[0] / std::max(wall[1], 1e-9);
    std::printf("%8.1f %10zu %14.2f %14.2f %8.2fx\n", scale, g.num_contacts(),
                wall[0], wall[1], speedup);
    const std::string trace = "synthetic_x" + std::to_string(scale);
    for (int m = 0; m < 2; ++m)
      write_row(csv, "scaling", trace, g, modes[m], wall[m],
                m == 1 ? speedup : 1.0, stats[m], 0.0, true);
  }
  return 0;
}

int section_perf(CsvWriter& csv) {
  std::printf("\n-- perf: all-pairs delay CDF, N >= 200 synthetic trace --\n");
  const auto g = make_large_trace();
  std::printf("  trace: %zu nodes, %zu contacts, %s\n", g.num_nodes(),
              g.num_contacts(), format_duration(g.duration()).c_str());
  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kDay, 32);
  opt.max_hops = 8;

  const CdfRun sweep = run_cdf_best(g, opt, EngineMode::kLevelSweep, 2);
  const CdfRun indexed = run_cdf_best(g, opt, EngineMode::kIndexed, 2);
  const double speedup = sweep.wall_ms / std::max(indexed.wall_ms, 1e-9);
  const double diff = max_cdf_diff(sweep.result, indexed.result);

  std::printf("  level-sweep: %10.1f ms\n", sweep.wall_ms);
  print_stats(sweep.result.stats);
  std::printf("  indexed:     %10.1f ms  (%.2fx)\n", indexed.wall_ms, speedup);
  print_stats(indexed.result.stats);
  std::printf("  max |CDF diff| = %.3g, diameter %d vs %d, fixpoint %d\n",
              diff, indexed.result.diameter(0.01), sweep.result.diameter(0.01),
              indexed.result.fixpoint_hops);

  write_row(csv, "perf", "synthetic_n220", g, EngineMode::kLevelSweep,
            sweep.wall_ms, 1.0, sweep.result.stats, 0.0,
            sweep.result.converged);
  write_row(csv, "perf", "synthetic_n220", g, EngineMode::kIndexed,
            indexed.wall_ms, speedup, indexed.result.stats, diff,
            indexed.result.converged);

  int failures = 0;
  if (!check(diff <= 1e-12, "CDF vectors identical within 1e-12")) ++failures;
  check(speedup >= 2.0, "indexed engine >= 2x faster than level-sweep");
  return failures;
}

int section_fig09(CsvWriter& csv) {
  std::printf("\n-- fig09 configs: indexed vs level-sweep CDF equality --\n");
  int failures = 0;
  struct Config {
    DatasetPreset preset;
    bool use_external;
  };
  const Config configs[] = {{dataset_infocom05(), false},
                            {dataset_reality_mining(), false},
                            {dataset_hong_kong(), true}};
  for (const Config& cfg : configs) {
    const auto trace = cfg.preset.generate();
    TemporalGraph graph = cfg.use_external
                              ? trace.graph
                              : keep_internal_contacts(trace.graph,
                                                       trace.num_internal);
    DelayCdfOptions opt;
    opt.grid = make_log_grid(2 * kMinute, kWeek, 48);
    opt.max_hops = 12;
    if (cfg.use_external) opt.endpoints = trace.internal_nodes();

    const CdfRun sweep = run_cdf(graph, opt, EngineMode::kLevelSweep);
    const CdfRun indexed = run_cdf(graph, opt, EngineMode::kIndexed);
    const double speedup = sweep.wall_ms / std::max(indexed.wall_ms, 1e-9);
    const double diff = max_cdf_diff(sweep.result, indexed.result);

    std::printf("  %-16s %7zu contacts: sweep %8.1f ms, indexed %8.1f ms "
                "(%.2fx), max |diff| %.3g\n",
                cfg.preset.spec.name.c_str(), graph.num_contacts(),
                sweep.wall_ms, indexed.wall_ms, speedup, diff);
    print_stats(indexed.result.stats);

    write_row(csv, "fig09", cfg.preset.spec.name, graph,
              EngineMode::kLevelSweep, sweep.wall_ms, 1.0, sweep.result.stats,
              0.0, sweep.result.converged);
    write_row(csv, "fig09", cfg.preset.spec.name, graph, EngineMode::kIndexed,
              indexed.wall_ms, speedup, indexed.result.stats, diff,
              indexed.result.converged);

    if (!check(diff <= 1e-12,
               (cfg.preset.spec.name + ": CDF identical within 1e-12").c_str()))
      ++failures;
  }
  return failures;
}

}  // namespace

int main() {
  bench::banner("Engine perf",
                "indexed dirty-set engine vs seed level-sweep baseline");
  CsvWriter csv(bench::csv_path("perf_engine"));
  csv.write_row({"section", "trace", "nodes", "contacts", "engine", "wall_ms",
                 "speedup_vs_sweep", "contacts_examined", "pairs_inserted",
                 "pairs_dominated", "frontier_copies_avoided",
                 "max_abs_cdf_diff_vs_sweep", "converged"});

  int failures = 0;
  failures += section_scaling(csv);
  failures += section_perf(csv);
  failures += section_fig09(csv);
  std::printf("[csv] wrote %s\n", bench::csv_path("perf_engine").c_str());
  if (failures) {
    std::printf("\n%d CDF equivalence check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall CDF equivalence checks passed\n");
  return 0;
}
