// Live-ingestion perf bench (PR 9): the incremental all-pairs engine
// behind `odtn tail` and the serve `ingest` verb.
//
// Scenario: a live monitor attaches to a 20-day conference-workload
// feed (the Figures 9-12 regime). The backlog -- everything already on
// disk, ~96% of the trace -- loads as ONE bulk append epoch (the
// bootstrap fast path: batch-DP cost, not epoch machinery). The
// remaining tail then streams in as 12 small append epochs of ~50
// contacts each, the cadence a tailing deployment actually sees, each
// running append() + all_pairs() over a FIXED start-time window (the
// full observation span) so untouched sources' CDF partials stay valid.
//
// Sections (rows land in bench_out/perf_live.csv):
//
//   cold_baseline -- compute_delay_cdf(kDirect) from scratch on the
//                    full concatenated trace (best of 3); this is what
//                    a naive monitor would pay on EVERY refresh.
//   epochs        -- bulk + per-tail-epoch append+all_pairs wall time;
//                    hard gates: the mid-tail and final results are
//                    bit-identical to a cold run on the trace-so-far,
//                    and the FINAL epoch is >= 3x cheaper than the cold
//                    full recompute (the ISSUE.md gate: incremental
//                    epoch cost at the final epoch vs from-scratch).
//
// Why the final epoch and not a steady-state mean over equal trace
// slices: a new contact's endpoints extend every source frontier that
// already reaches them (old arrivals precede the watermark), so with
// equal K-way slices nearly all sources are dirty every epoch and the
// re-integration floor is shared with the cold run. The live advantage
// is the DP advance being O(new contacts x affected frontier) instead
// of O(trace) -- which is exactly what small tail batches measure.
//
// Emits machine-readable bench_out/BENCH_pr9.json (gate fields only on
// gated records, bench_perf_engine conventions). Exit status is
// non-zero iff any hard gate fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/diameter.hpp"
#include "core/incremental_engine.hpp"
#include "stats/log_grid.hpp"
#include "trace/generators.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"
#include "util/time_format.hpp"

using namespace odtn;

namespace {

using bench::now_ms;  // shared wall clock (bench_util.hpp)

/// Conference-style community trace, the regime of Figures 9-12 and
/// bench_perf_serve's warm_cache section, run out to 20 days so the
/// backlog dwarfs the streamed tail.
TemporalGraph make_workload_trace() {
  SyntheticTraceSpec spec;
  spec.name = "conference_live";
  spec.num_internal = 120;
  spec.duration = 20 * kDay;
  spec.pair_contacts_mean = 0.10;
  spec.num_communities = 8;
  spec.gatherings = {25.0, 0.2, 0.04, 10 * kMinute, 0.8, 0.05};
  spec.profile = ActivityProfile::conference();
  return generate_trace(spec, 7117).graph;
}

/// Bitwise result equality over everything a monitor row reports: CDFs,
/// diameters, scalars. Instrumentation counters are deliberately
/// excluded -- an incremental epoch examines fewer contacts by design.
bool results_bit_identical(const DelayCdfResult& a, const DelayCdfResult& b,
                           std::string* why) {
  auto fail = [&](const char* what) {
    if (why) *why = what;
    return false;
  };
  if (a.grid != b.grid) return fail("grid");
  if (a.cdf_by_hops != b.cdf_by_hops) return fail("cdf_by_hops");
  if (a.cdf_unbounded != b.cdf_unbounded) return fail("cdf_unbounded");
  if (a.fixpoint_hops != b.fixpoint_hops) return fail("fixpoint_hops");
  if (a.converged != b.converged) return fail("converged");
  if (a.denominator != b.denominator) return fail("denominator");
  for (const double eps : {0.001, 0.01, 0.05, 0.1, 0.5}) {
    if (a.diameter(eps) != b.diameter(eps)) return fail("diameter(eps)");
    if (a.diameter_per_delay(eps) != b.diameter_per_delay(eps))
      return fail("diameter_per_delay(eps)");
  }
  return true;
}

struct LiveRecord {
  std::string section;
  std::string variant;
  double wall_ms = 0.0;
  double speedup = 0.0;
  std::uint64_t contacts = 0;
  bool gated = false;
  std::string gate;
  bool gate_pass = true;
};

void emit(CsvWriter& csv, std::vector<LiveRecord>& records, LiveRecord r) {
  csv.write_row({r.section, r.variant, std::to_string(r.wall_ms),
                 std::to_string(r.speedup), std::to_string(r.contacts),
                 r.gated ? r.gate : "",
                 r.gated ? (r.gate_pass ? "1" : "0") : ""});
  records.push_back(std::move(r));
}

void write_bench_json_pr9(const std::vector<LiveRecord>& records) {
  const std::string path = "bench_out/BENCH_pr9.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::printf("[json] could not open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_perf_live\",\n  \"pr\": 9,\n"
               "  \"metric\": \"incremental epoch cost vs cold recompute\",\n"
               "  \"workers\": %u,\n  \"records\": [\n",
               shared_thread_pool().num_workers());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const LiveRecord& r = records[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"variant\": \"%s\", "
                 "\"wall_ms\": %.3f, \"speedup\": %.3f, "
                 "\"contacts\": %llu",
                 r.section.c_str(), r.variant.c_str(), r.wall_ms, r.speedup,
                 static_cast<unsigned long long>(r.contacts));
    if (r.gated)
      std::fprintf(f, ", \"gate\": \"%s\", \"gate_pass\": %s",
                   r.gate.c_str(), r.gate_pass ? "true" : "false");
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

int run(CsvWriter& csv, std::vector<LiveRecord>& records) {
  constexpr int kTailEpochs = 12;
  constexpr double kTailFraction = 0.04;  // streamed live after the bulk load
  const TemporalGraph full = make_workload_trace();
  const auto contacts = full.contacts();

  IncrementalCdfOptions io;
  io.grid = make_log_grid(2 * kMinute, kDay, 48);
  io.max_hops = 10;
  // Fix the start-time window up front: a live deployment knows its
  // observation span, and a fixed window keeps untouched sources' CDF
  // partials valid across epochs.
  io.t_lo = full.start_time();
  io.t_hi = full.end_time();

  DelayCdfOptions cold_opt;
  cold_opt.grid = io.grid;
  cold_opt.max_hops = io.max_hops;
  cold_opt.max_levels = io.max_levels;
  cold_opt.t_lo = io.t_lo;
  cold_opt.t_hi = io.t_hi;
  cold_opt.accumulation = CdfAccumulation::kDirect;

  const std::size_t tail_total = static_cast<std::size_t>(
      static_cast<double>(contacts.size()) * kTailFraction);
  const std::size_t bulk_count = contacts.size() - tail_total;
  const std::size_t tail_step = tail_total / kTailEpochs + 1;

  std::printf("\n-- live ingest: %zu nodes, %zu contacts "
              "(bulk %zu + %d tail epochs of ~%zu, gated) --\n",
              full.num_nodes(), full.num_contacts(), bulk_count, kTailEpochs,
              tail_step);
  int failures = 0;

  // Cold baseline: what every refresh would cost without the
  // incremental engine.
  double cold_ms = 1e300;
  DelayCdfResult cold_full;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_ms();
    DelayCdfResult r = compute_delay_cdf(full, cold_opt);
    const double wall = now_ms() - t0;
    if (wall < cold_ms) {
      cold_ms = wall;
      cold_full = std::move(r);
    }
  }
  std::printf("  cold full recompute : %8.1f ms\n", cold_ms);
  LiveRecord cold_rec;
  cold_rec.section = "cold_baseline";
  cold_rec.variant = "compute_delay_cdf";
  cold_rec.wall_ms = cold_ms;
  cold_rec.speedup = 1.0;
  cold_rec.contacts = full.num_contacts();
  emit(csv, records, cold_rec);

  // Bulk backlog load: one big append through the bootstrap fast path.
  IncrementalAllPairsEngine engine(full.num_nodes(), full.directed(), io);
  {
    const double t0 = now_ms();
    engine.append(contacts.subspan(0, bulk_count));
    engine.all_pairs();
    const double wall = now_ms() - t0;
    std::printf("  bulk load (+%zu)  : %8.1f ms\n", bulk_count, wall);
    LiveRecord r;
    r.section = "epochs";
    r.variant = "bulk_load";
    r.wall_ms = wall;
    r.speedup = cold_ms / std::max(wall, 1e-9);
    r.contacts = bulk_count;
    emit(csv, records, r);
  }

  // Tail epochs: the streamed live batches.
  DelayCdfResult mid_live, final_live;
  std::size_t mid_count = 0;
  double final_ms = 0.0;
  const int mid_epoch = kTailEpochs / 2;
  int epoch = 0;
  for (std::size_t at = bulk_count; at < contacts.size();
       at += tail_step, ++epoch) {
    const std::size_t n = std::min(tail_step, contacts.size() - at);
    const double t0 = now_ms();
    engine.append(contacts.subspan(at, n));
    DelayCdfResult live = engine.all_pairs();
    const double wall = now_ms() - t0;
    std::printf("  tail epoch %2d (+%3zu): %8.1f ms\n", epoch, n, wall);
    if (epoch == mid_epoch) {
      mid_live = std::move(live);
      mid_count = at + n;
    } else if (at + n == contacts.size()) {
      final_live = std::move(live);
      final_ms = wall;
    }
    LiveRecord r;
    r.section = "epochs";
    r.variant = "tail_epoch_" + std::to_string(epoch);
    r.wall_ms = wall;
    r.speedup = cold_ms / std::max(wall, 1e-9);
    r.contacts = n;
    emit(csv, records, r);
  }

  // Gate 1: mid-tail result == cold recompute on the trace so far.
  std::string why;
  const TemporalGraph mid_prefix(
      full.num_nodes(),
      std::vector<Contact>(contacts.begin(),
                           contacts.begin() + static_cast<long>(mid_count)),
      full.directed());
  const DelayCdfResult mid_cold = compute_delay_cdf(mid_prefix, cold_opt);
  const bool mid_ok = results_bit_identical(mid_live, mid_cold, &why);
  if (!bench::check(mid_ok, "mid-epoch result == cold prefix recompute "
                            "bit-identical" +
                                (mid_ok ? "" : " (" + why + ")")))
    ++failures;

  // Gate 2: final result == cold recompute on the full trace.
  const bool final_ok = results_bit_identical(final_live, cold_full, &why);
  if (!bench::check(final_ok, "final result == cold full recompute "
                              "bit-identical" +
                                  (final_ok ? "" : " (" + why + ")")))
    ++failures;

  // Gate 3: the final epoch must be >= 3x cheaper than recomputing the
  // full trace from scratch (what a poll-based monitor pays instead).
  const double speedup = cold_ms / std::max(final_ms, 1e-9);
  std::printf("  final epoch         : %8.1f ms  (%.2fx vs cold)\n", final_ms,
              speedup);
  if (!bench::check(speedup >= 3.0,
                    "final epoch >= 3x cheaper than cold full recompute"))
    ++failures;

  LiveRecord mid_rec;
  mid_rec.section = "epochs";
  mid_rec.variant = "mid_identity";
  mid_rec.contacts = mid_count;
  mid_rec.gated = true;
  mid_rec.gate = "mid_epoch_bit_identical";
  mid_rec.gate_pass = mid_ok;
  emit(csv, records, mid_rec);

  LiveRecord final_rec;
  final_rec.section = "epochs";
  final_rec.variant = "final_identity";
  final_rec.contacts = full.num_contacts();
  final_rec.gated = true;
  final_rec.gate = "final_epoch_bit_identical";
  final_rec.gate_pass = final_ok;
  emit(csv, records, final_rec);

  LiveRecord gate_rec;
  gate_rec.section = "epochs";
  gate_rec.variant = "final_epoch_cost";
  gate_rec.wall_ms = final_ms;
  gate_rec.speedup = speedup;
  gate_rec.gated = true;
  gate_rec.gate = "final_epoch_3x_vs_cold";
  gate_rec.gate_pass = speedup >= 3.0;
  emit(csv, records, gate_rec);
  return failures;
}

}  // namespace

int main() {
  bench::banner("Live ingest",
                "bulk backlog load + streamed tail epochs vs cold recompute: "
                "per-epoch cost + bit-identity gates");
  CsvWriter csv(bench::csv_path("perf_live"));
  csv.write_row({"section", "variant", "wall_ms", "speedup", "contacts",
                 "gate", "gate_pass"});

  std::vector<LiveRecord> records;
  const int failures = run(csv, records);
  write_bench_json_pr9(records);
  std::printf("[csv] wrote %s\n", bench::csv_path("perf_live").c_str());

  if (failures) {
    std::printf("\n%d live gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall live gates passed\n");
  return 0;
}
