// Extension bench: aggregated inter-contact time distributions.
//
// Prior characterization work ([2], [9] in the paper) focused on this
// statistic: the aggregated CCDF shows a slowly-decaying body over
// minutes-to-hours followed by faster decay at the timescale of days --
// §3.4 relies on the light tail holding "at the timescale of days and
// weeks". This bench prints the aggregated CCDF for the four synthetic
// data sets and their tail summaries.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/empirical.hpp"
#include "stats/log_grid.hpp"
#include "trace/datasets.hpp"
#include "trace/intercontact.hpp"
#include "util/csv.hpp"

using namespace odtn;

int main() {
  bench::banner("Extension ([2],[9])",
                "aggregated inter-contact time CCDF, four data sets");
  CsvWriter csv(bench::csv_path("ext_intercontact"));
  csv.write_row({"dataset", "gap_seconds", "ccdf"});

  std::vector<PlotSeries> series;
  std::printf("%-16s %10s %12s %12s %12s %14s\n", "dataset", "gaps",
              "median", "mean", "p90", "Hill tail exp");
  for (const auto& preset : all_datasets()) {
    const auto trace = preset.generate();
    const auto summary = summarize_inter_contact(trace.graph);
    std::printf("%-16s %10zu %12s %12s %12s %14.2f\n",
                preset.spec.name.c_str(), summary.count,
                format_duration(summary.median).c_str(),
                format_duration(summary.mean).c_str(),
                format_duration(summary.p90).c_str(), summary.tail_exponent);

    EmpiricalDistribution gaps;
    for (double gap : all_inter_contact_times(trace.graph))
      gaps.add(std::max(gap, 1.0));
    const auto grid = make_log_grid(kMinute, 2 * kWeek, 48);
    const auto ccdf = gaps.ccdf_on_grid(grid);
    for (std::size_t j = 0; j < grid.size(); ++j)
      csv.write_row({preset.spec.name, std::to_string(grid[j]),
                     std::to_string(ccdf[j])});
    series.push_back({preset.spec.name, grid, ccdf});
  }

  PlotOptions opt;
  opt.log_x = true;
  opt.x_as_duration = true;
  opt.x_label = "inter-contact time";
  opt.y_label = "CCDF  P[gap > x]";
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  std::printf("%s", render_ascii_plot(series, opt).c_str());

  std::printf(
      "\nPaper check (§3.4, [2], [9]): gaps spread over many decades\n"
      "(minutes to days -- the slowly-decaying body), yet the tail at the\n"
      "multi-day scale decays fast (large Hill exponent), which is the\n"
      "regime where the base model's light-tail assumption holds.\n");
  std::printf("[csv] wrote %s\n", bench::csv_path("ext_intercontact").c_str());
  return 0;
}
