// Figure 7: CCDF of contact duration for the four data sets (log-log).
//
// The paper's observations checked here: durations span minutes to
// hours; the bulk of conference contacts are a single scan interval
// (~75% of Infocom06 contacts are one 2-minute slot) yet a heavy tail
// of hour-long contacts remains (~0.4% above one hour).
#include <cstdio>

#include "bench_util.hpp"
#include "stats/empirical.hpp"
#include "stats/log_grid.hpp"
#include "trace/datasets.hpp"
#include "util/csv.hpp"

using namespace odtn;

int main() {
  bench::banner("Figure 7", "CCDF of contact duration, four data sets");

  CsvWriter csv(bench::csv_path("fig07_contact_duration"));
  csv.write_row({"dataset", "duration_seconds", "ccdf"});

  std::vector<PlotSeries> series;
  std::printf("%-16s %10s %14s %16s %16s %14s\n", "dataset", "contacts",
              "P[one slot]", "P[> 10 min]", "P[> 1 hour]", "max");
  for (const auto& preset : all_datasets()) {
    const auto trace = preset.generate();
    EmpiricalDistribution durations;
    for (double d : trace.graph.contact_durations()) durations.add(d);

    const auto grid = make_log_grid(60.0, 12 * kHour, 48);
    const auto ccdf = durations.ccdf_on_grid(grid);
    PlotSeries s{preset.spec.name, grid, ccdf};
    for (std::size_t j = 0; j < grid.size(); ++j)
      csv.write_row({preset.spec.name, std::to_string(grid[j]),
                     std::to_string(ccdf[j])});
    series.push_back(std::move(s));

    const double g = preset.spec.granularity;
    std::printf("%-16s %10zu %13.1f%% %15.2f%% %15.2f%% %14s\n",
                preset.spec.name.c_str(), durations.count(),
                100.0 * (durations.cdf(g) - durations.cdf(g - 1.0)),
                100.0 * durations.ccdf(10 * kMinute),
                100.0 * durations.ccdf(kHour),
                format_duration(durations.finite_max()).c_str());
  }

  PlotOptions opt;
  opt.log_x = true;
  opt.x_as_duration = true;
  opt.x_label = "contact duration";
  opt.y_label = "CCDF  P[duration > x]";
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  std::printf("%s", render_ascii_plot(series, opt).c_str());

  std::printf(
      "\nPaper check: most contacts last one scan interval, while a small\n"
      "but structurally important fraction (familiar people, co-located\n"
      "sessions) lasts from tens of minutes to hours.\n");
  std::printf("[csv] wrote %s\n",
              bench::csv_path("fig07_contact_duration").c_str());
  return 0;
}
