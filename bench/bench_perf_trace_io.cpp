// Trace ingestion throughput: the streaming tokenizer parser vs the
// seed line-stream parser (kept as read_trace_reference).
//
// Sections:
//   parse        -- ~1M-contact synthetic trace parsed by both parsers;
//                   hard gates: bit-identical TemporalGraph and >= 5x
//                   throughput for the streaming parser.
//   lenient      -- the same trace with ~1% of contact lines corrupted;
//                   hard gates: every corrupted record skipped and
//                   counted, every clean record kept.
//   canonicalize -- an out-of-order trace with overlapping duplicates;
//                   hard gate: parse-time canonicalization equals
//                   merge_overlapping_contacts on the raw contacts.
//
// Output: bench_out/perf_trace_io.csv (one row per timed run) and
// machine-readable bench_out/BENCH_pr4.json. Exit code is non-zero when
// any hard gate fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "trace/trace_io.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

using bench::check;

double now_ms() {
  using namespace std::chrono;
  return duration<double, std::milli>(steady_clock::now().time_since_epoch())
      .count();
}

/// Random trace in the shape of a week-long campus data set: fractional
/// second timestamps (so every value exercises the double parser) and
/// dense node reuse.
TemporalGraph synthetic_trace(std::size_t nodes, std::size_t contacts,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Contact> all;
  all.reserve(contacts);
  const double horizon = 7.0 * 86400.0;
  for (std::size_t i = 0; i < contacts; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    const double begin = rng.uniform(0.0, horizon);
    const double length = rng.uniform(0.0, 3600.0);
    all.push_back({u, v, begin, begin + length});
  }
  return TemporalGraph(nodes, std::move(all));
}

struct TimedParse {
  TemporalGraph graph;
  double wall_ms = 0.0;
};

template <typename Parse>
TimedParse best_of(int reps, const std::string& text, Parse parse) {
  TimedParse best{TemporalGraph(0, {}), 0.0};
  for (int r = 0; r < reps; ++r) {
    std::istringstream in(text);
    const double t0 = now_ms();
    TemporalGraph g = parse(in);
    const double wall = now_ms() - t0;
    if (r == 0 || wall < best.wall_ms) best = {std::move(g), wall};
  }
  return best;
}

double mb_per_s(std::size_t bytes, double wall_ms) {
  return static_cast<double>(bytes) / 1e6 / (wall_ms / 1e3);
}

struct SectionRecord {
  std::string section;
  std::string parser;
  std::size_t contacts = 0;
  std::size_t bytes = 0;
  double wall_ms = 0.0;
  double speedup = 0.0;
};

int section_parse(CsvWriter& csv, std::vector<SectionRecord>& records,
                  const TemporalGraph& original, const std::string& text) {
  std::printf("\n-- section parse: %zu contacts, %.1f MB --\n",
              original.num_contacts(),
              static_cast<double>(text.size()) / 1e6);
  int failures = 0;

  const TimedParse ref = best_of(3, text, [](std::istream& in) {
    return read_trace_reference(in);
  });
  const TimedParse fast = best_of(3, text, [](std::istream& in) {
    return read_trace(in);
  });
  const double speedup = ref.wall_ms / fast.wall_ms;

  std::printf("  reference : %8.1f ms  %7.1f MB/s  %10.0f contacts/s\n",
              ref.wall_ms, mb_per_s(text.size(), ref.wall_ms),
              static_cast<double>(original.num_contacts()) /
                  (ref.wall_ms / 1e3));
  std::printf("  streaming : %8.1f ms  %7.1f MB/s  %10.0f contacts/s\n",
              fast.wall_ms, mb_per_s(text.size(), fast.wall_ms),
              static_cast<double>(original.num_contacts()) /
                  (fast.wall_ms / 1e3));
  std::printf("  speedup   : %.2fx\n", speedup);

  const bool identical = fast.graph.num_nodes() == original.num_nodes() &&
                         fast.graph.directed() == original.directed() &&
                         std::ranges::equal(fast.graph.contacts(), original.contacts());
  const bool ref_identical =
      std::ranges::equal(ref.graph.contacts(), original.contacts());
  if (!check(identical,
             "streaming parse is bit-identical to the written graph"))
    ++failures;
  if (!check(ref_identical,
             "reference parse is bit-identical to the written graph"))
    ++failures;
  if (!check(speedup >= 5.0, "streaming parser >= 5x reference throughput"))
    ++failures;

  csv.write_row({"parse", "reference", std::to_string(original.num_contacts()),
                 std::to_string(text.size()), std::to_string(ref.wall_ms),
                 "1"});
  csv.write_row({"parse", "streaming", std::to_string(original.num_contacts()),
                 std::to_string(text.size()), std::to_string(fast.wall_ms),
                 std::to_string(speedup)});
  records.push_back({"parse", "reference", original.num_contacts(),
                     text.size(), ref.wall_ms, 1.0});
  records.push_back({"parse", "streaming", original.num_contacts(),
                     text.size(), fast.wall_ms, speedup});
  return failures;
}

int section_lenient(CsvWriter& csv, std::vector<SectionRecord>& records,
                    const TemporalGraph& original, const std::string& text) {
  // Corrupt ~1% of contact lines by overwriting their first byte; each
  // becomes a syntax error the lenient pass must skip and count.
  std::string broken = text;
  Rng rng(99);
  std::size_t corrupted = 0;
  std::size_t line_start = 0;
  for (std::size_t i = 0; i < broken.size(); ++i) {
    if (broken[i] != '\n') continue;
    if (broken[line_start] != '#' && line_start < i && rng.bernoulli(0.01)) {
      broken[line_start] = 'x';
      ++corrupted;
    }
    line_start = i + 1;
  }

  std::printf("\n-- section lenient: %zu of %zu records corrupted --\n",
              corrupted, original.num_contacts());
  int failures = 0;
  ParseReport report;
  std::istringstream in(broken);
  const double t0 = now_ms();
  const TemporalGraph g = read_trace(in, {ParseMode::kLenient}, &report);
  const double wall = now_ms() - t0;
  std::printf("  lenient   : %8.1f ms  %7.1f MB/s  (%zu skipped)\n", wall,
              mb_per_s(broken.size(), wall), report.skipped);

  if (!check(report.skipped == corrupted,
             "every corrupted record is skipped and counted"))
    ++failures;
  if (!check(g.num_contacts() == original.num_contacts() - corrupted,
             "every clean record is kept"))
    ++failures;
  if (!check(!report.diagnostics.empty() &&
                 report.diagnostics.size() <= 64,
             "diagnostics recorded and capped at max_diagnostics"))
    ++failures;

  csv.write_row({"lenient", "streaming", std::to_string(g.num_contacts()),
                 std::to_string(broken.size()), std::to_string(wall), ""});
  records.push_back({"lenient", "streaming", g.num_contacts(), broken.size(),
                     wall, 0.0});
  return failures;
}

int section_canonicalize(CsvWriter& csv,
                         std::vector<SectionRecord>& records) {
  // An out-of-order trace with overlapping duplicates: shuffled copies
  // of a base trace, written unsorted so the parser has to repair it.
  Rng rng(7);
  const std::size_t nodes = 120;
  std::vector<Contact> contacts;
  const std::size_t kCount = 200000;
  contacts.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    const double begin = rng.uniform(0.0, 5000.0);  // dense: many overlaps
    contacts.push_back({u, v, begin, begin + rng.uniform(0.0, 50.0)});
  }
  // Hand-write the records unsorted; write_trace would canonicalize.
  std::string text = "# odtn-trace v1\n# nodes " + std::to_string(nodes) +
                     "\n# directed 0\n";
  char buf[128];
  for (const Contact& c : contacts) {
    std::snprintf(buf, sizeof buf, "%u %u %.17g %.17g\n", c.u, c.v, c.begin,
                  c.end);
    text += buf;
  }

  std::printf("\n-- section canonicalize: %zu unsorted records --\n", kCount);
  int failures = 0;
  ParseOptions options;
  options.canonicalize = true;
  ParseReport report;
  std::istringstream in(text);
  const double t0 = now_ms();
  const TemporalGraph g = read_trace(in, options, &report);
  const double wall = now_ms() - t0;
  std::printf("  canonical : %8.1f ms  %zu merged, %zu order violations\n",
              wall, report.merged, report.out_of_order);

  const TemporalGraph expected(nodes, merge_overlapping_contacts(contacts));
  if (!check(std::ranges::equal(g.contacts(), expected.contacts()),
             "parse-time canonicalization == merge_overlapping_contacts"))
    ++failures;
  if (!check(report.merged == kCount - g.num_contacts(),
             "merge accounting: contacts_before - contacts_after"))
    ++failures;
  if (!check(report.merged > 0 && report.out_of_order > 0,
             "workload actually exercised merging and reordering"))
    ++failures;

  csv.write_row({"canonicalize", "streaming", std::to_string(g.num_contacts()),
                 std::to_string(text.size()), std::to_string(wall), ""});
  records.push_back({"canonicalize", "streaming", g.num_contacts(),
                     text.size(), wall, 0.0});
  return failures;
}

void write_bench_json(const std::vector<SectionRecord>& records) {
  const std::string path = "bench_out/BENCH_pr4.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::printf("[json] could not open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_perf_trace_io\",\n  \"pr\": 4,\n"
                  "  \"metric\": \"trace parse throughput\",\n"
                  "  \"records\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SectionRecord& r = records[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"parser\": \"%s\", "
                 "\"contacts\": %zu, \"bytes\": %zu, \"wall_ms\": %.3f, "
                 "\"mb_per_s\": %.1f, \"speedup_vs_reference\": %.3f}%s\n",
                 r.section.c_str(), r.parser.c_str(), r.contacts, r.bytes,
                 r.wall_ms, mb_per_s(r.bytes, r.wall_ms), r.speedup,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace odtn

int main() {
  using namespace odtn;
  bench::banner("Trace IO perf",
                "streaming tokenizer parser vs the seed line-stream parser");
  CsvWriter csv(bench::csv_path("perf_trace_io"));
  csv.write_row({"section", "parser", "contacts", "bytes", "wall_ms",
                 "speedup_vs_reference"});

  const char* only = std::getenv("BENCH_SECTIONS");
  auto enabled = [&](const char* name) {
    return only == nullptr || std::strstr(only, name) != nullptr;
  };

  // ~1M contacts, ~50 MB of text: big enough that parse throughput
  // dominates and both parsers stream well past any cache effects.
  const TemporalGraph original = synthetic_trace(500, 1000000, 42);
  std::ostringstream out;
  write_trace(out, original);
  const std::string text = out.str();

  int failures = 0;
  std::vector<SectionRecord> records;
  if (enabled("parse")) failures += section_parse(csv, records, original, text);
  if (enabled("lenient"))
    failures += section_lenient(csv, records, original, text);
  if (enabled("canonicalize")) failures += section_canonicalize(csv, records);
  write_bench_json(records);
  std::printf("[csv] wrote %s\n", bench::csv_path("perf_trace_io").c_str());
  if (failures) {
    std::printf("\n%d ingestion gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall ingestion gates passed\n");
  return 0;
}
