// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (a) a header identifying the paper artifact it
// regenerates, (b) the numeric series as aligned text, (c) an ASCII
// rendering of the figure's shape, and (d) writes the series to
// bench_out/<name>.csv for external replotting.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "core/diameter.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/mc_harness.hpp"
#include "util/time_format.hpp"

namespace odtn::bench {

/// Monotonic wall clock in milliseconds (steady_clock).
inline double now_ms() {
  using namespace std::chrono;
  return duration<double, std::milli>(steady_clock::now().time_since_epoch())
      .count();
}

/// Process CPU time in milliseconds. For a single-threaded run this
/// tracks wall time on an idle host but is immune to scheduler steal on
/// a contended one, so single-thread perf gates ratio CPU time, not
/// wall time.
inline double cpu_now_ms() {
  return 1000.0 * static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

/// One timed execution: wall + process-CPU milliseconds.
struct TimedRun {
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
};

/// Times one call of `fn`.
template <typename Fn>
TimedRun time_once(Fn&& fn) {
  TimedRun run;
  const double c0 = cpu_now_ms();
  const double t0 = now_ms();
  fn();
  run.wall_ms = now_ms() - t0;
  run.cpu_ms = cpu_now_ms() - c0;
  return run;
}

/// Interleaved best-of-`reps` over competing timing arms: every rep runs
/// every arm once, in order, so slow drift over the measurement window
/// (thermal throttling, frequency scaling, background load) biases all
/// best-of estimates ALIKE instead of flattering whichever arm ran
/// last. Returns the per-arm minima of both clocks.
inline std::vector<TimedRun> best_of_interleaved(
    int reps, const std::vector<std::function<void()>>& arms) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<TimedRun> best(arms.size(), TimedRun{kInf, kInf});
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t a = 0; a < arms.size(); ++a) {
      const TimedRun run = time_once(arms[a]);
      best[a].wall_ms = std::min(best[a].wall_ms, run.wall_ms);
      best[a].cpu_ms = std::min(best[a].cpu_ms, run.cpu_ms);
    }
  }
  return best;
}

/// Prints the standard bench banner.
inline void banner(const std::string& artifact, const std::string& caption) {
  std::printf("\n==============================================================\n");
  std::printf("%s -- %s\n", artifact.c_str(), caption.c_str());
  std::printf("==============================================================\n");
}

/// Creates bench_out/ (next to the working directory) and returns the
/// CSV path for this bench.
inline std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".csv";
}

/// Parses `--threads N` from a bench's argv (0 = hardware concurrency,
/// the default). Monte-Carlo benches accept it so the thread-count
/// invariance of the harness can be exercised from the command line.
inline unsigned parse_threads(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--threads")
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
  }
  return 0;
}

/// Prints one harness instrumentation line.
inline void print_mc_stats(const char* what, const McStats& s) {
  std::printf("  [mc] %s: %llu trials / %u worker(s), %.1f ms, "
              "%.0f trials/s, utilization %.2f\n",
              what, static_cast<unsigned long long>(s.trials), s.workers,
              s.wall_ms, s.trials_per_second(), s.worker_utilization());
}

/// PASS/FAIL line in the bench_perf_engine style; returns `ok`.
inline bool check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  return ok;
}

/// Appends a timing row to `bench_out/<name>.csv` (separate from the
/// result CSVs so those stay bit-identical across runs and thread
/// counts). One row per harness configuration.
inline void write_mc_timing_csv(const std::string& name,
                                const std::vector<std::pair<unsigned, double>>&
                                    wall_ms_by_threads) {
  CsvWriter csv(csv_path(name));
  csv.write_row({"threads", "wall_ms", "speedup_vs_1_thread"});
  const double base = wall_ms_by_threads.empty()
                          ? 0.0
                          : wall_ms_by_threads.front().second;
  for (const auto& [threads, wall_ms] : wall_ms_by_threads) {
    csv.write_numeric_row({static_cast<double>(threads), wall_ms,
                           base / std::max(wall_ms, 1e-9)});
  }
  std::printf("[csv] wrote %s\n", csv_path(name).c_str());
}

/// Label for a hop budget (kUnboundedHops -> "inf").
inline std::string hop_label(int hops) {
  return hops == kUnboundedHops ? "inf hops"
                                : std::to_string(hops) + " hop" +
                                      (hops == 1 ? "" : "s");
}

/// Prints a delay-CDF family as an aligned table (rows: delay grid,
/// columns: hop budgets + unbounded), mirroring the axes of Figures 9-11.
inline void print_cdf_table(const DelayCdfResult& result,
                            const std::vector<int>& hop_budgets) {
  std::printf("%-10s", "delay");
  for (int k : hop_budgets) std::printf("  %8s", hop_label(k).c_str());
  std::printf("\n");
  for (std::size_t j = 0; j < result.grid.size(); ++j) {
    std::printf("%-10s", format_duration(result.grid[j]).c_str());
    for (int k : hop_budgets) {
      const double v = (k == kUnboundedHops)
                           ? result.cdf_unbounded[j]
                           : result.cdf_by_hops[static_cast<std::size_t>(k) - 1][j];
      std::printf("  %8.4f", v);
    }
    std::printf("\n");
  }
}

/// Renders the CDF family as an ASCII chart (x log scale, y in [0, 1]).
inline void plot_cdf_family(const DelayCdfResult& result,
                            const std::vector<int>& hop_budgets,
                            const std::string& title) {
  std::vector<PlotSeries> series;
  for (int k : hop_budgets) {
    const auto& cdf =
        (k == kUnboundedHops)
            ? result.cdf_unbounded
            : result.cdf_by_hops[static_cast<std::size_t>(k) - 1];
    series.push_back({hop_label(k), result.grid, cdf});
  }
  PlotOptions opt;
  opt.log_x = true;
  opt.x_as_duration = true;
  opt.x_label = "delay";
  opt.y_label = title + "  (P[success within delay])";
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  std::printf("%s", render_ascii_plot(series, opt).c_str());
}

/// Dumps the CDF family to CSV: one row per grid point.
inline void write_cdf_csv(const std::string& name,
                          const DelayCdfResult& result,
                          const std::vector<int>& hop_budgets,
                          const std::string& variant = "") {
  CsvWriter csv(csv_path(name));
  std::vector<std::string> header{"variant", "delay_seconds"};
  for (int k : hop_budgets) header.push_back(hop_label(k));
  csv.write_row(header);
  for (std::size_t j = 0; j < result.grid.size(); ++j) {
    std::vector<std::string> row{variant, std::to_string(result.grid[j])};
    for (int k : hop_budgets) {
      const double v =
          (k == kUnboundedHops)
              ? result.cdf_unbounded[j]
              : result.cdf_by_hops[static_cast<std::size_t>(k) - 1][j];
      row.push_back(std::to_string(v));
    }
    csv.write_row(row);
  }
  std::printf("[csv] wrote %s\n", csv_path(name).c_str());
}

}  // namespace odtn::bench
