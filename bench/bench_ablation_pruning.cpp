// Ablation: the condition-(4) Pareto pruning of §4.4.
//
// The paper's claim: keeping only pairs with EA_k = min{EA_l : l >= k}
// "describes all optimal paths and the function del using a minimum
// amount of information", which "makes it feasible to analyze long
// traces with hundred thousands of contacts".
//
// This bench quantifies that: it runs the hop-DP with (a) the pruned
// frontier and (b) a naive variant that stores every generated
// (LD, EA) pair with only exact-duplicate elimination, and compares
// stored pair counts and wall-clock time as the trace grows.
#include <algorithm>
#include <chrono>
#include <limits>
#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.hpp"
#include "core/optimal_paths.hpp"
#include "trace/generators.hpp"
#include "util/csv.hpp"

using namespace odtn;

namespace {

/// Naive per-destination store: all pairs, duplicate-eliminated only.
struct NaiveStore {
  std::set<std::pair<double, double>> pairs;  // (ld, ea)

  bool insert(double ld, double ea) { return pairs.emplace(ld, ea).second; }
};

/// Hop-DP with naive stores; returns total stored pairs.
std::size_t run_naive(const TemporalGraph& g, NodeId src, int levels,
                      std::size_t cap) {
  std::vector<NaiveStore> cur(g.num_nodes());
  cur[src].insert(std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity());
  for (int k = 0; k < levels; ++k) {
    auto prev = cur;
    bool changed = false;
    for (const Contact& c : g.contacts()) {
      auto extend = [&](NodeId from, NodeId to) {
        for (const auto& [ld, ea] : prev[from].pairs) {
          if (ea > c.end) continue;  // concatenation condition
          changed |= cur[to].insert(std::min(ld, c.end),
                                    std::max(ea, c.begin));
        }
      };
      extend(c.u, c.v);
      extend(c.v, c.u);
    }
    std::size_t total = 0;
    for (const auto& s : cur) total += s.pairs.size();
    if (total > cap) return total;  // explosion guard
    if (!changed) break;
  }
  std::size_t total = 0;
  for (const auto& s : cur) total += s.pairs.size();
  return total;
}

}  // namespace

int main() {
  bench::banner("Ablation",
                "condition-(4) pruning vs naive pair storage (per source)");
  CsvWriter csv(bench::csv_path("ablation_pruning"));
  csv.write_row({"contacts", "pruned_pairs", "pruned_ms", "naive_pairs",
                 "naive_ms", "naive_capped"});

  std::printf("%-10s %14s %12s %14s %12s\n", "contacts", "pruned pairs",
              "pruned ms", "naive pairs", "naive ms");
  for (double scale : {0.5, 1.0, 2.0}) {
    SyntheticTraceSpec spec;
    spec.num_internal = 20;
    spec.duration = 2 * 86400.0;
    spec.pair_contacts_mean = 2.0 * scale;
    spec.num_communities = 4;
    spec.gatherings = {60.0 * scale, 0.35, 0.06, 12.0 * 60.0, 0.8, 0.06};
    spec.profile = ActivityProfile::conference();
    const auto g = generate_trace(spec, 808).graph;

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    SingleSourceEngine engine(g, 0);
    engine.run_to_fixpoint();
    const std::size_t pruned = engine.total_pairs();
    const auto t1 = Clock::now();
    constexpr std::size_t kCap = 400'000;
    const std::size_t naive = run_naive(g, 0, 32, kCap);
    const auto t2 = Clock::now();

    const double pruned_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double naive_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    const bool capped = naive > kCap;
    std::printf("%-10zu %14zu %12.1f %13zu%s %12.1f\n", g.num_contacts(),
                pruned, pruned_ms, naive, capped ? "+" : " ", naive_ms);
    csv.write_numeric_row({static_cast<double>(g.num_contacts()),
                           static_cast<double>(pruned), pruned_ms,
                           static_cast<double>(naive), naive_ms,
                           capped ? 1.0 : 0.0});
  }
  std::printf(
      "\n('+' = the naive run was stopped at the pair-count cap.)\n"
      "Paper check: without condition-(4) pruning the stored-pair count\n"
      "explodes combinatorially with trace length, while the Pareto\n"
      "frontier stays compact -- this is what makes hundred-thousand-\n"
      "contact traces analyzable (§4.4).\n");
  std::printf("[csv] wrote %s\n", bench::csv_path("ablation_pruning").c_str());
  return 0;
}
