# Empty dependencies file for example_contact_removal_study.
# This may be replaced when dependencies are built.
