# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_contact_removal_study.
