file(REMOVE_RECURSE
  "CMakeFiles/example_contact_removal_study.dir/contact_removal_study.cpp.o"
  "CMakeFiles/example_contact_removal_study.dir/contact_removal_study.cpp.o.d"
  "example_contact_removal_study"
  "example_contact_removal_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_contact_removal_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
