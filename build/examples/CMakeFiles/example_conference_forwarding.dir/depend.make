# Empty dependencies file for example_conference_forwarding.
# This may be replaced when dependencies are built.
