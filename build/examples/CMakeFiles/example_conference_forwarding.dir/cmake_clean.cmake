file(REMOVE_RECURSE
  "CMakeFiles/example_conference_forwarding.dir/conference_forwarding.cpp.o"
  "CMakeFiles/example_conference_forwarding.dir/conference_forwarding.cpp.o.d"
  "example_conference_forwarding"
  "example_conference_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_conference_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
