file(REMOVE_RECURSE
  "CMakeFiles/example_local_forwarding.dir/local_forwarding.cpp.o"
  "CMakeFiles/example_local_forwarding.dir/local_forwarding.cpp.o.d"
  "example_local_forwarding"
  "example_local_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_local_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
