# Empty dependencies file for example_local_forwarding.
# This may be replaced when dependencies are built.
