file(REMOVE_RECURSE
  "CMakeFiles/example_trace_analysis.dir/trace_analysis.cpp.o"
  "CMakeFiles/example_trace_analysis.dir/trace_analysis.cpp.o.d"
  "example_trace_analysis"
  "example_trace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
