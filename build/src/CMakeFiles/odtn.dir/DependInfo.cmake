
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/args.cpp" "src/CMakeFiles/odtn.dir/cli/args.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/cli/args.cpp.o.d"
  "/root/repo/src/cli/commands.cpp" "src/CMakeFiles/odtn.dir/cli/commands.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/cli/commands.cpp.o.d"
  "/root/repo/src/core/contact.cpp" "src/CMakeFiles/odtn.dir/core/contact.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/core/contact.cpp.o.d"
  "/root/repo/src/core/delivery_function.cpp" "src/CMakeFiles/odtn.dir/core/delivery_function.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/core/delivery_function.cpp.o.d"
  "/root/repo/src/core/diameter.cpp" "src/CMakeFiles/odtn.dir/core/diameter.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/core/diameter.cpp.o.d"
  "/root/repo/src/core/journeys.cpp" "src/CMakeFiles/odtn.dir/core/journeys.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/core/journeys.cpp.o.d"
  "/root/repo/src/core/optimal_paths.cpp" "src/CMakeFiles/odtn.dir/core/optimal_paths.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/core/optimal_paths.cpp.o.d"
  "/root/repo/src/core/path_enumeration.cpp" "src/CMakeFiles/odtn.dir/core/path_enumeration.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/core/path_enumeration.cpp.o.d"
  "/root/repo/src/core/path_pair.cpp" "src/CMakeFiles/odtn.dir/core/path_pair.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/core/path_pair.cpp.o.d"
  "/root/repo/src/core/reachability.cpp" "src/CMakeFiles/odtn.dir/core/reachability.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/core/reachability.cpp.o.d"
  "/root/repo/src/core/temporal_graph.cpp" "src/CMakeFiles/odtn.dir/core/temporal_graph.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/core/temporal_graph.cpp.o.d"
  "/root/repo/src/random/contact_process.cpp" "src/CMakeFiles/odtn.dir/random/contact_process.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/random/contact_process.cpp.o.d"
  "/root/repo/src/random/phase_transition.cpp" "src/CMakeFiles/odtn.dir/random/phase_transition.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/random/phase_transition.cpp.o.d"
  "/root/repo/src/random/random_temporal_network.cpp" "src/CMakeFiles/odtn.dir/random/random_temporal_network.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/random/random_temporal_network.cpp.o.d"
  "/root/repo/src/random/slot_flooding.cpp" "src/CMakeFiles/odtn.dir/random/slot_flooding.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/random/slot_flooding.cpp.o.d"
  "/root/repo/src/random/theory.cpp" "src/CMakeFiles/odtn.dir/random/theory.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/random/theory.cpp.o.d"
  "/root/repo/src/sim/flooding.cpp" "src/CMakeFiles/odtn.dir/sim/flooding.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/sim/flooding.cpp.o.d"
  "/root/repo/src/sim/forwarding.cpp" "src/CMakeFiles/odtn.dir/sim/forwarding.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/sim/forwarding.cpp.o.d"
  "/root/repo/src/sim/local_forwarding.cpp" "src/CMakeFiles/odtn.dir/sim/local_forwarding.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/sim/local_forwarding.cpp.o.d"
  "/root/repo/src/sim/profile_baseline.cpp" "src/CMakeFiles/odtn.dir/sim/profile_baseline.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/sim/profile_baseline.cpp.o.d"
  "/root/repo/src/stats/empirical.cpp" "src/CMakeFiles/odtn.dir/stats/empirical.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/stats/empirical.cpp.o.d"
  "/root/repo/src/stats/log_grid.cpp" "src/CMakeFiles/odtn.dir/stats/log_grid.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/stats/log_grid.cpp.o.d"
  "/root/repo/src/stats/measure_cdf.cpp" "src/CMakeFiles/odtn.dir/stats/measure_cdf.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/stats/measure_cdf.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/odtn.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/stats/summary.cpp.o.d"
  "/root/repo/src/trace/datasets.cpp" "src/CMakeFiles/odtn.dir/trace/datasets.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/trace/datasets.cpp.o.d"
  "/root/repo/src/trace/generators.cpp" "src/CMakeFiles/odtn.dir/trace/generators.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/trace/generators.cpp.o.d"
  "/root/repo/src/trace/imports.cpp" "src/CMakeFiles/odtn.dir/trace/imports.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/trace/imports.cpp.o.d"
  "/root/repo/src/trace/intercontact.cpp" "src/CMakeFiles/odtn.dir/trace/intercontact.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/trace/intercontact.cpp.o.d"
  "/root/repo/src/trace/mobility_model.cpp" "src/CMakeFiles/odtn.dir/trace/mobility_model.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/trace/mobility_model.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/odtn.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/trace/trace_io.cpp.o.d"
  "/root/repo/src/trace/transforms.cpp" "src/CMakeFiles/odtn.dir/trace/transforms.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/trace/transforms.cpp.o.d"
  "/root/repo/src/trace/wlan_generator.cpp" "src/CMakeFiles/odtn.dir/trace/wlan_generator.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/trace/wlan_generator.cpp.o.d"
  "/root/repo/src/util/ascii_plot.cpp" "src/CMakeFiles/odtn.dir/util/ascii_plot.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/util/ascii_plot.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/odtn.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/mc_harness.cpp" "src/CMakeFiles/odtn.dir/util/mc_harness.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/util/mc_harness.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/odtn.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/samplers.cpp" "src/CMakeFiles/odtn.dir/util/samplers.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/util/samplers.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/odtn.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/util/time_format.cpp" "src/CMakeFiles/odtn.dir/util/time_format.cpp.o" "gcc" "src/CMakeFiles/odtn.dir/util/time_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
