file(REMOVE_RECURSE
  "libodtn.a"
)
