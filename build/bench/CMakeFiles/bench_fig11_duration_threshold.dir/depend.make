# Empty dependencies file for bench_fig11_duration_threshold.
# This may be replaced when dependencies are built.
