file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_duration_threshold.dir/bench_fig11_duration_threshold.cpp.o"
  "CMakeFiles/bench_fig11_duration_threshold.dir/bench_fig11_duration_threshold.cpp.o.d"
  "bench_fig11_duration_threshold"
  "bench_fig11_duration_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_duration_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
