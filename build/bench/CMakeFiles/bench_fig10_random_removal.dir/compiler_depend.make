# Empty compiler generated dependencies file for bench_fig10_random_removal.
# This may be replaced when dependencies are built.
