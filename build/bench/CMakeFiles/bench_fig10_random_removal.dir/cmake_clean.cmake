file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_random_removal.dir/bench_fig10_random_removal.cpp.o"
  "CMakeFiles/bench_fig10_random_removal.dir/bench_fig10_random_removal.cpp.o.d"
  "bench_fig10_random_removal"
  "bench_fig10_random_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_random_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
