file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_phase_long.dir/bench_fig02_phase_long.cpp.o"
  "CMakeFiles/bench_fig02_phase_long.dir/bench_fig02_phase_long.cpp.o.d"
  "bench_fig02_phase_long"
  "bench_fig02_phase_long.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_phase_long.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
