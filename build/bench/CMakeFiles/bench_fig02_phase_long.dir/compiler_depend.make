# Empty compiler generated dependencies file for bench_fig02_phase_long.
# This may be replaced when dependencies are built.
