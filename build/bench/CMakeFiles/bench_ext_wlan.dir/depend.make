# Empty dependencies file for bench_ext_wlan.
# This may be replaced when dependencies are built.
