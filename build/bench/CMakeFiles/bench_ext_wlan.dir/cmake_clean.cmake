file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_wlan.dir/bench_ext_wlan.cpp.o"
  "CMakeFiles/bench_ext_wlan.dir/bench_ext_wlan.cpp.o.d"
  "bench_ext_wlan"
  "bench_ext_wlan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_wlan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
