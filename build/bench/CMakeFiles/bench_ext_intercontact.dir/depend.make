# Empty dependencies file for bench_ext_intercontact.
# This may be replaced when dependencies are built.
