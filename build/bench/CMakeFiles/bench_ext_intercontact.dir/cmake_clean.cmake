file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_intercontact.dir/bench_ext_intercontact.cpp.o"
  "CMakeFiles/bench_ext_intercontact.dir/bench_ext_intercontact.cpp.o.d"
  "bench_ext_intercontact"
  "bench_ext_intercontact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_intercontact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
