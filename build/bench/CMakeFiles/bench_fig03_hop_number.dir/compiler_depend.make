# Empty compiler generated dependencies file for bench_fig03_hop_number.
# This may be replaced when dependencies are built.
