# Empty compiler generated dependencies file for bench_fig12_diameter_vs_delay.
# This may be replaced when dependencies are built.
