file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_next_contact.dir/bench_fig06_next_contact.cpp.o"
  "CMakeFiles/bench_fig06_next_contact.dir/bench_fig06_next_contact.cpp.o.d"
  "bench_fig06_next_contact"
  "bench_fig06_next_contact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_next_contact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
