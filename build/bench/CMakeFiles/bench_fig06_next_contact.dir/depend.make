# Empty dependencies file for bench_fig06_next_contact.
# This may be replaced when dependencies are built.
