file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_delivery_function.dir/bench_fig08_delivery_function.cpp.o"
  "CMakeFiles/bench_fig08_delivery_function.dir/bench_fig08_delivery_function.cpp.o.d"
  "bench_fig08_delivery_function"
  "bench_fig08_delivery_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_delivery_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
