# Empty compiler generated dependencies file for bench_fig01_phase_short.
# This may be replaced when dependencies are built.
