file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_phase_short.dir/bench_fig01_phase_short.cpp.o"
  "CMakeFiles/bench_fig01_phase_short.dir/bench_fig01_phase_short.cpp.o.d"
  "bench_fig01_phase_short"
  "bench_fig01_phase_short.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_phase_short.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
