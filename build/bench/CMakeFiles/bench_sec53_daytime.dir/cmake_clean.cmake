file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_daytime.dir/bench_sec53_daytime.cpp.o"
  "CMakeFiles/bench_sec53_daytime.dir/bench_sec53_daytime.cpp.o.d"
  "bench_sec53_daytime"
  "bench_sec53_daytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_daytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
