file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma1_expected_paths.dir/bench_lemma1_expected_paths.cpp.o"
  "CMakeFiles/bench_lemma1_expected_paths.dir/bench_lemma1_expected_paths.cpp.o.d"
  "bench_lemma1_expected_paths"
  "bench_lemma1_expected_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma1_expected_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
