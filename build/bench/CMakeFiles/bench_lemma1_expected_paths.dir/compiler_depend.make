# Empty compiler generated dependencies file for bench_lemma1_expected_paths.
# This may be replaced when dependencies are built.
