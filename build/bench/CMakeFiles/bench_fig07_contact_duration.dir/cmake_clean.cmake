file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_contact_duration.dir/bench_fig07_contact_duration.cpp.o"
  "CMakeFiles/bench_fig07_contact_duration.dir/bench_fig07_contact_duration.cpp.o.d"
  "bench_fig07_contact_duration"
  "bench_fig07_contact_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_contact_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
