# Empty dependencies file for bench_fig07_contact_duration.
# This may be replaced when dependencies are built.
