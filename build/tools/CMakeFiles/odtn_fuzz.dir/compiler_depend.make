# Empty compiler generated dependencies file for odtn_fuzz.
# This may be replaced when dependencies are built.
