file(REMOVE_RECURSE
  "CMakeFiles/odtn_fuzz.dir/odtn_fuzz.cpp.o"
  "CMakeFiles/odtn_fuzz.dir/odtn_fuzz.cpp.o.d"
  "odtn_fuzz"
  "odtn_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odtn_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
