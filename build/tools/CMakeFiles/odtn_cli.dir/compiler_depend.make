# Empty compiler generated dependencies file for odtn_cli.
# This may be replaced when dependencies are built.
