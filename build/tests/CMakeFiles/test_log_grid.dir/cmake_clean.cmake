file(REMOVE_RECURSE
  "CMakeFiles/test_log_grid.dir/test_log_grid.cpp.o"
  "CMakeFiles/test_log_grid.dir/test_log_grid.cpp.o.d"
  "test_log_grid"
  "test_log_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
