file(REMOVE_RECURSE
  "CMakeFiles/test_contact_process.dir/test_contact_process.cpp.o"
  "CMakeFiles/test_contact_process.dir/test_contact_process.cpp.o.d"
  "test_contact_process"
  "test_contact_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contact_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
