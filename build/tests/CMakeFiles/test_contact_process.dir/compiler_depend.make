# Empty compiler generated dependencies file for test_contact_process.
# This may be replaced when dependencies are built.
