file(REMOVE_RECURSE
  "CMakeFiles/test_measure_cdf.dir/test_measure_cdf.cpp.o"
  "CMakeFiles/test_measure_cdf.dir/test_measure_cdf.cpp.o.d"
  "test_measure_cdf"
  "test_measure_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measure_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
