# Empty dependencies file for test_measure_cdf.
# This may be replaced when dependencies are built.
