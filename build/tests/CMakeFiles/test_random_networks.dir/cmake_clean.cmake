file(REMOVE_RECURSE
  "CMakeFiles/test_random_networks.dir/test_random_networks.cpp.o"
  "CMakeFiles/test_random_networks.dir/test_random_networks.cpp.o.d"
  "test_random_networks"
  "test_random_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
