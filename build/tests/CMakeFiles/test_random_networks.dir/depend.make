# Empty dependencies file for test_random_networks.
# This may be replaced when dependencies are built.
