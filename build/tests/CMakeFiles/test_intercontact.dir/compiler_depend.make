# Empty compiler generated dependencies file for test_intercontact.
# This may be replaced when dependencies are built.
