file(REMOVE_RECURSE
  "CMakeFiles/test_intercontact.dir/test_intercontact.cpp.o"
  "CMakeFiles/test_intercontact.dir/test_intercontact.cpp.o.d"
  "test_intercontact"
  "test_intercontact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intercontact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
