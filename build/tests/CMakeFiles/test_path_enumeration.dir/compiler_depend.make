# Empty compiler generated dependencies file for test_path_enumeration.
# This may be replaced when dependencies are built.
