file(REMOVE_RECURSE
  "CMakeFiles/test_path_enumeration.dir/test_path_enumeration.cpp.o"
  "CMakeFiles/test_path_enumeration.dir/test_path_enumeration.cpp.o.d"
  "test_path_enumeration"
  "test_path_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
