# Empty dependencies file for test_phase_transition.
# This may be replaced when dependencies are built.
