file(REMOVE_RECURSE
  "CMakeFiles/test_phase_transition.dir/test_phase_transition.cpp.o"
  "CMakeFiles/test_phase_transition.dir/test_phase_transition.cpp.o.d"
  "test_phase_transition"
  "test_phase_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
