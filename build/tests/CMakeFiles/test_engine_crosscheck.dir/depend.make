# Empty dependencies file for test_engine_crosscheck.
# This may be replaced when dependencies are built.
