file(REMOVE_RECURSE
  "CMakeFiles/test_engine_crosscheck.dir/test_engine_crosscheck.cpp.o"
  "CMakeFiles/test_engine_crosscheck.dir/test_engine_crosscheck.cpp.o.d"
  "test_engine_crosscheck"
  "test_engine_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
