# Empty compiler generated dependencies file for test_delivery_function.
# This may be replaced when dependencies are built.
