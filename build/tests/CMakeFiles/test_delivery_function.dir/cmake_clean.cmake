file(REMOVE_RECURSE
  "CMakeFiles/test_delivery_function.dir/test_delivery_function.cpp.o"
  "CMakeFiles/test_delivery_function.dir/test_delivery_function.cpp.o.d"
  "test_delivery_function"
  "test_delivery_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delivery_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
