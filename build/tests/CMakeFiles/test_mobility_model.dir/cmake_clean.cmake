file(REMOVE_RECURSE
  "CMakeFiles/test_mobility_model.dir/test_mobility_model.cpp.o"
  "CMakeFiles/test_mobility_model.dir/test_mobility_model.cpp.o.d"
  "test_mobility_model"
  "test_mobility_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobility_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
