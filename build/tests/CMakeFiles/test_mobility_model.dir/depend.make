# Empty dependencies file for test_mobility_model.
# This may be replaced when dependencies are built.
