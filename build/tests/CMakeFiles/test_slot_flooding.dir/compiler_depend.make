# Empty compiler generated dependencies file for test_slot_flooding.
# This may be replaced when dependencies are built.
