file(REMOVE_RECURSE
  "CMakeFiles/test_slot_flooding.dir/test_slot_flooding.cpp.o"
  "CMakeFiles/test_slot_flooding.dir/test_slot_flooding.cpp.o.d"
  "test_slot_flooding"
  "test_slot_flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slot_flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
