# Empty dependencies file for test_mc_harness.
# This may be replaced when dependencies are built.
