file(REMOVE_RECURSE
  "CMakeFiles/test_mc_harness.dir/test_mc_harness.cpp.o"
  "CMakeFiles/test_mc_harness.dir/test_mc_harness.cpp.o.d"
  "test_mc_harness"
  "test_mc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
