file(REMOVE_RECURSE
  "CMakeFiles/test_diameter.dir/test_diameter.cpp.o"
  "CMakeFiles/test_diameter.dir/test_diameter.cpp.o.d"
  "test_diameter"
  "test_diameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
