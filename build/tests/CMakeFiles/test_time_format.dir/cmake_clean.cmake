file(REMOVE_RECURSE
  "CMakeFiles/test_time_format.dir/test_time_format.cpp.o"
  "CMakeFiles/test_time_format.dir/test_time_format.cpp.o.d"
  "test_time_format"
  "test_time_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
