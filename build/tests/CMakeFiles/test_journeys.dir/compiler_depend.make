# Empty compiler generated dependencies file for test_journeys.
# This may be replaced when dependencies are built.
