file(REMOVE_RECURSE
  "CMakeFiles/test_journeys.dir/test_journeys.cpp.o"
  "CMakeFiles/test_journeys.dir/test_journeys.cpp.o.d"
  "test_journeys"
  "test_journeys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_journeys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
