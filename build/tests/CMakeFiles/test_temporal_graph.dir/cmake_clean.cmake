file(REMOVE_RECURSE
  "CMakeFiles/test_temporal_graph.dir/test_temporal_graph.cpp.o"
  "CMakeFiles/test_temporal_graph.dir/test_temporal_graph.cpp.o.d"
  "test_temporal_graph"
  "test_temporal_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_temporal_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
