file(REMOVE_RECURSE
  "CMakeFiles/test_contact.dir/test_contact.cpp.o"
  "CMakeFiles/test_contact.dir/test_contact.cpp.o.d"
  "test_contact"
  "test_contact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
