file(REMOVE_RECURSE
  "CMakeFiles/test_imports.dir/test_imports.cpp.o"
  "CMakeFiles/test_imports.dir/test_imports.cpp.o.d"
  "test_imports"
  "test_imports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
