# Empty dependencies file for test_imports.
# This may be replaced when dependencies are built.
