# Empty compiler generated dependencies file for test_wlan_generator.
# This may be replaced when dependencies are built.
