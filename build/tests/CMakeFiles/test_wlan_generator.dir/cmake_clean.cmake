file(REMOVE_RECURSE
  "CMakeFiles/test_wlan_generator.dir/test_wlan_generator.cpp.o"
  "CMakeFiles/test_wlan_generator.dir/test_wlan_generator.cpp.o.d"
  "test_wlan_generator"
  "test_wlan_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wlan_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
