file(REMOVE_RECURSE
  "CMakeFiles/test_optimal_paths.dir/test_optimal_paths.cpp.o"
  "CMakeFiles/test_optimal_paths.dir/test_optimal_paths.cpp.o.d"
  "test_optimal_paths"
  "test_optimal_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimal_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
