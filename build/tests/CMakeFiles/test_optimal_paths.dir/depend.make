# Empty dependencies file for test_optimal_paths.
# This may be replaced when dependencies are built.
