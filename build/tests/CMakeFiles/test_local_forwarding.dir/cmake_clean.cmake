file(REMOVE_RECURSE
  "CMakeFiles/test_local_forwarding.dir/test_local_forwarding.cpp.o"
  "CMakeFiles/test_local_forwarding.dir/test_local_forwarding.cpp.o.d"
  "test_local_forwarding"
  "test_local_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
