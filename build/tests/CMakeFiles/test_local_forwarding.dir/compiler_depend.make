# Empty compiler generated dependencies file for test_local_forwarding.
# This may be replaced when dependencies are built.
