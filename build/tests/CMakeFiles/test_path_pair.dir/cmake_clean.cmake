file(REMOVE_RECURSE
  "CMakeFiles/test_path_pair.dir/test_path_pair.cpp.o"
  "CMakeFiles/test_path_pair.dir/test_path_pair.cpp.o.d"
  "test_path_pair"
  "test_path_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
