# Empty compiler generated dependencies file for test_path_pair.
# This may be replaced when dependencies are built.
