// Slot-by-slot flooding on the discrete-time random temporal network,
// under either bandwidth assumption (§3.1.3). Slots are generated lazily
// so experiments can run "until the destination is reached" without
// materializing a whole graph sequence.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "random/random_temporal_network.hpp"
#include "util/rng.hpp"

namespace odtn {

/// Sentinel hop count for "not reached".
inline constexpr int kUnreached = std::numeric_limits<int>::max();

/// Tracks, for every node, the minimum number of hops over all paths
/// from the source that have completed by the current slot. Because
/// min-hops-so-far is non-increasing in time, a node is reachable within
/// (t slots, k hops) iff min_hops()[node] <= k after t steps.
class SlotFloodProcess {
 public:
  /// Flooding from `source` over an n-node network with per-pair
  /// per-slot contact probability lambda/n.
  SlotFloodProcess(std::size_t n, double lambda, ContactCase mode,
                   NodeId source, Rng rng);

  /// Simulates the next slot. Returns the number of edges drawn.
  std::size_t step();

  /// Advances one slot using the given edge set instead of sampling
  /// (deterministic; used by tests and custom experiments).
  void step_with_edges(
      const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Number of slots simulated so far.
  std::size_t slots() const noexcept { return slot_; }

  /// min_hops()[v]: minimum hop count over all source->v paths completed
  /// within the simulated slots (kUnreached if none).
  const std::vector<int>& min_hops() const noexcept { return min_hops_; }

  bool reached(NodeId v) const noexcept { return min_hops_[v] != kUnreached; }

 private:
  std::size_t n_;
  double p_;
  ContactCase mode_;
  std::size_t slot_ = 0;
  Rng rng_;
  std::vector<int> min_hops_;
};

}  // namespace odtn
