// Generalized pairwise contact processes (paper §3.4).
//
// The base model of §3.1 assumes Bernoulli/Poisson contacts: light-tailed
// exponential inter-contact times, homogeneous rates, stationarity. §3.4
// discusses three relaxations and predicts their effect:
//  * renewal processes with general finite-variance inter-contact laws
//    ("major impact on the delay of a path, but a relatively small impact
//    on hop-number"),
//  * heterogeneity (people meet according to habits/communities),
//  * non-stationarity (diurnal cycles).
// This module builds random temporal networks under all three
// relaxations; bench_ext_robustness quantifies the predictions.
#pragma once

#include <cstddef>

#include "core/temporal_graph.hpp"
#include "trace/mobility_model.hpp"
#include "util/rng.hpp"

namespace odtn {

/// Inter-contact law of a pair's renewal process. All laws are
/// parameterized to a common mean, so comparisons isolate the SHAPE of
/// the distribution (variance / tail) from the contact rate.
enum class InterContactLaw {
  kExponential,      ///< the paper's base model (CV = 1)
  kDeterministic,    ///< periodic contacts (CV = 0, e.g. bus schedules [8])
  kUniform,          ///< mild variability (CV ~ 0.58)
  kHyperExponential, ///< mixture of two exponentials, tunable CV > 1
  kBoundedPareto,    ///< heavy tail up to a cap (finite variance)
};

/// Configuration of the renewal law.
struct RenewalConfig {
  InterContactLaw law = InterContactLaw::kExponential;
  /// Desired coefficient of variation for kHyperExponential (must be
  /// > 1) and tail exponent for kBoundedPareto (must be > 0; the cap is
  /// mean * pareto_cap_factor).
  double hyper_cv = 3.0;
  double pareto_alpha = 1.5;
  double pareto_cap_factor = 100.0;
};

/// Human-readable law name.
const char* inter_contact_law_name(InterContactLaw law) noexcept;

/// Samples one inter-contact gap with the given mean. Requires mean > 0.
double sample_inter_contact(Rng& rng, const RenewalConfig& config,
                            double mean);

/// Exact coefficient of variation (stddev / mean) of the configured law.
double inter_contact_cv(const RenewalConfig& config);

/// Options for the generalized pairwise-process network.
struct ContactProcessOptions {
  RenewalConfig renewal;
  /// Lognormal sigma of per-node activity weights; pair (i, j) gets rate
  /// lambda/n * w_i * w_j with E[w] = 1. 0 = homogeneous (§3.1).
  double node_weight_sigma = 0.0;
  /// Optional diurnal/weekly modulation: contacts are thinned by
  /// profile(t)/max(profile). Null profile = stationary.
  const ActivityProfile* profile = nullptr;
  /// Renewal warm-up, in multiples of the mean inter-contact time, so
  /// the process is (approximately) stationary at t = 0 rather than
  /// synchronized across pairs.
  double warmup_means = 3.0;
};

/// Materializes the network over [0, duration]: every unordered pair
/// runs an independent renewal process of instantaneous contacts with
/// base rate lambda/n (so each node makes about lambda contacts per unit
/// time before thinning). Requires n >= 2, lambda > 0, duration >= 0.
TemporalGraph make_contact_process_graph(std::size_t n, double lambda,
                                         double duration,
                                         const ContactProcessOptions& options,
                                         Rng& rng);

}  // namespace odtn
