// Random temporal network generators (paper §3.1).
//
// Discrete-time model: a sequence of independent uniform random graphs
// G_t, each pair present with probability p = lambda/N (so each node
// makes about lambda contacts per slot). Continuous-time model: each
// pair meets at the instants of an independent Poisson process of rate
// lambda/N (instantaneous contacts).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/temporal_graph.hpp"
#include "util/rng.hpp"

namespace odtn {

/// Bandwidth assumption for paths in slotted models (§3.1.3).
enum class ContactCase {
  kShort,  ///< at most one hop per time slot
  kLong,   ///< any number of hops within one time slot
};

/// Number of unordered node pairs of an N-node set.
constexpr std::size_t num_pairs(std::size_t n) noexcept {
  return n * (n - 1) / 2;
}

/// Maps an index in [0, num_pairs(n)) to the unordered pair it encodes,
/// enumerating (0,1), (0,2), ..., (0,n-1), (1,2), ...
std::pair<NodeId, NodeId> decode_pair(std::size_t index, std::size_t n);

/// Inverse of decode_pair.
std::size_t encode_pair(NodeId u, NodeId v, std::size_t n);

/// Samples the edge set of one slot: every unordered pair independently
/// present with probability p. Uses geometric skip-sampling, so the cost
/// is proportional to the number of edges drawn, not N^2.
std::vector<std::pair<NodeId, NodeId>> sample_slot_edges(std::size_t n,
                                                         double p, Rng& rng);

/// Materializes `num_slots` slots of the discrete-time model as a
/// TemporalGraph. A slot-s edge becomes the contact [s, s + 0.5]: slots
/// never touch, so the continuous path machinery reproduces exactly the
/// LONG contact case (any number of hops inside one slot, none across).
TemporalGraph make_discrete_random_temporal_graph(std::size_t n,
                                                  double lambda,
                                                  std::size_t num_slots,
                                                  Rng& rng);

/// Materializes the continuous-time model over [0, duration]: for each
/// pair, contact instants form a Poisson process of rate lambda/n
/// (zero-duration contacts).
TemporalGraph make_continuous_random_temporal_graph(std::size_t n,
                                                    double lambda,
                                                    double duration,
                                                    Rng& rng);

}  // namespace odtn
