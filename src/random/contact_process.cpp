#include "random/contact_process.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "random/random_temporal_network.hpp"
#include "util/samplers.hpp"

namespace odtn {
namespace {

/// Balanced-means two-phase hyperexponential matching mean 1 and the
/// requested CV: phase probability p, rates 2p and 2(1-p).
double hyper_phase_probability(double cv) {
  assert(cv > 1.0);
  const double c2 = cv * cv;
  return 0.5 * (1.0 + std::sqrt((c2 - 1.0) / (c2 + 1.0)));
}

/// Raw moment E[X^k] of Pareto(alpha) truncated to [lo, hi].
double bounded_pareto_moment(double lo, double hi, double alpha, int k) {
  double a = alpha;
  // Nudge away from the removable singularities at alpha == k.
  if (std::abs(a - static_cast<double>(k)) < 1e-9) a += 1e-7;
  const double norm = 1.0 - std::pow(lo / hi, a);
  const double factor = a / (a - static_cast<double>(k));
  return std::pow(lo, a) / norm * factor *
         (std::pow(lo, static_cast<double>(k) - a) -
          std::pow(hi, static_cast<double>(k) - a));
}

/// Lower cutoff such that BoundedPareto(lo, cap_factor * mean, alpha)
/// has the requested mean. The mean is increasing in lo, so bisect.
double bounded_pareto_lower_cutoff(double mean, double alpha,
                                   double cap_factor) {
  const double hi = mean * cap_factor;
  double lo_min = mean * 1e-9, lo_max = mean;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo_min + lo_max);
    if (bounded_pareto_moment(mid, hi, alpha, 1) < mean) {
      lo_min = mid;
    } else {
      lo_max = mid;
    }
  }
  return 0.5 * (lo_min + lo_max);
}

}  // namespace

const char* inter_contact_law_name(InterContactLaw law) noexcept {
  switch (law) {
    case InterContactLaw::kExponential: return "exponential";
    case InterContactLaw::kDeterministic: return "deterministic";
    case InterContactLaw::kUniform: return "uniform";
    case InterContactLaw::kHyperExponential: return "hyper-exponential";
    case InterContactLaw::kBoundedPareto: return "bounded-pareto";
  }
  return "unknown";
}

double sample_inter_contact(Rng& rng, const RenewalConfig& config,
                            double mean) {
  if (!(mean > 0.0))
    throw std::invalid_argument("sample_inter_contact: mean must be > 0");
  switch (config.law) {
    case InterContactLaw::kExponential:
      return sample_exponential(rng, 1.0 / mean);
    case InterContactLaw::kDeterministic:
      return mean;
    case InterContactLaw::kUniform:
      return rng.uniform(0.0, 2.0 * mean);
    case InterContactLaw::kHyperExponential: {
      const double p = hyper_phase_probability(config.hyper_cv);
      const double rate =
          rng.bernoulli(p) ? 2.0 * p / mean : 2.0 * (1.0 - p) / mean;
      return sample_exponential(rng, rate);
    }
    case InterContactLaw::kBoundedPareto: {
      const double hi = mean * config.pareto_cap_factor;
      const double lo = bounded_pareto_lower_cutoff(mean, config.pareto_alpha,
                                                    config.pareto_cap_factor);
      return sample_bounded_pareto(rng, lo, hi, config.pareto_alpha);
    }
  }
  throw std::invalid_argument("sample_inter_contact: unknown law");
}

double inter_contact_cv(const RenewalConfig& config) {
  switch (config.law) {
    case InterContactLaw::kExponential:
      return 1.0;
    case InterContactLaw::kDeterministic:
      return 0.0;
    case InterContactLaw::kUniform:
      return 1.0 / std::sqrt(3.0);
    case InterContactLaw::kHyperExponential:
      return config.hyper_cv;
    case InterContactLaw::kBoundedPareto: {
      // Scale-free: compute with mean 1.
      const double lo = bounded_pareto_lower_cutoff(1.0, config.pareto_alpha,
                                                    config.pareto_cap_factor);
      const double hi = config.pareto_cap_factor;
      const double m2 = bounded_pareto_moment(lo, hi, config.pareto_alpha, 2);
      const double m1 = bounded_pareto_moment(lo, hi, config.pareto_alpha, 1);
      return std::sqrt(std::max(0.0, m2 - m1 * m1)) / m1;
    }
  }
  throw std::invalid_argument("inter_contact_cv: unknown law");
}

TemporalGraph make_contact_process_graph(std::size_t n, double lambda,
                                         double duration,
                                         const ContactProcessOptions& options,
                                         Rng& rng) {
  if (n < 2)
    throw std::invalid_argument("make_contact_process_graph: need >= 2 nodes");
  if (!(lambda > 0.0) || duration < 0.0)
    throw std::invalid_argument("make_contact_process_graph: bad parameters");

  std::vector<double> weight(n, 1.0);
  if (options.node_weight_sigma > 0.0) {
    const double sigma = options.node_weight_sigma;
    for (double& w : weight)
      w = sample_lognormal(rng, -0.5 * sigma * sigma, sigma);
  }

  const double profile_ceiling =
      options.profile != nullptr ? options.profile->max_value() : 1.0;

  std::vector<Contact> contacts;
  for (std::size_t idx = 0; idx < num_pairs(n); ++idx) {
    const auto [u, v] = decode_pair(idx, n);
    const double rate =
        lambda / static_cast<double>(n) * weight[u] * weight[v];
    if (!(rate > 0.0)) continue;
    const double mean = 1.0 / rate;
    // Warm up so pairs are desynchronized (approximate stationarity for
    // non-exponential laws; exact for exponential by memorylessness).
    // The uniformly-random fraction of the first gap is essential for
    // low-variance laws: with deterministic gaps a whole-gap warmup
    // would leave every pair phase-locked.
    double t = -options.warmup_means * mean;
    t += rng.next_double() * sample_inter_contact(rng, options.renewal, mean);
    while (t <= duration) {
      if (t >= 0.0) {
        const bool keep =
            options.profile == nullptr ||
            rng.next_double() * profile_ceiling <=
                options.profile->value_at(t);
        if (keep) contacts.push_back({u, v, t, t});
      }
      t += sample_inter_contact(rng, options.renewal, mean);
    }
  }
  return TemporalGraph(n, std::move(contacts));
}

}  // namespace odtn
