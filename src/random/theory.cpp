#include "random/theory.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double xlogx(double x) { return x <= 0.0 ? 0.0 : x * std::log(x); }

/// log of C(n, m) * p^m * (1-p)^(n-m).
double log_binomial_pmf(long n, long m, double p) {
  assert(0 <= m && m <= n);
  const double lp = std::log(p);
  const double lq = std::log1p(-p);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(m) + 1.0) -
         std::lgamma(static_cast<double>(n - m) + 1.0) +
         static_cast<double>(m) * lp + static_cast<double>(n - m) * lq;
}

/// log of P[Binomial(n, p) >= k], by log-sum-exp over the tail.
double log_binomial_tail(long n, long k, double p) {
  if (k <= 0) return 0.0;
  if (k > n || p <= 0.0) return -kInf;
  if (p >= 1.0) return 0.0;
  double max_term = -kInf;
  for (long m = k; m <= n; ++m)
    max_term = std::max(max_term, log_binomial_pmf(n, m, p));
  double sum = 0.0;
  for (long m = k; m <= n; ++m)
    sum += std::exp(log_binomial_pmf(n, m, p) - max_term);
  return max_term + std::log(sum);
}

/// ln[(N-2)(N-3)...(N-k)]: choices of k-1 distinct ordered relays.
double log_relay_combinations(std::size_t n, long k) {
  assert(k >= 1);
  if (k == 1) return 0.0;
  if (static_cast<std::size_t>(k) > n - 1) return -kInf;  // not enough relays
  double out = 0.0;
  for (long i = 2; i <= k; ++i)
    out += std::log(static_cast<double>(n) - static_cast<double>(i));
  return out;
}

void check_args(std::size_t n, long t, long k) {
  if (n < 2 || t < 1 || k < 1)
    throw std::invalid_argument("expected_paths: need N>=2, t>=1, k>=1");
}

}  // namespace

double entropy_h(double x) {
  if (x < 0.0 || x > 1.0) throw std::invalid_argument("entropy_h: x in [0,1]");
  return -xlogx(x) - xlogx(1.0 - x);
}

double entropy_g(double x) {
  if (x < 0.0) throw std::invalid_argument("entropy_g: x >= 0");
  return (1.0 + x) * std::log1p(x) - xlogx(x);
}

double rate_short(double gamma, double lambda) {
  return gamma * std::log(lambda) + entropy_h(gamma);
}

double rate_long(double gamma, double lambda) {
  return gamma * std::log(lambda) + entropy_g(gamma);
}

double max_rate_short(double lambda) { return std::log1p(lambda); }

double gamma_star_short(double lambda) { return lambda / (1.0 + lambda); }

double max_rate_long(double lambda) {
  return lambda < 1.0 ? -std::log1p(-lambda) : kInf;
}

double gamma_star_long(double lambda) {
  if (lambda >= 1.0)
    throw std::invalid_argument("gamma_star_long: requires lambda < 1");
  return lambda / (1.0 - lambda);
}

double delay_constant_short(double lambda) {
  return 1.0 / std::log1p(lambda);
}

double delay_constant_long(double lambda) {
  return lambda < 1.0 ? -1.0 / std::log1p(-lambda) : 0.0;
}

double hop_constant_short(double lambda) {
  return gamma_star_short(lambda) * delay_constant_short(lambda);
}

double hop_constant_long(double lambda) {
  if (lambda < 1.0) return gamma_star_long(lambda) * delay_constant_long(lambda);
  if (lambda == 1.0) return kInf;
  return 1.0 / std::log(lambda);
}

double log_expected_paths_short(std::size_t n, double lambda, long t, long k) {
  check_args(n, t, k);
  const double p = std::min(1.0, lambda / static_cast<double>(n));
  // Short contacts: one hop per slot; the waiting times concatenate into
  // a single Bernoulli stream, so success <=> >= k successes in t trials.
  return log_relay_combinations(n, k) + log_binomial_tail(t, k, p);
}

double log_expected_paths_long(std::size_t n, double lambda, long t, long k) {
  check_args(n, t, k);
  const double p = std::min(1.0, lambda / static_cast<double>(n));
  // Long contacts: hops may share a slot; total waiting is 1 + sum of k
  // geometric(>=0) variables <= t, i.e. >= k successes within t-1+k
  // concatenated trials.
  return log_relay_combinations(n, k) + log_binomial_tail(t - 1 + k, k, p);
}

double lemma1_exponent_short(double tau, double gamma, double lambda) {
  return tau * rate_short(gamma, lambda) - 1.0;
}

double lemma1_exponent_long(double tau, double gamma, double lambda) {
  return tau * rate_long(gamma, lambda) - 1.0;
}

}  // namespace odtn
