#include "random/phase_transition.hpp"

#include <algorithm>
#include <cmath>

#include "random/slot_flooding.hpp"

namespace odtn {

double estimate_path_probability(std::size_t n, double lambda, double tau,
                                 double gamma, ContactCase mode,
                                 std::size_t trials, Rng& rng) {
  const double log_n = std::log(static_cast<double>(n));
  const auto t_budget =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(tau * log_n)));
  const auto k_budget = std::max<long>(
      1, std::lround(gamma * static_cast<double>(t_budget)));

  std::size_t successes = 0;
  constexpr NodeId kSource = 0;
  constexpr NodeId kDestination = 1;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    SlotFloodProcess process(n, lambda, mode, kSource, rng.split());
    for (std::size_t s = 0; s < t_budget; ++s) {
      process.step();
      if (process.min_hops()[kDestination] <= k_budget) break;
    }
    if (process.min_hops()[kDestination] <= k_budget) ++successes;
  }
  return static_cast<double>(successes) / static_cast<double>(trials);
}

DelayOptimalStats measure_delay_optimal(std::size_t n, double lambda,
                                        ContactCase mode, std::size_t trials,
                                        std::size_t max_slots, Rng& rng) {
  const double log_n = std::log(static_cast<double>(n));
  DelayOptimalStats stats;
  constexpr NodeId kSource = 0;
  constexpr NodeId kDestination = 1;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    SlotFloodProcess process(n, lambda, mode, kSource, rng.split());
    while (!process.reached(kDestination) && process.slots() < max_slots)
      process.step();
    if (!process.reached(kDestination)) {
      ++stats.unreached;
      continue;
    }
    // min_hops at the first slot of arrival is the hop-number of the
    // delay-optimal path.
    stats.delay_over_log_n.add(static_cast<double>(process.slots()) / log_n);
    stats.hops_over_log_n.add(
        static_cast<double>(process.min_hops()[kDestination]) / log_n);
  }
  return stats;
}

}  // namespace odtn
