#include "random/phase_transition.hpp"

#include <algorithm>
#include <cmath>

#include "random/slot_flooding.hpp"

namespace odtn {
namespace {

constexpr NodeId kSource = 0;
constexpr NodeId kDestination = 1;

}  // namespace

PathProbeResult probe_path_probability(std::size_t n, double lambda,
                                       double tau, double gamma,
                                       ContactCase mode, std::size_t trials,
                                       const McOptions& options) {
  const double log_n = std::log(static_cast<double>(n));
  const auto t_budget =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(tau * log_n)));
  const auto k_budget = std::max<long>(
      1, std::lround(gamma * static_cast<double>(t_budget)));

  PathProbeResult result;
  result.outcomes = run_trials(
      trials, options,
      [&](std::size_t, Rng& rng) -> std::uint8_t {
        SlotFloodProcess process(n, lambda, mode, kSource, rng);
        for (std::size_t s = 0; s < t_budget; ++s) {
          process.step();
          if (process.min_hops()[kDestination] <= k_budget) break;
        }
        return process.min_hops()[kDestination] <= k_budget ? 1 : 0;
      },
      &result.mc);
  result.successes = fold_trials(
      result.outcomes, std::size_t{0},
      [](std::size_t& acc, std::uint8_t hit) { acc += hit; });
  result.probability = static_cast<double>(result.successes) /
                       static_cast<double>(trials);
  return result;
}

double estimate_path_probability(std::size_t n, double lambda, double tau,
                                 double gamma, ContactCase mode,
                                 std::size_t trials, std::uint64_t seed,
                                 unsigned num_threads) {
  return probe_path_probability(n, lambda, tau, gamma, mode, trials,
                                {seed, num_threads})
      .probability;
}

DelayOptimalStats measure_delay_optimal(std::size_t n, double lambda,
                                        ContactCase mode, std::size_t trials,
                                        std::size_t max_slots,
                                        const McOptions& options) {
  const double log_n = std::log(static_cast<double>(n));
  DelayOptimalStats stats;
  stats.trials = run_trials(
      trials, options,
      [&](std::size_t, Rng& rng) -> DelayOptimalTrial {
        SlotFloodProcess process(n, lambda, mode, kSource, rng);
        while (!process.reached(kDestination) && process.slots() < max_slots)
          process.step();
        DelayOptimalTrial trial;
        if (!process.reached(kDestination)) return trial;
        trial.reached = true;
        // min_hops at the first slot of arrival is the hop-number of the
        // delay-optimal path.
        trial.delay_over_log_n =
            static_cast<double>(process.slots()) / log_n;
        trial.hops_over_log_n =
            static_cast<double>(process.min_hops()[kDestination]) / log_n;
        return trial;
      },
      &stats.mc);
  // Welford updates applied in trial order: the summaries are
  // bit-identical for every thread count.
  for (const DelayOptimalTrial& trial : stats.trials) {
    if (!trial.reached) {
      ++stats.unreached;
      continue;
    }
    stats.delay_over_log_n.add(trial.delay_over_log_n);
    stats.hops_over_log_n.add(trial.hops_over_log_n);
  }
  return stats;
}

}  // namespace odtn
