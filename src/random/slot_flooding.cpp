#include "random/slot_flooding.hpp"

#include <algorithm>
#include <stdexcept>

namespace odtn {

SlotFloodProcess::SlotFloodProcess(std::size_t n, double lambda,
                                   ContactCase mode, NodeId source, Rng rng)
    : n_(n),
      p_(lambda / static_cast<double>(n)),
      mode_(mode),
      rng_(rng),
      min_hops_(n, kUnreached) {
  if (n < 2) throw std::invalid_argument("SlotFloodProcess: need >= 2 nodes");
  if (source >= n) throw std::out_of_range("SlotFloodProcess: bad source");
  min_hops_[source] = 0;
}

std::size_t SlotFloodProcess::step() {
  const auto edges = sample_slot_edges(n_, p_, rng_);
  step_with_edges(edges);
  return edges.size();
}

void SlotFloodProcess::step_with_edges(
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  ++slot_;
  if (mode_ == ContactCase::kShort) {
    // One hop per slot: relax every edge once against the pre-slot state.
    std::vector<std::pair<NodeId, int>> updates;
    for (const auto& [u, v] : edges) {
      if (min_hops_[u] != kUnreached)
        updates.emplace_back(v, min_hops_[u] + 1);
      if (min_hops_[v] != kUnreached)
        updates.emplace_back(u, min_hops_[v] + 1);
    }
    for (const auto& [node, hops] : updates)
      min_hops_[node] = std::min(min_hops_[node], hops);
  } else {
    // Any number of hops inside the slot: close transitively over this
    // slot's edges.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [u, v] : edges) {
        if (min_hops_[u] != kUnreached && min_hops_[u] + 1 < min_hops_[v]) {
          min_hops_[v] = min_hops_[u] + 1;
          changed = true;
        }
        if (min_hops_[v] != kUnreached && min_hops_[v] + 1 < min_hops_[u]) {
          min_hops_[u] = min_hops_[v] + 1;
          changed = true;
        }
      }
    }
  }
}

}  // namespace odtn
