// Closed-form analysis of random temporal networks (paper §3).
//
// In the discrete-time model, every node pair is connected during each
// time slot independently with probability p = lambda/N. Paths are
// constrained to t_N = tau*ln(N) slots and k_N = gamma*t_N hops. Lemma 1
// gives the expected number of such paths:
//   E[Pi_N] = Theta( N^{ tau*(gamma*ln(lambda) + h(gamma)) - 1 } )  (short)
//   E[Pi_N] = Theta( N^{ tau*(gamma*ln(lambda) + g(gamma)) - 1 } )  (long)
// so the phase boundary is 1/tau = gamma*ln(lambda) + h(gamma) (resp. g).
// This header provides h, g, the boundary curves of Figures 1-2, the
// critical constants behind Figure 3, and *exact* (non-asymptotic)
// expected path counts used to validate the Theta asymptotics.
#pragma once

#include <cstddef>

namespace odtn {

/// Binary entropy h(x) = -x*ln(x) - (1-x)*ln(1-x), x in [0, 1]
/// (0 at both endpoints by continuity).
double entropy_h(double x);

/// g(x) = (1+x)*ln(1+x) - x*ln(x), x >= 0 (g(0) = 0 by continuity).
double entropy_g(double x);

/// Phase-boundary curve of Figure 1: gamma*ln(lambda) + h(gamma),
/// gamma in [0, 1].
double rate_short(double gamma, double lambda);

/// Phase-boundary curve of Figure 2: gamma*ln(lambda) + g(gamma),
/// gamma >= 0.
double rate_long(double gamma, double lambda);

/// Maximum of rate_short over gamma: ln(1 + lambda).
double max_rate_short(double lambda);

/// argmax of rate_short: gamma* = lambda / (1 + lambda).
double gamma_star_short(double lambda);

/// Maximum of rate_long over gamma: -ln(1 - lambda) for lambda < 1,
/// +infinity for lambda >= 1 (the curve is increasing and unbounded).
double max_rate_long(double lambda);

/// argmax of rate_long for lambda < 1: gamma* = lambda / (1 - lambda).
double gamma_star_long(double lambda);

/// Predicted delay of the delay-optimal path, normalized by ln(N):
/// tau* = 1 / ln(1 + lambda) (short contacts).
double delay_constant_short(double lambda);

/// tau* = -1 / ln(1 - lambda) for lambda < 1; 0 for lambda >= 1
/// (long contacts: an almost-simultaneous giant component exists).
double delay_constant_long(double lambda);

/// Predicted hop-number of the delay-optimal path, normalized by ln(N)
/// (the short-contact curve of Figure 3):
/// k*/ln(N) = lambda / ((1 + lambda) * ln(1 + lambda)); tends to 1 as
/// lambda -> 0.
double hop_constant_short(double lambda);

/// Long-contact curve of Figure 3:
/// lambda < 1: lambda / ((1 - lambda) * (-ln(1 - lambda)));
/// lambda > 1: 1 / ln(lambda); +infinity at lambda == 1 (singularity).
double hop_constant_long(double lambda);

/// Natural log of the EXACT expected number of k-hop paths delivered
/// within t slots between two fixed nodes of the discrete-time model
/// with N nodes and per-pair per-slot probability p = lambda/N, with
/// distinct intermediate relays:
///   ln[ (N-2)(N-3)...(N-k) * P(success) ]
/// where P(success) = P[Binomial(t, p) >= k] for short contacts and
/// P[Binomial(t - 1 + k, p) >= k] for long contacts (hops may share a
/// slot). Returns -infinity when the count is zero (k > feasible).
/// Requires N >= 2, k >= 1, t >= 1.
double log_expected_paths_short(std::size_t n, double lambda, long t, long k);
double log_expected_paths_long(std::size_t n, double lambda, long t, long k);

/// The Theta exponent of Lemma 1: tau*(gamma*ln(lambda)+h_or_g(gamma)) - 1.
/// ln E[Pi_N] / ln N converges to this as N grows.
double lemma1_exponent_short(double tau, double gamma, double lambda);
double lemma1_exponent_long(double tau, double gamma, double lambda);

}  // namespace odtn
