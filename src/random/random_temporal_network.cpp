#include "random/random_temporal_network.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/samplers.hpp"

namespace odtn {

std::pair<NodeId, NodeId> decode_pair(std::size_t index, std::size_t n) {
  assert(index < num_pairs(n));
  // Row u holds pairs (u, u+1..n-1); solve the triangular prefix sum.
  const double nn = static_cast<double>(n);
  const double disc = (2.0 * nn - 1.0) * (2.0 * nn - 1.0) -
                      8.0 * static_cast<double>(index);
  auto u = static_cast<std::size_t>((2.0 * nn - 1.0 - std::sqrt(disc)) / 2.0);
  // Guard against floating-point rounding at row boundaries.
  auto row_start = [n](std::size_t r) { return r * (2 * n - r - 1) / 2; };
  while (u > 0 && row_start(u) > index) --u;
  while (row_start(u + 1) <= index) ++u;
  const std::size_t v = index - row_start(u) + u + 1;
  return {static_cast<NodeId>(u), static_cast<NodeId>(v)};
}

std::size_t encode_pair(NodeId u, NodeId v, std::size_t n) {
  assert(u != v && u < n && v < n);
  if (u > v) std::swap(u, v);
  const std::size_t uu = u;
  return uu * (2 * n - uu - 1) / 2 + (v - u - 1);
}

std::vector<std::pair<NodeId, NodeId>> sample_slot_edges(std::size_t n,
                                                         double p, Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  if (n < 2 || p <= 0.0) return edges;
  const std::size_t total = num_pairs(n);
  if (p >= 1.0) {
    edges.reserve(total);
    for (std::size_t i = 0; i < total; ++i) edges.push_back(decode_pair(i, n));
    return edges;
  }
  // Geometric skips between successive present pairs.
  std::size_t idx = sample_geometric_failures(rng, p);
  while (idx < total) {
    edges.push_back(decode_pair(idx, n));
    idx += 1 + sample_geometric_failures(rng, p);
  }
  return edges;
}

TemporalGraph make_discrete_random_temporal_graph(std::size_t n,
                                                  double lambda,
                                                  std::size_t num_slots,
                                                  Rng& rng) {
  if (n < 2) throw std::invalid_argument("need at least 2 nodes");
  const double p = lambda / static_cast<double>(n);
  std::vector<Contact> contacts;
  for (std::size_t s = 0; s < num_slots; ++s) {
    for (const auto& [u, v] : sample_slot_edges(n, p, rng)) {
      const double t = static_cast<double>(s);
      contacts.push_back({u, v, t, t + 0.5});
    }
  }
  return TemporalGraph(n, std::move(contacts));
}

TemporalGraph make_continuous_random_temporal_graph(std::size_t n,
                                                    double lambda,
                                                    double duration,
                                                    Rng& rng) {
  if (n < 2) throw std::invalid_argument("need at least 2 nodes");
  if (duration < 0.0) throw std::invalid_argument("negative duration");
  const double rate = lambda / static_cast<double>(n);
  std::vector<Contact> contacts;
  for (std::size_t i = 0; i < num_pairs(n); ++i) {
    const auto [u, v] = decode_pair(i, n);
    double t = sample_exponential(rng, rate);
    while (t <= duration) {
      contacts.push_back({u, v, t, t});
      t += sample_exponential(rng, rate);
    }
  }
  return TemporalGraph(n, std::move(contacts));
}

}  // namespace odtn
