// Monte-Carlo experiments on random temporal networks (§3.2-3.3).
//
// These drivers validate the paper's analysis empirically:
//  * probe_path_probability / estimate_path_probability: the probability
//    that a path obeying the logarithmic constraints (delay <= tau*ln N,
//    hops <= gamma*tau*ln N) exists -- exhibiting the phase transition
//    of Corollary 1.
//  * measure_delay_optimal: delay and hop-number of the delay-optimal
//    path, normalized by ln N -- the quantities behind Figure 3.
//
// All trials run through the deterministic parallel harness
// (util/mc_harness): trial i of a run draws from Rng::keyed(seed, i),
// so per-trial outcomes depend only on (seed, i) -- not on trial order,
// not on how many trials run, and not on the thread count -- and the
// merged statistics are bit-identical for every num_threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "random/random_temporal_network.hpp"
#include "stats/summary.hpp"
#include "util/mc_harness.hpp"

namespace odtn {

/// Full outcome of a path-probability probe.
struct PathProbeResult {
  /// outcomes[i] == 1 iff trial i found a constrained path. A run with
  /// more trials under the same seed reproduces this as a prefix.
  std::vector<std::uint8_t> outcomes;
  std::size_t successes = 0;
  double probability = 0.0;
  McStats mc;
};

/// Probability that a path from a fixed source to a fixed destination
/// exists within ceil(tau*ln n) slots and max(1, round(gamma * t))
/// hops, estimated over `trials` independent networks.
PathProbeResult probe_path_probability(std::size_t n, double lambda,
                                       double tau, double gamma,
                                       ContactCase mode, std::size_t trials,
                                       const McOptions& options);

/// Convenience wrapper returning only the success fraction.
double estimate_path_probability(std::size_t n, double lambda, double tau,
                                 double gamma, ContactCase mode,
                                 std::size_t trials, std::uint64_t seed,
                                 unsigned num_threads = 0);

/// Per-trial outcome of the delay-optimal measurement.
struct DelayOptimalTrial {
  bool reached = false;
  double delay_over_log_n = 0.0;  ///< arrival slot / ln(n); 0 if unreached
  double hops_over_log_n = 0.0;   ///< optimal-path hops / ln(n); 0 if unreached
};

/// Statistics of the delay-optimal source->destination path.
struct DelayOptimalStats {
  SummaryStats delay_over_log_n;  ///< arrival slot / ln(n)
  SummaryStats hops_over_log_n;   ///< hop count of the optimal path / ln(n)
  std::size_t unreached = 0;      ///< trials that hit the slot cap
  /// Per-trial outcomes in trial order (prefix-stable across runs with
  /// more trials under the same seed).
  std::vector<DelayOptimalTrial> trials;
  McStats mc;
};

/// Floods until the destination is first reached (or `max_slots` slots)
/// and records the arrival slot and the minimum hop count among paths
/// arriving at that earliest slot -- the hop-number of the delay-optimal
/// path.
DelayOptimalStats measure_delay_optimal(std::size_t n, double lambda,
                                        ContactCase mode, std::size_t trials,
                                        std::size_t max_slots,
                                        const McOptions& options);

}  // namespace odtn
