// Monte-Carlo experiments on random temporal networks (§3.2-3.3).
//
// These drivers validate the paper's analysis empirically:
//  * estimate_path_probability: the probability that a path obeying the
//    logarithmic constraints (delay <= tau*ln N, hops <= gamma*tau*ln N)
//    exists -- exhibiting the phase transition of Corollary 1.
//  * measure_delay_optimal: delay and hop-number of the delay-optimal
//    path, normalized by ln N -- the quantities behind Figure 3.
#pragma once

#include <cstddef>

#include "random/random_temporal_network.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace odtn {

/// Fraction of `trials` in which a path from a fixed source to a fixed
/// destination exists within ceil(tau*ln n) slots and
/// max(1, round(gamma * t)) hops.
double estimate_path_probability(std::size_t n, double lambda, double tau,
                                 double gamma, ContactCase mode,
                                 std::size_t trials, Rng& rng);

/// Statistics of the delay-optimal source->destination path.
struct DelayOptimalStats {
  SummaryStats delay_over_log_n;  ///< arrival slot / ln(n)
  SummaryStats hops_over_log_n;   ///< hop count of the optimal path / ln(n)
  std::size_t unreached = 0;      ///< trials that hit the slot cap
};

/// Floods until the destination is first reached (or `max_slots` slots)
/// and records the arrival slot and the minimum hop count among paths
/// arriving at that earliest slot -- the hop-number of the delay-optimal
/// path.
DelayOptimalStats measure_delay_optimal(std::size_t n, double lambda,
                                        ContactCase mode, std::size_t trials,
                                        std::size_t max_slots, Rng& rng);

}  // namespace odtn
