// Distributed forwarding with LOCAL information -- the paper's second
// open problem (§7): "this paper proves that short paths generally exist
// between any two nodes, but it does not indicate whether these paths
// can be found efficiently by a distributed algorithm using local
// information in the nodes."
//
// This module simulates single-copy forwarding where the current
// message holder decides, at each encounter and using only its own and
// the peer's locally-observable history, whether to hand the message
// over. Comparing the achieved delay against the delay-optimal path
// (the engine's del(t)) quantifies the "price of locality".
#pragma once

#include <cstdint>
#include <vector>

#include "core/temporal_graph.hpp"

namespace odtn {

/// Handoff rule used by the holder at each encounter.
enum class LocalRule {
  /// Hand to the destination only: the direct-delivery lower bound.
  kNone,
  /// Hand over with probability 1/2 at every encounter (oblivious walk).
  kRandomWalk,
  /// Hand over if the peer has logged more contacts so far (seek hubs).
  kMostActive,
  /// Hand over if the peer saw the destination more recently.
  kLastContactWithDestination,
  /// Hand over if the peer's contact frequency with the destination is
  /// higher (a PRoPHET-style delivery-predictability greedy).
  kFrequencyGreedy,
};

/// Human-readable rule name.
const char* local_rule_name(LocalRule rule) noexcept;

/// Outcome of forwarding one message with a local rule.
struct LocalForwardingOutcome {
  double delivery_time;  ///< +infinity when never delivered
  int handoffs;          ///< times the (single) copy changed hands
};

/// Simulates single-copy forwarding of a message created at `start_time`
/// at `source` for `destination`, sweeping contacts chronologically.
/// Node histories (contact counts, last-seen times, per-destination
/// frequencies) accumulate causally from the trace start, so early
/// messages act on little information -- as a real protocol would.
/// `hop_limit` bounds the number of handoffs (+ the final delivery).
LocalForwardingOutcome simulate_local_forwarding(
    const TemporalGraph& graph, NodeId source, NodeId destination,
    double start_time, LocalRule rule, int hop_limit = 64,
    std::uint64_t seed = 1);

}  // namespace odtn
