#include "sim/profile_baseline.hpp"

#include <algorithm>

#include "sim/flooding.hpp"

namespace odtn {

SampledProfiles profiles_by_flooding(const TemporalGraph& graph,
                                     NodeId source, int max_hops) {
  SampledProfiles out;
  out.times.reserve(2 * graph.num_contacts() + 1);
  out.times.push_back(graph.start_time());
  for (const Contact& c : graph.contacts()) {
    out.times.push_back(c.begin);
    out.times.push_back(c.end);
  }
  std::sort(out.times.begin(), out.times.end());
  out.times.erase(std::unique(out.times.begin(), out.times.end()),
                  out.times.end());

  out.arrival.assign(graph.num_nodes(),
                     std::vector<double>(out.times.size()));
  for (std::size_t i = 0; i < out.times.size(); ++i) {
    const FloodingResult fr = flood(graph, source, out.times[i], max_hops);
    for (NodeId v = 0; v < graph.num_nodes(); ++v)
      out.arrival[v][i] = fr.arrival_with_hops(v, max_hops);
  }
  return out;
}

}  // namespace odtn
