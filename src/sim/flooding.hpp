// Hop-limited earliest-arrival flooding from a single (source, start time).
//
// This is an *independent* implementation of optimal delivery (the quantity
// del(t0) of the paper) used as a correctness oracle for the Pareto-pair
// engine, and as the building block of the flooding-per-boundary baseline
// (sim/profile_baseline.hpp) that mirrors the comparator [8] cited in §4.4.
//
// It also records predecessor contacts, so an explicit delay-optimal
// contact sequence can be reconstructed and checked against Eq. (2).
#pragma once

#include <cstdint>
#include <vector>

#include "core/temporal_graph.hpp"

namespace odtn {

/// Result of flooding a message created at `start_time` at `source`.
struct FloodingResult {
  /// arrival[k][v]: earliest delivery time at v using at most k contacts,
  /// for k = 0..levels (arrival[0] is the start state). +infinity when
  /// unreachable within the budget.
  std::vector<std::vector<double>> arrival;

  /// parent[k][v]: index (into graph.contacts()) of the last contact of
  /// one optimal <=k-hop route to v, or -1 when v is unreached or the
  /// source. Arrival through fewer hops is inherited (parent copied).
  std::vector<std::vector<std::int64_t>> parent;

  /// Earliest arrival with at most `hops` contacts (clamped to the
  /// computed levels; the last level is the unbounded optimum).
  double arrival_with_hops(NodeId node, int hops) const;

  /// Unbounded earliest arrival (flooding optimum del(t0)).
  double best_arrival(NodeId node) const;

  /// Minimum number of contacts achieving best_arrival(node); -1 when
  /// unreachable. This is the hop-number of the delay-optimal path.
  int optimal_hops(NodeId node) const;

  /// Reconstructs one contact sequence (indices into graph.contacts())
  /// realizing arrival_with_hops(node, hops), in forwarding order.
  /// `graph` must be the graph passed to flood(). Returns an empty vector
  /// when the node is unreachable or is the source itself; throws
  /// std::logic_error when the parent/arrival tables are inconsistent
  /// (e.g. hand-built or corrupted results).
  std::vector<std::size_t> reconstruct(const TemporalGraph& graph,
                                       NodeId node, int hops) const;

  /// The source and start time this result was flooded from.
  NodeId source = kInvalidNode;
  double start_time = 0.0;
};

/// Floods from (source, start_time), expanding hop levels until arrivals
/// stop improving or `max_hops` levels were computed.
FloodingResult flood(const TemporalGraph& graph, NodeId source,
                     double start_time, int max_hops = 64);

}  // namespace odtn
