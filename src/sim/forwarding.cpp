#include "sim/forwarding.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct NodeState {
  double have = kInf;  // time the node acquired a copy
  int hops = -1;       // contacts on its acquisition route
  int tokens = 0;      // remaining spray budget
};

}  // namespace

const char* forwarding_policy_name(ForwardingPolicy policy) noexcept {
  switch (policy) {
    case ForwardingPolicy::kDirect: return "direct";
    case ForwardingPolicy::kTwoHopRelay: return "two-hop";
    case ForwardingPolicy::kEpidemic: return "epidemic";
    case ForwardingPolicy::kSprayAndWait: return "spray-and-wait";
  }
  return "unknown";
}

ForwardingOutcome simulate_forwarding(const TemporalGraph& graph,
                                      NodeId source, NodeId destination,
                                      double start_time,
                                      ForwardingPolicy policy,
                                      const ForwardingOptions& options) {
  if (source >= graph.num_nodes() || destination >= graph.num_nodes())
    throw std::out_of_range("simulate_forwarding: node out of range");

  std::vector<NodeState> state(graph.num_nodes());
  state[source].have = start_time;
  state[source].hops = 0;
  state[source].tokens = std::max(1, options.copy_budget);

  // Chronological sweeps to a fixpoint: overlapping contacts can chain
  // within the same interval, which a single pass would miss.
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 1024) {
    changed = false;
    for (const Contact& c : graph.contacts()) {
      auto try_transfer = [&](NodeId from, NodeId to) {
        NodeState& f = state[from];
        if (f.have > c.end) return;
        const double t = std::max(f.have, c.begin);

        bool eligible = false;
        switch (policy) {
          case ForwardingPolicy::kDirect:
            eligible = from == source && to == destination;
            break;
          case ForwardingPolicy::kTwoHopRelay:
            eligible = from == source || to == destination;
            break;
          case ForwardingPolicy::kEpidemic:
            eligible = f.hops < options.hop_ttl;
            break;
          case ForwardingPolicy::kSprayAndWait:
            // Spray phase while a node holds >= 2 tokens; any holder may
            // always deliver directly to the destination.
            eligible = f.tokens >= 2 || to == destination;
            break;
        }
        if (!eligible) return;

        NodeState& g = state[to];
        if (policy == ForwardingPolicy::kSprayAndWait) {
          // First infection wins; tokens are split once (binary spray).
          if (g.have != kInf) return;
          g.have = t;
          g.hops = f.hops + 1;
          if (to != destination) {
            const int give = f.tokens / 2;
            g.tokens = give;
            f.tokens -= give;
          }
          changed = true;
          return;
        }
        if (t < g.have || (t == g.have && f.hops + 1 < g.hops)) {
          g.have = t;
          g.hops = f.hops + 1;
          changed = true;
        }
      };
      try_transfer(c.u, c.v);
      if (!graph.directed()) try_transfer(c.v, c.u);
    }
  }

  ForwardingOutcome out{state[destination].have, state[destination].hops, 0};
  if (out.delivery_time == kInf) out.delivery_hops = -1;
  for (const NodeState& s : state)
    if (s.have != kInf) ++out.copies;
  return out;
}

}  // namespace odtn
