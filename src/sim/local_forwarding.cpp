#include "sim/local_forwarding.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Locally-observable per-node history, accumulated causally.
struct History {
  std::size_t contact_count = 0;
  double last_seen_destination = -kInf;
  std::size_t destination_contacts = 0;
};

}  // namespace

const char* local_rule_name(LocalRule rule) noexcept {
  switch (rule) {
    case LocalRule::kNone: return "direct (no relay)";
    case LocalRule::kRandomWalk: return "random walk";
    case LocalRule::kMostActive: return "most-active";
    case LocalRule::kLastContactWithDestination: return "last-contact";
    case LocalRule::kFrequencyGreedy: return "frequency-greedy";
  }
  return "unknown";
}

LocalForwardingOutcome simulate_local_forwarding(const TemporalGraph& graph,
                                                 NodeId source,
                                                 NodeId destination,
                                                 double start_time,
                                                 LocalRule rule, int hop_limit,
                                                 std::uint64_t seed) {
  if (source >= graph.num_nodes() || destination >= graph.num_nodes())
    throw std::out_of_range("simulate_local_forwarding: node out of range");
  if (source == destination) return {start_time, 0};

  Rng rng(seed);
  std::vector<History> history(graph.num_nodes());
  NodeId holder = source;
  double available = start_time;  // time the holder can next forward
  int handoffs = 0;

  for (const Contact& c : graph.contacts()) {
    // Update locally-observable state first: both parties log the
    // meeting (and learn of it) at its beginning.
    ++history[c.u].contact_count;
    ++history[c.v].contact_count;
    auto note_destination = [&](NodeId who) {
      history[who].last_seen_destination = c.begin;
      ++history[who].destination_contacts;
    };
    if (c.u == destination) note_destination(c.v);
    if (c.v == destination) note_destination(c.u);

    // Can the holder use this contact?
    if (c.u != holder && c.v != holder) continue;
    const NodeId peer = (c.u == holder) ? c.v : c.u;
    const double t = std::max(c.begin, available);
    if (t > c.end) continue;  // contact over before the holder had it

    if (peer == destination) return {t, handoffs + 1};

    if (handoffs + 1 >= hop_limit) continue;  // keep one hop for delivery
    bool hand_over = false;
    const History& mine = history[holder];
    const History& theirs = history[peer];
    switch (rule) {
      case LocalRule::kNone:
        break;
      case LocalRule::kRandomWalk:
        hand_over = rng.bernoulli(0.5);
        break;
      case LocalRule::kMostActive:
        hand_over = theirs.contact_count > mine.contact_count;
        break;
      case LocalRule::kLastContactWithDestination:
        hand_over =
            theirs.last_seen_destination > mine.last_seen_destination;
        break;
      case LocalRule::kFrequencyGreedy:
        hand_over = theirs.destination_contacts > mine.destination_contacts;
        break;
    }
    if (hand_over) {
      holder = peer;
      available = t;
      ++handoffs;
    }
  }
  return {kInf, handoffs};
}

}  // namespace odtn
