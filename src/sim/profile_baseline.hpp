// Flooding-per-boundary baseline for computing delivery profiles.
//
// Mirrors the independent algorithm the paper mentions in §4.4 (Zhang et
// al. [8]): create a probe "packet" at every contact boundary and simulate
// flooding for each one. The result is the optimal delivery time del(t0)
// sampled at every boundary t0 -- the complete set of values the delivery
// function takes, since del only changes at contact ends. It costs one
// full flooding pass per boundary, which is exactly the work the paper's
// concise (LD, EA) representation avoids; we use it as a correctness
// oracle in tests and as the baseline in the performance bench.
#pragma once

#include <vector>

#include "core/temporal_graph.hpp"

namespace odtn {

/// del(t) sampled at every contact boundary, from one source.
struct SampledProfiles {
  /// Sorted distinct sample times: trace start plus all contact begins
  /// and ends.
  std::vector<double> times;
  /// arrival[v][i] = optimal delivery time at node v of a message
  /// created at the source at times[i]; +infinity when unreachable.
  std::vector<std::vector<double>> arrival;
};

/// Floods from every boundary time with at most `max_hops` contacts.
SampledProfiles profiles_by_flooding(const TemporalGraph& graph,
                                     NodeId source, int max_hops = 64);

}  // namespace odtn
