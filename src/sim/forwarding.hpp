// Simple opportunistic forwarding algorithms.
//
// The paper's headline implication (§7): because the diameter is small,
// "messages can be discarded after a few number of hops without occurring
// more than a marginal performance cost". These simulators let examples
// and studies quantify that trade-off: delivery delay and copy cost of
// classic policies under hop TTLs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/temporal_graph.hpp"

namespace odtn {

/// Forwarding policy simulated by simulate_forwarding().
enum class ForwardingPolicy {
  kDirect,        ///< source waits for a direct contact with the destination
  kTwoHopRelay,   ///< source spreads to relays; relays deliver only to dst
  kEpidemic,      ///< every carrier infects every encounter (hop TTL applies)
  kSprayAndWait,  ///< binary spray of a fixed copy budget, then direct wait
};

struct ForwardingOptions {
  int hop_ttl = 64;    ///< maximum contacts per message copy (epidemic)
  int copy_budget = 8; ///< total logical copies (spray-and-wait)
};

/// Outcome of forwarding one message.
struct ForwardingOutcome {
  double delivery_time;  ///< +infinity if never delivered
  int delivery_hops;     ///< contacts on the delivering route; -1 if none
  int copies;            ///< number of nodes that ever carried the message
};

/// Simulates one message created at `start_time` at `source` addressed to
/// `destination`, sweeping contacts chronologically to a fixpoint.
ForwardingOutcome simulate_forwarding(const TemporalGraph& graph,
                                      NodeId source, NodeId destination,
                                      double start_time,
                                      ForwardingPolicy policy,
                                      const ForwardingOptions& options = {});

/// Human-readable policy name ("direct", "two-hop", ...).
const char* forwarding_policy_name(ForwardingPolicy policy) noexcept;

}  // namespace odtn
