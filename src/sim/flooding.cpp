#include "sim/flooding.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double FloodingResult::arrival_with_hops(NodeId node, int hops) const {
  assert(!arrival.empty());
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(hops, 0)),
                            arrival.size() - 1);
  return arrival[k][node];
}

double FloodingResult::best_arrival(NodeId node) const {
  return arrival.back()[node];
}

int FloodingResult::optimal_hops(NodeId node) const {
  const double best = best_arrival(node);
  if (best == kInf) return -1;
  for (std::size_t k = 0; k < arrival.size(); ++k) {
    if (arrival[k][node] <= best) return static_cast<int>(k);
  }
  return static_cast<int>(arrival.size()) - 1;  // unreachable in theory
}

std::vector<std::size_t> FloodingResult::reconstruct(
    const TemporalGraph& graph, NodeId node, int hops) const {
  const std::size_t k_max =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(hops, 0)),
                            arrival.size() - 1);
  if (arrival[k_max][node] == kInf || node == source) return {};
  std::vector<std::size_t> sequence;
  NodeId cur = node;
  std::size_t k = k_max;
  while (cur != source) {
    // Drop to the lowest level achieving the same arrival: the parent
    // stored there is the contact that actually created the value
    // (higher levels merely inherit it).
    while (k > 1 && arrival[k - 1][cur] <= arrival[k][cur]) --k;
    // A reached node must have a parent contact at the level that created
    // its arrival. A -1 here means the parent/arrival tables are mutually
    // inconsistent; silently casting it to std::size_t would index far
    // out of bounds in release builds, so fail loudly instead.
    if (k == 0 || parent[k][cur] < 0)
      throw std::logic_error(
          "FloodingResult::reconstruct: inconsistent parent data");
    const auto contact_idx = static_cast<std::size_t>(parent[k][cur]);
    if (contact_idx >= graph.contacts().size())
      throw std::logic_error(
          "FloodingResult::reconstruct: parent contact out of range");
    sequence.push_back(contact_idx);
    const Contact& c = graph.contacts()[contact_idx];
    cur = (c.v == cur) ? c.u : c.v;
    --k;
  }
  std::reverse(sequence.begin(), sequence.end());
  return sequence;
}

FloodingResult flood(const TemporalGraph& graph, NodeId source,
                     double start_time, int max_hops) {
  if (source >= graph.num_nodes())
    throw std::out_of_range("flood: source out of range");
  const std::size_t n = graph.num_nodes();
  FloodingResult result;
  result.source = source;
  result.start_time = start_time;
  result.arrival.emplace_back(n, kInf);
  result.parent.emplace_back(n, -1);
  result.arrival[0][source] = start_time;

  const auto& contacts = graph.contacts();
  for (int k = 1; k <= max_hops; ++k) {
    const auto& prev = result.arrival.back();
    std::vector<double> next = prev;
    std::vector<std::int64_t> next_parent = result.parent.back();
    bool changed = false;
    for (std::size_t idx = 0; idx < contacts.size(); ++idx) {
      const Contact& c = contacts[idx];
      auto relax = [&](NodeId from, NodeId to) {
        if (prev[from] > c.end) return;  // cannot use this contact
        const double t = std::max(prev[from], c.begin);
        if (t < next[to]) {
          next[to] = t;
          next_parent[to] = static_cast<std::int64_t>(idx);
          changed = true;
        }
      };
      relax(c.u, c.v);
      if (!graph.directed()) relax(c.v, c.u);
    }
    if (!changed) break;
    result.arrival.push_back(std::move(next));
    result.parent.push_back(std::move(next_parent));
  }
  return result;
}

}  // namespace odtn
