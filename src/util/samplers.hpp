// Distribution samplers used throughout the library.
//
// Kept as free functions over `Rng` (rather than stateful distribution
// objects) so call sites stay explicit about what randomness they consume.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace odtn {

/// Exponential with the given rate (mean 1/rate). Requires rate > 0.
double sample_exponential(Rng& rng, double rate);

/// Number of Bernoulli(p) trials up to and including the first success
/// (support {1, 2, ...}). Requires 0 < p <= 1.
std::uint64_t sample_geometric_trials(Rng& rng, double p);

/// Number of Bernoulli(p) failures before the first success
/// (support {0, 1, ...}). Requires 0 < p <= 1.
std::uint64_t sample_geometric_failures(Rng& rng, double p);

/// Pareto with scale xmin > 0 and shape alpha > 0 (support [xmin, inf)).
double sample_pareto(Rng& rng, double xmin, double alpha);

/// Pareto truncated to [lo, hi], 0 < lo < hi, shape alpha > 0.
double sample_bounded_pareto(Rng& rng, double lo, double hi, double alpha);

/// Standard normal via Box-Muller (one value per call).
double sample_normal(Rng& rng, double mean, double stddev);

/// Log-normal: exp(Normal(mu, sigma)).
double sample_lognormal(Rng& rng, double mu, double sigma);

/// Poisson counting variable with the given mean >= 0.
/// Uses inversion for small means and normal approximation above 256.
std::uint64_t sample_poisson(Rng& rng, double mean);

}  // namespace odtn
