// CarryLineReader: chunk-to-line adapter shared by every streaming text
// consumer (the trace tokenizer, the serve protocol loop, the live feed
// tail). Bytes arrive in arbitrary chunks; complete lines are handed to
// the callback as [begin, end) slices WITHOUT the terminator, and a
// partial line spanning chunk boundaries is carried in one buffer until
// its newline (or finish()) arrives. finish() flushes a final line that
// has no trailing newline -- the serve protocol and live ingestion both
// require that a feed ending mid-line still delivers that line as a
// complete record rather than dropping it.
#pragma once

#include <cstddef>
#include <cstring>
#include <string>

namespace odtn {

class CarryLineReader {
 public:
  /// Feeds one chunk; `line(begin, end)` fires once per completed line
  /// ('\n' stripped; a trailing '\r' is the consumer's business).
  template <typename Fn>
  void feed(const char* data, std::size_t n, Fn&& line) {
    const char* p = data;
    const char* const end = data + n;
    while (p != end) {
      const char* nl = static_cast<const char*>(
          std::memchr(p, '\n', static_cast<std::size_t>(end - p)));
      if (nl == nullptr) {
        carry_.append(p, end);
        break;
      }
      if (carry_.empty()) {
        line(p, nl);
      } else {
        carry_.append(p, nl);
        line(carry_.data(), carry_.data() + carry_.size());
        carry_.clear();
      }
      p = nl + 1;
    }
  }

  /// Flushes the carried partial line, if any, as a complete line.
  /// Returns true iff a line was delivered. Call at end of feed.
  template <typename Fn>
  bool finish(Fn&& line) {
    if (carry_.empty()) return false;
    line(carry_.data(), carry_.data() + carry_.size());
    carry_.clear();
    return true;
  }

  bool has_carry() const noexcept { return !carry_.empty(); }

 private:
  std::string carry_;
};

}  // namespace odtn
