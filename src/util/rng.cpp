#include "util/rng.hpp"

namespace odtn {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion guarantees the xoshiro state is never all-zero.
  for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() noexcept {
  return Rng(next_u64());
}

Rng Rng::keyed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Two chained splitmix64 finalizations: hash the seed, fold the
  // stream index into the hash, hash again. Both words get full
  // avalanche, so (s, i) and (s, i+1) are decorrelated -- unlike
  // Rng(seed + i), whose splitmix walks for nearby i overlap.
  std::uint64_t x = seed;
  const std::uint64_t seed_hash = splitmix64(x);
  std::uint64_t y = stream ^ seed_hash;
  return Rng(splitmix64(y));
}

}  // namespace odtn
