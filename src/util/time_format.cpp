#include "util/time_format.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace odtn {
namespace {

std::string format_value(double value, const char* unit) {
  char buf[64];
  if (std::abs(value - std::round(value)) < 1e-9) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, unit);
  }
  return buf;
}

}  // namespace

std::string format_duration(double seconds) {
  if (std::isnan(seconds)) return "nan";
  if (std::isinf(seconds)) return seconds > 0 ? "inf" : "-inf";
  if (seconds < 0) {
    std::string out = format_duration(-seconds);
    out.insert(out.begin(), '-');
    return out;
  }
  if (seconds < kMinute) return format_value(seconds, "s");
  if (seconds < kHour) return format_value(seconds / kMinute, "min");
  if (seconds < kDay) return format_value(seconds / kHour, "h");
  if (seconds < kWeek) return format_value(seconds / kDay, "d");
  return format_value(seconds / kWeek, "wk");
}

std::string format_timestamp(double seconds) {
  if (!std::isfinite(seconds)) return format_duration(seconds);
  const bool negative = seconds < 0;
  if (negative) seconds = -seconds;
  const auto total = static_cast<long long>(seconds);
  const long long day = total / static_cast<long long>(kDay);
  const long long rem = total % static_cast<long long>(kDay);
  const long long h = rem / 3600, m = (rem / 60) % 60, s = rem % 60;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%lld+%02lld:%02lld:%02lld",
                negative ? "-" : "", day, h, m, s);
  return buf;
}

}  // namespace odtn
