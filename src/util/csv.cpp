#include "util/csv.hpp"

#include <charconv>
#include <stdexcept>

namespace odtn {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  write_fields(fields);
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> copy;
  copy.reserve(fields.size());
  for (auto f : fields) copy.emplace_back(f);
  write_fields(copy);
}

void CsvWriter::write_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[64];
  for (double v : values) {
    // Shortest round-trip representation: result CSVs parse back to the
    // exact double (the trace writer already guarantees precision 17).
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    fields.emplace_back(buf, res.ptr);
  }
  write_fields(fields);
}

}  // namespace odtn
