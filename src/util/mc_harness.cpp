#include "util/mc_harness.hpp"

#include <algorithm>

namespace odtn {

double McStats::trials_per_second() const noexcept {
  if (wall_ms <= 0.0) return 0.0;
  return static_cast<double>(trials) / (wall_ms / 1e3);
}

double McStats::worker_utilization() const noexcept {
  if (trials_by_worker.empty() || trials == 0) return 0.0;
  const std::uint64_t busiest =
      *std::max_element(trials_by_worker.begin(), trials_by_worker.end());
  if (busiest == 0) return 0.0;
  const double mean = static_cast<double>(trials) /
                      static_cast<double>(trials_by_worker.size());
  return mean / static_cast<double>(busiest);
}

Rng make_trial_rng(std::uint64_t seed, std::uint64_t trial) noexcept {
  return Rng::keyed(seed, trial);
}

namespace detail {

void fill_mc_stats(McStats& stats, std::uint64_t trials, double wall_ms,
                   std::vector<std::uint64_t> trials_by_worker) {
  stats.trials = trials;
  stats.wall_ms = wall_ms;
  stats.workers = static_cast<unsigned>(trials_by_worker.size());
  stats.trials_by_worker = std::move(trials_by_worker);
}

}  // namespace detail
}  // namespace odtn
