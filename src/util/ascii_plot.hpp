// ASCII line plots for bench output.
//
// Every figure-reproduction bench prints its series both as numeric rows
// (and a CSV file) and as a small ASCII chart so the *shape* of the paper's
// figure is visible directly in the terminal.
#pragma once

#include <string>
#include <vector>

namespace odtn {

/// One named series of a plot; x and y must have equal length.
struct PlotSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Options controlling chart rendering.
struct PlotOptions {
  int width = 72;        ///< plot area width in characters
  int height = 18;       ///< plot area height in characters
  bool log_x = false;    ///< logarithmic x axis (x values must be > 0)
  std::string x_label;   ///< axis caption printed under the chart
  std::string y_label;   ///< caption printed above the chart
  bool x_as_duration = false;  ///< format x ticks via format_duration
  double y_min = 0.0;    ///< fixed y range when y_min < y_max
  double y_max = 0.0;
};

/// Renders the series into a multi-line string. Each series uses its own
/// glyph; a legend is appended. Non-finite points are skipped.
std::string render_ascii_plot(const std::vector<PlotSeries>& series,
                              const PlotOptions& options);

}  // namespace odtn
