// Time constants and human-readable duration formatting.
//
// All timestamps in the library are doubles in seconds; these helpers keep
// bench output and examples readable ("2 min", "6 hours", "1 week") in the
// same units the paper's figures use.
#pragma once

#include <string>

namespace odtn {

inline constexpr double kSecond = 1.0;
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 86400.0;
inline constexpr double kWeek = 7.0 * kDay;

/// Formats a duration in seconds as a short human-readable string, e.g.
/// "2 min", "1.5 hours", "3 days", "inf". Negative values are prefixed
/// with '-'.
std::string format_duration(double seconds);

/// Formats an absolute trace timestamp as "d+hh:mm:ss" (day index plus
/// time of day), e.g. "2+14:03:20".
std::string format_timestamp(double seconds);

}  // namespace odtn
