// Deterministic parallel Monte-Carlo harness.
//
// run_trials() fans independent trials out over the work-queue thread
// pool. Each trial draws from its own Rng derived from (seed,
// trial_index) by Rng::keyed -- NOT from a shared advancing stream and
// NOT from sequential split() calls -- so a trial's randomness depends
// only on its index and the run seed. Results are written into a
// vector indexed by trial and reduced serially in trial order, which
// makes every merged statistic (SummaryStats, success counters,
// EmpiricalDistribution fills) bit-identical regardless of thread
// count or scheduling, and makes any prefix of the trial range
// reproduce the same per-trial outcomes as a longer run.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace odtn {

/// Instrumentation for one run_trials call (the Monte-Carlo analogue of
/// EngineStats): how many trials ran, how fast, and how evenly the
/// dynamic hand-out spread them over the workers.
struct McStats {
  std::uint64_t trials = 0;  ///< trials executed
  double wall_ms = 0.0;      ///< wall-clock of the parallel region
  unsigned workers = 0;      ///< worker slots (including the caller)
  std::vector<std::uint64_t> trials_by_worker;  ///< per-worker counts

  /// Trials per second of wall-clock (0 when nothing was timed).
  double trials_per_second() const noexcept;

  /// Mean worker load over the busiest worker's load, in (0, 1]:
  /// 1.0 is a perfectly balanced hand-out, 1/workers is one worker
  /// doing everything.
  double worker_utilization() const noexcept;
};

/// Knobs shared by every harness entry point.
struct McOptions {
  std::uint64_t seed = 0;
  /// Worker threads for the trial fan-out. 0 = the process-wide shared
  /// pool (hardware concurrency).
  unsigned num_threads = 0;
};

/// Rng for trial `trial` of a run keyed by `seed` (see Rng::keyed).
Rng make_trial_rng(std::uint64_t seed, std::uint64_t trial) noexcept;

namespace detail {
void fill_mc_stats(McStats& stats, std::uint64_t trials, double wall_ms,
                   std::vector<std::uint64_t> trials_by_worker);
}  // namespace detail

/// Runs fn(trial_index, rng) for every trial in [0, n) with a keyed
/// per-trial Rng, in parallel over a pool, and returns the per-trial
/// results in trial order. The result type must be default-constructible.
/// Deterministic: the returned vector is identical for every
/// options.num_threads. The first exception thrown by fn is rethrown.
template <typename Fn>
auto run_trials(std::size_t n, const McOptions& options, Fn&& fn,
                McStats* stats = nullptr)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t, Rng&>> {
  using T = std::invoke_result_t<Fn&, std::size_t, Rng&>;
  std::optional<ThreadPool> local_pool;
  if (options.num_threads != 0) local_pool.emplace(options.num_threads);
  ThreadPool& pool = local_pool ? *local_pool : shared_thread_pool();

  std::vector<T> results(n);
  std::vector<std::uint64_t> by_worker(pool.num_workers(), 0);
  const auto t0 = std::chrono::steady_clock::now();
  pool.parallel_for(n, [&](std::size_t trial, unsigned worker) {
    Rng rng = make_trial_rng(options.seed, trial);
    results[trial] = fn(trial, rng);
    ++by_worker[worker];
  });
  if (stats) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    detail::fill_mc_stats(*stats, n, wall_ms, std::move(by_worker));
  }
  return results;
}

/// Serial trial-order reduction over run_trials output -- the merge
/// step every harness client should use so the accumulated statistics
/// are independent of how trials were scheduled.
template <typename T, typename Acc, typename Merge>
Acc fold_trials(const std::vector<T>& results, Acc acc, Merge&& merge) {
  for (const T& r : results) merge(acc, r);
  return acc;
}

}  // namespace odtn
