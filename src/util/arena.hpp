// PairArena: a bump (slab) allocator for (LD, EA) path-pair storage in
// structure-of-arrays form.
//
// The pooled propagation engine (EngineMode::kPooled) keeps EVERY pair of
// one SingleSourceEngine -- all per-node Pareto frontiers, plus their
// superseded versions -- in one arena: two contiguous double arrays
// (ld[] and ea[], optionally a third aux[] lane for per-pair metadata such
// as successor EAs in delta storage) addressed by (offset, length) spans.
// Allocation is a bump-pointer increment; superseded frontier versions are
// never freed individually (they stay addressable as pre-change snapshots
// until the next reset), and reset() recycles the full capacity for the
// next source, so the steady-state all-pairs loop performs zero heap
// allocations once the high-water capacity has been reached.
//
// Alignment contract: every lane base is 32-byte aligned and allocate()
// rounds the bump pointer up to a multiple of 4 doubles, so ld()+offset
// and ea()+offset of EVERY span start on a 32-byte boundary. The SIMD
// frontier kernels (util/simd.hpp) rely on this to process spans in
// whole 4-lane blocks; the padding pairs between spans are never
// addressed. truncate()/reset() only move the bump pointer backward to
// previously returned (hence aligned) offsets, so the guarantee survives
// recycle cycles -- gated by tests/test_arena.cpp.
//
// Growth moves the arrays, so raw pointers obtained via ld()/ea()/aux()
// are invalidated by allocate(); spans (offsets) stay valid forever.
// Callers re-fetch base pointers after every allocate().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace odtn {

/// A (offset, length) window into a PairArena's parallel arrays. Offsets
/// survive arena growth; 32-bit fields keep per-node span tables compact
/// (2^32 pairs = 64 GiB of ld+ea storage, far beyond any single-source
/// workspace).
struct PairSpan {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;

  bool empty() const noexcept { return length == 0; }
};

class PairArena {
 public:
  /// Lane bases and span starts are aligned to this many bytes.
  static constexpr std::size_t kLaneAlignment = 32;
  /// allocate() rounds offsets up to a multiple of this many pairs.
  static constexpr std::size_t kSpanAlignPairs =
      kLaneAlignment / sizeof(double);

  /// `with_aux` adds a third parallel double lane (aux()), grown and
  /// recycled in lockstep with ld/ea.
  explicit PairArena(bool with_aux = false) noexcept : with_aux_(with_aux) {}

  PairArena(const PairArena&) = delete;
  PairArena& operator=(const PairArena&) = delete;
  PairArena(PairArena&& other) noexcept { move_from(other); }
  PairArena& operator=(PairArena&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  ~PairArena() { release(); }

  /// Reserves `n` contiguous pairs and returns their offset (always a
  /// multiple of kSpanAlignPairs -- see the alignment contract above).
  /// Amortized O(1); grows geometrically when the slab is exhausted (the
  /// only code path that touches the heap).
  std::size_t allocate(std::size_t n) {
    size_ = (size_ + kSpanAlignPairs - 1) & ~(kSpanAlignPairs - 1);
    const std::size_t offset = size_;
    size_ += n;
    if (size_ > cap_) grow(size_);
    if (size_ > peak_pairs_) peak_pairs_ = size_;
    return offset;
  }

  /// Rolls the bump pointer back to `offset`, releasing every allocation
  /// made after it. Used to discard a speculative merge output when the
  /// batch turned out to be fully dominated. Capacity is unaffected.
  void truncate(std::size_t offset) noexcept { size_ = offset; }

  /// Releases every pair but keeps the capacity: the next source's run
  /// re-fills the same slabs without allocating.
  void reset() noexcept { size_ = 0; }

  /// Pairs currently allocated (the bump pointer), including alignment
  /// padding between spans.
  std::size_t size() const noexcept { return size_; }

  /// Pairs the slabs can hold before the next growth.
  std::size_t capacity() const noexcept { return cap_; }

  /// High-water mark of size() over the arena's lifetime.
  std::size_t peak_pairs() const noexcept { return peak_pairs_; }

  /// Bytes committed to the slabs (capacity across all lanes). Monotone.
  std::size_t capacity_bytes() const noexcept {
    return cap_ * sizeof(double) * (with_aux_ ? 3 : 2);
  }

  double* ld() noexcept { return ld_; }
  const double* ld() const noexcept { return ld_; }
  double* ea() noexcept { return ea_; }
  const double* ea() const noexcept { return ea_; }
  double* aux() noexcept { return aux_; }
  const double* aux() const noexcept { return aux_; }

 private:
  void grow(std::size_t needed);
  void release() noexcept;
  void move_from(PairArena& other) noexcept;

  double* ld_ = nullptr;
  double* ea_ = nullptr;
  double* aux_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_pairs_ = 0;
  bool with_aux_ = false;
};

/// Blocked per-(node, source-lane) span addressing for the batched
/// multi-source engine: one flat table holding, for every node, one
/// PairSpan per source lane of the block, lane-major
/// (`at(node, lane) == spans[lane * nodes + node]`). Lane-major order
/// keeps each lane's per-node state the same size and layout as the
/// per-source engine's span table, so one entry's walk (fixed lane,
/// varying target) touches an L1-sized slice instead of striding the
/// whole block. reset() recycles capacity like the arenas.
class BlockedSpanTable {
 public:
  void reset(std::size_t nodes, std::size_t lanes) {
    nodes_ = nodes;
    lanes_ = lanes;
    spans_.assign(nodes * lanes, PairSpan{});
  }

  PairSpan& at(std::size_t node, std::size_t lane) noexcept {
    return spans_[lane * nodes_ + node];
  }
  const PairSpan& at(std::size_t node, std::size_t lane) const noexcept {
    return spans_[lane * nodes_ + node];
  }

  std::size_t lanes() const noexcept { return lanes_; }

 private:
  std::vector<PairSpan> spans_;
  std::size_t nodes_ = 0;
  std::size_t lanes_ = 1;
};

}  // namespace odtn
