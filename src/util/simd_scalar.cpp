// Scalar reference table: the mandatory fallback every vector variant is
// differential-tested against. The prefix/suffix scans keep the pooled
// engine's original 8-wide memcmp block structure verbatim (moved here
// from core/diameter.cpp); the other primitives are the plain loops the
// kernels used inline before dispatch existed.

#include <cstring>

#include "util/simd.hpp"

namespace odtn::simd {

namespace {

std::size_t count_tail_ge_scalar(const double* v, std::size_t n,
                                 double bound) noexcept {
  std::size_t c = 0;
  while (c < n && v[n - 1 - c] >= bound) ++c;
  return c;
}

std::size_t count_tail_ge_stride2_scalar(const double* v, std::size_t n,
                                         double bound) noexcept {
  std::size_t c = 0;
  while (c < n && v[2 * (n - 1 - c)] >= bound) ++c;
  return c;
}

bool blocks_equal(const double* a, const double* b, std::size_t k) noexcept {
  return std::memcmp(a, b, k * sizeof(double)) == 0;
}

std::size_t equal_prefix2_scalar(const double* a0, const double* a1,
                                 const double* b0, const double* b1,
                                 std::size_t n) noexcept {
  // Bitwise-equal runs are found block-first (SIMD memcmp), then refined
  // per element under value equality, so a lone +0.0/-0.0 flip inside a
  // block does not end the prefix early.
  constexpr std::size_t kBlk = 8;
  std::size_t p = 0;
  while (p + kBlk <= n && blocks_equal(a0 + p, b0 + p, kBlk) &&
         blocks_equal(a1 + p, b1 + p, kBlk))
    p += kBlk;
  while (p < n && a0[p] == b0[p] && a1[p] == b1[p]) ++p;
  return p;
}

std::size_t equal_suffix2_scalar(const double* a0, const double* a1,
                                 std::size_t an, const double* b0,
                                 const double* b1, std::size_t bn,
                                 std::size_t max_n) noexcept {
  constexpr std::size_t kBlk = 8;
  std::size_t s = 0;
  while (s + kBlk <= max_n &&
         blocks_equal(a0 + an - s - kBlk, b0 + bn - s - kBlk, kBlk) &&
         blocks_equal(a1 + an - s - kBlk, b1 + bn - s - kBlk, kBlk))
    s += kBlk;
  while (s < max_n && a0[an - 1 - s] == b0[bn - 1 - s] &&
         a1[an - 1 - s] == b1[bn - 1 - s])
    ++s;
  return s;
}

void lower_bound4_scalar(const double* grid, std::size_t n,
                         const double* keys, std::uint32_t* out) noexcept {
  for (int k = 0; k < 4; ++k) {
    const double key = keys[k];
    std::size_t lo = 0, len = n;
    while (len > 0) {
      const std::size_t half = len / 2;
      if (grid[lo + half] < key) {
        lo += half + 1;
        len -= half + 1;
      } else {
        len = half;
      }
    }
    out[k] = static_cast<std::uint32_t>(lo);
  }
}

}  // namespace

extern const Ops kScalarOps;
const Ops kScalarOps = {
    count_tail_ge_scalar,    count_tail_ge_stride2_scalar,
    equal_prefix2_scalar,    equal_suffix2_scalar,
    lower_bound4_scalar,     "scalar",
};

}  // namespace odtn::simd
