// Deterministic pseudo-random number generation for odtn.
//
// All stochastic components of the library (random temporal networks,
// synthetic mobility traces, Monte-Carlo experiments, contact-removal
// transforms) draw from this generator so that every experiment in the
// repository is reproducible from a single 64-bit seed.
//
// The engine is xoshiro256++ seeded through splitmix64, the combination
// recommended by the xoshiro authors: it is small, fast, passes BigCrush,
// and -- unlike std::mt19937_64 -- has a trivially portable seeding story.
#pragma once

#include <array>
#include <cstdint>

namespace odtn {

/// Deterministic 64-bit PRNG (xoshiro256++), seeded via splitmix64.
///
/// The generator is a regular value type: copying it forks the stream,
/// `split()` derives a statistically independent child stream (useful for
/// giving each node / pair / trial its own stream without coupling the
/// consumption order of different components).
class Rng {
 public:
  /// Seeds the generator. Any 64-bit value (including 0) is a valid seed.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 bits of resolution.
  double next_double() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n >= 1. Unbiased (rejection).
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Derives an independent child stream; advances this stream once.
  /// Note the child depends on how often this stream was consumed
  /// before the call -- for order-independent streams use keyed().
  Rng split() noexcept;

  /// Derives the stream for index `stream` of a run keyed by `seed`.
  /// The result depends only on the (seed, stream) pair -- never on how
  /// many other streams were derived before it -- which is what makes
  /// parallel Monte-Carlo trials reproducible regardless of scheduling:
  /// trial i of seed s is the same stream on 1 thread or N.
  static Rng keyed(std::uint64_t seed, std::uint64_t stream) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace odtn
