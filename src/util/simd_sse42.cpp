// SSE4.2 primitive table (2-wide double lanes). Compiled with -msse4.2;
// entered only through the dispatch table after a CPUID check. Same
// no-over-read / exact-comparison guarantees as the AVX2 variants; the
// grid search counts below-key elements with 2-wide compare sweeps on
// small grids and falls back to branchless halving on large ones.

#include <immintrin.h>

#include <algorithm>

#include "util/simd.hpp"

namespace odtn::simd {

namespace {

std::size_t count_tail_ge_sse42(const double* v, std::size_t n,
                                double bound) noexcept {
  const __m128d b = _mm_set1_pd(bound);
  std::size_t c = 0;
  while (c + 2 <= n) {
    const __m128d x = _mm_loadu_pd(v + n - c - 2);
    const int m = _mm_movemask_pd(_mm_cmpge_pd(x, b));
    if (m != 0x3) return c + static_cast<std::size_t>((m >> 1) & 1);
    c += 2;
  }
  if (c < n && v[n - 1 - c] >= bound) ++c;
  return c;
}

std::size_t count_tail_ge_stride2_sse42(const double* v, std::size_t n,
                                        double bound) noexcept {
  const __m128d b = _mm_set1_pd(bound);
  std::size_t c = 0;
  while (c + 2 <= n) {
    // Elements k, k+1 live at v[2k], v[2k+2]; the last valid double of
    // the strided buffer is v[2n-2], so the pair is assembled from two
    // scalar loads instead of 16-byte loads that would read past it.
    const double* base = v + 2 * (n - c - 2);
    const __m128d ev = _mm_set_pd(base[2], base[0]);
    const int m = _mm_movemask_pd(_mm_cmpge_pd(ev, b));
    if (m != 0x3) return c + static_cast<std::size_t>((m >> 1) & 1);
    c += 2;
  }
  if (c < n && v[2 * (n - 1 - c)] >= bound) ++c;
  return c;
}

std::size_t equal_prefix2_sse42(const double* a0, const double* a1,
                                const double* b0, const double* b1,
                                std::size_t n) noexcept {
  std::size_t p = 0;
  while (p + 2 <= n) {
    const __m128d e0 =
        _mm_cmpeq_pd(_mm_loadu_pd(a0 + p), _mm_loadu_pd(b0 + p));
    const __m128d e1 =
        _mm_cmpeq_pd(_mm_loadu_pd(a1 + p), _mm_loadu_pd(b1 + p));
    const int m = _mm_movemask_pd(_mm_and_pd(e0, e1));
    if (m != 0x3) return p + static_cast<std::size_t>(m & 1);
    p += 2;
  }
  if (p < n && a0[p] == b0[p] && a1[p] == b1[p]) ++p;
  return p;
}

std::size_t equal_suffix2_sse42(const double* a0, const double* a1,
                                std::size_t an, const double* b0,
                                const double* b1, std::size_t bn,
                                std::size_t max_n) noexcept {
  std::size_t s = 0;
  while (s + 2 <= max_n) {
    const __m128d e0 = _mm_cmpeq_pd(_mm_loadu_pd(a0 + an - s - 2),
                                    _mm_loadu_pd(b0 + bn - s - 2));
    const __m128d e1 = _mm_cmpeq_pd(_mm_loadu_pd(a1 + an - s - 2),
                                    _mm_loadu_pd(b1 + bn - s - 2));
    const int m = _mm_movemask_pd(_mm_and_pd(e0, e1));
    if (m != 0x3) return s + static_cast<std::size_t>((m >> 1) & 1);
    s += 2;
  }
  if (s < max_n && a0[an - 1 - s] == b0[bn - 1 - s] &&
      a1[an - 1 - s] == b1[bn - 1 - s])
    ++s;
  return s;
}

void lower_bound4_sse42(const double* grid, std::size_t n, const double* keys,
                        std::uint32_t* out) noexcept {
  if (n <= 96) {
    // Small grids (the delay-CDF regime): the lower_bound index on an
    // ascending grid is the count of elements strictly below the key.
    // One sweep serves all four keys (each chunk loaded once, compared
    // against every key) and stops at the first chunk with nothing below
    // the largest key -- later elements cannot count for any key.
    const double kmax = std::max(std::max(keys[0], keys[1]),
                                 std::max(keys[2], keys[3]));
    const __m128d vmax = _mm_set1_pd(kmax);
    const __m128d k0 = _mm_set1_pd(keys[0]);
    const __m128d k1 = _mm_set1_pd(keys[1]);
    const __m128d k2 = _mm_set1_pd(keys[2]);
    const __m128d k3 = _mm_set1_pd(keys[3]);
    __m128i a0 = _mm_setzero_si128(), a1 = a0, a2 = a0, a3 = a0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m128d g = _mm_loadu_pd(grid + i);
      a0 = _mm_sub_epi64(a0, _mm_castpd_si128(_mm_cmplt_pd(g, k0)));
      a1 = _mm_sub_epi64(a1, _mm_castpd_si128(_mm_cmplt_pd(g, k1)));
      a2 = _mm_sub_epi64(a2, _mm_castpd_si128(_mm_cmplt_pd(g, k2)));
      a3 = _mm_sub_epi64(a3, _mm_castpd_si128(_mm_cmplt_pd(g, k3)));
      if (_mm_movemask_pd(_mm_cmplt_pd(g, vmax)) != 0x3) {
        i = n;  // chunk reached the largest key: later elements count 0
        break;
      }
    }
    alignas(16) long long l0[2], l1[2], l2[2], l3[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(l0), a0);
    _mm_store_si128(reinterpret_cast<__m128i*>(l1), a1);
    _mm_store_si128(reinterpret_cast<__m128i*>(l2), a2);
    _mm_store_si128(reinterpret_cast<__m128i*>(l3), a3);
    long long cnt[4] = {l0[0] + l0[1], l1[0] + l1[1], l2[0] + l2[1],
                        l3[0] + l3[1]};
    for (; i < n && grid[i] < kmax; ++i) {
      cnt[0] += grid[i] < keys[0];
      cnt[1] += grid[i] < keys[1];
      cnt[2] += grid[i] < keys[2];
      cnt[3] += grid[i] < keys[3];
    }
    out[0] = static_cast<std::uint32_t>(cnt[0]);
    out[1] = static_cast<std::uint32_t>(cnt[1]);
    out[2] = static_cast<std::uint32_t>(cnt[2]);
    out[3] = static_cast<std::uint32_t>(cnt[3]);
    return;
  }
  for (int k = 0; k < 4; ++k) {
    const double key = keys[k];
    std::size_t base = 0, len = n;
    while (len > 1) {
      const std::size_t half = len / 2;
      if (grid[base + half] < key) base += half;
      len -= half;
    }
    out[k] = static_cast<std::uint32_t>(base + (grid[base] < key ? 1 : 0));
  }
}

}  // namespace

extern const Ops kSse42Ops;
const Ops kSse42Ops = {
    count_tail_ge_sse42,    count_tail_ge_stride2_sse42,
    equal_prefix2_sse42,    equal_suffix2_sse42,
    lower_bound4_sse42,     "sse42",
};

}  // namespace odtn::simd
