// Runtime-dispatched SIMD primitives for the frontier-kernel layer.
//
// The pooled engine's hot loops (dominance pops in prune_candidate_batch,
// the compare loop of merge_frontier, the diff-trim prefix/suffix scan in
// the incremental delay-CDF path, and the grid searches of
// MeasureCdfAccumulator) all reduce to a handful of flat primitives over
// double lanes. This header exposes those primitives behind a function-
// pointer table selected ONCE at startup from CPUID (AVX2 > SSE4.2 >
// scalar), so the rest of the codebase stays ISA-agnostic and the build
// needs no global -march flags: only the per-ISA translation units are
// compiled with -mavx2 / -msse4.2.
//
// Contract: every variant of every primitive is BIT-IDENTICAL to the
// scalar reference on NaN-free input -- the primitives only evaluate
// exact comparisons and indices, never arithmetic, so there is no
// rounding to diverge. This is enforced by the parity suite in
// tests/test_frontier_kernels.cpp and by `odtn_fuzz --kernel`, which
// differential-tests every CPU-supported variant against scalar.
//
// The active level can be forced with the ODTN_SIMD environment variable
// ("scalar", "sse42" or "avx2", clamped to what the CPU supports) or
// programmatically with set_level() (tests / fuzzer). The level lives in
// an atomic, so flipping it between single-threaded test phases is safe;
// it is not intended to be raced against in-flight kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace odtn::simd {

/// Instruction-set tiers, ordered: a CPU supporting a level supports all
/// lower ones. kScalar is the mandatory fallback and always available.
enum class Level : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// Flat primitive table. All functions are noexcept and never read out of
/// bounds (vector chunks stay fully inside [0, n); tails fall back to
/// scalar element steps).
struct Ops {
  /// Number of trailing elements of v[0, n) with v[k] >= bound, counted
  /// from index n-1 downward and stopping at the first element below
  /// bound. This is the dominance-pop count of the monotone-stack prune
  /// and of merge_frontier's descending walk.
  std::size_t (*count_tail_ge)(const double* v, std::size_t n,
                               double bound) noexcept;

  /// Same, over strided storage: element k lives at v[2 * k]. Used for
  /// the `ea` lane of an AoS PathPair array (pass &pairs[0].ea).
  std::size_t (*count_tail_ge_stride2)(const double* v, std::size_t n,
                                       double bound) noexcept;

  /// Length of the longest common prefix of the lane PAIRS (a0, a1) and
  /// (b0, b1) under value equality (operator==; +0.0 equals -0.0): the
  /// first index where either lane differs ends the prefix. Input must
  /// be NaN-free (frontier lanes always are).
  std::size_t (*equal_prefix2)(const double* a0, const double* a1,
                               const double* b0, const double* b1,
                               std::size_t n) noexcept;

  /// Longest common suffix of (a0, a1)[0, an) and (b0, b1)[0, bn) under
  /// value equality, capped at max_n (callers pass min(an, bn) minus the
  /// already-matched prefix). Input must be NaN-free.
  std::size_t (*equal_suffix2)(const double* a0, const double* a1,
                               std::size_t an, const double* b0,
                               const double* b1, std::size_t bn,
                               std::size_t max_n) noexcept;

  /// Four simultaneous std::lower_bound probes over one ascending grid:
  /// out[k] = index of the first grid element >= keys[k]. The vector
  /// variants count elements below the key with predictable compare
  /// sweeps on small grids (the delay-CDF regime) and fall back to
  /// branchless halving searches on large ones; results are exactly
  /// std::lower_bound's for every key (including +/-infinity and keys
  /// equal to grid values).
  void (*lower_bound4)(const double* grid, std::size_t n,
                       const double* keys, std::uint32_t* out) noexcept;

  /// Human-readable level name ("scalar", "sse42", "avx2").
  const char* name;
};

/// Highest level this CPU supports (scalar when not x86).
Level best_supported() noexcept;

/// True iff `level` can execute on this CPU. kScalar is always true.
bool cpu_supports(Level level) noexcept;

/// The level the dispatched kernels currently use. Initialized once, on
/// first use, to best_supported() clamped by the ODTN_SIMD env var.
Level active_level() noexcept;

/// Forces the active level. Returns false (and changes nothing) when the
/// CPU does not support it. Test/fuzzer hook.
bool set_level(Level level) noexcept;

/// Primitive table of the active level.
const Ops& ops() noexcept;

/// Primitive table of a specific level; `level` must be CPU-supported.
const Ops& ops_for(Level level) noexcept;

/// "scalar", "sse42" or "avx2".
const char* level_name(Level level) noexcept;

/// Parses a level name (as accepted by ODTN_SIMD). Returns false on an
/// unknown name.
bool parse_level(std::string_view text, Level& out) noexcept;

}  // namespace odtn::simd
