// AVX2 primitive table. This translation unit is compiled with -mavx2
// (see src/CMakeLists.txt) and is only ever entered through the dispatch
// table after a CPUID check, so no other TU needs arch flags.
//
// Every loop processes full 4-lane chunks strictly inside [0, n) and
// finishes with scalar element steps -- no over-reads, so the variants
// are clean under ASan. All comparisons are exact (ordered, quiet), so
// results are bit-identical to the scalar reference on NaN-free input.

#include <immintrin.h>

#include <algorithm>

#include "util/simd.hpp"

namespace odtn::simd {

namespace {

// Count of consecutive set bits of the 4-bit mask m from bit 3 downward;
// callers guarantee m != 0xF.
inline std::size_t high_run4(int m) noexcept {
  return static_cast<std::size_t>(
      __builtin_clz(static_cast<unsigned>(m ^ 0xF)) - 28);
}

// Count of consecutive set bits of the 4-bit mask m from bit 0 upward;
// callers guarantee m != 0xF.
inline std::size_t low_run4(int m) noexcept {
  return static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(m ^ 0xF)));
}

std::size_t count_tail_ge_avx2(const double* v, std::size_t n,
                               double bound) noexcept {
  const __m256d b = _mm256_set1_pd(bound);
  std::size_t c = 0;
  while (c + 4 <= n) {
    const __m256d x = _mm256_loadu_pd(v + n - c - 4);
    const int m = _mm256_movemask_pd(_mm256_cmp_pd(x, b, _CMP_GE_OQ));
    if (m != 0xF) return c + high_run4(m);
    c += 4;
  }
  while (c < n && v[n - 1 - c] >= bound) ++c;
  return c;
}

std::size_t count_tail_ge_stride2_avx2(const double* v, std::size_t n,
                                       double bound) noexcept {
  const __m256d b = _mm256_set1_pd(bound);
  std::size_t c = 0;
  while (c + 4 <= n) {
    // Elements k..k+3 live at v[2k], v[2k+2], v[2k+4], v[2k+6]. The last
    // valid double of the strided buffer is v[2n-2], so the top chunk
    // may not load two full 32-byte vectors (that would touch v[2n-1]);
    // the even lanes are assembled from 16/8-byte loads that stop at
    // base[6] exactly.
    const double* base = v + 2 * (n - c - 4);
    const __m128d p01 = _mm_shuffle_pd(_mm_loadu_pd(base),
                                       _mm_loadu_pd(base + 2), 0x0);
    const __m128d p23 = _mm_shuffle_pd(_mm_loadu_pd(base + 4),
                                       _mm_load_sd(base + 6), 0x0);
    const __m256d ev = _mm256_set_m128d(p23, p01);
    const int m = _mm256_movemask_pd(_mm256_cmp_pd(ev, b, _CMP_GE_OQ));
    if (m != 0xF) return c + high_run4(m);
    c += 4;
  }
  while (c < n && v[2 * (n - 1 - c)] >= bound) ++c;
  return c;
}

std::size_t equal_prefix2_avx2(const double* a0, const double* a1,
                               const double* b0, const double* b1,
                               std::size_t n) noexcept {
  std::size_t p = 0;
  while (p + 4 <= n) {
    const __m256d e0 = _mm256_cmp_pd(_mm256_loadu_pd(a0 + p),
                                     _mm256_loadu_pd(b0 + p), _CMP_EQ_OQ);
    const __m256d e1 = _mm256_cmp_pd(_mm256_loadu_pd(a1 + p),
                                     _mm256_loadu_pd(b1 + p), _CMP_EQ_OQ);
    const int m = _mm256_movemask_pd(_mm256_and_pd(e0, e1));
    if (m != 0xF) return p + low_run4(m);
    p += 4;
  }
  while (p < n && a0[p] == b0[p] && a1[p] == b1[p]) ++p;
  return p;
}

std::size_t equal_suffix2_avx2(const double* a0, const double* a1,
                               std::size_t an, const double* b0,
                               const double* b1, std::size_t bn,
                               std::size_t max_n) noexcept {
  std::size_t s = 0;
  while (s + 4 <= max_n) {
    const __m256d e0 =
        _mm256_cmp_pd(_mm256_loadu_pd(a0 + an - s - 4),
                      _mm256_loadu_pd(b0 + bn - s - 4), _CMP_EQ_OQ);
    const __m256d e1 =
        _mm256_cmp_pd(_mm256_loadu_pd(a1 + an - s - 4),
                      _mm256_loadu_pd(b1 + bn - s - 4), _CMP_EQ_OQ);
    const int m = _mm256_movemask_pd(_mm256_and_pd(e0, e1));
    if (m != 0xF) return s + high_run4(m);
    s += 4;
  }
  while (s < max_n && a0[an - 1 - s] == b0[bn - 1 - s] &&
         a1[an - 1 - s] == b1[bn - 1 - s])
    ++s;
  return s;
}

void lower_bound4_avx2(const double* grid, std::size_t n, const double* keys,
                       std::uint32_t* out) noexcept {
  if (n <= 96) {
    // Small grids -- the delay-CDF regime, a few dozen log-spaced bins:
    // on an ascending grid the lower_bound index equals the count of
    // elements strictly below the key. One sweep serves all four keys
    // (each chunk is loaded once and compared against every key), and
    // the sweep stops as soon as a chunk holds nothing below the LARGEST
    // key -- on an ascending grid no later element can count either.
    // Delay keys cluster at the low end of the log grid, so the early
    // exit usually fires after a few chunks; this beats both the branchy
    // binary search (one mispredict per level) and a gathered branchless
    // one (gathers cost more than the whole sweep here).
    const double kmax = std::max(std::max(keys[0], keys[1]),
                                 std::max(keys[2], keys[3]));
    const __m256d vmax = _mm256_set1_pd(kmax);
    const __m256d k0 = _mm256_set1_pd(keys[0]);
    const __m256d k1 = _mm256_set1_pd(keys[1]);
    const __m256d k2 = _mm256_set1_pd(keys[2]);
    const __m256d k3 = _mm256_set1_pd(keys[3]);
    __m256i a0 = _mm256_setzero_si256(), a1 = a0, a2 = a0, a3 = a0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d g = _mm256_loadu_pd(grid + i);
      a0 = _mm256_sub_epi64(a0,
                            _mm256_castpd_si256(_mm256_cmp_pd(g, k0, _CMP_LT_OQ)));
      a1 = _mm256_sub_epi64(a1,
                            _mm256_castpd_si256(_mm256_cmp_pd(g, k1, _CMP_LT_OQ)));
      a2 = _mm256_sub_epi64(a2,
                            _mm256_castpd_si256(_mm256_cmp_pd(g, k2, _CMP_LT_OQ)));
      a3 = _mm256_sub_epi64(a3,
                            _mm256_castpd_si256(_mm256_cmp_pd(g, k3, _CMP_LT_OQ)));
      if (_mm256_movemask_pd(_mm256_cmp_pd(g, vmax, _CMP_LT_OQ)) != 0xF) {
        i = n;  // chunk reached the largest key: later elements count 0
        break;
      }
    }
    // Horizontal reduction of the four per-key lane counters into
    // [c0, c1, c2, c3] with two unpack+add rounds and one lane swap.
    const __m256i s01 = _mm256_add_epi64(_mm256_unpacklo_epi64(a0, a1),
                                         _mm256_unpackhi_epi64(a0, a1));
    const __m256i s23 = _mm256_add_epi64(_mm256_unpacklo_epi64(a2, a3),
                                         _mm256_unpackhi_epi64(a2, a3));
    const __m256i c = _mm256_add_epi64(_mm256_permute2x128_si256(s01, s23, 0x20),
                                       _mm256_permute2x128_si256(s01, s23, 0x31));
    alignas(32) long long cnt[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(cnt), c);
    for (; i < n && grid[i] < kmax; ++i) {
      cnt[0] += grid[i] < keys[0];
      cnt[1] += grid[i] < keys[1];
      cnt[2] += grid[i] < keys[2];
      cnt[3] += grid[i] < keys[3];
    }
    out[0] = static_cast<std::uint32_t>(cnt[0]);
    out[1] = static_cast<std::uint32_t>(cnt[1]);
    out[2] = static_cast<std::uint32_t>(cnt[2]);
    out[3] = static_cast<std::uint32_t>(cnt[3]);
    return;
  }
  // Large grids: four independent branchless halving searches; their
  // dependency chains overlap, and L1 loads beat gathers.
  for (int k = 0; k < 4; ++k) {
    std::size_t base = 0, len = n;
    while (len > 1) {
      const std::size_t half = len / 2;
      if (grid[base + half] < keys[k]) base += half;
      len -= half;
    }
    out[k] = static_cast<std::uint32_t>(base +
                                        (grid[base] < keys[k] ? 1u : 0u));
  }
}

}  // namespace

extern const Ops kAvx2Ops;
const Ops kAvx2Ops = {
    count_tail_ge_avx2,    count_tail_ge_stride2_avx2,
    equal_prefix2_avx2,    equal_suffix2_avx2,
    lower_bound4_avx2,     "avx2",
};

}  // namespace odtn::simd
