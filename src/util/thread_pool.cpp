#include "util/thread_pool.hpp"

#include <algorithm>

namespace odtn {

ThreadPool::ThreadPool(unsigned num_workers) {
  if (num_workers == 0)
    num_workers = std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(num_workers - 1);
  for (unsigned id = 1; id < num_workers; ++id)
    threads_.emplace_back([this, id] { worker_loop(id); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::drain(const std::function<void(std::size_t, unsigned)>* fn,
                       std::size_t n, unsigned worker_id) {
  for (;;) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      (*fn)(i, worker_id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
      // Swallow remaining indices quickly: move the cursor to the end.
      cursor_.store(n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop(unsigned worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    // job_ is nulled (under this mutex) before parallel_for returns, so a
    // late wake-up after the job completed observes nullptr, never a
    // dangling pointer.
    const auto* fn = job_;
    const std::size_t n = job_size_;
    if (!fn) continue;
    ++active_workers_;
    lock.unlock();

    drain(fn, n, worker_id);

    lock.lock();
    if (--active_workers_ == 0) done_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, unsigned)>& fn) {
  if (n == 0) return;
  bool expected = false;
  if (!busy_.compare_exchange_strong(expected, true,
                                     std::memory_order_acquire)) {
    // The job slot is taken (nested or concurrent call): run inline.
    for (std::size_t i = 0; i < n; ++i) fn(i, /*worker_id=*/0);
    return;
  }
  struct BusyReset {
    std::atomic<bool>& flag;
    ~BusyReset() { flag.store(false, std::memory_order_release); }
  } busy_reset{busy_};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_size_ = n;
    cursor_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();

  drain(&fn, n, /*worker_id=*/0);  // the caller participates as worker 0

  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return active_workers_ == 0; });
  job_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

ThreadPool& shared_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace odtn
