// A small reusable work-queue thread pool.
//
// Built for embarrassingly-parallel loops over heterogeneous work items
// (e.g. one single-source engine run per node): workers pull the next
// index from a shared atomic cursor, so a handful of expensive items
// cannot load-imbalance the way strided static partitioning does on
// heterogeneous traces. Workers are spawned once and reused across
// parallel_for calls; between calls they sleep on a condition variable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace odtn {

class ThreadPool {
 public:
  /// Creates a pool with `num_workers` total workers (the calling thread
  /// participates as worker 0, so `num_workers - 1` threads are spawned).
  /// 0 means hardware concurrency.
  explicit ThreadPool(unsigned num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker slots (including the caller's). parallel_for passes
  /// worker ids in [0, num_workers()) to `fn`; no two concurrent calls of
  /// `fn` share a worker id, so per-worker scratch indexed by the id
  /// needs no further synchronization.
  unsigned num_workers() const noexcept {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// Runs fn(index, worker) for every index in [0, n), handing indices
  /// out dynamically (work stealing via a shared cursor). Blocks until
  /// all indices completed. The first exception thrown by `fn` is
  /// rethrown here.
  ///
  /// The pool runs one distributed job at a time: the job state
  /// (cursor, generation) is a single slot. A parallel_for issued while
  /// another is in flight on the same pool -- a nested call from inside
  /// `fn`, or a call from an unrelated thread -- is detected and run
  /// inline on the calling thread (serially, worker id 0) instead of
  /// corrupting the in-flight job. Nested calls must therefore keep any
  /// per-worker scratch local to themselves: their worker id 0 may be
  /// active in the outer job simultaneously.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, unsigned)>& fn);

 private:
  void worker_loop(unsigned worker_id);
  void drain(const std::function<void(std::size_t, unsigned)>* fn,
             std::size_t n, unsigned worker_id);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  // Job state, guarded by mutex_ except for the index cursor.
  std::uint64_t generation_ = 0;
  std::size_t job_size_ = 0;
  const std::function<void(std::size_t, unsigned)>* job_ = nullptr;
  unsigned active_workers_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr error_;
  bool stop_ = false;
  // True while a distributed parallel_for owns the job slot; a second
  // caller seeing true falls back to inline serial execution.
  std::atomic<bool> busy_{false};
};

/// Lazily-constructed process-wide pool sized to hardware concurrency.
/// Shared by all-pairs computations so repeated calls (benches, the CLI,
/// parameter sweeps) reuse the same threads.
ThreadPool& shared_thread_pool();

}  // namespace odtn
