// Level detection and dispatch state for the SIMD primitive tables.
//
// The per-ISA tables live in their own translation units (simd_scalar.cpp,
// simd_sse42.cpp, simd_avx2.cpp) because the SSE4.2/AVX2 ones must be
// compiled with -msse4.2 / -mavx2 while the rest of the library is not;
// this file only picks between them.

#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>

namespace odtn::simd {

extern const Ops kScalarOps;
#if defined(ODTN_SIMD_X86)
extern const Ops kSse42Ops;
extern const Ops kAvx2Ops;
#endif

namespace {

const Ops* table_for(Level level) noexcept {
#if defined(ODTN_SIMD_X86)
  switch (level) {
    case Level::kAvx2:
      return &kAvx2Ops;
    case Level::kSse42:
      return &kSse42Ops;
    case Level::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return &kScalarOps;
}

Level detect_best() noexcept {
#if defined(ODTN_SIMD_X86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
#endif
  return Level::kScalar;
}

Level initial_level() noexcept {
  Level level = detect_best();
  if (const char* env = std::getenv("ODTN_SIMD")) {
    Level want;
    if (parse_level(env, want)) {
      // Clamp an over-eager request to what the CPU can run; forcing a
      // LOWER level (the CI fallback-coverage job's ODTN_SIMD=scalar)
      // always succeeds.
      if (static_cast<int>(want) < static_cast<int>(level)) level = want;
    }
  }
  return level;
}

std::atomic<int>& active_slot() noexcept {
  static std::atomic<int> slot{static_cast<int>(initial_level())};
  return slot;
}

}  // namespace

Level best_supported() noexcept {
  static const Level best = detect_best();
  return best;
}

bool cpu_supports(Level level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(best_supported());
}

Level active_level() noexcept {
  return static_cast<Level>(active_slot().load(std::memory_order_relaxed));
}

bool set_level(Level level) noexcept {
  if (!cpu_supports(level)) return false;
  active_slot().store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

const Ops& ops() noexcept { return *table_for(active_level()); }

const Ops& ops_for(Level level) noexcept { return *table_for(level); }

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kSse42:
      return "sse42";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

bool parse_level(std::string_view text, Level& out) noexcept {
  if (text == "scalar") {
    out = Level::kScalar;
  } else if (text == "sse42") {
    out = Level::kSse42;
  } else if (text == "avx2") {
    out = Level::kAvx2;
  } else {
    return false;
  }
  return true;
}

}  // namespace odtn::simd
