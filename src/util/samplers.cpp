#include "util/samplers.hpp"

#include <cassert>
#include <cmath>

namespace odtn {

double sample_exponential(Rng& rng, double rate) {
  assert(rate > 0.0);
  // 1 - U is in (0, 1], so the log is finite.
  return -std::log(1.0 - rng.next_double()) / rate;
}

std::uint64_t sample_geometric_trials(Rng& rng, double p) {
  return sample_geometric_failures(rng, p) + 1;
}

std::uint64_t sample_geometric_failures(Rng& rng, double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = 1.0 - rng.next_double();  // in (0, 1]
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

double sample_pareto(Rng& rng, double xmin, double alpha) {
  assert(xmin > 0.0 && alpha > 0.0);
  const double u = 1.0 - rng.next_double();  // in (0, 1]
  return xmin * std::pow(u, -1.0 / alpha);
}

double sample_bounded_pareto(Rng& rng, double lo, double hi, double alpha) {
  assert(0.0 < lo && lo < hi && alpha > 0.0);
  // Inverse-CDF of the truncated Pareto.
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double u = rng.next_double();
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double sample_normal(Rng& rng, double mean, double stddev) {
  const double u1 = 1.0 - rng.next_double();  // avoid log(0)
  const double u2 = rng.next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(6.283185307179586476925286766559 * u2);
}

double sample_lognormal(Rng& rng, double mu, double sigma) {
  return std::exp(sample_normal(rng, mu, sigma));
}

std::uint64_t sample_poisson(Rng& rng, double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 256.0) {
    // Inversion by sequential search.
    const double l = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.next_double();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction, adequate for the
  // large-mean bulk sampling done by the trace generators.
  const double x = sample_normal(rng, mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

}  // namespace odtn
