#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/time_format.hpp"

namespace odtn {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'};

double transform_x(double x, bool log_x) {
  return log_x ? std::log10(x) : x;
}

std::string format_tick(double v, bool as_duration) {
  if (as_duration) return format_duration(v);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g", v);
  return buf;
}

}  // namespace

std::string render_ascii_plot(const std::vector<PlotSeries>& series,
                              const PlotOptions& options) {
  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);

  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -std::numeric_limits<double>::infinity();
  double y_lo = std::numeric_limits<double>::infinity();
  double y_hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      const double x = s.x[i], y = s.y[i];
      if (!std::isfinite(x) || !std::isfinite(y)) continue;
      if (options.log_x && x <= 0.0) continue;
      const double tx = transform_x(x, options.log_x);
      x_lo = std::min(x_lo, tx);
      x_hi = std::max(x_hi, tx);
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
    }
  }
  if (!(x_lo < x_hi)) x_hi = x_lo + 1.0;
  if (options.y_min < options.y_max) {
    y_lo = options.y_min;
    y_hi = options.y_max;
  } else if (!(y_lo < y_hi)) {
    y_hi = y_lo + 1.0;
  }

  std::vector<std::string> grid(h, std::string(w, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      const double x = s.x[i], y = s.y[i];
      if (!std::isfinite(x) || !std::isfinite(y)) continue;
      if (options.log_x && x <= 0.0) continue;
      const double tx = transform_x(x, options.log_x);
      int col = static_cast<int>(std::lround((tx - x_lo) / (x_hi - x_lo) * (w - 1)));
      int row = static_cast<int>(std::lround((y - y_lo) / (y_hi - y_lo) * (h - 1)));
      col = std::clamp(col, 0, w - 1);
      row = std::clamp(row, 0, h - 1);
      grid[h - 1 - row][col] = glyph;
    }
  }

  std::string out;
  if (!options.y_label.empty()) out += options.y_label + "\n";
  char buf[64];
  for (int r = 0; r < h; ++r) {
    const double y = y_hi - (y_hi - y_lo) * r / (h - 1);
    std::snprintf(buf, sizeof buf, "%9.3g |", y);
    out += buf;
    out += grid[r];
    out += '\n';
  }
  out += "          +" + std::string(w, '-') + "\n";

  const double x_left = options.log_x ? std::pow(10.0, x_lo) : x_lo;
  const double x_mid =
      options.log_x ? std::pow(10.0, 0.5 * (x_lo + x_hi)) : 0.5 * (x_lo + x_hi);
  const double x_right = options.log_x ? std::pow(10.0, x_hi) : x_hi;
  const std::string lt = format_tick(x_left, options.x_as_duration);
  const std::string mt = format_tick(x_mid, options.x_as_duration);
  const std::string rt = format_tick(x_right, options.x_as_duration);
  std::string axis = "           " + lt;
  const int mid_col = 11 + w / 2 - static_cast<int>(mt.size()) / 2;
  while (static_cast<int>(axis.size()) < mid_col) axis += ' ';
  axis += mt;
  const int right_col = 11 + w - static_cast<int>(rt.size());
  while (static_cast<int>(axis.size()) < right_col) axis += ' ';
  axis += rt;
  out += axis + "\n";
  if (!options.x_label.empty()) out += "           [" + options.x_label + "]\n";

  for (std::size_t si = 0; si < series.size(); ++si) {
    out += "   ";
    out += kGlyphs[si % sizeof(kGlyphs)];
    out += " = " + series[si].label + "\n";
  }
  return out;
}

}  // namespace odtn
