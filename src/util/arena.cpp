#include "util/arena.hpp"

#include <algorithm>

namespace odtn {

void PairArena::grow(std::size_t needed) {
  // Geometric growth keeps the amortized allocate() cost constant; the
  // floor avoids a flurry of tiny reallocations while the first source
  // warms the slab up.
  constexpr std::size_t kMinCapacity = 256;
  const std::size_t cap =
      std::max({needed, ld_.size() * 2, kMinCapacity});
  ld_.resize(cap);
  ea_.resize(cap);
  if (with_aux_) aux_.resize(cap);
}

}  // namespace odtn
