#include "util/arena.hpp"

#include <algorithm>
#include <cstring>
#include <new>

namespace odtn {

namespace {

double* alloc_lane(std::size_t cap) {
  return static_cast<double*>(::operator new(
      cap * sizeof(double), std::align_val_t{PairArena::kLaneAlignment}));
}

void free_lane(double* lane) noexcept {
  ::operator delete(lane, std::align_val_t{PairArena::kLaneAlignment});
}

}  // namespace

void PairArena::grow(std::size_t needed) {
  // Geometric growth keeps the amortized allocate() cost constant; the
  // floor avoids a flurry of tiny reallocations while the first source
  // warms the slab up. std::vector is no longer usable here: its buffer
  // is only alignof(double)-aligned, while the SIMD kernels need every
  // lane base on a 32-byte boundary.
  constexpr std::size_t kMinCapacity = 256;
  std::size_t cap = std::max({needed, cap_ * 2, kMinCapacity});
  cap = (cap + kSpanAlignPairs - 1) & ~(kSpanAlignPairs - 1);
  const auto regrow = [&](double*& lane) {
    double* next = alloc_lane(cap);
    if (lane != nullptr) {
      std::memcpy(next, lane, cap_ * sizeof(double));
      free_lane(lane);
    }
    std::memset(next + cap_, 0, (cap - cap_) * sizeof(double));
    lane = next;
  };
  regrow(ld_);
  regrow(ea_);
  if (with_aux_) regrow(aux_);
  cap_ = cap;
}

void PairArena::release() noexcept {
  free_lane(ld_);
  free_lane(ea_);
  free_lane(aux_);
  ld_ = ea_ = aux_ = nullptr;
  cap_ = 0;
}

void PairArena::move_from(PairArena& other) noexcept {
  ld_ = other.ld_;
  ea_ = other.ea_;
  aux_ = other.aux_;
  cap_ = other.cap_;
  size_ = other.size_;
  peak_pairs_ = other.peak_pairs_;
  with_aux_ = other.with_aux_;
  other.ld_ = other.ea_ = other.aux_ = nullptr;
  other.cap_ = other.size_ = other.peak_pairs_ = 0;
}

}  // namespace odtn
