// Minimal CSV writer used by benches to dump figure/table series alongside
// the human-readable console output, so results can be re-plotted.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace odtn {

/// Streams rows to a CSV file. Fields containing commas, quotes, or
/// newlines are quoted per RFC 4180. The file is flushed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row; each field is escaped as needed.
  void write_row(const std::vector<std::string>& fields);
  void write_row(std::initializer_list<std::string_view> fields);

  /// Convenience: formats doubles with the shortest representation that
  /// round-trips to the exact value (std::to_chars).
  void write_numeric_row(const std::vector<double>& values);

  /// Number of rows written so far.
  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_fields(const std::vector<std::string>& fields);

  std::ofstream out_;
  std::size_t rows_ = 0;
};

/// Escapes a single CSV field per RFC 4180.
std::string csv_escape(std::string_view field);

}  // namespace odtn
