// ShardedLruCache: a byte-budgeted, sharded LRU map for the serve-path
// result cache (core/query_engine.hpp).
//
// Design:
//   - The keyspace is split across S independent shards, each with its
//     own mutex, intrusive recency list and hash index, so concurrent
//     query workers touching different sources rarely contend.
//   - The budget is in BYTES, not entries: every insert carries an
//     explicit cost (key bytes + value payload + bookkeeping estimate),
//     and each shard evicts from its own LRU tail until it fits within
//     budget_bytes / S. An entry larger than a whole shard's budget is
//     admitted and then immediately evicted -- the caller still gets
//     exact eviction accounting, and a pathological value cannot pin
//     the cache above budget.
//   - Values are handed out as shared_ptr<const Value>: a hit stays
//     valid even if another thread evicts the entry a microsecond
//     later, and the cache never copies payloads.
//   - put() returns the number of entries evicted BY THAT CALL, so the
//     engine can attribute evictions to individual queries exactly
//     (the bench CSV and EngineStats cache_evictions counters rely on
//     this adding up).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace odtn {

/// Aggregate counters across all shards; deltas of successive snapshots
/// are exact because every hit/miss/eviction increments under the owning
/// shard's lock.
struct LruCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserts = 0;
  std::size_t bytes = 0;    // current resident payload bytes
  std::size_t entries = 0;  // current resident entry count
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `budget_bytes` is split evenly across `num_shards` (each at least
  /// 1). Zero budget means "cache nothing": every put is evicted
  /// immediately, every get misses -- handy for forcing cold paths in
  /// tests without branching at the call sites.
  explicit ShardedLruCache(std::size_t budget_bytes,
                           std::size_t num_shards = 8) {
    if (num_shards == 0) num_shards = 1;
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i)
      shards_.push_back(std::make_unique<Shard>());
    const std::size_t per = budget_bytes / num_shards;
    for (auto& s : shards_) s->budget = per;
  }

  std::size_t num_shards() const noexcept { return shards_.size(); }

  /// Returns the cached value and refreshes its recency, or nullptr on
  /// miss.
  std::shared_ptr<const Value> get(const Key& key) {
    Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it == s.index.end()) {
      ++s.misses;
      return nullptr;
    }
    ++s.hits;
    s.order.splice(s.order.begin(), s.order, it->second);  // move to MRU
    return it->second->value;
  }

  /// Inserts (or overwrites) `key` with a value costing `cost_bytes`,
  /// then evicts LRU-first until the shard is back within budget.
  /// Returns how many entries THIS call evicted (an oversized entry
  /// counts itself).
  std::size_t put(const Key& key, std::shared_ptr<const Value> value,
                  std::size_t cost_bytes) {
    Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.bytes -= it->second->cost;
      it->second->value = std::move(value);
      it->second->cost = cost_bytes;
      s.bytes += cost_bytes;
      s.order.splice(s.order.begin(), s.order, it->second);
    } else {
      s.order.push_front(Entry{key, std::move(value), cost_bytes});
      s.index.emplace(key, s.order.begin());
      s.bytes += cost_bytes;
      ++s.inserts;
    }
    std::size_t evicted = 0;
    while (s.bytes > s.budget && !s.order.empty()) {
      const Entry& victim = s.order.back();
      s.bytes -= victim.cost;
      s.index.erase(victim.key);
      s.order.pop_back();
      ++evicted;
    }
    s.evictions += evicted;
    return evicted;
  }

  /// Drops every entry; counters keep accumulating (clear is not a
  /// statistics reset, so long-lived serve sessions report totals).
  void clear() {
    for (auto& sp : shards_) {
      const std::lock_guard<std::mutex> lock(sp->mutex);
      sp->order.clear();
      sp->index.clear();
      sp->bytes = 0;
    }
  }

  LruCacheStats stats() const {
    LruCacheStats out;
    for (const auto& sp : shards_) {
      const std::lock_guard<std::mutex> lock(sp->mutex);
      out.hits += sp->hits;
      out.misses += sp->misses;
      out.evictions += sp->evictions;
      out.inserts += sp->inserts;
      out.bytes += sp->bytes;
      out.entries += sp->order.size();
    }
    return out;
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    std::size_t cost;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> order;  // front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index;
    std::size_t budget = 0;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
  };

  Shard& shard_for(const Key& key) {
    // Mix the hash before reducing: std::hash for integers is commonly
    // the identity, which would pin sequential sources to one shard.
    std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return *shards_[h % shards_.size()];
  }

  // unique_ptr, not value: Shard holds a mutex and must never move.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace odtn
