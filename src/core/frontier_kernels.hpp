// Batched Pareto-frontier kernels over structure-of-arrays pair storage.
//
// The seed representation (DeliveryFunction) maintains a frontier by
// per-candidate `insert()`: a binary search plus a mid-vector element
// shift, i.e. O(F) moved bytes PER KEPT CANDIDATE. These kernels replace
// that with batched operations exploiting the double-monotone invariant
// (both LD and EA strictly increase along a frontier):
//
//   prune_candidate_batch -- collapses one level's raw candidates for a
//       single destination into a Pareto front (sort + one stack pass).
//   merge_frontier        -- a single descending two-way merge of the
//       existing frontier with the pruned batch, emitting the merged
//       frontier AND the delta (pairs newly kept, with the successor EA
//       needed for wait-candidate suppression) in one pass: O(F + m)
//       total, independent of how many candidates are kept.
//
// Both kernels reproduce the seed `DeliveryFunction::insert` semantics
// bit for bit (the Pareto front of a pair set is unique); this is gated
// by tests/test_frontier_kernels.cpp, `odtn_fuzz --kernel`, and the
// `kernels` section of bench_perf_engine.
#pragma once

#include <cstddef>
#include <vector>

#include "core/path_pair.hpp"

namespace odtn {

/// First index in ld[0, n) whose value is >= x (ld ascending). Defined
/// inline: this is the per-candidate probe of the engine's offer-time
/// dominance filter, the single hottest call of the extension phase.
inline std::size_t frontier_lower_bound(const double* ld, std::size_t n,
                                        double x) noexcept {
  std::size_t lo = 0;
  while (n > 0) {
    const std::size_t half = n / 2;
    if (ld[lo + half] < x) {
      lo += half + 1;
      n -= half + 1;
    } else {
      n = half;
    }
  }
  return lo;
}

/// True iff some pair of the frontier (SoA, both lanes ascending)
/// dominates (ld, ea): departs no earlier AND arrives no later.
/// Mirrors DeliveryFunction::is_dominated.
inline bool frontier_dominates(const double* f_ld, const double* f_ea,
                               std::size_t n, double ld, double ea) noexcept {
  if (n == 0) return false;
  // The last pair settles most probes in O(1). ld beyond the last
  // departure: nothing dominates. Otherwise some pair with ld' >= ld
  // exists, and if even the LAST arrival (the frontier's maximum, ea
  // ascends) is <= ea, that pair's arrival is too.
  if (ld > f_ld[n - 1]) return false;
  if (f_ea[n - 1] <= ea) return true;
  // Among pairs with ld' >= ld the first one has the smallest ea (ea
  // ascends with ld), so it is the only candidate to check.
  const std::size_t i = frontier_lower_bound(f_ld, n, ld);
  return i < n && f_ea[i] <= ea;
}

/// Sorts `batch[0, m)` in place and collapses it to its Pareto front
/// (strictly increasing ld AND ea; at equal ld only the minimal ea
/// survives). Returns the pruned length; the survivors occupy the
/// prefix of `batch`. Dispatched: the dominance-pop scan runs through
/// the active util/simd level; results are bit-identical to the scalar
/// reference at every level.
std::size_t prune_candidate_batch(PathPair* batch, std::size_t m);

/// The scalar reference for prune_candidate_batch (the pre-dispatch code
/// kept verbatim). Exposed for the parity suite, the fuzzer's
/// differential mode, and the per-kernel micro benches.
std::size_t prune_candidate_batch_scalar(PathPair* batch, std::size_t m);

/// The collapse half of prune_candidate_batch: `batch[0, m)` must
/// already be sorted by (ld, ea); collapses it to its Pareto front in
/// place and returns the pruned length. Dispatched / scalar reference
/// pair, split out so the dominance tests can be benched without the
/// sort dominating the measurement.
std::size_t collapse_sorted_batch(PathPair* batch, std::size_t m);
std::size_t collapse_sorted_batch_scalar(PathPair* batch, std::size_t m);

/// Outcome of one merge_frontier call.
struct FrontierMerge {
  /// Size of the merged frontier; it occupies out_ld/out_ea indices
  /// [fn + m - kept, fn + m).
  std::size_t kept = 0;
  /// Pairs of the merged frontier that came from the candidate batch
  /// (exact duplicates of existing pairs do not count); they occupy
  /// delta_* indices [m - kept_new, m). kept_new == 0 means the batch
  /// was fully dominated and the frontier is unchanged.
  std::size_t kept_new = 0;
};

/// Merges a Pareto frontier (SoA lanes f_ld/f_ea, both strictly
/// ascending, length fn) with a PRUNED candidate batch (cand[0, m), as
/// produced by prune_candidate_batch) into the Pareto front of their
/// union.
///
/// The merge walks both inputs in descending LD order keeping a running
/// minimum EA, so each element is visited once. Outputs are written
/// back-to-front: out_ld/out_ea must hold fn + m doubles and receive the
/// merged frontier in ascending order in the LAST `kept` slots -- the
/// unused prefix is deliberate slack (the pooled engine leaves it as
/// arena garbage rather than shifting elements, the whole point of the
/// layout). delta_ld/delta_ea/delta_succ must hold m doubles and receive
/// the newly kept pairs in the last `kept_new` slots, with delta_succ[i]
/// the EA of the pair's successor in the merged frontier (+infinity for
/// the last pair) -- exactly the value the engine's wait-candidate
/// suppression needs. Output regions must not alias the inputs.
/// Dispatched: when a SIMD level is active the walk is restructured into
/// per-candidate runs (binary search for the run boundary, a vector
/// dominance-pop count, one bulk copy of the survivors) -- bit-identical
/// output to the scalar walk, gated by the parity suite and the fuzzer.
FrontierMerge merge_frontier(const double* f_ld, const double* f_ea,
                             std::size_t fn, const PathPair* cand,
                             std::size_t m, double* out_ld, double* out_ea,
                             double* delta_ld, double* delta_ea,
                             double* delta_succ) noexcept;

/// The scalar reference for merge_frontier (the pre-dispatch descending
/// element walk kept verbatim). Exposed for the parity suite, the
/// fuzzer, and the per-kernel micro benches.
FrontierMerge merge_frontier_scalar(const double* f_ld, const double* f_ea,
                                    std::size_t fn, const PathPair* cand,
                                    std::size_t m, double* out_ld,
                                    double* out_ea, double* delta_ld,
                                    double* delta_ea,
                                    double* delta_succ) noexcept;

}  // namespace odtn
