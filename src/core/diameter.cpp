#include "core/diameter.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/sharded_engine.hpp"
#include "core/source_cdf.hpp"
#include "util/thread_pool.hpp"

namespace odtn {

int DelayCdfResult::diameter(double eps) const {
  for (std::size_t k = 0; k < cdf_by_hops.size(); ++k) {
    bool ok = true;
    for (std::size_t j = 0; j < grid.size(); ++j) {
      if (cdf_by_hops[k][j] < (1.0 - eps) * cdf_unbounded[j]) {
        ok = false;
        break;
      }
    }
    if (ok) return static_cast<int>(k) + 1;
  }
  // Hop budgets above max_hops were not evaluated separately, but the
  // fixpoint level always satisfies the criterion -- unless the DP was
  // truncated, in which case fixpoint_hops is only a lower bound and
  // returning it would silently understate the diameter.
  return converged ? fixpoint_hops : kUnknownDiameter;
}

int DelayCdfResult::diameter_absolute(double tol) const {
  for (std::size_t k = 0; k < cdf_by_hops.size(); ++k) {
    bool ok = true;
    for (std::size_t j = 0; j < grid.size(); ++j) {
      if (cdf_unbounded[j] - cdf_by_hops[k][j] > tol) {
        ok = false;
        break;
      }
    }
    if (ok) return static_cast<int>(k) + 1;
  }
  return converged ? fixpoint_hops : kUnknownDiameter;
}

std::vector<int> DelayCdfResult::diameter_per_delay(double eps) const {
  std::vector<int> out(grid.size(), 0);
  for (std::size_t j = 0; j < grid.size(); ++j) {
    if (cdf_unbounded[j] <= 0.0) continue;  // nothing to achieve
    int k = fixpoint_hops;
    for (std::size_t i = 0; i < cdf_by_hops.size(); ++i) {
      if (cdf_by_hops[i][j] >= (1.0 - eps) * cdf_unbounded[j]) {
        k = static_cast<int>(i) + 1;
        break;
      }
    }
    out[j] = k;
  }
  return out;
}

DelayCdfResult compute_delay_cdf(const TemporalGraph& graph,
                                 const DelayCdfOptions& options) {
  if (options.grid.empty())
    throw std::invalid_argument("compute_delay_cdf: empty grid");
  if (options.max_hops < 1)
    throw std::invalid_argument("compute_delay_cdf: max_hops must be >= 1");
  if (options.source_batch < 1)
    throw std::invalid_argument(
        "compute_delay_cdf: source_batch must be >= 1");
  if (options.sharding.num_shards > 0)
    return compute_delay_cdf_sharded(graph, options, options.sharding);

  const TimeWindows w = resolve_cdf_windows(graph, options);
  const std::vector<NodeId> endpoints = resolve_cdf_endpoints(graph, options);
  const bool incremental = use_incremental_accumulation(options);
  std::vector<std::uint8_t> is_endpoint(graph.num_nodes(), 0);
  for (NodeId n : endpoints) is_endpoint[n] = 1;

  // Reusable pool with dynamic source hand-out: expensive sources (dense
  // neighborhoods, long traces) no longer serialize behind a strided
  // static partition. num_threads == 0 reuses the shared pool.
  std::optional<ThreadPool> local_pool;
  if (options.num_threads != 0) local_pool.emplace(options.num_threads);
  ThreadPool& pool = local_pool ? *local_pool : shared_thread_pool();

  // Batched execution: hand out blocks of consecutive sources, each run
  // through one lockstep multi-source engine. Lane partials land in the
  // folder at their original endpoint indices, so the canonical fold --
  // and hence every output bit -- matches the per-source path.
  const std::size_t batch = std::min<std::size_t>(
      static_cast<std::size_t>(options.source_batch), endpoints.size());
  if (batch > 1) {
    if (options.engine != EngineMode::kPooled || !incremental)
      throw std::invalid_argument(
          "compute_delay_cdf: batched execution (source_batch > 1) requires "
          "the pooled engine with incremental accumulation");
    const std::size_t num_blocks = (endpoints.size() + batch - 1) / batch;
    std::vector<BatchedCdfWorker> workers(pool.num_workers());
    std::vector<std::vector<SourceCdfPartial>> scratch(pool.num_workers());
    OrderedCdfFolder folder(options.grid, options.max_hops, endpoints.size());
    pool.parallel_for(num_blocks, [&](std::size_t b, unsigned worker) {
      const std::size_t lo = b * batch;
      const std::size_t width = std::min(batch, endpoints.size() - lo);
      std::vector<SourceCdfPartial>& outs = scratch[worker];
      while (outs.size() < width)
        outs.emplace_back(options.grid, options.max_hops);
      for (std::size_t j = 0; j < width; ++j) outs[j].clear();
      process_source_block(graph, std::span(endpoints).subspan(lo, width),
                           endpoints, is_endpoint, w, options.max_hops,
                           options.max_levels, workers[worker], outs);
      for (std::size_t j = 0; j < width; ++j) folder.submit(lo + j, outs[j]);
    });
    EngineStats stats;
    for (const BatchedCdfWorker& worker : workers)
      stats.merge(worker.take_stats());
    return finalize_delay_cdf(folder.total(), stats, options, incremental);
  }

  // Each worker integrates one source at a time into its private zeroed
  // scratch partial; the folder merges partials in ascending endpoint
  // index no matter which worker produced them. The result is therefore
  // bit-identical across thread counts (and across the sharded driver,
  // which folds the same per-source partials in the same order).
  std::vector<SourceCdfWorker> workers(pool.num_workers());
  std::vector<SourceCdfPartial> scratch;
  scratch.reserve(pool.num_workers());
  for (unsigned t = 0; t < pool.num_workers(); ++t)
    scratch.emplace_back(options.grid, options.max_hops);
  OrderedCdfFolder folder(options.grid, options.max_hops, endpoints.size());

  pool.parallel_for(endpoints.size(), [&](std::size_t i, unsigned worker) {
    SourceCdfPartial& partial = scratch[worker];
    partial.clear();
    process_source(graph, endpoints[i], endpoints, is_endpoint, w,
                   options.max_hops, options.max_levels, options.engine,
                   incremental, workers[worker], partial);
    folder.submit(i, partial);
  });

  EngineStats stats;
  for (const SourceCdfWorker& worker : workers)
    stats.merge(worker.take_stats());
  return finalize_delay_cdf(folder.total(), stats, options, incremental);
}

}  // namespace odtn
