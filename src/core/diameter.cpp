#include "core/diameter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "stats/measure_cdf.hpp"
#include "util/thread_pool.hpp"

namespace odtn {
namespace {

using Windows = std::vector<std::pair<double, double>>;

Windows resolve_windows(const TemporalGraph& graph,
                        const DelayCdfOptions& options) {
  if (!options.windows.empty()) {
    double prev = -std::numeric_limits<double>::infinity();
    for (const auto& [lo, hi] : options.windows) {
      if (!(lo <= hi) || lo < prev)
        throw std::invalid_argument(
            "compute_delay_cdf: windows must be disjoint and increasing");
      prev = hi;
    }
    return options.windows;
  }
  double lo = options.t_lo, hi = options.t_hi;
  if (std::isnan(lo)) lo = graph.start_time();
  if (std::isnan(hi)) hi = graph.end_time();
  if (!(lo <= hi))
    throw std::invalid_argument("compute_delay_cdf: empty start-time window");
  return {{lo, hi}};
}

double total_measure(const Windows& windows) {
  double total = 0.0;
  for (const auto& [lo, hi] : windows) total += hi - lo;
  return total;
}

/// Per-worker partial result: one accumulator per hop budget + unbounded.
struct Partial {
  std::vector<MeasureCdfAccumulator> by_hops;
  MeasureCdfAccumulator unbounded;
  int fixpoint_hops = 0;
  bool converged = true;
  EngineStats stats;

  Partial(const std::vector<double>& grid, int max_hops)
      : unbounded(grid) {
    by_hops.reserve(max_hops);
    for (int k = 0; k < max_hops; ++k) by_hops.emplace_back(grid);
  }
};

void process_source(const TemporalGraph& graph, NodeId src,
                    const std::vector<NodeId>& endpoints, const Windows& w,
                    int max_hops, int max_levels, EngineMode mode,
                    Partial& out) {
  SingleSourceEngine engine(graph, src, mode);
  const double window_measure = total_measure(w);
  auto accumulate = [&](MeasureCdfAccumulator& acc, NodeId dst) {
    for (const auto& [lo, hi] : w)
      engine.frontier(dst).accumulate_delay_measure(acc, lo, hi);
    acc.add_observation_measure(window_measure);
  };
  for (int k = 1; k <= max_hops; ++k) {
    engine.step();  // no-op once at fixpoint; frontiers stay L_inf
    for (NodeId dst : endpoints) {
      if (dst == src) continue;
      accumulate(out.by_hops[k - 1], dst);
    }
  }
  const int fixpoint = engine.run_to_fixpoint(max_levels);
  if (fixpoint > max_levels) out.converged = false;
  out.fixpoint_hops = std::max(out.fixpoint_hops, fixpoint);
  out.stats.merge(engine.stats());
  for (NodeId dst : endpoints) {
    if (dst == src) continue;
    accumulate(out.unbounded, dst);
  }
}

}  // namespace

int DelayCdfResult::diameter(double eps) const {
  for (std::size_t k = 0; k < cdf_by_hops.size(); ++k) {
    bool ok = true;
    for (std::size_t j = 0; j < grid.size(); ++j) {
      if (cdf_by_hops[k][j] < (1.0 - eps) * cdf_unbounded[j]) {
        ok = false;
        break;
      }
    }
    if (ok) return static_cast<int>(k) + 1;
  }
  // Hop budgets above max_hops were not evaluated separately, but the
  // fixpoint level always satisfies the criterion.
  return fixpoint_hops;
}

int DelayCdfResult::diameter_absolute(double tol) const {
  for (std::size_t k = 0; k < cdf_by_hops.size(); ++k) {
    bool ok = true;
    for (std::size_t j = 0; j < grid.size(); ++j) {
      if (cdf_unbounded[j] - cdf_by_hops[k][j] > tol) {
        ok = false;
        break;
      }
    }
    if (ok) return static_cast<int>(k) + 1;
  }
  return fixpoint_hops;
}

std::vector<int> DelayCdfResult::diameter_per_delay(double eps) const {
  std::vector<int> out(grid.size(), 0);
  for (std::size_t j = 0; j < grid.size(); ++j) {
    if (cdf_unbounded[j] <= 0.0) continue;  // nothing to achieve
    int k = fixpoint_hops;
    for (std::size_t i = 0; i < cdf_by_hops.size(); ++i) {
      if (cdf_by_hops[i][j] >= (1.0 - eps) * cdf_unbounded[j]) {
        k = static_cast<int>(i) + 1;
        break;
      }
    }
    out[j] = k;
  }
  return out;
}

DelayCdfResult compute_delay_cdf(const TemporalGraph& graph,
                                 const DelayCdfOptions& options) {
  if (options.grid.empty())
    throw std::invalid_argument("compute_delay_cdf: empty grid");
  if (options.max_hops < 1)
    throw std::invalid_argument("compute_delay_cdf: max_hops must be >= 1");
  const Windows w = resolve_windows(graph, options);

  std::vector<NodeId> endpoints = options.endpoints;
  if (endpoints.empty()) {
    endpoints.resize(graph.num_nodes());
    for (std::size_t i = 0; i < endpoints.size(); ++i)
      endpoints[i] = static_cast<NodeId>(i);
  }
  for (NodeId n : endpoints) {
    if (n >= graph.num_nodes())
      throw std::invalid_argument("compute_delay_cdf: endpoint out of range");
  }

  // Reusable pool with dynamic source hand-out: expensive sources (dense
  // neighborhoods, long traces) no longer serialize behind a strided
  // static partition. num_threads == 0 reuses the shared pool.
  std::optional<ThreadPool> local_pool;
  if (options.num_threads != 0) local_pool.emplace(options.num_threads);
  ThreadPool& pool = local_pool ? *local_pool : shared_thread_pool();

  std::vector<Partial> partials;
  partials.reserve(pool.num_workers());
  for (unsigned t = 0; t < pool.num_workers(); ++t)
    partials.emplace_back(options.grid, options.max_hops);

  pool.parallel_for(endpoints.size(), [&](std::size_t i, unsigned worker) {
    process_source(graph, endpoints[i], endpoints, w, options.max_hops,
                   options.max_levels, options.engine, partials[worker]);
  });

  Partial total = std::move(partials.front());
  for (std::size_t t = 1; t < partials.size(); ++t) {
    for (int k = 0; k < options.max_hops; ++k)
      total.by_hops[k].merge(partials[t].by_hops[k]);
    total.unbounded.merge(partials[t].unbounded);
    total.fixpoint_hops = std::max(total.fixpoint_hops,
                                   partials[t].fixpoint_hops);
    total.converged = total.converged && partials[t].converged;
    total.stats.merge(partials[t].stats);
  }

  DelayCdfResult result;
  result.grid = options.grid;
  result.cdf_by_hops.reserve(options.max_hops);
  for (int k = 0; k < options.max_hops; ++k)
    result.cdf_by_hops.push_back(total.by_hops[k].cdf());
  result.cdf_unbounded = total.unbounded.cdf();
  result.fixpoint_hops = total.fixpoint_hops;
  result.converged = total.converged;
  result.stats = total.stats;
  result.denominator = total.unbounded.denominator();
  return result;
}

}  // namespace odtn
