#include "core/source_cdf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/simd.hpp"

namespace odtn {
namespace {

void record_fixpoint(SourceCdfPartial& out, int fixpoint, int max_levels) {
  if (fixpoint > max_levels) out.converged = false;
  out.fixpoint_hops = std::max(out.fixpoint_hops, fixpoint);
}

/// One destination's incremental CDF update: retract the pre-change
/// frontier's integration (weight -1) and add the new one's (+1).
///
/// Arena-resident frontiers (kPooled: both versions are SoA spans whose
/// shared pairs are value-identical -- merge_frontier copies doubles
/// verbatim) are first diffed: the common prefix and suffix would be
/// retracted at -1 and re-added at +1 with identical segment arguments,
/// so only the differing middle slice is integrated. Skipping a
/// cancelling +/- pair never changes the exact sum, it only removes two
/// rounding round-trips; the slices stay exact because the suffix is
/// extended by one pair whenever its start boundary (the predecessor's
/// ld) differs between the versions.
///
/// Shared verbatim by the per-source and the batched block drivers --
/// one code path, so their partials agree bit for bit.
void integrate_frontier_delta(const FrontierView& old_f,
                              const FrontierView& new_f, const TimeWindows& w,
                              MeasureCdfAccumulator& acc,
                              std::uint64_t& pairs_integrated) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const double* o_ld = old_f.soa_ld();
  const double* o_ea = old_f.soa_ea();
  const double* n_ld = new_f.soa_ld();
  const double* n_ea = new_f.soa_ea();
  if (o_ld && n_ld) {
    const std::size_t on = old_f.size(), nn = new_f.size();
    const std::size_t match_max = std::min(on, nn);
    // Equal runs are trimmed by the dispatched prefix/suffix scans
    // (util/simd.hpp): vector value-equality compares under AVX2 /
    // SSE4.2, the original 8-wide memcmp block loop on the scalar
    // level -- both return the identical maximal counts.
    const simd::Ops& sops = simd::ops();
    const std::size_t p = sops.equal_prefix2(o_ld, o_ea, n_ld, n_ea, match_max);
    std::size_t s =
        sops.equal_suffix2(o_ld, o_ea, on, n_ld, n_ea, nn, match_max - p);
    if (s > 0) {
      // The first suffix pair's segment starts at its predecessor's
      // ld; if the predecessors differ the pair belongs to the
      // middle. One step suffices: the next suffix pair's
      // predecessor is then itself a matched pair.
      const double ob = on - s > 0 ? o_ld[on - s - 1] : kNegInf;
      const double nb = nn - s > 0 ? n_ld[nn - s - 1] : kNegInf;
      if (ob != nb) --s;
    }
    const double boundary = p > 0 ? o_ld[p - 1] : kNegInf;
    const std::size_t om = on - p - s, nm = nn - p - s;
    if (om + nm > 0) {
      acc.add_delivery_segments(o_ld + p, o_ea + p, om, w.data(), w.size(),
                                -1.0, boundary);
      acc.add_delivery_segments(n_ld + p, n_ea + p, nm, w.data(), w.size(),
                                +1.0, boundary);
    }
    pairs_integrated += om + nm;
  } else {
    for (const auto& [lo, hi] : w) {
      old_f.accumulate_delay_measure(acc, lo, hi, -1.0);
      new_f.accumulate_delay_measure(acc, lo, hi, +1.0);
    }
    pairs_integrated += old_f.size() + new_f.size();
  }
}

void process_source_direct(const TemporalGraph& graph, NodeId src,
                           const std::vector<NodeId>& endpoints,
                           const TimeWindows& w, int max_hops, int max_levels,
                           EngineMode mode, SourceCdfWorker& worker,
                           SourceCdfPartial& out) {
  SingleSourceEngine engine(graph, src, mode);
  const double window_measure = total_window_measure(w);
  auto accumulate = [&](MeasureCdfAccumulator& acc, NodeId dst) {
    const FrontierView f = engine.frontier_view(dst);
    for (const auto& [lo, hi] : w) f.accumulate_delay_measure(acc, lo, hi);
    worker.stats.cdf_pairs_integrated += f.size();
    acc.add_observation_measure(window_measure);
  };
  for (int k = 1; k <= max_hops; ++k) {
    engine.step();  // no-op once at fixpoint; frontiers stay L_inf
    for (NodeId dst : endpoints) {
      if (dst == src) continue;
      accumulate(out.by_hops[k - 1], dst);
    }
  }
  record_fixpoint(out, engine.run_to_fixpoint(max_levels), max_levels);
  for (NodeId dst : endpoints) {
    if (dst == src) continue;
    accumulate(out.unbounded, dst);
  }
  worker.stats.merge(engine.stats());
}

void process_source_incremental(const TemporalGraph& graph, NodeId src,
                                const std::vector<NodeId>& endpoints,
                                const std::vector<std::uint8_t>& is_endpoint,
                                const TimeWindows& w, int max_hops,
                                int max_levels, EngineMode mode,
                                SourceCdfWorker& worker,
                                SourceCdfPartial& out) {
  if (!worker.engine) {
    worker.engine.emplace(graph, src, mode);
    worker.engine->track_changes(true);
  } else {
    worker.engine->reset(src);
  }
  SingleSourceEngine& engine = *worker.engine;

  // Observation measure for every (src, dst) pair of this source parks
  // in the hop-1 accumulator; prefix_merge propagates it to every hop
  // budget and to `unbounded`.
  out.by_hops[0].add_observation_measure(
      total_window_measure(w) * static_cast<double>(endpoints.size() - 1));

  // After each level, only destinations whose frontier changed move any
  // CDF: retract the pre-change frontier's integration and add the new
  // one (integrate_frontier_delta above). Everything else is carried
  // over by the finalization prefix sum.
  auto apply_level_deltas = [&](MeasureCdfAccumulator& acc) {
    const std::vector<NodeId>& changed = engine.last_changed();
    for (std::size_t i = 0; i < changed.size(); ++i) {
      const NodeId dst = changed[i];
      if (dst == src || !is_endpoint[dst]) continue;
      integrate_frontier_delta(engine.previous_frontier_view(i),
                               engine.frontier_view(dst), w, acc,
                               worker.stats.cdf_pairs_integrated);
    }
  };
  for (int k = 1; k <= max_hops; ++k) {
    engine.step();  // no-op once at fixpoint: last_changed() is empty
    apply_level_deltas(out.by_hops[k - 1]);
  }
  // Levels past the last budget feed the unbounded accumulator, which
  // finalization chains onto by_hops[max_hops - 1] -- reaching the
  // fixpoint costs only the residual deltas, never a full re-pass.
  while (!engine.at_fixpoint() && engine.hops() < max_levels) {
    engine.step();
    apply_level_deltas(out.unbounded);
  }
  record_fixpoint(out, engine.at_fixpoint() ? engine.hops() : max_levels + 1,
                  max_levels);
}

}  // namespace

TimeWindows resolve_cdf_windows(const TemporalGraph& graph,
                                const DelayCdfOptions& options) {
  if (!options.windows.empty()) {
    double prev = -std::numeric_limits<double>::infinity();
    for (const auto& [lo, hi] : options.windows) {
      if (!(lo <= hi) || lo < prev)
        throw std::invalid_argument(
            "compute_delay_cdf: windows must be disjoint and increasing");
      prev = hi;
    }
    return options.windows;
  }
  double lo = options.t_lo, hi = options.t_hi;
  if (std::isnan(lo)) lo = graph.start_time();
  if (std::isnan(hi)) hi = graph.end_time();
  if (!(lo <= hi))
    throw std::invalid_argument("compute_delay_cdf: empty start-time window");
  return {{lo, hi}};
}

double total_window_measure(const TimeWindows& windows) {
  double total = 0.0;
  for (const auto& [lo, hi] : windows) total += hi - lo;
  return total;
}

std::vector<NodeId> resolve_cdf_endpoints(const TemporalGraph& graph,
                                          const DelayCdfOptions& options) {
  std::vector<NodeId> endpoints = options.endpoints;
  if (endpoints.empty()) {
    endpoints.resize(graph.num_nodes());
    for (std::size_t i = 0; i < endpoints.size(); ++i)
      endpoints[i] = static_cast<NodeId>(i);
  }
  for (NodeId n : endpoints) {
    if (n >= graph.num_nodes())
      throw std::invalid_argument("compute_delay_cdf: endpoint out of range");
  }
  return endpoints;
}

bool use_incremental_accumulation(const DelayCdfOptions& options) {
  const bool incremental =
      options.accumulation == CdfAccumulation::kIncremental ||
      (options.accumulation == CdfAccumulation::kAuto &&
       options.engine != EngineMode::kLevelSweep);
  if (incremental && options.engine == EngineMode::kLevelSweep)
    throw std::invalid_argument(
        "compute_delay_cdf: incremental accumulation requires a delta "
        "engine (kPooled or kIndexed)");
  return incremental;
}

SourceCdfPartial::SourceCdfPartial(const std::vector<double>& grid,
                                   int max_hops)
    : unbounded(grid) {
  by_hops.reserve(max_hops);
  for (int k = 0; k < max_hops; ++k) by_hops.emplace_back(grid);
}

void SourceCdfPartial::clear() {
  for (MeasureCdfAccumulator& acc : by_hops) acc.clear();
  unbounded.clear();
  fixpoint_hops = 0;
  converged = true;
}

void SourceCdfPartial::merge_from(const SourceCdfPartial& other) {
  for (std::size_t k = 0; k < by_hops.size(); ++k)
    by_hops[k].merge(other.by_hops[k]);
  unbounded.merge(other.unbounded);
  fixpoint_hops = std::max(fixpoint_hops, other.fixpoint_hops);
  converged = converged && other.converged;
}

EngineStats SourceCdfWorker::take_stats() const {
  EngineStats out = stats;
  if (engine) out.merge(engine->stats());
  return out;
}

void process_source(const TemporalGraph& graph, NodeId src,
                    const std::vector<NodeId>& endpoints,
                    const std::vector<std::uint8_t>& is_endpoint,
                    const TimeWindows& w, int max_hops, int max_levels,
                    EngineMode mode, bool incremental,
                    SourceCdfWorker& worker, SourceCdfPartial& out) {
  if (incremental)
    process_source_incremental(graph, src, endpoints, is_endpoint, w,
                               max_hops, max_levels, mode, worker, out);
  else
    process_source_direct(graph, src, endpoints, w, max_hops, max_levels,
                          mode, worker, out);
}

EngineStats BatchedCdfWorker::take_stats() const {
  EngineStats out = stats;
  if (engine) out.merge(engine->stats());
  return out;
}

void process_source_block(const TemporalGraph& graph,
                          std::span<const NodeId> block,
                          const std::vector<NodeId>& endpoints,
                          const std::vector<std::uint8_t>& is_endpoint,
                          const TimeWindows& w, int max_hops, int max_levels,
                          BatchedCdfWorker& worker,
                          std::vector<SourceCdfPartial>& outs) {
  if (!worker.engine)
    worker.engine.emplace(graph, block);
  else
    worker.engine->reset(block);
  BatchedSourceEngine& engine = *worker.engine;
  const std::size_t lanes = engine.num_lanes();

  // Observation measure for every (src, dst) pair of each lane parks in
  // its hop-1 accumulator, as in the per-source incremental path.
  const double obs = total_window_measure(w) *
                     static_cast<double>(endpoints.size() - 1);
  for (std::size_t l = 0; l < lanes; ++l)
    outs[l].by_hops[0].add_observation_measure(obs);

  auto apply_lane_deltas = [&](std::size_t l, MeasureCdfAccumulator& acc) {
    const NodeId src = engine.source(l);
    const std::vector<NodeId>& changed = engine.last_changed(l);
    for (std::size_t i = 0; i < changed.size(); ++i) {
      const NodeId dst = changed[i];
      if (dst == src || !is_endpoint[dst]) continue;
      integrate_frontier_delta(engine.previous_frontier_view(l, i),
                               engine.frontier_view(l, dst), w, acc,
                               worker.stats.cdf_pairs_integrated);
    }
  };
  // The drive loop mirrors process_source_incremental per lane: a lane
  // not yet at its fixpoint has advanced at every executed level, so its
  // hop count equals engine.steps() and the shared loop bounds apply the
  // per-source conditions to every live lane at once; fixpoint lanes are
  // no-ops with empty change lists, exactly like a per-source engine
  // stepped past its fixpoint.
  for (int k = 1; k <= max_hops; ++k) {
    engine.step();
    for (std::size_t l = 0; l < lanes; ++l)
      apply_lane_deltas(l, outs[l].by_hops[k - 1]);
  }
  while (!engine.all_at_fixpoint() && engine.steps() < max_levels) {
    engine.step();
    for (std::size_t l = 0; l < lanes; ++l)
      apply_lane_deltas(l, outs[l].unbounded);
  }
  for (std::size_t l = 0; l < lanes; ++l)
    record_fixpoint(
        outs[l],
        engine.lane_at_fixpoint(l) ? engine.lane_hops(l) : max_levels + 1,
        max_levels);
}

OrderedCdfFolder::OrderedCdfFolder(const std::vector<double>& grid,
                                   int max_hops, std::size_t count)
    : total_(grid, max_hops), count_(count) {}

void OrderedCdfFolder::submit(std::size_t index,
                              const SourceCdfPartial& partial) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index != next_) {
    pending_.emplace(index, partial);
    return;
  }
  total_.merge_from(partial);
  ++next_;
  // Drain buffered successors now contiguous with the fold front.
  auto it = pending_.begin();
  while (it != pending_.end() && it->first == next_) {
    total_.merge_from(it->second);
    ++next_;
    it = pending_.erase(it);
  }
}

SourceCdfPartial& OrderedCdfFolder::total() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (next_ != count_ || !pending_.empty())
    throw std::logic_error("OrderedCdfFolder: fold incomplete");
  return total_;
}

DelayCdfResult finalize_delay_cdf(SourceCdfPartial& total,
                                  const EngineStats& stats,
                                  const DelayCdfOptions& options,
                                  bool incremental) {
  if (incremental) {
    // Reconstruct CDF_k = CDF_{k-1} + delta_k across the hop budgets and
    // chain the past-max_hops deltas onto the last budget for the
    // unbounded CDF. Folding the per-source partials first is equivalent
    // (both are sums over the same segment set).
    MeasureCdfAccumulator::prefix_merge(total.by_hops);
    total.unbounded.merge(total.by_hops.back());
  }

  DelayCdfResult result;
  result.grid = options.grid;
  result.cdf_by_hops.reserve(options.max_hops);
  for (int k = 0; k < options.max_hops; ++k)
    result.cdf_by_hops.push_back(total.by_hops[k].cdf());
  result.cdf_unbounded = total.unbounded.cdf();
  if (incremental) {
    // The prefix-reconstructed CDFs are mathematically monotone in the
    // hop budget, but each budget's numerator carries its own rounding,
    // so adjacent budgets can invert by ~1 ulp where the delta is zero.
    // Clamp to restore the exact invariant consumers rely on.
    for (int k = 1; k < options.max_hops; ++k)
      for (std::size_t j = 0; j < result.grid.size(); ++j)
        result.cdf_by_hops[k][j] =
            std::max(result.cdf_by_hops[k][j], result.cdf_by_hops[k - 1][j]);
    for (std::size_t j = 0; j < result.grid.size(); ++j)
      result.cdf_unbounded[j] =
          std::max(result.cdf_unbounded[j], result.cdf_by_hops.back()[j]);
  }
  result.fixpoint_hops = total.fixpoint_hops;
  result.converged = total.converged;
  result.stats = stats;
  result.denominator = total.unbounded.denominator();
  return result;
}

}  // namespace odtn
