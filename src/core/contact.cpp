#include "core/contact.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <utility>

namespace odtn {

bool is_valid_contact(const Contact& c) noexcept {
  return c.u != kInvalidNode && c.v != kInvalidNode && c.u != c.v &&
         std::isfinite(c.begin) && std::isfinite(c.end) && c.begin <= c.end;
}

bool contact_less(const Contact& a, const Contact& b) noexcept {
  return std::tie(a.begin, a.end, a.u, a.v) <
         std::tie(b.begin, b.end, b.u, b.v);
}

NodeId max_node_id(const std::vector<Contact>& contacts) noexcept {
  NodeId max_id = kInvalidNode;
  for (const Contact& c : contacts) {
    const NodeId hi = std::max(c.u, c.v);
    max_id = max_id == kInvalidNode ? hi : std::max(max_id, hi);
  }
  return max_id;
}

std::size_t count_canonical_order_violations(
    const std::vector<Contact>& contacts) noexcept {
  std::size_t violations = 0;
  for (std::size_t i = 1; i < contacts.size(); ++i)
    if (contact_less(contacts[i], contacts[i - 1])) ++violations;
  return violations;
}

std::vector<Contact> merge_overlapping_contacts(std::vector<Contact> contacts) {
  // Group by unordered pair, then sweep each pair's contacts in time order.
  std::sort(contacts.begin(), contacts.end(),
            [](const Contact& a, const Contact& b) {
              const auto ka = std::minmax(a.u, a.v);
              const auto kb = std::minmax(b.u, b.v);
              return std::tie(ka.first, ka.second, a.begin, a.end) <
                     std::tie(kb.first, kb.second, b.begin, b.end);
            });
  std::vector<Contact> merged;
  merged.reserve(contacts.size());
  for (const Contact& c : contacts) {
    if (!merged.empty()) {
      Contact& last = merged.back();
      const auto kl = std::minmax(last.u, last.v);
      const auto kc = std::minmax(c.u, c.v);
      if (kl == kc && c.begin <= last.end) {
        last.end = std::max(last.end, c.end);
        continue;
      }
    }
    merged.push_back(c);
  }
  std::sort(merged.begin(), merged.end(), contact_less);
  return merged;
}

}  // namespace odtn
