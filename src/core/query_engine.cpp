#include "core/query_engine.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/sharded_engine.hpp"
#include "util/thread_pool.hpp"

namespace odtn {
namespace {

void append_bytes(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

template <typename T>
void append_pod(std::string& out, T v) {
  append_bytes(out, &v, sizeof v);
}

}  // namespace

QueryEngine::QueryEngine(TemporalGraph graph, QueryEngineOptions options,
                         std::shared_ptr<ServeCache> cache)
    : graph_(std::move(graph)), options_(std::move(options)) {
  if (options_.grid.empty())
    throw std::invalid_argument("QueryEngine: empty delay grid");
  if (options_.max_hops < 1)
    throw std::invalid_argument("QueryEngine: max_hops must be >= 1");
  if (options_.source_batch < 1)
    throw std::invalid_argument("QueryEngine: source_batch must be >= 1");
  cache_ = cache ? std::move(cache)
                 : std::make_shared<ServeCache>(options_.cache_bytes,
                                                options_.cache_shards);
  rebuild_key_prefix();
  all_nodes_.resize(graph_.num_nodes());
  std::iota(all_nodes_.begin(), all_nodes_.end(), NodeId{0});
  is_endpoint_.assign(graph_.num_nodes(), 1);
}

// Everything that determines a partial's bytes, once per engine state.
// The tail appended per query (source + windows) is fixed-layout, so two
// keys agree iff every ingredient agrees -- no framing ambiguity. The
// graph epoch participates so an ingest invalidates every earlier key:
// stale partials become unreachable and age out of the LRU.
void QueryEngine::rebuild_key_prefix() {
  key_prefix_ = graph_transform_key(graph_);
  key_prefix_ += ':';
  append_pod(key_prefix_, graph_.epoch());
  append_pod(key_prefix_, static_cast<std::uint8_t>(options_.engine));
  append_pod(key_prefix_,
             static_cast<std::uint8_t>(options_.accumulation));
  append_pod(key_prefix_, static_cast<std::int32_t>(options_.max_hops));
  append_pod(key_prefix_, static_cast<std::int32_t>(options_.max_levels));
  // The full grid by bit pattern, not a hash: a hash collision would
  // silently fold a partial integrated on a different grid.
  append_pod(key_prefix_, static_cast<std::uint64_t>(options_.grid.size()));
  append_bytes(key_prefix_, options_.grid.data(),
               options_.grid.size() * sizeof(double));
}

std::uint64_t QueryEngine::ingest(std::span<const Contact> batch) {
  const std::uint64_t epoch = graph_.append_contacts(batch);
  rebuild_key_prefix();
  return epoch;
}

std::size_t QueryEngine::cached_partial_bytes() const noexcept {
  return (static_cast<std::size_t>(options_.max_hops) + 1) *
             (2 * (options_.grid.size() + 1) + 1) * sizeof(double) +
         64;
}

std::string QueryEngine::query_key(NodeId source,
                                   const TimeWindows& windows) const {
  std::string key = key_prefix_;
  append_pod(key, static_cast<std::uint32_t>(source));
  for (const auto& [lo, hi] : windows) {
    append_pod(key, lo);
    append_pod(key, hi);
  }
  return key;
}

DelayCdfOptions QueryEngine::cdf_options(double t_lo, double t_hi) const {
  DelayCdfOptions o;
  o.grid = options_.grid;
  o.max_hops = options_.max_hops;
  o.max_levels = options_.max_levels;
  o.t_lo = t_lo;
  o.t_hi = t_hi;
  o.num_threads = options_.num_threads;
  o.engine = options_.engine;
  o.accumulation = options_.accumulation;
  o.source_batch = options_.source_batch;
  return o;
}

DelayCdfResult QueryEngine::run(const std::vector<NodeId>& sources,
                                const DelayCdfOptions& options) {
  const TimeWindows w = resolve_cdf_windows(graph_, options);
  const bool incremental = use_incremental_accumulation(options);
  const std::size_t partial_cost = cached_partial_bytes();

  std::optional<ThreadPool> local_pool;
  if (options.num_threads != 0) local_pool.emplace(options.num_threads);
  ThreadPool& pool = local_pool ? *local_pool : shared_thread_pool();

  struct CacheCounters {
    std::uint64_t hits = 0, misses = 0, evictions = 0;
  };
  std::vector<CacheCounters> counters(pool.num_workers());
  OrderedCdfFolder folder(options.grid, options.max_hops, sources.size());

  // Batched cold path: blocks of consecutive sources probe the cache
  // first; only the misses within a block run, together, through one
  // lockstep multi-source engine. Each partial -- hit or miss -- is
  // submitted at its ORIGINAL source position, so the canonical fold
  // (and hence every answer bit) is unchanged for any hit subset and
  // any batch size.
  const std::size_t batch = std::min<std::size_t>(
      static_cast<std::size_t>(options.source_batch),
      std::max<std::size_t>(sources.size(), 1));
  if (batch > 1) {
    if (options.engine != EngineMode::kPooled || !incremental)
      throw std::invalid_argument(
          "QueryEngine: batched execution (source_batch > 1) requires the "
          "pooled engine with incremental accumulation");
    const std::size_t num_blocks = (sources.size() + batch - 1) / batch;
    std::vector<BatchedCdfWorker> workers(pool.num_workers());
    std::vector<std::vector<SourceCdfPartial>> scratch(pool.num_workers());
    pool.parallel_for(num_blocks, [&](std::size_t b, unsigned worker) {
      const std::size_t lo = b * batch;
      const std::size_t width = std::min(batch, sources.size() - lo);
      std::vector<NodeId> miss_nodes;
      std::vector<std::size_t> miss_pos;
      std::vector<std::string> miss_keys;
      for (std::size_t j = 0; j < width; ++j) {
        std::string key = query_key(sources[lo + j], w);
        if (const std::shared_ptr<const SourceCdfPartial> hit =
                cache_->get(key)) {
          ++counters[worker].hits;
          folder.submit(lo + j, *hit);
          continue;
        }
        ++counters[worker].misses;
        miss_nodes.push_back(sources[lo + j]);
        miss_pos.push_back(lo + j);
        miss_keys.push_back(std::move(key));
      }
      if (miss_nodes.empty()) return;
      std::vector<SourceCdfPartial>& outs = scratch[worker];
      while (outs.size() < miss_nodes.size())
        outs.emplace_back(options.grid, options.max_hops);
      for (std::size_t j = 0; j < miss_nodes.size(); ++j) outs[j].clear();
      process_source_block(graph_, miss_nodes, all_nodes_, is_endpoint_, w,
                           options.max_hops, options.max_levels,
                           workers[worker], outs);
      for (std::size_t j = 0; j < miss_nodes.size(); ++j) {
        counters[worker].evictions += cache_->put(
            miss_keys[j], std::make_shared<SourceCdfPartial>(outs[j]),
            partial_cost + miss_keys[j].size());
        folder.submit(miss_pos[j], outs[j]);
      }
    });
    EngineStats stats;
    for (const BatchedCdfWorker& worker : workers)
      stats.merge(worker.take_stats());
    for (const CacheCounters& c : counters) {
      stats.cache_hits += c.hits;
      stats.cache_misses += c.misses;
      stats.cache_evictions += c.evictions;
    }
    return finalize_delay_cdf(folder.total(), stats, options, incremental);
  }

  // Same shape as compute_delay_cdf's driver (core/diameter.cpp), with
  // a cache probe in front of process_source. Hits and misses all land
  // in the folder in ascending source order, so mixing them changes no
  // bit of the answer -- see the header's contract.
  std::vector<SourceCdfWorker> workers(pool.num_workers());
  std::vector<SourceCdfPartial> scratch;
  scratch.reserve(pool.num_workers());
  for (unsigned t = 0; t < pool.num_workers(); ++t)
    scratch.emplace_back(options.grid, options.max_hops);

  pool.parallel_for(sources.size(), [&](std::size_t i, unsigned worker) {
    const std::string key = query_key(sources[i], w);
    if (const std::shared_ptr<const SourceCdfPartial> hit = cache_->get(key)) {
      ++counters[worker].hits;
      folder.submit(i, *hit);
      return;
    }
    ++counters[worker].misses;
    SourceCdfPartial& partial = scratch[worker];
    partial.clear();
    process_source(graph_, sources[i], all_nodes_, is_endpoint_, w,
                   options.max_hops, options.max_levels, options.engine,
                   incremental, workers[worker], partial);
    counters[worker].evictions +=
        cache_->put(key, std::make_shared<SourceCdfPartial>(partial),
                    partial_cost + key.size());
    folder.submit(i, partial);
  });

  EngineStats stats;
  for (const SourceCdfWorker& worker : workers) stats.merge(worker.take_stats());
  for (const CacheCounters& c : counters) {
    stats.cache_hits += c.hits;
    stats.cache_misses += c.misses;
    stats.cache_evictions += c.evictions;
  }
  return finalize_delay_cdf(folder.total(), stats, options, incremental);
}

DelayCdfResult QueryEngine::source_cdf(NodeId source, double t_lo,
                                       double t_hi) {
  if (source >= graph_.num_nodes())
    throw std::invalid_argument("QueryEngine::source_cdf: bad source");
  return run({source}, cdf_options(t_lo, t_hi));
}

DelayCdfResult QueryEngine::all_pairs(double t_lo, double t_hi) {
  return run(all_nodes_, cdf_options(t_lo, t_hi));
}

std::size_t QueryEngine::reachable_count(NodeId source, double t) const {
  if (source >= graph_.num_nodes())
    throw std::invalid_argument("QueryEngine::reachable_count: bad source");
  SingleSourceEngine engine(graph_, source, options_.engine);
  engine.run_to_fixpoint(options_.max_levels);
  std::size_t reached = 0;
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
    if (n == source) continue;
    if (engine.frontier_view(n).deliver_at(t) < 1e300) ++reached;
  }
  return reached;
}

JourneyOptima QueryEngine::journey(NodeId source, NodeId destination) const {
  if (source >= graph_.num_nodes() || destination >= graph_.num_nodes())
    throw std::invalid_argument("QueryEngine::journey: bad node id");
  return compute_journeys(graph_, source, options_.max_levels)[destination];
}

}  // namespace odtn
