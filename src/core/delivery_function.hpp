// DeliveryFunction: the concise representation of ALL delay-optimal paths
// between one (source, destination) pair (paper §4.3-4.4, Figure 5).
//
// The function del(t) = min{ max(t, EA_k) : t <= LD_k } is fully described
// by the subset of (LD, EA) pairs satisfying the paper's condition (4):
// with pairs sorted by increasing LD, keep the k-th pair iff
// EA_k = min{ EA_l : l >= k }. The surviving list is a Pareto frontier:
// both LD and EA strictly increase along it, and each surviving pair is
// exactly one delay-optimal path (one discontinuity of del).
#pragma once

#include <cstddef>
#include <vector>

#include "core/path_pair.hpp"
#include "stats/measure_cdf.hpp"

namespace odtn {

/// Pareto frontier of (LD, EA) pairs for one source-destination pair.
///
/// Invariant: pairs are sorted with strictly increasing ld AND strictly
/// increasing ea (later departure always costs later arrival).
class DeliveryFunction {
 public:
  DeliveryFunction() = default;

  /// Inserts a candidate pair, keeping the frontier minimal.
  /// Returns true iff the candidate was kept (it was not dominated);
  /// pairs the candidate dominates are removed. Amortized O(log F) plus
  /// the number of removed pairs.
  bool insert(PathPair p);

  /// True iff inserting `p` would be a no-op (an existing pair departs no
  /// earlier... i.e. some kept pair dominates `p`).
  bool is_dominated(const PathPair& p) const noexcept;

  /// Optimal delivery time del(t) for a message created at `t`;
  /// +infinity when no path departs at or after `t`.
  double deliver_at(double t) const noexcept;

  /// Optimal delay del(t) - t (0 when the pair is contemporaneously
  /// connected at t; +infinity when unreachable).
  double delay(double t) const noexcept;

  /// Number of delay-optimal paths (frontier size).
  std::size_t size() const noexcept { return pairs_.size(); }
  bool empty() const noexcept { return pairs_.empty(); }

  /// Removes every pair (capacity is kept, for reusable scratch buffers).
  void clear() noexcept { pairs_.clear(); }

  const std::vector<PathPair>& pairs() const noexcept { return pairs_; }

  /// Integrates this function's delay distribution for start times
  /// uniform on [t_lo, t_hi] into `acc` (numerator only; the caller adds
  /// the (t_hi - t_lo) observation measure), scaled by `weight`. Exact,
  /// no sampling. weight = -1 retracts an earlier weight = +1
  /// integration of the same frontier exactly (see
  /// MeasureCdfAccumulator::add_segment), which is how the incremental
  /// all-pairs scheme swaps a changed destination's old frontier for its
  /// new one.
  void accumulate_delay_measure(MeasureCdfAccumulator& acc, double t_lo,
                                double t_hi, double weight = 1.0) const;

  /// Latest useful departure time (+infinity never occurs; -infinity when
  /// empty).
  double last_departure() const noexcept;

  friend bool operator==(const DeliveryFunction&,
                         const DeliveryFunction&) = default;

 private:
  std::vector<PathPair> pairs_;
};

/// Reference implementation of del(t) straight from Eq. (3), evaluated
/// over an arbitrary (unpruned) pair list. Used by tests to validate the
/// pruned representation.
double deliver_at_bruteforce(const std::vector<PathPair>& pairs, double t);

}  // namespace odtn
