// DeliveryFunction: the concise representation of ALL delay-optimal paths
// between one (source, destination) pair (paper §4.3-4.4, Figure 5).
//
// The function del(t) = min{ max(t, EA_k) : t <= LD_k } is fully described
// by the subset of (LD, EA) pairs satisfying the paper's condition (4):
// with pairs sorted by increasing LD, keep the k-th pair iff
// EA_k = min{ EA_l : l >= k }. The surviving list is a Pareto frontier:
// both LD and EA strictly increase along it, and each surviving pair is
// exactly one delay-optimal path (one discontinuity of del).
#pragma once

#include <cstddef>
#include <vector>

#include "core/path_pair.hpp"
#include "stats/measure_cdf.hpp"

namespace odtn {

/// Non-owning read view of one Pareto frontier, over either layout the
/// repository uses: the seed array-of-structs (DeliveryFunction's
/// std::vector<PathPair>) or the pooled engine's structure-of-arrays
/// arena spans. The layout branch inside each accessor is perfectly
/// predicted (a given view never changes layout), so views are the
/// uniform cheap accessor for engine consumers; the pooled hot kernels
/// bypass views and touch the SoA lanes directly.
class FrontierView {
 public:
  FrontierView() = default;

  /// SoA view: parallel ld/ea arrays of length n, both ascending.
  FrontierView(const double* ld, const double* ea, std::size_t n) noexcept
      : ld_(ld), ea_(ea), n_(n) {}

  /// AoS view over a (sorted, pruned) pair list.
  explicit FrontierView(const std::vector<PathPair>& pairs) noexcept
      : aos_(pairs.data()), n_(pairs.size()) {}

  std::size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  double ld(std::size_t i) const noexcept {
    return aos_ ? aos_[i].ld : ld_[i];
  }
  double ea(std::size_t i) const noexcept {
    return aos_ ? aos_[i].ea : ea_[i];
  }

  /// Raw SoA lanes, nullptr when the view wraps an AoS pair list. The
  /// incremental CDF scheme uses these to diff two arena-resident
  /// frontier versions without materializing either.
  const double* soa_ld() const noexcept { return aos_ ? nullptr : ld_; }
  const double* soa_ea() const noexcept { return aos_ ? nullptr : ea_; }
  PathPair pair(std::size_t i) const noexcept { return {ld(i), ea(i)}; }

  /// Optimal delivery time del(t); +infinity when no pair departs at or
  /// after `t`. Same contract as DeliveryFunction::deliver_at.
  double deliver_at(double t) const noexcept;

  /// Latest useful departure time (-infinity when empty).
  double last_departure() const noexcept;

  /// Exact delay-distribution integration over start times uniform on
  /// [t_lo, t_hi]; same contract as
  /// DeliveryFunction::accumulate_delay_measure. SoA views stream both
  /// lanes straight into MeasureCdfAccumulator::add_delivery_segments.
  void accumulate_delay_measure(MeasureCdfAccumulator& acc, double t_lo,
                                double t_hi, double weight = 1.0) const;

 private:
  const double* ld_ = nullptr;
  const double* ea_ = nullptr;
  const PathPair* aos_ = nullptr;
  std::size_t n_ = 0;
};

/// Pareto frontier of (LD, EA) pairs for one source-destination pair.
///
/// Invariant: pairs are sorted with strictly increasing ld AND strictly
/// increasing ea (later departure always costs later arrival).
class DeliveryFunction {
 public:
  DeliveryFunction() = default;

  /// Inserts a candidate pair, keeping the frontier minimal.
  /// Returns true iff the candidate was kept (it was not dominated);
  /// pairs the candidate dominates are removed. Amortized O(log F) plus
  /// the number of removed pairs.
  bool insert(PathPair p);

  /// True iff inserting `p` would be a no-op (an existing pair departs no
  /// earlier... i.e. some kept pair dominates `p`).
  bool is_dominated(const PathPair& p) const noexcept;

  /// Optimal delivery time del(t) for a message created at `t`;
  /// +infinity when no path departs at or after `t`.
  double deliver_at(double t) const noexcept;

  /// Optimal delay del(t) - t (0 when the pair is contemporaneously
  /// connected at t; +infinity when unreachable).
  double delay(double t) const noexcept;

  /// Number of delay-optimal paths (frontier size).
  std::size_t size() const noexcept { return pairs_.size(); }
  bool empty() const noexcept { return pairs_.empty(); }

  /// Removes every pair (capacity is kept, for reusable scratch buffers).
  void clear() noexcept { pairs_.clear(); }

  /// Replaces the contents with an already-canonical frontier (strictly
  /// ascending in both lanes, e.g. a stored frontier version). O(n) copy
  /// with no dominance checks -- the caller vouches for the invariant
  /// (asserted in debug builds). Capacity is reused like clear().
  void assign_canonical(const FrontierView& v);

  /// Ensures capacity for at least `n` pairs without changing contents.
  void reserve(std::size_t n) { pairs_.reserve(n); }

  const std::vector<PathPair>& pairs() const noexcept { return pairs_; }

  /// Read view over this frontier's pair list. Invalidated by any
  /// mutation.
  FrontierView view() const noexcept { return FrontierView(pairs_); }

  /// Integrates this function's delay distribution for start times
  /// uniform on [t_lo, t_hi] into `acc` (numerator only; the caller adds
  /// the (t_hi - t_lo) observation measure), scaled by `weight`. Exact,
  /// no sampling. weight = -1 retracts an earlier weight = +1
  /// integration of the same frontier exactly (see
  /// MeasureCdfAccumulator::add_segment), which is how the incremental
  /// all-pairs scheme swaps a changed destination's old frontier for its
  /// new one.
  void accumulate_delay_measure(MeasureCdfAccumulator& acc, double t_lo,
                                double t_hi, double weight = 1.0) const;

  /// Latest useful departure time (+infinity never occurs; -infinity when
  /// empty).
  double last_departure() const noexcept;

  friend bool operator==(const DeliveryFunction&,
                         const DeliveryFunction&) = default;

 private:
  /// First index whose ld is >= x -- the one binary search shared by
  /// is_dominated / insert / deliver_at (the pair there has the minimal
  /// ea among all pairs usable at departure x).
  std::size_t lower_bound_ld(double x) const noexcept;

  std::vector<PathPair> pairs_;
};

/// Materializes a view (any layout) into an owning DeliveryFunction with
/// identical pair list.
DeliveryFunction materialize(const FrontierView& view);

/// Reference implementation of del(t) straight from Eq. (3), evaluated
/// over an arbitrary (unpruned) pair list. Used by tests to validate the
/// pruned representation.
double deliver_at_bruteforce(const std::vector<PathPair>& pairs, double t);

}  // namespace odtn
