// Incremental all-pairs recompute for live contact ingestion (ROADMAP
// north star; streaming template: Whitbeck et al., Temporal Reachability
// Graphs, arXiv:1207.7103).
//
// The batch pipeline recomputes every source's hop-level DP from scratch
// whenever the trace changes. A live monitor appends contacts in time
// order, and canonical order makes appended work LOCAL: a new contact
// [begin, end] arrives with the largest begin seen so far, so it can only
// extend journeys whose earliest arrival is <= end -- the engine
// watermark. IncrementalSourceDp therefore keeps, per source and node,
// the full HISTORY of that node's Pareto frontier as a version list
// (one version per productive hop level, exactly the levels where
// L_k != L_{k-1}), and per append epoch advances only
//
//   - extensions of the previous level's CHANGED pairs (the PR 3 delta
//     idea, persisted across epochs instead of within one run), and
//   - extensions of existing frontiers through the NEW contacts,
//
// so epoch cost is O(new contacts x affected frontiers), not O(trace).
//
// Frontier pairs are exact copies/min/max of contact endpoints and the
// version merge is plain Pareto-set maintenance, so after any sequence
// of epochs every stored frontier is BIT-identical to the one a cold
// SingleSourceEngine computes on the concatenated trace. The per-epoch
// CDF emission then replays process_source's direct integration order
// (same frontier views, same window loop, same fold), which makes each
// epoch's DelayCdfResult bit-identical to a cold compute_delay_cdf with
// CdfAccumulation::kDirect on the trace so far. bench_perf_live gates
// both the identity and the >= 3x epoch-vs-cold cost advantage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/delivery_function.hpp"
#include "core/diameter.hpp"
#include "core/source_cdf.hpp"
#include "core/temporal_graph.hpp"

namespace odtn {

/// Persistent per-source DP state: each node's frontier history as a
/// version list indexed by hop level. frontier_at(d, k) is L_k(src, d)
/// for any k, bit-identical to a cold engine's frontier at that level.
class IncrementalSourceDp {
 public:
  /// `level_cap` bounds the DP depth, matching the cold driver's
  /// max(max_hops, max_levels) (levels beyond it are never inspected).
  IncrementalSourceDp(NodeId source, std::size_t num_nodes, int level_cap);

  /// Advances the DP over the contacts appended at [old_count, end) of
  /// `graph` (which must already contain them; canonical order is the
  /// graph's append invariant). Returns true iff any frontier at any
  /// level changed -- i.e. any cached integration of this source is now
  /// stale.
  bool apply(const TemporalGraph& graph, std::size_t old_count);

  /// Seeds the version lists from a cold pooled engine run over `graph`:
  /// one version per (node, productive level), straight from the
  /// engine's per-level change tracking. Bit-identical to apply()ing the
  /// same contacts -- the pooled engine computes the same frontiers --
  /// but at batch DP cost, so the first (bulk/backlog) batch of a live
  /// session loads at cold-run speed instead of through the epoch
  /// machinery. Only valid while the DP is empty (no batch applied yet).
  void bootstrap(const TemporalGraph& graph);

  /// One productive-level version straight from a frontier view: the
  /// feed the batched bootstrap uses per lane (core/batched_engine.hpp
  /// reproduces the pooled engine's per-level change sets bit for bit).
  /// Same contract as bootstrap(): levels must ascend per node and the
  /// DP must still be empty.
  void append_bootstrap_version(NodeId node, int level,
                                const FrontierView& frontier);

  /// L_k(source, node) as a zero-copy SoA view (levels above the cap
  /// clamp to the cap; the fixpoint frontier for converged sources).
  FrontierView frontier_at(NodeId node, int level) const;

  /// Largest productive level across nodes: L_k == L_{k-1} for every
  /// k > max_version_level(). Capped at level_cap, mirroring what a
  /// cold bounded run can observe.
  int max_version_level() const noexcept { return max_level_; }
  int level_cap() const noexcept { return cap_; }
  NodeId source() const noexcept { return source_; }

 private:
  /// One productive level's frontier, SoA so frontier_at can hand the
  /// CDF integration the same lane layout as the pooled engine's arena.
  struct Version {
    int level = 0;
    std::vector<double> ld;
    std::vector<double> ea;
  };
  struct NodeState {
    std::vector<Version> versions;  // ascending level, one per change
  };
  /// Pre-epoch state of one level this epoch modified: the displaced
  /// version (buffer-swapped out of the live list, so stashing is O(1)
  /// and the displaced slot inherits a recycled buffer to refill) or a
  /// tombstone recording that the level had no version before.
  struct SavedVersion {
    int level = 0;
    bool existed = false;
    Version version;
  };
  /// Per-epoch working state of one node (recycled across epochs).
  /// `saved` slots are reused via `saved_count` rather than cleared, so
  /// steady-state epochs allocate nothing in the stash path.
  struct Scratch {
    bool touched = false;  // has stashes to reset next epoch
    bool active = false;   // working initialized at the current level
    std::size_t saved_count = 0;      // live prefix of `saved`
    std::vector<SavedVersion> saved;  // copy-on-write pre-epoch overlay
    DeliveryFunction working;         // L'_k being assembled
    std::vector<PathPair> delta;      // D_{k-1} = L'_{k-1} \ old L_{k-1}
    std::vector<PathPair> next_delta;
  };

  DeliveryFunction& ensure_working(NodeId node, int level);
  FrontierView lookup(const std::vector<Version>& versions, int level) const;
  /// Latest PRE-epoch version at or below `level`: the live list with
  /// this epoch's stashed levels overlaid back in. Levels are modified
  /// at most once per epoch (each in its own level iteration), so both
  /// lists ascend and one merge walk suffices.
  FrontierView lookup_original(NodeId node, int level) const;
  /// Records the pre-epoch state of (node, level) before its first (and
  /// only) modification this epoch; moves `old_entry` out when the level
  /// had a version.
  void stash(NodeId node, int level, Version* old_entry);
  void write_version(NodeId node, int level, const DeliveryFunction& f);
  void erase_exact_version(NodeId node, int level);

  NodeId source_;
  std::size_t num_nodes_;
  int cap_;
  int max_level_ = 0;
  std::vector<NodeState> nodes_;

  // Epoch scratch.
  std::vector<Scratch> scratch_;
  std::vector<NodeId> touched_;
  std::vector<NodeId> delta_active_;
  std::vector<NodeId> next_delta_active_;
  std::vector<NodeId> level_active_;
  std::vector<double> succ_ea_;
};

/// Options of the live all-pairs monitor. The delay grid is fixed for
/// the engine's lifetime (it keys every per-epoch result); the
/// start-time window may be explicit or NaN = the growing trace span.
struct IncrementalCdfOptions {
  std::vector<double> grid;
  int max_hops = 10;
  int max_levels = 64;
  double t_lo = std::numeric_limits<double>::quiet_NaN();
  double t_hi = std::numeric_limits<double>::quiet_NaN();
  /// Worker threads for the per-source fan-out; 0 = shared pool.
  unsigned num_threads = 0;
  /// Sources per batched block during the first (bulk/backlog) batch's
  /// bootstrap: blocks of consecutive sources seed their DPs from one
  /// lockstep multi-source engine (core/batched_engine.hpp) instead of
  /// one cold engine each. 1 = per-source bootstrap; bit-identical
  /// either way (the lanes reproduce the pooled engine's change sets
  /// exactly). Later epochs always use the incremental machinery.
  int source_batch = 1;
};

/// Live all-pairs engine: an owned growing TemporalGraph plus one
/// IncrementalSourceDp per source and a per-source cache of integrated
/// CDF partials. append() advances every source by one epoch;
/// all_pairs() re-integrates only the sources whose frontiers (or
/// resolved windows) changed and folds all partials in canonical order,
/// yielding a result bit-identical to a cold
/// compute_delay_cdf(graph(), {accumulation = kDirect, ...}) on the
/// contacts ingested so far.
class IncrementalAllPairsEngine {
 public:
  IncrementalAllPairsEngine(std::size_t num_nodes, bool directed,
                            IncrementalCdfOptions options);

  /// Appends one canonical-order batch (validated by
  /// TemporalGraph::append_contacts) and advances every source's DP.
  /// Returns the graph epoch after the append.
  std::uint64_t append(std::span<const Contact> batch);

  /// All-pairs delay CDFs / diameter over everything ingested so far.
  DelayCdfResult all_pairs();

  const TemporalGraph& graph() const noexcept { return graph_; }
  const IncrementalCdfOptions& options() const noexcept { return options_; }
  std::uint64_t epoch() const noexcept { return graph_.epoch(); }

  /// Canonical-order watermark: begin of the last ingested contact
  /// (-infinity while empty). Appended batches may not sort before it.
  double watermark() const noexcept;

 private:
  DelayCdfOptions cdf_options() const;
  void integrate_source(NodeId src, const TimeWindows& w,
                        SourceCdfPartial& out,
                        std::uint64_t* pairs_integrated) const;

  TemporalGraph graph_;
  IncrementalCdfOptions options_;
  int cap_;
  std::vector<IncrementalSourceDp> dps_;
  std::vector<SourceCdfPartial> partials_;
  std::vector<std::uint8_t> dirty_;
  TimeWindows last_windows_;
  bool have_windows_ = false;
};

}  // namespace odtn
