#include "core/path_enumeration.hpp"

#include <algorithm>
#include <cassert>

#include "core/optimal_paths.hpp"
#include "sim/flooding.hpp"

namespace odtn {

std::vector<OptimalRoute> enumerate_optimal_routes(const TemporalGraph& graph,
                                                   NodeId source,
                                                   NodeId destination,
                                                   int max_hops) {
  SingleSourceEngine engine(graph, source);
  engine.run_to_fixpoint(max_hops);
  const DeliveryFunction frontier = engine.frontier(destination);

  std::vector<OptimalRoute> routes;
  routes.reserve(frontier.size());
  for (const PathPair& pair : frontier.pairs()) {
    // A message created at t0 = min(LD, EA) is delivered at exactly EA
    // by a path using this pair (contemporaneous pairs deliver at the
    // creation instant EA <= LD; store-and-forward pairs depart by LD
    // and arrive at EA > LD). Flooding from t0 therefore reaches the
    // destination at EA, and its parent chain is such a route.
    const double t0 = std::min(pair.ld, pair.ea);
    const FloodingResult flood_result =
        flood(graph, source, t0, max_hops);
    assert(flood_result.best_arrival(destination) <= pair.ea);
    const int hops = flood_result.optimal_hops(destination);
    OptimalRoute route;
    route.pair = pair;
    route.contact_indices =
        flood_result.reconstruct(graph, destination, hops);
    routes.push_back(std::move(route));
  }
  return routes;
}

}  // namespace odtn
