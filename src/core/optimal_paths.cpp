#include "core/optimal_paths.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace odtn {

namespace {

/// Feeds every useful extension of `pairs` through the contact window
/// [begin, end] to `offer(PathPair)`. Shared by extend_frontier and the
/// indexed engine's delta propagation.
template <typename Offer>
void for_each_extension(const std::vector<PathPair>& pairs, double begin,
                        double end, Offer&& offer) {
  // Pairs with ea <= begin all extend to (min(ld, end), begin); the one
  // with the largest ld dominates the rest. Pairs are sorted by
  // increasing ea, so that is the last pair before `first_late`.
  const auto first_late = static_cast<std::size_t>(
      std::upper_bound(pairs.begin(), pairs.end(), begin,
                       [](double x, const PathPair& p) { return x < p.ea; }) -
      pairs.begin());
  if (first_late > 0) {
    const PathPair& p = pairs[first_late - 1];
    offer({std::min(p.ld, end), begin});
  }
  // Pairs with begin < ea <= end extend to (min(ld, end), ea). Once a
  // pair has ld >= end, later pairs (larger ld AND larger ea) only yield
  // dominated (end, larger-ea) candidates.
  for (std::size_t i = first_late; i < pairs.size() && pairs[i].ea <= end;
       ++i) {
    const PathPair& p = pairs[i];
    offer({std::min(p.ld, end), p.ea});
    if (p.ld >= end) break;
  }
}

}  // namespace

bool extend_frontier(const DeliveryFunction& from, double begin, double end,
                     DeliveryFunction& into, EngineStats* stats) {
  if (from.pairs().empty()) return false;
  bool changed = false;
  for_each_extension(from.pairs(), begin, end, [&](PathPair candidate) {
    const bool kept = into.insert(candidate);
    if (stats) {
      if (kept)
        ++stats->pairs_inserted;
      else
        ++stats->pairs_dominated;
    }
    changed |= kept;
  });
  return changed;
}

namespace {

/// The empty sequence: the message is at the source at all times.
constexpr PathPair identity_pair() noexcept {
  return {std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};
}

}  // namespace

SingleSourceEngine::SingleSourceEngine(const TemporalGraph& graph,
                                       NodeId source, EngineMode mode)
    : graph_(&graph), source_(source), mode_(mode),
      frontiers_(graph.num_nodes()) {
  if (source >= graph.num_nodes())
    throw std::out_of_range("SingleSourceEngine: source out of range");
  frontiers_[source_].insert(identity_pair());
  if (mode_ == EngineMode::kIndexed) {
    cur_delta_.resize(graph.num_nodes());
    next_delta_.resize(graph.num_nodes());
    cur_delta_[source_] = frontiers_[source_];
    active_.push_back(source_);
    dirty_mark_.assign(graph.num_nodes(), 0);
  }
  ++stats_.workspace_allocations;
}

void SingleSourceEngine::reset(NodeId source) {
  if (source >= graph_->num_nodes())
    throw std::out_of_range("SingleSourceEngine: source out of range");
  source_ = source;
  level_ = 0;
  fixpoint_ = false;
  for (DeliveryFunction& f : frontiers_) f.clear();
  frontiers_[source_].insert(identity_pair());
  if (mode_ == EngineMode::kIndexed) {
    for (DeliveryFunction& d : cur_delta_) d.clear();
    for (DeliveryFunction& d : next_delta_) d.clear();
    active_.clear();
    next_active_.clear();
    std::fill(dirty_mark_.begin(), dirty_mark_.end(), 0);
    cur_delta_[source_].insert(identity_pair());
    active_.push_back(source_);
  }
  ++stats_.workspace_reuses;
}

void SingleSourceEngine::track_changes(bool enable) {
  if (enable && mode_ != EngineMode::kIndexed)
    throw std::logic_error(
        "SingleSourceEngine: change tracking requires EngineMode::kIndexed");
  track_changes_ = enable;
}

bool SingleSourceEngine::step() {
  if (fixpoint_) return false;
  return mode_ == EngineMode::kIndexed ? step_indexed() : step_level_sweep();
}

void SingleSourceEngine::finish_level(bool changed) {
  ++level_;
  if (!changed) {
    fixpoint_ = true;
    --level_;  // the budget did not actually grow anything new
  }
}

bool SingleSourceEngine::step_indexed() {
  // Only the pairs newly kept at the previous level (each active node's
  // delta) can generate candidates that are not already dominated;
  // everything older was extended -- and absorbed -- at an earlier level.
  stats_.frontier_copies_avoided +=
      static_cast<std::uint64_t>(frontiers_.size() - active_.size());
  next_active_.clear();

  bool changed = false;
  for (const NodeId u : active_) {
    const std::vector<PathPair>& dp = cur_delta_[u].pairs();
    const std::vector<PathPair>& fp = frontiers_[u].pairs();
    // For each delta pair, the ea of its successor in u's full frontier
    // (delta pairs are all present in fp; both lists are ea-sorted, so
    // one merge walk finds every successor). A window whose begin
    // reaches at or past that successor draws its wait candidate from
    // the successor chain -- pairs with strictly larger ld whose offers
    // already happened the level after they entered -- so the delta's
    // wait candidate is provably dominated and is not offered at all.
    succ_ea_.resize(dp.size());
    for (std::size_t j = 0, pos = 0; j < dp.size(); ++j) {
      while (fp[pos].ea < dp[j].ea) ++pos;
      succ_ea_[j] = pos + 1 < fp.size()
                        ? fp[pos + 1].ea
                        : std::numeric_limits<double>::infinity();
    }
    // No delta pair can ride a contact that ends before the delta's
    // earliest arrival (both extension cases need ea <= end), so the
    // whole prefix of the by-end index below min_ea is skipped at once.
    const double min_ea = dp.front().ea;
    const auto nbrs = graph_->neighbors_by_end(u);
    auto it = std::lower_bound(
        nbrs.begin(), nbrs.end(), min_ea,
        [](const NodeContact& nc, double t) { return nc.end < t; });
    for (; it != nbrs.end(); ++it) {
      const NodeId to = it->to;
      const double wb = it->begin, we = it->end;
      ++stats_.contacts_examined;
      // Candidates are checked against the target's frontier -- still
      // exactly L_k, inserts are buffered in next_delta_ until the end
      // of the level -- and collected into the target's next delta,
      // which prunes duplicates and same-level dominance on its own.
      auto offer = [&](PathPair cand) {
        if (frontiers_[to].is_dominated(cand) ||
            !next_delta_[to].insert(cand)) {
          ++stats_.pairs_dominated;
          return;
        }
        ++stats_.pairs_inserted;
        changed = true;
        if (!dirty_mark_[to]) {
          dirty_mark_[to] = 1;
          next_active_.push_back(to);
        }
      };
      // Same extension cases as for_each_extension, but with a linear
      // scan: deltas hold a handful of pairs, where the binary search's
      // setup cost exceeds the comparisons it saves.
      std::size_t i = 0;
      while (i < dp.size() && dp[i].ea <= wb) ++i;
      if (i > 0 && wb < succ_ea_[i - 1])
        offer({std::min(dp[i - 1].ld, we), wb});
      for (; i < dp.size() && dp[i].ea <= we; ++i) {
        offer({std::min(dp[i].ld, we), dp[i].ea});
        if (dp[i].ld >= we) break;
      }
    }
  }

  // Publish the level: merge every collected delta into its frontier.
  // No merge insert can fail -- each pair survived the L_k dominance
  // check at offer time and same-level pruning inside its delta.
  // When change tracking is on, snapshot each changed frontier first
  // (copy-assignment into a recycled slot: no allocation once the slot's
  // capacity has grown to fit) so callers can retract the pre-change
  // integration. After the swap below, retired_[i] stays aligned with
  // active_[i] == next_active_[i].
  if (track_changes_ && retired_.size() < next_active_.size())
    retired_.resize(next_active_.size());
  for (std::size_t i = 0; i < next_active_.size(); ++i) {
    const NodeId v = next_active_[i];
    DeliveryFunction& f = frontiers_[v];
    if (track_changes_) retired_[i] = f;
    for (const PathPair& p : next_delta_[v].pairs()) f.insert(p);
  }

  // Recycle the spent deltas as next level's (empty) collection buffers.
  for (const NodeId u : active_) cur_delta_[u].clear();
  cur_delta_.swap(next_delta_);
  active_.swap(next_active_);
  for (const NodeId u : active_) dirty_mark_[u] = 0;
  finish_level(changed);
  return changed;
}

bool SingleSourceEngine::step_level_sweep() {
  scratch_ = frontiers_;  // L_k snapshot to extend from
  bool changed = false;
  for (const Contact& c : graph_->contacts()) {
    ++stats_.contacts_examined;
    changed |= extend_frontier(scratch_[c.u], c.begin, c.end, frontiers_[c.v],
                               &stats_);
    if (!graph_->directed()) {
      ++stats_.contacts_examined;
      changed |= extend_frontier(scratch_[c.v], c.begin, c.end,
                                 frontiers_[c.u], &stats_);
    }
  }
  finish_level(changed);
  return changed;
}

int SingleSourceEngine::run_to_fixpoint(int max_levels) {
  while (!fixpoint_ && level_ < max_levels) step();
  return fixpoint_ ? level_ : max_levels + 1;
}

std::size_t SingleSourceEngine::total_pairs() const noexcept {
  std::size_t total = 0;
  for (const auto& f : frontiers_) total += f.size();
  return total;
}

std::vector<std::vector<DeliveryFunction>> compute_hop_profiles(
    const TemporalGraph& graph, NodeId source, const std::vector<int>& budgets,
    int max_levels) {
  for (int b : budgets) {
    if (b < 1) throw std::invalid_argument("hop budget must be >= 1");
  }
  std::vector<std::vector<DeliveryFunction>> out(budgets.size());
  SingleSourceEngine engine(graph, source);
  int level = 0;
  auto capture_if_requested = [&] {
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      if (budgets[i] == level) out[i] = engine.frontiers();
    }
  };
  while (level < max_levels) {
    if (!engine.step()) break;
    ++level;
    capture_if_requested();
  }
  // Budgets at or beyond the fixpoint level (including kUnboundedHops)
  // all equal the final frontiers.
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    if (budgets[i] > level || budgets[i] == kUnboundedHops) {
      if (out[i].empty()) out[i] = engine.frontiers();
    }
  }
  return out;
}

}  // namespace odtn
