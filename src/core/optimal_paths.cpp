#include "core/optimal_paths.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/frontier_kernels.hpp"

namespace odtn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Feeds every useful extension of `pairs` through the contact window
/// [begin, end] to `offer(PathPair)`. Shared by extend_frontier and the
/// indexed engine's delta propagation.
template <typename Offer>
void for_each_extension(const std::vector<PathPair>& pairs, double begin,
                        double end, Offer&& offer) {
  // Pairs with ea <= begin all extend to (min(ld, end), begin); the one
  // with the largest ld dominates the rest. Pairs are sorted by
  // increasing ea, so that is the last pair before `first_late`.
  const auto first_late = static_cast<std::size_t>(
      std::upper_bound(pairs.begin(), pairs.end(), begin,
                       [](double x, const PathPair& p) { return x < p.ea; }) -
      pairs.begin());
  if (first_late > 0) {
    const PathPair& p = pairs[first_late - 1];
    offer({std::min(p.ld, end), begin});
  }
  // Pairs with begin < ea <= end extend to (min(ld, end), ea). Once a
  // pair has ld >= end, later pairs (larger ld AND larger ea) only yield
  // dominated (end, larger-ea) candidates.
  for (std::size_t i = first_late; i < pairs.size() && pairs[i].ea <= end;
       ++i) {
    const PathPair& p = pairs[i];
    offer({std::min(p.ld, end), p.ea});
    if (p.ld >= end) break;
  }
}

}  // namespace

bool extend_frontier(const DeliveryFunction& from, double begin, double end,
                     DeliveryFunction& into, EngineStats* stats) {
  if (from.pairs().empty()) return false;
  bool changed = false;
  for_each_extension(from.pairs(), begin, end, [&](PathPair candidate) {
    const bool kept = into.insert(candidate);
    if (stats) {
      if (kept)
        ++stats->pairs_inserted;
      else
        ++stats->pairs_dominated;
    }
    changed |= kept;
  });
  return changed;
}

namespace {

/// The empty sequence: the message is at the source at all times.
constexpr PathPair identity_pair() noexcept { return {kInf, -kInf}; }

}  // namespace

SingleSourceEngine::SingleSourceEngine(const TemporalGraph& graph,
                                       NodeId source, EngineMode mode)
    : graph_(&graph), source_(source), mode_(mode) {
  if (source >= graph.num_nodes())
    throw std::out_of_range("SingleSourceEngine: source out of range");
  const std::size_t n = graph.num_nodes();
  if (mode_ == EngineMode::kPooled) {
    fspan_.assign(n, PairSpan{});
    last_pair_.assign(n, PathPair{-kInf, kInf});
    dirty_mark_.assign(n, 0);
    cand_count_.assign(n, 0);
    grp_pos_.assign(n, 0);
    seed_pooled();
  } else {
    frontiers_.resize(n);
    frontiers_[source_].insert(identity_pair());
    if (mode_ == EngineMode::kIndexed) {
      cur_delta_.resize(n);
      next_delta_.resize(n);
      cur_delta_[source_] = frontiers_[source_];
      active_.push_back(source_);
      dirty_mark_.assign(n, 0);
    }
  }
  ++stats_.workspace_allocations;
}

void SingleSourceEngine::seed_pooled() {
  // The source's frontier and level-0 delta are both exactly the identity
  // pair; the delta's successor EA is +infinity (it has no successor), so
  // every wait candidate off the identity is offered.
  const std::size_t off = arena_.allocate(1);
  arena_.ld()[off] = kInf;
  arena_.ea()[off] = -kInf;
  fspan_[source_] = {static_cast<std::uint32_t>(off), 1};
  last_pair_[source_] = identity_pair();
  PairArena& da = delta_arena_[delta_parity_];
  const std::size_t d = da.allocate(1);
  da.ld()[d] = kInf;
  da.ea()[d] = -kInf;
  da.aux()[d] = kInf;
  delta_spans_.assign(1, PairSpan{static_cast<std::uint32_t>(d), 1});
  active_.assign(1, source_);
}

void SingleSourceEngine::reset(NodeId source) {
  if (source >= graph_->num_nodes())
    throw std::out_of_range("SingleSourceEngine: source out of range");
  source_ = source;
  level_ = 0;
  fixpoint_ = false;
  if (mode_ == EngineMode::kPooled) {
    // Recycle every slab: spans are dropped wholesale, capacity stays.
    // dirty_mark_ / cand_count_ / candidate buffers are already clean --
    // step_pooled() restores them at the end of every level.
    arena_.reset();
    delta_arena_[0].reset();
    delta_arena_[1].reset();
    delta_parity_ = 0;
    std::fill(fspan_.begin(), fspan_.end(), PairSpan{});
    std::fill(last_pair_.begin(), last_pair_.end(), PathPair{-kInf, kInf});
    next_active_.clear();
    seed_pooled();
  } else {
    for (DeliveryFunction& f : frontiers_) f.clear();
    frontiers_[source_].insert(identity_pair());
    if (mode_ == EngineMode::kIndexed) {
      for (DeliveryFunction& d : cur_delta_) d.clear();
      for (DeliveryFunction& d : next_delta_) d.clear();
      active_.clear();
      next_active_.clear();
      std::fill(dirty_mark_.begin(), dirty_mark_.end(), 0);
      cur_delta_[source_].insert(identity_pair());
      active_.push_back(source_);
    }
  }
  ++stats_.workspace_reuses;
}

void SingleSourceEngine::track_changes(bool enable) {
  if (enable && mode_ == EngineMode::kLevelSweep)
    throw std::logic_error(
        "SingleSourceEngine: change tracking requires a delta mode "
        "(EngineMode::kPooled or kIndexed)");
  // kPooled snapshots are free (the superseded arena spans stay
  // addressable), so tracking there is always on and this is a no-op.
  track_changes_ = enable;
}

FrontierView SingleSourceEngine::previous_frontier_view(std::size_t i) const {
  if (mode_ == EngineMode::kPooled) {
    const PairSpan s = retired_spans_.at(i);
    return FrontierView(arena_.ld() + s.offset, arena_.ea() + s.offset,
                        s.length);
  }
  return retired_.at(i).view();
}

bool SingleSourceEngine::step() {
  if (fixpoint_) return false;
  switch (mode_) {
    case EngineMode::kPooled:
      return step_pooled();
    case EngineMode::kIndexed:
      return step_indexed();
    case EngineMode::kLevelSweep:
      return step_level_sweep();
  }
  return false;
}

void SingleSourceEngine::finish_level(bool changed) {
  ++level_;
  if (!changed) {
    fixpoint_ = true;
    --level_;  // the budget did not actually grow anything new
  }
}

void SingleSourceEngine::record_arena_peaks() noexcept {
  const std::size_t pairs = arena_.size() + delta_arena_[0].size() +
                            delta_arena_[1].size();
  if (pairs > stats_.pairs_peak) stats_.pairs_peak = pairs;
  const std::size_t bytes = arena_.capacity_bytes() +
                            delta_arena_[0].capacity_bytes() +
                            delta_arena_[1].capacity_bytes();
  if (bytes > stats_.arena_bytes_peak) stats_.arena_bytes_peak = bytes;
}

bool SingleSourceEngine::step_pooled() {
  // Same delta propagation as step_indexed -- only pairs newly kept at
  // the previous level generate candidates -- but pairs never leave the
  // arenas and frontier maintenance is batched: candidates are collected
  // raw into flat buffers, grouped by target with one counting sort,
  // pruned per target, and merged against the target's frontier span by
  // one two-way merge emitted into fresh arena space. The superseded
  // span is the pre-change snapshot, untouched and for free.
  stats_.frontier_copies_avoided +=
      static_cast<std::uint64_t>(graph_->num_nodes() - active_.size());
  next_active_.clear();

  // Phase 1: extension. Nothing is allocated from arena_ or the current
  // delta arena here, so their base pointers are stable for the phase.
  const PairArena& da = delta_arena_[delta_parity_];
  std::uint64_t dominated = 0;  // batched into stats_ after the loop
  for (std::size_t a = 0; a < active_.size(); ++a) {
    const NodeId u = active_[a];
    const PairSpan ds = delta_spans_[a];
    const double* dld = da.ld() + ds.offset;
    const double* dea = da.ea() + ds.offset;
    const double* dsucc = da.aux() + ds.offset;
    const std::size_t dn = ds.length;
    // No delta pair can ride a contact that ends before the delta's
    // earliest arrival (both extension cases need ea <= end), so the
    // whole prefix of the by-end index below min_ea is skipped at once.
    const double min_ea = dea[0];
    const auto nbrs = graph_->neighbors_by_end(u);
    auto it = std::lower_bound(
        nbrs.begin(), nbrs.end(), min_ea,
        [](const NodeContact& nc, double t) { return nc.end < t; });
    stats_.contacts_examined +=
        static_cast<std::uint64_t>(nbrs.end() - it);
    const double* const f_ld = arena_.ld();
    const double* const f_ea = arena_.ea();
    // Contacts ascend by end while deltas ascend by ea, so the count of
    // delta pairs ridable within the current contact only grows. The
    // arrival cursor (first delta pair arriving after the window opens)
    // is not monotone -- begins are only roughly ordered by end -- but
    // it drifts little, so a bidirectional cursor beats re-scanning the
    // delta from the front on every contact.
    std::size_t ride_hi = 0;
    std::size_t arr = 0;
    for (; it != nbrs.end(); ++it) {
      const NodeId to = it->to;
      const double wb = it->begin, we = it->end;
      // Offer-time filter against the target's frontier -- still exactly
      // L_k, publication is deferred to phase 2. Same-level dominance
      // between candidates is handled by the batch prune at publish.
      // last_pair_ keeps the probe's common outcomes (departs past the
      // frontier -> kept; arrives at/after the frontier's max arrival ->
      // dominated) inside one tiny L1-resident array; only candidates
      // landing strictly inside the frontier hit the arena lanes.
      auto offer = [&](double cld, double cea) {
        const PathPair lp = last_pair_[to];
        if (cld <= lp.ld) {
          if (lp.ea <= cea) {
            ++dominated;
            return;
          }
          const PairSpan ts = fspan_[to];
          if (frontier_dominates(f_ld + ts.offset, f_ea + ts.offset,
                                 ts.length, cld, cea)) {
            ++dominated;
            return;
          }
        }
        cand_.push_back({cld, cea, to});
        ++cand_count_[to];
        if (!dirty_mark_[to]) {
          dirty_mark_[to] = 1;
          next_active_.push_back(to);
        }
      };
      // Same extension cases as for_each_extension, with a linear scan
      // (deltas hold a handful of pairs) and wait-candidate suppression:
      // a window whose begin reaches the delta pair's successor EA draws
      // its wait candidate from the successor chain instead.
      while (ride_hi < dn && dea[ride_hi] <= we) ++ride_hi;
      while (arr < dn && dea[arr] <= wb) ++arr;
      while (arr > 0 && dea[arr - 1] > wb) --arr;
      std::size_t i = arr;
      if (i > 0 && wb < dsucc[i - 1]) offer(std::min(dld[i - 1], we), wb);
      for (; i < ride_hi; ++i) {
        offer(std::min(dld[i], we), dea[i]);
        if (dld[i] >= we) break;
      }
    }
  }

  stats_.pairs_dominated += dominated;

  // Phase 2: publish. Counting-sort the flat candidate buffer into
  // per-target groups, then prune + merge each group.
  bool changed = false;
  const std::size_t total = cand_.size();
  if (total > 0) {
    grp_begin_.resize(next_active_.size());
    std::uint32_t running = 0;
    for (std::size_t idx = 0; idx < next_active_.size(); ++idx) {
      const NodeId v = next_active_[idx];
      grp_begin_[idx] = running;
      grp_pos_[v] = running;
      running += cand_count_[v];
    }
    grp_pairs_.resize(total);
    for (std::size_t k = 0; k < total; ++k) {
      const RawCandidate& c = cand_[k];
      grp_pairs_[grp_pos_[c.to]++] = {c.ld, c.ea};
    }
    PairArena& nda = delta_arena_[delta_parity_ ^ 1];
    if (retired_spans_.size() < next_active_.size())
      retired_spans_.resize(next_active_.size());
    if (next_delta_spans_.size() < next_active_.size())
      next_delta_spans_.resize(next_active_.size());
    std::size_t w = 0;  // write cursor over the surviving changed list
    for (std::size_t idx = 0; idx < next_active_.size(); ++idx) {
      const NodeId v = next_active_[idx];
      const std::size_t m0 = cand_count_[v];
      cand_count_[v] = 0;
      dirty_mark_[v] = 0;
      // Each group is contiguous in grp_pairs_ and consumed exactly once,
      // so the batch is pruned in place (survivors end up in the group's
      // prefix; the tail becomes garbage, which is fine).
      PathPair* const batch = grp_pairs_.data() + grp_begin_[idx];
      const std::size_t m = prune_candidate_batch(batch, m0);
      const PairSpan fs = fspan_[v];
      // Worst-case output sizes; the unused prefixes below the merged
      // results stay behind as arena slack until the next reset.
      const std::size_t out_off = arena_.allocate(fs.length + m);
      const std::size_t d_off = nda.allocate(m);
      // allocate() may have grown either arena: base pointers re-fetched.
      const FrontierMerge r = merge_frontier(
          arena_.ld() + fs.offset, arena_.ea() + fs.offset, fs.length, batch,
          m, arena_.ld() + out_off, arena_.ea() + out_off, nda.ld() + d_off,
          nda.ea() + d_off, nda.aux() + d_off);
      ++stats_.merge_batches;
      stats_.pairs_inserted += r.kept_new;
      stats_.pairs_dominated += m0 - r.kept_new;
      if (r.kept_new == 0) {
        // Defensive only: a batch that survived the offer-time dominance
        // filter always contributes at least its minimum-EA candidate.
        arena_.truncate(out_off);
        nda.truncate(d_off);
        continue;
      }
      changed = true;
      retired_spans_[w] = fs;
      fspan_[v] = {
          static_cast<std::uint32_t>(out_off + fs.length + m - r.kept),
          static_cast<std::uint32_t>(r.kept)};
      const std::size_t last = out_off + fs.length + m - 1;
      last_pair_[v] = {arena_.ld()[last], arena_.ea()[last]};
      next_delta_spans_[w] = {
          static_cast<std::uint32_t>(d_off + m - r.kept_new),
          static_cast<std::uint32_t>(r.kept_new)};
      next_active_[w] = v;
      ++w;
    }
    next_active_.resize(w);
  }

  // Phase 3: rotate. The spent delta slab is recycled wholesale; the
  // span lists swap along with the active lists they are aligned to.
  cand_.clear();
  delta_arena_[delta_parity_].reset();
  delta_parity_ ^= 1;
  delta_spans_.swap(next_delta_spans_);
  active_.swap(next_active_);
  record_arena_peaks();
  finish_level(changed);
  return changed;
}

bool SingleSourceEngine::step_indexed() {
  // Only the pairs newly kept at the previous level (each active node's
  // delta) can generate candidates that are not already dominated;
  // everything older was extended -- and absorbed -- at an earlier level.
  stats_.frontier_copies_avoided +=
      static_cast<std::uint64_t>(frontiers_.size() - active_.size());
  next_active_.clear();

  bool changed = false;
  for (const NodeId u : active_) {
    const std::vector<PathPair>& dp = cur_delta_[u].pairs();
    const std::vector<PathPair>& fp = frontiers_[u].pairs();
    // For each delta pair, the ea of its successor in u's full frontier
    // (delta pairs are all present in fp; both lists are ea-sorted, so
    // one merge walk finds every successor). A window whose begin
    // reaches at or past that successor draws its wait candidate from
    // the successor chain -- pairs with strictly larger ld whose offers
    // already happened the level after they entered -- so the delta's
    // wait candidate is provably dominated and is not offered at all.
    succ_ea_.resize(dp.size());
    for (std::size_t j = 0, pos = 0; j < dp.size(); ++j) {
      while (fp[pos].ea < dp[j].ea) ++pos;
      succ_ea_[j] = pos + 1 < fp.size()
                        ? fp[pos + 1].ea
                        : std::numeric_limits<double>::infinity();
    }
    // No delta pair can ride a contact that ends before the delta's
    // earliest arrival (both extension cases need ea <= end), so the
    // whole prefix of the by-end index below min_ea is skipped at once.
    const double min_ea = dp.front().ea;
    const auto nbrs = graph_->neighbors_by_end(u);
    auto it = std::lower_bound(
        nbrs.begin(), nbrs.end(), min_ea,
        [](const NodeContact& nc, double t) { return nc.end < t; });
    for (; it != nbrs.end(); ++it) {
      const NodeId to = it->to;
      const double wb = it->begin, we = it->end;
      ++stats_.contacts_examined;
      // Candidates are checked against the target's frontier -- still
      // exactly L_k, inserts are buffered in next_delta_ until the end
      // of the level -- and collected into the target's next delta,
      // which prunes duplicates and same-level dominance on its own.
      auto offer = [&](PathPair cand) {
        if (frontiers_[to].is_dominated(cand) ||
            !next_delta_[to].insert(cand)) {
          ++stats_.pairs_dominated;
          return;
        }
        ++stats_.pairs_inserted;
        changed = true;
        if (!dirty_mark_[to]) {
          dirty_mark_[to] = 1;
          next_active_.push_back(to);
        }
      };
      // Same extension cases as for_each_extension, but with a linear
      // scan: deltas hold a handful of pairs, where the binary search's
      // setup cost exceeds the comparisons it saves.
      std::size_t i = 0;
      while (i < dp.size() && dp[i].ea <= wb) ++i;
      if (i > 0 && wb < succ_ea_[i - 1])
        offer({std::min(dp[i - 1].ld, we), wb});
      for (; i < dp.size() && dp[i].ea <= we; ++i) {
        offer({std::min(dp[i].ld, we), dp[i].ea});
        if (dp[i].ld >= we) break;
      }
    }
  }

  // Publish the level: merge every collected delta into its frontier.
  // No merge insert can fail -- each pair survived the L_k dominance
  // check at offer time and same-level pruning inside its delta.
  // When change tracking is on, snapshot each changed frontier first
  // (copy-assignment into a recycled slot: no allocation once the slot's
  // capacity has grown to fit) so callers can retract the pre-change
  // integration. After the swap below, retired_[i] stays aligned with
  // active_[i] == next_active_[i].
  if (track_changes_ && retired_.size() < next_active_.size())
    retired_.resize(next_active_.size());
  for (std::size_t i = 0; i < next_active_.size(); ++i) {
    const NodeId v = next_active_[i];
    DeliveryFunction& f = frontiers_[v];
    if (track_changes_) retired_[i] = f;
    for (const PathPair& p : next_delta_[v].pairs()) f.insert(p);
  }

  // Recycle the spent deltas as next level's (empty) collection buffers.
  for (const NodeId u : active_) cur_delta_[u].clear();
  cur_delta_.swap(next_delta_);
  active_.swap(next_active_);
  for (const NodeId u : active_) dirty_mark_[u] = 0;
  finish_level(changed);
  return changed;
}

bool SingleSourceEngine::step_level_sweep() {
  scratch_ = frontiers_;  // L_k snapshot to extend from
  bool changed = false;
  for (const Contact& c : graph_->contacts()) {
    ++stats_.contacts_examined;
    changed |= extend_frontier(scratch_[c.u], c.begin, c.end, frontiers_[c.v],
                               &stats_);
    if (!graph_->directed()) {
      ++stats_.contacts_examined;
      changed |= extend_frontier(scratch_[c.v], c.begin, c.end,
                                 frontiers_[c.u], &stats_);
    }
  }
  finish_level(changed);
  return changed;
}

int SingleSourceEngine::run_to_fixpoint(int max_levels) {
  while (!fixpoint_ && level_ < max_levels) step();
  return fixpoint_ ? level_ : max_levels + 1;
}

DeliveryFunction SingleSourceEngine::frontier(NodeId dst) const {
  if (mode_ == EngineMode::kPooled) return materialize(frontier_view(dst));
  return frontiers_[dst];
}

FrontierView SingleSourceEngine::frontier_view(NodeId dst) const {
  if (mode_ == EngineMode::kPooled) {
    const PairSpan s = fspan_[dst];
    return FrontierView(arena_.ld() + s.offset, arena_.ea() + s.offset,
                        s.length);
  }
  return frontiers_[dst].view();
}

std::vector<DeliveryFunction> SingleSourceEngine::frontiers() const {
  if (mode_ != EngineMode::kPooled) return frontiers_;
  std::vector<DeliveryFunction> out(graph_->num_nodes());
  for (NodeId v = 0; v < graph_->num_nodes(); ++v)
    out[v] = materialize(frontier_view(v));
  return out;
}

std::size_t SingleSourceEngine::total_pairs() const noexcept {
  if (mode_ == EngineMode::kPooled) {
    std::size_t total = 0;
    for (const PairSpan& s : fspan_) total += s.length;
    return total;
  }
  std::size_t total = 0;
  for (const auto& f : frontiers_) total += f.size();
  return total;
}

std::vector<std::vector<DeliveryFunction>> compute_hop_profiles(
    const TemporalGraph& graph, NodeId source, const std::vector<int>& budgets,
    int max_levels) {
  for (int b : budgets) {
    if (b < 1) throw std::invalid_argument("hop budget must be >= 1");
  }
  std::vector<std::vector<DeliveryFunction>> out(budgets.size());
  SingleSourceEngine engine(graph, source);
  int level = 0;
  auto capture_if_requested = [&] {
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      if (budgets[i] == level) out[i] = engine.frontiers();
    }
  };
  while (level < max_levels) {
    if (!engine.step()) break;
    ++level;
    capture_if_requested();
  }
  // Budgets at or beyond the fixpoint level (including kUnboundedHops)
  // all equal the final frontiers.
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    if (budgets[i] > level || budgets[i] == kUnboundedHops) {
      if (out[i].empty()) out[i] = engine.frontiers();
    }
  }
  return out;
}

}  // namespace odtn
