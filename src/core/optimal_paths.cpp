#include "core/optimal_paths.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace odtn {

bool extend_frontier(const DeliveryFunction& from, double begin, double end,
                     DeliveryFunction& into) {
  const auto& pairs = from.pairs();
  if (pairs.empty()) return false;
  bool changed = false;

  // Pairs with ea <= begin all extend to (min(ld, end), begin); the one
  // with the largest ld dominates the rest. Pairs are sorted by
  // increasing ea, so that is the last pair before `first_late`.
  const auto first_late = static_cast<std::size_t>(
      std::upper_bound(pairs.begin(), pairs.end(), begin,
                       [](double x, const PathPair& p) { return x < p.ea; }) -
      pairs.begin());
  if (first_late > 0) {
    const PathPair& p = pairs[first_late - 1];
    changed |= into.insert({std::min(p.ld, end), begin});
  }
  // Pairs with begin < ea <= end extend to (min(ld, end), ea). Once a
  // pair has ld >= end, later pairs (larger ld AND larger ea) only yield
  // dominated (end, larger-ea) candidates.
  for (std::size_t i = first_late; i < pairs.size() && pairs[i].ea <= end;
       ++i) {
    const PathPair& p = pairs[i];
    changed |= into.insert({std::min(p.ld, end), p.ea});
    if (p.ld >= end) break;
  }
  return changed;
}

SingleSourceEngine::SingleSourceEngine(const TemporalGraph& graph,
                                       NodeId source)
    : graph_(&graph), source_(source), frontiers_(graph.num_nodes()) {
  if (source >= graph.num_nodes())
    throw std::out_of_range("SingleSourceEngine: source out of range");
  // The empty sequence: the message is at the source at all times.
  frontiers_[source_].insert({std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity()});
}

bool SingleSourceEngine::step() {
  if (fixpoint_) return false;
  scratch_ = frontiers_;  // L_k snapshot to extend from
  bool changed = false;
  for (const Contact& c : graph_->contacts()) {
    changed |= extend_frontier(scratch_[c.u], c.begin, c.end, frontiers_[c.v]);
    if (!graph_->directed())
      changed |=
          extend_frontier(scratch_[c.v], c.begin, c.end, frontiers_[c.u]);
  }
  ++level_;
  if (!changed) {
    fixpoint_ = true;
    --level_;  // the budget did not actually grow anything new
    return false;
  }
  return true;
}

int SingleSourceEngine::run_to_fixpoint(int max_levels) {
  while (!fixpoint_ && level_ < max_levels) step();
  return fixpoint_ ? level_ : max_levels + 1;
}

std::size_t SingleSourceEngine::total_pairs() const noexcept {
  std::size_t total = 0;
  for (const auto& f : frontiers_) total += f.size();
  return total;
}

std::vector<std::vector<DeliveryFunction>> compute_hop_profiles(
    const TemporalGraph& graph, NodeId source, const std::vector<int>& budgets,
    int max_levels) {
  for (int b : budgets) {
    if (b < 1) throw std::invalid_argument("hop budget must be >= 1");
  }
  std::vector<std::vector<DeliveryFunction>> out(budgets.size());
  SingleSourceEngine engine(graph, source);
  int level = 0;
  auto capture_if_requested = [&] {
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      if (budgets[i] == level) out[i] = engine.frontiers();
    }
  };
  while (level < max_levels) {
    if (!engine.step()) break;
    ++level;
    capture_if_requested();
  }
  // Budgets at or beyond the fixpoint level (including kUnboundedHops)
  // all equal the final frontiers.
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    if (budgets[i] > level || budgets[i] == kUnboundedHops) {
      if (out[i].empty()) out[i] = engine.frontiers();
    }
  }
  return out;
}

}  // namespace odtn
