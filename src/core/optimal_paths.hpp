// Exhaustive computation of delay-optimal paths (paper §4.4).
//
// For a fixed source s, the engine computes for every destination d and
// every hop budget k the delivery function L_k(s, d) describing ALL
// delay-optimal paths from s to d that use at most k contacts, by a
// monotone dynamic program over hop levels:
//
//   L_0(s, s) = { identity (LD = +inf, EA = -inf) },    L_0(s, d) = {}
//   L_{k+1}(s, d) = prune( L_k(s, d)
//        union { (min(LD, end), max(EA, begin)) :
//                (LD, EA) in L_k(s, w), contact (w, d, [begin, end]),
//                EA <= end } )
//
// Extending only frontier (non-dominated) prefixes is lossless because the
// extension map is monotone with respect to dominance. The fixpoint of the
// iteration is L_infinity, and the level at which it is reached upper-
// bounds the number of hops any delay-optimal path ever needs.
//
// Per contact and per source, the extension step touches
// O(log F + #useful pairs) frontier entries thanks to the double-monotone
// (LD and EA both increasing) frontier order -- this is what makes traces
// with hundreds of thousands of contacts tractable (§4.4).
#pragma once

#include <limits>
#include <vector>

#include "core/delivery_function.hpp"
#include "core/temporal_graph.hpp"

namespace odtn {

/// Hop budget value meaning "unbounded" (compute the fixpoint).
inline constexpr int kUnboundedHops = std::numeric_limits<int>::max();

/// Extends every usable pair of `from` through one contact edge
/// [begin, end] and inserts the (pruned set of) results into `into`.
/// Returns true iff `into` changed. Exposed for tests and for building
/// custom propagation schemes.
bool extend_frontier(const DeliveryFunction& from, double begin, double end,
                     DeliveryFunction& into);

/// Hop-level dynamic program from one source.
///
/// After construction the engine is at hop budget 0 (only the source's
/// identity frontier). Each step() raises the budget by one; frontiers()
/// then describe all delay-optimal paths with at most hops() contacts.
class SingleSourceEngine {
 public:
  SingleSourceEngine(const TemporalGraph& graph, NodeId source);

  /// Advances the hop budget by one. Returns false (and does nothing)
  /// once the fixpoint has been reached.
  bool step();

  /// Runs step() until the fixpoint or `max_levels` levels, whichever
  /// comes first. Returns the hop budget at which the frontiers stopped
  /// changing (i.e. L_k == L_infinity), or max_levels+1 if not converged.
  int run_to_fixpoint(int max_levels = 64);

  /// Current hop budget.
  int hops() const noexcept { return level_; }

  /// True iff the last step produced no change (frontiers == L_infinity).
  bool at_fixpoint() const noexcept { return fixpoint_; }

  /// Frontier (delivery function) for `dst` at the current hop budget.
  const DeliveryFunction& frontier(NodeId dst) const {
    return frontiers_.at(dst);
  }

  const std::vector<DeliveryFunction>& frontiers() const noexcept {
    return frontiers_;
  }

  NodeId source() const noexcept { return source_; }

  /// Total number of stored Pareto pairs across destinations (a measure
  /// of the representation size; used by the ablation bench).
  std::size_t total_pairs() const noexcept;

 private:
  const TemporalGraph* graph_;
  NodeId source_;
  int level_ = 0;
  bool fixpoint_ = false;
  std::vector<DeliveryFunction> frontiers_;
  std::vector<DeliveryFunction> scratch_;
};

/// Convenience: frontiers from `source` at each requested hop budget.
/// `budgets` entries are >= 1 or kUnboundedHops; the result has one
/// vector of num_nodes delivery functions per requested budget, in the
/// same order.
std::vector<std::vector<DeliveryFunction>> compute_hop_profiles(
    const TemporalGraph& graph, NodeId source, const std::vector<int>& budgets,
    int max_levels = 64);

}  // namespace odtn
