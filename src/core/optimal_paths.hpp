// Exhaustive computation of delay-optimal paths (paper §4.4).
//
// For a fixed source s, the engine computes for every destination d and
// every hop budget k the delivery function L_k(s, d) describing ALL
// delay-optimal paths from s to d that use at most k contacts, by a
// monotone dynamic program over hop levels:
//
//   L_0(s, s) = { identity (LD = +inf, EA = -inf) },    L_0(s, d) = {}
//   L_{k+1}(s, d) = prune( L_k(s, d)
//        union { (min(LD, end), max(EA, begin)) :
//                (LD, EA) in L_k(s, w), contact (w, d, [begin, end]),
//                EA <= end } )
//
// Extending only frontier (non-dominated) prefixes is lossless because the
// extension map is monotone with respect to dominance. The fixpoint of the
// iteration is L_infinity, and the level at which it is reached upper-
// bounds the number of hops any delay-optimal path ever needs.
//
// The default (indexed) propagation scheme additionally exploits that
// re-extending an OLD pair is redundant: a pair that entered L_{k-1}(s, w)
// at some level j < k already had all its extensions offered at level j+1,
// and frontiers only improve, so offering them again yields only dominated
// candidates. Each level therefore extends, per node, only the *delta* --
// the pairs newly kept at the previous level -- through that node's own
// contacts (TemporalGraph::neighbors_by_end). Because every delta pair
// arrives no earlier than the delta's minimum EA, contacts ending before
// that instant cannot carry any of them and are skipped wholesale via one
// binary search on the by-end index. Extension preserves dominance, so
// keeping each delta pruned (dropping delta pairs dominated by later
// same-level inserts) is lossless too. The original full-sweep scheme is
// kept as a reference semantics under EngineMode::kLevelSweep.
//
// Per contact and per source, the extension step touches
// O(log F + #useful pairs) frontier entries thanks to the double-monotone
// (LD and EA both increasing) frontier order -- this is what makes traces
// with hundreds of thousands of contacts tractable (§4.4).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/delivery_function.hpp"
#include "core/temporal_graph.hpp"

namespace odtn {

/// Hop budget value meaning "unbounded" (compute the fixpoint).
inline constexpr int kUnboundedHops = std::numeric_limits<int>::max();

/// Propagation scheme of the hop-level DP. Both modes compute identical
/// frontiers at every level; kLevelSweep is the original reference
/// semantics (full frontier snapshot + global contact rescan per level),
/// kept for cross-checking and as the baseline in perf benches.
enum class EngineMode {
  kIndexed,
  kLevelSweep,
};

/// Instrumentation counters of one engine run (or an aggregate over
/// runs). All counts are exact, not sampled.
struct EngineStats {
  /// Contact-direction extensions attempted (one per usable (frontier,
  /// contact, direction) triple examined).
  std::uint64_t contacts_examined = 0;
  /// Candidate pairs kept by DeliveryFunction::insert.
  std::uint64_t pairs_inserted = 0;
  /// Candidate pairs rejected as dominated by an existing frontier pair.
  std::uint64_t pairs_dominated = 0;
  /// Frontier snapshots skipped relative to the level-sweep scheme
  /// (num_nodes - |active set|, summed over levels). Zero in kLevelSweep.
  std::uint64_t frontier_copies_avoided = 0;
  /// Workspace allocations: +1 each time an engine materializes its
  /// per-node arrays (construction). reset() never re-allocates, so a
  /// worker that recycles one engine across sources stays at 1.
  std::uint64_t workspace_allocations = 0;
  /// reset() calls, i.e. sources served by an already-allocated
  /// workspace. In steady state sources = allocations + reuses.
  std::uint64_t workspace_reuses = 0;
  /// Pareto pairs fed to delay-CDF accumulators (counted by
  /// compute_delay_cdf for both accumulation schemes; incremental
  /// retractions count too). The work the incremental scheme saves shows
  /// up here.
  std::uint64_t cdf_pairs_integrated = 0;

  void merge(const EngineStats& other) noexcept {
    contacts_examined += other.contacts_examined;
    pairs_inserted += other.pairs_inserted;
    pairs_dominated += other.pairs_dominated;
    frontier_copies_avoided += other.frontier_copies_avoided;
    workspace_allocations += other.workspace_allocations;
    workspace_reuses += other.workspace_reuses;
    cdf_pairs_integrated += other.cdf_pairs_integrated;
  }
};

/// Extends every usable pair of `from` through one contact edge
/// [begin, end] and inserts the (pruned set of) results into `into`.
/// Returns true iff `into` changed. When `stats` is non-null the
/// kept/dominated candidate counts are accumulated into it. Exposed for
/// tests and for building custom propagation schemes.
bool extend_frontier(const DeliveryFunction& from, double begin, double end,
                     DeliveryFunction& into, EngineStats* stats = nullptr);

/// Hop-level dynamic program from one source.
///
/// After construction the engine is at hop budget 0 (only the source's
/// identity frontier). Each step() raises the budget by one; frontiers()
/// then describe all delay-optimal paths with at most hops() contacts.
class SingleSourceEngine {
 public:
  SingleSourceEngine(const TemporalGraph& graph, NodeId source,
                     EngineMode mode = EngineMode::kIndexed);

  /// Rebinds the engine to a new source on the same graph: hop budget
  /// back to 0, every frontier and delta emptied. All buffers keep their
  /// capacity (DeliveryFunction::clear() preserves storage), so a worker
  /// that processes many sources through one engine allocates its
  /// workspace exactly once -- reset() itself never allocates. Counted
  /// in stats().workspace_reuses; change tracking (track_changes)
  /// survives the reset.
  void reset(NodeId source);

  /// Enables pre-change frontier snapshots: after each step() that
  /// changed something, last_changed() lists the nodes whose frontier
  /// grew at that level and previous_frontier(i) is last_changed()[i]'s
  /// frontier as it was before the level. The snapshot cost is one pair
  /// list copy per changed node (capacity reused across levels), i.e.
  /// proportional to the integration work the incremental all-pairs
  /// scheme performs anyway. Indexed mode only: throws std::logic_error
  /// in kLevelSweep.
  void track_changes(bool enable);

  /// Nodes whose frontier changed at the last completed level, in
  /// publication order (empty once the fixpoint step ran). Indexed mode
  /// only.
  const std::vector<NodeId>& last_changed() const noexcept {
    return active_;
  }

  /// Frontier of last_changed()[i] as it was BEFORE the last level.
  /// Requires track_changes(true) before the step that produced it.
  const DeliveryFunction& previous_frontier(std::size_t i) const {
    return retired_.at(i);
  }

  /// Advances the hop budget by one. Returns false (and does nothing)
  /// once the fixpoint has been reached.
  bool step();

  /// Runs step() until the fixpoint or `max_levels` levels, whichever
  /// comes first. Returns the hop budget at which the frontiers stopped
  /// changing (i.e. L_k == L_infinity), or max_levels+1 if not converged.
  int run_to_fixpoint(int max_levels = 64);

  /// Current hop budget.
  int hops() const noexcept { return level_; }

  /// True iff the last step produced no change (frontiers == L_infinity).
  bool at_fixpoint() const noexcept { return fixpoint_; }

  /// Frontier (delivery function) for `dst` at the current hop budget.
  const DeliveryFunction& frontier(NodeId dst) const {
    return frontiers_.at(dst);
  }

  const std::vector<DeliveryFunction>& frontiers() const noexcept {
    return frontiers_;
  }

  NodeId source() const noexcept { return source_; }

  EngineMode mode() const noexcept { return mode_; }

  /// Counters accumulated since construction.
  const EngineStats& stats() const noexcept { return stats_; }

  /// Total number of stored Pareto pairs across destinations (a measure
  /// of the representation size; used by the ablation bench).
  std::size_t total_pairs() const noexcept;

 private:
  bool step_indexed();
  bool step_level_sweep();
  void finish_level(bool changed);

  const TemporalGraph* graph_;
  NodeId source_;
  EngineMode mode_;
  int level_ = 0;
  bool fixpoint_ = false;
  EngineStats stats_;
  std::vector<DeliveryFunction> frontiers_;
  // kLevelSweep: full snapshot of frontiers_ at the start of each level.
  std::vector<DeliveryFunction> scratch_;
  // kIndexed: per-node deltas (pairs newly kept at the previous level,
  // to extend now / at the current level, being collected), the nodes
  // whose delta is non-empty, and a dedup mark for next_active_.
  std::vector<DeliveryFunction> cur_delta_;
  std::vector<DeliveryFunction> next_delta_;
  std::vector<NodeId> active_;
  std::vector<NodeId> next_active_;
  std::vector<std::uint8_t> dirty_mark_;
  // Scratch: per delta pair, the ea of its successor in the node's full
  // frontier (used to suppress provably redundant wait candidates).
  std::vector<double> succ_ea_;
  // Pre-change frontier snapshots, aligned with active_ (the nodes
  // changed at the last level), populated only when track_changes_ is
  // set. Never shrunk, so each slot's pair storage is recycled.
  std::vector<DeliveryFunction> retired_;
  bool track_changes_ = false;
};

/// Convenience: frontiers from `source` at each requested hop budget.
/// `budgets` entries are >= 1 or kUnboundedHops; the result has one
/// vector of num_nodes delivery functions per requested budget, in the
/// same order.
std::vector<std::vector<DeliveryFunction>> compute_hop_profiles(
    const TemporalGraph& graph, NodeId source, const std::vector<int>& budgets,
    int max_levels = 64);

}  // namespace odtn
