// Exhaustive computation of delay-optimal paths (paper §4.4).
//
// For a fixed source s, the engine computes for every destination d and
// every hop budget k the delivery function L_k(s, d) describing ALL
// delay-optimal paths from s to d that use at most k contacts, by a
// monotone dynamic program over hop levels:
//
//   L_0(s, s) = { identity (LD = +inf, EA = -inf) },    L_0(s, d) = {}
//   L_{k+1}(s, d) = prune( L_k(s, d)
//        union { (min(LD, end), max(EA, begin)) :
//                (LD, EA) in L_k(s, w), contact (w, d, [begin, end]),
//                EA <= end } )
//
// Extending only frontier (non-dominated) prefixes is lossless because the
// extension map is monotone with respect to dominance. The fixpoint of the
// iteration is L_infinity, and the level at which it is reached upper-
// bounds the number of hops any delay-optimal path ever needs.
//
// Three propagation schemes compute IDENTICAL frontiers at every level:
//
//   kLevelSweep -- the seed reference semantics: full frontier snapshot +
//       global contact rescan per level.
//   kIndexed -- delta propagation over the per-node by-end contact index
//       (only pairs newly kept at the previous level are re-extended,
//       with by-end window pruning and wait-candidate suppression), with
//       per-node heap-vector frontier storage and per-pair
//       DeliveryFunction::insert maintenance. The PR 3 path, kept as the
//       perf baseline for the pooled kernels.
//   kPooled (default) -- the same delta propagation, but every pair of
//       the engine lives in one arena (util/arena.hpp) in SoA form and
//       the two hot kernels are batched: one level's candidates per
//       destination are pruned and merged against the existing frontier
//       by a single two-way sorted merge (core/frontier_kernels.hpp)
//       emitted into fresh arena space -- no per-pair element shifting,
//       no snapshot copies (the superseded span IS the pre-change
//       snapshot), zero steady-state allocations across reset().
//
// Per contact and per source, the extension step touches
// O(log F + #useful pairs) frontier entries thanks to the double-monotone
// (LD and EA both increasing) frontier order -- this is what makes traces
// with hundreds of thousands of contacts tractable (§4.4).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/delivery_function.hpp"
#include "core/temporal_graph.hpp"
#include "util/arena.hpp"

namespace odtn {

/// Hop budget value meaning "unbounded" (compute the fixpoint).
inline constexpr int kUnboundedHops = std::numeric_limits<int>::max();

/// Propagation scheme of the hop-level DP. All modes compute identical
/// frontiers at every level; see the file comment for the differences.
enum class EngineMode {
  kPooled,
  kIndexed,
  kLevelSweep,
};

/// Instrumentation counters of one engine run (or an aggregate over
/// runs). All counts are exact, not sampled.
struct EngineStats {
  /// Contact-direction extensions attempted (one per usable (frontier,
  /// contact, direction) triple examined).
  std::uint64_t contacts_examined = 0;
  /// Candidate pairs kept by the frontier maintenance (insert or merge).
  std::uint64_t pairs_inserted = 0;
  /// Candidate pairs rejected as dominated (by the existing frontier at
  /// offer time, or by a same-level candidate at publish time).
  std::uint64_t pairs_dominated = 0;
  /// Frontier snapshots skipped relative to the level-sweep scheme
  /// (num_nodes - |active set|, summed over levels). Zero in kLevelSweep.
  std::uint64_t frontier_copies_avoided = 0;
  /// Workspace allocations: +1 each time an engine materializes its
  /// per-node arrays (construction). reset() never re-allocates, so a
  /// worker that recycles one engine across sources stays at 1.
  std::uint64_t workspace_allocations = 0;
  /// reset() calls, i.e. sources served by an already-allocated
  /// workspace. In steady state sources = allocations + reuses.
  std::uint64_t workspace_reuses = 0;
  /// Pareto pairs fed to delay-CDF accumulators (counted by
  /// compute_delay_cdf for both accumulation schemes; incremental
  /// retractions count too). The work the incremental scheme saves shows
  /// up here.
  std::uint64_t cdf_pairs_integrated = 0;
  /// Batched frontier merges performed (one per destination whose
  /// candidate batch reached publish). kPooled only.
  std::uint64_t merge_batches = 0;
  /// Peak pairs resident in the engine's arenas (frontier + delta slabs,
  /// including per-merge slack). kPooled only. merge() takes the max, so
  /// an aggregate reports the largest single-engine footprint -- flat
  /// across sources once the first source warmed the slabs up.
  std::uint64_t pairs_peak = 0;
  /// Peak bytes committed to the engine's arenas. kPooled only; merged
  /// by max, like pairs_peak.
  std::uint64_t arena_bytes_peak = 0;
  /// Serve-path result cache (core/query_engine.hpp): sources answered
  /// from a cached CDF partial without touching a propagation engine.
  std::uint64_t cache_hits = 0;
  /// Sources computed fresh (and then offered to the cache). Zero when
  /// no cache is in play, so batch runs satisfy
  /// sources = cache_hits + cache_misses only on the serve path.
  std::uint64_t cache_misses = 0;
  /// Cache entries evicted to make room, attributed to the query whose
  /// insert triggered them.
  std::uint64_t cache_evictions = 0;
  /// Source blocks executed by the batched multi-source engine
  /// (core/batched_engine.hpp): one per BatchedSourceEngine
  /// construction or reset. Zero outside batched runs.
  std::uint64_t batch_blocks = 0;
  /// By-end index walks the batched engine avoided: for every (level,
  /// node) the per-source path would walk the node's by-end neighbor
  /// list once per active source lane, the batched engine walks it
  /// once -- this counts the lanes beyond the first.
  std::uint64_t index_walks_saved = 0;
  /// Lane-levels actually executed by batched blocks (lanes not yet at
  /// their fixpoint when the block advanced a level).
  std::uint64_t batch_lane_steps = 0;
  /// Lane-level slots offered by batched blocks (block width x levels
  /// the block advanced). batch_lane_steps / batch_lane_slots is the
  /// lane occupancy -- how well block members' fixpoint depths agree.
  std::uint64_t batch_lane_slots = 0;

  void merge(const EngineStats& other) noexcept {
    contacts_examined += other.contacts_examined;
    pairs_inserted += other.pairs_inserted;
    pairs_dominated += other.pairs_dominated;
    frontier_copies_avoided += other.frontier_copies_avoided;
    workspace_allocations += other.workspace_allocations;
    workspace_reuses += other.workspace_reuses;
    cdf_pairs_integrated += other.cdf_pairs_integrated;
    merge_batches += other.merge_batches;
    if (other.pairs_peak > pairs_peak) pairs_peak = other.pairs_peak;
    if (other.arena_bytes_peak > arena_bytes_peak)
      arena_bytes_peak = other.arena_bytes_peak;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evictions += other.cache_evictions;
    batch_blocks += other.batch_blocks;
    index_walks_saved += other.index_walks_saved;
    batch_lane_steps += other.batch_lane_steps;
    batch_lane_slots += other.batch_lane_slots;
  }
};

/// Extends every usable pair of `from` through one contact edge
/// [begin, end] and inserts the (pruned set of) results into `into`.
/// Returns true iff `into` changed. When `stats` is non-null the
/// kept/dominated candidate counts are accumulated into it. Exposed for
/// tests and for building custom propagation schemes.
bool extend_frontier(const DeliveryFunction& from, double begin, double end,
                     DeliveryFunction& into, EngineStats* stats = nullptr);

/// Enumerates the candidate pairs that extending the frontier `from`
/// through one contact window [begin, end] yields, calling `offer` on
/// each in the exact order extend_frontier inserts them. `from` must be
/// a canonical frontier (both lanes strictly ascending). View-layout
/// counterpart of extend_frontier for callers that keep frontiers in SoA
/// version storage and want the candidates without materializing a
/// DeliveryFunction first.
template <typename Offer>
void for_each_frontier_extension(const FrontierView& from, double begin,
                                 double end, Offer&& offer) {
  // Pairs with ea <= begin all extend to (min(ld, end), begin); the one
  // with the largest ld dominates the rest -- the last pair before
  // `first_late` (pairs ascend in ea).
  std::size_t lo = 0, hi = from.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (begin < from.ea(mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  const std::size_t first_late = lo;
  if (first_late > 0)
    offer(PathPair{std::min(from.ld(first_late - 1), end), begin});
  // Pairs with begin < ea <= end extend to (min(ld, end), ea). Once a
  // pair has ld >= end, later pairs (larger ld AND larger ea) only yield
  // dominated (end, larger-ea) candidates.
  for (std::size_t i = first_late; i < from.size() && from.ea(i) <= end;
       ++i) {
    offer(PathPair{std::min(from.ld(i), end), from.ea(i)});
    if (from.ld(i) >= end) break;
  }
}

/// Hop-level dynamic program from one source.
///
/// After construction the engine is at hop budget 0 (only the source's
/// identity frontier). Each step() raises the budget by one; the
/// frontier accessors then describe all delay-optimal paths with at most
/// hops() contacts.
class SingleSourceEngine {
 public:
  SingleSourceEngine(const TemporalGraph& graph, NodeId source,
                     EngineMode mode = EngineMode::kPooled);

  /// Rebinds the engine to a new source on the same graph: hop budget
  /// back to 0, every frontier and delta emptied. All buffers keep their
  /// capacity (heap modes clear pair vectors in place; kPooled recycles
  /// its arenas), so a worker that processes many sources through one
  /// engine allocates its workspace exactly once -- reset() itself never
  /// allocates once the slabs reached their high-water capacity. Counted
  /// in stats().workspace_reuses; change tracking (track_changes)
  /// survives the reset.
  void reset(NodeId source);

  /// Enables pre-change frontier snapshots: after each step() that
  /// changed something, last_changed() lists the nodes whose frontier
  /// grew at that level and previous_frontier_view(i) is
  /// last_changed()[i]'s frontier as it was before the level. In
  /// kIndexed the snapshot cost is one pair list copy per changed node
  /// (capacity reused across levels); in kPooled snapshots are FREE --
  /// the superseded arena span simply stays addressable until the next
  /// reset, so tracking is always on and this call only validates the
  /// mode. Throws std::logic_error in kLevelSweep.
  void track_changes(bool enable);

  /// Nodes whose frontier changed at the last completed level, in
  /// publication order (empty once the fixpoint step ran). Delta modes
  /// (kPooled / kIndexed) only.
  const std::vector<NodeId>& last_changed() const noexcept {
    return active_;
  }

  /// Frontier of last_changed()[i] as it was BEFORE the last level.
  /// kIndexed only (requires track_changes(true) before the step that
  /// produced it); kPooled callers use previous_frontier_view.
  const DeliveryFunction& previous_frontier(std::size_t i) const {
    return retired_.at(i);
  }

  /// View of last_changed()[i]'s frontier as it was BEFORE the last
  /// level. Works in kPooled (arena span, valid until the next reset)
  /// and kIndexed (requires track_changes(true)).
  FrontierView previous_frontier_view(std::size_t i) const;

  /// Advances the hop budget by one. Returns false (and does nothing)
  /// once the fixpoint has been reached.
  bool step();

  /// Runs step() until the fixpoint or `max_levels` levels, whichever
  /// comes first. Returns the hop budget at which the frontiers stopped
  /// changing (i.e. L_k == L_infinity), or max_levels+1 if not converged.
  int run_to_fixpoint(int max_levels = 64);

  /// Current hop budget.
  int hops() const noexcept { return level_; }

  /// True iff the last step produced no change (frontiers == L_infinity).
  bool at_fixpoint() const noexcept { return fixpoint_; }

  /// Frontier (delivery function) for `dst` at the current hop budget,
  /// BY VALUE: heap modes copy, kPooled materializes from its arena
  /// span. Convenient and mode-agnostic; hot loops use frontier_view.
  DeliveryFunction frontier(NodeId dst) const;

  /// Zero-copy read view of `dst`'s frontier in any mode. Invalidated
  /// by the next step() or reset().
  FrontierView frontier_view(NodeId dst) const;

  /// All frontiers at the current hop budget, by value (one delivery
  /// function per node).
  std::vector<DeliveryFunction> frontiers() const;

  NodeId source() const noexcept { return source_; }

  EngineMode mode() const noexcept { return mode_; }

  /// Counters accumulated since construction.
  const EngineStats& stats() const noexcept { return stats_; }

  /// Total number of stored Pareto pairs across destinations (a measure
  /// of the representation size; used by the ablation bench).
  std::size_t total_pairs() const noexcept;

 private:
  bool step_indexed();
  bool step_level_sweep();
  bool step_pooled();
  void finish_level(bool changed);
  void seed_pooled();
  void record_arena_peaks() noexcept;

  const TemporalGraph* graph_;
  NodeId source_;
  EngineMode mode_;
  int level_ = 0;
  bool fixpoint_ = false;
  EngineStats stats_;
  // Heap modes (kIndexed / kLevelSweep): per-node frontier objects.
  std::vector<DeliveryFunction> frontiers_;
  // kLevelSweep: full snapshot of frontiers_ at the start of each level.
  std::vector<DeliveryFunction> scratch_;
  // kIndexed: per-node deltas (pairs newly kept at the previous level,
  // to extend now / at the current level, being collected), the nodes
  // whose delta is non-empty, and a dedup mark for next_active_.
  std::vector<DeliveryFunction> cur_delta_;
  std::vector<DeliveryFunction> next_delta_;
  std::vector<NodeId> active_;
  std::vector<NodeId> next_active_;
  std::vector<std::uint8_t> dirty_mark_;
  // kIndexed scratch: per delta pair, the ea of its successor in the
  // node's full frontier (used to suppress provably redundant wait
  // candidates).
  std::vector<double> succ_ea_;
  // kIndexed: pre-change frontier snapshots, aligned with active_ (the
  // nodes changed at the last level), populated only when track_changes_
  // is set. Never shrunk, so each slot's pair storage is recycled.
  std::vector<DeliveryFunction> retired_;
  bool track_changes_ = false;

  // --- kPooled state ---------------------------------------------------
  // All frontier pairs live in arena_ as SoA lanes; fspan_[v] addresses
  // node v's current frontier. Superseded versions stay in the arena as
  // free pre-change snapshots (retired_spans_, aligned with active_).
  PairArena arena_;
  std::vector<PairSpan> fspan_;
  std::vector<PairSpan> retired_spans_;
  // Deltas (pairs newly kept at the previous level) ping-pong between
  // two arenas whose aux lane carries each pair's successor EA; spans
  // are aligned with active_ / next_active_.
  PairArena delta_arena_[2]{PairArena(true), PairArena(true)};
  std::vector<PairSpan> delta_spans_;
  std::vector<PairSpan> next_delta_spans_;
  int delta_parity_ = 0;
  // One level's raw candidates: flat (ld, ea, target) triples collected
  // during extension, then counting-sorted by target and merged batch by
  // batch at publish. One vector, so the hot offer path pays a single
  // push_back.
  struct RawCandidate {
    double ld;
    double ea;
    NodeId to;
  };
  std::vector<RawCandidate> cand_;
  std::vector<NodeId> dirty_;
  std::vector<std::uint32_t> cand_count_;
  std::vector<std::uint32_t> grp_begin_;
  std::vector<std::uint32_t> grp_pos_;
  std::vector<PathPair> grp_pairs_;
  /// Per-node copy of the frontier's LAST pair ({-inf, +inf} while
  /// empty): the offer-time dominance probe resolves its two common
  /// outcomes from this one dense array without touching the (much
  /// larger) arena lanes.
  std::vector<PathPair> last_pair_;
};

/// Convenience: frontiers from `source` at each requested hop budget.
/// `budgets` entries are >= 1 or kUnboundedHops; the result has one
/// vector of num_nodes delivery functions per requested budget, in the
/// same order.
std::vector<std::vector<DeliveryFunction>> compute_hop_profiles(
    const TemporalGraph& graph, NodeId source, const std::vector<int>& budgets,
    int max_levels = 64);

}  // namespace odtn
