// Sharded all-pairs delay-CDF engine (the partitioned execution layer).
//
// The source set is split across S shards by core/partition; each shard
// runs shard-local all-pairs over a PRIVATE graph copy with its own
// engine arena (cache/NUMA locality on one host), and returns its
// sources' CDF partials. The coordinator folds the partials in
// canonical endpoint-index order -- the same left chain the unsharded
// driver uses -- so every shard count and policy reproduces the
// unsharded result BIT-IDENTICALLY (see core/source_cdf.hpp for why the
// fold order is the determinism contract).
//
// The shard boundary is a serializable message interface: ShardRequest
// (source range, window, hop budget, transform key) and ShardResult
// (per-source CDF partials + EngineStats) with versioned little-endian
// byte encodings. The in-process backend ALWAYS round-trips both
// messages through encode()/decode(), so the wire format is exercised
// on every sharded run and a later multi-process or RPC backend drops
// in without touching the engine: ship the bytes, run run_shard() in
// the worker process, ship the bytes back.
//
// Per-source (rather than pre-merged per-shard) partials are the price
// of bit-identity: floating-point addition is not associative, so a
// shard cannot pre-fold its sources without fixing one grouping per
// partition. Shipping the raw per-source difference arrays keeps the
// coordinator free to fold in canonical order for ANY assignment. The
// payload is O(sources * max_hops * grid) doubles -- the same order as
// the result the coordinator must materialize anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/diameter.hpp"
#include "core/partition.hpp"
#include "core/source_cdf.hpp"
#include "core/temporal_graph.hpp"

namespace odtn {

/// Cheap fingerprint of the graph a shard must load ("transform key"):
/// identifies the trace and the transform chain that produced it, so a
/// future multi-process backend can cache slices and a worker can
/// refuse a request aimed at different data. run_shard validates it.
std::string graph_transform_key(const TemporalGraph& graph);

/// Work order for one shard. `sources` lists the endpoint INDICES
/// (positions in `endpoints`) this shard owns, ascending; `endpoints`
/// is the full destination set as global node ids.
struct ShardRequest {
  static constexpr std::uint32_t kMagic = 0x4F445251;  // "ODRQ"
  /// v2: added source_batch (batched multi-source execution inside the
  /// shard, core/batched_engine.hpp) after max_levels.
  static constexpr std::uint16_t kVersion = 2;

  std::uint32_t shard_id = 0;
  std::uint32_t num_shards = 1;
  ShardPolicy policy = ShardPolicy::kContiguous;
  EngineMode engine = EngineMode::kPooled;
  bool incremental = true;
  std::int32_t max_hops = 1;
  std::int32_t max_levels = 64;
  /// Sources per batched block inside the shard; 1 = per-source path.
  /// Clamped to the shard's owned source count. > 1 requires the pooled
  /// engine with incremental accumulation. Bit-identical either way.
  std::int32_t source_batch = 1;
  std::vector<double> grid;
  TimeWindows windows;
  std::vector<NodeId> endpoints;
  std::vector<std::uint32_t> sources;
  std::string transform_key;

  /// Versioned little-endian byte encoding. Doubles are copied by bit
  /// pattern, so decode(encode()) reproduces every field exactly.
  std::vector<std::uint8_t> encode() const;

  /// Throws std::runtime_error on a truncated/trailing-garbage buffer,
  /// bad magic, or unsupported version.
  static ShardRequest decode(const std::uint8_t* data, std::size_t size);
};

/// One shard's answer: per-source CDF partials (ascending endpoint
/// index) plus the shard's aggregate engine counters and fixpoint fold.
struct ShardResult {
  static constexpr std::uint32_t kMagic = 0x4F445253;  // "ODRS"
  /// v2: EngineStats gained the serve-cache counters (cache_hits /
  /// cache_misses / cache_evictions), widening the stats block from 10
  /// to 13 u64 fields. v3: the batched-execution counters (batch_blocks
  /// / index_walks_saved / batch_lane_steps / batch_lane_slots) widen it
  /// from 13 to 17.
  static constexpr std::uint16_t kVersion = 3;

  std::uint32_t shard_id = 0;
  bool converged = true;
  std::int32_t fixpoint_hops = 0;
  EngineStats stats;
  /// (endpoint index, that source's partial), ascending by index.
  std::vector<std::pair<std::uint32_t, SourceCdfPartial>> partials;

  std::vector<std::uint8_t> encode() const;

  /// Throws std::runtime_error on a truncated/trailing-garbage buffer,
  /// bad magic, unsupported version, or inconsistent lane sizes.
  static ShardResult decode(const std::uint8_t* data, std::size_t size);
};

/// Executes one shard's work order against `slice` (the shard's private
/// graph copy; must match request.transform_key). Pure shard-local
/// computation -- this is the function a multi-process backend runs in
/// the worker process. Throws std::invalid_argument on a malformed
/// request or a transform-key mismatch.
ShardResult run_shard(const TemporalGraph& slice, const ShardRequest& request);

/// The sharded all-pairs driver: partitions the sources per `sharding`,
/// round-trips every shard's request and result through the byte
/// encodings, runs shards via run_shard on private graph copies, and
/// folds the partials in canonical order. Bit-identical to
/// compute_delay_cdf with sharding disabled, for every shard count and
/// policy. `options.sharding` is ignored in favor of the explicit
/// `sharding` argument (compute_delay_cdf passes its own field through).
DelayCdfResult compute_delay_cdf_sharded(const TemporalGraph& graph,
                                         const DelayCdfOptions& options,
                                         const ShardingOptions& sharding);

}  // namespace odtn
