// Explicit enumeration of delay-optimal routes.
//
// The Pareto frontier (core/delivery_function.hpp) says WHEN every
// delay-optimal path departs and arrives; this module materializes one
// explicit contact sequence realizing each frontier pair, so routes can
// be inspected, replayed, or fed to a protocol simulator. Used by the
// trace-analysis example, the CLI `route` command, and Figure 8.
#pragma once

#include <cstddef>
#include <vector>

#include "core/path_pair.hpp"
#include "core/temporal_graph.hpp"

namespace odtn {

/// One delay-optimal route: the (LD, EA) summary plus an explicit
/// time-respecting contact sequence (indices into graph.contacts())
/// realizing it with the minimum number of hops.
struct OptimalRoute {
  PathPair pair;
  std::vector<std::size_t> contact_indices;

  int hops() const noexcept {
    return static_cast<int>(contact_indices.size());
  }
};

/// Enumerates one explicit route per delay-optimal path from `source`
/// to `destination` (one per Pareto pair of the unbounded-hops delivery
/// function), ordered by increasing departure time. Each route uses the
/// minimum hop count achieving its pair's arrival. Empty when the
/// destination is never reachable.
std::vector<OptimalRoute> enumerate_optimal_routes(const TemporalGraph& graph,
                                                   NodeId source,
                                                   NodeId destination,
                                                   int max_hops = 64);

}  // namespace odtn
