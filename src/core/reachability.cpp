#include "core/reachability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/optimal_paths.hpp"
#include "util/time_format.hpp"

namespace odtn {

std::vector<std::vector<double>> last_departure_matrix(
    const TemporalGraph& graph, int max_levels) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::vector<double>> matrix(
      n, std::vector<double>(n, -std::numeric_limits<double>::infinity()));
  for (NodeId src = 0; src < n; ++src) {
    SingleSourceEngine engine(graph, src);
    engine.run_to_fixpoint(max_levels);
    for (NodeId dst = 0; dst < n; ++dst)
      matrix[src][dst] = engine.frontier_view(dst).last_departure();
  }
  return matrix;
}

std::vector<double> reachability_ratio(const TemporalGraph& graph,
                                       const std::vector<double>& start_times,
                                       int max_levels) {
  const std::size_t n = graph.num_nodes();
  if (n < 2) return std::vector<double>(start_times.size(), 0.0);
  const auto matrix = last_departure_matrix(graph, max_levels);
  std::vector<double> out;
  out.reserve(start_times.size());
  for (double t : start_times) {
    std::size_t reachable = 0;
    for (NodeId s = 0; s < n; ++s)
      for (NodeId d = 0; d < n; ++d)
        if (s != d && t <= matrix[s][d]) ++reachable;
    out.push_back(static_cast<double>(reachable) /
                  static_cast<double>(n * (n - 1)));
  }
  return out;
}

std::vector<std::size_t> out_component_sizes(const TemporalGraph& graph,
                                              double start_time,
                                              int max_levels) {
  std::vector<std::size_t> sizes(graph.num_nodes(), 0);
  for (NodeId src = 0; src < graph.num_nodes(); ++src) {
    SingleSourceEngine engine(graph, src);
    engine.run_to_fixpoint(max_levels);
    for (NodeId dst = 0; dst < graph.num_nodes(); ++dst) {
      if (dst == src) continue;
      if (start_time <= engine.frontier_view(dst).last_departure())
        ++sizes[src];
    }
  }
  return sizes;
}

std::vector<std::pair<double, double>> daily_time_windows(double t_lo,
                                                          double t_hi,
                                                          double hour_lo,
                                                          double hour_hi) {
  if (!(t_lo <= t_hi) || !(0.0 <= hour_lo) || !(hour_lo < hour_hi) ||
      !(hour_hi <= 24.0))
    throw std::invalid_argument("daily_time_windows: bad arguments");
  std::vector<std::pair<double, double>> windows;
  const double first_day = std::floor(t_lo / kDay);
  for (double day = first_day;; day += 1.0) {
    const double lo = day * kDay + hour_lo * kHour;
    const double hi = day * kDay + hour_hi * kHour;
    if (lo > t_hi) break;
    const double clipped_lo = std::max(lo, t_lo);
    const double clipped_hi = std::min(hi, t_hi);
    if (clipped_lo < clipped_hi) windows.emplace_back(clipped_lo, clipped_hi);
  }
  return windows;
}

}  // namespace odtn
