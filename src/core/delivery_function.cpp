#include "core/delivery_function.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/frontier_kernels.hpp"

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double FrontierView::deliver_at(double t) const noexcept {
  if (aos_) {
    const std::size_t i = static_cast<std::size_t>(
        std::lower_bound(aos_, aos_ + n_, t,
                         [](const PathPair& p, double x) { return p.ld < x; }) -
        aos_);
    if (i == n_) return kInf;
    return std::max(t, aos_[i].ea);
  }
  const std::size_t i = frontier_lower_bound(ld_, n_, t);
  if (i == n_) return kInf;
  return std::max(t, ea_[i]);
}

double FrontierView::last_departure() const noexcept {
  return n_ == 0 ? -kInf : ld(n_ - 1);
}

void FrontierView::accumulate_delay_measure(MeasureCdfAccumulator& acc,
                                            double t_lo, double t_hi,
                                            double weight) const {
  assert(t_lo <= t_hi);
  if (!aos_) {
    acc.add_delivery_segments(ld_, ea_, n_, t_lo, t_hi, weight);
    return;
  }
  double prev_ld = -kInf;
  for (std::size_t i = 0; i < n_; ++i) {
    const double a = std::max(prev_ld, t_lo);
    const double b = std::min(aos_[i].ld, t_hi);
    if (a < b) acc.add_segment(a, b, aos_[i].ea, weight);
    prev_ld = aos_[i].ld;
    if (prev_ld >= t_hi) break;
  }
}

std::size_t DeliveryFunction::lower_bound_ld(double x) const noexcept {
  return static_cast<std::size_t>(
      std::lower_bound(pairs_.begin(), pairs_.end(), x,
                       [](const PathPair& p, double v) { return p.ld < v; }) -
      pairs_.begin());
}

bool DeliveryFunction::is_dominated(const PathPair& p) const noexcept {
  // A dominating pair has ld >= p.ld and ea <= p.ea. Among pairs with
  // ld >= p.ld the first one has the smallest ea (ea increases with ld),
  // so it is the only candidate to check.
  const std::size_t i = lower_bound_ld(p.ld);
  return i < pairs_.size() && pairs_[i].ea <= p.ea;
}

bool DeliveryFunction::insert(PathPair p) {
  assert(!std::isnan(p.ld) && !std::isnan(p.ea));
  const std::size_t pos = lower_bound_ld(p.ld);
  if (pos < pairs_.size() && pairs_[pos].ea <= p.ea) return false;
  // Remove pairs dominated by p: they have ld <= p.ld and ea >= p.ea.
  // Those are a suffix of [0, pos) (ea increases along the list), plus
  // possibly the pair at pos itself when it shares p's ld (its ea is
  // necessarily larger, otherwise p would have been dominated above).
  std::size_t last_removed = pos;
  if (last_removed < pairs_.size() && pairs_[last_removed].ld == p.ld)
    ++last_removed;
  std::size_t first_removed = pos;
  while (first_removed > 0 && pairs_[first_removed - 1].ea >= p.ea)
    --first_removed;
  if (first_removed < last_removed) {
    pairs_[first_removed] = p;
    pairs_.erase(
        pairs_.begin() + static_cast<std::ptrdiff_t>(first_removed) + 1,
        pairs_.begin() + static_cast<std::ptrdiff_t>(last_removed));
  } else {
    // Explicit geometric growth so a reallocation never happens inside
    // the positional insert below (reallocate-then-shift would copy the
    // suffix twice) and frontiers that grow pair by pair -- the engine's
    // publish path -- stay amortized O(1) per kept pair.
    if (pairs_.size() == pairs_.capacity())
      pairs_.reserve(std::max<std::size_t>(8, pairs_.capacity() * 2));
    pairs_.insert(pairs_.begin() + static_cast<std::ptrdiff_t>(pos), p);
  }
  return true;
}

void DeliveryFunction::assign_canonical(const FrontierView& v) {
  pairs_.clear();
  pairs_.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    assert(pairs_.empty() ||
           (pairs_.back().ld < v.ld(i) && pairs_.back().ea < v.ea(i)));
    pairs_.push_back(v.pair(i));
  }
}

double DeliveryFunction::deliver_at(double t) const noexcept {
  // del(t) = max(t, ea_i) for the first pair with ld_i >= t: its ea is
  // minimal among all usable pairs.
  const std::size_t i = lower_bound_ld(t);
  if (i == pairs_.size()) return kInf;
  return std::max(t, pairs_[i].ea);
}

double DeliveryFunction::delay(double t) const noexcept {
  const double d = deliver_at(t);
  return d == kInf ? kInf : d - t;
}

double DeliveryFunction::last_departure() const noexcept {
  return pairs_.empty() ? -kInf : pairs_.back().ld;
}

void DeliveryFunction::accumulate_delay_measure(MeasureCdfAccumulator& acc,
                                                double t_lo, double t_hi,
                                                double weight) const {
  assert(t_lo <= t_hi);
  // Start times in (ld_{i-1}, ld_i] are served by pair i: arrival
  // max(t, ea_i). Clip each segment to [t_lo, t_hi]; start times past the
  // last departure have no path and contribute nothing to the numerator.
  double prev_ld = -kInf;
  for (const PathPair& p : pairs_) {
    const double a = std::max(prev_ld, t_lo);
    const double b = std::min(p.ld, t_hi);
    if (a < b) acc.add_segment(a, b, p.ea, weight);
    prev_ld = p.ld;
    if (prev_ld >= t_hi) break;
  }
}

DeliveryFunction materialize(const FrontierView& view) {
  DeliveryFunction out;
  out.reserve(view.size());
  // Views are already sorted Pareto fronts, so each insert lands at the
  // end without shifting or removals.
  for (std::size_t i = 0; i < view.size(); ++i) out.insert(view.pair(i));
  return out;
}

double deliver_at_bruteforce(const std::vector<PathPair>& pairs, double t) {
  double best = kInf;
  for (const PathPair& p : pairs) best = std::min(best, deliver_at(p, t));
  return best;
}

}  // namespace odtn
