#include "core/delivery_function.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// First index whose ld is >= the given value.
std::size_t lower_bound_ld(const std::vector<PathPair>& pairs, double ld) {
  return static_cast<std::size_t>(
      std::lower_bound(pairs.begin(), pairs.end(), ld,
                       [](const PathPair& p, double x) { return p.ld < x; }) -
      pairs.begin());
}

}  // namespace

bool DeliveryFunction::is_dominated(const PathPair& p) const noexcept {
  // A dominating pair has ld >= p.ld and ea <= p.ea. Among pairs with
  // ld >= p.ld the first one has the smallest ea (ea increases with ld),
  // so it is the only candidate to check.
  const std::size_t i = lower_bound_ld(pairs_, p.ld);
  return i < pairs_.size() && pairs_[i].ea <= p.ea;
}

bool DeliveryFunction::insert(PathPair p) {
  assert(!std::isnan(p.ld) && !std::isnan(p.ea));
  const std::size_t pos = lower_bound_ld(pairs_, p.ld);
  if (pos < pairs_.size() && pairs_[pos].ea <= p.ea) return false;
  // Remove pairs dominated by p: they have ld <= p.ld and ea >= p.ea.
  // Those are a suffix of [0, pos) (ea increases along the list), plus
  // possibly the pair at pos itself when it shares p's ld (its ea is
  // necessarily larger, otherwise p would have been dominated above).
  std::size_t last_removed = pos;
  if (last_removed < pairs_.size() && pairs_[last_removed].ld == p.ld)
    ++last_removed;
  std::size_t first_removed = pos;
  while (first_removed > 0 && pairs_[first_removed - 1].ea >= p.ea)
    --first_removed;
  if (first_removed < last_removed) {
    pairs_[first_removed] = p;
    pairs_.erase(
        pairs_.begin() + static_cast<std::ptrdiff_t>(first_removed) + 1,
        pairs_.begin() + static_cast<std::ptrdiff_t>(last_removed));
  } else {
    pairs_.insert(pairs_.begin() + static_cast<std::ptrdiff_t>(pos), p);
  }
  return true;
}

double DeliveryFunction::deliver_at(double t) const noexcept {
  // del(t) = max(t, ea_i) for the first pair with ld_i >= t: its ea is
  // minimal among all usable pairs.
  const std::size_t i = lower_bound_ld(pairs_, t);
  if (i == pairs_.size()) return kInf;
  return std::max(t, pairs_[i].ea);
}

double DeliveryFunction::delay(double t) const noexcept {
  const double d = deliver_at(t);
  return d == kInf ? kInf : d - t;
}

double DeliveryFunction::last_departure() const noexcept {
  return pairs_.empty() ? -kInf : pairs_.back().ld;
}

void DeliveryFunction::accumulate_delay_measure(MeasureCdfAccumulator& acc,
                                                double t_lo, double t_hi,
                                                double weight) const {
  assert(t_lo <= t_hi);
  // Start times in (ld_{i-1}, ld_i] are served by pair i: arrival
  // max(t, ea_i). Clip each segment to [t_lo, t_hi]; start times past the
  // last departure have no path and contribute nothing to the numerator.
  double prev_ld = -kInf;
  for (const PathPair& p : pairs_) {
    const double a = std::max(prev_ld, t_lo);
    const double b = std::min(p.ld, t_hi);
    if (a < b) acc.add_segment(a, b, p.ea, weight);
    prev_ld = p.ld;
    if (prev_ld >= t_hi) break;
  }
}

double deliver_at_bruteforce(const std::vector<PathPair>& pairs, double t) {
  double best = kInf;
  for (const PathPair& p : pairs) best = std::min(best, deliver_at(p, t));
  return best;
}

}  // namespace odtn
