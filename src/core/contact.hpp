// Contacts: the atomic connectivity events of an opportunistic network.
#pragma once

#include <cstdint>
#include <vector>

namespace odtn {

/// Device identifier. Nodes of a temporal graph are 0..num_nodes-1.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A contact: device `u` sees device `v` during [begin, end].
/// In an undirected temporal graph the contact can carry data both ways;
/// in a directed one only u -> v. Zero-duration contacts (begin == end)
/// are legal and model instantaneous meetings (e.g. the continuous-time
/// random model of Section 3.1.2 of the paper).
struct Contact {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double begin = 0.0;
  double end = 0.0;

  double duration() const noexcept { return end - begin; }

  friend bool operator==(const Contact&, const Contact&) = default;
};

/// True iff the contact has valid endpoints (u != v, both assigned) and a
/// non-negative duration.
bool is_valid_contact(const Contact& c) noexcept;

/// Orders contacts by (begin, end, u, v); the canonical trace order.
bool contact_less(const Contact& a, const Contact& b) noexcept;

/// Largest endpoint id appearing in `contacts`; kInvalidNode when empty.
/// Trace canonicalization cross-checks this against the declared node
/// count.
NodeId max_node_id(const std::vector<Contact>& contacts) noexcept;

/// Number of adjacent positions at which `contacts` violates canonical
/// (begin, end, u, v) order; 0 iff the sequence is canonically sorted.
std::size_t count_canonical_order_violations(
    const std::vector<Contact>& contacts) noexcept;

/// Sorts contacts into canonical order and merges overlapping or touching
/// contacts of the same (unordered) node pair into single contacts.
/// Used by trace generators and scan-granularity quantization.
std::vector<Contact> merge_overlapping_contacts(std::vector<Contact> contacts);

}  // namespace odtn
