#include "core/journeys.hpp"

#include <algorithm>

#include "core/optimal_paths.hpp"

namespace odtn {

std::vector<JourneyOptima> compute_journeys(const TemporalGraph& graph,
                                            NodeId source, int max_levels) {
  std::vector<JourneyOptima> out(graph.num_nodes());
  out[source].shortest_hops = 0;
  out[source].fastest_duration = 0.0;

  SingleSourceEngine engine(graph, source);
  // Shortest journeys: the hop level at which each destination first
  // becomes reachable at all.
  while (engine.step()) {
    for (NodeId dst = 0; dst < graph.num_nodes(); ++dst) {
      if (out[dst].shortest_hops < 0 && !engine.frontier_view(dst).empty())
        out[dst].shortest_hops = engine.hops();
    }
    if (engine.hops() >= max_levels) break;
  }
  // Fastest journeys: a frontier pair (LD, EA) supports journeys of
  // duration max(0, EA - LD) (contemporaneous pairs have zero-duration
  // journeys anywhere inside [EA, LD]); dominated pairs only do worse,
  // so the frontier minimum is the global minimum.
  for (NodeId dst = 0; dst < graph.num_nodes(); ++dst) {
    if (dst == source) continue;
    const FrontierView f = engine.frontier_view(dst);
    for (std::size_t i = 0; i < f.size(); ++i) {
      const PathPair p = f.pair(i);
      const double duration = std::max(0.0, p.ea - p.ld);
      if (duration < out[dst].fastest_duration) {
        out[dst].fastest_duration = duration;
        out[dst].fastest_departure = std::min(p.ld, p.ea);
      }
    }
  }
  return out;
}

double foremost_arrival(const TemporalGraph& graph, NodeId source,
                        NodeId destination, double start_time,
                        int max_levels) {
  SingleSourceEngine engine(graph, source);
  engine.run_to_fixpoint(max_levels);
  return engine.frontier_view(destination).deliver_at(start_time);
}

}  // namespace odtn
