#include "core/batched_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/frontier_kernels.hpp"

namespace odtn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

BatchedSourceEngine::BatchedSourceEngine(const TemporalGraph& graph,
                                         std::span<const NodeId> sources)
    : graph_(&graph) {
  rebind(sources);
  ++stats_.workspace_allocations;
  ++stats_.batch_blocks;
}

void BatchedSourceEngine::reset(std::span<const NodeId> sources) {
  arena_.reset();
  delta_arena_[0].reset();
  delta_arena_[1].reset();
  delta_parity_ = 0;
  rebind(sources);
  ++stats_.workspace_reuses;
  ++stats_.batch_blocks;
}

void BatchedSourceEngine::rebind(std::span<const NodeId> sources) {
  if (sources.empty())
    throw std::invalid_argument("BatchedSourceEngine: empty source block");
  const std::size_t n = graph_->num_nodes();
  for (const NodeId s : sources) {
    if (s >= n)
      throw std::out_of_range("BatchedSourceEngine: source out of range");
  }
  sources_.assign(sources.begin(), sources.end());
  lanes_ = sources_.size();
  live_lanes_ = lanes_;
  steps_ = 0;

  fspan_.reset(n, lanes_);
  last_pair_.assign(n * lanes_, PathPair{-kInf, kInf});
  dirty_mark_.assign(n * lanes_, 0);
  cand_count_.assign(n * lanes_, 0);
  first_key_.assign(n * lanes_, 0);
  dom_cache_.assign(n * lanes_, PathPair{-kInf, kInf});
  grp_begin_at_.assign(n * lanes_, 0);
  grp_pos_.assign(n * lanes_, 0);
  node_entry_count_.assign(n, 0);
  node_entry_pos_.assign(n, 0);

  auto recycle = [&](auto& lists) {
    lists.resize(lanes_);
    for (auto& list : lists) list.clear();
  };
  recycle(lane_active_);
  recycle(lane_delta_spans_);
  recycle(lane_retired_spans_);
  recycle(lane_next_active_);
  recycle(lane_next_delta_spans_);
  recycle(lane_next_retired_);
  recycle(lane_dirty_);
  lane_fixpoint_.assign(lanes_, 0);
  lane_level_.assign(lanes_, 0);

  // Seed every lane exactly as SingleSourceEngine::seed_pooled: the
  // source's frontier and level-0 delta are both the identity pair, and
  // the delta's successor EA is +infinity so every wait candidate off
  // the identity is offered.
  for (std::size_t l = 0; l < lanes_; ++l) {
    const NodeId src = sources_[l];
    const std::size_t off = arena_.allocate(1);
    arena_.ld()[off] = kInf;
    arena_.ea()[off] = -kInf;
    fspan_.at(src, l) = {static_cast<std::uint32_t>(off), 1};
    last_pair_[l * n + src] = PathPair{kInf, -kInf};
    PairArena& da = delta_arena_[delta_parity_];
    const std::size_t d = da.allocate(1);
    da.ld()[d] = kInf;
    da.ea()[d] = -kInf;
    da.aux()[d] = kInf;
    lane_active_[l].assign(1, src);
    lane_delta_spans_[l].assign(1, PairSpan{static_cast<std::uint32_t>(d), 1});
  }
}

void BatchedSourceEngine::record_arena_peaks() noexcept {
  const std::size_t pairs =
      arena_.size() + delta_arena_[0].size() + delta_arena_[1].size();
  if (pairs > stats_.pairs_peak) stats_.pairs_peak = pairs;
  const std::size_t bytes = arena_.capacity_bytes() +
                            delta_arena_[0].capacity_bytes() +
                            delta_arena_[1].capacity_bytes();
  if (bytes > stats_.arena_bytes_peak) stats_.arena_bytes_peak = bytes;
}

FrontierView BatchedSourceEngine::previous_frontier_view(
    std::size_t lane, std::size_t i) const {
  const PairSpan s = lane_retired_spans_[lane].at(i);
  return FrontierView(arena_.ld() + s.offset, arena_.ea() + s.offset,
                      s.length);
}

FrontierView BatchedSourceEngine::frontier_view(std::size_t lane,
                                                NodeId dst) const {
  const PairSpan s = fspan_.at(dst, lane);
  return FrontierView(arena_.ld() + s.offset, arena_.ea() + s.offset,
                      s.length);
}

namespace {
}  // namespace

bool BatchedSourceEngine::step() {
  if (live_lanes_ == 0) return false;
  const std::size_t n = graph_->num_nodes();

  // Phase 1: extension. Bucket every live lane's active (node, position)
  // entries by node with one counting sort, then walk each node's
  // by-end neighbor list with its whole bucket back to back -- the
  // first entry streams the list cold, the rest ride it cache-hot; this
  // shared walk is the point of the engine. Per entry the candidate
  // enumeration, cursors and offer-time dominance filter are the
  // per-source step_pooled inner loop verbatim (including
  // contacts_examined, which still counts each entry's own usable tail
  // of the list).
  walk_nodes_.clear();
  std::size_t total_entries = 0;
  for (std::size_t l = 0; l < lanes_; ++l) {
    if (lane_fixpoint_[l]) continue;
    stats_.frontier_copies_avoided +=
        static_cast<std::uint64_t>(n - lane_active_[l].size());
    ++stats_.batch_lane_steps;
    total_entries += lane_active_[l].size();
    for (const NodeId u : lane_active_[l]) {
      if (node_entry_count_[u]++ == 0) walk_nodes_.push_back(u);
    }
  }
  stats_.batch_lane_slots += lanes_;
  std::uint32_t running = 0;
  for (const NodeId u : walk_nodes_) {
    node_entry_pos_[u] = running;
    running += node_entry_count_[u];
    stats_.index_walks_saved += node_entry_count_[u] - 1;
  }
  entries_.resize(total_entries);
  const PairArena& da = delta_arena_[delta_parity_];
  for (std::size_t l = 0; l < lanes_; ++l) {
    if (lane_fixpoint_[l]) continue;
    const std::vector<NodeId>& act = lane_active_[l];
    const std::vector<PairSpan>& dsp = lane_delta_spans_[l];
    for (std::size_t a = 0; a < act.size(); ++a) {
      const PairSpan ds = dsp[a];
      WalkEntry& e = entries_[node_entry_pos_[act[a]]++];
      e.dld = da.ld() + ds.offset;
      e.dea = da.ea() + ds.offset;
      e.dsucc = da.aux() + ds.offset;
      e.dn = ds.length;
      e.lane = static_cast<std::uint32_t>(l);
      e.a_pos = static_cast<std::uint32_t>(a);
    }
  }

  // Nothing is allocated from arena_ or the current delta arena during
  // the walk, so all base pointers are stable for the phase. cand_ is a
  // high-water scratch buffer written through a raw cursor (masked
  // stores below); only [0, cpos) is ever meaningful.
  const double* const f_ld = arena_.ld();
  const double* const f_ea = arena_.ea();
  std::uint64_t dominated = 0;  // batched into stats_ after the walk
  std::size_t cpos = 0;
  for (const NodeId u : walk_nodes_) {
    const std::uint32_t cnt = node_entry_count_[u];
    node_entry_count_[u] = 0;  // restore for the next level
    const WalkEntry* const grp = entries_.data() + (node_entry_pos_[u] - cnt);
    const auto nbrs = graph_->neighbors_by_end(u);
    // Each entry runs the per-source inner loop over the SAME by-end
    // list; the first traversal streams it cold, the remaining cnt - 1
    // ride it from cache. Per-entry state (one lane's last-pair row,
    // span row, dirty bookkeeping) is hoisted to lane-slice pointers,
    // so the loop body is the per-source one with a re-based `to`.
    for (std::uint32_t e = 0; e < cnt; ++e) {
      const WalkEntry& en = grp[e];
      const double* const dld = en.dld;
      const double* const dea = en.dea;
      const double* const dsucc = en.dsucc;
      const std::size_t dn = en.dn;
      const std::size_t lane_base = static_cast<std::size_t>(en.lane) * n;
      const PathPair* const lane_last = last_pair_.data() + lane_base;
      std::uint8_t* const lane_mark = dirty_mark_.data() + lane_base;
      std::uint32_t* const lane_cc = cand_count_.data() + lane_base;
      std::uint64_t* const lane_fk = first_key_.data() + lane_base;
      PathPair* const lane_dom = dom_cache_.data() + lane_base;
      const PairSpan* const lane_span = &fspan_.at(0, en.lane);
      std::vector<NodeId>& dirty = lane_dirty_[en.lane];
      const std::uint64_t pos_key = static_cast<std::uint64_t>(en.a_pos)
                                    << 32;
      // No delta pair can ride a contact that ends before the delta's
      // earliest arrival, so the whole prefix below min_ea is skipped.
      const double min_ea = dea[0];
      auto it = std::lower_bound(
          nbrs.begin(), nbrs.end(), min_ea,
          [](const NodeContact& nc, double t) { return nc.end < t; });
      stats_.contacts_examined += static_cast<std::uint64_t>(nbrs.end() - it);
      // Cursor maintenance performs the same comparisons as step_pooled,
      // but against register-resident sentinels: the delta values the
      // cursor tests touch (the ea on either side of `arr`, the ea at
      // `ride_hi`, the successor chain at `arr - 1`) are reloaded only
      // when a cursor actually moves. step_pooled re-reads them from
      // the delta arrays on EVERY contact, and those load-compare-
      // branch chains -- not the index stream -- are what the walk
      // spends its cycles on; a typical contact moves no cursor and
      // now resolves entirely in registers.
      std::size_t ride_hi = 0;
      std::size_t arr = 0;
      double rh_ea = dea[0];     // dea[ride_hi], +inf once exhausted
      double arr_hi_ea = dea[0]; // dea[arr], +inf once exhausted
      double arr_lo_ea = -kInf;  // dea[arr - 1], -inf at the front
      double wsucc = -kInf;      // dsucc[arr - 1]; -inf suppresses waits
      double wld = 0.0;          // dld[arr - 1], guarded by wsucc
      auto reload_arr = [&] {
        arr_hi_ea = arr < dn ? dea[arr] : kInf;
        if (arr > 0) {
          arr_lo_ea = dea[arr - 1];
          wsucc = dsucc[arr - 1];
          wld = dld[arr - 1];
        } else {
          arr_lo_ea = -kInf;
          wsucc = -kInf;
        }
      };
      for (; it != nbrs.end(); ++it) {
        const NodeId to = it->to;
        const double wb = it->begin, we = it->end;
        // Offer-time filter against the target's lane frontier -- still
        // exactly L_k, publication is deferred to phase 2. Every offer
        // of this contact targets the same node, so the last-pair probe
        // is hoisted out of the evaluation (phase 1 never writes it).
        //
        // Whether a contact yields an offer at all is data-dependent
        // with no exploitable pattern (about two offers per three
        // contacts on trace workloads), so branching on it mispredicts
        // constantly -- and those mispredicts, not the index stream,
        // are where the per-source walk burns its cycles. The wait
        // candidate and the first ride candidate are therefore
        // evaluated UNCONDITIONALLY under a validity mask: dominated
        // offers retire as mask arithmetic, candidates land through a
        // masked store at a raw cursor that only advances for kept
        // offers. Only the rare outcomes (a candidate landing strictly
        // inside the frontier, a kept offer's dirty bookkeeping, a
        // contact riding more than one delta pair) take branches. The
        // evaluation order -- wait offer, then rides ascending -- and
        // every verdict match step_pooled exactly.
        const PathPair lp = lane_last[to];
        if (cand_.size() < cpos + dn + 1)
          cand_.resize(std::max(2 * cand_.size(), cpos + dn + 1));
        RawCandidate* const cbase = cand_.data();
        // The first kept offer's (active position, contact ordinal) key
        // is the lexicographic position at which the per-source walk
        // would have dirtied the target; phase 2 sorts each lane's
        // dirty list by it to reproduce the publication order exactly.
        const std::uint64_t key =
            pos_key | static_cast<std::uint64_t>(it - nbrs.begin());
        auto evaluate = [&](double cld, double cea) {
          if (cld <= lp.ld) {
            if (lp.ea <= cea) {
              ++dominated;
              return;
            }
            PathPair& dw = lane_dom[to];
            if (dw.ld >= cld && dw.ea <= cea) {
              ++dominated;
              return;
            }
            // Slow path. cld <= lp.ld (so the lower bound lands inside
            // the span) and lp.ea > cea (the frontier's LAST arrival is
            // too late) both hold here. If even its FIRST arrival -- the
            // frontier minimum, ea ascends -- is later than cea, nothing
            // can dominate: keep without searching.
            const PairSpan ts = lane_span[to];
            const double* const sld = f_ld + ts.offset;
            const double* const sea = f_ea + ts.offset;
            if (sea[0] > cea) goto keep;
            {
              const std::size_t w =
                  frontier_lower_bound(sld, ts.length, cld);
              if (sea[w] <= cea) {
                dw = PathPair{sld[w], sea[w]};
                ++dominated;
                return;
              }
            }
          }
        keep:
          cbase[cpos++] = {cld, cea,
                          static_cast<std::uint32_t>(lane_base + to)};
          ++lane_cc[to];
          if (!lane_mark[to]) {
            lane_mark[to] = 1;
            lane_fk[to] = key;
            dirty.push_back(to);
          } else if (key < lane_fk[to]) {
            lane_fk[to] = key;
          }
        };
        // Same extension cases as step_pooled: ride_hi counts the delta
        // pairs arriving by the window's end, arr the pairs arriving by
        // its begin (bidirectional -- begins are only roughly ordered).
        if (we >= rh_ea) {
          do {
            ++ride_hi;
          } while (ride_hi < dn && dea[ride_hi] <= we);
          rh_ea = ride_hi < dn ? dea[ride_hi] : kInf;
        }
        if (wb >= arr_hi_ea) {
          do {
            ++arr;
          } while (arr < dn && dea[arr] <= wb);
          reload_arr();
        } else if (wb < arr_lo_ea) {
          do {
            --arr;
          } while (arr > 0 && dea[arr - 1] > wb);
          reload_arr();
        }
        if (wb < wsucc) evaluate(std::min(wld, we), wb);
        for (std::size_t i = arr; i < ride_hi; ++i) {
          evaluate(std::min(dld[i], we), dea[i]);
          if (dld[i] >= we) break;
        }
      }
    }
  }
  stats_.pairs_dominated += dominated;

  // Phase 2: publish, lane by lane. Group offsets cover every (target,
  // lane) slot touched this level; the scatter order is free because
  // prune_candidate_batch sorts each batch before merging.
  std::uint32_t run = 0;
  for (std::size_t l = 0; l < lanes_; ++l) {
    const std::size_t lane_base = l * n;
    for (const NodeId v : lane_dirty_[l]) {
      const std::size_t idx = lane_base + v;
      grp_begin_at_[idx] = run;
      grp_pos_[idx] = run;
      run += cand_count_[idx];
    }
  }
  if (grp_pairs_.size() < cpos) grp_pairs_.resize(cpos);
  for (std::size_t k = 0; k < cpos; ++k) {
    const RawCandidate& c = cand_[k];
    grp_pairs_[grp_pos_[c.idx]++] = PathPair{c.ld, c.ea};
  }
  PairArena& nda = delta_arena_[delta_parity_ ^ 1];
  for (std::size_t l = 0; l < lanes_; ++l) {
    if (lane_fixpoint_[l]) continue;
    const std::size_t lane_base = l * n;
    std::vector<NodeId>& dirty = lane_dirty_[l];
    std::sort(dirty.begin(), dirty.end(), [&](NodeId x, NodeId y) {
      return first_key_[lane_base + x] < first_key_[lane_base + y];
    });
    std::vector<NodeId>& nact = lane_next_active_[l];
    std::vector<PairSpan>& nds = lane_next_delta_spans_[l];
    std::vector<PairSpan>& nret = lane_next_retired_[l];
    nact.clear();
    nds.clear();
    nret.clear();
    for (const NodeId v : dirty) {
      const std::size_t idx = lane_base + v;
      const std::size_t m0 = cand_count_[idx];
      cand_count_[idx] = 0;
      dirty_mark_[idx] = 0;
      PathPair* const batch = grp_pairs_.data() + grp_begin_at_[idx];
      const std::size_t m = prune_candidate_batch(batch, m0);
      const PairSpan fs = fspan_.at(v, l);
      const std::size_t out_off = arena_.allocate(fs.length + m);
      const std::size_t d_off = nda.allocate(m);
      // allocate() may have grown either arena: base pointers re-fetched.
      const FrontierMerge r = merge_frontier(
          arena_.ld() + fs.offset, arena_.ea() + fs.offset, fs.length, batch,
          m, arena_.ld() + out_off, arena_.ea() + out_off, nda.ld() + d_off,
          nda.ea() + d_off, nda.aux() + d_off);
      ++stats_.merge_batches;
      stats_.pairs_inserted += r.kept_new;
      stats_.pairs_dominated += m0 - r.kept_new;
      if (r.kept_new == 0) {
        // Defensive only, as in step_pooled: a batch that survived the
        // offer-time filter always contributes its minimum-EA candidate.
        arena_.truncate(out_off);
        nda.truncate(d_off);
        continue;
      }
      nret.push_back(fs);
      fspan_.at(v, l) = {
          static_cast<std::uint32_t>(out_off + fs.length + m - r.kept),
          static_cast<std::uint32_t>(r.kept)};
      const std::size_t last = out_off + fs.length + m - 1;
      last_pair_[idx] = PathPair{arena_.ld()[last], arena_.ea()[last]};
      nds.push_back(
          PairSpan{static_cast<std::uint32_t>(d_off + m - r.kept_new),
                   static_cast<std::uint32_t>(r.kept_new)});
      nact.push_back(v);
    }
    dirty.clear();
  }

  // Phase 3: rotate. The spent delta slab is recycled wholesale (every
  // live lane consumed its spans this level); each live lane's lists
  // swap with their next-level buffers, and a lane whose level changed
  // nothing is at its fixpoint -- its hop budget did not actually grow.
  delta_arena_[delta_parity_].reset();
  delta_parity_ ^= 1;
  bool any_changed = false;
  for (std::size_t l = 0; l < lanes_; ++l) {
    if (lane_fixpoint_[l]) continue;
    lane_active_[l].swap(lane_next_active_[l]);
    lane_delta_spans_[l].swap(lane_next_delta_spans_[l]);
    lane_retired_spans_[l].swap(lane_next_retired_[l]);
    ++lane_level_[l];
    if (lane_active_[l].empty()) {
      --lane_level_[l];
      lane_fixpoint_[l] = 1;
      --live_lanes_;
    } else {
      any_changed = true;
    }
  }
  record_arena_peaks();
  ++steps_;
  return any_changed;
}

}  // namespace odtn
