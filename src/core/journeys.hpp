// The three classic journey-optimality notions in temporal networks
// (Bui-Xuan, Ferreira & Jarry [1], cited in paper §2/§4.4):
//
//   FOREMOST: arrive as early as possible from a given start time
//             (= the delivery function del(t) of §4.3);
//   FASTEST:  minimize the journey's own duration (arrival - departure),
//             regardless of when it happens;
//   SHORTEST: use as few hops as possible, regardless of time.
//
// All three fall out of the library's Pareto frontiers: foremost is a
// point query on del, fastest is the minimum of max(0, EA - LD) over
// the frontier, and shortest is the first hop level at which the
// destination becomes reachable at all. This header packages them as a
// single per-source analysis.
#pragma once

#include <limits>
#include <vector>

#include "core/temporal_graph.hpp"

namespace odtn {

/// Journey optima from one source to one destination.
struct JourneyOptima {
  /// Minimum achievable journey duration (0 when a fully
  /// contemporaneous connection exists at some instant);
  /// +infinity when the destination is never reachable.
  double fastest_duration = std::numeric_limits<double>::infinity();

  /// Departure time of one fastest journey (meaningful when reachable).
  double fastest_departure = 0.0;

  /// Minimum number of hops of ANY journey, at any time; 0 for the
  /// source itself, -1 when unreachable.
  int shortest_hops = -1;

  bool reachable() const noexcept { return shortest_hops >= 0; }
};

/// Per-destination journey optima from `source`. Runs the hop-indexed
/// engine once (shortest hops are read off the level at which each
/// destination first becomes reachable; fastest journeys off the final
/// frontier).
std::vector<JourneyOptima> compute_journeys(const TemporalGraph& graph,
                                            NodeId source,
                                            int max_levels = 64);

/// Foremost arrival: earliest delivery at `destination` of a message
/// created at `start_time` (same as the engine's del(t); provided for
/// API symmetry with the other two notions).
double foremost_arrival(const TemporalGraph& graph, NodeId source,
                        NodeId destination, double start_time,
                        int max_levels = 64);

}  // namespace odtn
