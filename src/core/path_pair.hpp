// The (LD, EA) summary algebra for time-respecting paths (paper §4.2).
//
// A sequence of contacts (e_1, ..., e_n) supports a time-respecting path
// iff there is a non-decreasing assignment of crossing times t_i with
// t_i in [begin_i, end_i] (Eq. 2). All such paths are summarized by two
// numbers:
//   LD (last departure)   = min_i end_i   -- the latest possible start,
//   EA (earliest arrival) = max_i begin_i -- the earliest possible finish.
// Facts (i)-(iv) of the paper: two sequences concatenate iff
// EA(left) <= LD(right), and then LD and EA compose by min / max.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/contact.hpp"

namespace odtn {

/// Summary of one contact sequence: depart the source by `ld`, arrive at
/// the destination no earlier than `ea`. Note ea < ld is legal and means
/// the whole sequence is contemporaneously connected on [ea, ld].
struct PathPair {
  double ld = -std::numeric_limits<double>::infinity();
  double ea = std::numeric_limits<double>::infinity();

  friend bool operator==(const PathPair&, const PathPair&) = default;
};

/// Summary of a single contact: LD = end, EA = begin.
inline PathPair pair_of_contact(const Contact& c) noexcept {
  return {c.end, c.begin};
}

/// True iff `a` is at least as good as `b` in both coordinates
/// (departs no earlier AND arrives no later). Reflexive.
inline bool dominates(const PathPair& a, const PathPair& b) noexcept {
  return a.ld >= b.ld && a.ea <= b.ea;
}

/// Fact (iv): the sequences summarized by `left` then `right` concatenate
/// into a valid sequence iff EA(left) <= LD(right).
inline bool can_concatenate(const PathPair& left,
                            const PathPair& right) noexcept {
  return left.ea <= right.ld;
}

/// Composition of summaries after concatenation. Precondition:
/// can_concatenate(left, right).
inline PathPair concatenate(const PathPair& left,
                            const PathPair& right) noexcept {
  return {left.ld < right.ld ? left.ld : right.ld,
          left.ea > right.ea ? left.ea : right.ea};
}

/// Optimal delivery time of a message created at time `t` for paths using
/// this sequence: max(t, ea) when t <= ld, +infinity otherwise (§4.3).
double deliver_at(const PathPair& p, double t) noexcept;

/// Checks Eq. (2) on an explicit contact sequence: consecutive contacts
/// must share the relay node (u_i of contact i+1 equals v_i of contact i
/// when `directed`; any shared endpoint orientation otherwise is the
/// caller's responsibility -- this function checks the *time* condition:
/// end_i >= max_{j<i} begin_j for all i).
bool is_time_respecting(std::span<const Contact> sequence) noexcept;

/// Summarizes an explicit sequence into its (LD, EA) pair. Precondition:
/// the sequence is non-empty and time-respecting.
PathPair summarize_sequence(std::span<const Contact> sequence) noexcept;

}  // namespace odtn
