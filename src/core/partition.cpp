#include "core/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace odtn {

const char* shard_policy_name(ShardPolicy policy) noexcept {
  switch (policy) {
    case ShardPolicy::kContiguous:
      return "contiguous";
    case ShardPolicy::kBlockCyclic:
      return "block-cyclic";
    case ShardPolicy::kDegreeBalanced:
      return "degree-balanced";
  }
  return "unknown";
}

std::optional<ShardPolicy> parse_shard_policy(std::string_view name) noexcept {
  if (name == "contiguous") return ShardPolicy::kContiguous;
  if (name == "block-cyclic") return ShardPolicy::kBlockCyclic;
  if (name == "degree-balanced") return ShardPolicy::kDegreeBalanced;
  return std::nullopt;
}

SourcePartition partition_sources(const TemporalGraph& graph,
                                  const std::vector<NodeId>& endpoints,
                                  std::size_t num_shards, ShardPolicy policy,
                                  std::size_t block_size) {
  if (num_shards == 0)
    throw std::invalid_argument("partition_sources: num_shards must be >= 1");
  if (block_size == 0)
    throw std::invalid_argument("partition_sources: block_size must be >= 1");
  for (NodeId n : endpoints) {
    if (n >= graph.num_nodes())
      throw std::invalid_argument("partition_sources: endpoint out of range");
  }
  const std::size_t count = endpoints.size();
  SourcePartition part;
  part.num_shards = num_shards;
  part.shard_of.assign(count, 0);

  switch (policy) {
    case ShardPolicy::kContiguous: {
      // base per shard, the first `extra` shards take one more.
      const std::size_t base = count / num_shards;
      const std::size_t extra = count % num_shards;
      std::size_t next = 0;
      for (std::size_t s = 0; s < num_shards && next < count; ++s) {
        const std::size_t take = base + (s < extra ? 1 : 0);
        for (std::size_t i = 0; i < take; ++i)
          part.shard_of[next++] = static_cast<std::uint32_t>(s);
      }
      break;
    }
    case ShardPolicy::kBlockCyclic: {
      for (std::size_t i = 0; i < count; ++i)
        part.shard_of[i] =
            static_cast<std::uint32_t>((i / block_size) % num_shards);
      break;
    }
    case ShardPolicy::kDegreeBalanced: {
      // Longest processing time first: heaviest sources placed while
      // every shard is still light. Weights are contact counts + 1 so
      // isolated nodes still spread instead of piling on shard 0.
      std::vector<std::uint32_t> order(count);
      for (std::size_t i = 0; i < count; ++i)
        order[i] = static_cast<std::uint32_t>(i);
      std::vector<std::uint64_t> weight(count);
      for (std::size_t i = 0; i < count; ++i)
        weight[i] = graph.contacts_of(endpoints[i]).size() + 1;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         if (weight[a] != weight[b])
                           return weight[a] > weight[b];
                         return a < b;
                       });
      std::vector<std::uint64_t> load(num_shards, 0);
      for (const std::uint32_t i : order) {
        std::size_t lightest = 0;
        for (std::size_t s = 1; s < num_shards; ++s)
          if (load[s] < load[lightest]) lightest = s;
        part.shard_of[i] = static_cast<std::uint32_t>(lightest);
        load[lightest] += weight[i];
      }
      break;
    }
  }

  part.members.resize(num_shards);
  for (std::size_t i = 0; i < count; ++i)
    part.members[part.shard_of[i]].push_back(static_cast<std::uint32_t>(i));
  return part;
}

}  // namespace odtn
