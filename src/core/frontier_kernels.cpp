#include "core/frontier_kernels.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/simd.hpp"

namespace odtn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shared by the scalar reference and the dispatched kernel: the collapse
// pass is where the variants diverge, the sort is common.
void sort_candidate_batch(PathPair* batch, std::size_t m) {
  const auto before = [](const PathPair& a, const PathPair& b) {
    return a.ld != b.ld ? a.ld < b.ld : a.ea < b.ea;
  };
  if (m <= 24) {
    // Typical batches hold a handful of candidates; insertion sort beats
    // std::sort's dispatch overhead by a wide margin there.
    for (std::size_t i = 1; i < m; ++i) {
      const PathPair key = batch[i];
      std::size_t k = i;
      for (; k > 0 && before(key, batch[k - 1]); --k) batch[k] = batch[k - 1];
      batch[k] = key;
    }
  } else {
    std::sort(batch, batch + m, before);
  }
}

}  // namespace

std::size_t collapse_sorted_batch_scalar(PathPair* batch, std::size_t m) {
  // One ascending pass: at equal ld only the first (minimal-ea) entry is
  // considered, and a kept entry evicts every earlier survivor it
  // dominates (smaller-or-equal ld with larger-or-equal ea) -- a classic
  // monotone stack, O(m) after the sort.
  std::size_t out = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (i > 0 && batch[i].ld == batch[i - 1].ld) continue;
    while (out > 0 && batch[out - 1].ea >= batch[i].ea) --out;
    batch[out++] = batch[i];
  }
  return out;
}

std::size_t collapse_sorted_batch(PathPair* batch, std::size_t m) {
  if (simd::active_level() == simd::Level::kScalar)
    return collapse_sorted_batch_scalar(batch, m);
  // Same monotone stack, but long pop scans -- count how many survivors
  // the new entry evicts -- run as one vector tail count over the
  // stack's ea lane (stride 2: the stack is AoS). The surviving stack's
  // ea is STRICTLY ASCENDING (each push first evicts everything at or
  // above its own ea), so the evicted set is always a suffix of the
  // stack and one probe 16 elements down classifies the run: if that
  // element qualifies, the top 16 all do and pop for free, and the
  // vector scan only walks the remainder. Elements that evict nothing
  // (the common case) pay exactly the scalar compare -- no bookkeeping.
  // Both paths pop the same count, so the result is bit-identical to
  // the scalar reference.
  const simd::Ops& ops = simd::ops();
  std::size_t out = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (i > 0 && batch[i].ld == batch[i - 1].ld) continue;
    const double ea = batch[i].ea;
    if (out > 0 && batch[out - 1].ea >= ea) {
      if (out >= 16 && batch[out - 16].ea >= ea) {
        out -= 16;
        out -= ops.count_tail_ge_stride2(&batch[0].ea, out, ea);
      } else {
        do {
          --out;
        } while (out > 0 && batch[out - 1].ea >= ea);
      }
    }
    batch[out++] = batch[i];
  }
  return out;
}

std::size_t prune_candidate_batch_scalar(PathPair* batch, std::size_t m) {
  if (m <= 1) return m;
  sort_candidate_batch(batch, m);
  return collapse_sorted_batch_scalar(batch, m);
}

std::size_t prune_candidate_batch(PathPair* batch, std::size_t m) {
  if (m <= 1) return m;
  sort_candidate_batch(batch, m);
  return collapse_sorted_batch(batch, m);
}

FrontierMerge merge_frontier_scalar(const double* f_ld, const double* f_ea,
                                    std::size_t fn, const PathPair* cand,
                                    std::size_t m, double* out_ld,
                                    double* out_ea, double* delta_ld,
                                    double* delta_ea,
                                    double* delta_succ) noexcept {
  // Descending-LD walk over both inputs with a running minimum EA: an
  // element survives iff its ea is strictly below every ea seen at a
  // larger (or tied) ld. At an LD tie the smaller-ea element goes first
  // so it evicts the other; at a full tie the frontier's copy goes first
  // so an exact-duplicate candidate is dropped and NOT reported as new
  // (matching DeliveryFunction::insert returning false).
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(fn) - 1;
  std::ptrdiff_t j = static_cast<std::ptrdiff_t>(m) - 1;
  std::size_t wr = fn + m;   // merged output write cursor (exclusive)
  std::size_t dwr = m;       // delta output write cursor (exclusive)
  double min_ea = kInf;      // min ea among kept elements so far
  while (i >= 0 || j >= 0) {
    bool take_f;
    if (j < 0) {
      // Candidates exhausted. Old pairs still above the running minimum
      // are dominated; the first survivor ends the walk, because every
      // pair below it has strictly smaller ea yet (both lanes of a
      // Pareto frontier co-ascend) and survives verbatim -- the rest of
      // the frontier is bulk-copied after the loop.
      if (f_ea[i] >= min_ea) {
        --i;
        continue;
      }
      break;
    } else if (i < 0) {
      take_f = false;
    } else if (f_ld[i] != cand[j].ld) {
      take_f = f_ld[i] > cand[j].ld;
    } else {
      take_f = f_ea[i] <= cand[j].ea;
    }
    double ld, ea;
    if (take_f) {
      ld = f_ld[i];
      ea = f_ea[i];
      --i;
    } else {
      ld = cand[j].ld;
      ea = cand[j].ea;
      --j;
    }
    if (ea < min_ea) {
      // Kept. The element kept just before this one (one step up the
      // descending walk) is its successor in the ascending frontier;
      // its ea is exactly the wait-candidate suppression bound.
      if (!take_f) {
        --dwr;
        delta_ld[dwr] = ld;
        delta_ea[dwr] = ea;
        delta_succ[dwr] = min_ea;
      }
      min_ea = ea;
      --wr;
      out_ld[wr] = ld;
      out_ea[wr] = ea;
    }
  }
  if (i >= 0) {
    // Untouched survivor prefix f[0 .. i]: one copy instead of the
    // element-wise walk. This is the publish fast path -- candidates
    // mostly land near the top of the frontier (later paths depart and
    // arrive later), leaving the bulk of it byte-identical.
    const std::size_t blk = static_cast<std::size_t>(i) + 1;
    wr -= blk;
    std::memcpy(out_ld + wr, f_ld, blk * sizeof(double));
    std::memcpy(out_ea + wr, f_ea, blk * sizeof(double));
  }
  return {fn + m - wr, m - dwr};
}

namespace {

// Run-structured variant of the descending walk: the frontier elements
// visited between two consecutive candidates form one contiguous run, in
// which the dominated elements (ea >= the running minimum) are exactly a
// prefix of the descending order -- f_ea descends along the walk, and
// after the first survivor the minimum tracks f_ea, so everything below
// survives. Each run therefore reduces to a binary search for its
// boundary, one vector tail count for the dominated part, and one bulk
// copy of the survivors. Pop counts, kept sets, delta entries and
// successor EAs coincide with the scalar walk element for element, so
// the output is bit-identical.
FrontierMerge merge_frontier_runs(const simd::Ops& ops, const double* f_ld,
                                  const double* f_ea, std::size_t fn,
                                  const PathPair* cand, std::size_t m,
                                  double* out_ld, double* out_ea,
                                  double* delta_ld, double* delta_ea,
                                  double* delta_succ) noexcept {
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(fn) - 1;
  std::size_t wr = fn + m;
  std::size_t dwr = m;
  double min_ea = kInf;
  for (std::ptrdiff_t j = static_cast<std::ptrdiff_t>(m) - 1; j >= 0; --j) {
    const double c_ld = cand[j].ld;
    const double c_ea = cand[j].ea;
    if (i >= 0) {
      // The run visited before this candidate: every frontier index with
      // ld > c_ld, plus the one possible ld-tie element when the tie
      // resolves in the frontier's favour (its ea no larger).
      const std::size_t fcount = static_cast<std::size_t>(i) + 1;
      const std::size_t ge = frontier_lower_bound(f_ld, fcount, c_ld);
      std::size_t rs = ge;
      if (ge < fcount && f_ld[ge] == c_ld && f_ea[ge] > c_ea) rs = ge + 1;
      const std::size_t run_len = fcount - rs;
      if (run_len > 0) {
        const std::size_t skip = ops.count_tail_ge(f_ea + rs, run_len, min_ea);
        const std::size_t keep = run_len - skip;
        if (keep > 0) {
          wr -= keep;
          std::memcpy(out_ld + wr, f_ld + rs, keep * sizeof(double));
          std::memcpy(out_ea + wr, f_ea + rs, keep * sizeof(double));
          min_ea = f_ea[rs];
        }
        i = static_cast<std::ptrdiff_t>(rs) - 1;
      }
    }
    if (c_ea < min_ea) {
      --dwr;
      delta_ld[dwr] = c_ld;
      delta_ea[dwr] = c_ea;
      delta_succ[dwr] = min_ea;
      min_ea = c_ea;
      --wr;
      out_ld[wr] = c_ld;
      out_ea[wr] = c_ea;
    }
  }
  if (i >= 0) {
    // Final drain, same shape as a run with no candidate below it.
    const std::size_t fcount = static_cast<std::size_t>(i) + 1;
    const std::size_t skip = ops.count_tail_ge(f_ea, fcount, min_ea);
    const std::size_t keep = fcount - skip;
    if (keep > 0) {
      wr -= keep;
      std::memcpy(out_ld + wr, f_ld, keep * sizeof(double));
      std::memcpy(out_ea + wr, f_ea, keep * sizeof(double));
    }
  }
  return {fn + m - wr, m - dwr};
}

}  // namespace

FrontierMerge merge_frontier(const double* f_ld, const double* f_ea,
                             std::size_t fn, const PathPair* cand,
                             std::size_t m, double* out_ld, double* out_ea,
                             double* delta_ld, double* delta_ea,
                             double* delta_succ) noexcept {
  if (simd::active_level() == simd::Level::kScalar)
    return merge_frontier_scalar(f_ld, f_ea, fn, cand, m, out_ld, out_ea,
                                 delta_ld, delta_ea, delta_succ);
  return merge_frontier_runs(simd::ops(), f_ld, f_ea, fn, cand, m, out_ld,
                             out_ea, delta_ld, delta_ea, delta_succ);
}

}  // namespace odtn
