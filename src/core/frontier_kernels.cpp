#include "core/frontier_kernels.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace odtn {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::size_t prune_candidate_batch(PathPair* batch, std::size_t m) {
  if (m <= 1) return m;
  const auto before = [](const PathPair& a, const PathPair& b) {
    return a.ld != b.ld ? a.ld < b.ld : a.ea < b.ea;
  };
  if (m <= 24) {
    // Typical batches hold a handful of candidates; insertion sort beats
    // std::sort's dispatch overhead by a wide margin there.
    for (std::size_t i = 1; i < m; ++i) {
      const PathPair key = batch[i];
      std::size_t k = i;
      for (; k > 0 && before(key, batch[k - 1]); --k) batch[k] = batch[k - 1];
      batch[k] = key;
    }
  } else {
    std::sort(batch, batch + m, before);
  }
  // One ascending pass: at equal ld only the first (minimal-ea) entry is
  // considered, and a kept entry evicts every earlier survivor it
  // dominates (smaller-or-equal ld with larger-or-equal ea) -- a classic
  // monotone stack, O(m) after the sort.
  std::size_t out = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (i > 0 && batch[i].ld == batch[i - 1].ld) continue;
    while (out > 0 && batch[out - 1].ea >= batch[i].ea) --out;
    batch[out++] = batch[i];
  }
  return out;
}

FrontierMerge merge_frontier(const double* f_ld, const double* f_ea,
                             std::size_t fn, const PathPair* cand,
                             std::size_t m, double* out_ld, double* out_ea,
                             double* delta_ld, double* delta_ea,
                             double* delta_succ) noexcept {
  // Descending-LD walk over both inputs with a running minimum EA: an
  // element survives iff its ea is strictly below every ea seen at a
  // larger (or tied) ld. At an LD tie the smaller-ea element goes first
  // so it evicts the other; at a full tie the frontier's copy goes first
  // so an exact-duplicate candidate is dropped and NOT reported as new
  // (matching DeliveryFunction::insert returning false).
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(fn) - 1;
  std::ptrdiff_t j = static_cast<std::ptrdiff_t>(m) - 1;
  std::size_t wr = fn + m;   // merged output write cursor (exclusive)
  std::size_t dwr = m;       // delta output write cursor (exclusive)
  double min_ea = kInf;      // min ea among kept elements so far
  while (i >= 0 || j >= 0) {
    bool take_f;
    if (j < 0) {
      // Candidates exhausted. Old pairs still above the running minimum
      // are dominated; the first survivor ends the walk, because every
      // pair below it has strictly smaller ea yet (both lanes of a
      // Pareto frontier co-ascend) and survives verbatim -- the rest of
      // the frontier is bulk-copied after the loop.
      if (f_ea[i] >= min_ea) {
        --i;
        continue;
      }
      break;
    } else if (i < 0) {
      take_f = false;
    } else if (f_ld[i] != cand[j].ld) {
      take_f = f_ld[i] > cand[j].ld;
    } else {
      take_f = f_ea[i] <= cand[j].ea;
    }
    double ld, ea;
    if (take_f) {
      ld = f_ld[i];
      ea = f_ea[i];
      --i;
    } else {
      ld = cand[j].ld;
      ea = cand[j].ea;
      --j;
    }
    if (ea < min_ea) {
      // Kept. The element kept just before this one (one step up the
      // descending walk) is its successor in the ascending frontier;
      // its ea is exactly the wait-candidate suppression bound.
      if (!take_f) {
        --dwr;
        delta_ld[dwr] = ld;
        delta_ea[dwr] = ea;
        delta_succ[dwr] = min_ea;
      }
      min_ea = ea;
      --wr;
      out_ld[wr] = ld;
      out_ea[wr] = ea;
    }
  }
  if (i >= 0) {
    // Untouched survivor prefix f[0 .. i]: one copy instead of the
    // element-wise walk. This is the publish fast path -- candidates
    // mostly land near the top of the frontier (later paths depart and
    // arrive later), leaving the bulk of it byte-identical.
    const std::size_t blk = static_cast<std::size_t>(i) + 1;
    wr -= blk;
    std::memcpy(out_ld + wr, f_ld, blk * sizeof(double));
    std::memcpy(out_ea + wr, f_ea, blk * sizeof(double));
  }
  return {fn + m - wr, m - dwr};
}

}  // namespace odtn
