// TemporalGraph: an opportunistic mobile network as a multigraph whose
// edges (contacts) are labeled with time intervals (paper Section 4.2).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/contact.hpp"

namespace odtn {

/// One contact as seen from a fixed endpoint: the time window plus the
/// peer it connects to. TemporalGraph stores these per node in a flat
/// array sorted by increasing end time, so propagation engines scan a
/// cache-friendly sequence and can binary-search the first window ending
/// at or after a given instant.
struct NodeContact {
  double begin;
  double end;
  NodeId to;
};

/// Immutable temporal network over a fixed node set.
///
/// Contacts are stored sorted by (begin, end, u, v). An undirected graph
/// (the default; scanning traces record symmetric radio contacts) lets
/// every contact carry data both ways; a directed graph restricts each
/// contact to u -> v.
///
/// The per-node CSR indexes that the propagation engines scan are built
/// lazily on first use (thread-safely), so ingestion-only workflows --
/// `odtn validate`, filter round-trips, trace statistics -- never pay
/// for them. Copying a graph copies the contacts only; the copy rebuilds
/// its indexes on demand.
///
/// A graph can also BORROW its storage instead of owning it: adopt_view
/// wraps pre-validated contact and index arrays living in an external
/// buffer (an mmap-ed snapshot file, trace/snapshot.hpp) without copying
/// a byte. Copies of a borrowed graph stay zero-copy too -- they share
/// the backing buffer and its already-built indexes -- which keeps the
/// sharded engine's per-shard "private graph copies" cheap on snapshots.
class TemporalGraph {
 public:
  /// Builds a graph with `num_nodes` nodes. Contacts are validated
  /// (throws std::invalid_argument on malformed or out-of-range contacts)
  /// and sorted into canonical order (already-canonical input is
  /// detected and kept as-is in one pass).
  TemporalGraph(std::size_t num_nodes, std::vector<Contact> contacts,
                bool directed = false);

  TemporalGraph(const TemporalGraph& other);
  TemporalGraph& operator=(const TemporalGraph& other);
  TemporalGraph(TemporalGraph&& other) noexcept;
  TemporalGraph& operator=(TemporalGraph&& other) noexcept;
  ~TemporalGraph();

  /// Zero-copy read-only graph over storage owned by `backing` (kept
  /// alive for the graph's lifetime, shared by copies). The caller --
  /// the snapshot decoder -- must have fully validated the arrays: the
  /// contacts canonical-sorted with in-range endpoints, the offset
  /// arrays monotone and consistent, and [start, end] matching the
  /// contact span. No validation happens here.
  static TemporalGraph adopt_view(
      std::size_t num_nodes, bool directed, std::span<const Contact> contacts,
      double start, double end, std::span<const std::uint32_t> node_offsets,
      std::span<const std::uint32_t> node_contacts,
      std::span<const std::uint32_t> neighbor_offsets,
      std::span<const NodeContact> neighbors_by_end,
      std::shared_ptr<const void> backing);

  /// Appends a batch of contacts to an OWNED graph, preserving canonical
  /// order: the batch itself must be canonically sorted and its first
  /// contact must not sort before the current last contact (the live
  /// watermark). Throws std::invalid_argument on malformed, out-of-range
  /// or out-of-order contacts and std::logic_error on a borrowed snapshot
  /// view. If the CSR indexes were already built they GROW in place --
  /// per-node runs extend at the tail and the by-end runs merge the
  /// sorted batch against the existing runs -- producing arrays
  /// byte-identical to a fresh build over the concatenated trace. Returns
  /// the new epoch (bumped once per non-empty batch).
  ///
  /// Not thread-safe against concurrent readers: the caller must
  /// serialize appends with index lookups (the live-ingest layers do).
  std::uint64_t append_contacts(std::span<const Contact> batch);

  /// Monotone append counter: 0 for a freshly built graph, +1 per
  /// non-empty append_contacts batch. Cache layers fold it into their
  /// transform keys so entries computed before an ingest become
  /// unreachable instead of stale.
  std::uint64_t epoch() const noexcept { return epoch_; }

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  bool directed() const noexcept { return directed_; }
  std::span<const Contact> contacts() const noexcept { return contacts_view_; }
  std::size_t num_contacts() const noexcept { return contacts_view_.size(); }

  /// Materialized owned copy of the contact array, for callers that need
  /// vector semantics (rebuilding a graph with different directedness,
  /// feeding merge_overlapping_contacts, ...).
  std::vector<Contact> contacts_vector() const {
    return {contacts_view_.begin(), contacts_view_.end()};
  }

  /// True when this graph borrows external storage (a loaded snapshot)
  /// instead of owning its arrays.
  bool is_view() const noexcept { return backing_ != nullptr; }

  /// Earliest contact begin (0 when the trace is empty).
  double start_time() const noexcept { return start_; }
  /// Latest contact end (0 when the trace is empty).
  double end_time() const noexcept { return end_; }
  double duration() const noexcept { return end_ - start_; }

  /// Average number of contacts per node per `unit` seconds (each
  /// undirected contact counts once for each endpoint, matching the
  /// per-device logging of the paper's Table 1).
  double contact_rate(double unit) const noexcept;

  /// Indices (into contacts()) of the contacts involving `node`, in time
  /// order.
  std::span<const std::uint32_t> contacts_of(NodeId node) const;

  /// `node`'s outgoing contact windows ordered by increasing END time.
  /// A directed graph lists only contacts observed by `node` (u -> v);
  /// an undirected graph lists both endpoints' views. Propagation
  /// engines binary-search this to skip every contact that ends before
  /// the earliest arrival they could extend.
  std::span<const NodeContact> neighbors_by_end(NodeId node) const;

  /// Raw CSR index lanes, building them on first call (same lazy path
  /// as contacts_of / neighbors_by_end). Exposed as whole arrays so the
  /// snapshot writer can serialize a fully-indexed graph byte-exactly:
  ///   node_offsets     num_nodes+1 offsets into node_contact_indices
  ///   node_contact_indices  2*num_contacts (1x when directed) indices
  ///                         into contacts()
  ///   neighbor_offsets num_nodes+1 offsets into neighbor_records
  ///   neighbor_records flat per-node NodeContact runs, end-sorted
  std::span<const std::uint32_t> node_offsets() const;
  std::span<const std::uint32_t> node_contact_indices() const;
  std::span<const std::uint32_t> neighbor_offsets() const;
  std::span<const NodeContact> neighbor_records() const;

  /// Durations of all contacts, in contact order.
  std::vector<double> contact_durations() const;

  /// The next instant at or after `t` at which `node` is in contact with
  /// any other device (the y-value of the paper's Figure 6):
  /// t itself when a contact covering t exists, the next contact begin
  /// otherwise, +infinity if the node is never in contact again.
  double next_contact_time(NodeId node, double t) const;

  /// Number of distinct unordered (or ordered, if directed) node pairs
  /// with at least one contact.
  std::size_t num_connected_pairs() const;

 private:
  /// The engine-facing CSR indexes, built as a unit on first access --
  /// or borrowed wholesale from a snapshot mapping. The spans are what
  /// readers consume; the vectors hold the storage only when the graph
  /// built its own indexes (empty in a borrowed view).
  struct Indexes {
    // Per-node index into contacts(), in canonical (begin) order.
    std::vector<std::uint32_t> node_offsets_store;
    std::vector<std::uint32_t> node_contacts_store;
    // Per-node outgoing contact windows, sorted by end time.
    std::vector<std::uint32_t> neighbor_offsets_store;
    std::vector<NodeContact> neighbors_by_end_store;

    std::span<const std::uint32_t> node_offsets;
    std::span<const std::uint32_t> node_contacts;
    std::span<const std::uint32_t> neighbor_offsets;
    std::span<const NodeContact> neighbors_by_end;

    /// Re-aims the spans at the owned vectors; call after the struct
    /// reached its final address (the heap allocation in indexes()).
    void point_at_stores() noexcept;
  };

  TemporalGraph() = default;  // adopt_view fills the fields directly

  /// Returns the indexes, building them on first call. Thread-safe:
  /// concurrent readers (the Monte-Carlo workers share const graphs)
  /// race to the mutex, one builds, the rest reuse.
  const Indexes& indexes() const;
  Indexes build_indexes() const;
  /// Grows `old` (built over the first `old_count` contacts) into a new
  /// Indexes covering all of contacts_view_. See append_contacts.
  Indexes append_to_indexes(const Indexes& old, std::size_t old_count) const;

  std::size_t num_nodes_ = 0;
  bool directed_ = false;
  std::vector<Contact> contacts_;           // owned storage (views: empty)
  std::span<const Contact> contacts_view_;  // what every reader consumes
  double start_ = 0.0;
  double end_ = 0.0;
  /// Bumped once per non-empty append_contacts batch (stays 0 for
  /// static graphs and snapshot views).
  std::uint64_t epoch_ = 0;
  /// Keeps a borrowed view's storage (snapshot mapping) alive; nullptr
  /// for graphs that own their arrays.
  std::shared_ptr<const void> backing_;
  mutable std::atomic<const Indexes*> indexes_{nullptr};
  mutable std::mutex index_mutex_;
};

}  // namespace odtn
