// TemporalGraph: an opportunistic mobile network as a multigraph whose
// edges (contacts) are labeled with time intervals (paper Section 4.2).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/contact.hpp"

namespace odtn {

/// One contact as seen from a fixed endpoint: the time window plus the
/// peer it connects to. TemporalGraph stores these per node in a flat
/// array sorted by increasing end time, so propagation engines scan a
/// cache-friendly sequence and can binary-search the first window ending
/// at or after a given instant.
struct NodeContact {
  double begin;
  double end;
  NodeId to;
};

/// Immutable temporal network over a fixed node set.
///
/// Contacts are stored sorted by (begin, end, u, v). An undirected graph
/// (the default; scanning traces record symmetric radio contacts) lets
/// every contact carry data both ways; a directed graph restricts each
/// contact to u -> v.
class TemporalGraph {
 public:
  /// Builds a graph with `num_nodes` nodes. Contacts are validated
  /// (throws std::invalid_argument on malformed or out-of-range contacts)
  /// and sorted into canonical order.
  TemporalGraph(std::size_t num_nodes, std::vector<Contact> contacts,
                bool directed = false);

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  bool directed() const noexcept { return directed_; }
  const std::vector<Contact>& contacts() const noexcept { return contacts_; }
  std::size_t num_contacts() const noexcept { return contacts_.size(); }

  /// Earliest contact begin (0 when the trace is empty).
  double start_time() const noexcept { return start_; }
  /// Latest contact end (0 when the trace is empty).
  double end_time() const noexcept { return end_; }
  double duration() const noexcept { return end_ - start_; }

  /// Average number of contacts per node per `unit` seconds (each
  /// undirected contact counts once for each endpoint, matching the
  /// per-device logging of the paper's Table 1).
  double contact_rate(double unit) const noexcept;

  /// Indices (into contacts()) of the contacts involving `node`, in time
  /// order.
  std::span<const std::uint32_t> contacts_of(NodeId node) const;

  /// `node`'s outgoing contact windows ordered by increasing END time.
  /// A directed graph lists only contacts observed by `node` (u -> v);
  /// an undirected graph lists both endpoints' views. Propagation
  /// engines binary-search this to skip every contact that ends before
  /// the earliest arrival they could extend.
  std::span<const NodeContact> neighbors_by_end(NodeId node) const;

  /// Durations of all contacts, in contact order.
  std::vector<double> contact_durations() const;

  /// The next instant at or after `t` at which `node` is in contact with
  /// any other device (the y-value of the paper's Figure 6):
  /// t itself when a contact covering t exists, the next contact begin
  /// otherwise, +infinity if the node is never in contact again.
  double next_contact_time(NodeId node, double t) const;

  /// Number of distinct unordered (or ordered, if directed) node pairs
  /// with at least one contact.
  std::size_t num_connected_pairs() const;

 private:
  std::size_t num_nodes_;
  bool directed_;
  std::vector<Contact> contacts_;
  double start_ = 0.0;
  double end_ = 0.0;
  // CSR-style per-node index into contacts_, in canonical (begin) order.
  std::vector<std::uint32_t> node_offsets_;
  std::vector<std::uint32_t> node_contacts_;
  // CSR-style per-node outgoing contact windows, sorted by end time.
  std::vector<std::uint32_t> neighbor_offsets_;
  std::vector<NodeContact> neighbors_by_end_;
};

}  // namespace odtn
