// TemporalGraph: an opportunistic mobile network as a multigraph whose
// edges (contacts) are labeled with time intervals (paper Section 4.2).
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/contact.hpp"

namespace odtn {

/// One contact as seen from a fixed endpoint: the time window plus the
/// peer it connects to. TemporalGraph stores these per node in a flat
/// array sorted by increasing end time, so propagation engines scan a
/// cache-friendly sequence and can binary-search the first window ending
/// at or after a given instant.
struct NodeContact {
  double begin;
  double end;
  NodeId to;
};

/// Immutable temporal network over a fixed node set.
///
/// Contacts are stored sorted by (begin, end, u, v). An undirected graph
/// (the default; scanning traces record symmetric radio contacts) lets
/// every contact carry data both ways; a directed graph restricts each
/// contact to u -> v.
///
/// The per-node CSR indexes that the propagation engines scan are built
/// lazily on first use (thread-safely), so ingestion-only workflows --
/// `odtn validate`, filter round-trips, trace statistics -- never pay
/// for them. Copying a graph copies the contacts only; the copy rebuilds
/// its indexes on demand.
class TemporalGraph {
 public:
  /// Builds a graph with `num_nodes` nodes. Contacts are validated
  /// (throws std::invalid_argument on malformed or out-of-range contacts)
  /// and sorted into canonical order (already-canonical input is
  /// detected and kept as-is in one pass).
  TemporalGraph(std::size_t num_nodes, std::vector<Contact> contacts,
                bool directed = false);

  TemporalGraph(const TemporalGraph& other);
  TemporalGraph& operator=(const TemporalGraph& other);
  TemporalGraph(TemporalGraph&& other) noexcept;
  TemporalGraph& operator=(TemporalGraph&& other) noexcept;
  ~TemporalGraph();

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  bool directed() const noexcept { return directed_; }
  const std::vector<Contact>& contacts() const noexcept { return contacts_; }
  std::size_t num_contacts() const noexcept { return contacts_.size(); }

  /// Earliest contact begin (0 when the trace is empty).
  double start_time() const noexcept { return start_; }
  /// Latest contact end (0 when the trace is empty).
  double end_time() const noexcept { return end_; }
  double duration() const noexcept { return end_ - start_; }

  /// Average number of contacts per node per `unit` seconds (each
  /// undirected contact counts once for each endpoint, matching the
  /// per-device logging of the paper's Table 1).
  double contact_rate(double unit) const noexcept;

  /// Indices (into contacts()) of the contacts involving `node`, in time
  /// order.
  std::span<const std::uint32_t> contacts_of(NodeId node) const;

  /// `node`'s outgoing contact windows ordered by increasing END time.
  /// A directed graph lists only contacts observed by `node` (u -> v);
  /// an undirected graph lists both endpoints' views. Propagation
  /// engines binary-search this to skip every contact that ends before
  /// the earliest arrival they could extend.
  std::span<const NodeContact> neighbors_by_end(NodeId node) const;

  /// Durations of all contacts, in contact order.
  std::vector<double> contact_durations() const;

  /// The next instant at or after `t` at which `node` is in contact with
  /// any other device (the y-value of the paper's Figure 6):
  /// t itself when a contact covering t exists, the next contact begin
  /// otherwise, +infinity if the node is never in contact again.
  double next_contact_time(NodeId node, double t) const;

  /// Number of distinct unordered (or ordered, if directed) node pairs
  /// with at least one contact.
  std::size_t num_connected_pairs() const;

 private:
  /// The engine-facing CSR indexes, built as a unit on first access.
  struct Indexes {
    // Per-node index into contacts_, in canonical (begin) order.
    std::vector<std::uint32_t> node_offsets;
    std::vector<std::uint32_t> node_contacts;
    // Per-node outgoing contact windows, sorted by end time.
    std::vector<std::uint32_t> neighbor_offsets;
    std::vector<NodeContact> neighbors_by_end;
  };

  /// Returns the indexes, building them on first call. Thread-safe:
  /// concurrent readers (the Monte-Carlo workers share const graphs)
  /// race to the mutex, one builds, the rest reuse.
  const Indexes& indexes() const;
  Indexes build_indexes() const;

  std::size_t num_nodes_;
  bool directed_;
  std::vector<Contact> contacts_;
  double start_ = 0.0;
  double end_ = 0.0;
  mutable std::atomic<const Indexes*> indexes_{nullptr};
  mutable std::mutex index_mutex_;
};

}  // namespace odtn
