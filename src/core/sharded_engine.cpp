#include "core/sharded_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace odtn {
namespace {

/// Little-endian append-only writer. Doubles are copied by bit pattern
/// (memcpy), so every value -- including signed zeros and infinities --
/// round-trips exactly.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { put_raw(&v, sizeof v); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_i32(std::int32_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v) { put_raw(&v, sizeof v); }
  void put_bytes(const void* data, std::size_t n) { put_raw(data, n); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void put_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over one message buffer. Every overrun --
/// truncated buffer, lying length prefix -- throws std::runtime_error;
/// finish() rejects trailing garbage so decode(encode()) is exact.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}

  std::uint8_t take_u8() { return take<std::uint8_t>(); }
  std::uint16_t take_u16() { return take<std::uint16_t>(); }
  std::uint32_t take_u32() { return take<std::uint32_t>(); }
  std::uint64_t take_u64() { return take<std::uint64_t>(); }
  std::int32_t take_i32() { return take<std::int32_t>(); }
  double take_f64() { return take<double>(); }

  /// Length-prefix sanity: a count of fixed-size records must fit in the
  /// remaining bytes, otherwise a lying prefix would drive a giant
  /// allocation before the per-element reads hit the bounds check.
  std::size_t take_count(std::size_t element_size) {
    const std::uint64_t n = take_u64();
    if (element_size > 0 && n > (size_ - pos_) / element_size) fail();
    return static_cast<std::size_t>(n);
  }

  void take_bytes(void* out, std::size_t n) {
    if (size_ - pos_ < n) fail();
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  void finish() const {
    if (pos_ != size_)
      throw std::runtime_error(std::string(what_) +
                               ": trailing bytes after message");
  }

 private:
  template <typename T>
  T take() {
    T v;
    take_bytes(&v, sizeof v);
    return v;
  }
  [[noreturn]] void fail() const {
    throw std::runtime_error(std::string(what_) + ": truncated buffer");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

void put_accumulator(ByteWriter& w, const MeasureCdfAccumulator& acc) {
  for (const double v : acc.const_diff()) w.put_f64(v);
  for (const double v : acc.slope_diff()) w.put_f64(v);
  w.put_f64(acc.denominator());
}

void take_accumulator(ByteReader& r, std::size_t grid_size,
                      MeasureCdfAccumulator& acc) {
  std::vector<double> const_diff(grid_size + 1), slope_diff(grid_size + 1);
  for (double& v : const_diff) v = r.take_f64();
  for (double& v : slope_diff) v = r.take_f64();
  acc.restore_raw(const_diff, slope_diff, r.take_f64());
}

void put_stats(ByteWriter& w, const EngineStats& s) {
  w.put_u64(s.contacts_examined);
  w.put_u64(s.pairs_inserted);
  w.put_u64(s.pairs_dominated);
  w.put_u64(s.frontier_copies_avoided);
  w.put_u64(s.workspace_allocations);
  w.put_u64(s.workspace_reuses);
  w.put_u64(s.cdf_pairs_integrated);
  w.put_u64(s.merge_batches);
  w.put_u64(s.pairs_peak);
  w.put_u64(s.arena_bytes_peak);
  w.put_u64(s.cache_hits);
  w.put_u64(s.cache_misses);
  w.put_u64(s.cache_evictions);
  w.put_u64(s.batch_blocks);
  w.put_u64(s.index_walks_saved);
  w.put_u64(s.batch_lane_steps);
  w.put_u64(s.batch_lane_slots);
}

EngineStats take_stats(ByteReader& r) {
  EngineStats s;
  s.contacts_examined = r.take_u64();
  s.pairs_inserted = r.take_u64();
  s.pairs_dominated = r.take_u64();
  s.frontier_copies_avoided = r.take_u64();
  s.workspace_allocations = r.take_u64();
  s.workspace_reuses = r.take_u64();
  s.cdf_pairs_integrated = r.take_u64();
  s.merge_batches = r.take_u64();
  s.pairs_peak = r.take_u64();
  s.arena_bytes_peak = r.take_u64();
  s.cache_hits = r.take_u64();
  s.cache_misses = r.take_u64();
  s.cache_evictions = r.take_u64();
  s.batch_blocks = r.take_u64();
  s.index_walks_saved = r.take_u64();
  s.batch_lane_steps = r.take_u64();
  s.batch_lane_slots = r.take_u64();
  return s;
}

void check_header(ByteReader& r, std::uint32_t magic, std::uint16_t version,
                  const char* what) {
  if (r.take_u32() != magic)
    throw std::runtime_error(std::string(what) + ": bad magic");
  if (r.take_u16() != version)
    throw std::runtime_error(std::string(what) + ": unsupported version");
}

}  // namespace

std::string graph_transform_key(const TemporalGraph& graph) {
  // num_nodes/num_contacts/directedness plus the bit patterns of the
  // span endpoints: cheap, stable across copies, and any trace transform
  // (filter, window restriction, import) perturbs at least one field.
  std::uint64_t start_bits = 0, end_bits = 0;
  const double start = graph.start_time(), end = graph.end_time();
  std::memcpy(&start_bits, &start, sizeof start_bits);
  std::memcpy(&end_bits, &end, sizeof end_bits);
  char buf[96];
  std::snprintf(buf, sizeof buf, "trace:n%zu:c%zu:d%d:s%016llx:e%016llx",
                graph.num_nodes(), graph.num_contacts(),
                graph.directed() ? 1 : 0,
                static_cast<unsigned long long>(start_bits),
                static_cast<unsigned long long>(end_bits));
  return buf;
}

std::vector<std::uint8_t> ShardRequest::encode() const {
  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u16(kVersion);
  w.put_u32(shard_id);
  w.put_u32(num_shards);
  w.put_u8(static_cast<std::uint8_t>(policy));
  w.put_u8(static_cast<std::uint8_t>(engine));
  w.put_u8(incremental ? 1 : 0);
  w.put_i32(max_hops);
  w.put_i32(max_levels);
  w.put_i32(source_batch);
  w.put_u64(grid.size());
  for (const double v : grid) w.put_f64(v);
  w.put_u64(windows.size());
  for (const auto& [lo, hi] : windows) {
    w.put_f64(lo);
    w.put_f64(hi);
  }
  w.put_u64(endpoints.size());
  for (const NodeId n : endpoints) w.put_u32(n);
  w.put_u64(sources.size());
  for (const std::uint32_t s : sources) w.put_u32(s);
  w.put_u64(transform_key.size());
  w.put_bytes(transform_key.data(), transform_key.size());
  return w.take();
}

ShardRequest ShardRequest::decode(const std::uint8_t* data,
                                  std::size_t size) {
  ByteReader r(data, size, "ShardRequest");
  check_header(r, kMagic, kVersion, "ShardRequest");
  ShardRequest req;
  req.shard_id = r.take_u32();
  req.num_shards = r.take_u32();
  const std::uint8_t policy = r.take_u8();
  if (policy > static_cast<std::uint8_t>(ShardPolicy::kDegreeBalanced))
    throw std::runtime_error("ShardRequest: unknown shard policy");
  req.policy = static_cast<ShardPolicy>(policy);
  const std::uint8_t engine = r.take_u8();
  if (engine > static_cast<std::uint8_t>(EngineMode::kLevelSweep))
    throw std::runtime_error("ShardRequest: unknown engine mode");
  req.engine = static_cast<EngineMode>(engine);
  req.incremental = r.take_u8() != 0;
  req.max_hops = r.take_i32();
  req.max_levels = r.take_i32();
  req.source_batch = r.take_i32();
  if (req.source_batch < 1)
    throw std::runtime_error("ShardRequest: source_batch must be >= 1");
  req.grid.resize(r.take_count(sizeof(double)));
  for (double& v : req.grid) v = r.take_f64();
  req.windows.resize(r.take_count(2 * sizeof(double)));
  for (auto& [lo, hi] : req.windows) {
    lo = r.take_f64();
    hi = r.take_f64();
  }
  req.endpoints.resize(r.take_count(sizeof(std::uint32_t)));
  for (NodeId& n : req.endpoints) n = r.take_u32();
  req.sources.resize(r.take_count(sizeof(std::uint32_t)));
  for (std::uint32_t& s : req.sources) s = r.take_u32();
  req.transform_key.resize(r.take_count(1));
  r.take_bytes(req.transform_key.data(), req.transform_key.size());
  r.finish();
  return req;
}

std::vector<std::uint8_t> ShardResult::encode() const {
  // Grid and hop-budget count ride in the header (taken from the first
  // partial) so the message is self-describing even to a decoder that
  // never saw the request.
  const std::vector<double>* grid = nullptr;
  std::size_t max_hops = 0;
  if (!partials.empty()) {
    grid = &partials.front().second.unbounded.grid();
    max_hops = partials.front().second.by_hops.size();
  }
  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u16(kVersion);
  w.put_u32(shard_id);
  w.put_u8(converged ? 1 : 0);
  w.put_i32(fixpoint_hops);
  put_stats(w, stats);
  w.put_u64(grid ? grid->size() : 0);
  if (grid)
    for (const double v : *grid) w.put_f64(v);
  w.put_u32(static_cast<std::uint32_t>(max_hops));
  w.put_u64(partials.size());
  for (const auto& [index, partial] : partials) {
    w.put_u32(index);
    w.put_i32(partial.fixpoint_hops);
    w.put_u8(partial.converged ? 1 : 0);
    for (const MeasureCdfAccumulator& acc : partial.by_hops)
      put_accumulator(w, acc);
    put_accumulator(w, partial.unbounded);
  }
  return w.take();
}

ShardResult ShardResult::decode(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size, "ShardResult");
  check_header(r, kMagic, kVersion, "ShardResult");
  ShardResult res;
  res.shard_id = r.take_u32();
  res.converged = r.take_u8() != 0;
  res.fixpoint_hops = r.take_i32();
  res.stats = take_stats(r);
  std::vector<double> grid(r.take_count(sizeof(double)));
  for (double& v : grid) v = r.take_f64();
  const std::uint32_t max_hops = r.take_u32();
  // Each partial carries (max_hops + 1) accumulators of 2*(M+1)+1
  // doubles plus its 9-byte header.
  const std::size_t partial_bytes =
      (static_cast<std::size_t>(max_hops) + 1) *
          (2 * (grid.size() + 1) + 1) * sizeof(double) +
      9;
  const std::size_t count = r.take_count(partial_bytes);
  if (count > 0 && (grid.empty() || max_hops == 0))
    throw std::runtime_error("ShardResult: partials without grid/hops");
  res.partials.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t index = r.take_u32();
    SourceCdfPartial partial(grid, static_cast<int>(max_hops));
    partial.fixpoint_hops = r.take_i32();
    partial.converged = r.take_u8() != 0;
    for (MeasureCdfAccumulator& acc : partial.by_hops)
      take_accumulator(r, grid.size(), acc);
    take_accumulator(r, grid.size(), partial.unbounded);
    res.partials.emplace_back(index, std::move(partial));
  }
  r.finish();
  return res;
}

ShardResult run_shard(const TemporalGraph& slice,
                      const ShardRequest& request) {
  if (request.grid.empty())
    throw std::invalid_argument("run_shard: empty grid");
  if (request.max_hops < 1)
    throw std::invalid_argument("run_shard: max_hops must be >= 1");
  if (request.incremental && request.engine == EngineMode::kLevelSweep)
    throw std::invalid_argument(
        "run_shard: incremental accumulation requires a delta engine");
  if (!request.transform_key.empty() &&
      request.transform_key != graph_transform_key(slice))
    throw std::invalid_argument(
        "run_shard: transform key mismatch (request targets a different "
        "graph slice)");
  for (const NodeId n : request.endpoints) {
    if (n >= slice.num_nodes())
      throw std::invalid_argument("run_shard: endpoint out of range");
  }
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < request.sources.size(); ++i) {
    const std::uint32_t s = request.sources[i];
    if (s >= request.endpoints.size())
      throw std::invalid_argument("run_shard: source index out of range");
    if (i > 0 && s <= prev)
      throw std::invalid_argument("run_shard: sources must be ascending");
    prev = s;
  }

  std::vector<std::uint8_t> is_endpoint(slice.num_nodes(), 0);
  for (const NodeId n : request.endpoints) is_endpoint[n] = 1;

  ShardResult out;
  out.shard_id = request.shard_id;
  out.partials.reserve(request.sources.size());

  // Batched execution inside the shard: blocks of consecutive owned
  // sources run through one lockstep multi-source engine. Each lane's
  // partial is bit-identical to the per-source path's and the partials
  // are still emitted in ascending endpoint-index order, so the
  // coordinator's canonical fold is unchanged.
  const std::size_t batch =
      std::min<std::size_t>(static_cast<std::size_t>(request.source_batch),
                            request.sources.size());
  if (batch > 1) {
    if (request.engine != EngineMode::kPooled || !request.incremental)
      throw std::invalid_argument(
          "run_shard: batched execution (source_batch > 1) requires the "
          "pooled engine with incremental accumulation");
    BatchedCdfWorker worker;
    std::vector<NodeId> block;
    std::vector<SourceCdfPartial> outs;
    for (std::size_t lo = 0; lo < request.sources.size(); lo += batch) {
      const std::size_t width =
          std::min(batch, request.sources.size() - lo);
      block.clear();
      for (std::size_t j = 0; j < width; ++j)
        block.push_back(request.endpoints[request.sources[lo + j]]);
      while (outs.size() < width)
        outs.emplace_back(request.grid, request.max_hops);
      for (std::size_t j = 0; j < width; ++j) outs[j].clear();
      process_source_block(slice, block, request.endpoints, is_endpoint,
                           request.windows, request.max_hops,
                           request.max_levels, worker, outs);
      for (std::size_t j = 0; j < width; ++j) {
        out.fixpoint_hops =
            std::max(out.fixpoint_hops, outs[j].fixpoint_hops);
        out.converged = out.converged && outs[j].converged;
        out.partials.emplace_back(request.sources[lo + j], outs[j]);
      }
    }
    out.stats = worker.take_stats();
    return out;
  }

  // One recycled engine workspace per shard (the shard's private
  // PairArena pool under kPooled); sources run serially in ascending
  // order -- shard-level parallelism comes from running shards
  // concurrently, not from threading inside one shard.
  SourceCdfWorker worker;
  SourceCdfPartial scratch(request.grid, request.max_hops);
  for (const std::uint32_t index : request.sources) {
    scratch.clear();
    process_source(slice, request.endpoints[index], request.endpoints,
                   is_endpoint, request.windows, request.max_hops,
                   request.max_levels, request.engine, request.incremental,
                   worker, scratch);
    out.fixpoint_hops = std::max(out.fixpoint_hops, scratch.fixpoint_hops);
    out.converged = out.converged && scratch.converged;
    out.partials.emplace_back(index, scratch);
  }
  out.stats = worker.take_stats();
  return out;
}

DelayCdfResult compute_delay_cdf_sharded(const TemporalGraph& graph,
                                         const DelayCdfOptions& options,
                                         const ShardingOptions& sharding) {
  if (options.grid.empty())
    throw std::invalid_argument("compute_delay_cdf: empty grid");
  if (options.max_hops < 1)
    throw std::invalid_argument("compute_delay_cdf: max_hops must be >= 1");
  if (sharding.num_shards == 0)
    throw std::invalid_argument(
        "compute_delay_cdf_sharded: num_shards must be >= 1");

  const TimeWindows w = resolve_cdf_windows(graph, options);
  const std::vector<NodeId> endpoints = resolve_cdf_endpoints(graph, options);
  const bool incremental = use_incremental_accumulation(options);
  const SourcePartition part =
      partition_sources(graph, endpoints, sharding.num_shards,
                        sharding.policy, sharding.block_size);

  ShardRequest base;
  base.num_shards = static_cast<std::uint32_t>(sharding.num_shards);
  base.policy = sharding.policy;
  base.engine = options.engine;
  base.incremental = incremental;
  base.max_hops = options.max_hops;
  base.max_levels = options.max_levels;
  base.source_batch = options.source_batch;
  base.grid = options.grid;
  base.windows = w;
  base.endpoints = endpoints;
  base.transform_key = graph_transform_key(graph);

  std::optional<ThreadPool> local_pool;
  if (options.num_threads != 0) local_pool.emplace(options.num_threads);
  ThreadPool& pool = local_pool ? *local_pool : shared_thread_pool();

  // Every shard boundary crossing goes through the byte encoding, both
  // directions, even in-process: the wire format is load-bearing on
  // every run, not just in its unit tests.
  std::vector<std::optional<ShardResult>> results(sharding.num_shards);
  pool.parallel_for(sharding.num_shards, [&](std::size_t s, unsigned) {
    ShardRequest req = base;
    req.shard_id = static_cast<std::uint32_t>(s);
    req.sources = part.members[s];
    const std::vector<std::uint8_t> req_bytes = req.encode();
    const ShardRequest wire_req =
        ShardRequest::decode(req_bytes.data(), req_bytes.size());
    const TemporalGraph slice(graph);  // the shard's private graph copy
    const ShardResult res = run_shard(slice, wire_req);
    const std::vector<std::uint8_t> res_bytes = res.encode();
    results[s] = ShardResult::decode(res_bytes.data(), res_bytes.size());
  });

  // Coverage check, then the canonical fold: ascending endpoint index
  // across all shards -- the same left chain as the unsharded driver,
  // which is what makes the two paths bit-identical.
  std::vector<const SourceCdfPartial*> by_index(endpoints.size(), nullptr);
  EngineStats stats;
  for (const std::optional<ShardResult>& res : results) {
    stats.merge(res->stats);
    for (const auto& [index, partial] : res->partials) {
      if (index >= by_index.size() || by_index[index] != nullptr)
        throw std::logic_error(
            "compute_delay_cdf_sharded: shard coverage is not a partition");
      by_index[index] = &partial;
    }
  }
  SourceCdfPartial total(options.grid, options.max_hops);
  for (std::size_t i = 0; i < by_index.size(); ++i) {
    if (by_index[i] == nullptr)
      throw std::logic_error(
          "compute_delay_cdf_sharded: source missing from every shard");
    total.merge_from(*by_index[i]);
  }
  return finalize_delay_cdf(total, stats, options, incremental);
}

}  // namespace odtn
