#include "core/temporal_graph.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

namespace odtn {

TemporalGraph::TemporalGraph(std::size_t num_nodes,
                             std::vector<Contact> contacts, bool directed)
    : num_nodes_(num_nodes),
      directed_(directed),
      contacts_(std::move(contacts)) {
  bool sorted = true;
  for (std::size_t i = 0; i < contacts_.size(); ++i) {
    const Contact& c = contacts_[i];
    if (!is_valid_contact(c))
      throw std::invalid_argument("TemporalGraph: malformed contact");
    if (c.u >= num_nodes_ || c.v >= num_nodes_)
      throw std::invalid_argument("TemporalGraph: contact node out of range");
    if (i > 0 && contact_less(c, contacts_[i - 1])) sorted = false;
  }
  // Traces read back from write_trace (and most generators) are already
  // canonical; skipping the sort keeps ingestion one pass per array.
  if (!sorted) std::sort(contacts_.begin(), contacts_.end(), contact_less);
  contacts_view_ = contacts_;

  if (!contacts_.empty()) {
    // Seed from the first contact, NOT from 0.0: a trace whose timestamps
    // are all negative (e.g. epoch-shifted imports) must not report a
    // spurious end_time of 0.
    start_ = contacts_.front().begin;
    end_ = contacts_.front().end;
    for (const Contact& c : contacts_) end_ = std::max(end_, c.end);
  }
}

TemporalGraph TemporalGraph::adopt_view(
    std::size_t num_nodes, bool directed, std::span<const Contact> contacts,
    double start, double end, std::span<const std::uint32_t> node_offsets,
    std::span<const std::uint32_t> node_contacts,
    std::span<const std::uint32_t> neighbor_offsets,
    std::span<const NodeContact> neighbors_by_end,
    std::shared_ptr<const void> backing) {
  TemporalGraph g;
  g.num_nodes_ = num_nodes;
  g.directed_ = directed;
  g.contacts_view_ = contacts;
  g.start_ = start;
  g.end_ = end;
  g.backing_ = std::move(backing);
  auto* ix = new Indexes;
  ix->node_offsets = node_offsets;
  ix->node_contacts = node_contacts;
  ix->neighbor_offsets = neighbor_offsets;
  ix->neighbors_by_end = neighbors_by_end;
  g.indexes_.store(ix, std::memory_order_release);
  return g;
}

TemporalGraph::TemporalGraph(const TemporalGraph& other)
    : num_nodes_(other.num_nodes_),
      directed_(other.directed_),
      contacts_(other.contacts_),
      start_(other.start_),
      end_(other.end_),
      epoch_(other.epoch_),
      backing_(other.backing_) {
  if (backing_) {
    // Borrowed view: share the mapping and its ready-made indexes. The
    // cloned Indexes holds spans into the shared backing only (its
    // stores are empty), so the clone stays valid on its own.
    contacts_view_ = other.contacts_view_;
    if (const Indexes* ix = other.indexes_.load(std::memory_order_acquire))
      indexes_.store(new Indexes(*ix), std::memory_order_release);
  } else {
    contacts_view_ = contacts_;  // indexes rebuild lazily: copies stay cheap
  }
}

TemporalGraph& TemporalGraph::operator=(const TemporalGraph& other) {
  if (this != &other) {
    num_nodes_ = other.num_nodes_;
    directed_ = other.directed_;
    contacts_ = other.contacts_;
    start_ = other.start_;
    end_ = other.end_;
    epoch_ = other.epoch_;
    backing_ = other.backing_;
    const Indexes* replacement = nullptr;
    if (backing_) {
      contacts_view_ = other.contacts_view_;
      if (const Indexes* ix = other.indexes_.load(std::memory_order_acquire))
        replacement = new Indexes(*ix);
    } else {
      contacts_view_ = contacts_;
    }
    delete indexes_.exchange(replacement);
  }
  return *this;
}

TemporalGraph::TemporalGraph(TemporalGraph&& other) noexcept
    : num_nodes_(other.num_nodes_),
      directed_(other.directed_),
      contacts_(std::move(other.contacts_)),
      // A span over the moved vector stays valid: the heap buffer moved
      // with it. A view's span points into backing_, also moved here.
      contacts_view_(other.contacts_view_),
      start_(other.start_),
      end_(other.end_),
      epoch_(other.epoch_),
      backing_(std::move(other.backing_)),
      indexes_(other.indexes_.exchange(nullptr)) {
  other.contacts_view_ = {};
}

TemporalGraph& TemporalGraph::operator=(TemporalGraph&& other) noexcept {
  if (this != &other) {
    num_nodes_ = other.num_nodes_;
    directed_ = other.directed_;
    contacts_ = std::move(other.contacts_);
    contacts_view_ = other.contacts_view_;
    start_ = other.start_;
    end_ = other.end_;
    epoch_ = other.epoch_;
    backing_ = std::move(other.backing_);
    delete indexes_.exchange(other.indexes_.exchange(nullptr));
    other.contacts_view_ = {};
  }
  return *this;
}

TemporalGraph::~TemporalGraph() { delete indexes_.load(); }

std::uint64_t TemporalGraph::append_contacts(std::span<const Contact> batch) {
  if (backing_ != nullptr)
    throw std::logic_error(
        "TemporalGraph::append_contacts: cannot append to a snapshot view");
  if (batch.empty()) return epoch_;

  const Contact* prev = contacts_.empty() ? nullptr : &contacts_.back();
  for (const Contact& c : batch) {
    if (!is_valid_contact(c))
      throw std::invalid_argument("TemporalGraph::append_contacts: malformed "
                                  "contact");
    if (c.u >= num_nodes_ || c.v >= num_nodes_)
      throw std::invalid_argument("TemporalGraph::append_contacts: contact "
                                  "node out of range");
    if (prev != nullptr && contact_less(c, *prev))
      throw std::invalid_argument("TemporalGraph::append_contacts: batch "
                                  "breaks canonical order");
    prev = &c;
  }

  const std::size_t old_count = contacts_.size();
  contacts_.insert(contacts_.end(), batch.begin(), batch.end());
  contacts_view_ = contacts_;
  if (old_count == 0) {
    start_ = contacts_.front().begin;
    end_ = contacts_.front().end;
  }
  for (const Contact& c : batch) end_ = std::max(end_, c.end);

  // Grow already-built indexes instead of dropping them: the whole point
  // of the canonical-order precondition is that every per-node run
  // extends at the tail, so the merged arrays match a fresh build byte
  // for byte without re-sorting the existing contacts.
  if (const Indexes* ix = indexes_.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(index_mutex_);
    ix = indexes_.load(std::memory_order_relaxed);
    auto* grown = new Indexes(append_to_indexes(*ix, old_count));
    grown->point_at_stores();
    indexes_.store(grown, std::memory_order_release);
    delete ix;
  }

  return ++epoch_;
}

TemporalGraph::Indexes TemporalGraph::append_to_indexes(
    const Indexes& old, std::size_t old_count) const {
  Indexes ix;
  const std::size_t total = contacts_view_.size();

  // Per-node counts of the appended contacts, as a shifted prefix sum.
  std::vector<std::uint32_t> added(num_nodes_ + 1, 0);
  for (std::size_t i = old_count; i < total; ++i) {
    const Contact& c = contacts_view_[i];
    ++added[c.u + 1];
    ++added[c.v + 1];
  }
  for (std::size_t n = 1; n <= num_nodes_; ++n) added[n] += added[n - 1];

  ix.node_offsets_store.resize(num_nodes_ + 1);
  for (std::size_t n = 0; n <= num_nodes_; ++n)
    ix.node_offsets_store[n] = old.node_offsets[n] + added[n];
  ix.node_contacts_store.resize(2 * total);
  std::vector<std::uint32_t> cursor(num_nodes_);
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    // Old run first (already in ascending contact-index order), new
    // indices behind it -- exactly the fill order of a fresh build.
    const std::uint32_t old_len = old.node_offsets[n + 1] - old.node_offsets[n];
    std::copy_n(old.node_contacts.begin() + old.node_offsets[n], old_len,
                ix.node_contacts_store.begin() + ix.node_offsets_store[n]);
    cursor[n] = ix.node_offsets_store[n] + old_len;
  }
  for (std::size_t i = old_count; i < total; ++i) {
    const Contact& c = contacts_view_[i];
    ix.node_contacts_store[cursor[c.u]++] = static_cast<std::uint32_t>(i);
    ix.node_contacts_store[cursor[c.v]++] = static_cast<std::uint32_t>(i);
  }

  // By-end runs: sort only the appended windows per node, then one
  // linear merge against the old run. Records that tie on the sort key
  // are bitwise equal ({begin, end, to} IS the key), so any interleaving
  // the merge picks is byte-identical to the fresh build's stable sort.
  const auto by_end = [](const NodeContact& a, const NodeContact& b) {
    if (a.end != b.end) return a.end < b.end;
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.to < b.to;
  };
  std::vector<std::uint32_t> nadded(num_nodes_ + 1, 0);
  for (std::size_t i = old_count; i < total; ++i) {
    const Contact& c = contacts_view_[i];
    ++nadded[c.u + 1];
    if (!directed_) ++nadded[c.v + 1];
  }
  for (std::size_t n = 1; n <= num_nodes_; ++n) nadded[n] += nadded[n - 1];
  std::vector<NodeContact> fresh(nadded.back());
  std::vector<std::uint32_t> ncursor(nadded.begin(), nadded.end() - 1);
  for (std::size_t i = old_count; i < total; ++i) {
    const Contact& c = contacts_view_[i];
    fresh[ncursor[c.u]++] = {c.begin, c.end, c.v};
    if (!directed_) fresh[ncursor[c.v]++] = {c.begin, c.end, c.u};
  }
  ix.neighbor_offsets_store.resize(num_nodes_ + 1);
  for (std::size_t n = 0; n <= num_nodes_; ++n)
    ix.neighbor_offsets_store[n] = old.neighbor_offsets[n] + nadded[n];
  ix.neighbors_by_end_store.resize(ix.neighbor_offsets_store.back());
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    std::sort(fresh.begin() + nadded[n], fresh.begin() + nadded[n + 1], by_end);
    std::merge(old.neighbors_by_end.begin() + old.neighbor_offsets[n],
               old.neighbors_by_end.begin() + old.neighbor_offsets[n + 1],
               fresh.begin() + nadded[n], fresh.begin() + nadded[n + 1],
               ix.neighbors_by_end_store.begin() + ix.neighbor_offsets_store[n],
               by_end);
  }
  return ix;
}

void TemporalGraph::Indexes::point_at_stores() noexcept {
  node_offsets = node_offsets_store;
  node_contacts = node_contacts_store;
  neighbor_offsets = neighbor_offsets_store;
  neighbors_by_end = neighbors_by_end_store;
}

const TemporalGraph::Indexes& TemporalGraph::indexes() const {
  // Double-checked build: the acquire load pairs with the release store
  // so readers that see the pointer also see the built arrays.
  const Indexes* ix = indexes_.load(std::memory_order_acquire);
  if (ix == nullptr) {
    const std::lock_guard<std::mutex> lock(index_mutex_);
    ix = indexes_.load(std::memory_order_relaxed);
    if (ix == nullptr) {
      auto* built = new Indexes(build_indexes());
      built->point_at_stores();
      indexes_.store(built, std::memory_order_release);
      ix = built;
    }
  }
  return *ix;
}

TemporalGraph::Indexes TemporalGraph::build_indexes() const {
  Indexes ix;
  // Per-node contact index (counting sort by node).
  ix.node_offsets_store.assign(num_nodes_ + 1, 0);
  for (const Contact& c : contacts_view_) {
    ++ix.node_offsets_store[c.u + 1];
    ++ix.node_offsets_store[c.v + 1];
  }
  for (std::size_t i = 1; i < ix.node_offsets_store.size(); ++i)
    ix.node_offsets_store[i] += ix.node_offsets_store[i - 1];
  ix.node_contacts_store.resize(2 * contacts_view_.size());

  // Secondary index: each node's outgoing contact windows, materialized
  // as flat {begin, end, peer} records and re-sorted by end time, so
  // propagation engines scan sequential memory and can binary-search
  // "first window ending at or after t". Undirected graphs index both
  // endpoints per contact, so the counts equal the node index's.
  if (directed_) {
    ix.neighbor_offsets_store.assign(num_nodes_ + 1, 0);
    for (const Contact& c : contacts_view_)
      ++ix.neighbor_offsets_store[c.u + 1];
    for (std::size_t i = 1; i < ix.neighbor_offsets_store.size(); ++i)
      ix.neighbor_offsets_store[i] += ix.neighbor_offsets_store[i - 1];
  } else {
    ix.neighbor_offsets_store = ix.node_offsets_store;
  }
  ix.neighbors_by_end_store.resize(ix.neighbor_offsets_store.back());

  std::vector<std::uint32_t> cursor(ix.node_offsets_store.begin(),
                                    ix.node_offsets_store.end() - 1);
  std::vector<std::uint32_t> ncursor(ix.neighbor_offsets_store.begin(),
                                     ix.neighbor_offsets_store.end() - 1);
  for (std::uint32_t idx = 0; idx < contacts_view_.size(); ++idx) {
    const Contact& c = contacts_view_[idx];
    ix.node_contacts_store[cursor[c.u]++] = idx;
    ix.node_contacts_store[cursor[c.v]++] = idx;
    ix.neighbors_by_end_store[ncursor[c.u]++] = {c.begin, c.end, c.v};
    if (!directed_)
      ix.neighbors_by_end_store[ncursor[c.v]++] = {c.begin, c.end, c.u};
  }
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    std::sort(
        ix.neighbors_by_end_store.begin() + ix.neighbor_offsets_store[n],
        ix.neighbors_by_end_store.begin() + ix.neighbor_offsets_store[n + 1],
        [](const NodeContact& a, const NodeContact& b) {
          if (a.end != b.end) return a.end < b.end;
          if (a.begin != b.begin) return a.begin < b.begin;
          return a.to < b.to;
        });
  }
  return ix;
}

double TemporalGraph::contact_rate(double unit) const noexcept {
  if (num_nodes_ == 0 || duration() <= 0.0) return 0.0;
  // Each contact is logged by both endpoints (undirected) or by the
  // observer only (directed).
  const double logs = static_cast<double>(contacts_view_.size()) *
                      (directed_ ? 1.0 : 2.0);
  return logs / static_cast<double>(num_nodes_) / (duration() / unit);
}

std::span<const std::uint32_t> TemporalGraph::contacts_of(NodeId node) const {
  if (node >= num_nodes_)
    throw std::out_of_range("TemporalGraph::contacts_of: bad node");
  const Indexes& ix = indexes();
  return ix.node_contacts.subspan(
      ix.node_offsets[node], ix.node_offsets[node + 1] - ix.node_offsets[node]);
}

std::span<const NodeContact> TemporalGraph::neighbors_by_end(
    NodeId node) const {
  if (node >= num_nodes_)
    throw std::out_of_range("TemporalGraph::neighbors_by_end: bad node");
  const Indexes& ix = indexes();
  return ix.neighbors_by_end.subspan(
      ix.neighbor_offsets[node],
      ix.neighbor_offsets[node + 1] - ix.neighbor_offsets[node]);
}

std::span<const std::uint32_t> TemporalGraph::node_offsets() const {
  return indexes().node_offsets;
}

std::span<const std::uint32_t> TemporalGraph::node_contact_indices() const {
  return indexes().node_contacts;
}

std::span<const std::uint32_t> TemporalGraph::neighbor_offsets() const {
  return indexes().neighbor_offsets;
}

std::span<const NodeContact> TemporalGraph::neighbor_records() const {
  return indexes().neighbors_by_end;
}

std::vector<double> TemporalGraph::contact_durations() const {
  std::vector<double> out;
  out.reserve(contacts_view_.size());
  for (const Contact& c : contacts_view_) out.push_back(c.duration());
  return out;
}

double TemporalGraph::next_contact_time(NodeId node, double t) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t idx : contacts_of(node)) {
    const Contact& c = contacts_view_[idx];
    if (directed_ && c.u != node) continue;  // only outgoing visibility
    if (c.end < t) continue;
    best = std::min(best, std::max(c.begin, t));
    if (best == t) break;  // cannot do better than "in contact now"
  }
  return best;
}

std::size_t TemporalGraph::num_connected_pairs() const {
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (const Contact& c : contacts_view_) {
    if (directed_) {
      pairs.emplace(c.u, c.v);
    } else {
      pairs.emplace(std::min(c.u, c.v), std::max(c.u, c.v));
    }
  }
  return pairs.size();
}

}  // namespace odtn
