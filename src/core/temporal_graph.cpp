#include "core/temporal_graph.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

namespace odtn {

TemporalGraph::TemporalGraph(std::size_t num_nodes,
                             std::vector<Contact> contacts, bool directed)
    : num_nodes_(num_nodes),
      directed_(directed),
      contacts_(std::move(contacts)) {
  bool sorted = true;
  for (std::size_t i = 0; i < contacts_.size(); ++i) {
    const Contact& c = contacts_[i];
    if (!is_valid_contact(c))
      throw std::invalid_argument("TemporalGraph: malformed contact");
    if (c.u >= num_nodes_ || c.v >= num_nodes_)
      throw std::invalid_argument("TemporalGraph: contact node out of range");
    if (i > 0 && contact_less(c, contacts_[i - 1])) sorted = false;
  }
  // Traces read back from write_trace (and most generators) are already
  // canonical; skipping the sort keeps ingestion one pass per array.
  if (!sorted) std::sort(contacts_.begin(), contacts_.end(), contact_less);
  contacts_view_ = contacts_;

  if (!contacts_.empty()) {
    // Seed from the first contact, NOT from 0.0: a trace whose timestamps
    // are all negative (e.g. epoch-shifted imports) must not report a
    // spurious end_time of 0.
    start_ = contacts_.front().begin;
    end_ = contacts_.front().end;
    for (const Contact& c : contacts_) end_ = std::max(end_, c.end);
  }
}

TemporalGraph TemporalGraph::adopt_view(
    std::size_t num_nodes, bool directed, std::span<const Contact> contacts,
    double start, double end, std::span<const std::uint32_t> node_offsets,
    std::span<const std::uint32_t> node_contacts,
    std::span<const std::uint32_t> neighbor_offsets,
    std::span<const NodeContact> neighbors_by_end,
    std::shared_ptr<const void> backing) {
  TemporalGraph g;
  g.num_nodes_ = num_nodes;
  g.directed_ = directed;
  g.contacts_view_ = contacts;
  g.start_ = start;
  g.end_ = end;
  g.backing_ = std::move(backing);
  auto* ix = new Indexes;
  ix->node_offsets = node_offsets;
  ix->node_contacts = node_contacts;
  ix->neighbor_offsets = neighbor_offsets;
  ix->neighbors_by_end = neighbors_by_end;
  g.indexes_.store(ix, std::memory_order_release);
  return g;
}

TemporalGraph::TemporalGraph(const TemporalGraph& other)
    : num_nodes_(other.num_nodes_),
      directed_(other.directed_),
      contacts_(other.contacts_),
      start_(other.start_),
      end_(other.end_),
      backing_(other.backing_) {
  if (backing_) {
    // Borrowed view: share the mapping and its ready-made indexes. The
    // cloned Indexes holds spans into the shared backing only (its
    // stores are empty), so the clone stays valid on its own.
    contacts_view_ = other.contacts_view_;
    if (const Indexes* ix = other.indexes_.load(std::memory_order_acquire))
      indexes_.store(new Indexes(*ix), std::memory_order_release);
  } else {
    contacts_view_ = contacts_;  // indexes rebuild lazily: copies stay cheap
  }
}

TemporalGraph& TemporalGraph::operator=(const TemporalGraph& other) {
  if (this != &other) {
    num_nodes_ = other.num_nodes_;
    directed_ = other.directed_;
    contacts_ = other.contacts_;
    start_ = other.start_;
    end_ = other.end_;
    backing_ = other.backing_;
    const Indexes* replacement = nullptr;
    if (backing_) {
      contacts_view_ = other.contacts_view_;
      if (const Indexes* ix = other.indexes_.load(std::memory_order_acquire))
        replacement = new Indexes(*ix);
    } else {
      contacts_view_ = contacts_;
    }
    delete indexes_.exchange(replacement);
  }
  return *this;
}

TemporalGraph::TemporalGraph(TemporalGraph&& other) noexcept
    : num_nodes_(other.num_nodes_),
      directed_(other.directed_),
      contacts_(std::move(other.contacts_)),
      // A span over the moved vector stays valid: the heap buffer moved
      // with it. A view's span points into backing_, also moved here.
      contacts_view_(other.contacts_view_),
      start_(other.start_),
      end_(other.end_),
      backing_(std::move(other.backing_)),
      indexes_(other.indexes_.exchange(nullptr)) {
  other.contacts_view_ = {};
}

TemporalGraph& TemporalGraph::operator=(TemporalGraph&& other) noexcept {
  if (this != &other) {
    num_nodes_ = other.num_nodes_;
    directed_ = other.directed_;
    contacts_ = std::move(other.contacts_);
    contacts_view_ = other.contacts_view_;
    start_ = other.start_;
    end_ = other.end_;
    backing_ = std::move(other.backing_);
    delete indexes_.exchange(other.indexes_.exchange(nullptr));
    other.contacts_view_ = {};
  }
  return *this;
}

TemporalGraph::~TemporalGraph() { delete indexes_.load(); }

void TemporalGraph::Indexes::point_at_stores() noexcept {
  node_offsets = node_offsets_store;
  node_contacts = node_contacts_store;
  neighbor_offsets = neighbor_offsets_store;
  neighbors_by_end = neighbors_by_end_store;
}

const TemporalGraph::Indexes& TemporalGraph::indexes() const {
  // Double-checked build: the acquire load pairs with the release store
  // so readers that see the pointer also see the built arrays.
  const Indexes* ix = indexes_.load(std::memory_order_acquire);
  if (ix == nullptr) {
    const std::lock_guard<std::mutex> lock(index_mutex_);
    ix = indexes_.load(std::memory_order_relaxed);
    if (ix == nullptr) {
      auto* built = new Indexes(build_indexes());
      built->point_at_stores();
      indexes_.store(built, std::memory_order_release);
      ix = built;
    }
  }
  return *ix;
}

TemporalGraph::Indexes TemporalGraph::build_indexes() const {
  Indexes ix;
  // Per-node contact index (counting sort by node).
  ix.node_offsets_store.assign(num_nodes_ + 1, 0);
  for (const Contact& c : contacts_view_) {
    ++ix.node_offsets_store[c.u + 1];
    ++ix.node_offsets_store[c.v + 1];
  }
  for (std::size_t i = 1; i < ix.node_offsets_store.size(); ++i)
    ix.node_offsets_store[i] += ix.node_offsets_store[i - 1];
  ix.node_contacts_store.resize(2 * contacts_view_.size());

  // Secondary index: each node's outgoing contact windows, materialized
  // as flat {begin, end, peer} records and re-sorted by end time, so
  // propagation engines scan sequential memory and can binary-search
  // "first window ending at or after t". Undirected graphs index both
  // endpoints per contact, so the counts equal the node index's.
  if (directed_) {
    ix.neighbor_offsets_store.assign(num_nodes_ + 1, 0);
    for (const Contact& c : contacts_view_)
      ++ix.neighbor_offsets_store[c.u + 1];
    for (std::size_t i = 1; i < ix.neighbor_offsets_store.size(); ++i)
      ix.neighbor_offsets_store[i] += ix.neighbor_offsets_store[i - 1];
  } else {
    ix.neighbor_offsets_store = ix.node_offsets_store;
  }
  ix.neighbors_by_end_store.resize(ix.neighbor_offsets_store.back());

  std::vector<std::uint32_t> cursor(ix.node_offsets_store.begin(),
                                    ix.node_offsets_store.end() - 1);
  std::vector<std::uint32_t> ncursor(ix.neighbor_offsets_store.begin(),
                                     ix.neighbor_offsets_store.end() - 1);
  for (std::uint32_t idx = 0; idx < contacts_view_.size(); ++idx) {
    const Contact& c = contacts_view_[idx];
    ix.node_contacts_store[cursor[c.u]++] = idx;
    ix.node_contacts_store[cursor[c.v]++] = idx;
    ix.neighbors_by_end_store[ncursor[c.u]++] = {c.begin, c.end, c.v};
    if (!directed_)
      ix.neighbors_by_end_store[ncursor[c.v]++] = {c.begin, c.end, c.u};
  }
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    std::sort(
        ix.neighbors_by_end_store.begin() + ix.neighbor_offsets_store[n],
        ix.neighbors_by_end_store.begin() + ix.neighbor_offsets_store[n + 1],
        [](const NodeContact& a, const NodeContact& b) {
          if (a.end != b.end) return a.end < b.end;
          if (a.begin != b.begin) return a.begin < b.begin;
          return a.to < b.to;
        });
  }
  return ix;
}

double TemporalGraph::contact_rate(double unit) const noexcept {
  if (num_nodes_ == 0 || duration() <= 0.0) return 0.0;
  // Each contact is logged by both endpoints (undirected) or by the
  // observer only (directed).
  const double logs = static_cast<double>(contacts_view_.size()) *
                      (directed_ ? 1.0 : 2.0);
  return logs / static_cast<double>(num_nodes_) / (duration() / unit);
}

std::span<const std::uint32_t> TemporalGraph::contacts_of(NodeId node) const {
  if (node >= num_nodes_)
    throw std::out_of_range("TemporalGraph::contacts_of: bad node");
  const Indexes& ix = indexes();
  return ix.node_contacts.subspan(
      ix.node_offsets[node], ix.node_offsets[node + 1] - ix.node_offsets[node]);
}

std::span<const NodeContact> TemporalGraph::neighbors_by_end(
    NodeId node) const {
  if (node >= num_nodes_)
    throw std::out_of_range("TemporalGraph::neighbors_by_end: bad node");
  const Indexes& ix = indexes();
  return ix.neighbors_by_end.subspan(
      ix.neighbor_offsets[node],
      ix.neighbor_offsets[node + 1] - ix.neighbor_offsets[node]);
}

std::span<const std::uint32_t> TemporalGraph::node_offsets() const {
  return indexes().node_offsets;
}

std::span<const std::uint32_t> TemporalGraph::node_contact_indices() const {
  return indexes().node_contacts;
}

std::span<const std::uint32_t> TemporalGraph::neighbor_offsets() const {
  return indexes().neighbor_offsets;
}

std::span<const NodeContact> TemporalGraph::neighbor_records() const {
  return indexes().neighbors_by_end;
}

std::vector<double> TemporalGraph::contact_durations() const {
  std::vector<double> out;
  out.reserve(contacts_view_.size());
  for (const Contact& c : contacts_view_) out.push_back(c.duration());
  return out;
}

double TemporalGraph::next_contact_time(NodeId node, double t) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t idx : contacts_of(node)) {
    const Contact& c = contacts_view_[idx];
    if (directed_ && c.u != node) continue;  // only outgoing visibility
    if (c.end < t) continue;
    best = std::min(best, std::max(c.begin, t));
    if (best == t) break;  // cannot do better than "in contact now"
  }
  return best;
}

std::size_t TemporalGraph::num_connected_pairs() const {
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (const Contact& c : contacts_view_) {
    if (directed_) {
      pairs.emplace(c.u, c.v);
    } else {
      pairs.emplace(std::min(c.u, c.v), std::max(c.u, c.v));
    }
  }
  return pairs.size();
}

}  // namespace odtn
