#include "core/temporal_graph.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

namespace odtn {

TemporalGraph::TemporalGraph(std::size_t num_nodes,
                             std::vector<Contact> contacts, bool directed)
    : num_nodes_(num_nodes),
      directed_(directed),
      contacts_(std::move(contacts)) {
  for (const Contact& c : contacts_) {
    if (!is_valid_contact(c))
      throw std::invalid_argument("TemporalGraph: malformed contact");
    if (c.u >= num_nodes_ || c.v >= num_nodes_)
      throw std::invalid_argument("TemporalGraph: contact node out of range");
  }
  std::sort(contacts_.begin(), contacts_.end(), contact_less);

  if (!contacts_.empty()) {
    // Seed from the first contact, NOT from 0.0: a trace whose timestamps
    // are all negative (e.g. epoch-shifted imports) must not report a
    // spurious end_time of 0.
    start_ = contacts_.front().begin;
    end_ = contacts_.front().end;
    for (const Contact& c : contacts_) end_ = std::max(end_, c.end);
  }

  // Build the per-node contact index (counting sort by node).
  node_offsets_.assign(num_nodes_ + 1, 0);
  for (const Contact& c : contacts_) {
    ++node_offsets_[c.u + 1];
    ++node_offsets_[c.v + 1];
  }
  for (std::size_t i = 1; i < node_offsets_.size(); ++i)
    node_offsets_[i] += node_offsets_[i - 1];
  node_contacts_.resize(2 * contacts_.size());
  std::vector<std::uint32_t> cursor(node_offsets_.begin(),
                                    node_offsets_.end() - 1);
  for (std::uint32_t idx = 0; idx < contacts_.size(); ++idx) {
    node_contacts_[cursor[contacts_[idx].u]++] = idx;
    node_contacts_[cursor[contacts_[idx].v]++] = idx;
  }
  // Secondary index: each node's outgoing contact windows, materialized
  // as flat {begin, end, peer} records and re-sorted by end time, so
  // propagation engines scan sequential memory and can binary-search
  // "first window ending at or after t".
  neighbor_offsets_.assign(num_nodes_ + 1, 0);
  for (const Contact& c : contacts_) {
    ++neighbor_offsets_[c.u + 1];
    if (!directed_) ++neighbor_offsets_[c.v + 1];
  }
  for (std::size_t i = 1; i < neighbor_offsets_.size(); ++i)
    neighbor_offsets_[i] += neighbor_offsets_[i - 1];
  neighbors_by_end_.resize(neighbor_offsets_.back());
  cursor.assign(neighbor_offsets_.begin(), neighbor_offsets_.end() - 1);
  for (const Contact& c : contacts_) {
    neighbors_by_end_[cursor[c.u]++] = {c.begin, c.end, c.v};
    if (!directed_) neighbors_by_end_[cursor[c.v]++] = {c.begin, c.end, c.u};
  }
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    std::sort(neighbors_by_end_.begin() + neighbor_offsets_[n],
              neighbors_by_end_.begin() + neighbor_offsets_[n + 1],
              [](const NodeContact& a, const NodeContact& b) {
                if (a.end != b.end) return a.end < b.end;
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.to < b.to;
              });
  }
}

double TemporalGraph::contact_rate(double unit) const noexcept {
  if (num_nodes_ == 0 || duration() <= 0.0) return 0.0;
  // Each contact is logged by both endpoints (undirected) or by the
  // observer only (directed).
  const double logs = static_cast<double>(contacts_.size()) *
                      (directed_ ? 1.0 : 2.0);
  return logs / static_cast<double>(num_nodes_) / (duration() / unit);
}

std::span<const std::uint32_t> TemporalGraph::contacts_of(NodeId node) const {
  if (node >= num_nodes_)
    throw std::out_of_range("TemporalGraph::contacts_of: bad node");
  return {node_contacts_.data() + node_offsets_[node],
          node_contacts_.data() + node_offsets_[node + 1]};
}

std::span<const NodeContact> TemporalGraph::neighbors_by_end(
    NodeId node) const {
  if (node >= num_nodes_)
    throw std::out_of_range("TemporalGraph::neighbors_by_end: bad node");
  return {neighbors_by_end_.data() + neighbor_offsets_[node],
          neighbors_by_end_.data() + neighbor_offsets_[node + 1]};
}

std::vector<double> TemporalGraph::contact_durations() const {
  std::vector<double> out;
  out.reserve(contacts_.size());
  for (const Contact& c : contacts_) out.push_back(c.duration());
  return out;
}

double TemporalGraph::next_contact_time(NodeId node, double t) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t idx : contacts_of(node)) {
    const Contact& c = contacts_[idx];
    if (directed_ && c.u != node) continue;  // only outgoing visibility
    if (c.end < t) continue;
    best = std::min(best, std::max(c.begin, t));
    if (best == t) break;  // cannot do better than "in contact now"
  }
  return best;
}

std::size_t TemporalGraph::num_connected_pairs() const {
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (const Contact& c : contacts_) {
    if (directed_) {
      pairs.emplace(c.u, c.v);
    } else {
      pairs.emplace(std::min(c.u, c.v), std::max(c.u, c.v));
    }
  }
  return pairs.size();
}

}  // namespace odtn
