// Per-source delay-CDF processing, shared by the unsharded and sharded
// all-pairs drivers (core/diameter.cpp and core/sharded_engine.cpp).
//
// One source's contribution to the all-pairs CDFs is integrated into a
// private zeroed SourceCdfPartial, and partials are folded into the
// running total in CANONICAL order: ascending endpoint index, one left
// chain. Floating-point addition is not associative, so this fold order
// -- not the execution order -- is the contract that makes results
// bit-identical across thread counts, shard counts and partition
// policies: however the sources were distributed, the same per-source
// doubles are merged in the same sequence. Per-source partials
// themselves are bitwise reproducible anywhere because every shard or
// worker runs the identical deterministic DP over a byte-identical
// contact array.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/batched_engine.hpp"
#include "core/diameter.hpp"
#include "core/optimal_paths.hpp"
#include "core/temporal_graph.hpp"
#include "stats/measure_cdf.hpp"

namespace odtn {

/// Disjoint increasing start-time windows (resolved form of
/// DelayCdfOptions::{windows, t_lo, t_hi}).
using TimeWindows = std::vector<std::pair<double, double>>;

/// Resolves the options' start-time windows against the graph span.
/// Throws std::invalid_argument on overlapping/decreasing windows or an
/// empty [t_lo, t_hi].
TimeWindows resolve_cdf_windows(const TemporalGraph& graph,
                                const DelayCdfOptions& options);

/// Total Lebesgue measure of the window union.
double total_window_measure(const TimeWindows& windows);

/// Resolves the options' endpoint set (empty = every node) and validates
/// ids against the graph.
std::vector<NodeId> resolve_cdf_endpoints(const TemporalGraph& graph,
                                          const DelayCdfOptions& options);

/// Whether the options select the incremental accumulation scheme.
/// Throws std::invalid_argument for kIncremental with the level-sweep
/// engine (which has no change tracking).
bool use_incremental_accumulation(const DelayCdfOptions& options);

/// One source's contribution to the all-pairs accumulators: one
/// accumulator per hop budget plus the past-max_hops residual. Under the
/// incremental scheme by_hops[k-1] holds only the level-k delta (the
/// driver prefix-merges once after the fold); under the direct scheme it
/// holds the source's full hop-k integration.
struct SourceCdfPartial {
  std::vector<MeasureCdfAccumulator> by_hops;
  MeasureCdfAccumulator unbounded;
  int fixpoint_hops = 0;
  bool converged = true;

  SourceCdfPartial(const std::vector<double>& grid, int max_hops);

  /// Back to the zeroed state (grid and capacity kept) so one scratch
  /// partial serves many sources.
  void clear();

  /// Left-chain fold step: numerators/denominators add, fixpoint levels
  /// max, convergence ANDs. Adding onto a zeroed partial reproduces the
  /// operand bit-for-bit (0 + x == x exactly).
  void merge_from(const SourceCdfPartial& other);
};

/// Reusable per-worker state: the recycled engine workspace (incremental
/// scheme) and the CDF-side counters. Engine counters are folded in by
/// take_stats() -- additive counters are order-invariant, so worker
/// totals merge into the same aggregate regardless of how sources were
/// distributed.
struct SourceCdfWorker {
  std::optional<SingleSourceEngine> engine;
  EngineStats stats;

  /// Worker counters plus the recycled engine's counters (if any).
  EngineStats take_stats() const;
};

/// Integrates one source into `out` (which must be zeroed/cleared).
/// `is_endpoint` is a num_nodes-sized membership mask of `endpoints`
/// (used by the incremental scheme's change filter). The direct scheme
/// runs a fresh engine per source (reference semantics); the incremental
/// scheme recycles worker.engine across calls.
void process_source(const TemporalGraph& graph, NodeId src,
                    const std::vector<NodeId>& endpoints,
                    const std::vector<std::uint8_t>& is_endpoint,
                    const TimeWindows& w, int max_hops, int max_levels,
                    EngineMode mode, bool incremental,
                    SourceCdfWorker& worker, SourceCdfPartial& out);

/// Per-worker state of the batched driver: one recycled multi-source
/// block engine (core/batched_engine.hpp) plus the CDF-side counters.
struct BatchedCdfWorker {
  std::optional<BatchedSourceEngine> engine;
  EngineStats stats;

  /// Worker counters plus the recycled engine's counters (if any).
  EngineStats take_stats() const;
};

/// Integrates a block of sources through one lockstep BatchedSourceEngine:
/// outs[j] (which must be zeroed/cleared, outs.size() >= block.size())
/// receives block[j]'s partial, BITWISE identical to what process_source
/// produces for that source under the pooled engine with incremental
/// accumulation -- the block path shares the per-destination delta
/// integration code with the per-source path, and the engine reproduces
/// each lane's change lists and frontier bytes exactly.
void process_source_block(const TemporalGraph& graph,
                          std::span<const NodeId> block,
                          const std::vector<NodeId>& endpoints,
                          const std::vector<std::uint8_t>& is_endpoint,
                          const TimeWindows& w, int max_hops, int max_levels,
                          BatchedCdfWorker& worker,
                          std::vector<SourceCdfPartial>& outs);

/// Thread-safe canonical-order folder: submit(i, partial) merges the
/// partials into one total in ascending index order no matter the
/// arrival order (out-of-order arrivals are buffered by copy until the
/// gap fills -- rare under the dynamic hand-out, impossible with one
/// worker). After every index in [0, count) was submitted exactly once,
/// total() is the left-chain fold.
class OrderedCdfFolder {
 public:
  OrderedCdfFolder(const std::vector<double>& grid, int max_hops,
                   std::size_t count);

  void submit(std::size_t index, const SourceCdfPartial& partial);

  /// The folded total; only meaningful once all `count` submissions
  /// happened (throws std::logic_error otherwise).
  SourceCdfPartial& total();

 private:
  SourceCdfPartial total_;
  std::size_t count_;
  std::mutex mutex_;
  std::size_t next_ = 0;
  std::map<std::size_t, SourceCdfPartial> pending_;
};

/// Shared finalization of both all-pairs drivers: prefix-merges the
/// incremental deltas, evaluates the per-hop CDFs, clamps the hop
/// monotonicity invariant, and fills the result scalars. `total` is
/// consumed (its accumulators are prefix-merged in place).
DelayCdfResult finalize_delay_cdf(SourceCdfPartial& total,
                                  const EngineStats& stats,
                                  const DelayCdfOptions& options,
                                  bool incremental);

}  // namespace odtn
