#include "core/incremental_engine.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/batched_engine.hpp"
#include "core/optimal_paths.hpp"
#include "util/thread_pool.hpp"

namespace odtn {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The level-0 seed of every source: departs arbitrarily late, arrived
/// before any contact (same literal the engines use).
PathPair identity_pair() { return {kInf, -kInf}; }

bool frontier_equals(const DeliveryFunction& f, const FrontierView& v) {
  if (f.size() != v.size()) return false;
  const std::vector<PathPair>& p = f.pairs();
  for (std::size_t i = 0; i < p.size(); ++i)
    if (p[i].ld != v.ld(i) || p[i].ea != v.ea(i)) return false;
  return true;
}

/// Pairs of `f` absent from `old_view` (both sorted with strictly
/// increasing ld, at most one pair per ld), appended to `out`.
void frontier_diff(const DeliveryFunction& f, const FrontierView& old_view,
                   std::vector<PathPair>& out) {
  out.clear();
  const std::vector<PathPair>& p = f.pairs();
  std::size_t i = 0, j = 0;
  while (i < p.size()) {
    if (j == old_view.size() || p[i].ld < old_view.ld(j)) {
      out.push_back(p[i++]);
    } else if (old_view.ld(j) < p[i].ld) {
      ++j;
    } else {
      if (p[i].ea != old_view.ea(j)) out.push_back(p[i]);
      ++i;
      ++j;
    }
  }
}

/// True iff some pair of `v` dominates `p` (ld >= p.ld with ea <= p.ea).
/// Among pairs with ld >= p.ld the first has the minimal ea, so it is
/// the only candidate to check -- DeliveryFunction::is_dominated over a
/// view.
bool view_dominates(const FrontierView& v, const PathPair& p) {
  std::size_t lo = 0, hi = v.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (v.ld(mid) < p.ld)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo < v.size() && v.ea(lo) <= p.ea;
}

}  // namespace

IncrementalSourceDp::IncrementalSourceDp(NodeId source, std::size_t num_nodes,
                                         int level_cap)
    : source_(source), num_nodes_(num_nodes), cap_(level_cap) {
  if (source >= num_nodes)
    throw std::invalid_argument("IncrementalSourceDp: source out of range");
  if (level_cap < 1)
    throw std::invalid_argument("IncrementalSourceDp: level cap must be >= 1");
  nodes_.resize(num_nodes_);
  scratch_.resize(num_nodes_);
  Version seed;
  seed.level = 0;
  seed.ld.push_back(identity_pair().ld);
  seed.ea.push_back(identity_pair().ea);
  nodes_[source_].versions.push_back(std::move(seed));
}

FrontierView IncrementalSourceDp::lookup(const std::vector<Version>& versions,
                                         int level) const {
  // Latest version at or below `level`; nodes are only versioned at the
  // levels where their frontier actually changed. Version lists reach
  // tens of entries on deep traces and this runs per candidate offer, so
  // binary search instead of a walk.
  const auto it = std::upper_bound(
      versions.begin(), versions.end(), level,
      [](int l, const Version& v) { return l < v.level; });
  if (it == versions.begin()) return FrontierView();
  const Version& best = *(it - 1);
  return FrontierView(best.ld.data(), best.ea.data(), best.ld.size());
}

FrontierView IncrementalSourceDp::frontier_at(NodeId node, int level) const {
  return lookup(nodes_[node].versions, std::min(level, cap_));
}

FrontierView IncrementalSourceDp::lookup_original(NodeId node,
                                                  int level) const {
  const std::vector<Version>& vs = nodes_[node].versions;
  const std::span<const SavedVersion> saved(scratch_[node].saved.data(),
                                            scratch_[node].saved_count);
  // Backward merge over the live list and the copy-on-write overlay,
  // both ascending in level: at a level this epoch modified, the
  // pre-epoch state is the stash (possibly "absent"); elsewhere it is
  // the live entry untouched. Starting from the binary-searched tails,
  // the walk only continues past tombstoned levels, so the per-offer
  // cost stays logarithmic.
  std::ptrdiff_t i =
      std::upper_bound(vs.begin(), vs.end(), level,
                       [](int l, const Version& v) { return l < v.level; }) -
      vs.begin() - 1;
  std::ptrdiff_t j =
      std::upper_bound(
          saved.begin(), saved.end(), level,
          [](int l, const SavedVersion& s) { return l < s.level; }) -
      saved.begin() - 1;
  while (i >= 0 || j >= 0) {
    const int lv = i >= 0 ? vs[static_cast<std::size_t>(i)].level : -1;
    const int ls = j >= 0 ? saved[static_cast<std::size_t>(j)].level : -1;
    if (lv > ls) {
      // No stash covers (ls, level], so the live entry is pre-epoch.
      const Version& best = vs[static_cast<std::size_t>(i)];
      return FrontierView(best.ld.data(), best.ea.data(), best.ld.size());
    }
    const SavedVersion& s = saved[static_cast<std::size_t>(j)];
    if (s.existed)
      return FrontierView(s.version.ld.data(), s.version.ea.data(),
                          s.version.ld.size());
    // Tombstone: the level had no version pre-epoch; skip it entirely.
    if (lv == ls) --i;
    --j;
  }
  return FrontierView();
}

DeliveryFunction& IncrementalSourceDp::ensure_working(NodeId node, int level) {
  Scratch& s = scratch_[node];
  if (!s.active) {
    // Base = L'_{level-1} (the list is already updated through level-1),
    // then the pre-epoch L_level: together with the candidate extensions
    // their Pareto merge is exactly L'_level. The base is a canonical
    // frontier already, so it seeds the scratch with a plain copy.
    s.working.assign_canonical(lookup(nodes_[node].versions, level - 1));
    const FrontierView old_k = lookup_original(node, level);
    for (std::size_t i = 0; i < old_k.size(); ++i)
      s.working.insert(old_k.pair(i));
    s.active = true;
    level_active_.push_back(node);
  }
  return s.working;
}

void IncrementalSourceDp::stash(NodeId node, int level, Version* old_entry) {
  Scratch& s = scratch_[node];
  if (!s.touched) {
    s.touched = true;
    touched_.push_back(node);
  }
  // Swap rather than move: the displaced live entry inherits the slot's
  // recycled buffers, so the write_version refill that follows reuses
  // their capacity instead of allocating -- stashing stays malloc-free
  // once every slot warmed up.
  if (s.saved_count == s.saved.size()) s.saved.emplace_back();
  SavedVersion& sv = s.saved[s.saved_count++];
  sv.level = level;
  sv.existed = old_entry != nullptr;
  sv.version.ld.clear();
  sv.version.ea.clear();
  if (old_entry) {
    sv.version.level = old_entry->level;
    sv.version.ld.swap(old_entry->ld);
    sv.version.ea.swap(old_entry->ea);
  }
}

void IncrementalSourceDp::write_version(NodeId node, int level,
                                        const DeliveryFunction& f) {
  std::vector<Version>& vs = nodes_[node].versions;
  auto it = std::lower_bound(
      vs.begin(), vs.end(), level,
      [](const Version& v, int l) { return v.level < l; });
  if (it == vs.end() || it->level != level) {
    stash(node, level, nullptr);
    it = vs.insert(it, Version{});
  } else {
    stash(node, level, &*it);  // moves the old lanes into the overlay
  }
  it->level = level;
  it->ld.clear();
  it->ea.clear();
  it->ld.reserve(f.size());
  it->ea.reserve(f.size());
  for (const PathPair& p : f.pairs()) {
    it->ld.push_back(p.ld);
    it->ea.push_back(p.ea);
  }
  if (level > max_level_) max_level_ = level;
}

void IncrementalSourceDp::erase_exact_version(NodeId node, int level) {
  std::vector<Version>& vs = nodes_[node].versions;
  auto it = std::lower_bound(
      vs.begin(), vs.end(), level,
      [](const Version& v, int l) { return v.level < l; });
  if (it != vs.end() && it->level == level) {
    stash(node, level, &*it);
    vs.erase(it);
  }
}

void IncrementalSourceDp::bootstrap(const TemporalGraph& graph) {
  SingleSourceEngine eng(graph, source_, EngineMode::kPooled);
  int k = 0;
  while (k < cap_ && eng.step()) {
    ++k;
    // last_changed() lists exactly the nodes whose frontier grew at this
    // level -- the version-iff-productive invariant, straight from the
    // engine. Levels ascend, so each node's list stays sorted by plain
    // appends.
    for (const NodeId d : eng.last_changed())
      append_bootstrap_version(d, k, eng.frontier_view(d));
  }
}

void IncrementalSourceDp::append_bootstrap_version(NodeId node, int level,
                                                   const FrontierView& f) {
  Version v;
  v.level = level;
  v.ld.reserve(f.size());
  v.ea.reserve(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    v.ld.push_back(f.ld(i));
    v.ea.push_back(f.ea(i));
  }
  nodes_[node].versions.push_back(std::move(v));
  if (level > max_level_) max_level_ = level;
}

bool IncrementalSourceDp::apply(const TemporalGraph& graph,
                                std::size_t old_count) {
  const std::span<const Contact> all = graph.contacts();
  const std::span<const Contact> batch = all.subspan(old_count);
  if (batch.empty()) return false;
  const bool directed = graph.directed();
  bool changed = false;

  for (NodeId d : touched_) {
    scratch_[d].touched = false;
    scratch_[d].saved_count = 0;
    scratch_[d].delta.clear();
    scratch_[d].next_delta.clear();
  }
  touched_.clear();
  delta_active_.clear();

  // Routes one candidate into `to`'s level-k working frontier, but only
  // materializes the scratch once a candidate actually survives: a pair
  // dominated by the base L'_{k-1} or by the pre-epoch L_k is dominated
  // by their Pareto merge too, so it cannot change the node's level-k
  // value. Nodes whose own level-(k-1) value changed still materialize
  // unconditionally (the delta carryover below); every other node has
  // L'_{k-1} == old L_{k-1}, whose merge with old L_k is old L_k itself,
  // so skipping the write-back leaves its version list exact.
  const auto offer_to = [&](NodeId to, int k, PathPair cand) {
    Scratch& s = scratch_[to];
    if (!s.active &&
        (view_dominates(lookup(nodes_[to].versions, k - 1), cand) ||
         view_dominates(lookup_original(to, k), cand)))
      return;
    ensure_working(to, k).insert(cand);
  };

  // Extends L'_{k-1}(u) through one new contact window into `to`'s
  // working frontier, fired only when u's frontier changed at exactly
  // level k-1 (earlier versions already propagated through this window
  // at their own level + 1; see the quiescence argument in DESIGN.md §9).
  const auto fire_new_contact = [&](NodeId u, NodeId to, const Contact& c,
                                    int k) {
    const std::vector<Version>& vs = nodes_[u].versions;
    const auto it = std::lower_bound(
        vs.begin(), vs.end(), k - 1,
        [](const Version& v, int l) { return v.level < l; });
    if (it == vs.end() || it->level != k - 1) return;
    for_each_frontier_extension(
        FrontierView(it->ld.data(), it->ea.data(), it->ld.size()), c.begin,
        c.end, [&](PathPair cand) { offer_to(to, k, cand); });
  };

  for (int k = 1; k <= cap_; ++k) {
    // Two candidate feeds keep the level alive: pending deltas, and new
    // contacts touching any node versioned at exactly k-1 (bounded by
    // the deepest version, so the loop stops one past the last
    // productive level instead of sweeping to the cap).
    if (delta_active_.empty() && k > max_level_ + 1) break;
    level_active_.clear();

    for (NodeId u : delta_active_) {
      Scratch& su = scratch_[u];
      const std::vector<PathPair>& dp = su.delta;
      // Per delta pair, the ea of its successor in u's full L'_{k-1}
      // frontier (deltas are a subsequence of it; both ea-sorted, one
      // merge walk finds every successor). A window whose begin reaches
      // at or past that successor draws its wait candidate from the
      // successor chain -- pairs with larger ld whose extensions were
      // already absorbed the level after they entered, this epoch or an
      // earlier one -- so the delta's wait candidate is provably
      // dominated and is not offered at all (the engines' wait-candidate
      // suppression, carried across epochs by the same quiescence
      // argument fire_new_contact relies on).
      const FrontierView fp = lookup(nodes_[u].versions, k - 1);
      succ_ea_.resize(dp.size());
      for (std::size_t j = 0, pos = 0; j < dp.size(); ++j) {
        while (fp.ea(pos) < dp[j].ea) ++pos;
        succ_ea_[j] = pos + 1 < fp.size() ? fp.ea(pos + 1) : kInf;
      }
      // The first delta pair's ea is the earliest arrival; windows
      // ending before it are unusable, the same by-end skip the delta
      // engines make.
      const double min_ea = dp.front().ea;
      const std::span<const NodeContact> nbrs = graph.neighbors_by_end(u);
      auto it = std::lower_bound(
          nbrs.begin(), nbrs.end(), min_ea,
          [](const NodeContact& w, double t) { return w.end < t; });
      for (; it != nbrs.end(); ++it) {
        const NodeId to = it->to;
        const double wb = it->begin, we = it->end;
        // Same extension cases as for_each_frontier_extension, with a
        // linear scan (deltas hold a handful of pairs) and the wait
        // suppression above.
        std::size_t i = 0;
        while (i < dp.size() && dp[i].ea <= wb) ++i;
        if (i > 0 && wb < succ_ea_[i - 1])
          offer_to(to, k, {std::min(dp[i - 1].ld, we), wb});
        for (; i < dp.size() && dp[i].ea <= we; ++i) {
          offer_to(to, k, {std::min(dp[i].ld, we), dp[i].ea});
          if (dp[i].ld >= we) break;
        }
      }
      // The node's own carryover: even with no inbound candidates its
      // level-k value must absorb D_{k-1} (and re-diff against old L_k).
      ensure_working(u, k);
    }

    for (const Contact& c : batch) {
      fire_new_contact(c.u, c.v, c, k);
      if (!directed) fire_new_contact(c.v, c.u, c, k);
    }

    next_delta_active_.clear();
    for (NodeId d : level_active_) {
      Scratch& s = scratch_[d];
      const DeliveryFunction& f = s.working;
      // Version-iff-productive invariant: a version at k exists exactly
      // when L'_k != L'_{k-1}.
      if (!frontier_equals(f, lookup(nodes_[d].versions, k - 1)))
        write_version(d, k, f);
      else
        erase_exact_version(d, k);
      const FrontierView old_k = lookup_original(d, k);
      if (!frontier_equals(f, old_k)) changed = true;
      frontier_diff(f, old_k, s.next_delta);
      if (!s.next_delta.empty()) next_delta_active_.push_back(d);
      s.active = false;
    }
    for (NodeId u : delta_active_) scratch_[u].delta.clear();
    for (NodeId d : next_delta_active_) {
      scratch_[d].delta.swap(scratch_[d].next_delta);
      scratch_[d].next_delta.clear();
    }
    delta_active_.swap(next_delta_active_);
  }

  // Deletions can lower the deepest productive level (a new direct
  // contact may dominate away the only level-k change); recompute it
  // exactly so the reported fixpoint matches a cold run.
  max_level_ = 0;
  for (const NodeState& n : nodes_)
    if (!n.versions.empty() && n.versions.back().level > max_level_)
      max_level_ = n.versions.back().level;
  return changed;
}

IncrementalAllPairsEngine::IncrementalAllPairsEngine(
    std::size_t num_nodes, bool directed, IncrementalCdfOptions options)
    : graph_(num_nodes, {}, directed), options_(std::move(options)) {
  if (options_.grid.empty())
    throw std::invalid_argument("IncrementalAllPairsEngine: empty delay grid");
  if (options_.max_hops < 1)
    throw std::invalid_argument(
        "IncrementalAllPairsEngine: max_hops must be >= 1");
  if (options_.source_batch < 1)
    throw std::invalid_argument(
        "IncrementalAllPairsEngine: source_batch must be >= 1");
  cap_ = std::max(options_.max_hops, options_.max_levels);
  dps_.reserve(num_nodes);
  partials_.reserve(num_nodes);
  for (NodeId s = 0; s < num_nodes; ++s) {
    dps_.emplace_back(s, num_nodes, cap_);
    partials_.emplace_back(options_.grid, options_.max_hops);
  }
  dirty_.assign(num_nodes, 1);
}

double IncrementalAllPairsEngine::watermark() const noexcept {
  const std::span<const Contact> c = graph_.contacts();
  return c.empty() ? -std::numeric_limits<double>::infinity()
                   : c.back().begin;
}

std::uint64_t IncrementalAllPairsEngine::append(
    std::span<const Contact> batch) {
  if (batch.empty()) return graph_.epoch();
  const std::size_t old_count = graph_.num_contacts();
  graph_.append_contacts(batch);

  std::optional<ThreadPool> local_pool;
  if (options_.num_threads != 0) local_pool.emplace(options_.num_threads);
  ThreadPool& pool = local_pool ? *local_pool : shared_thread_pool();
  // Build (or grow) the indexes before fanning out, so the workers only
  // read them: append_contacts already merged the new windows in if they
  // existed, and this materializes them on the very first epoch.
  graph_.neighbor_offsets();

  // First (bulk) batch with batching enabled: seed blocks of consecutive
  // DPs from one lockstep multi-source engine. Each lane's per-level
  // change sets and frontiers are bit-identical to a cold per-source
  // run, so the seeded version lists are too.
  const std::size_t lanes = std::min<std::size_t>(
      static_cast<std::size_t>(options_.source_batch),
      std::max<std::size_t>(dps_.size(), 1));
  if (old_count == 0 && lanes > 1) {
    const std::size_t num_blocks = (dps_.size() + lanes - 1) / lanes;
    pool.parallel_for(num_blocks, [&](std::size_t b, unsigned) {
      const std::size_t lo = b * lanes;
      const std::size_t width = std::min(lanes, dps_.size() - lo);
      std::vector<NodeId> block(width);
      for (std::size_t j = 0; j < width; ++j) block[j] = dps_[lo + j].source();
      BatchedSourceEngine eng(graph_, block);
      int k = 0;
      while (k < cap_ && eng.step()) {
        ++k;
        // Lanes at their fixpoint publish empty change sets, so this
        // feeds each DP exactly its own productive levels.
        for (std::size_t l = 0; l < width; ++l) {
          for (const NodeId d : eng.last_changed(l))
            dps_[lo + l].append_bootstrap_version(d, k,
                                                  eng.frontier_view(l, d));
        }
      }
      for (std::size_t j = 0; j < width; ++j) dirty_[lo + j] = 1;
    });
    return graph_.epoch();
  }

  pool.parallel_for(dps_.size(), [&](std::size_t i, unsigned) {
    if (old_count == 0) {
      // First (bulk) batch: seed each DP from a cold pooled run instead
      // of replaying the epoch machinery -- same frontiers, batch cost.
      dps_[i].bootstrap(graph_);
      dirty_[i] = 1;
    } else if (dps_[i].apply(graph_, old_count)) {
      dirty_[i] = 1;
    }
  });
  return graph_.epoch();
}

DelayCdfOptions IncrementalAllPairsEngine::cdf_options() const {
  DelayCdfOptions o;
  o.grid = options_.grid;
  o.max_hops = options_.max_hops;
  o.max_levels = options_.max_levels;
  o.t_lo = options_.t_lo;
  o.t_hi = options_.t_hi;
  o.num_threads = options_.num_threads;
  o.accumulation = CdfAccumulation::kDirect;
  return o;
}

void IncrementalAllPairsEngine::integrate_source(
    NodeId src, const TimeWindows& w, SourceCdfPartial& out,
    std::uint64_t* pairs_integrated) const {
  // Byte-for-byte replay of process_source's direct scheme, reading the
  // frontier history instead of stepping an engine: same per-window
  // accumulate calls on the same SoA lanes in the same order.
  out.clear();
  const IncrementalSourceDp& dp = dps_[src];
  const double window_measure = total_window_measure(w);
  const NodeId n = static_cast<NodeId>(graph_.num_nodes());
  const auto accumulate = [&](MeasureCdfAccumulator& acc, NodeId dst,
                              int level) {
    const FrontierView f = dp.frontier_at(dst, level);
    for (const auto& [lo, hi] : w) f.accumulate_delay_measure(acc, lo, hi);
    *pairs_integrated += f.size();
    acc.add_observation_measure(window_measure);
  };
  // Levels past the source's deepest productive one read the fixpoint
  // frontier for EVERY destination, so the direct scheme would feed them
  // the exact addend sequence of level `last` -- integrate the productive
  // prefix once and copy that accumulator into the remaining hop budgets
  // (and, when the source converged within the budgets, the unbounded
  // lane). Bit-identical to the full replay at a fraction of the cost.
  const int deepest = std::max(dp.max_version_level(), 1);
  const int last = std::min(options_.max_hops, deepest);
  for (int k = 1; k <= last; ++k) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      accumulate(out.by_hops[static_cast<std::size_t>(k) - 1], dst, k);
    }
  }
  for (int k = last + 1; k <= options_.max_hops; ++k)
    out.by_hops[static_cast<std::size_t>(k) - 1] =
        out.by_hops[static_cast<std::size_t>(last) - 1];
  // Same fixpoint a cold bounded run reports: the true level when it is
  // observable below the cap, the max_levels+1 "not converged" sentinel
  // otherwise.
  const int fixpoint =
      dp.max_version_level() < cap_ ? dp.max_version_level()
                                    : options_.max_levels + 1;
  if (fixpoint > options_.max_levels) out.converged = false;
  out.fixpoint_hops = std::max(out.fixpoint_hops, fixpoint);
  if (deepest <= last) {
    out.unbounded = out.by_hops[static_cast<std::size_t>(last) - 1];
  } else {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      accumulate(out.unbounded, dst, cap_);
    }
  }
}

DelayCdfResult IncrementalAllPairsEngine::all_pairs() {
  const DelayCdfOptions o = cdf_options();
  const TimeWindows w = resolve_cdf_windows(graph_, o);
  // A NaN window resolves to the growing trace span, which moves every
  // epoch -- then every cached integration is stale. Fixed explicit
  // windows keep clean sources cached across epochs.
  if (!have_windows_ || w != last_windows_) {
    std::fill(dirty_.begin(), dirty_.end(), 1);
    last_windows_ = w;
    have_windows_ = true;
  }

  std::optional<ThreadPool> local_pool;
  if (options_.num_threads != 0) local_pool.emplace(options_.num_threads);
  ThreadPool& pool = local_pool ? *local_pool : shared_thread_pool();

  OrderedCdfFolder folder(options_.grid, options_.max_hops, dps_.size());
  std::vector<std::uint64_t> pairs(pool.num_workers(), 0);
  pool.parallel_for(dps_.size(), [&](std::size_t i, unsigned worker) {
    if (dirty_[i]) {
      integrate_source(static_cast<NodeId>(i), w, partials_[i],
                       &pairs[worker]);
      dirty_[i] = 0;
    }
    folder.submit(i, partials_[i]);
  });

  EngineStats stats;
  for (const std::uint64_t p : pairs) stats.cdf_pairs_integrated += p;
  return finalize_delay_cdf(folder.total(), stats, o, /*incremental=*/false);
}

}  // namespace odtn
