// Network diameter of a temporal network (paper §4.1, §5.3, §6).
//
// For hop budget k and delay budget t, let P_k(t) be the probability that
// a message between a uniformly chosen (source, destination) pair with a
// uniformly chosen start time is delivered within t using at most k hops.
// The (1-eps)-diameter is the least k such that
//     P_k(t) >= (1 - eps) * P_inf(t)   for every t,
// i.e. k hops achieve at least a (1-eps) fraction of flooding's success
// rate under any time constraint. The paper uses eps = 0.01 ("99% of the
// success rate of flooding").
#pragma once

#include <cstddef>
#include <vector>

#include "core/optimal_paths.hpp"
#include "core/partition.hpp"
#include "core/temporal_graph.hpp"

namespace odtn {

/// How compute_delay_cdf turns per-source frontiers into per-hop CDFs.
enum class CdfAccumulation {
  /// kIncremental for the delta engines (kPooled / kIndexed), kDirect
  /// for the level sweep.
  kAuto,
  /// Reference semantics: after each of the max_hops levels (and once
  /// more at the fixpoint), re-integrate EVERY destination's full
  /// delivery function into that hop budget's accumulator, with a fresh
  /// engine per source. O(K * sum |frontier|) integration work.
  kDirect,
  /// Hop-incremental scheme (requires a delta engine, kPooled or
  /// kIndexed): each accumulator k receives only the level-k delta --
  /// for destinations whose frontier changed at level k, the old
  /// frontier's segments are retracted (weight -1) and the new one's
  /// added -- and the per-hop CDFs are reconstructed by one prefix_merge
  /// at finalization. Workers recycle a single engine workspace across
  /// sources via SingleSourceEngine::reset, so steady state allocates
  /// nothing (with kPooled, the pre-change frontiers are free arena
  /// spans rather than copies). O(sum |changed frontier|) integration
  /// work, up to ~K x less.
  kIncremental,
};

/// Options for the all-pairs delay-CDF computation.
struct DelayCdfOptions {
  /// Delay values at which the CDFs are evaluated. Must be positive and
  /// strictly increasing (use make_log_grid for paper-style axes).
  std::vector<double> grid;

  /// CDFs are produced for every hop budget 1..max_hops plus unbounded.
  int max_hops = 12;

  /// Safety cap on DP levels when searching for the fixpoint.
  int max_levels = 64;

  /// Sources/destinations to aggregate over; empty means all nodes.
  /// Relays are always unrestricted (e.g. Hong-Kong paths may traverse
  /// external devices while endpoints are experimental devices only).
  std::vector<NodeId> endpoints;

  /// Start-time window; NaN means the graph's [start_time, end_time].
  double t_lo = std::numeric_limits<double>::quiet_NaN();
  double t_hi = std::numeric_limits<double>::quiet_NaN();

  /// Optional explicit start-time windows (disjoint, increasing). When
  /// non-empty these REPLACE [t_lo, t_hi]: message creation times are
  /// uniform over their union. Used e.g. to study day-time-only traffic
  /// (paper §5.3.1).
  std::vector<std::pair<double, double>> windows;

  /// Worker threads (sources are independent). 0 = hardware concurrency
  /// (the process-wide shared pool). Sources are handed out dynamically,
  /// so heterogeneous per-source cost does not imbalance the workers.
  unsigned num_threads = 0;

  /// Propagation scheme for the per-source engines. kLevelSweep is the
  /// reference (seed) semantics, kept for cross-checks and benches;
  /// kIndexed is the per-pair-insert delta engine, kept as the perf
  /// baseline for kPooled's batched kernels.
  EngineMode engine = EngineMode::kPooled;

  /// Accumulation scheme. kIncremental with the level-sweep engine
  /// throws; both schemes agree within accumulated rounding (~1e-12
  /// observed, tests gate at 1e-9) and are cross-checked in
  /// bench_perf_engine.
  CdfAccumulation accumulation = CdfAccumulation::kAuto;

  /// Opt-in sharded execution (num_shards >= 1 routes through
  /// core/sharded_engine; 0, the default, keeps the classic driver).
  /// Results are bit-identical either way: both drivers fold the same
  /// per-source partials in canonical endpoint-index order.
  ShardingOptions sharding;

  /// Sources per batched block (core/batched_engine.hpp). Values > 1
  /// group that many consecutive sources into one lockstep multi-source
  /// engine that walks the by-end index once per hop level for the whole
  /// block; 1 (the default) keeps the per-source path. Requires the
  /// pooled engine with incremental accumulation (throws otherwise);
  /// must be >= 1. Clamped to the number of sources the executing driver
  /// (or shard) owns. Results are bit-identical at every batch size --
  /// each lane reproduces its per-source partial exactly and the
  /// canonical fold order is unchanged.
  int source_batch = 1;
};

/// All-pairs/all-start-times delay CDFs per hop budget.
struct DelayCdfResult {
  std::vector<double> grid;
  /// cdf_by_hops[k-1][j] = P[delay <= grid[j]] with at most k hops.
  std::vector<std::vector<double>> cdf_by_hops;
  /// P[delay <= grid[j]] with unlimited hops (flooding success rate).
  std::vector<double> cdf_unbounded;
  /// Largest per-source fixpoint level: no delay-optimal path anywhere in
  /// the trace uses more hops than this. Only meaningful when `converged`
  /// is true; otherwise it is max_levels + 1, a LOWER bound on the true
  /// fixpoint level, and diameter() may underestimate.
  int fixpoint_hops = 0;
  /// True iff every source's DP reached its fixpoint within max_levels.
  /// Check this before trusting fixpoint_hops or a diameter() value that
  /// fell through to it.
  bool converged = true;
  /// Engine instrumentation summed over all sources.
  EngineStats stats;
  /// Total observation measure (num ordered pairs * window length).
  double denominator = 0.0;

  /// Sentinel returned by diameter()/diameter_absolute() when the DP was
  /// truncated (`converged == false`) and no evaluated hop budget meets
  /// the criterion: the true diameter is some k > max_hops that the
  /// truncated run cannot name. Callers must not feed it into hop-count
  /// arithmetic; compare against it explicitly (the CLI prints
  /// "undetermined").
  static constexpr int kUnknownDiameter = -1;

  /// The (1-eps)-diameter over the evaluation grid: least k with
  /// cdf_k(t) >= (1-eps) * cdf_inf(t) for every grid point t. This is
  /// the paper's strict relative criterion; at time scales where the
  /// flooding success itself is tiny, it can demand hops whose absolute
  /// contribution is far below plot resolution. When no k <= max_hops
  /// qualifies, falls back to fixpoint_hops (which always qualifies) if
  /// the DP converged, and returns kUnknownDiameter otherwise -- a
  /// truncated fixpoint_hops would silently understate the diameter.
  int diameter(double eps) const;

  /// Plot-resolution diameter: least k whose CDF is within `tol`
  /// ABSOLUTE probability of the flooding CDF at every grid point --
  /// the k at which the curves of Figures 9-11 become visually
  /// indistinguishable from flooding. Same unconverged-fallback contract
  /// as diameter(): kUnknownDiameter when truncated.
  int diameter_absolute(double tol) const;

  /// Diameter as a function of the delay constraint (paper Figure 12):
  /// element j is the least k with cdf_k(grid[j]) >= (1-eps)*cdf_inf(grid[j]),
  /// or 0 when even flooding has zero success at grid[j]. Entries that
  /// fall through to fixpoint_hops are lower bounds when `converged` is
  /// false.
  std::vector<int> diameter_per_delay(double eps) const;
};

/// Computes exact delay CDFs for every hop budget by running the
/// single-source engine from every endpoint and integrating each
/// destination's delivery function over all start times -- either in
/// full at every hop budget (CdfAccumulation::kDirect) or, by default
/// with the indexed engine, incrementally from the engine's per-level
/// change sets (CdfAccumulation::kIncremental).
DelayCdfResult compute_delay_cdf(const TemporalGraph& graph,
                                 const DelayCdfOptions& options);

}  // namespace odtn
