// QueryEngine: the serving-path facade behind `odtn serve`. It owns (or
// borrows) a TemporalGraph -- typically a zero-copy snapshot view
// (trace/snapshot.hpp) -- and answers batched queries through a sharded,
// byte-budgeted LRU result cache (util/lru_cache.hpp).
//
// What is cached, and why the answers stay bit-identical:
//
//   The unit of caching is one source's PRE-FINALIZE SourceCdfPartial --
//   the raw difference-array lanes that compute_delay_cdf's workers
//   produce. All-pairs answers are the canonical ascending-endpoint
//   left-chain fold of those partials (core/source_cdf.hpp), so a run
//   that pulls some partials from cache and computes the rest folds THE
//   SAME DOUBLES IN THE SAME ORDER as a cold run: every CDF value,
//   diameter and denominator is bit-identical, whatever subset hit.
//   Finalization (prefix-merge + evaluation) always happens fresh on the
//   folded total. Only the instrumentation counters differ between warm
//   and cold runs -- a cache hit skips the propagation engine, so
//   contacts_examined et al. count only the computed sources, and the
//   cache_hits / cache_misses / cache_evictions counters say why.
//
// Cache keys bind the partial to everything that determines its bytes:
// the graph's transform key (core/sharded_engine.hpp), the engine mode,
// accumulation scheme, hop budget, the grid's exact bit patterns, the
// resolved start-time windows' bit patterns, and the source id. Engines
// over different graphs can therefore safely SHARE one cache (pass the
// same shared_ptr): keys from different transform chains never collide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/diameter.hpp"
#include "core/journeys.hpp"
#include "core/source_cdf.hpp"
#include "core/temporal_graph.hpp"
#include "util/lru_cache.hpp"

namespace odtn {

/// The serve-path result cache: key = query fingerprint (binary string),
/// value = one source's pre-finalize CDF partial.
using ServeCache = ShardedLruCache<std::string, SourceCdfPartial>;

struct QueryEngineOptions {
  /// Delay grid for CDF queries (positive, strictly increasing). Must be
  /// non-empty; the CLI defaults to make_log_grid over the trace span.
  std::vector<double> grid;
  int max_hops = 10;
  int max_levels = 64;
  EngineMode engine = EngineMode::kPooled;
  CdfAccumulation accumulation = CdfAccumulation::kAuto;
  /// Total cache budget in bytes, split across cache_shards. 0 disables
  /// caching (every query computes cold).
  std::size_t cache_bytes = 256u << 20;
  std::size_t cache_shards = 8;
  /// Worker threads for all-pairs fan-out; 0 = shared pool.
  unsigned num_threads = 0;
  /// Sources per batched block on the cold path (core/batched_engine.hpp):
  /// cache misses within a block of consecutive sources run through one
  /// lockstep multi-source engine. 1 = classic per-source path; > 1
  /// requires the pooled engine with incremental accumulation. Cached
  /// partial bytes are identical either way, so source_batch does NOT
  /// participate in cache keys: warm entries stay valid across batch
  /// size changes and mixed hit/miss folds stay bit-identical.
  int source_batch = 1;
};

class QueryEngine {
 public:
  /// Takes the graph by value: a snapshot view copies in O(1) (shared
  /// mapping + indexes), an owned graph moves. Pass `cache` to share one
  /// LRU across engines (nullptr: the engine builds a private cache from
  /// the options).
  QueryEngine(TemporalGraph graph, QueryEngineOptions options,
              std::shared_ptr<ServeCache> cache = nullptr);

  static constexpr double kWholeSpan = std::numeric_limits<double>::quiet_NaN();

  /// Delay CDF aggregated over all destinations for one source, message
  /// creation times uniform over [t_lo, t_hi] (NaN = the whole trace
  /// span). Served from cache when this source was already computed
  /// under the same window -- including by a previous all_pairs call.
  DelayCdfResult source_cdf(NodeId source, double t_lo = kWholeSpan,
                            double t_hi = kWholeSpan);

  /// All-pairs delay CDFs / (1-eps)-diameter over a window, folding
  /// cached and freshly computed per-source partials in canonical order
  /// (bit-identical to compute_delay_cdf on a cold cache, and to itself
  /// on any warm subset).
  DelayCdfResult all_pairs(double t_lo = kWholeSpan, double t_hi = kWholeSpan);

  /// Number of nodes (excluding the source) reachable by a message
  /// created at `source` at time `t`, unlimited hops.
  std::size_t reachable_count(NodeId source, double t) const;

  /// Journey optima (foremost/fastest/shortest) from source to
  /// destination.
  JourneyOptima journey(NodeId source, NodeId destination) const;

  /// Appends one canonical-order contact batch to the served graph
  /// (TemporalGraph::append_contacts semantics) and bumps the cache-key
  /// prefix with the new graph epoch, so every pre-append cached partial
  /// becomes unreachable -- stale entries age out of the LRU instead of
  /// ever being served. Snapshot-view engines cannot ingest (the view is
  /// read-only); the underlying append throws std::logic_error. Not
  /// thread-safe against concurrent queries on this engine: callers
  /// serialize ingest against query execution (the serve loop does).
  /// Returns the graph epoch after the append.
  std::uint64_t ingest(std::span<const Contact> batch);

  const TemporalGraph& graph() const noexcept { return graph_; }
  const QueryEngineOptions& options() const noexcept { return options_; }
  LruCacheStats cache_stats() const { return cache_->stats(); }

  /// Bytes charged to the cache per stored partial: the raw lanes
  /// ((max_hops+1) accumulators x (2*(grid+1)+1) doubles) plus a fixed
  /// bookkeeping estimate.
  std::size_t cached_partial_bytes() const noexcept;

 private:
  DelayCdfResult run(const std::vector<NodeId>& sources,
                     const DelayCdfOptions& options);
  DelayCdfOptions cdf_options(double t_lo, double t_hi) const;
  std::string query_key(NodeId source, const TimeWindows& windows) const;
  void rebuild_key_prefix();

  TemporalGraph graph_;
  QueryEngineOptions options_;
  std::shared_ptr<ServeCache> cache_;
  std::string key_prefix_;  // transform key + engine/grid fingerprint
  std::vector<NodeId> all_nodes_;
  std::vector<std::uint8_t> is_endpoint_;  // all-ones mask over nodes
};

}  // namespace odtn
