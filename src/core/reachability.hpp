// Temporal reachability analysis.
//
// Complements the delay-CDF machinery with coarser connectivity
// questions: which pairs can EVER communicate from a given instant, how
// does that fraction evolve over the trace, and how large is the
// "temporal out-component" of each node. All answers derive from the
// delivery-function frontiers, so they cost one engine fixpoint per
// source.
#pragma once

#include <utility>
#include <vector>

#include "core/temporal_graph.hpp"

namespace odtn {

/// last_departure[s][d]: the latest message-creation time at s for
/// which SOME time-respecting path to d exists (-infinity when d is
/// never reachable from s; +infinity on the diagonal). A pair (s, d) is
/// reachable from start time t iff t <= last_departure[s][d].
std::vector<std::vector<double>> last_departure_matrix(
    const TemporalGraph& graph, int max_levels = 64);

/// Fraction of ordered pairs (s != d) reachable from each start time in
/// `start_times` -- the temporal analogue of a static graph's
/// "fraction of connected pairs", decaying to 0 at the trace end.
std::vector<double> reachability_ratio(const TemporalGraph& graph,
                                       const std::vector<double>& start_times,
                                       int max_levels = 64);

/// Sizes of every node's temporal out-component from start time t
/// (number of OTHER nodes reachable). The minimum over sources tells
/// whether the network is temporally connected from t.
std::vector<std::size_t> out_component_sizes(const TemporalGraph& graph,
                                              double start_time,
                                              int max_levels = 64);

/// Convenience for §5.3.1-style analyses: the daily windows
/// [hour_lo, hour_hi) (hours in [0, 24], hour_lo < hour_hi) intersected
/// with [t_lo, t_hi], as disjoint increasing intervals suitable for
/// DelayCdfOptions::windows.
std::vector<std::pair<double, double>> daily_time_windows(double t_lo,
                                                          double t_hi,
                                                          double hour_lo,
                                                          double hour_hi);

}  // namespace odtn
