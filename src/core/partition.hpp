// Source-set partitioning for the sharded all-pairs engine.
//
// The all-pairs delay-CDF computation is embarrassingly parallel over
// SOURCES: each single-source DP reads the whole contact set but writes
// only its own accumulators. A shard therefore owns a subset of the
// source positions while relays and destinations stay global -- the
// "graph slice" each shard works on is a private copy of the full
// contact array (cache/NUMA locality on one host, a per-process load in
// a future multi-process backend), and the partition proper is the
// explicit source->shard assignment plus the local/global index maps
// built here.
//
// Index vocabulary (used consistently across partition / sharded_engine):
//   endpoint index  -- position in the caller's endpoint list, the
//                      CANONICAL merge position: the all-pairs total is
//                      always folded in ascending endpoint index, so any
//                      shard count and any policy reproduce the exact
//                      rounding of the unsharded run.
//   local index     -- position within one shard's owned list.
//   global node id  -- NodeId in the TemporalGraph.
// `SourcePartition::members[s]` maps local -> endpoint index;
// `SourcePartition::shard_of` maps endpoint index -> shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/temporal_graph.hpp"

namespace odtn {

/// How source positions are dealt across shards. Every policy is
/// deterministic: the same (graph, endpoints, num_shards) input always
/// yields the same assignment.
enum class ShardPolicy : std::uint8_t {
  /// Nearly-equal contiguous ranges of the endpoint list (the first
  /// `count % num_shards` shards take one extra). Best spatial locality
  /// when neighboring ids correlate with mobility communities.
  kContiguous = 0,
  /// Fixed-size blocks dealt round-robin. Spreads id-correlated hot
  /// regions across shards at block granularity.
  kBlockCyclic = 1,
  /// Greedy longest-processing-time balance on per-source contact
  /// counts: sources are assigned in descending contact-count order
  /// (ties by ascending endpoint index) to the currently lightest shard
  /// (ties by lowest shard id). Evens out heterogeneous per-source DP
  /// cost that the blind policies can concentrate in one shard.
  kDegreeBalanced = 2,
};

/// Stable lower-case name ("contiguous", "block-cyclic",
/// "degree-balanced"); used by the CLI, benches and fuzzer.
const char* shard_policy_name(ShardPolicy policy) noexcept;

/// Inverse of shard_policy_name; nullopt for unknown names.
std::optional<ShardPolicy> parse_shard_policy(std::string_view name) noexcept;

/// Opt-in sharded execution of compute_delay_cdf: split the source set
/// across `num_shards` shards, each running shard-local all-pairs on a
/// private graph copy with its own engine arena, results merged through
/// the versioned shard message interface (core/sharded_engine.hpp).
/// num_shards == 0 selects the classic unsharded driver; any value >= 1
/// routes through the sharded one (S == 1 exercises the full message
/// round-trip and is bit-identical to unsharded, like every other S).
struct ShardingOptions {
  std::size_t num_shards = 0;
  ShardPolicy policy = ShardPolicy::kContiguous;
  /// kBlockCyclic deal granularity (sources per block).
  std::size_t block_size = 8;
};

/// An explicit source->shard assignment over `count` endpoint positions.
struct SourcePartition {
  std::size_t num_shards = 0;
  /// endpoint index -> owning shard.
  std::vector<std::uint32_t> shard_of;
  /// members[s] = endpoint indices owned by shard s, ascending (the
  /// shard's local->global position map; ascending order keeps each
  /// shard's result partials pre-sorted for the canonical merge).
  std::vector<std::vector<std::uint32_t>> members;
};

/// Partitions the endpoint positions [0, endpoints.size()) across
/// `num_shards` shards under `policy`. `graph` supplies the per-source
/// weights of kDegreeBalanced (contact counts); `block_size` is the
/// kBlockCyclic deal granularity. Shards may end up empty when
/// num_shards exceeds the endpoint count. Throws std::invalid_argument
/// when num_shards or block_size is zero, or an endpoint id is out of
/// range.
SourcePartition partition_sources(const TemporalGraph& graph,
                                  const std::vector<NodeId>& endpoints,
                                  std::size_t num_shards, ShardPolicy policy,
                                  std::size_t block_size = 8);

}  // namespace odtn
