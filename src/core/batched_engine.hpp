// Batched multi-source frontier engine: B sources advance in lockstep
// through ONE shared walk of the by-end neighbor index per hop level.
//
// The per-source pooled engine (core/optimal_paths.hpp, kPooled) walks
// each active node's by-end contact list once per source per level; an
// all-pairs run therefore streams the same index N times, and on
// trace-scale graphs those lists long outgrow L1/L2 -- the walk is a
// cold stream every time. Following the contact-ordered formulation of
// Whitbeck et al., *Temporal Reachability Graphs* (arXiv:1207.7103),
// this engine groups B sources into a block advancing in lockstep by
// level: at every level the active (node, source-lane) entries of ALL
// lanes are bucketed by node with one counting sort, and each node's
// by-end list is then walked by its whole bucket back to back -- the
// first entry pays the cold stream, the remaining entries ride the
// cache-hot list. Per entry the walk itself is the per-source inner
// loop verbatim (local cursors, one lane's L1-sized state), so the
// grouping amortizes the index traffic without adding any per-contact
// bookkeeping.
//
// Storage is the pooled layout, widened by one lane dimension: one
// shared PairArena holds every lane's frontier pairs, addressed by a
// lane-major BlockedSpanTable (util/arena.hpp) so each entry's walk
// touches a per-source-sized span slice; per-lane deltas ping-pong
// through one shared aux-carrying arena pair. The prune/merge publish
// step reuses the SIMD-dispatched kernels (core/frontier_kernels.hpp)
// unchanged.
//
// Bit-identity contract: every lane's frontier, change list and delta
// bytes equal the per-source engine's at every level.
//   - Offer-time dominance reads only PREVIOUS-level state (last-pair
//     probe + frontier span), so each candidate's kept/dominated verdict
//     is independent of how lanes interleave.
//   - Frontier CONTENT is order-invariant: prune_candidate_batch sorts
//     its batch, and every published double is an exact copy or min of
//     inputs -- no arithmetic that could reorder rounding.
//   - Publication ORDER (the changed list, which fixes the order the
//     incremental CDF path integrates deltas in) is reproduced exactly
//     by sorting each lane's dirty targets by their first kept offer's
//     (active position, contact ordinal) key -- the lexicographic
//     position at which the per-source walk would have discovered them.
// The CDF partials a lane produces are therefore bitwise identical to a
// per-source run, and folding them through the canonical
// OrderedCdfFolder yields bit-identical all-pairs CDFs at every B.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/delivery_function.hpp"
#include "core/optimal_paths.hpp"
#include "core/temporal_graph.hpp"
#include "util/arena.hpp"

namespace odtn {

/// Hop-level dynamic program from a block of sources, advanced in
/// lockstep. Lane l reproduces SingleSourceEngine(graph, sources[l],
/// kPooled) bit for bit; lanes that reach their fixpoint become free
/// no-ops while the rest of the block keeps stepping.
class BatchedSourceEngine {
 public:
  BatchedSourceEngine(const TemporalGraph& graph,
                      std::span<const NodeId> sources);

  /// Rebinds the block to new sources (any width) on the same graph.
  /// All slabs and lane lists keep their capacity -- steady-state
  /// blocks allocate nothing once the high-water marks are reached.
  void reset(std::span<const NodeId> sources);

  /// Advances every lane not yet at its fixpoint by one level through
  /// one shared index walk. Returns true iff any lane changed; a block
  /// with every lane at its fixpoint is a no-op returning false.
  bool step();

  /// Levels actually executed (steps that advanced at least one lane).
  /// Equals lane_hops(l) for every lane not yet at its fixpoint.
  int steps() const noexcept { return steps_; }

  std::size_t num_lanes() const noexcept { return lanes_; }
  NodeId source(std::size_t lane) const { return sources_[lane]; }

  /// Lane l's hop budget -- the level at which its frontiers last grew.
  int lane_hops(std::size_t lane) const { return lane_level_[lane]; }
  bool lane_at_fixpoint(std::size_t lane) const {
    return lane_fixpoint_[lane] != 0;
  }
  bool all_at_fixpoint() const noexcept { return live_lanes_ == 0; }

  /// Nodes whose lane-l frontier changed at the last executed level, in
  /// the per-source engine's publication order (empty once the lane hit
  /// its fixpoint).
  const std::vector<NodeId>& last_changed(std::size_t lane) const {
    return lane_active_[lane];
  }

  /// last_changed(lane)[i]'s frontier as it was BEFORE the last level
  /// (free arena span, valid until the next reset).
  FrontierView previous_frontier_view(std::size_t lane, std::size_t i) const;

  /// Zero-copy view of `dst`'s lane-l frontier at the current budget.
  FrontierView frontier_view(std::size_t lane, NodeId dst) const;

  /// Counters accumulated since construction (workspace_allocations /
  /// batch_blocks semantics mirror SingleSourceEngine's construction /
  /// reset counting; the propagation counters are additive-identical to
  /// the per-source engines the block replaces, except the arena peaks,
  /// which describe the shared block arenas).
  const EngineStats& stats() const noexcept { return stats_; }

 private:
  /// One active (lane, position) entry of the shared walk: the lane's
  /// delta span pointers plus its (lane, active position) identity. The
  /// per-contact cursors live in registers during the walk.
  struct WalkEntry {
    const double* dld;
    const double* dea;
    const double* dsucc;
    std::uint32_t dn;
    std::uint32_t lane;
    std::uint32_t a_pos;
  };
  /// One kept candidate: (ld, ea) plus its flat (target, lane) slot.
  struct RawCandidate {
    double ld;
    double ea;
    std::uint32_t idx;
  };

  void rebind(std::span<const NodeId> sources);
  void record_arena_peaks() noexcept;

  const TemporalGraph* graph_;
  std::vector<NodeId> sources_;
  std::size_t lanes_ = 0;
  std::size_t live_lanes_ = 0;
  int steps_ = 0;
  EngineStats stats_;

  // Shared pair storage (pooled layout, widened by the lane dimension).
  PairArena arena_;
  BlockedSpanTable fspan_;
  PairArena delta_arena_[2]{PairArena(true), PairArena(true)};
  int delta_parity_ = 0;

  // Flat lane-major per-(node, lane) state, indexed lane * nodes + node,
  // so an entry's walk (fixed lane) stays inside its own lane slice --
  // the same L1 working set the per-source engine enjoys.
  std::vector<PathPair> last_pair_;
  // Dominance witness cache: for each (node, lane), the most recent
  // frontier pair observed to dominate a candidate for that slot. A hit
  // (w.ld >= cand.ld && w.ea <= cand.ea) answers "dominated" without the
  // frontier binary search. Never invalidated within a block: Pareto
  // maintenance only ever evicts a frontier pair in favour of one that
  // dominates it, so a stale witness that dominates the candidate proves
  // (by transitivity) that a current frontier pair does too -- the
  // verdict, and hence bit-identity, is unaffected.
  std::vector<PathPair> dom_cache_;
  std::vector<std::uint8_t> dirty_mark_;
  std::vector<std::uint32_t> cand_count_;
  std::vector<std::uint64_t> first_key_;
  std::vector<std::uint32_t> grp_begin_at_;
  std::vector<std::uint32_t> grp_pos_;

  // Per-lane change lists (aligned triples: active / delta span /
  // retired span) plus their next-level double buffers.
  std::vector<std::vector<NodeId>> lane_active_;
  std::vector<std::vector<PairSpan>> lane_delta_spans_;
  std::vector<std::vector<PairSpan>> lane_retired_spans_;
  std::vector<std::vector<NodeId>> lane_next_active_;
  std::vector<std::vector<PairSpan>> lane_next_delta_spans_;
  std::vector<std::vector<PairSpan>> lane_next_retired_;
  std::vector<std::vector<NodeId>> lane_dirty_;
  std::vector<std::uint8_t> lane_fixpoint_;
  std::vector<int> lane_level_;

  // Per-level scratch: the walk grouping and the raw candidate buffer.
  std::vector<WalkEntry> entries_;
  std::vector<NodeId> walk_nodes_;
  std::vector<std::uint32_t> node_entry_count_;
  std::vector<std::uint32_t> node_entry_pos_;
  std::vector<RawCandidate> cand_;
  std::vector<PathPair> grp_pairs_;
};

}  // namespace odtn
