#include "core/path_pair.hpp"

#include <algorithm>
#include <cassert>

namespace odtn {

double deliver_at(const PathPair& p, double t) noexcept {
  if (t > p.ld) return std::numeric_limits<double>::infinity();
  return std::max(t, p.ea);
}

bool is_time_respecting(std::span<const Contact> sequence) noexcept {
  double max_begin = -std::numeric_limits<double>::infinity();
  for (const Contact& c : sequence) {
    if (c.end < max_begin) return false;  // Eq. (2) violated
    max_begin = std::max(max_begin, c.begin);
  }
  return true;
}

PathPair summarize_sequence(std::span<const Contact> sequence) noexcept {
  assert(!sequence.empty());
  assert(is_time_respecting(sequence));
  PathPair p{std::numeric_limits<double>::infinity(),
             -std::numeric_limits<double>::infinity()};
  for (const Contact& c : sequence) {
    p.ld = std::min(p.ld, c.end);
    p.ea = std::max(p.ea, c.begin);
  }
  return p;
}

}  // namespace odtn
