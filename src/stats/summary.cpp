#include "stats/summary.hpp"

#include <cmath>
#include <limits>

namespace odtn {

void SummaryStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double SummaryStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double SummaryStats::stddev() const noexcept { return std::sqrt(variance()); }

double SummaryStats::min() const noexcept {
  return n_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double SummaryStats::max() const noexcept {
  return n_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

double SummaryStats::stderr_mean() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace odtn
