// Exact (Lebesgue-measure) delay-CDF accumulation.
//
// The paper's delay distributions (Figures 9-11) combine observations "for
// every starting time": the message generation time t is uniform over the
// trace interval. For a delivery function represented by Pareto pairs
// (LD_i, EA_i), the start-time axis splits into intervals (LD_{i-1}, LD_i]
// on which the arrival time is the constant EA_i, so the delay is
// max(0, EA_i - t). This accumulator integrates P[delay <= x] *exactly*
// over such segments (no start-time sampling), evaluated on a fixed grid
// of delay values x.
//
// Complexity: O(log M) amortized per segment plus O(M) at finalization,
// where M is the grid size, using range-update difference arrays: over the
// x-range where a segment contributes partially, the contribution is the
// affine function (b - arrival) + x.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

namespace odtn {

/// Accumulates exact measure of {start times t : delay(t) <= x} over many
/// piecewise-constant-arrival segments, normalized by an explicitly
/// accumulated denominator.
class MeasureCdfAccumulator {
 public:
  /// `grid` holds strictly increasing delay values x >= 0.
  explicit MeasureCdfAccumulator(std::vector<double> grid);

  /// Accounts for start times t in (a, b] delivered at time
  /// max(t, arrival), i.e. delay(t) = max(0, arrival - t), scaled by
  /// `weight`. A negative weight RETRACTS a previously added segment:
  /// adding the same (a, b, arrival) with weights +1 and -1 cancels to
  /// the bit (the diff-array entries receive exactly negated addends),
  /// which is what the incremental all-pairs scheme relies on to replace
  /// a destination's stale integration with its refreshed one.
  /// Requires a <= b; empty segments are ignored. Does NOT touch the
  /// denominator (see add_observation_measure). Defined inline: this is
  /// the hottest non-engine call of the all-pairs delay CDF.
  void add_segment(double a, double b, double arrival, double weight = 1.0) {
    assert(a <= b);
    if (!(a < b)) return;
    // Contribution to P[delay <= x] for x = grid[j]:
    //   measure{ t in (a, b] : arrival - t <= x }
    //   = b - max(a, arrival - x), clamped to [0, b - a]
    //   = 0                       when x <  arrival - b   (no coverage)
    //   = (b - arrival) + x       when arrival - b <= x < arrival - a
    //   = b - a                   when x >= arrival - a   (full coverage).
    const auto lo = static_cast<std::size_t>(
        std::lower_bound(grid_.begin(), grid_.end(), arrival - b) -
        grid_.begin());
    const auto hi = static_cast<std::size_t>(
        std::lower_bound(grid_.begin(), grid_.end(), arrival - a) -
        grid_.begin());
    add_segment_at(a, b, arrival, weight, lo, hi);
  }

  /// Batched form of accumulate_delay_measure for structure-of-arrays
  /// delivery functions: streams a whole frontier (parallel ld/ea lanes,
  /// both ascending, as stored in the pooled engine's pair arena) in one
  /// call. Start times in (ld[i-1], ld[i]] are served by pair i at
  /// arrival ea[i]; each segment is clipped to [t_lo, t_hi] and fed to
  /// add_segment, so the result is bit-identical to the per-pair path.
  /// `prev_ld` is the lower start-time boundary of the FIRST pair --
  /// -infinity for a whole frontier; a real departure time when `ld`/`ea`
  /// are an interior slice of a larger frontier (the incremental scheme
  /// integrates only the slice where consecutive hop levels differ, with
  /// prev_ld = the last pair of the shared prefix).
  /// Hot: this is the pooled all-pairs CDF integration kernel.
  void add_delivery_segments(
      const double* ld, const double* ea, std::size_t n, double t_lo,
      double t_hi, double weight = 1.0,
      double prev_ld = -std::numeric_limits<double>::infinity());

  /// Multi-window form: one walk over the frontier slice feeding every
  /// window it overlaps (`windows` sorted, disjoint), instead of one
  /// walk per window -- O(n + W) rather than O(n * W). Equivalent to
  /// calling the single-window form once per window: every add_segment
  /// receives identical clipped arguments, only their order changes
  /// (grouped by pair instead of by window).
  void add_delivery_segments(
      const double* ld, const double* ea, std::size_t n,
      const std::pair<double, double>* windows, std::size_t num_windows,
      double weight = 1.0,
      double prev_ld = -std::numeric_limits<double>::infinity());

  /// Adds `measure` to the normalization denominator. Callers typically
  /// add (t_hi - t_lo) once per (source, destination) pair, so start times
  /// with no path at all (including entire pairs that are never connected)
  /// correctly dilute the CDF.
  void add_observation_measure(double measure);

  /// Merges another accumulator over the same grid (numerators and
  /// denominators add). Used to combine per-source partial results.
  void merge(const MeasureCdfAccumulator& other);

  /// In-place prefix sum over hop-indexed accumulators: levels[k]
  /// becomes the sum of levels[0..k] (numerator difference arrays and
  /// denominators alike). The incremental all-pairs scheme stores in
  /// levels[k] only the level-(k+1) delta (changed destinations'
  /// retracted old segments plus their new ones, with the full
  /// observation measure parked in levels[0]); one prefix_merge at
  /// finalization reconstructs CDF_{k+1} = CDF_k + delta_{k+1} for every
  /// hop budget at O(K * M) cost, independent of the trace size.
  static void prefix_merge(std::vector<MeasureCdfAccumulator>& levels);

  /// Resets numerators and denominator to the just-constructed state
  /// while keeping the grid and buffer capacity. Lets a worker recycle
  /// one accumulator as per-source scratch: zero, integrate one source,
  /// merge into a running total, repeat -- the merge order (not the
  /// integration order) then fully determines the rounding, which is
  /// what makes sharded and unsharded all-pairs runs bit-identical.
  void clear() noexcept;

  /// The evaluation grid.
  const std::vector<double>& grid() const noexcept { return grid_; }

  /// Total denominator accumulated so far.
  double denominator() const noexcept { return denominator_; }

  /// Raw difference-array lanes (size grid().size() + 1 each):
  /// contribution at grid index j is prefix(const_diff)[j]
  /// + prefix(slope_diff)[j] * grid[j]. Exposed so the shard message
  /// layer can serialize an accumulator byte-exactly; merging a restored
  /// copy is bit-identical to merging the original.
  const std::vector<double>& const_diff() const noexcept {
    return const_diff_;
  }
  const std::vector<double>& slope_diff() const noexcept {
    return slope_diff_;
  }

  /// Overwrites this accumulator's state with previously captured raw
  /// lanes (the inverse of const_diff()/slope_diff()/denominator()).
  /// Both lanes must have size grid().size() + 1; throws
  /// std::invalid_argument otherwise.
  void restore_raw(const std::vector<double>& const_diff,
                   const std::vector<double>& slope_diff, double denominator);

  /// P[delay <= grid[j]] for every j. Returns zeros when the denominator
  /// is zero. Values are clamped to [0, 1] against rounding noise.
  /// Meaningless on an accumulator still holding a bare inter-level
  /// delta -- prefix_merge first.
  std::vector<double> cdf() const;

 private:
  /// The diff-array update half of add_segment: `lo`/`hi` must be the
  /// std::lower_bound indices of the keys (arrival - b) and (arrival - a)
  /// and the segment must be non-empty (a < b). Split out so the batched
  /// SoA path can feed it indices computed four-at-a-time by the
  /// dispatched simd::Ops::lower_bound4 -- the updates themselves run in
  /// the exact per-segment order of the scalar path, keeping the
  /// accumulator state bit-identical.
  void add_segment_at(double a, double b, double arrival, double weight,
                      std::size_t lo, std::size_t hi) {
    // Partial coverage on [lo, hi): affine in x.
    if (lo < hi) {
      const_diff_[lo] += (b - arrival) * weight;
      const_diff_[hi] -= (b - arrival) * weight;
      slope_diff_[lo] += weight;
      slope_diff_[hi] -= weight;
    }
    // Full coverage on [hi, end).
    if (hi < grid_.size()) {
      const_diff_[hi] += (b - a) * weight;
      const_diff_[grid_.size()] -= (b - a) * weight;
    }
  }

  std::vector<double> grid_;
  // Contribution at grid index j is: prefix(const_diff_)[j]
  //                                  + prefix(slope_diff_)[j] * grid_[j].
  std::vector<double> const_diff_;
  std::vector<double> slope_diff_;
  double denominator_ = 0.0;
};

}  // namespace odtn
