// Exact (Lebesgue-measure) delay-CDF accumulation.
//
// The paper's delay distributions (Figures 9-11) combine observations "for
// every starting time": the message generation time t is uniform over the
// trace interval. For a delivery function represented by Pareto pairs
// (LD_i, EA_i), the start-time axis splits into intervals (LD_{i-1}, LD_i]
// on which the arrival time is the constant EA_i, so the delay is
// max(0, EA_i - t). This accumulator integrates P[delay <= x] *exactly*
// over such segments (no start-time sampling), evaluated on a fixed grid
// of delay values x.
//
// Complexity: O(log M) amortized per segment plus O(M) at finalization,
// where M is the grid size, using range-update difference arrays: over the
// x-range where a segment contributes partially, the contribution is the
// affine function (b - arrival) + x.
#pragma once

#include <cstddef>
#include <vector>

namespace odtn {

/// Accumulates exact measure of {start times t : delay(t) <= x} over many
/// piecewise-constant-arrival segments, normalized by an explicitly
/// accumulated denominator.
class MeasureCdfAccumulator {
 public:
  /// `grid` holds strictly increasing delay values x >= 0.
  explicit MeasureCdfAccumulator(std::vector<double> grid);

  /// Accounts for start times t in (a, b] delivered at time
  /// max(t, arrival), i.e. delay(t) = max(0, arrival - t).
  /// Requires a <= b; empty segments are ignored. Does NOT touch the
  /// denominator (see add_observation_measure).
  void add_segment(double a, double b, double arrival);

  /// Adds `measure` to the normalization denominator. Callers typically
  /// add (t_hi - t_lo) once per (source, destination) pair, so start times
  /// with no path at all (including entire pairs that are never connected)
  /// correctly dilute the CDF.
  void add_observation_measure(double measure);

  /// Merges another accumulator over the same grid (numerators and
  /// denominators add). Used to combine per-source partial results.
  void merge(const MeasureCdfAccumulator& other);

  /// The evaluation grid.
  const std::vector<double>& grid() const noexcept { return grid_; }

  /// Total denominator accumulated so far.
  double denominator() const noexcept { return denominator_; }

  /// P[delay <= grid[j]] for every j. Returns zeros when the denominator
  /// is zero. Values are clamped to [0, 1] against rounding noise.
  std::vector<double> cdf() const;

 private:
  std::vector<double> grid_;
  // Contribution at grid index j is: prefix(const_diff_)[j]
  //                                  + prefix(slope_diff_)[j] * grid_[j].
  std::vector<double> const_diff_;
  std::vector<double> slope_diff_;
  double denominator_ = 0.0;
};

}  // namespace odtn
