// Streaming summary statistics (count/mean/variance/min/max) via Welford's
// algorithm. Used by generators, Monte-Carlo experiments, and tests.
#pragma once

#include <cstddef>

namespace odtn {

/// Online accumulator for first and second moments plus extrema.
class SummaryStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept;        ///< 0 when empty
  double variance() const noexcept;    ///< sample variance; 0 when n < 2
  double stddev() const noexcept;
  double min() const noexcept;         ///< +inf when empty
  double max() const noexcept;         ///< -inf when empty
  double sum() const noexcept { return mean() * static_cast<double>(n_); }

  /// Standard error of the mean (stddev / sqrt(n)); 0 when n < 2.
  double stderr_mean() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace odtn
