// Logarithmically spaced evaluation grids.
//
// The paper evaluates delay distributions on time scales spanning 2 minutes
// to one week; a log grid captures that range with a fixed point budget.
#pragma once

#include <cstddef>
#include <vector>

namespace odtn {

/// Returns `points` values logarithmically spaced over [lo, hi], inclusive
/// of both endpoints. Requires 0 < lo < hi and points >= 2.
std::vector<double> make_log_grid(double lo, double hi, std::size_t points);

/// Returns `points` values linearly spaced over [lo, hi], inclusive.
/// Requires lo < hi and points >= 2.
std::vector<double> make_linear_grid(double lo, double hi, std::size_t points);

}  // namespace odtn
