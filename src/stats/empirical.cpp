#include "stats/empirical.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace odtn {

EmpiricalDistribution::EmpiricalDistribution(
    const EmpiricalDistribution& other) {
  // Lock the source so the copy cannot observe a half-finished lazy sort
  // racing on another thread.
  std::lock_guard<std::mutex> lock(other.sort_mutex_);
  finite_ = other.finite_;
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  infinite_ = other.infinite_;
}

EmpiricalDistribution& EmpiricalDistribution::operator=(
    const EmpiricalDistribution& other) {
  if (this == &other) return *this;
  std::lock_guard<std::mutex> lock(other.sort_mutex_);
  finite_ = other.finite_;
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  infinite_ = other.infinite_;
  return *this;
}

EmpiricalDistribution::EmpiricalDistribution(
    EmpiricalDistribution&& other) noexcept
    : finite_(std::move(other.finite_)),
      infinite_(other.infinite_) {
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  other.finite_.clear();
  other.sorted_.store(true, std::memory_order_relaxed);
  other.infinite_ = 0;
}

EmpiricalDistribution& EmpiricalDistribution::operator=(
    EmpiricalDistribution&& other) noexcept {
  if (this == &other) return *this;
  finite_ = std::move(other.finite_);
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  infinite_ = other.infinite_;
  other.finite_.clear();
  other.sorted_.store(true, std::memory_order_relaxed);
  other.infinite_ = 0;
  return *this;
}

void EmpiricalDistribution::add(double value) {
  assert(!std::isnan(value));
  if (std::isinf(value)) {
    assert(value > 0 && "negative infinity is not a meaningful delay");
    ++infinite_;
    return;
  }
  finite_.push_back(value);
  sorted_.store(false, std::memory_order_relaxed);
}

void EmpiricalDistribution::add(double value, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) add(value);
}

void EmpiricalDistribution::ensure_sorted() const {
  if (sorted_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(sort_mutex_);
  if (!sorted_.load(std::memory_order_relaxed)) {
    std::sort(finite_.begin(), finite_.end());
    // Release pairs with the acquire above: a reader that sees true
    // also sees the sorted buffer.
    sorted_.store(true, std::memory_order_release);
  }
}

double EmpiricalDistribution::cdf(double x) const {
  if (count() == 0) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(finite_.begin(), finite_.end(), x);
  return static_cast<double>(it - finite_.begin()) /
         static_cast<double>(count());
}

double EmpiricalDistribution::quantile(double q) const {
  assert(count() > 0);
  assert(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const auto n = static_cast<double>(count());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank > 0) --rank;  // 0-based index of the q-quantile order statistic
  if (rank >= finite_.size()) return std::numeric_limits<double>::infinity();
  return finite_[rank];
}

double EmpiricalDistribution::finite_mean() const {
  assert(!finite_.empty());
  return std::accumulate(finite_.begin(), finite_.end(), 0.0) /
         static_cast<double>(finite_.size());
}

double EmpiricalDistribution::finite_min() const {
  assert(!finite_.empty());
  ensure_sorted();
  return finite_.front();
}

double EmpiricalDistribution::finite_max() const {
  assert(!finite_.empty());
  ensure_sorted();
  return finite_.back();
}

std::vector<double> EmpiricalDistribution::cdf_on_grid(
    const std::vector<double>& grid) const {
  std::vector<double> out;
  out.reserve(grid.size());
  for (double x : grid) out.push_back(cdf(x));
  return out;
}

std::vector<double> EmpiricalDistribution::ccdf_on_grid(
    const std::vector<double>& grid) const {
  std::vector<double> out;
  out.reserve(grid.size());
  for (double x : grid) out.push_back(ccdf(x));
  return out;
}

}  // namespace odtn
