#include "stats/empirical.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace odtn {

void EmpiricalDistribution::add(double value) {
  assert(!std::isnan(value));
  if (std::isinf(value)) {
    assert(value > 0 && "negative infinity is not a meaningful delay");
    ++infinite_;
    return;
  }
  finite_.push_back(value);
  sorted_ = false;
}

void EmpiricalDistribution::add(double value, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) add(value);
}

void EmpiricalDistribution::ensure_sorted() const {
  if (!sorted_) {
    std::sort(finite_.begin(), finite_.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::cdf(double x) const {
  if (count() == 0) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(finite_.begin(), finite_.end(), x);
  return static_cast<double>(it - finite_.begin()) /
         static_cast<double>(count());
}

double EmpiricalDistribution::quantile(double q) const {
  assert(count() > 0);
  assert(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const auto n = static_cast<double>(count());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank > 0) --rank;  // 0-based index of the q-quantile order statistic
  if (rank >= finite_.size()) return std::numeric_limits<double>::infinity();
  return finite_[rank];
}

double EmpiricalDistribution::finite_mean() const {
  assert(!finite_.empty());
  return std::accumulate(finite_.begin(), finite_.end(), 0.0) /
         static_cast<double>(finite_.size());
}

double EmpiricalDistribution::finite_min() const {
  assert(!finite_.empty());
  ensure_sorted();
  return finite_.front();
}

double EmpiricalDistribution::finite_max() const {
  assert(!finite_.empty());
  ensure_sorted();
  return finite_.back();
}

std::vector<double> EmpiricalDistribution::cdf_on_grid(
    const std::vector<double>& grid) const {
  std::vector<double> out;
  out.reserve(grid.size());
  for (double x : grid) out.push_back(cdf(x));
  return out;
}

std::vector<double> EmpiricalDistribution::ccdf_on_grid(
    const std::vector<double>& grid) const {
  std::vector<double> out;
  out.reserve(grid.size());
  for (double x : grid) out.push_back(ccdf(x));
  return out;
}

}  // namespace odtn
