#include "stats/measure_cdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "util/simd.hpp"

namespace odtn {

namespace {

// Clipped segments pending integration: the grid searches of two
// segments (four lower_bound keys) run as one dispatched lower_bound4
// call, which is where the SoA integration path recovers the
// micro_integrate regression -- the diff-array updates themselves are
// then applied in the original per-segment order, so the accumulator
// state stays bit-identical to the scalar path.
struct SegmentBatcher {
  double a[2], b[2], arrival[2];
  std::size_t pending = 0;
};

}  // namespace

MeasureCdfAccumulator::MeasureCdfAccumulator(std::vector<double> grid)
    : grid_(std::move(grid)),
      const_diff_(grid_.size() + 1, 0.0),
      slope_diff_(grid_.size() + 1, 0.0) {
  if (grid_.empty()) throw std::invalid_argument("MeasureCdf: empty grid");
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    if (grid_[i] < 0.0 || (i > 0 && grid_[i] <= grid_[i - 1]))
      throw std::invalid_argument("MeasureCdf: grid must be >= 0, increasing");
  }
}

void MeasureCdfAccumulator::add_delivery_segments(const double* ld,
                                                  const double* ea,
                                                  std::size_t n, double t_lo,
                                                  double t_hi, double weight,
                                                  double prev_ld) {
  assert(t_lo <= t_hi);
  if (simd::active_level() == simd::Level::kScalar) {
    // Mandatory fallback: the original per-segment walk, verbatim.
    for (std::size_t i = 0; i < n; ++i) {
      const double a = std::max(prev_ld, t_lo);
      const double b = std::min(ld[i], t_hi);
      if (a < b) add_segment(a, b, ea[i], weight);
      prev_ld = ld[i];
      if (prev_ld >= t_hi) break;
    }
    return;
  }
  const simd::Ops& ops = simd::ops();
  SegmentBatcher sb;
  auto push = [&](double a, double b, double arrival) {
    sb.a[sb.pending] = a;
    sb.b[sb.pending] = b;
    sb.arrival[sb.pending] = arrival;
    if (++sb.pending < 2) return;
    const double keys[4] = {sb.arrival[0] - sb.b[0], sb.arrival[0] - sb.a[0],
                            sb.arrival[1] - sb.b[1], sb.arrival[1] - sb.a[1]};
    std::uint32_t idx[4];
    ops.lower_bound4(grid_.data(), grid_.size(), keys, idx);
    add_segment_at(sb.a[0], sb.b[0], sb.arrival[0], weight, idx[0], idx[1]);
    add_segment_at(sb.a[1], sb.b[1], sb.arrival[1], weight, idx[2], idx[3]);
    sb.pending = 0;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const double a = std::max(prev_ld, t_lo);
    const double b = std::min(ld[i], t_hi);
    if (a < b) push(a, b, ea[i]);
    prev_ld = ld[i];
    if (prev_ld >= t_hi) break;
  }
  if (sb.pending == 1) add_segment(sb.a[0], sb.b[0], sb.arrival[0], weight);
}

void MeasureCdfAccumulator::add_delivery_segments(
    const double* ld, const double* ea, std::size_t n,
    const std::pair<double, double>* windows, std::size_t num_windows,
    double weight, double prev_ld) {
  // Pair segments (prev_ld, ld[i]] ascend, so the window cursor only
  // moves forward; windows fully below the current segment are dropped
  // for good, and the walk ends once every window is behind prev_ld.
  if (simd::active_level() == simd::Level::kScalar) {
    // Mandatory fallback: the original per-segment walk, verbatim.
    std::size_t w0 = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double lo = prev_ld, hi = ld[i];
      prev_ld = ld[i];
      while (w0 < num_windows && windows[w0].second <= lo) ++w0;
      if (w0 == num_windows) break;
      for (std::size_t w = w0; w < num_windows && windows[w].first < hi; ++w) {
        const double a = std::max(lo, windows[w].first);
        const double b = std::min(hi, windows[w].second);
        if (a < b) add_segment(a, b, ea[i], weight);
      }
    }
    return;
  }
  const simd::Ops& ops = simd::ops();
  SegmentBatcher sb;
  auto push = [&](double a, double b, double arrival) {
    sb.a[sb.pending] = a;
    sb.b[sb.pending] = b;
    sb.arrival[sb.pending] = arrival;
    if (++sb.pending < 2) return;
    const double keys[4] = {sb.arrival[0] - sb.b[0], sb.arrival[0] - sb.a[0],
                            sb.arrival[1] - sb.b[1], sb.arrival[1] - sb.a[1]};
    std::uint32_t idx[4];
    ops.lower_bound4(grid_.data(), grid_.size(), keys, idx);
    add_segment_at(sb.a[0], sb.b[0], sb.arrival[0], weight, idx[0], idx[1]);
    add_segment_at(sb.a[1], sb.b[1], sb.arrival[1], weight, idx[2], idx[3]);
    sb.pending = 0;
  };
  std::size_t w0 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = prev_ld, hi = ld[i];
    prev_ld = ld[i];
    while (w0 < num_windows && windows[w0].second <= lo) ++w0;
    if (w0 == num_windows) break;
    for (std::size_t w = w0; w < num_windows && windows[w].first < hi; ++w) {
      const double a = std::max(lo, windows[w].first);
      const double b = std::min(hi, windows[w].second);
      if (a < b) push(a, b, ea[i]);
    }
  }
  if (sb.pending == 1) add_segment(sb.a[0], sb.b[0], sb.arrival[0], weight);
}

void MeasureCdfAccumulator::clear() noexcept {
  std::fill(const_diff_.begin(), const_diff_.end(), 0.0);
  std::fill(slope_diff_.begin(), slope_diff_.end(), 0.0);
  denominator_ = 0.0;
}

void MeasureCdfAccumulator::restore_raw(const std::vector<double>& const_diff,
                                        const std::vector<double>& slope_diff,
                                        double denominator) {
  if (const_diff.size() != grid_.size() + 1 ||
      slope_diff.size() != grid_.size() + 1)
    throw std::invalid_argument("MeasureCdf: raw lane size mismatch");
  const_diff_ = const_diff;
  slope_diff_ = slope_diff;
  denominator_ = denominator;
}

void MeasureCdfAccumulator::add_observation_measure(double measure) {
  assert(measure >= 0.0);
  denominator_ += measure;
}

void MeasureCdfAccumulator::merge(const MeasureCdfAccumulator& other) {
  if (other.grid_ != grid_)
    throw std::invalid_argument("MeasureCdf: merging different grids");
  for (std::size_t i = 0; i < const_diff_.size(); ++i) {
    const_diff_[i] += other.const_diff_[i];
    slope_diff_[i] += other.slope_diff_[i];
  }
  denominator_ += other.denominator_;
}

void MeasureCdfAccumulator::prefix_merge(
    std::vector<MeasureCdfAccumulator>& levels) {
  for (std::size_t k = 1; k < levels.size(); ++k)
    levels[k].merge(levels[k - 1]);
}

std::vector<double> MeasureCdfAccumulator::cdf() const {
  std::vector<double> out(grid_.size(), 0.0);
  if (denominator_ <= 0.0) return out;
  double c = 0.0, s = 0.0;
  for (std::size_t j = 0; j < grid_.size(); ++j) {
    c += const_diff_[j];
    s += slope_diff_[j];
    out[j] = std::clamp((c + s * grid_[j]) / denominator_, 0.0, 1.0);
  }
  return out;
}

}  // namespace odtn
