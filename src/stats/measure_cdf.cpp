#include "stats/measure_cdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace odtn {

MeasureCdfAccumulator::MeasureCdfAccumulator(std::vector<double> grid)
    : grid_(std::move(grid)),
      const_diff_(grid_.size() + 1, 0.0),
      slope_diff_(grid_.size() + 1, 0.0) {
  if (grid_.empty()) throw std::invalid_argument("MeasureCdf: empty grid");
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    if (grid_[i] < 0.0 || (i > 0 && grid_[i] <= grid_[i - 1]))
      throw std::invalid_argument("MeasureCdf: grid must be >= 0, increasing");
  }
}

void MeasureCdfAccumulator::add_observation_measure(double measure) {
  assert(measure >= 0.0);
  denominator_ += measure;
}

void MeasureCdfAccumulator::merge(const MeasureCdfAccumulator& other) {
  if (other.grid_ != grid_)
    throw std::invalid_argument("MeasureCdf: merging different grids");
  for (std::size_t i = 0; i < const_diff_.size(); ++i) {
    const_diff_[i] += other.const_diff_[i];
    slope_diff_[i] += other.slope_diff_[i];
  }
  denominator_ += other.denominator_;
}

void MeasureCdfAccumulator::prefix_merge(
    std::vector<MeasureCdfAccumulator>& levels) {
  for (std::size_t k = 1; k < levels.size(); ++k)
    levels[k].merge(levels[k - 1]);
}

std::vector<double> MeasureCdfAccumulator::cdf() const {
  std::vector<double> out(grid_.size(), 0.0);
  if (denominator_ <= 0.0) return out;
  double c = 0.0, s = 0.0;
  for (std::size_t j = 0; j < grid_.size(); ++j) {
    c += const_diff_[j];
    s += slope_diff_[j];
    out[j] = std::clamp((c + s * grid_[j]) / denominator_, 0.0, 1.0);
  }
  return out;
}

}  // namespace odtn
