// Empirical distribution of scalar samples: CDF/CCDF/quantiles.
//
// Infinite samples are legal and tracked separately -- the paper's delay
// distributions place positive mass at +infinity (pairs that are never
// connected), which shows up as a CDF that saturates below 1.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

namespace odtn {

/// Accumulates scalar samples and answers distribution queries.
/// Queries sort lazily; adding samples after a query is allowed.
///
/// Thread safety: concurrent const queries (cdf/ccdf/quantile/extrema)
/// on a shared distribution are safe -- the lazy sort behind them is
/// guarded, so readers never race on the sample buffer. Mutation
/// (add, assignment) still requires exclusive access, like a standard
/// container.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  EmpiricalDistribution(const EmpiricalDistribution& other);
  EmpiricalDistribution& operator=(const EmpiricalDistribution& other);
  EmpiricalDistribution(EmpiricalDistribution&& other) noexcept;
  EmpiricalDistribution& operator=(EmpiricalDistribution&& other) noexcept;

  /// Adds one sample. +infinity is allowed; NaN is rejected (assert).
  void add(double value);

  /// Adds `count` copies of `value`.
  void add(double value, std::size_t count);

  /// Total number of samples, including infinite ones.
  std::size_t count() const noexcept { return finite_.size() + infinite_; }

  /// Number of infinite samples.
  std::size_t infinite_count() const noexcept { return infinite_; }

  /// Empirical P[X <= x] (infinite samples count in the denominator).
  double cdf(double x) const;

  /// Empirical P[X > x].
  double ccdf(double x) const { return 1.0 - cdf(x); }

  /// Empirical q-quantile, q in [0, 1]. Returns +infinity when the
  /// quantile falls in the infinite mass. Requires count() > 0.
  double quantile(double q) const;

  /// Mean of the finite samples. Requires at least one finite sample.
  double finite_mean() const;

  /// Minimum / maximum over finite samples (requires one finite sample).
  double finite_min() const;
  double finite_max() const;

  /// Evaluates the CDF on every point of `grid`.
  std::vector<double> cdf_on_grid(const std::vector<double>& grid) const;

  /// Evaluates the CCDF on every point of `grid`.
  std::vector<double> ccdf_on_grid(const std::vector<double>& grid) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> finite_;
  // Double-checked: queries take the fast path on the acquire load and
  // only contend on sort_mutex_ while the first sort is pending.
  mutable std::atomic<bool> sorted_{true};
  mutable std::mutex sort_mutex_;
  std::size_t infinite_ = 0;
};

}  // namespace odtn
