#include "stats/log_grid.hpp"

#include <cassert>
#include <cmath>

namespace odtn {

std::vector<double> make_log_grid(double lo, double hi, std::size_t points) {
  assert(0.0 < lo && lo < hi && points >= 2);
  std::vector<double> grid(points);
  const double llo = std::log(lo), lhi = std::log(hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(points - 1);
    grid[i] = std::exp(llo + f * (lhi - llo));
  }
  grid.front() = lo;
  grid.back() = hi;
  return grid;
}

std::vector<double> make_linear_grid(double lo, double hi, std::size_t points) {
  assert(lo < hi && points >= 2);
  std::vector<double> grid(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(points - 1);
    grid[i] = lo + f * (hi - lo);
  }
  // Pin both endpoints exactly (the log grid does the same): callers
  // key tables on grid.front()/grid.back() matching lo/hi bit-for-bit.
  grid.front() = lo;
  grid.back() = hi;
  return grid;
}

}  // namespace odtn
