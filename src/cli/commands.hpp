// The odtn command-line tool, as a library so tests can drive it.
//
//   odtn generate --preset <name> [--seed N] --out <file>
//   odtn stats <trace>
//   odtn validate <trace> [--strict]
//   odtn cdf <trace> [--max-hops K] [--eps E] [--grid-lo D --grid-hi D]
//   odtn filter <trace> --out <file> [--min-duration D] [--keep-prob P
//       [--seed N]] [--window-lo D --window-hi D] [--internal N]
//   odtn route <trace> --src U --dst V [--time T]
//   odtn help
//
// Every command prints to stdout and returns a process exit code;
// user errors (CliError) are reported on stderr with code 2.
#pragma once

#include <string>
#include <vector>

namespace odtn::cli {

/// Runs one CLI invocation (argv without the program name).
/// Returns the process exit code: 0 success, 2 usage error.
int run_cli(std::vector<std::string> args);

/// The `help` text.
std::string usage_text();

}  // namespace odtn::cli
