#include "cli/serve.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/query_engine.hpp"
#include "stats/log_grid.hpp"
#include "trace/live_ingest.hpp"
#include "trace/snapshot.hpp"
#include "trace/trace_io.hpp"
#include "util/line_reader.hpp"
#include "util/thread_pool.hpp"
#include "util/time_format.hpp"

namespace odtn::cli {
namespace {

std::uint64_t micros_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

NodeId parse_node(const QueryEngine& engine, const std::string& text,
                  const char* what) {
  const unsigned long id = parse_count(text, what);
  if (id >= engine.graph().num_nodes())
    throw CliError(std::string(what) + " out of range (trace has " +
                   std::to_string(engine.graph().num_nodes()) + " nodes)");
  return static_cast<NodeId>(id);
}

void append_f64(std::string& out, const char* prefix, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%.17g", prefix, v);
  out += buf;
}

/// Executes one query line and renders its one-line response. Runs on a
/// pool worker during batch execution, so everything here is local;
/// the QueryEngine's cache and fold paths are thread-safe.
std::string execute_query(QueryEngine& engine, const std::string& line) {
  std::istringstream in(line);
  std::string kind;
  in >> kind;
  std::vector<std::string> rest;
  for (std::string tok; in >> tok;) rest.push_back(tok);
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

  try {
    const auto t0 = std::chrono::steady_clock::now();
    if (kind == "cdf") {
      if (rest.size() != 1 && rest.size() != 3)
        throw CliError("cdf expects: cdf <src> [t_lo t_hi]");
      const NodeId src = parse_node(engine, rest[0], "src");
      const double lo = rest.size() == 3 ? parse_double(rest[1], "t_lo") : kNaN;
      const double hi = rest.size() == 3 ? parse_double(rest[2], "t_hi") : kNaN;
      const DelayCdfResult r = engine.source_cdf(src, lo, hi);
      std::string out;
      char head[128];
      std::snprintf(head, sizeof head, "cdf src=%lu hit=%d us=%llu n=%zu",
                    static_cast<unsigned long>(src),
                    r.stats.cache_hits > 0 ? 1 : 0,
                    static_cast<unsigned long long>(micros_since(t0)),
                    r.cdf_unbounded.size());
      out = head;
      for (const double v : r.cdf_unbounded) append_f64(out, " ", v);
      return out;
    }
    if (kind == "diameter") {
      if (rest.size() != 1 && rest.size() != 3)
        throw CliError("diameter expects: diameter <eps> [t_lo t_hi]");
      const double eps = parse_double(rest[0], "eps");
      if (!(eps > 0.0 && eps < 1.0))
        throw CliError("eps must lie in (0, 1)");
      const double lo = rest.size() == 3 ? parse_double(rest[1], "t_lo") : kNaN;
      const double hi = rest.size() == 3 ? parse_double(rest[2], "t_hi") : kNaN;
      const DelayCdfResult r = engine.all_pairs(lo, hi);
      std::string out = "diameter";
      append_f64(out, " eps=", eps);
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    " value=%d fixpoint=%d converged=%d hits=%llu "
                    "misses=%llu evictions=%llu us=%llu",
                    r.diameter(eps), r.fixpoint_hops, r.converged ? 1 : 0,
                    static_cast<unsigned long long>(r.stats.cache_hits),
                    static_cast<unsigned long long>(r.stats.cache_misses),
                    static_cast<unsigned long long>(r.stats.cache_evictions),
                    static_cast<unsigned long long>(micros_since(t0)));
      return out + buf;
    }
    if (kind == "reach") {
      if (rest.size() != 2) throw CliError("reach expects: reach <src> <t>");
      const NodeId src = parse_node(engine, rest[0], "src");
      const double t = parse_double(rest[1], "t");
      const std::size_t count = engine.reachable_count(src, t);
      std::string out;
      char head[64];
      std::snprintf(head, sizeof head, "reach src=%lu",
                    static_cast<unsigned long>(src));
      out = head;
      append_f64(out, " t=", t);
      std::snprintf(head, sizeof head, " count=%zu us=%llu", count,
                    static_cast<unsigned long long>(micros_since(t0)));
      return out + head;
    }
    if (kind == "journey") {
      if (rest.size() != 2)
        throw CliError("journey expects: journey <src> <dst>");
      const NodeId src = parse_node(engine, rest[0], "src");
      const NodeId dst = parse_node(engine, rest[1], "dst");
      const JourneyOptima j = engine.journey(src, dst);
      std::string out;
      char head[96];
      std::snprintf(head, sizeof head,
                    "journey src=%lu dst=%lu reachable=%d hops=%d",
                    static_cast<unsigned long>(src),
                    static_cast<unsigned long>(dst), j.reachable() ? 1 : 0,
                    j.shortest_hops);
      out = head;
      append_f64(out, " duration=", j.fastest_duration);
      append_f64(out, " departure=", j.fastest_departure);
      std::snprintf(head, sizeof head, " us=%llu",
                    static_cast<unsigned long long>(micros_since(t0)));
      return out + head;
    }
    if (kind == "stats") {
      if (!rest.empty()) throw CliError("stats takes no arguments");
      const LruCacheStats s = engine.cache_stats();
      char buf[192];
      std::snprintf(buf, sizeof buf,
                    "stats hits=%llu misses=%llu evictions=%llu "
                    "inserts=%llu bytes=%zu entries=%zu",
                    static_cast<unsigned long long>(s.hits),
                    static_cast<unsigned long long>(s.misses),
                    static_cast<unsigned long long>(s.evictions),
                    static_cast<unsigned long long>(s.inserts), s.bytes,
                    s.entries);
      return buf;
    }
    throw CliError("unknown query '" + kind +
                   "' (cdf, diameter, reach, journey, stats, ingest, quit)");
  } catch (const std::exception& e) {
    return std::string("error ") + e.what();
  }
}

/// Executes one `ingest <u> <v> <begin> <end>` line. Runs alone on the
/// protocol thread -- never inside a concurrent batch -- because it
/// mutates the served graph.
std::string execute_ingest(QueryEngine& engine, const std::string& line) {
  std::istringstream in(line);
  std::string kind;
  in >> kind;
  std::vector<std::string> rest;
  for (std::string tok; in >> tok;) rest.push_back(tok);
  try {
    const auto t0 = std::chrono::steady_clock::now();
    if (rest.size() != 4)
      throw CliError("ingest expects: ingest <u> <v> <begin> <end>");
    const Contact c{
        static_cast<NodeId>(parse_count(rest[0], "u")),
        static_cast<NodeId>(parse_count(rest[1], "v")),
        parse_double(rest[2], "begin"), parse_double(rest[3], "end")};
    const std::uint64_t epoch = engine.ingest(std::span<const Contact>(&c, 1));
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "ingest ok epoch=%llu contacts=%zu us=%llu",
                  static_cast<unsigned long long>(epoch),
                  engine.graph().num_contacts(),
                  static_cast<unsigned long long>(micros_since(t0)));
    return buf;
  } catch (const std::exception& e) {
    return std::string("error ") + e.what();
  }
}

/// Reads query lines from `in`, executing each batch (delimited by a
/// blank line, "quit" or EOF) concurrently on the shared pool and
/// writing responses to `out` in submission order. A final line without
/// a trailing newline is still a complete query: CarryLineReader::finish
/// delivers it before the EOF flush, so `printf 'cdf 0' | odtn serve`
/// answers rather than silently dropping the request. `ingest` lines
/// are sequencing points: the pending batch is answered on the
/// pre-ingest graph, then the append runs alone.
void serve_stream(QueryEngine& engine, std::FILE* in, std::FILE* out) {
  std::vector<std::string> batch;
  const auto flush_batch = [&] {
    if (batch.empty()) return;
    std::vector<std::string> responses(batch.size());
    if (batch.size() == 1) {
      responses[0] = execute_query(engine, batch[0]);
    } else {
      // Queries of one batch run concurrently; QueryEngine calls nest
      // their own parallel_for, which the pool runs inline (see
      // ThreadPool::parallel_for).
      shared_thread_pool().parallel_for(
          batch.size(), [&](std::size_t i, unsigned) {
            responses[i] = execute_query(engine, batch[i]);
          });
    }
    for (const std::string& r : responses) std::fprintf(out, "%s\n", r.c_str());
    std::fflush(out);
    batch.clear();
  };

  bool quit = false;
  const auto handle_line = [&](const char* begin, const char* end) {
    if (quit) return;
    if (begin != end && end[-1] == '\r') --end;
    std::string s(begin, end);
    if (s.empty()) {
      flush_batch();
    } else if (s == "quit") {
      quit = true;
    } else if (s.compare(0, 7, "ingest ") == 0 || s == "ingest") {
      flush_batch();
      std::fprintf(out, "%s\n", execute_ingest(engine, s).c_str());
      std::fflush(out);
    } else {
      batch.push_back(std::move(s));
    }
  };

  CarryLineReader lines;
  char chunk[1 << 16];
  while (!quit) {
    const std::size_t got = std::fread(chunk, 1, sizeof chunk, in);
    if (got == 0) break;
    lines.feed(chunk, got, handle_line);
  }
  lines.finish(handle_line);
  flush_batch();
}

int serve_socket(QueryEngine& engine, const std::string& path, bool once) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw CliError("--socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw CliError("cannot create unix socket");
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 4) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw CliError("cannot listen on '" + path + "': " + why);
  }
  std::fprintf(stderr, "odtn serve: listening on %s\n", path.c_str());

  int status = 0;
  for (;;) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      std::fprintf(stderr, "odtn serve: accept failed: %s\n",
                   std::strerror(errno));
      status = 1;
      break;
    }
    std::FILE* in = ::fdopen(conn, "r");
    std::FILE* out = ::fdopen(::dup(conn), "w");
    if (in && out) serve_stream(engine, in, out);
    if (in) std::fclose(in);  // closes conn
    if (out) std::fclose(out);
    if (once) break;
  }
  ::close(fd);
  ::unlink(path.c_str());
  return status;
}

}  // namespace

int cmd_snapshot(ArgList args) {
  const std::string path = required_positional(args, "trace file");
  const std::string out = required_positional(args, "output snapshot file");
  args.expect_empty();

  const TemporalGraph g = read_trace_file(path);
  try {
    write_snapshot_file(out, g);
    // Load it straight back: proves the written file passes the full
    // decoder validation before anyone depends on it.
    const TemporalGraph check = load_snapshot_file(out);
    if (check.num_contacts() != g.num_contacts() ||
        check.num_nodes() != g.num_nodes())
      throw SnapshotError("snapshot: verification reread disagrees");
  } catch (const SnapshotError& e) {
    throw CliError(e.what());
  }
  struct stat st{};
  const long long bytes =
      ::stat(out.c_str(), &st) == 0 ? static_cast<long long>(st.st_size) : -1;
  std::printf("snapshot: %zu nodes, %zu contacts, %s -> %s (%lld bytes, "
              "verified)\n",
              g.num_nodes(), g.num_contacts(),
              g.directed() ? "directed" : "undirected", out.c_str(), bytes);
  return 0;
}

int cmd_serve(ArgList args) {
  const auto snapshot = args.take_option("snapshot");
  const auto trace = args.take_option("trace");
  const auto input = args.take_option("input");
  const auto socket_path = args.take_option("socket");
  const bool once = args.take_flag("once");
  const auto max_hops = args.take_option("max-hops");
  const auto grid_lo = args.take_option("grid-lo");
  const auto grid_hi = args.take_option("grid-hi");
  const auto cache_mb = args.take_option("cache-mb");
  const auto cache_shards = args.take_option("cache-shards");
  args.expect_empty();

  if (snapshot.has_value() == trace.has_value())
    throw CliError("pass exactly one of --snapshot or --trace");
  if (input && socket_path)
    throw CliError("--input and --socket are mutually exclusive");
  if (once && !socket_path) throw CliError("--once requires --socket");

  TemporalGraph g = [&] {
    if (trace) return read_trace_file(*trace);
    try {
      return load_snapshot_file(*snapshot);
    } catch (const SnapshotError& e) {
      throw CliError(e.what());
    }
  }();
  if (g.num_contacts() == 0) throw CliError("trace has no contacts");

  QueryEngineOptions qo;
  const double lo = grid_lo ? parse_duration(*grid_lo, "grid-lo") : 2 * kMinute;
  const double hi = grid_hi ? parse_duration(*grid_hi, "grid-hi")
                            : std::max(g.duration(), 2 * lo);
  qo.grid = make_log_grid(lo, hi, 40);
  qo.max_hops = max_hops
                    ? static_cast<int>(parse_count(*max_hops, "max-hops"))
                    : 10;
  if (qo.max_hops < 1) throw CliError("--max-hops must be >= 1");
  qo.cache_bytes =
      static_cast<std::size_t>(cache_mb ? parse_count(*cache_mb, "cache-mb")
                                        : 256)
      << 20;
  qo.cache_shards =
      cache_shards ? parse_count(*cache_shards, "cache-shards") : 8;

  const bool view = g.is_view();
  QueryEngine engine(std::move(g), qo);
  std::fprintf(stderr,
               "odtn serve: %zu nodes, %zu contacts (%s), grid %zu points, "
               "max-hops %d, cache %zu MiB / %zu shards\n",
               engine.graph().num_nodes(), engine.graph().num_contacts(),
               view ? "snapshot view" : "parsed trace", qo.grid.size(),
               qo.max_hops, qo.cache_bytes >> 20, qo.cache_shards);

  if (socket_path) return serve_socket(engine, *socket_path, once);

  std::FILE* in = stdin;
  if (input) {
    in = std::fopen(input->c_str(), "r");
    if (!in) throw CliError("cannot open --input file '" + *input + "'");
  }
  serve_stream(engine, in, stdout);
  if (in != stdin) std::fclose(in);
  return 0;
}

int cmd_tail(ArgList args) {
  const std::string feed = required_positional(args, "feed file (or '-')");
  const bool follow = args.take_flag("follow");
  const auto poll_ms = args.take_option("poll-ms");
  const auto epoch_every = args.take_option("epoch");
  const auto max_hops = args.take_option("max-hops");
  const auto max_levels = args.take_option("max-levels");
  const auto grid_lo = args.take_option("grid-lo");
  const auto grid_hi = args.take_option("grid-hi");
  const auto eps_opt = args.take_option("eps");
  const auto window_lo = args.take_option("window-lo");
  const auto window_hi = args.take_option("window-hi");
  args.expect_empty();

  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  IncrementalCdfOptions io;
  // The feed's span is unknown up front (it is still being written), so
  // the default grid covers minutes-to-a-week rather than the trace
  // duration the batch commands use.
  const double lo = grid_lo ? parse_duration(*grid_lo, "grid-lo") : 2 * kMinute;
  const double hi = grid_hi ? parse_duration(*grid_hi, "grid-hi")
                            : std::max(kWeek, 2 * lo);
  if (!(lo > 0.0 && hi > lo)) throw CliError("need 0 < grid-lo < grid-hi");
  io.grid = make_log_grid(lo, hi, 40);
  io.max_hops =
      max_hops ? static_cast<int>(parse_count(*max_hops, "max-hops")) : 10;
  if (io.max_hops < 1) throw CliError("--max-hops must be >= 1");
  io.max_levels =
      max_levels ? static_cast<int>(parse_count(*max_levels, "max-levels"))
                 : 64;
  if (io.max_levels < 1) throw CliError("--max-levels must be >= 1");
  io.t_lo = window_lo ? parse_double(*window_lo, "window-lo") : kNaN;
  io.t_hi = window_hi ? parse_double(*window_hi, "window-hi") : kNaN;
  const double eps = eps_opt ? parse_double(*eps_opt, "eps") : 0.05;
  if (!(eps > 0.0 && eps < 1.0)) throw CliError("eps must lie in (0, 1)");
  const std::size_t batch_contacts =
      epoch_every ? parse_count(*epoch_every, "epoch") : 256;
  if (batch_contacts < 1) throw CliError("--epoch must be >= 1");

  LiveIngestSession session(io);
  LiveTailReader reader(feed, follow,
                        poll_ms ? static_cast<int>(parse_count(*poll_ms,
                                                               "poll-ms"))
                                : 200);

  const auto emit_row = [&](std::uint64_t epoch) {
    const auto t0 = std::chrono::steady_clock::now();
    IncrementalAllPairsEngine& eng = *session.engine();
    const DelayCdfResult r = eng.all_pairs();
    std::string row;
    char head[256];
    std::snprintf(head, sizeof head,
                  "epoch=%llu contacts=%zu fixpoint=%d converged=%d "
                  "diameter=%d",
                  static_cast<unsigned long long>(epoch),
                  eng.graph().num_contacts(), r.fixpoint_hops,
                  r.converged ? 1 : 0, r.diameter(eps));
    row = head;
    append_f64(row, " watermark=", eng.watermark());
    append_f64(row, " reach=",
               r.cdf_unbounded.empty() ? 0.0 : r.cdf_unbounded.back());
    std::snprintf(head, sizeof head, " us=%llu",
                  static_cast<unsigned long long>(micros_since(t0)));
    row += head;
    for (const double v : r.cdf_unbounded) append_f64(row, " ", v);
    std::printf("%s\n", row.c_str());
    std::fflush(stdout);
  };

  std::uint64_t last_epoch = 0;
  bool emitted_any = false;
  char chunk[1 << 16];
  for (;;) {
    const std::size_t got = reader.read_chunk(chunk, sizeof chunk);
    if (got == 0) break;
    session.feed(chunk, got);
    if (session.header_complete() && session.pending() >= batch_contacts) {
      const std::uint64_t e = session.commit_epoch();
      if (e != last_epoch) {
        last_epoch = e;
        emit_row(e);
        emitted_any = true;
      }
    }
  }
  session.flush();
  if (!session.header_complete())
    throw CliError("feed ended before the '# odtn-trace v1' / '# nodes' "
                   "headers");
  const std::uint64_t e = session.commit_epoch();
  if (e != last_epoch || !emitted_any) emit_row(e);
  const LiveIngestStats& st = session.stats();
  std::fprintf(stderr,
               "odtn tail: %llu epochs, %llu contacts ingested, %llu "
               "below-watermark records dropped\n",
               static_cast<unsigned long long>(st.epochs),
               static_cast<unsigned long long>(st.contacts_ingested),
               static_cast<unsigned long long>(st.below_watermark));
  return 0;
}

}  // namespace odtn::cli
