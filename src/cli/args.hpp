// Minimal command-line argument handling for the odtn CLI.
//
// Kept deliberately small: `--name value` options, `--name` boolean
// flags, and ordered positionals, consumed destructively so commands can
// verify nothing unknown was passed. Errors are reported as
// CliError exceptions carrying a user-facing message.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace odtn::cli {

/// User-facing command-line error (bad flag, malformed number, ...).
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Destructive view over a command's arguments.
class ArgList {
 public:
  explicit ArgList(std::vector<std::string> args) : args_(std::move(args)) {}

  /// Consumes `--name value`; std::nullopt when absent. Throws CliError
  /// when the option is present but the value is missing.
  std::optional<std::string> take_option(std::string_view name);

  /// Consumes a boolean `--name`; false when absent.
  bool take_flag(std::string_view name);

  /// Consumes the next positional (non `--`) argument.
  std::optional<std::string> take_positional();

  /// Throws CliError listing anything not consumed.
  void expect_empty() const;

  bool empty() const noexcept { return args_.empty(); }

 private:
  std::vector<std::string> args_;
};

/// Next positional / `--name value`, throwing a user-facing CliError
/// naming the missing argument when absent.
std::string required_positional(ArgList& args, std::string_view what);
std::string required_option(ArgList& args, std::string_view name);

/// Strict numeric parsing with user-facing errors.
double parse_double(const std::string& text, std::string_view what);
long parse_long(const std::string& text, std::string_view what);

/// parse_long for values stored unsigned (counts, node ids, seeds):
/// rejects negatives with a clear CliError instead of letting a later
/// static_cast silently wrap them into huge values.
unsigned long parse_count(const std::string& text, std::string_view what);

/// Parses durations like "90", "10min", "6h", "2d", "1wk" into seconds.
double parse_duration(const std::string& text, std::string_view what);

}  // namespace odtn::cli
