// The snapshot/serve commands of the odtn CLI (split out of
// commands.cpp: they pull in the snapshot codec, the query engine and
// POSIX socket plumbing that no other command needs).
//
//   odtn snapshot <trace> <out.odtns>   parse + index once, write the
//                                       mmap-able binary snapshot
//   odtn serve --snapshot <file>        answer line-delimited query
//                                       batches over stdin, a file
//                                       (--input) or a unix socket
//                                       (--socket PATH [--once])
//   odtn tail <feed>                    live-ingest a growing trace feed
//                                       ('-' = stdin; --follow polls a
//                                       file like tail -f) and print a
//                                       diameter/CDF row per committed
//                                       epoch (--epoch N contacts)
//
// Serve protocol (one query per line; a blank line or EOF flushes the
// pending batch; batches run concurrently on the thread pool; a final
// line without a trailing newline is still a complete query):
//   cdf <src> [t_lo t_hi]      per-source delay CDF (unbounded hops)
//   diameter <eps> [t_lo t_hi] all-pairs (1-eps)-diameter
//   reach <src> <t>            nodes reachable from src at time t
//   journey <src> <dst>        fastest/shortest journey optima
//   stats                      cache counters
//   ingest <u> <v> <b> <e>     append one contact to the served graph
//                              (canonical order against history; runs
//                              alone: the pending batch is answered on
//                              the pre-ingest graph first, and the
//                              graph epoch in every cache key makes
//                              pre-ingest partials unreachable)
//   quit                       finish after the current batch
// Every response is one line carrying `us=<latency>` plus, for cached
// query kinds, `hit=`/`hits=` counters; numeric payloads print with
// %.17g so repeated batches can be diffed bit-exactly (strip us= first).
#pragma once

#include "cli/args.hpp"

namespace odtn::cli {

int cmd_snapshot(ArgList args);
int cmd_serve(ArgList args);
int cmd_tail(ArgList args);

}  // namespace odtn::cli
