#include "cli/commands.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <optional>

#include "cli/args.hpp"
#include "cli/serve.hpp"
#include "core/diameter.hpp"
#include "core/partition.hpp"
#include "core/path_enumeration.hpp"
#include "core/reachability.hpp"
#include "random/phase_transition.hpp"
#include "random/theory.hpp"
#include "stats/empirical.hpp"
#include "stats/log_grid.hpp"
#include "trace/datasets.hpp"
#include "trace/imports.hpp"
#include "trace/trace_io.hpp"
#include "trace/transforms.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

namespace odtn::cli {
namespace {

/// Parses `--threads N` (0 = hardware concurrency, the default).
unsigned take_threads(ArgList& args) {
  const auto threads = args.take_option("threads");
  if (!threads) return 0;
  const long value = parse_long(*threads, "threads");
  if (value < 0) throw CliError("--threads must be >= 0");
  return static_cast<unsigned>(value);
}

int cmd_generate(ArgList args) {
  const std::string preset_name = required_option(args, "preset");
  const std::string out = required_option(args, "out");
  const auto seed = args.take_option("seed");
  args.expect_empty();

  std::optional<DatasetPreset> preset;
  for (auto& d : all_datasets()) {
    std::string lower = d.spec.name;
    // tolower on a plain char is UB for negative (non-ASCII) bytes;
    // widen through unsigned char per the cctype contract.
    for (char& c : lower)
      c = static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    if (lower == preset_name || d.spec.name == preset_name) preset = d;
  }
  if (!preset)
    throw CliError("unknown preset '" + preset_name +
                   "' (try infocom05, infocom06, hong-kong, realitymining)");
  if (seed) preset->seed = parse_count(*seed, "seed");
  const auto trace = preset->generate();
  write_trace_file(out, trace.graph);
  std::printf("wrote %s: %zu nodes (%zu experimental), %zu contacts, %s\n",
              out.c_str(), trace.graph.num_nodes(), trace.num_internal,
              trace.graph.num_contacts(),
              format_duration(trace.graph.duration()).c_str());
  return 0;
}

int cmd_stats(ArgList args) {
  const std::string path = required_positional(args, "trace file");
  args.expect_empty();
  const TemporalGraph g = read_trace_file(path);

  EmpiricalDistribution durations;
  for (double d : g.contact_durations()) durations.add(d);

  std::printf("trace:            %s\n", path.c_str());
  std::printf("nodes:            %zu\n", g.num_nodes());
  std::printf("contacts:         %zu\n", g.num_contacts());
  std::printf("directed:         %s\n", g.directed() ? "yes" : "no");
  std::printf("span:             %s (from %s to %s)\n",
              format_duration(g.duration()).c_str(),
              format_timestamp(g.start_time()).c_str(),
              format_timestamp(g.end_time()).c_str());
  std::printf("contact rate:     %.2f contacts/node/day\n",
              g.contact_rate(kDay));
  std::printf("connected pairs:  %zu\n", g.num_connected_pairs());
  if (durations.count() > 0) {
    std::printf("duration median:  %s\n",
                format_duration(durations.quantile(0.5)).c_str());
    std::printf("duration p95:     %s\n",
                format_duration(durations.quantile(0.95)).c_str());
    std::printf("duration max:     %s\n",
                format_duration(durations.finite_max()).c_str());
  }
  return 0;
}

int cmd_cdf(ArgList args) {
  const std::string path = required_positional(args, "trace file");
  const auto max_hops = args.take_option("max-hops");
  const auto eps = args.take_option("eps");
  const auto grid_lo = args.take_option("grid-lo");
  const auto grid_hi = args.take_option("grid-hi");
  const auto daytime = args.take_option("daytime");
  const auto shards = args.take_option("shards");
  const auto shard_policy = args.take_option("shard-policy");
  const auto batch_size = args.take_option("batch-size");
  const unsigned num_threads = take_threads(args);
  args.expect_empty();

  const TemporalGraph g = read_trace_file(path);
  if (g.num_contacts() == 0) throw CliError("trace has no contacts");

  DelayCdfOptions opt;
  if (daytime) {
    // "--daytime 9-18": message creation restricted to those hours.
    const auto dash = daytime->find('-');
    if (dash == std::string::npos)
      throw CliError("--daytime expects <hour>-<hour>, e.g. 9-18");
    const double lo_h = parse_double(daytime->substr(0, dash), "daytime");
    const double hi_h = parse_double(daytime->substr(dash + 1), "daytime");
    if (!(0.0 <= lo_h && lo_h < hi_h && hi_h <= 24.0))
      throw CliError("--daytime hours must satisfy 0 <= lo < hi <= 24");
    opt.windows =
        daily_time_windows(g.start_time(), g.end_time(), lo_h, hi_h);
    if (opt.windows.empty())
      throw CliError("--daytime window never intersects the trace");
  }
  const double lo =
      grid_lo ? parse_duration(*grid_lo, "grid-lo") : 2 * kMinute;
  const double hi = grid_hi ? parse_duration(*grid_hi, "grid-hi")
                            : std::max(g.duration(), 2 * lo);
  opt.grid = make_log_grid(lo, hi, 40);
  opt.max_hops =
      max_hops ? static_cast<int>(parse_long(*max_hops, "max-hops")) : 10;
  if (opt.max_hops < 1) throw CliError("--max-hops must be >= 1");
  opt.num_threads = num_threads;
  if (shards) opt.sharding.num_shards = parse_count(*shards, "shards");
  if (shard_policy) {
    const auto policy = parse_shard_policy(*shard_policy);
    if (!policy)
      throw CliError("unknown --shard-policy '" + *shard_policy +
                     "' (contiguous, block-cyclic or degree-balanced)");
    opt.sharding.policy = *policy;
  }
  if (batch_size) {
    // parse_count rejects negatives; 0 would silently mean "no batching"
    // under the driver's clamp, so refuse it explicitly. Oversized
    // values clamp to the source count (a note, not an error -- "batch
    // everything" is a reasonable ask on any trace).
    unsigned long b = parse_count(*batch_size, "batch-size");
    if (b == 0) throw CliError("--batch-size must be >= 1");
    const std::size_t num_sources = g.num_nodes();
    if (b > num_sources) {
      std::fprintf(stderr,
                   "odtn: note: --batch-size %lu exceeds the %zu sources; "
                   "clamping\n",
                   b, num_sources);
      b = num_sources;
    }
    opt.source_batch = static_cast<int>(b);
  }
  const double epsilon = eps ? parse_double(*eps, "eps") : 0.01;

  const auto result = compute_delay_cdf(g, opt);
  // Hop columns are driven by what the engine actually produced, never
  // past cdf_by_hops.size() -- a result truncated below the requested
  // budget must not turn into an out-of-range read.
  const int hop_columns =
      std::min<int>(opt.max_hops, static_cast<int>(result.cdf_by_hops.size()));
  std::printf("%-12s", "delay");
  for (int k = 1; k <= hop_columns; k += (k < 4 ? 1 : 2))
    std::printf(" %6d", k);
  std::printf(" %6s\n", "inf");
  for (std::size_t j = 0; j < result.grid.size(); j += 3) {
    std::printf("%-12s", format_duration(result.grid[j]).c_str());
    for (int k = 1; k <= hop_columns; k += (k < 4 ? 1 : 2))
      std::printf(" %6.4f", result.cdf_by_hops[k - 1][j]);
    std::printf(" %6.4f\n", result.cdf_unbounded[j]);
  }
  const int diameter = result.diameter(epsilon);
  if (diameter == DelayCdfResult::kUnknownDiameter)
    std::printf("\ndiameter (%.0f%% of flooding at every scale): "
                "undetermined (> %d hops)\n",
                100.0 * (1.0 - epsilon), opt.max_hops);
  else
    std::printf("\ndiameter (%.0f%% of flooding at every scale): %d hops\n",
                100.0 * (1.0 - epsilon), diameter);
  std::printf("max hops on any delay-optimal path:          %d\n",
              result.fixpoint_hops);
  if (!result.converged)
    std::fprintf(stderr,
                 "odtn: warning: hop-level DP did not converge within %d "
                 "levels; the max-hops figure is a lower bound and the "
                 "diameter is undetermined beyond the evaluated budgets\n",
                 opt.max_levels);
  std::printf(
      "engine: %llu contact extensions, %llu pairs kept, %llu dominated, "
      "%llu frontier copies avoided\n",
      static_cast<unsigned long long>(result.stats.contacts_examined),
      static_cast<unsigned long long>(result.stats.pairs_inserted),
      static_cast<unsigned long long>(result.stats.pairs_dominated),
      static_cast<unsigned long long>(result.stats.frontier_copies_avoided));
  std::printf(
      "cdf:    %llu pairs integrated, %llu workspace allocations, "
      "%llu reuses\n",
      static_cast<unsigned long long>(result.stats.cdf_pairs_integrated),
      static_cast<unsigned long long>(result.stats.workspace_allocations),
      static_cast<unsigned long long>(result.stats.workspace_reuses));
  if (result.stats.merge_batches > 0)
    std::printf(
        "pool:   %llu merge batches, %llu pairs peak, %llu arena bytes "
        "peak\n",
        static_cast<unsigned long long>(result.stats.merge_batches),
        static_cast<unsigned long long>(result.stats.pairs_peak),
        static_cast<unsigned long long>(result.stats.arena_bytes_peak));
  if (opt.sharding.num_shards > 0)
    std::printf("shard:  %zu shard(s), %s policy\n",
                opt.sharding.num_shards,
                shard_policy_name(opt.sharding.policy));
  if (result.stats.batch_blocks > 0)
    std::printf(
        "batch:  %llu block(s), %llu index walks saved, %.1f%% lane "
        "occupancy\n",
        static_cast<unsigned long long>(result.stats.batch_blocks),
        static_cast<unsigned long long>(result.stats.index_walks_saved),
        result.stats.batch_lane_slots > 0
            ? 100.0 * static_cast<double>(result.stats.batch_lane_steps) /
                  static_cast<double>(result.stats.batch_lane_slots)
            : 0.0);
  return 0;
}

int cmd_validate(ArgList args) {
  // Ingestion diagnostics: lenient parse + canonicalization cross-check
  // by default, so one run reports every defect and normalization the
  // trace would need; --strict stops at the first defect instead.
  const std::string path = required_positional(args, "trace file");
  const bool strict = args.take_flag("strict");
  args.expect_empty();

  ParseOptions opt;
  opt.mode = strict ? ParseMode::kStrict : ParseMode::kLenient;
  opt.canonicalize = true;
  ParseReport report;
  const TemporalGraph g = read_trace_file(path, opt, &report);
  std::printf("trace:        %s\n", path.c_str());
  std::printf("%s", report.summary().c_str());
  std::printf("span:         %s (from %s to %s)\n",
              format_duration(g.duration()).c_str(),
              format_timestamp(g.start_time()).c_str(),
              format_timestamp(g.end_time()).c_str());
  if (report.skipped == 0) {
    std::printf("verdict:      OK\n");
    return 0;
  }
  std::printf("verdict:      %zu defective record(s) skipped\n",
              report.skipped);
  return 1;
}

int cmd_filter(ArgList args) {
  const std::string path = required_positional(args, "trace file");
  const std::string out = required_option(args, "out");
  const auto min_duration = args.take_option("min-duration");
  const auto keep_prob = args.take_option("keep-prob");
  const auto seed = args.take_option("seed");
  const auto window_lo = args.take_option("window-lo");
  const auto window_hi = args.take_option("window-hi");
  const auto internal = args.take_option("internal");
  args.expect_empty();

  TemporalGraph g = read_trace_file(path);
  if (window_lo || window_hi) {
    if (!window_lo || !window_hi)
      throw CliError("--window-lo and --window-hi must be given together");
    g = restrict_time_window(g, parse_duration(*window_lo, "window-lo"),
                             parse_duration(*window_hi, "window-hi"));
  }
  if (internal)
    g = keep_internal_contacts(g, parse_count(*internal, "internal"));
  if (min_duration)
    g = remove_contacts_shorter_than(
        g, parse_duration(*min_duration, "min-duration"));
  if (keep_prob) {
    const double keep = parse_double(*keep_prob, "keep-prob");
    if (keep < 0.0 || keep > 1.0)
      throw CliError("--keep-prob must be in [0, 1]");
    Rng rng(seed ? parse_count(*seed, "seed") : 1);
    g = remove_contacts_random(g, 1.0 - keep, rng);
  }
  write_trace_file(out, g);
  std::printf("wrote %s: %zu nodes, %zu contacts\n", out.c_str(),
              g.num_nodes(), g.num_contacts());
  return 0;
}

int cmd_import(ArgList args) {
  const std::string path = required_positional(args, "input file");
  const std::string out = required_option(args, "out");
  const std::string format = required_option(args, "format");
  args.expect_empty();
  TemporalGraph g(0, {});
  if (format == "crawdad") {
    g = import_crawdad_contacts_file(path);
  } else if (format == "one") {
    g = import_one_events_file(path);
  } else {
    throw CliError("unknown format '" + format + "' (crawdad or one)");
  }
  write_trace_file(out, g);
  std::printf("imported %s (%s): %zu nodes, %zu contacts -> %s\n",
              path.c_str(), format.c_str(), g.num_nodes(), g.num_contacts(),
              out.c_str());
  return 0;
}

int cmd_mc(ArgList args) {
  // Monte-Carlo phase-transition probe on the random temporal network
  // (§3.2), driven by the deterministic parallel harness: the estimate
  // depends on --seed and --trials only, never on --threads.
  const std::string contact_case = required_option(args, "case");
  const std::size_t n = parse_count(required_option(args, "n"), "n");
  const double lambda = parse_double(required_option(args, "lambda"), "lambda");
  const auto tau_opt = args.take_option("tau");
  const auto gamma_opt = args.take_option("gamma");
  const auto trials_opt = args.take_option("trials");
  const auto seed_opt = args.take_option("seed");
  const unsigned num_threads = take_threads(args);
  args.expect_empty();

  ContactCase mode;
  if (contact_case == "short") {
    mode = ContactCase::kShort;
  } else if (contact_case == "long") {
    mode = ContactCase::kLong;
  } else {
    throw CliError("--case must be 'short' or 'long'");
  }
  if (n < 2) throw CliError("--n must be >= 2");
  if (lambda <= 0.0) throw CliError("--lambda must be > 0");

  // Defaults: probe at the analytic optimum of the phase boundary.
  const double gamma =
      gamma_opt ? parse_double(*gamma_opt, "gamma")
                : (mode == ContactCase::kShort ? gamma_star_short(lambda)
                                               : gamma_star_long(lambda));
  const double tau =
      tau_opt ? parse_double(*tau_opt, "tau")
              : (mode == ContactCase::kShort ? delay_constant_short(lambda)
                                             : delay_constant_long(lambda));
  const std::size_t trials =
      trials_opt ? parse_count(*trials_opt, "trials") : 200;
  if (trials == 0) throw CliError("--trials must be >= 1");
  const std::uint64_t seed = seed_opt ? parse_count(*seed_opt, "seed") : 1;

  const auto probe = probe_path_probability(n, lambda, tau, gamma, mode,
                                            trials, {seed, num_threads});
  std::printf("P[path within %.3f ln N slots, %.3f*t hops] = %.4f "
              "(%zu/%zu trials)\n",
              tau, gamma, probe.probability, probe.successes, trials);
  std::printf("harness: %llu trials over %u worker(s), %.1f ms, "
              "%.0f trials/s, utilization %.2f\n",
              static_cast<unsigned long long>(probe.mc.trials),
              probe.mc.workers, probe.mc.wall_ms,
              probe.mc.trials_per_second(), probe.mc.worker_utilization());
  return 0;
}

int cmd_route(ArgList args) {
  const std::string path = required_positional(args, "trace file");
  const auto src = static_cast<NodeId>(
      parse_count(required_option(args, "src"), "src"));
  const auto dst = static_cast<NodeId>(
      parse_count(required_option(args, "dst"), "dst"));
  const auto time = args.take_option("time");
  args.expect_empty();

  const TemporalGraph g = read_trace_file(path);
  if (src >= g.num_nodes() || dst >= g.num_nodes())
    throw CliError("node id out of range");

  const auto routes = enumerate_optimal_routes(g, src, dst);
  if (routes.empty()) {
    std::printf("no time-respecting path from %u to %u\n", src, dst);
    return 0;
  }
  std::printf("%zu delay-optimal route(s) from %u to %u:\n", routes.size(),
              src, dst);
  for (const auto& route : routes) {
    std::printf("  depart by %s, arrive at %s (%d hops):",
                format_timestamp(route.pair.ld).c_str(),
                format_timestamp(route.pair.ea).c_str(), route.hops());
    for (std::size_t idx : route.contact_indices) {
      const Contact& c = g.contacts()[idx];
      std::printf(" %u-%u", c.u, c.v);
    }
    std::printf("\n");
  }
  if (time) {
    const double t = parse_duration(*time, "time");
    SingleSourceEngine engine(g, src);
    engine.run_to_fixpoint();
    const double arrival = engine.frontier_view(dst).deliver_at(t);
    if (arrival < 1e300) {
      std::printf("message created at %s delivered at %s (delay %s)\n",
                  format_timestamp(t).c_str(),
                  format_timestamp(arrival).c_str(),
                  format_duration(arrival - t).c_str());
    } else {
      std::printf("message created at %s is never delivered\n",
                  format_timestamp(t).c_str());
    }
  }
  return 0;
}

}  // namespace

std::string usage_text() {
  return "odtn -- delay-optimal temporal paths & network diameter\n"
         "\n"
         "usage: odtn <command> [options]\n"
         "\n"
         "commands:\n"
         "  generate --preset <infocom05|infocom06|hong-kong|realitymining>\n"
         "           [--seed N] --out <file>    synthesize a Table-1 trace\n"
         "  stats <trace>                       contact statistics report\n"
         "  validate <trace> [--strict]         ingestion diagnostics: parse\n"
         "                                      report, canonicalization +\n"
         "                                      node-count cross-check\n"
         "  cdf <trace> [--max-hops K] [--eps E] [--daytime H-H]\n"
         "      [--grid-lo D --grid-hi D] [--threads W] [--shards S\n"
         "      [--shard-policy contiguous|block-cyclic|degree-balanced]]\n"
         "      [--batch-size B]                delay CDFs + diameter\n"
         "                                      (--batch-size B > 1 runs B\n"
         "                                      sources per lockstep block;\n"
         "                                      bit-identical results)\n"
         "  mc --case <short|long> --n N --lambda L [--tau T] [--gamma G]\n"
         "     [--trials K] [--seed S] [--threads W]\n"
         "                                      Monte-Carlo phase probe\n"
         "  filter <trace> --out <file> [--min-duration D]\n"
         "      [--keep-prob P [--seed N]] [--window-lo D --window-hi D]\n"
         "      [--internal N]                  Section-6 trace transforms\n"
         "  route <trace> --src U --dst V [--time T]\n"
         "                                      enumerate optimal routes\n"
         "  import <file> --format <crawdad|one> --out <trace>\n"
         "                                      convert published formats\n"
         "  snapshot <trace> <out.odtns>        write the mmap-able binary\n"
         "                                      snapshot (parse + index once)\n"
         "  serve --snapshot <file> | --trace <file>\n"
         "      [--input <file>] [--socket <path> [--once]] [--max-hops K]\n"
         "      [--grid-lo D --grid-hi D] [--cache-mb M] [--cache-shards S]\n"
         "                                      answer line-delimited query\n"
         "                                      batches (cdf, diameter,\n"
         "                                      reach, journey, stats,\n"
         "                                      ingest, quit)\n"
         "  tail <feed> [--follow [--poll-ms N]] [--epoch N] [--max-hops K]\n"
         "      [--max-levels L] [--grid-lo D --grid-hi D] [--eps E]\n"
         "      [--window-lo T --window-hi T]\n"
         "                                      live-ingest a growing trace\n"
         "                                      ('-' = stdin); one diameter/\n"
         "                                      CDF row per committed epoch\n"
         "  help                                this text\n"
         "\n"
         "durations accept suffixes: s, min, h, d, wk (e.g. --min-duration "
         "10min)\n";
}

int run_cli(std::vector<std::string> args) {
  try {
    if (args.empty()) {
      std::fputs(usage_text().c_str(), stdout);
      return 2;
    }
    const std::string command = args.front();
    ArgList rest(std::vector<std::string>(args.begin() + 1, args.end()));
    if (command == "generate") return cmd_generate(std::move(rest));
    if (command == "stats") return cmd_stats(std::move(rest));
    if (command == "validate") return cmd_validate(std::move(rest));
    if (command == "cdf") return cmd_cdf(std::move(rest));
    if (command == "filter") return cmd_filter(std::move(rest));
    if (command == "route") return cmd_route(std::move(rest));
    if (command == "mc") return cmd_mc(std::move(rest));
    if (command == "import") return cmd_import(std::move(rest));
    if (command == "snapshot") return cmd_snapshot(std::move(rest));
    if (command == "serve") return cmd_serve(std::move(rest));
    if (command == "tail") return cmd_tail(std::move(rest));
    if (command == "help" || command == "--help") {
      std::fputs(usage_text().c_str(), stdout);
      return 0;
    }
    throw CliError("unknown command '" + command + "' (see: odtn help)");
  } catch (const CliError& e) {
    std::fprintf(stderr, "odtn: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "odtn: %s\n", e.what());
    return 1;
  }
}

}  // namespace odtn::cli
