#include "cli/args.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/time_format.hpp"

namespace odtn::cli {

std::optional<std::string> ArgList::take_option(std::string_view name) {
  const std::string key = "--" + std::string(name);
  const auto it = std::find(args_.begin(), args_.end(), key);
  if (it == args_.end()) return std::nullopt;
  const auto value_it = it + 1;
  if (value_it == args_.end() || value_it->rfind("--", 0) == 0)
    throw CliError("option " + key + " requires a value");
  std::string value = *value_it;
  args_.erase(it, value_it + 1);
  return value;
}

bool ArgList::take_flag(std::string_view name) {
  const std::string key = "--" + std::string(name);
  const auto it = std::find(args_.begin(), args_.end(), key);
  if (it == args_.end()) return false;
  args_.erase(it);
  return true;
}

std::string required_positional(ArgList& args, std::string_view what) {
  auto value = args.take_positional();
  if (!value) throw CliError("missing " + std::string(what));
  return *value;
}

std::string required_option(ArgList& args, std::string_view name) {
  auto value = args.take_option(name);
  if (!value) throw CliError("missing required option --" + std::string(name));
  return *value;
}

std::optional<std::string> ArgList::take_positional() {
  const auto it = std::find_if(args_.begin(), args_.end(),
                               [](const std::string& a) {
                                 return a.rfind("--", 0) != 0;
                               });
  if (it == args_.end()) return std::nullopt;
  std::string value = *it;
  args_.erase(it);
  return value;
}

void ArgList::expect_empty() const {
  if (args_.empty()) return;
  std::string message = "unrecognized arguments:";
  for (const auto& a : args_) message += " " + a;
  throw CliError(message);
}

double parse_double(const std::string& text, std::string_view what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0')
    throw CliError("invalid " + std::string(what) + ": '" + text + "'");
  return value;
}

long parse_long(const std::string& text, std::string_view what) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0')
    throw CliError("invalid " + std::string(what) + ": '" + text + "'");
  return value;
}

unsigned long parse_count(const std::string& text, std::string_view what) {
  const long value = parse_long(text, what);
  if (value < 0)
    throw CliError("--" + std::string(what) + " must be >= 0, got " + text);
  return static_cast<unsigned long>(value);
}

double parse_duration(const std::string& text, std::string_view what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str())
    throw CliError("invalid " + std::string(what) + ": '" + text + "'");
  const std::string unit(end);
  if (unit.empty() || unit == "s") return value;
  if (unit == "min" || unit == "m") return value * kMinute;
  if (unit == "h") return value * kHour;
  if (unit == "d") return value * kDay;
  if (unit == "wk" || unit == "w") return value * kWeek;
  throw CliError("invalid " + std::string(what) + " unit: '" + unit +
                 "' (use s, min, h, d, wk)");
}

}  // namespace odtn::cli
