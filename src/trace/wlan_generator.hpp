// WLAN association-trace substrate.
//
// §5.1 of the paper: "We also made the same observations on ... other
// publicly available data sets, including traces from campus WLAN in
// Dartmouth [16] and UCSD [13]." In those data sets, devices associate
// with access points over time and two devices are considered in
// contact while associated with the SAME access point. This module
// generates such traces: devices run sessions at APs (with home-AP
// habits, AP popularity, and diurnal/weekly activity), and the contact
// trace is the pairwise co-association overlap. bench_ext_wlan runs the
// diameter analysis on Dartmouth-like and UCSD-like instances.
#pragma once

#include <cstdint>
#include <string>

#include "core/temporal_graph.hpp"
#include "trace/mobility_model.hpp"

namespace odtn {

/// Parameters of a campus WLAN association trace.
struct WlanTraceSpec {
  std::string name = "wlan";
  std::size_t num_devices = 100;
  std::size_t num_access_points = 40;
  double duration = 7.0 * 86400.0;

  /// Association sessions per device per day (before diurnal shaping).
  double sessions_per_day = 5.0;
  /// Lognormal session length.
  double session_mean = 45.0 * 60.0;
  double session_sigma = 1.0;

  /// Each device prefers a few "home" APs (dorm, office, library...).
  std::size_t home_aps = 3;
  /// Probability a session happens at a home AP (habits).
  double home_ap_bias = 0.65;
  /// Lognormal sigma of global AP popularity (cafeterias are hubs).
  double ap_popularity_sigma = 1.2;

  ActivityProfile profile = ActivityProfile::campus();
};

/// Generated WLAN trace: contacts are maximal co-association intervals.
struct WlanTrace {
  TemporalGraph graph;          ///< device-to-device contact trace
  std::size_t num_sessions = 0; ///< AP association sessions generated
};

/// Deterministically generates the trace described by `spec`.
WlanTrace generate_wlan_trace(const WlanTraceSpec& spec, std::uint64_t seed);

}  // namespace odtn
