// Live contact ingestion: glue between a growing byte feed and the
// incremental all-pairs engine.
//
// A live deployment watches contacts as they happen -- a tracer daemon
// appending to a file, a pipe from a radio logger, the serve socket --
// and wants the delay-CDF / diameter picture updated per batch without
// re-reading history. LiveTailReader produces the bytes (regular file
// with optional tail -f semantics, pipe, or stdin); LiveIngestSession
// pumps them through the StreamingTraceParser, sorts each drained batch
// into canonical order, drops records that sort before the engine
// watermark (history cannot be rewritten incrementally; the drop is
// counted, never silent), and commits the rest as one epoch of an
// IncrementalAllPairsEngine. `odtn tail` is a thin loop over these two
// classes; odtn_fuzz --live drives the same path differentially against
// cold recomputes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/incremental_engine.hpp"
#include "trace/trace_io.hpp"

namespace odtn {

/// Chunked reader over a live feed. "-" reads stdin; any other path is
/// opened read-only. In follow mode, end-of-file on a regular file is
/// treated as "no data yet": the reader sleeps poll_ms and retries, so
/// a file being appended to behaves like `tail -f`. Pipes already block
/// until data arrives, so their EOF (writer closed) always ends the
/// feed.
class LiveTailReader {
 public:
  /// Throws TraceError(kCannotOpen) when the path cannot be opened.
  LiveTailReader(const std::string& path, bool follow, int poll_ms);
  ~LiveTailReader();
  LiveTailReader(const LiveTailReader&) = delete;
  LiveTailReader& operator=(const LiveTailReader&) = delete;

  /// Reads up to `n` bytes into `buf`. Returns 0 only when the feed is
  /// finished (EOF and not following, or the pipe writer closed).
  /// Throws TraceError(kIoError) on read failure.
  std::size_t read_chunk(char* buf, std::size_t n);

 private:
  int fd_ = -1;
  bool owns_fd_ = false;
  bool follow_ = false;
  bool regular_file_ = false;
  int poll_ms_ = 200;
  std::string path_;
};

/// What the session has accepted, committed and refused so far.
struct LiveIngestStats {
  std::uint64_t epochs = 0;             ///< committed append batches
  std::uint64_t contacts_ingested = 0;  ///< contacts now in the engine
  std::uint64_t below_watermark = 0;    ///< records dropped as too old
};

/// Parser-to-engine session. feed() bytes in any chunking; when enough
/// contacts are pending (or the feed pauses), commit_epoch() advances
/// the engine by exactly one epoch. The engine is created lazily at the
/// first commit, once the feed's '# nodes' / '# directed' headers are
/// known; its delay grid comes from the options given here and stays
/// fixed for the session.
class LiveIngestSession {
 public:
  LiveIngestSession(IncrementalCdfOptions options, ParseOptions parse = {});

  /// Tokenizes one chunk (StreamingTraceParser semantics; throws
  /// TraceError per the parse options).
  void feed(const char* data, std::size_t n);

  /// Delivers a final line that arrived without a trailing newline.
  void flush();

  /// True once the feed's headers are complete (commit_epoch works).
  bool header_complete() const { return parser_.header_complete(); }

  /// Contacts parsed but not yet committed to the engine.
  std::size_t pending() const {
    return pending_.size() + parser_.pending_contacts();
  }

  /// Sorts every pending contact into canonical order, drops the ones
  /// below the engine watermark (counted in stats), appends the rest as
  /// one epoch. Returns the engine epoch afterwards (unchanged when
  /// nothing was appended). Throws std::logic_error before the headers
  /// are complete.
  std::uint64_t commit_epoch();

  /// The engine; valid after the first commit_epoch() (nullptr before).
  IncrementalAllPairsEngine* engine() { return engine_ ? &*engine_ : nullptr; }
  const IncrementalAllPairsEngine* engine() const {
    return engine_ ? &*engine_ : nullptr;
  }

  const LiveIngestStats& stats() const { return stats_; }
  ParseReport report() const { return parser_.report(); }

 private:
  IncrementalCdfOptions options_;
  StreamingTraceParser parser_;
  std::optional<IncrementalAllPairsEngine> engine_;
  std::vector<Contact> pending_;
  LiveIngestStats stats_;
};

}  // namespace odtn
