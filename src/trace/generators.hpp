// Synthetic mobility trace generator.
//
// Generates scan-style contact traces with the structural properties the
// paper's empirical study relies on:
//  * per-node activity heterogeneity (lognormal multipliers),
//  * community structure -- pairs inside a community meet more often and
//    longer ("familiar" people), cross-community contacts are mostly
//    single-scan encounters that bridge the communities (§6.2 shows these
//    short contacts are what keeps the diameter small),
//  * diurnal/weekly activity cycles,
//  * heavy-tailed contact durations with a large single-scan mass,
//  * optional external devices: nodes seen by experimental devices whose
//    own mutual contacts are unobserved (as in Hong-Kong / Infocom).
//
// Internal devices are node ids [0, num_internal); external devices
// follow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/temporal_graph.hpp"
#include "trace/mobility_model.hpp"

namespace odtn {

/// Co-location episodes ("gatherings"): conference sessions, meals,
/// hallway clusters, lab meetings. All attendees of a gathering are
/// pairwise in contact while their stays overlap, which gives the
/// instantaneous contact graph the transitivity (triangles) real
/// proximity traces have -- without it, the last percentile of flooding
/// success at small time scales needs unrealistically deep relay chains
/// and the measured diameter overshoots the paper's 4-6 hops.
struct GatheringModel {
  double per_day = 0.0;        ///< expected gatherings per day (0 = off)
  double member_prob = 0.6;    ///< attendance prob. for community members
  double outsider_prob = 0.04; ///< attendance prob. for everyone else
  double duration_mean = 12.0 * 60.0;  ///< mean episode length (seconds)
  double duration_sigma = 0.8;         ///< lognormal sigma of the length
  /// Probability a gathering is a plenary (coffee break, meal): every
  /// node attends with member_prob regardless of community.
  double plenary_prob = 0.0;
  /// Outsiders only drop by: their stay covers this fraction of the
  /// gathering (members stay for most of it). These brief visits are the
  /// short cross-community contacts that bridge the network (§6.2).
  double outsider_stay_fraction = 0.3;
  /// Plenaries (breaks, meals) last this many times longer than regular
  /// gatherings, but everyone circulates (brief pairwise stays).
  double plenary_length_factor = 3.0;
};

/// Full parameterization of one synthetic data set.
struct SyntheticTraceSpec {
  std::string name = "synthetic";
  std::size_t num_internal = 40;
  std::size_t num_external = 0;
  double duration = 3.0 * 86400.0;
  double granularity = 120.0;

  /// Expected contacts per internal-internal pair over the whole trace
  /// for a cross-community pair of average-activity nodes.
  double pair_contacts_mean = 5.0;
  /// Same-community pairs meet intra_boost times more often.
  std::size_t num_communities = 4;
  double intra_boost = 4.0;

  /// Expected contacts per (internal, external) pair over the whole
  /// trace for an external device of average popularity.
  double external_pair_contacts_mean = 0.0;
  /// Lognormal sigma of external device popularity (hubs vs passers-by).
  double external_popularity_sigma = 1.0;

  /// Lognormal sigma of per-internal-node activity multipliers.
  double node_activity_sigma = 0.6;

  ActivityProfile profile = ActivityProfile::flat();

  /// Durations of same-community contacts (longer, "familiar" people).
  DurationModel intra_duration{0.55, 1.05, 6.0 * 3600.0};
  /// Durations of cross-community and external contacts (mostly one scan).
  DurationModel cross_duration{0.92, 1.4, 1.0 * 3600.0};

  /// Co-location episodes among (mostly) community members.
  GatheringModel gatherings;
};

/// A generated data set: the temporal graph plus which nodes are
/// experimental (internal) devices.
struct SyntheticTrace {
  TemporalGraph graph;
  std::size_t num_internal = 0;
  std::string name;

  /// Node ids of the experimental devices, i.e. [0, num_internal).
  std::vector<NodeId> internal_nodes() const;

  /// Contacts where both endpoints are internal.
  std::size_t internal_contact_count() const;

  /// Contacts with at least one external endpoint.
  std::size_t external_contact_count() const;

  /// Contacts per internal device per `unit` seconds, counting internal
  /// contacts twice (both endpoints log them) and external once.
  double internal_contact_rate(double unit, bool include_external) const;
};

/// Deterministically generates the data set described by `spec`.
SyntheticTrace generate_trace(const SyntheticTraceSpec& spec,
                              std::uint64_t seed);

}  // namespace odtn
