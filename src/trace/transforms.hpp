// Trace transforms: the contact-removal methodology of paper §6.
//
// "Each contact is either kept or removed according to a given rule fixed
// in advance", then the diameter and delay are re-measured. Also provides
// time-window restriction (§6 uses the second day of Infocom06).
#pragma once

#include "core/temporal_graph.hpp"
#include "util/rng.hpp"

namespace odtn {

/// Removes each contact independently with probability `removal_prob`
/// (§6.1, Figure 10).
TemporalGraph remove_contacts_random(const TemporalGraph& graph,
                                     double removal_prob, Rng& rng);

/// Removes every contact lasting strictly less than `min_duration`
/// seconds (§6.2, Figure 11).
TemporalGraph remove_contacts_shorter_than(const TemporalGraph& graph,
                                           double min_duration);

/// Keeps only contacts intersecting [t_lo, t_hi], clipped to the window.
/// Zero-duration results (instantaneous contacts inside the window, or
/// contacts touching the window at exactly one edge instant) are kept --
/// begin == end is a legal contact (see core/contact.hpp).
TemporalGraph restrict_time_window(const TemporalGraph& graph, double t_lo,
                                   double t_hi);

/// Keeps only contacts whose both endpoints are experimental (internal)
/// devices, i.e. node ids < num_internal; the node set shrinks to the
/// internal devices. Matches the paper's default of analyzing internal
/// contacts only.
TemporalGraph keep_internal_contacts(const TemporalGraph& graph,
                                     std::size_t num_internal);

}  // namespace odtn
