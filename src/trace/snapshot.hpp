// Snapshot: versioned little-endian binary serialization of a FULLY
// INDEXED TemporalGraph (contacts + the per-node CSR / by-end indexes),
// designed to be mmap-ed straight back into a zero-copy graph view.
//
// The cold-start pipeline today is parse (text -> contacts) + index
// (counting sort + per-node re-sort); a snapshot pays both once at
// `odtn snapshot` time and the serving path (`odtn serve`,
// load_snapshot_file) only maps the file and validates it in one O(n)
// sweep -- no allocation proportional to the trace, no sorting.
//
// Layout (version 1, all integers/doubles little-endian; the encoder
// static_asserts a little-endian host):
//
//   header (136 bytes)
//     u32  magic            "ODSN" (0x4E53444F little-endian on disk)
//     u16  version          1
//     u8   directed         0 | 1
//     u8   reserved         0
//     u64  num_nodes
//     u64  num_contacts
//     u64  num_neighbors    == num_contacts * (directed ? 1 : 2)
//     f64  start_time, end_time
//     u64  total_size       whole-file byte count (anti-truncation)
//     5 x {u64 offset, u64 size}   section table, in file order:
//          contacts         num_contacts    x Contact     (24 B packed)
//          node_offsets     num_nodes + 1   x u32
//          node_contacts    2*num_contacts  x u32
//          neighbor_offsets num_nodes + 1   x u32
//          neighbors_by_end num_neighbors   x NodeContact (24 B, the
//                           4 trailing pad bytes written as zeros so
//                           encode() is a deterministic function of the
//                           graph and round-trips bit-identically)
//
//   Sections start at 64-byte-aligned offsets; gap bytes are zero.
//
// The decoder follows the PR 7 ShardRequest/ShardResult discipline --
// magic + version check, every offset/size bounds-checked against the
// buffer and cross-checked against the header counts (lying lengths),
// total_size == buffer size (truncation AND trailing bytes) -- and then
// validates the graph invariants the engines rely on (canonical contact
// order, in-range node ids, monotone offset arrays, per-node end-sorted
// neighbor runs, start/end matching the contact span), so a bit-flipped
// file either loads into a fully usable graph or throws SnapshotError;
// it can never produce out-of-bounds index arrays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/temporal_graph.hpp"

namespace odtn {

/// Malformed snapshot bytes: truncation, bad magic/version, lying
/// section table, or violated graph invariants.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kSnapshotMagic = 0x4E53444F;  // "ODSN"
inline constexpr std::uint16_t kSnapshotVersion = 1;

/// Serializes `graph` (forcing its index build) into the snapshot byte
/// layout. Deterministic: the same graph always produces the same bytes,
/// and encode(decode(bytes)) == bytes.
std::vector<std::uint8_t> encode_snapshot(const TemporalGraph& graph);

/// Validates `size` bytes at `data` and adopts them as a zero-copy graph
/// view. `backing` keeps the buffer alive for the graph's lifetime (and
/// its copies'); it must own the memory `data` points into. Throws
/// SnapshotError on any malformation.
TemporalGraph decode_snapshot(const std::uint8_t* data, std::size_t size,
                              std::shared_ptr<const void> backing);

/// Convenience overload over an owned byte vector (fuzzers, tests).
TemporalGraph decode_snapshot(
    std::shared_ptr<const std::vector<std::uint8_t>> bytes);

/// Writes encode_snapshot(graph) to `path`. Throws SnapshotError when
/// the file cannot be created or fully written.
void write_snapshot_file(const std::string& path, const TemporalGraph& graph);

/// mmap-s `path` read-only and decodes it in place: the returned graph
/// (and every copy of it) reads contacts and indexes straight out of
/// the page cache; the mapping is unmapped when the last copy dies.
/// Throws SnapshotError on open/map failure or malformed content.
TemporalGraph load_snapshot_file(const std::string& path);

}  // namespace odtn
