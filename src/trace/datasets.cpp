#include "trace/datasets.hpp"

#include "util/time_format.hpp"

namespace odtn {

DatasetPreset dataset_infocom05() {
  DatasetPreset d;
  d.spec.name = "Infocom05";
  d.spec.num_internal = 41;
  d.spec.num_external = 223;
  d.spec.duration = 3.0 * kDay;
  d.spec.granularity = 120.0;
  d.spec.num_communities = 4;
  d.spec.intra_boost = 4.0;
  // ~1/3 of contacts come from gatherings (sessions, breaks, meals);
  // the per-pair base is tuned so the merged total lands near 22459.
  d.spec.pair_contacts_mean = 2.0;
  d.spec.gatherings = {255.0, 0.5, 0.1, 14.0 * kMinute, 1.3, 0.12, 0.15, 3.0};
  d.spec.cross_duration = {0.97, 1.4, 1.0 * kHour};
  d.spec.external_pair_contacts_mean = 1173.0 / (41.0 * 223.0);
  d.spec.node_activity_sigma = 0.5;
  d.spec.profile = ActivityProfile::conference();
  d.paper = {"Infocom05", 3, 120, 41, 22459, 223, 1173,
             "external contact count reconstructed (~)"};
  d.seed = 0x1F0C05;
  return d;
}

DatasetPreset dataset_infocom06() {
  DatasetPreset d;
  d.spec.name = "Infocom06";
  d.spec.num_internal = 78;
  d.spec.num_external = 4519;
  d.spec.duration = 4.0 * kDay;
  d.spec.granularity = 120.0;
  d.spec.num_communities = 6;
  d.spec.intra_boost = 4.0;
  // Base pair encounters plus conference gatherings; tuned for ~82000.
  d.spec.pair_contacts_mean = 2.0;
  d.spec.gatherings = {560.0, 0.32, 0.06, 14.0 * kMinute, 1.3, 0.12, 0.15, 3.0};
  d.spec.cross_duration = {0.97, 1.4, 1.0 * kHour};
  d.spec.external_pair_contacts_mean = 63630.0 / (78.0 * 4519.0);
  d.spec.external_popularity_sigma = 1.2;
  d.spec.node_activity_sigma = 0.5;
  d.spec.profile = ActivityProfile::conference();
  d.paper = {"Infocom06", 4, 120, 78, 82000, 4519, 63630,
             "contact counts reconstructed (~)"};
  d.seed = 0x1F0C06;
  return d;
}

DatasetPreset dataset_hong_kong() {
  DatasetPreset d;
  d.spec.name = "Hong-Kong";
  d.spec.num_internal = 37;
  d.spec.num_external = 869;
  d.spec.duration = 5.0 * kDay;
  d.spec.granularity = 120.0;
  // Participants were chosen to avoid social relationships: no
  // communities, very few internal contacts.
  d.spec.num_communities = 37;  // every node its own community
  d.spec.intra_boost = 1.0;
  d.spec.pair_contacts_mean = 568.0 / 666.0;
  d.spec.external_pair_contacts_mean = 2507.0 / (37.0 * 869.0);
  d.spec.external_popularity_sigma = 1.4;  // bars/shops are hubs
  d.spec.node_activity_sigma = 0.6;
  d.spec.profile = ActivityProfile::city();
  d.spec.cross_duration = {0.85, 1.3, 2.0 * kHour};
  d.paper = {"Hong-Kong", 5, 120, 37, 568, 869, 2507,
             "internal/external counts reconstructed (~)"};
  d.seed = 0x104C;
  return d;
}

DatasetPreset dataset_reality_mining() {
  DatasetPreset d;
  d.spec.name = "RealityMining";
  d.spec.num_internal = 97;
  d.spec.num_external = 0;
  // Substitution: 90 days instead of 9 months (~280 days); the target
  // contact count is scaled by 90/280 to preserve the contact rate.
  d.spec.duration = 90.0 * kDay;
  d.spec.granularity = 300.0;
  d.spec.num_communities = 8;
  d.spec.intra_boost = 6.0;
  // Base pair encounters plus class/lab gatherings; tuned for ~33000.
  d.spec.pair_contacts_mean = 0.6;
  d.spec.gatherings = {5.0, 0.85, 0.02, 45.0 * kMinute, 0.6, 0.0};
  d.spec.node_activity_sigma = 0.8;
  d.spec.profile = ActivityProfile::campus();
  d.spec.intra_duration = {0.5, 1.05, 8.0 * kHour};
  d.paper = {"RealityMining (BT)", 280, 300, 97, 102667, 0, 0,
             "9 months substituted by 90 days, contacts scaled to ~33000"};
  d.seed = 0x2EA1;
  return d;
}

std::vector<DatasetPreset> all_datasets() {
  return {dataset_infocom05(), dataset_infocom06(), dataset_hong_kong(),
          dataset_reality_mining()};
}

}  // namespace odtn
