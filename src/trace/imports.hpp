// Importers for published contact-trace formats.
//
// The real data sets behind the paper are distributed in a handful of
// ad-hoc text formats. These importers turn the two most common ones
// into TemporalGraphs so the full pipeline (stats, CDFs, diameter,
// transforms) runs on real downloads unchanged:
//
//  * CRAWDAD/Haggle contact lists: whitespace-separated
//        <u> <v> <start> <end> [extra columns ignored]
//    with 1-based or 0-based ids (auto-detected) and integer seconds.
//  * ONE simulator connection events:
//        <time> CONN <u> <v> up|down
//    (pairs open with "up" and close with "down"; connections still
//    open at the end of input are closed at the last event time).
#pragma once

#include <iosfwd>
#include <string>

#include "core/temporal_graph.hpp"

namespace odtn {

/// Parses a CRAWDAD-style contact list. Lines starting with '#' or ';'
/// and blank lines are skipped; extra columns beyond the fourth are
/// ignored. Node ids may start at 0 or 1 (auto-shifted to 0-based).
/// Throws std::runtime_error with a line number on malformed input.
TemporalGraph import_crawdad_contacts(std::istream& in);

/// Parses ONE simulator connectivity events ("<time> CONN <u> <v> up" /
/// "... down"). Unmatched "down" events and malformed lines throw;
/// connections left open are closed at the maximum event time seen.
TemporalGraph import_one_events(std::istream& in);

/// File variants; throw std::runtime_error when unreadable.
TemporalGraph import_crawdad_contacts_file(const std::string& path);
TemporalGraph import_one_events_file(const std::string& path);

}  // namespace odtn
