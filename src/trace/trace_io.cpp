#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace odtn {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line) + ": " + message);
}

}  // namespace

TemporalGraph read_trace(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  bool saw_magic = false;
  bool saw_nodes = false;
  std::size_t num_nodes = 0;
  bool directed = false;
  std::vector<Contact> contacts;

  while (std::getline(in, line)) {
    ++line_no;
    // Trim trailing CR for files written on other platforms.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string key;
      hdr >> key;
      if (key == "odtn-trace") {
        saw_magic = true;
      } else if (key == "nodes") {
        if (!(hdr >> num_nodes)) fail(line_no, "bad '# nodes' header");
        saw_nodes = true;
      } else if (key == "directed") {
        int flag = 0;
        if (!(hdr >> flag) || (flag != 0 && flag != 1))
          fail(line_no, "bad '# directed' header");
        directed = flag == 1;
      }
      continue;  // other comments ignored
    }
    if (!saw_magic) fail(line_no, "missing '# odtn-trace v1' magic");
    if (!saw_nodes) fail(line_no, "contact before '# nodes' header");
    std::istringstream row(line);
    unsigned long u = 0, v = 0;
    double begin = 0.0, end = 0.0;
    if (!(row >> u >> v >> begin >> end))
      fail(line_no, "expected 'u v begin end'");
    std::string trailing;
    if (row >> trailing) fail(line_no, "trailing data: '" + trailing + "'");
    const Contact c{static_cast<NodeId>(u), static_cast<NodeId>(v), begin,
                    end};
    if (u >= num_nodes || v >= num_nodes) fail(line_no, "node out of range");
    if (!is_valid_contact(c)) fail(line_no, "malformed contact");
    contacts.push_back(c);
  }
  if (!saw_magic) throw std::runtime_error("trace parse error: empty input");
  return TemporalGraph(num_nodes, std::move(contacts), directed);
}

TemporalGraph read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, const TemporalGraph& graph) {
  out << "# odtn-trace v1\n";
  out << "# nodes " << graph.num_nodes() << "\n";
  out << "# directed " << (graph.directed() ? 1 : 0) << "\n";
  out.precision(17);
  for (const Contact& c : graph.contacts())
    out << c.u << ' ' << c.v << ' ' << c.begin << ' ' << c.end << '\n';
}

void write_trace_file(const std::string& path, const TemporalGraph& graph) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  write_trace(out, graph);
  if (!out) throw std::runtime_error("error while writing: " + path);
}

}  // namespace odtn
