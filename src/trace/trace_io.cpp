#include "trace/trace_io.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace odtn {
namespace {

constexpr std::size_t kChunkSize = 1 << 16;
constexpr std::size_t kExcerptMax = 60;
constexpr std::size_t kNodeIdMax = static_cast<std::size_t>(kInvalidNode) - 1;

/// Truncated, printable copy of a line for diagnostics.
std::string make_excerpt(const char* begin, const char* end) {
  const std::size_t len = static_cast<std::size_t>(end - begin);
  std::string s(begin, std::min(len, kExcerptMax));
  for (char& c : s)
    if (static_cast<unsigned char>(c) < 0x20 && c != '\t') c = '?';
  if (len > kExcerptMax) s += "...";
  return s;
}

const char* skip_blanks(const char* p, const char* end) {
  while (p != end && (*p == ' ' || *p == '\t')) ++p;
  return p;
}

const char* token_end(const char* p, const char* end) {
  while (p != end && *p != ' ' && *p != '\t') ++p;
  return p;
}

}  // namespace

StreamingTraceParser::StreamingTraceParser(ParseOptions options)
    : options_(std::move(options)) {}

StreamingTraceParser::~StreamingTraceParser() = default;

void StreamingTraceParser::feed(const char* data, std::size_t n) {
  carry_.feed(data, n,
              [this](const char* begin, const char* end) {
                feed_line(begin, end);
              });
}

bool StreamingTraceParser::flush() {
  return carry_.finish([this](const char* begin, const char* end) {
    feed_line(begin, end);
  });
}

void StreamingTraceParser::feed_line(const char* begin, const char* end) {
  ++line_no_;
  ++report_.lines;
  // Trim trailing CR for files written on other platforms.
  if (begin != end && end[-1] == '\r') --end;
  if (begin == end) return;
  if (*begin == '#') {
    header_line(begin, end);
  } else {
    contact_line(begin, end);
  }
}

std::vector<Contact> StreamingTraceParser::drain_contacts() {
  drained_ += contacts_.size();
  return std::exchange(contacts_, {});
}

ParseReport StreamingTraceParser::report() const {
  ParseReport r = report_;
  r.declared_nodes = num_nodes_;
  r.directed = directed_;
  r.max_node_id = max_node_id_;
  r.contacts = drained_ + contacts_.size();
  return r;
}

TemporalGraph StreamingTraceParser::finish(ParseReport* report_out) {
  flush();
  if (!saw_magic_) {
    fatal(report_.lines == 0 ? TraceErrorCode::kEmptyInput
                             : TraceErrorCode::kMissingMagic,
          0, 0, "", "no '# odtn-trace v1' magic in the input");
  }
  if (!saw_nodes_)
    fatal(TraceErrorCode::kMissingNodesHeader, 0, 0, "",
          "no '# nodes' header in the input");
  report_.declared_nodes = num_nodes_;
  report_.directed = directed_;
  report_.max_node_id = max_node_id_;
  report_.contacts = contacts_.size();
  if (options_.canonicalize) {
    report_.canonicalized = true;
    report_.out_of_order = count_canonical_order_violations(contacts_);
    const std::size_t before = contacts_.size();
    contacts_ = merge_overlapping_contacts(std::move(contacts_));
    report_.merged = before - contacts_.size();
    report_.contacts = contacts_.size();
  }
  TemporalGraph graph(num_nodes_, std::move(contacts_), directed_);
  if (report_out) *report_out = std::move(report_);
  return graph;
}

void StreamingTraceParser::fail_io() {
  fatal(TraceErrorCode::kIoError, line_no_, 0, "",
        "stream failed while reading");
}

void StreamingTraceParser::fatal(TraceErrorCode code, std::size_t line,
                                 std::size_t column, std::string excerpt,
                                 std::string message) {
  throw TraceError({code, line, column, std::move(excerpt),
                    std::move(message)});
}

/// Record-level defect: throws in strict mode, records and skips the
/// line in lenient mode.
void StreamingTraceParser::defect(TraceErrorCode code, std::size_t column,
                                  const char* begin, const char* end,
                                  std::string message) {
  TraceDiagnostic diag{code, line_no_, column, make_excerpt(begin, end),
                       std::move(message)};
  if (options_.mode == ParseMode::kStrict) throw TraceError(std::move(diag));
  ++report_.skipped;
  if (report_.diagnostics.size() < options_.max_diagnostics)
    report_.diagnostics.push_back(std::move(diag));
}

std::size_t StreamingTraceParser::column_of(const char* line_begin,
                                            const char* at) const {
  return static_cast<std::size_t>(at - line_begin) + 1;
}

void StreamingTraceParser::header_line(const char* begin, const char* end) {
  const char* p = skip_blanks(begin + 1, end);
  const char* key_end = token_end(p, end);
  const std::string_view key(p, static_cast<std::size_t>(key_end - p));
  if (key == "odtn-trace") {
    if (saw_magic_) {
      defect(TraceErrorCode::kDuplicateHeader, column_of(begin, p), begin,
             end, "duplicate '# odtn-trace' magic");
      return;
    }
    const char* v = skip_blanks(key_end, end);
    const char* v_end = token_end(v, end);
    const std::string_view version(v, static_cast<std::size_t>(v_end - v));
    if (version != "v1")
      fatal(TraceErrorCode::kUnsupportedVersion, line_no_,
            column_of(begin, v), make_excerpt(begin, end),
            "unsupported trace version '" + std::string(version) +
                "' (this parser reads v1)");
    saw_magic_ = true;
    return;
  }
  if (key == "nodes") {
    if (saw_nodes_) {
      defect(TraceErrorCode::kDuplicateHeader, column_of(begin, p), begin,
             end, "duplicate '# nodes' header");
      return;
    }
    const char* v = skip_blanks(key_end, end);
    unsigned long long value = 0;
    const auto [ptr, ec] = std::from_chars(v, end, value);
    if (ec != std::errc() || skip_blanks(ptr, end) != end) {
      defect(TraceErrorCode::kBadHeader, column_of(begin, v), begin, end,
             "bad '# nodes' header: expected one non-negative integer");
      return;
    }
    if (value > kNodeIdMax + 1)
      fatal(TraceErrorCode::kNodeCountOverflow, line_no_,
            column_of(begin, v), make_excerpt(begin, end),
            "'# nodes' " + std::to_string(value) +
                " exceeds the NodeId range (max " +
                std::to_string(kNodeIdMax + 1) + ")");
    num_nodes_ = static_cast<std::size_t>(value);
    saw_nodes_ = true;
    return;
  }
  if (key == "directed") {
    if (saw_directed_) {
      defect(TraceErrorCode::kDuplicateHeader, column_of(begin, p), begin,
             end, "duplicate '# directed' header");
      return;
    }
    const char* v = skip_blanks(key_end, end);
    unsigned flag = 0;
    const auto [ptr, ec] = std::from_chars(v, end, flag);
    if (ec != std::errc() || flag > 1 || skip_blanks(ptr, end) != end) {
      defect(TraceErrorCode::kBadHeader, column_of(begin, v), begin, end,
             "bad '# directed' header: expected 0 or 1");
      return;
    }
    directed_ = flag == 1;
    saw_directed_ = true;
    return;
  }
  // Any other '#' line is an ordinary comment.
}

void StreamingTraceParser::contact_line(const char* begin, const char* end) {
  if (!saw_magic_)
    fatal(TraceErrorCode::kMissingMagic, line_no_, 1,
          make_excerpt(begin, end),
          "data before the '# odtn-trace v1' magic");
  if (!saw_nodes_)
    fatal(TraceErrorCode::kMissingNodesHeader, line_no_, 1,
          make_excerpt(begin, end), "contact before the '# nodes' header");

  const char* p = skip_blanks(begin, end);
  unsigned long long u = 0, v = 0;
  double times[2] = {0.0, 0.0};

  auto bad_syntax = [&](const char* at) {
    defect(TraceErrorCode::kBadContactSyntax, column_of(begin, at), begin,
           end, "expected '<u> <v> <begin> <end>'");
  };

  const auto r_u = std::from_chars(p, end, u);
  if (r_u.ec != std::errc()) return bad_syntax(p);
  p = skip_blanks(r_u.ptr, end);
  const auto r_v = std::from_chars(p, end, v);
  if (r_v.ec != std::errc()) return bad_syntax(p);
  p = skip_blanks(r_v.ptr, end);
  const auto r_b =
      std::from_chars(p, end, times[0], std::chars_format::general);
  if (r_b.ec != std::errc()) return bad_syntax(p);
  p = skip_blanks(r_b.ptr, end);
  const auto r_e =
      std::from_chars(p, end, times[1], std::chars_format::general);
  if (r_e.ec != std::errc()) return bad_syntax(p);
  p = skip_blanks(r_e.ptr, end);
  if (p != end)
    return defect(TraceErrorCode::kTrailingData, column_of(begin, p), begin,
                  end,
                  "trailing data after the four contact fields");

  if (u >= num_nodes_ || v >= num_nodes_) {
    const unsigned long long worst = std::max(u, v);
    return defect(TraceErrorCode::kNodeOutOfRange, 1, begin, end,
                  "node " + std::to_string(worst) +
                      " out of range (nodes: " +
                      std::to_string(num_nodes_) + ")");
  }
  const Contact c{static_cast<NodeId>(u), static_cast<NodeId>(v), times[0],
                  times[1]};
  if (!is_valid_contact(c))
    return defect(TraceErrorCode::kMalformedContact, 1, begin, end,
                  "malformed contact (self-loop, reversed or non-finite "
                  "interval)");
  ++report_.contact_lines;
  max_node_id_ = max_node_id_ == kInvalidNode
                     ? static_cast<NodeId>(std::max(u, v))
                     : std::max(max_node_id_,
                                static_cast<NodeId>(std::max(u, v)));
  contacts_.push_back(c);
}

const char* trace_error_name(TraceErrorCode code) noexcept {
  switch (code) {
    case TraceErrorCode::kCannotOpen: return "cannot-open";
    case TraceErrorCode::kIoError: return "io-error";
    case TraceErrorCode::kEmptyInput: return "empty-input";
    case TraceErrorCode::kMissingMagic: return "missing-magic";
    case TraceErrorCode::kUnsupportedVersion: return "unsupported-version";
    case TraceErrorCode::kDuplicateHeader: return "duplicate-header";
    case TraceErrorCode::kBadHeader: return "bad-header";
    case TraceErrorCode::kNodeCountOverflow: return "node-count-overflow";
    case TraceErrorCode::kMissingNodesHeader: return "missing-nodes-header";
    case TraceErrorCode::kBadContactSyntax: return "bad-contact-syntax";
    case TraceErrorCode::kTrailingData: return "trailing-data";
    case TraceErrorCode::kNodeOutOfRange: return "node-out-of-range";
    case TraceErrorCode::kMalformedContact: return "malformed-contact";
  }
  return "unknown";
}

std::string TraceDiagnostic::to_string() const {
  std::string s = trace_error_name(code);
  if (line > 0) {
    s += " at line " + std::to_string(line);
    if (column > 0) s += ", column " + std::to_string(column);
  }
  s += ": " + message;
  if (!excerpt.empty()) s += " ['" + excerpt + "']";
  return s;
}

TraceError::TraceError(TraceDiagnostic diagnostic)
    : std::runtime_error("trace parse error: " + diagnostic.to_string()),
      diagnostic_(std::move(diagnostic)) {}

std::size_t ParseReport::unused_node_ids() const noexcept {
  if (max_node_id == kInvalidNode) return declared_nodes;
  return declared_nodes - (static_cast<std::size_t>(max_node_id) + 1);
}

std::string ParseReport::summary() const {
  std::string s;
  s += "lines:        " + std::to_string(lines) + " (" +
       std::to_string(contact_lines) + " contact records)\n";
  s += "contacts:     " + std::to_string(contacts) + "\n";
  s += "nodes:        " + std::to_string(declared_nodes) + " declared";
  if (max_node_id != kInvalidNode)
    s += ", max id " + std::to_string(max_node_id);
  if (unused_node_ids() > 0)
    s += " (" + std::to_string(unused_node_ids()) + " ids unused)";
  s += "\n";
  s += std::string("directed:     ") + (directed ? "yes" : "no") + "\n";
  if (canonicalized) {
    s += "canonical:    " +
         (out_of_order == 0 ? std::string("input already sorted")
                            : std::to_string(out_of_order) +
                                  " order violations repaired") +
         ", " + std::to_string(merged) + " overlapping contacts merged\n";
  }
  s += "skipped:      " + std::to_string(skipped) + " defective record(s)\n";
  for (const TraceDiagnostic& d : diagnostics) s += "  " + d.to_string() + "\n";
  if (skipped > diagnostics.size())
    s += "  ... and " + std::to_string(skipped - diagnostics.size()) +
         " more\n";
  return s;
}

TemporalGraph read_trace(std::istream& in, const ParseOptions& options,
                         ParseReport* report) {
  StreamingTraceParser parser(options);
  std::vector<char> chunk(kChunkSize);
  while (in) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    parser.feed(chunk.data(), got);
  }
  if (in.bad()) parser.fail_io();
  return parser.finish(report);
}

TemporalGraph read_trace(std::istream& in) {
  return read_trace(in, ParseOptions{}, nullptr);
}

TemporalGraph read_trace_file(const std::string& path,
                              const ParseOptions& options,
                              ParseReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw TraceError({TraceErrorCode::kCannotOpen, 0, 0, path,
                      "cannot open trace file: " + path});
  return read_trace(in, options, report);
}

TemporalGraph read_trace_file(const std::string& path) {
  return read_trace_file(path, ParseOptions{}, nullptr);
}

TemporalGraph read_trace_reference(std::istream& in) {
  const auto fail = [](std::size_t line, const std::string& message) {
    throw std::runtime_error("trace parse error at line " +
                             std::to_string(line) + ": " + message);
  };
  std::string line;
  std::size_t line_no = 0;
  bool saw_magic = false;
  bool saw_nodes = false;
  std::size_t num_nodes = 0;
  bool directed = false;
  std::vector<Contact> contacts;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string key;
      hdr >> key;
      if (key == "odtn-trace") {
        saw_magic = true;
      } else if (key == "nodes") {
        if (!(hdr >> num_nodes)) fail(line_no, "bad '# nodes' header");
        saw_nodes = true;
      } else if (key == "directed") {
        int flag = 0;
        if (!(hdr >> flag) || (flag != 0 && flag != 1))
          fail(line_no, "bad '# directed' header");
        directed = flag == 1;
      }
      continue;  // other comments ignored
    }
    if (!saw_magic) fail(line_no, "missing '# odtn-trace v1' magic");
    if (!saw_nodes) fail(line_no, "contact before '# nodes' header");
    std::istringstream row(line);
    unsigned long u = 0, v = 0;
    double begin = 0.0, end = 0.0;
    if (!(row >> u >> v >> begin >> end))
      fail(line_no, "expected 'u v begin end'");
    std::string trailing;
    if (row >> trailing) fail(line_no, "trailing data: '" + trailing + "'");
    const Contact c{static_cast<NodeId>(u), static_cast<NodeId>(v), begin,
                    end};
    if (u >= num_nodes || v >= num_nodes) fail(line_no, "node out of range");
    if (!is_valid_contact(c)) fail(line_no, "malformed contact");
    contacts.push_back(c);
  }
  if (!saw_magic) throw std::runtime_error("trace parse error: empty input");
  return TemporalGraph(num_nodes, std::move(contacts), directed);
}

void write_trace(std::ostream& out, const TemporalGraph& graph) {
  out << "# odtn-trace v1\n";
  out << "# nodes " << graph.num_nodes() << "\n";
  out << "# directed " << (graph.directed() ? 1 : 0) << "\n";
  out.precision(17);
  for (const Contact& c : graph.contacts())
    out << c.u << ' ' << c.v << ' ' << c.begin << ' ' << c.end << '\n';
}

void write_trace_file(const std::string& path, const TemporalGraph& graph) {
  std::ofstream out(path);
  if (!out)
    throw TraceError({TraceErrorCode::kCannotOpen, 0, 0, path,
                      "cannot write trace file: " + path});
  write_trace(out, graph);
  if (!out)
    throw TraceError({TraceErrorCode::kIoError, 0, 0, path,
                      "error while writing: " + path});
}

}  // namespace odtn
