// Plain-text contact trace format.
//
//   # odtn-trace v1          (magic, required first line)
//   # nodes <N>              (required)
//   # directed <0|1>         (optional, default 0)
//   <u> <v> <begin> <end>    (one contact per line)
//
// Comments (#) and blank lines are allowed anywhere. Timestamps are
// seconds as decimal doubles. This mirrors the shape of the published
// Haggle / Reality-Mining contact lists so real traces can be converted
// with a one-line awk script.
#pragma once

#include <iosfwd>
#include <string>

#include "core/temporal_graph.hpp"

namespace odtn {

/// Parses a trace; throws std::runtime_error with a line number on any
/// malformed input.
TemporalGraph read_trace(std::istream& in);

/// Reads the file at `path`; throws std::runtime_error if unreadable.
TemporalGraph read_trace_file(const std::string& path);

/// Writes `graph` in the format above.
void write_trace(std::ostream& out, const TemporalGraph& graph);

/// Writes to the file at `path`; throws std::runtime_error on failure.
void write_trace_file(const std::string& path, const TemporalGraph& graph);

}  // namespace odtn
