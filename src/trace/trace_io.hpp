// Plain-text contact trace format and its hardened streaming parser.
//
//   # odtn-trace v1          (magic, required before the first contact)
//   # nodes <N>              (required before the first contact)
//   # directed <0|1>         (optional, default 0)
//   <u> <v> <begin> <end>    (one contact per line)
//
// Comments (#) and blank lines are allowed anywhere. Timestamps are
// seconds as decimal doubles. This mirrors the shape of the published
// Haggle / Reality-Mining contact lists so real traces can be converted
// with a one-line awk script.
//
// Every evaluation workload flows through this layer, so the parser is
// both the fastest and the most defended piece of the trace substrate:
// a single-pass buffered tokenizer (std::from_chars, no per-line stream
// objects), a structured error taxonomy (TraceError: code, line, column,
// excerpt), a lenient mode that skips defective records and reports what
// was dropped (ParseReport), and an opt-in canonicalization pass (sort
// to canonical order, merge overlapping contacts of a pair, cross-check
// the declared node count). The seed line-stream parser is kept as
// read_trace_reference: bench_perf_trace_io gates the streaming parser
// against it (>= 5x throughput, bit-identical graphs) and odtn_fuzz
// cross-checks the two on randomized traces.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/contact.hpp"
#include "core/temporal_graph.hpp"
#include "util/line_reader.hpp"

namespace odtn {

/// Machine-readable taxonomy of trace-ingestion failures.
enum class TraceErrorCode {
  kCannotOpen,          ///< file could not be opened for reading/writing
  kIoError,             ///< underlying stream failed mid-transfer
  kEmptyInput,          ///< no input at all
  kMissingMagic,        ///< data before (or without) '# odtn-trace v1'
  kUnsupportedVersion,  ///< magic present but the version is not v1
  kDuplicateHeader,     ///< repeated '# odtn-trace' / '# nodes' / '# directed'
  kBadHeader,           ///< header present but its value is malformed
  kNodeCountOverflow,   ///< '# nodes' exceeds the NodeId range
  kMissingNodesHeader,  ///< contact record before '# nodes'
  kBadContactSyntax,    ///< contact line is not '<u> <v> <begin> <end>'
  kTrailingData,        ///< extra tokens after the four contact fields
  kNodeOutOfRange,      ///< contact endpoint >= declared node count
  kMalformedContact,    ///< self-loop, reversed or non-finite interval
};

/// Stable kebab-case identifier for an error code ("bad-header", ...).
const char* trace_error_name(TraceErrorCode code) noexcept;

/// One diagnostic: what went wrong and where.
struct TraceDiagnostic {
  TraceErrorCode code = TraceErrorCode::kBadContactSyntax;
  std::size_t line = 0;    ///< 1-based; 0 = the input as a whole
  std::size_t column = 0;  ///< 1-based byte offset; 0 = the whole line
  std::string excerpt;     ///< offending line, truncated and sanitized
  std::string message;     ///< human-readable detail

  /// "<code> at line L, column C: <message> [excerpt]".
  std::string to_string() const;
};

/// Structured parse failure. Replaces the seed parser's bare
/// std::runtime_error; still derives from it so existing catch sites
/// keep working.
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(TraceDiagnostic diagnostic);

  const TraceDiagnostic& diagnostic() const noexcept { return diagnostic_; }
  TraceErrorCode code() const noexcept { return diagnostic_.code; }
  std::size_t line() const noexcept { return diagnostic_.line; }
  std::size_t column() const noexcept { return diagnostic_.column; }

 private:
  TraceDiagnostic diagnostic_;
};

enum class ParseMode {
  kStrict,   ///< the first defect throws TraceError
  kLenient,  ///< record-level defects are skipped and reported
};

/// Parser configuration. Defects that make the whole input
/// uninterpretable (missing/unsupported magic, missing '# nodes', a node
/// count outside the NodeId range, I/O failure) are fatal in both modes;
/// lenient mode only downgrades record-level defects (bad contact
/// syntax, trailing data, out-of-range endpoints, malformed intervals,
/// duplicate or malformed headers) to skipped-and-reported.
struct ParseOptions {
  ParseMode mode = ParseMode::kStrict;
  /// Opt-in canonicalization: sort contacts into canonical
  /// (begin, end, u, v) order, merge overlapping/touching contacts of
  /// the same node pair (merge_overlapping_contacts), and record the
  /// declared-vs-used node-count cross-check in the report.
  bool canonicalize = false;
  /// Diagnostics kept in ParseReport::diagnostics; further defects are
  /// still counted in ParseReport::skipped.
  std::size_t max_diagnostics = 64;
};

/// What the parser saw, kept, dropped, and (optionally) normalized.
struct ParseReport {
  std::size_t lines = 0;          ///< physical lines scanned
  std::size_t contact_lines = 0;  ///< lines holding a parseable contact
  std::size_t contacts = 0;       ///< contacts in the resulting graph
  std::size_t skipped = 0;        ///< defective records dropped (lenient)
  std::vector<TraceDiagnostic> diagnostics;  ///< first max_diagnostics

  std::size_t declared_nodes = 0;        ///< the '# nodes' value
  bool directed = false;                 ///< the '# directed' value
  NodeId max_node_id = kInvalidNode;     ///< largest endpoint seen

  // Canonicalization results (ParseOptions::canonicalize only):
  bool canonicalized = false;
  std::size_t merged = 0;        ///< contacts absorbed by the overlap merge
  std::size_t out_of_order = 0;  ///< adjacent canonical-order violations

  /// Declared node ids never used by a contact (the '# nodes'
  /// cross-check; 0 when every id appears or the trace is empty).
  std::size_t unused_node_ids() const noexcept;

  /// Multi-line human-readable report (the body of `odtn validate`).
  std::string summary() const;
};

/// Push-mode core of the streaming tokenizer, exposed so live feeds can
/// reuse it byte for byte: read_trace pumps file chunks through feed()
/// and calls finish(); `odtn tail` and the serve ingest path instead
/// drain_contacts() after every feed and keep the parser alive while the
/// input grows. Chunk boundaries are invisible (a partial line is
/// carried until its newline or flush() arrives), so any byte-split of
/// an input parses identically to a one-shot pass -- odtn_fuzz --live
/// checks exactly that.
class StreamingTraceParser {
 public:
  explicit StreamingTraceParser(ParseOptions options = {});
  StreamingTraceParser(StreamingTraceParser&&) = default;
  StreamingTraceParser& operator=(StreamingTraceParser&&) = default;
  ~StreamingTraceParser();

  /// Tokenizes one chunk of raw bytes (any chunking, including one byte
  /// at a time). Throws TraceError on fatal defects (and, in strict
  /// mode, on any defect).
  void feed(const char* data, std::size_t n);

  /// Tokenizes one complete line ([begin, end), no terminator). feed()
  /// is built on this; exposed for consumers that already split lines.
  void feed_line(const char* begin, const char* end);

  /// Delivers a final line that arrived without a trailing newline.
  /// Returns true iff a carried line was flushed. Safe to call more
  /// than once.
  bool flush();

  /// True once both required headers ('# odtn-trace v1', '# nodes')
  /// were seen; declared_nodes()/directed() are meaningful from then on.
  bool header_complete() const noexcept { return saw_magic_ && saw_nodes_; }
  std::size_t declared_nodes() const noexcept { return num_nodes_; }
  bool directed() const noexcept { return directed_; }

  /// Contacts parsed since the last drain (live consumers pull batches
  /// out of the parser as the feed grows; order is input order).
  std::size_t pending_contacts() const noexcept { return contacts_.size(); }
  std::vector<Contact> drain_contacts();

  /// Snapshot of the running report (lines/skips/diagnostics as of now;
  /// contact counts include drained batches).
  ParseReport report() const;

  /// Flushes, validates the headers and builds the graph from every
  /// still-undrained contact (the read_trace path; live consumers that
  /// drained use their own graph). Leaves the parser finished.
  TemporalGraph finish(ParseReport* report = nullptr);

  /// Reports an input-stream failure as a fatal TraceError.
  [[noreturn]] void fail_io();

 private:
  [[noreturn]] void fatal(TraceErrorCode code, std::size_t line,
                          std::size_t column, std::string excerpt,
                          std::string message);
  void defect(TraceErrorCode code, std::size_t column, const char* begin,
              const char* end, std::string message);
  std::size_t column_of(const char* line_begin, const char* at) const;
  void header_line(const char* begin, const char* end);
  void contact_line(const char* begin, const char* end);

  ParseOptions options_;
  ParseReport report_;
  CarryLineReader carry_;  // partial line spanning feed() boundaries
  std::size_t line_no_ = 0;
  bool saw_magic_ = false;
  bool saw_nodes_ = false;
  bool saw_directed_ = false;
  std::size_t num_nodes_ = 0;
  bool directed_ = false;
  NodeId max_node_id_ = kInvalidNode;
  std::size_t drained_ = 0;
  std::vector<Contact> contacts_;
};

/// Parses a trace with the streaming tokenizer. Throws TraceError on
/// fatal defects (and, in strict mode, on any defect). When `report` is
/// non-null it is filled in even when lenient parsing skipped records.
TemporalGraph read_trace(std::istream& in, const ParseOptions& options,
                         ParseReport* report = nullptr);

/// Strict parse with default options; throws TraceError (a
/// std::runtime_error) with a line number on any malformed input.
TemporalGraph read_trace(std::istream& in);

/// Reads the file at `path`; throws TraceError if unreadable.
TemporalGraph read_trace_file(const std::string& path,
                              const ParseOptions& options,
                              ParseReport* report = nullptr);
TemporalGraph read_trace_file(const std::string& path);

/// The seed line-stream parser (one istringstream per line), kept as
/// the differential oracle: bench_perf_trace_io measures the streaming
/// parser against it and odtn_fuzz cross-checks both on randomized
/// traces. Accepts the same valid inputs; its rejections carry no
/// taxonomy and it predates the header-strictness hardening.
TemporalGraph read_trace_reference(std::istream& in);

/// Writes `graph` in the format above (round-trip exact: timestamps at
/// precision 17).
void write_trace(std::ostream& out, const TemporalGraph& graph);

/// Writes to the file at `path`; throws TraceError on failure.
void write_trace_file(const std::string& path, const TemporalGraph& graph);

}  // namespace odtn
