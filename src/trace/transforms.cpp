#include "trace/transforms.hpp"

#include <algorithm>
#include <stdexcept>

namespace odtn {

TemporalGraph remove_contacts_random(const TemporalGraph& graph,
                                     double removal_prob, Rng& rng) {
  if (removal_prob < 0.0 || removal_prob > 1.0)
    throw std::invalid_argument("removal_prob must be in [0, 1]");
  std::vector<Contact> kept;
  kept.reserve(graph.num_contacts());
  for (const Contact& c : graph.contacts())
    if (!rng.bernoulli(removal_prob)) kept.push_back(c);
  return TemporalGraph(graph.num_nodes(), std::move(kept), graph.directed());
}

TemporalGraph remove_contacts_shorter_than(const TemporalGraph& graph,
                                           double min_duration) {
  std::vector<Contact> kept;
  kept.reserve(graph.num_contacts());
  for (const Contact& c : graph.contacts())
    if (c.duration() >= min_duration) kept.push_back(c);
  return TemporalGraph(graph.num_nodes(), std::move(kept), graph.directed());
}

TemporalGraph keep_internal_contacts(const TemporalGraph& graph,
                                     std::size_t num_internal) {
  if (num_internal > graph.num_nodes())
    throw std::invalid_argument("keep_internal_contacts: bad num_internal");
  std::vector<Contact> kept;
  for (const Contact& c : graph.contacts())
    if (c.u < num_internal && c.v < num_internal) kept.push_back(c);
  return TemporalGraph(num_internal, std::move(kept), graph.directed());
}

TemporalGraph restrict_time_window(const TemporalGraph& graph, double t_lo,
                                   double t_hi) {
  if (!(t_lo < t_hi))
    throw std::invalid_argument("restrict_time_window: empty window");
  std::vector<Contact> kept;
  for (Contact c : graph.contacts()) {
    c.begin = std::max(c.begin, t_lo);
    c.end = std::min(c.end, t_hi);
    // begin == end is a legal zero-duration contact (instantaneous
    // meetings of the continuous-time model, or a contact clamped to
    // exactly the window edge); only non-intersecting contacts invert.
    if (c.begin <= c.end) kept.push_back(c);
  }
  return TemporalGraph(graph.num_nodes(), std::move(kept), graph.directed());
}

}  // namespace odtn
