// Presets standing in for the paper's four experimental data sets
// (Table 1): Infocom05, Infocom06, Hong-Kong (Haggle project) and the
// MIT Reality Mining Bluetooth trace.
//
// Each preset pairs a generator configuration (tuned so the synthetic
// trace matches the data set's device count, duration, scan granularity
// and contact volume) with the paper's reported characteristics for
// side-by-side printing. Several numeric cells of Table 1 are illegible
// in the available copy of the paper; reconstructed values carry a note.
// The Reality Mining preset substitutes 90 days for the 9-month
// experiment (contact volume scaled accordingly) to keep the all-pairs
// analysis laptop-scale; see DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/generators.hpp"

namespace odtn {

/// One row of the paper's Table 1 (reconstructed where illegible).
struct PaperRow {
  std::string name;
  double duration_days = 0.0;
  double granularity_seconds = 0.0;
  std::size_t devices = 0;
  std::size_t internal_contacts = 0;
  std::size_t external_devices = 0;
  std::size_t external_contacts = 0;
  std::string note;
};

/// Generator spec + paper row + canonical seed.
struct DatasetPreset {
  SyntheticTraceSpec spec;
  PaperRow paper;
  std::uint64_t seed = 0;

  /// Generates the trace with the canonical seed.
  SyntheticTrace generate() const { return generate_trace(spec, seed); }
};

DatasetPreset dataset_infocom05();
DatasetPreset dataset_infocom06();
DatasetPreset dataset_hong_kong();
DatasetPreset dataset_reality_mining();

/// All four, in Table 1 order.
std::vector<DatasetPreset> all_datasets();

}  // namespace odtn
