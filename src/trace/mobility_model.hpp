// Building blocks of the synthetic mobility model.
//
// The four experimental data sets of the paper are proprietary; the
// generators in trace/generators.hpp stand in for them. This header holds
// the reusable pieces: diurnal/weekly activity shaping, heavy-tailed
// contact-duration sampling, and scanner-granularity quantization -- the
// structural properties the paper's conclusions rest on.
#pragma once

#include <array>
#include <vector>

#include "core/contact.hpp"
#include "util/rng.hpp"

namespace odtn {

/// Piecewise-constant relative activity by hour-of-day (period 24 h),
/// optionally modulated by day-of-week (period 7 days, day 0 = trace
/// start). Values are relative weights; value_at is their product.
class ActivityProfile {
 public:
  ActivityProfile();  ///< flat (always 1)
  ActivityProfile(std::array<double, 24> hourly, std::array<double, 7> weekly);

  double value_at(double time_seconds) const noexcept;
  double max_value() const noexcept { return max_; }

  /// Conference hours: active 9h-18h with a strong day bias and a small
  /// evening social tail; identical every day (conferences ignore
  /// weekends).
  static ActivityProfile conference();

  /// Campus life: workday peaks, quiet nights, reduced weekends.
  static ActivityProfile campus();

  /// City roaming: mild daytime bias, every day alike.
  static ActivityProfile city();

  static ActivityProfile flat() { return ActivityProfile(); }

 private:
  std::array<double, 24> hourly_;
  std::array<double, 7> weekly_;
  double max_ = 1.0;
};

/// Samples `count` event times over [0, duration] with density
/// proportional to profile.value_at (rejection sampling). Sorted output.
std::vector<double> sample_event_times(Rng& rng, const ActivityProfile& profile,
                                       double duration, std::size_t count);

/// Contact-duration mixture: with probability `short_fraction` the
/// contact lasts exactly one scan interval (granularity); otherwise it is
/// bounded-Pareto(granularity, max_duration, alpha) -- a heavy tail of
/// minutes-to-hours contacts, as in Figure 7 of the paper.
struct DurationModel {
  double short_fraction = 0.75;
  double alpha = 1.1;
  double max_duration = 4.0 * 3600.0;

  double sample(Rng& rng, double granularity) const;
};

/// Quantizes a raw contact to scanner granularity g: the begin snaps to
/// the scan tick at or before it, and the duration rounds up to a whole
/// number of scan intervals (a device seen during one scan yields a
/// one-interval contact). Requires g > 0.
Contact quantize_contact(const Contact& c, double granularity) noexcept;

}  // namespace odtn
