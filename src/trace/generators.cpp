#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/samplers.hpp"

namespace odtn {
namespace {

/// Lognormal multiplier with unit mean: exp(N(-sigma^2/2, sigma)).
double unit_mean_lognormal(Rng& rng, double sigma) {
  if (sigma <= 0.0) return 1.0;
  return sample_lognormal(rng, -0.5 * sigma * sigma, sigma);
}

}  // namespace

std::vector<NodeId> SyntheticTrace::internal_nodes() const {
  std::vector<NodeId> nodes(num_internal);
  for (std::size_t i = 0; i < num_internal; ++i)
    nodes[i] = static_cast<NodeId>(i);
  return nodes;
}

std::size_t SyntheticTrace::internal_contact_count() const {
  std::size_t count = 0;
  for (const Contact& c : graph.contacts())
    if (c.u < num_internal && c.v < num_internal) ++count;
  return count;
}

std::size_t SyntheticTrace::external_contact_count() const {
  return graph.num_contacts() - internal_contact_count();
}

double SyntheticTrace::internal_contact_rate(double unit,
                                             bool include_external) const {
  if (num_internal == 0 || graph.duration() <= 0.0) return 0.0;
  double logs = 2.0 * static_cast<double>(internal_contact_count());
  if (include_external) logs += static_cast<double>(external_contact_count());
  return logs / static_cast<double>(num_internal) /
         (graph.duration() / unit);
}

SyntheticTrace generate_trace(const SyntheticTraceSpec& spec,
                              std::uint64_t seed) {
  if (spec.num_internal < 2)
    throw std::invalid_argument("generate_trace: need >= 2 internal nodes");
  if (spec.duration <= 0.0 || spec.granularity <= 0.0)
    throw std::invalid_argument("generate_trace: bad duration/granularity");

  Rng rng(seed);
  const std::size_t n_int = spec.num_internal;
  const std::size_t n_ext = spec.num_external;
  const std::size_t communities = std::max<std::size_t>(1, spec.num_communities);

  // Node attributes.
  std::vector<double> activity(n_int);
  std::vector<std::size_t> community(n_int);
  for (std::size_t i = 0; i < n_int; ++i) {
    activity[i] = unit_mean_lognormal(rng, spec.node_activity_sigma);
    community[i] = i % communities;  // balanced assignment
  }
  std::vector<double> popularity(n_ext);
  for (std::size_t e = 0; e < n_ext; ++e)
    popularity[e] = unit_mean_lognormal(rng, spec.external_popularity_sigma);

  std::vector<Contact> contacts;

  auto emit_pair = [&](NodeId a, NodeId b, double mean_contacts,
                       const DurationModel& durations) {
    if (mean_contacts <= 0.0) return;
    const std::size_t count = sample_poisson(rng, mean_contacts);
    if (count == 0) return;
    const auto begins =
        sample_event_times(rng, spec.profile, spec.duration, count);
    // The experiment (and its scanning) stops at spec.duration: clip.
    const double trace_end =
        std::ceil(spec.duration / spec.granularity) * spec.granularity;
    for (double begin : begins) {
      const double length = durations.sample(rng, spec.granularity);
      Contact c{a, b, begin, begin + length};
      c = quantize_contact(c, spec.granularity);
      c.end = std::min(c.end, trace_end);
      if (c.end > c.begin) contacts.push_back(c);
    }
  };

  // Internal-internal pairs.
  for (std::size_t i = 0; i < n_int; ++i) {
    for (std::size_t j = i + 1; j < n_int; ++j) {
      const bool same = community[i] == community[j];
      const double mean = spec.pair_contacts_mean *
                          (same ? spec.intra_boost : 1.0) * activity[i] *
                          activity[j];
      emit_pair(static_cast<NodeId>(i), static_cast<NodeId>(j), mean,
                same ? spec.intra_duration : spec.cross_duration);
    }
  }

  // Internal-external pairs: the experimental device logs the sighting.
  for (std::size_t i = 0; i < n_int; ++i) {
    for (std::size_t e = 0; e < n_ext; ++e) {
      const double mean =
          spec.external_pair_contacts_mean * activity[i] * popularity[e];
      emit_pair(static_cast<NodeId>(i), static_cast<NodeId>(n_int + e), mean,
                spec.cross_duration);
    }
  }

  // Gatherings: co-location episodes creating clique-shaped
  // contemporaneous contacts among the attendees.
  if (spec.gatherings.per_day > 0.0 && communities >= 1) {
    const GatheringModel& gm = spec.gatherings;
    const double days = spec.duration / 86400.0;
    const std::size_t count = sample_poisson(rng, gm.per_day * days);
    const auto starts =
        sample_event_times(rng, spec.profile, spec.duration, count);
    const double mu =
        std::log(gm.duration_mean) - 0.5 * gm.duration_sigma * gm.duration_sigma;
    for (double start : starts) {
      const std::size_t host = rng.below(communities);
      const bool plenary = rng.bernoulli(gm.plenary_prob);
      const double length = sample_lognormal(rng, mu, gm.duration_sigma) *
                            (plenary ? gm.plenary_length_factor : 1.0);
      // Attendee presence windows within [start, start + length].
      std::vector<std::pair<double, double>> stays;  // (arrive, depart)
      std::vector<NodeId> who;
      for (std::size_t i = 0; i < n_int; ++i) {
        const bool member = plenary || community[i] == host;
        if (!rng.bernoulli(member ? gm.member_prob : gm.outsider_prob))
          continue;
        double arrive, depart;
        if (member && !plenary) {
          // Community members sit through their session together: the
          // long "familiar people" contacts of §6.2.
          arrive = start + rng.uniform(0.0, 0.3 * length);
          depart = start + rng.uniform(0.7 * length, length);
        } else {
          // Outsiders drop by briefly; in plenaries (breaks, meals)
          // everyone circulates, so pairwise co-location is brief even
          // though the crowd is large -- these are the short shortcut
          // contacts duration-filtering removes.
          const double stay = gm.outsider_stay_fraction * length;
          arrive = start + rng.uniform(0.0, length - stay);
          depart = arrive + stay;
        }
        who.push_back(static_cast<NodeId>(i));
        stays.emplace_back(arrive, depart);
      }
      for (std::size_t a = 0; a < who.size(); ++a) {
        for (std::size_t b = a + 1; b < who.size(); ++b) {
          const double begin = std::max(stays[a].first, stays[b].first);
          const double end = std::min(stays[a].second, stays[b].second);
          if (begin >= end) continue;
          Contact c{who[a], who[b], begin, end};
          c = quantize_contact(c, spec.granularity);
          const double trace_end =
              std::ceil(spec.duration / spec.granularity) * spec.granularity;
          c.end = std::min(c.end, trace_end);
          if (c.end > c.begin) contacts.push_back(c);
        }
      }
    }
  }

  contacts = merge_overlapping_contacts(std::move(contacts));
  SyntheticTrace trace{TemporalGraph(n_int + n_ext, std::move(contacts)),
                       n_int, spec.name};
  return trace;
}

}  // namespace odtn
