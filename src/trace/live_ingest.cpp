#include "trace/live_ingest.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <span>
#include <stdexcept>
#include <thread>

#include "core/contact.hpp"

namespace odtn {

LiveTailReader::LiveTailReader(const std::string& path, bool follow,
                               int poll_ms)
    : follow_(follow), poll_ms_(poll_ms < 1 ? 1 : poll_ms), path_(path) {
  if (path == "-") {
    fd_ = STDIN_FILENO;
    owns_fd_ = false;
  } else {
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0)
      throw TraceError({TraceErrorCode::kCannotOpen, 0, 0, path,
                        "cannot open live feed: " + path + " (" +
                            std::strerror(errno) + ")"});
    owns_fd_ = true;
  }
  struct stat st {};
  if (::fstat(fd_, &st) == 0) regular_file_ = S_ISREG(st.st_mode);
}

LiveTailReader::~LiveTailReader() {
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

std::size_t LiveTailReader::read_chunk(char* buf, std::size_t n) {
  for (;;) {
    const ssize_t got = ::read(fd_, buf, n);
    if (got > 0) return static_cast<std::size_t>(got);
    if (got == 0) {
      // EOF. A followed regular file may still grow; everything else
      // (pipe writer closed, stdin exhausted, one-shot file) is done.
      if (!(follow_ && regular_file_)) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms_));
      continue;
    }
    if (errno == EINTR) continue;
    throw TraceError({TraceErrorCode::kIoError, 0, 0, path_,
                      "read failed on live feed: " + path_ + " (" +
                          std::strerror(errno) + ")"});
  }
}

LiveIngestSession::LiveIngestSession(IncrementalCdfOptions options,
                                     ParseOptions parse)
    : options_(std::move(options)), parser_(std::move(parse)) {}

void LiveIngestSession::feed(const char* data, std::size_t n) {
  parser_.feed(data, n);
}

void LiveIngestSession::flush() { parser_.flush(); }

std::uint64_t LiveIngestSession::commit_epoch() {
  std::vector<Contact> drained = parser_.drain_contacts();
  if (pending_.empty()) {
    pending_ = std::move(drained);
  } else {
    pending_.insert(pending_.end(), drained.begin(), drained.end());
  }
  if (!engine_) {
    if (!parser_.header_complete())
      throw std::logic_error(
          "live ingest: feed headers incomplete; cannot create the engine");
    engine_.emplace(parser_.declared_nodes(), parser_.directed(), options_);
  }
  if (pending_.empty()) return engine_->epoch();

  // A live batch may be mildly out of order internally; canonical order
  // within the batch is ours to restore. Order against already-committed
  // history is not: those records are dropped and counted.
  std::sort(pending_.begin(), pending_.end(), contact_less);
  std::size_t keep_from = 0;
  const auto committed = engine_->graph().contacts();
  if (!committed.empty()) {
    const Contact& last = committed.back();
    while (keep_from < pending_.size() &&
           contact_less(pending_[keep_from], last))
      ++keep_from;
  }
  stats_.below_watermark += keep_from;
  if (keep_from == pending_.size()) {
    pending_.clear();
    return engine_->epoch();
  }
  const std::span<const Contact> batch(pending_.data() + keep_from,
                                       pending_.size() - keep_from);
  const std::uint64_t epoch = engine_->append(batch);
  stats_.epochs += 1;
  stats_.contacts_ingested += batch.size();
  pending_.clear();
  return epoch;
}

}  // namespace odtn
