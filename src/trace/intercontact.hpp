// Inter-contact time analysis.
//
// The inter-contact time -- the gap between two successive contacts of
// the same device pair -- is THE statistic prior characterization work
// focused on ([2], [9] in the paper): its aggregated distribution shows
// a power-law-like body up to about half a day followed by an
// exponential decay. §3.4 notes the base model's light-tailed
// assumption "holds only at the timescale of days and weeks". This
// module extracts per-pair gaps and the aggregated CCDF from any trace
// so the assumption can be checked (bench_ext_intercontact).
#pragma once

#include <vector>

#include "core/temporal_graph.hpp"

namespace odtn {

/// All inter-contact gaps of one unordered pair: time from the end of a
/// contact to the begin of the pair's next contact. Pairs with fewer
/// than two contacts contribute nothing.
std::vector<double> pair_inter_contact_times(const TemporalGraph& graph,
                                             NodeId u, NodeId v);

/// Aggregated gaps over all pairs (the paper's [2] aggregation).
std::vector<double> all_inter_contact_times(const TemporalGraph& graph);

/// Summary of the aggregated inter-contact distribution.
struct InterContactSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  /// Tail exponent estimate (Hill-style, over the top `tail_fraction`
  /// of the sample); large values indicate light tails.
  double tail_exponent = 0.0;
};

/// Computes the summary; `tail_fraction` in (0, 1] selects the upper
/// order statistics used for the tail-exponent estimate.
InterContactSummary summarize_inter_contact(const TemporalGraph& graph,
                                            double tail_fraction = 0.1);

}  // namespace odtn
