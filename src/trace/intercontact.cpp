#include "trace/intercontact.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace odtn {

std::vector<double> pair_inter_contact_times(const TemporalGraph& graph,
                                             NodeId u, NodeId v) {
  if (u >= graph.num_nodes() || v >= graph.num_nodes() || u == v)
    throw std::invalid_argument("pair_inter_contact_times: bad pair");
  std::vector<double> gaps;
  double previous_end = -1.0;
  bool seen = false;
  // contacts_of(u) is in time order; filter to the pair.
  for (std::uint32_t idx : graph.contacts_of(u)) {
    const Contact& c = graph.contacts()[idx];
    if (c.u != v && c.v != v) continue;
    if (seen) gaps.push_back(std::max(0.0, c.begin - previous_end));
    // Max, not overwrite: a nested contact ([0,100] then [10,20]) must
    // not rewind the high-water mark, or gaps diverge from
    // all_inter_contact_times on overlapping traces.
    previous_end = seen ? std::max(previous_end, c.end) : c.end;
    seen = true;
  }
  return gaps;
}

std::vector<double> all_inter_contact_times(const TemporalGraph& graph) {
  // Sweep contacts once, tracking the previous end per unordered pair.
  std::map<std::pair<NodeId, NodeId>, double> previous_end;
  std::vector<double> gaps;
  for (const Contact& c : graph.contacts()) {
    const auto key = std::minmax(c.u, c.v);
    const auto it = previous_end.find(key);
    if (it != previous_end.end())
      gaps.push_back(std::max(0.0, c.begin - it->second));
    previous_end[key] = std::max(
        c.end, it != previous_end.end() ? it->second : c.end);
  }
  return gaps;
}

InterContactSummary summarize_inter_contact(const TemporalGraph& graph,
                                            double tail_fraction) {
  if (!(tail_fraction > 0.0) || tail_fraction > 1.0)
    throw std::invalid_argument("summarize_inter_contact: bad tail_fraction");
  auto gaps = all_inter_contact_times(graph);
  InterContactSummary summary;
  summary.count = gaps.size();
  if (gaps.empty()) return summary;
  std::sort(gaps.begin(), gaps.end());
  double sum = 0.0;
  for (double g : gaps) sum += g;
  summary.mean = sum / static_cast<double>(gaps.size());
  summary.median = gaps[gaps.size() / 2];
  summary.p90 = gaps[static_cast<std::size_t>(
      0.9 * static_cast<double>(gaps.size() - 1))];

  // Hill estimator over the top tail_fraction order statistics
  // (positive gaps only).
  const auto first_positive =
      std::upper_bound(gaps.begin(), gaps.end(), 0.0);
  const auto positive = static_cast<std::size_t>(gaps.end() - first_positive);
  const auto k = std::max<std::size_t>(
      2, static_cast<std::size_t>(tail_fraction *
                                  static_cast<double>(positive)));
  if (positive >= 2 && k >= 2 && k <= positive) {
    const double x_k = gaps[gaps.size() - k];
    if (x_k > 0.0) {
      double acc = 0.0;
      for (std::size_t i = gaps.size() - k + 1; i < gaps.size(); ++i)
        acc += std::log(gaps[i] / x_k);
      summary.tail_exponent =
          acc > 0.0 ? static_cast<double>(k - 1) / acc : 0.0;
    }
  }
  return summary;
}

}  // namespace odtn
