#include "trace/imports.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace odtn {
namespace {

[[noreturn]] void fail(const char* format_name, std::size_t line,
                       const std::string& message) {
  throw std::runtime_error(std::string(format_name) + " parse error at line " +
                           std::to_string(line) + ": " + message);
}

bool is_comment_or_blank(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#' || c == ';';
  }
  return true;  // blank
}

}  // namespace

TemporalGraph import_crawdad_contacts(std::istream& in) {
  struct RawContact {
    long u, v;
    double begin, end;
  };
  std::vector<RawContact> raw;
  std::string line;
  std::size_t line_no = 0;
  long min_id = std::numeric_limits<long>::max();
  long max_id = std::numeric_limits<long>::min();
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (is_comment_or_blank(line)) continue;
    std::istringstream row(line);
    RawContact c{};
    if (!(row >> c.u >> c.v >> c.begin >> c.end))
      fail("crawdad", line_no, "expected 'u v start end'");
    if (c.u < 0 || c.v < 0) fail("crawdad", line_no, "negative node id");
    if (c.u == c.v) fail("crawdad", line_no, "self contact");
    if (c.end < c.begin) fail("crawdad", line_no, "end before start");
    min_id = std::min({min_id, c.u, c.v});
    max_id = std::max({max_id, c.u, c.v});
    raw.push_back(c);
  }
  if (raw.empty()) return TemporalGraph(0, {});
  // 1-based data sets never use id 0; shift them down.
  const long shift = min_id >= 1 ? 1 : 0;
  std::vector<Contact> contacts;
  contacts.reserve(raw.size());
  for (const RawContact& c : raw)
    contacts.push_back({static_cast<NodeId>(c.u - shift),
                        static_cast<NodeId>(c.v - shift), c.begin, c.end});
  return TemporalGraph(static_cast<std::size_t>(max_id - shift + 1),
                       std::move(contacts));
}

TemporalGraph import_one_events(std::istream& in) {
  std::map<std::pair<long, long>, double> open;  // pair -> up time
  std::vector<Contact> contacts;
  long max_id = -1;
  double last_time = 0.0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (is_comment_or_blank(line)) continue;
    std::istringstream row(line);
    double time = 0.0;
    std::string kind, state;
    long u = 0, v = 0;
    if (!(row >> time >> kind >> u >> v >> state))
      fail("ONE", line_no, "expected '<time> CONN <u> <v> up|down'");
    if (kind != "CONN") continue;  // other ONE event types are ignored
    if (u < 0 || v < 0 || u == v) fail("ONE", line_no, "bad node pair");
    if (time < last_time) fail("ONE", line_no, "events out of order");
    last_time = std::max(last_time, time);
    max_id = std::max({max_id, u, v});
    const auto key = std::minmax(u, v);
    if (state == "up") {
      if (!open.emplace(key, time).second)
        fail("ONE", line_no, "connection already up");
    } else if (state == "down") {
      const auto it = open.find(key);
      if (it == open.end()) fail("ONE", line_no, "down without up");
      contacts.push_back({static_cast<NodeId>(key.first),
                          static_cast<NodeId>(key.second), it->second, time});
      open.erase(it);
    } else {
      fail("ONE", line_no, "state must be 'up' or 'down'");
    }
  }
  // Close connections still open at the end of input.
  for (const auto& [key, up_time] : open)
    contacts.push_back({static_cast<NodeId>(key.first),
                        static_cast<NodeId>(key.second), up_time, last_time});
  return TemporalGraph(static_cast<std::size_t>(max_id + 1),
                       std::move(contacts));
}

TemporalGraph import_crawdad_contacts_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return import_crawdad_contacts(in);
}

TemporalGraph import_one_events_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return import_one_events(in);
}

}  // namespace odtn
