#include "trace/mobility_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/samplers.hpp"
#include "util/time_format.hpp"

namespace odtn {

ActivityProfile::ActivityProfile() {
  hourly_.fill(1.0);
  weekly_.fill(1.0);
  max_ = 1.0;
}

ActivityProfile::ActivityProfile(std::array<double, 24> hourly,
                                 std::array<double, 7> weekly)
    : hourly_(hourly), weekly_(weekly) {
  double max_h = 0.0, max_w = 0.0;
  for (double h : hourly_) max_h = std::max(max_h, h);
  for (double w : weekly_) max_w = std::max(max_w, w);
  max_ = max_h * max_w;
}

double ActivityProfile::value_at(double t) const noexcept {
  if (t < 0) t = 0;
  const double day_seconds = std::fmod(t, kDay);
  const auto hour = static_cast<std::size_t>(day_seconds / kHour) % 24;
  const auto day = static_cast<std::size_t>(t / kDay) % 7;
  return hourly_[hour] * weekly_[day];
}

ActivityProfile ActivityProfile::conference() {
  std::array<double, 24> hourly{};
  for (std::size_t h = 0; h < 24; ++h) {
    if (h >= 9 && h < 18) {
      hourly[h] = 1.0;  // sessions and breaks
    } else if (h >= 18 && h < 23) {
      hourly[h] = 0.35;  // evening social events
    } else {
      hourly[h] = 0.02;  // night
    }
  }
  std::array<double, 7> weekly{};
  weekly.fill(1.0);
  return ActivityProfile(hourly, weekly);
}

ActivityProfile ActivityProfile::campus() {
  std::array<double, 24> hourly{};
  for (std::size_t h = 0; h < 24; ++h) {
    if (h >= 9 && h < 17) {
      hourly[h] = 1.0;  // classes / lab hours
    } else if ((h >= 7 && h < 9) || (h >= 17 && h < 22)) {
      hourly[h] = 0.4;
    } else {
      hourly[h] = 0.05;
    }
  }
  std::array<double, 7> weekly{1.0, 1.0, 1.0, 1.0, 1.0, 0.35, 0.3};
  return ActivityProfile(hourly, weekly);
}

ActivityProfile ActivityProfile::city() {
  std::array<double, 24> hourly{};
  for (std::size_t h = 0; h < 24; ++h) {
    if (h >= 8 && h < 23) {
      hourly[h] = 1.0;
    } else {
      hourly[h] = 0.15;
    }
  }
  std::array<double, 7> weekly{};
  weekly.fill(1.0);
  return ActivityProfile(hourly, weekly);
}

std::vector<double> sample_event_times(Rng& rng,
                                       const ActivityProfile& profile,
                                       double duration, std::size_t count) {
  assert(duration > 0.0);
  std::vector<double> times;
  times.reserve(count);
  const double ceiling = profile.max_value();
  while (times.size() < count) {
    const double t = rng.uniform(0.0, duration);
    if (rng.next_double() * ceiling <= profile.value_at(t))
      times.push_back(t);
  }
  std::sort(times.begin(), times.end());
  return times;
}

double DurationModel::sample(Rng& rng, double granularity) const {
  if (rng.bernoulli(short_fraction)) return granularity;
  return sample_bounded_pareto(rng, granularity,
                               std::max(max_duration, granularity * 2.0),
                               alpha);
}

Contact quantize_contact(const Contact& c, double granularity) noexcept {
  assert(granularity > 0.0);
  Contact out = c;
  out.begin = std::floor(c.begin / granularity) * granularity;
  // A periodic scanner sees the contact on round(duration / g) scans
  // (at least one): a device seen during a single scan yields exactly a
  // one-interval contact, as in the paper's Figure 7 discussion.
  const double scans =
      std::max(1.0, std::round(c.duration() / granularity));
  out.end = out.begin + scans * granularity;
  return out;
}

}  // namespace odtn
