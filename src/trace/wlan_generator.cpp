#include "trace/wlan_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/samplers.hpp"

namespace odtn {
namespace {

/// One AP association session.
struct Session {
  NodeId device;
  double begin;
  double end;
};

}  // namespace

WlanTrace generate_wlan_trace(const WlanTraceSpec& spec, std::uint64_t seed) {
  if (spec.num_devices < 2 || spec.num_access_points < 1)
    throw std::invalid_argument("generate_wlan_trace: need devices and APs");
  if (!(spec.duration > 0.0) || !(spec.session_mean > 0.0))
    throw std::invalid_argument("generate_wlan_trace: bad durations");

  Rng rng(seed);

  // AP popularity (unit mean) and its cumulative distribution for
  // popularity-weighted selection.
  std::vector<double> popularity(spec.num_access_points);
  double total_popularity = 0.0;
  for (double& p : popularity) {
    p = sample_lognormal(rng,
                         -0.5 * spec.ap_popularity_sigma *
                             spec.ap_popularity_sigma,
                         spec.ap_popularity_sigma);
    total_popularity += p;
  }
  std::vector<double> cumulative(spec.num_access_points);
  double acc = 0.0;
  for (std::size_t a = 0; a < popularity.size(); ++a) {
    acc += popularity[a];
    cumulative[a] = acc;
  }
  auto sample_popular_ap = [&]() -> std::size_t {
    const double u = rng.uniform(0.0, total_popularity);
    return static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
  };

  // Home APs per device (popularity-biased, like dorms near hubs).
  const std::size_t homes =
      std::min(std::max<std::size_t>(1, spec.home_aps),
               spec.num_access_points);
  std::vector<std::vector<std::size_t>> home(spec.num_devices);
  for (auto& h : home) {
    while (h.size() < homes) {
      const std::size_t ap = sample_popular_ap();
      if (std::find(h.begin(), h.end(), ap) == h.end()) h.push_back(ap);
    }
  }

  // Sessions per device, diurnally shaped.
  const double mu = std::log(spec.session_mean) -
                    0.5 * spec.session_sigma * spec.session_sigma;
  std::vector<std::vector<Session>> by_ap(spec.num_access_points);
  std::size_t num_sessions = 0;
  for (NodeId device = 0; device < spec.num_devices; ++device) {
    const double days = spec.duration / 86400.0;
    const std::size_t count =
        sample_poisson(rng, spec.sessions_per_day * days);
    const auto starts =
        sample_event_times(rng, spec.profile, spec.duration, count);
    for (double start : starts) {
      const std::size_t ap = rng.bernoulli(spec.home_ap_bias)
                                 ? home[device][rng.below(homes)]
                                 : sample_popular_ap();
      const double length = sample_lognormal(rng, mu, spec.session_sigma);
      by_ap[ap].push_back(
          {device, start, std::min(start + length, spec.duration)});
      ++num_sessions;
    }
  }

  // Contacts: pairwise co-association overlaps, per AP, by sweep.
  std::vector<Contact> contacts;
  for (auto& sessions : by_ap) {
    std::sort(sessions.begin(), sessions.end(),
              [](const Session& a, const Session& b) {
                return a.begin < b.begin;
              });
    // Active set of sessions still open when the next one begins.
    std::vector<const Session*> active;
    for (const Session& s : sessions) {
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [&](const Session* open) {
                                    return open->end <= s.begin;
                                  }),
                   active.end());
      for (const Session* open : active) {
        if (open->device == s.device) continue;
        const double begin = s.begin;  // >= open->begin by sort order
        const double end = std::min(open->end, s.end);
        if (begin < end)
          contacts.push_back({open->device, s.device, begin, end});
      }
      active.push_back(&s);
    }
  }

  contacts = merge_overlapping_contacts(std::move(contacts));
  return {TemporalGraph(spec.num_devices, std::move(contacts)),
          num_sessions};
}

}  // namespace odtn
