#include "trace/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace odtn {
namespace {

static_assert(std::endian::native == std::endian::little,
              "snapshot codec assumes a little-endian host");
// The contacts section is one memcpy of the packed Contact array; the
// asserts pin the layout the on-disk format relies on.
static_assert(sizeof(Contact) == 24 && offsetof(Contact, u) == 0 &&
              offsetof(Contact, v) == 4 && offsetof(Contact, begin) == 8 &&
              offsetof(Contact, end) == 16);
static_assert(sizeof(NodeContact) == 24 && offsetof(NodeContact, begin) == 0 &&
              offsetof(NodeContact, end) == 8 && offsetof(NodeContact, to) == 16);

constexpr std::size_t kHeaderBytes = 136;
constexpr std::size_t kSectionAlign = 64;
constexpr std::size_t kNumSections = 5;

constexpr std::size_t align_up(std::size_t v) {
  return (v + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

[[noreturn]] void fail(const std::string& what) {
  throw SnapshotError("snapshot: " + what);
}

/// Little-endian primitive writer into a pre-sized buffer (the section
/// offsets are known up front, unlike the append-only shard messages).
struct Cursor {
  std::uint8_t* base;
  std::size_t pos = 0;

  void put_u16(std::uint16_t v) { put(&v, sizeof v); }
  void put_u32(std::uint32_t v) { put(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put(&v, sizeof v); }
  void put_f64(double v) { put(&v, sizeof v); }
  void put(const void* data, std::size_t n) {
    std::memcpy(base + pos, data, n);
    pos += n;
  }
};

struct Section {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

struct Header {
  bool directed = false;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_contacts = 0;
  std::uint64_t num_neighbors = 0;
  double start = 0.0;
  double end = 0.0;
  std::uint64_t total_size = 0;
  Section sections[kNumSections];  // contacts, node_offsets, node_contacts,
                                   // neighbor_offsets, neighbors_by_end
};

template <typename T>
T read_pod(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

Header parse_header(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderBytes) fail("truncated header");
  std::size_t pos = 0;
  auto u16 = [&] { auto v = read_pod<std::uint16_t>(data + pos); pos += 2; return v; };
  auto u32 = [&] { auto v = read_pod<std::uint32_t>(data + pos); pos += 4; return v; };
  auto u64 = [&] { auto v = read_pod<std::uint64_t>(data + pos); pos += 8; return v; };
  auto f64 = [&] { auto v = read_pod<double>(data + pos); pos += 8; return v; };

  if (u32() != kSnapshotMagic) fail("bad magic");
  if (u16() != kSnapshotVersion) fail("unsupported version");
  Header h;
  const std::uint8_t directed = data[pos++];
  if (directed > 1) fail("bad directed flag");
  h.directed = directed != 0;
  if (data[pos++] != 0) fail("reserved header byte must be zero");
  h.num_nodes = u64();
  h.num_contacts = u64();
  h.num_neighbors = u64();
  h.start = f64();
  h.end = f64();
  h.total_size = u64();
  for (Section& s : h.sections) {
    s.offset = u64();
    s.size = u64();
  }
  return h;
}

/// Checks one section-table entry against the CANONICAL layout: the
/// exact size implied by the header counts and the exact 64-byte-aligned
/// offset the encoder would have chosen. Accepting only the canonical
/// layout (plus the zero-gap check in the caller) makes decode-success
/// imply encode(decode(bytes)) == bytes, which the snapshot fuzzer
/// leans on.
void check_section(const Section& s, std::uint64_t expected_offset,
                   std::uint64_t expected_size, std::uint64_t total,
                   const char* name) {
  if (s.size != expected_size)
    fail(std::string(name) + ": section size disagrees with header counts");
  if (s.offset != expected_offset)
    fail(std::string(name) + ": non-canonical section offset");
  if (s.offset > total || total - s.offset < s.size)
    fail(std::string(name) + ": section outside buffer");
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const TemporalGraph& graph) {
  const std::span<const Contact> contacts = graph.contacts();
  const std::span<const std::uint32_t> node_offsets = graph.node_offsets();
  const std::span<const std::uint32_t> node_contacts =
      graph.node_contact_indices();
  const std::span<const std::uint32_t> neighbor_offsets =
      graph.neighbor_offsets();
  const std::span<const NodeContact> neighbors = graph.neighbor_records();

  Section sections[kNumSections];
  const std::uint64_t sizes[kNumSections] = {
      contacts.size_bytes(), node_offsets.size() * 4, node_contacts.size() * 4,
      neighbor_offsets.size() * 4, neighbors.size() * 24};
  std::size_t at = kHeaderBytes;
  for (std::size_t i = 0; i < kNumSections; ++i) {
    at = align_up(at);
    sections[i] = {at, sizes[i]};
    at += sizes[i];
  }
  const std::size_t total = at;

  std::vector<std::uint8_t> out(total, 0);  // gap/pad bytes stay zero
  Cursor w{out.data()};
  w.put_u32(kSnapshotMagic);
  w.put_u16(kSnapshotVersion);
  out[w.pos++] = graph.directed() ? 1 : 0;
  out[w.pos++] = 0;  // reserved
  w.put_u64(graph.num_nodes());
  w.put_u64(contacts.size());
  w.put_u64(neighbors.size());
  w.put_f64(graph.start_time());
  w.put_f64(graph.end_time());
  w.put_u64(total);
  for (const Section& s : sections) {
    w.put_u64(s.offset);
    w.put_u64(s.size);
  }

  // Empty sections have no bytes to copy (and their span data() may be
  // null, which memcpy must never see).
  const auto copy_section = [&](std::size_t i, const void* src,
                                std::size_t bytes) {
    if (bytes != 0) std::memcpy(out.data() + sections[i].offset, src, bytes);
  };
  copy_section(0, contacts.data(), contacts.size_bytes());
  copy_section(1, node_offsets.data(), node_offsets.size_bytes());
  copy_section(2, node_contacts.data(), node_contacts.size_bytes());
  copy_section(3, neighbor_offsets.data(), neighbor_offsets.size_bytes());
  // NodeContact carries 4 bytes of tail padding; write the fields
  // explicitly so the file bytes are a deterministic function of the
  // graph (the pad is already zero in `out`).
  Cursor n{out.data(), static_cast<std::size_t>(sections[4].offset)};
  for (const NodeContact& nc : neighbors) {
    n.put_f64(nc.begin);
    n.put_f64(nc.end);
    n.put_u32(nc.to);
    n.pos += 4;
  }
  return out;
}

TemporalGraph decode_snapshot(const std::uint8_t* data, std::size_t size,
                              std::shared_ptr<const void> backing) {
  if (reinterpret_cast<std::uintptr_t>(data) % alignof(double) != 0)
    fail("buffer base is not 8-byte aligned");
  const Header h = parse_header(data, size);
  if (h.total_size != size)
    fail("total_size disagrees with buffer (truncated or trailing bytes)");

  // Every count is first bounded by what could possibly fit in the
  // buffer, so the expected-size arithmetic below cannot overflow.
  if (h.num_nodes > 0xFFFFFFFFull || h.num_nodes + 1 > size / 4)
    fail("node count too large for buffer");
  if (h.num_contacts > size / 24) fail("contact count too large for buffer");
  if (h.num_neighbors > size / 24) fail("neighbor count too large for buffer");
  if (h.num_neighbors != h.num_contacts * (h.directed ? 1 : 2))
    fail("neighbor count disagrees with contact count");

  const std::uint64_t expected[kNumSections] = {
      h.num_contacts * 24, (h.num_nodes + 1) * 4, 2 * h.num_contacts * 4,
      (h.num_nodes + 1) * 4, h.num_neighbors * 24};
  static const char* const kNames[kNumSections] = {
      "contacts", "node_offsets", "node_contacts", "neighbor_offsets",
      "neighbors_by_end"};
  std::uint64_t at = kHeaderBytes;
  for (std::size_t i = 0; i < kNumSections; ++i) {
    const std::uint64_t aligned = align_up(static_cast<std::size_t>(at));
    check_section(h.sections[i], aligned, expected[i], h.total_size,
                  kNames[i]);
    for (std::uint64_t g = at; g < aligned; ++g)
      if (data[g] != 0) fail("alignment gap bytes must be zero");
    at = aligned + expected[i];
  }
  if (at != h.total_size) fail("total_size disagrees with section layout");

  const std::span<const Contact> contacts{
      reinterpret_cast<const Contact*>(data + h.sections[0].offset),
      static_cast<std::size_t>(h.num_contacts)};
  const std::span<const std::uint32_t> node_offsets{
      reinterpret_cast<const std::uint32_t*>(data + h.sections[1].offset),
      static_cast<std::size_t>(h.num_nodes + 1)};
  const std::span<const std::uint32_t> node_contacts{
      reinterpret_cast<const std::uint32_t*>(data + h.sections[2].offset),
      static_cast<std::size_t>(2 * h.num_contacts)};
  const std::span<const std::uint32_t> neighbor_offsets{
      reinterpret_cast<const std::uint32_t*>(data + h.sections[3].offset),
      static_cast<std::size_t>(h.num_nodes + 1)};
  const std::span<const NodeContact> neighbors{
      reinterpret_cast<const NodeContact*>(data + h.sections[4].offset),
      static_cast<std::size_t>(h.num_neighbors)};

  // Graph invariants, one O(n) sweep each. These are what make a decoded
  // view safe to hand to the engines: every index in range, every array
  // monotone where binary searches assume it.
  double max_end = 0.0;
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    const Contact& c = contacts[i];
    if (!is_valid_contact(c)) fail("malformed contact");
    if (c.u >= h.num_nodes || c.v >= h.num_nodes)
      fail("contact node out of range");
    if (i > 0 && contact_less(c, contacts[i - 1]))
      fail("contacts not in canonical order");
    max_end = i == 0 ? c.end : std::max(max_end, c.end);
  }
  if (contacts.empty()) {
    if (h.start != 0.0 || h.end != 0.0)
      fail("nonzero time span on an empty trace");
  } else if (h.start != contacts.front().begin || h.end != max_end) {
    fail("header time span disagrees with contacts");
  }

  if (node_offsets.front() != 0 || node_offsets.back() != 2 * h.num_contacts)
    fail("node_offsets endpoints inconsistent");
  for (std::size_t i = 1; i < node_offsets.size(); ++i)
    if (node_offsets[i] < node_offsets[i - 1])
      fail("node_offsets not monotone");
  for (const std::uint32_t idx : node_contacts)
    if (idx >= h.num_contacts) fail("node_contacts index out of range");

  if (neighbor_offsets.front() != 0 || neighbor_offsets.back() != h.num_neighbors)
    fail("neighbor_offsets endpoints inconsistent");
  for (std::size_t i = 1; i < neighbor_offsets.size(); ++i)
    if (neighbor_offsets[i] < neighbor_offsets[i - 1])
      fail("neighbor_offsets not monotone");
  for (std::size_t n = 0; n + 1 < neighbor_offsets.size(); ++n) {
    for (std::uint32_t i = neighbor_offsets[n]; i < neighbor_offsets[n + 1];
         ++i) {
      const NodeContact& nc = neighbors[i];
      if (nc.to >= h.num_nodes) fail("neighbor peer out of range");
      if (!(nc.begin <= nc.end)) fail("malformed neighbor window");
      if (i > neighbor_offsets[n]) {
        const NodeContact& p = neighbors[i - 1];
        if (nc.end < p.end ||
            (nc.end == p.end &&
             (nc.begin < p.begin || (nc.begin == p.begin && nc.to < p.to))))
          fail("neighbor run not sorted by (end, begin, to)");
      }
      // Reserved pad bytes must be zero: with this enforced, any buffer
      // that decodes also re-encodes to the identical bytes.
      if (read_pod<std::uint32_t>(data + h.sections[4].offset + i * 24 + 20) !=
          0)
        fail("neighbor record pad bytes must be zero");
    }
  }

  return TemporalGraph::adopt_view(
      static_cast<std::size_t>(h.num_nodes), h.directed, contacts, h.start,
      h.end, node_offsets, node_contacts, neighbor_offsets, neighbors,
      std::move(backing));
}

TemporalGraph decode_snapshot(
    std::shared_ptr<const std::vector<std::uint8_t>> bytes) {
  const std::uint8_t* data = bytes->data();
  const std::size_t size = bytes->size();
  return decode_snapshot(data, size, std::move(bytes));
}

void write_snapshot_file(const std::string& path,
                         const TemporalGraph& graph) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(graph);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) fail("cannot create '" + path + "': " + std::strerror(errno));
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed)
    fail("short write to '" + path + "'");
}

namespace {

/// Owns one read-only mmap; the shared_ptr<Mapping> given to adopt_view
/// unmaps when the last graph copy drops it.
struct Mapping {
  void* addr = MAP_FAILED;
  std::size_t len = 0;
  ~Mapping() {
    if (addr != MAP_FAILED && len > 0) ::munmap(addr, len);
  }
};

}  // namespace

TemporalGraph load_snapshot_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    fail("cannot open '" + path + "': " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    fail("'" + path + "' is not a regular file");
  }
  auto mapping = std::make_shared<Mapping>();
  mapping->len = static_cast<std::size_t>(st.st_size);
  if (mapping->len == 0) {
    ::close(fd);
    fail("'" + path + "' is empty");
  }
  mapping->addr =
      ::mmap(nullptr, mapping->len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (mapping->addr == MAP_FAILED)
    fail("cannot mmap '" + path + "': " + std::strerror(errno));
  const auto* data = static_cast<const std::uint8_t*>(mapping->addr);
  const std::size_t size = mapping->len;
  return decode_snapshot(data, size, std::move(mapping));
}

}  // namespace odtn
