#include "sim/local_forwarding.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/optimal_paths.hpp"
#include "trace/generators.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TemporalGraph relay_graph() {
  // 0 meets 1 (a hub that later meets 2 = the destination); 0 also has a
  // late direct contact with 2.
  return TemporalGraph(4, {{1, 3, 0.0, 1.0},    // hub activity (history)
                           {1, 2, 2.0, 3.0},    // hub meets destination
                           {0, 1, 10.0, 11.0},  // source meets hub
                           {1, 2, 20.0, 21.0},  // hub meets dest again
                           {0, 2, 50.0, 51.0}});
}

TEST(LocalForwarding, DirectRuleWaitsForDestination) {
  const auto out = simulate_local_forwarding(relay_graph(), 0, 2, 5.0,
                                             LocalRule::kNone);
  EXPECT_DOUBLE_EQ(out.delivery_time, 50.0);
  EXPECT_EQ(out.handoffs, 1);  // the delivery itself
}

TEST(LocalForwarding, FrequencyGreedyUsesTheHub) {
  // By t=10 the hub (node 1) has met the destination once; the source
  // never has. The greedy rule hands over and delivers at t=20.
  const auto out = simulate_local_forwarding(relay_graph(), 0, 2, 5.0,
                                             LocalRule::kFrequencyGreedy);
  EXPECT_DOUBLE_EQ(out.delivery_time, 20.0);
  EXPECT_EQ(out.handoffs, 2);
}

TEST(LocalForwarding, LastContactRuleUsesTheHub) {
  const auto out = simulate_local_forwarding(
      relay_graph(), 0, 2, 5.0, LocalRule::kLastContactWithDestination);
  EXPECT_DOUBLE_EQ(out.delivery_time, 20.0);
}

TEST(LocalForwarding, MostActiveSeeksHighDegree) {
  // Node 1 has more logged contacts than node 0 by their encounter.
  const auto out = simulate_local_forwarding(relay_graph(), 0, 2, 5.0,
                                             LocalRule::kMostActive);
  EXPECT_DOUBLE_EQ(out.delivery_time, 20.0);
}

TEST(LocalForwarding, HopLimitForbidsHandoffs) {
  const auto out = simulate_local_forwarding(
      relay_graph(), 0, 2, 5.0, LocalRule::kFrequencyGreedy, /*hop_limit=*/1);
  // Only direct delivery allowed.
  EXPECT_DOUBLE_EQ(out.delivery_time, 50.0);
}

TEST(LocalForwarding, SourceEqualsDestination) {
  const auto out = simulate_local_forwarding(relay_graph(), 2, 2, 5.0,
                                             LocalRule::kNone);
  EXPECT_DOUBLE_EQ(out.delivery_time, 5.0);
  EXPECT_EQ(out.handoffs, 0);
}

TEST(LocalForwarding, UnreachableStaysInfinite) {
  TemporalGraph g(3, {{0, 1, 0.0, 1.0}});
  const auto out =
      simulate_local_forwarding(g, 0, 2, 0.0, LocalRule::kFrequencyGreedy);
  EXPECT_EQ(out.delivery_time, kInf);
}

TEST(LocalForwarding, OutOfRangeThrows) {
  TemporalGraph g(2, {});
  EXPECT_THROW(
      simulate_local_forwarding(g, 0, 7, 0.0, LocalRule::kNone),
      std::out_of_range);
}

TEST(LocalForwarding, NeverBeatsTheOptimalPath) {
  // The price of locality is non-negative: no local rule can deliver
  // earlier than the delay-optimal path (oracle del(t)).
  SyntheticTraceSpec spec;
  spec.num_internal = 20;
  spec.duration = kDay;
  spec.pair_contacts_mean = 2.0;
  spec.num_communities = 4;
  spec.gatherings = {80.0, 0.4, 0.08, 10 * kMinute, 0.8, 0.1};
  const auto g = generate_trace(spec, 77).graph;

  SingleSourceEngine engine(g, 0);
  engine.run_to_fixpoint();
  for (auto rule : {LocalRule::kNone, LocalRule::kRandomWalk,
                    LocalRule::kMostActive,
                    LocalRule::kLastContactWithDestination,
                    LocalRule::kFrequencyGreedy}) {
    for (NodeId dst = 1; dst < 8; ++dst) {
      for (double t0 : {0.0, 6 * kHour, 12 * kHour}) {
        const auto out = simulate_local_forwarding(g, 0, dst, t0, rule);
        const double optimal = engine.frontier(dst).deliver_at(t0);
        EXPECT_GE(out.delivery_time + 1e-9, optimal)
            << local_rule_name(rule) << " dst=" << dst << " t0=" << t0;
      }
    }
  }
}

TEST(LocalForwarding, WarmedUpGreedyBeatsDirectOnCommunityTraces) {
  // With history warmed up (messages created mid-trace), the
  // destination-frequency rule outperforms direct delivery on a
  // community-structured trace. (Cold-started at the trace beginning it
  // can lose -- a single copy handed to an uninformed relay strands --
  // which is part of the Section 7 "price of locality" story; see
  // examples/local_forwarding.cpp.) Deterministic given the seeds.
  SyntheticTraceSpec spec;
  spec.num_internal = 24;
  spec.duration = 2 * kDay;
  spec.pair_contacts_mean = 0.8;
  spec.num_communities = 6;
  spec.intra_boost = 6.0;
  spec.gatherings = {50.0, 0.6, 0.04, 15 * kMinute, 0.8, 0.05};
  const auto g = generate_trace(spec, 99).graph;

  const double t0 = g.start_time() + 0.5 * g.duration();
  int direct_ok = 0, greedy_ok = 0;
  for (NodeId src = 0; src < 24; ++src) {
    for (NodeId dst = 0; dst < 24; ++dst) {
      if (src == dst) continue;
      const auto direct =
          simulate_local_forwarding(g, src, dst, t0, LocalRule::kNone);
      const auto greedy = simulate_local_forwarding(
          g, src, dst, t0, LocalRule::kFrequencyGreedy);
      if (direct.delivery_time - t0 <= 6 * kHour) ++direct_ok;
      if (greedy.delivery_time - t0 <= 6 * kHour) ++greedy_ok;
    }
  }
  EXPECT_GT(direct_ok, 0);
  EXPECT_GT(greedy_ok, direct_ok);
}

}  // namespace
}  // namespace odtn
