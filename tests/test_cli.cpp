#include "cli/args.hpp"
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace/trace_io.hpp"
#include "util/time_format.hpp"

namespace odtn::cli {
namespace {

TEST(ArgList, TakeOptionConsumes) {
  ArgList args({"--seed", "42", "pos"});
  EXPECT_EQ(args.take_option("seed"), "42");
  EXPECT_EQ(args.take_option("seed"), std::nullopt);
  EXPECT_EQ(args.take_positional(), "pos");
  EXPECT_NO_THROW(args.expect_empty());
}

TEST(ArgList, MissingValueThrows) {
  ArgList a({"--seed"});
  EXPECT_THROW(a.take_option("seed"), CliError);
  ArgList b({"--seed", "--other", "1"});
  EXPECT_THROW(b.take_option("seed"), CliError);
}

TEST(ArgList, FlagsAndPositionalsAreIndependent) {
  ArgList args({"file.txt", "--verbose"});
  EXPECT_TRUE(args.take_flag("verbose"));
  EXPECT_FALSE(args.take_flag("verbose"));
  EXPECT_EQ(args.take_positional(), "file.txt");
  EXPECT_EQ(args.take_positional(), std::nullopt);
}

TEST(ArgList, ExpectEmptyReportsLeftovers) {
  ArgList args({"--bogus", "x"});
  EXPECT_THROW(args.expect_empty(), CliError);
}

TEST(Parse, Numbers) {
  EXPECT_DOUBLE_EQ(parse_double("3.5", "x"), 3.5);
  EXPECT_EQ(parse_long("-7", "x"), -7);
  EXPECT_THROW(parse_double("abc", "x"), CliError);
  EXPECT_THROW(parse_long("1.5", "x"), CliError);
  EXPECT_THROW(parse_long("", "x"), CliError);
}

TEST(Parse, CountsRejectNegatives) {
  EXPECT_EQ(parse_count("42", "trials"), 42ul);
  EXPECT_EQ(parse_count("0", "trials"), 0ul);
  EXPECT_THROW(parse_count("-1", "trials"), CliError);
  EXPECT_THROW(parse_count("abc", "trials"), CliError);
  try {
    parse_count("-3", "n");
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    // The message must name the flag and the rejected value.
    EXPECT_NE(std::string(e.what()).find("--n"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(Parse, Durations) {
  EXPECT_DOUBLE_EQ(parse_duration("90", "x"), 90.0);
  EXPECT_DOUBLE_EQ(parse_duration("90s", "x"), 90.0);
  EXPECT_DOUBLE_EQ(parse_duration("10min", "x"), 600.0);
  EXPECT_DOUBLE_EQ(parse_duration("6h", "x"), 6 * kHour);
  EXPECT_DOUBLE_EQ(parse_duration("2d", "x"), 2 * kDay);
  EXPECT_DOUBLE_EQ(parse_duration("1wk", "x"), kWeek);
  EXPECT_THROW(parse_duration("10parsec", "x"), CliError);
  EXPECT_THROW(parse_duration("x", "x"), CliError);
}

class CliCommands : public ::testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return ::testing::TempDir() + "/odtn_cli_" + name;
  }
  void TearDown() override {
    for (const auto& f : created_) std::remove(f.c_str());
  }
  std::string track(const std::string& p) {
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

TEST_F(CliCommands, HelpSucceeds) {
  EXPECT_EQ(run_cli({"help"}), 0);
  EXPECT_NE(usage_text().find("generate"), std::string::npos);
}

TEST_F(CliCommands, NoArgsIsUsageError) { EXPECT_EQ(run_cli({}), 2); }

TEST_F(CliCommands, UnknownCommandIsUsageError) {
  EXPECT_EQ(run_cli({"frobnicate"}), 2);
}

TEST_F(CliCommands, GenerateStatsCdfRouteFilterPipeline) {
  const std::string trace = track(path("hk.trace"));
  ASSERT_EQ(run_cli({"generate", "--preset", "hong-kong", "--seed", "7",
                     "--out", trace}),
            0);
  // The file is a valid trace.
  const TemporalGraph g = read_trace_file(trace);
  EXPECT_EQ(g.num_nodes(), 906u);
  EXPECT_GT(g.num_contacts(), 1000u);

  EXPECT_EQ(run_cli({"stats", trace}), 0);

  const std::string filtered = track(path("hk_filtered.trace"));
  ASSERT_EQ(run_cli({"filter", trace, "--out", filtered, "--internal", "37",
                     "--min-duration", "4min"}),
            0);
  const TemporalGraph f = read_trace_file(filtered);
  EXPECT_EQ(f.num_nodes(), 37u);
  for (const Contact& c : f.contacts()) EXPECT_GE(c.duration(), 4 * kMinute);

  EXPECT_EQ(run_cli({"route", trace, "--src", "0", "--dst", "5", "--time",
                     "1d"}),
            0);
}

TEST_F(CliCommands, GenerateRejectsUnknownPreset) {
  EXPECT_EQ(run_cli({"generate", "--preset", "nope", "--out", "/tmp/x"}), 2);
}

TEST_F(CliCommands, GenerateRequiresOut) {
  EXPECT_EQ(run_cli({"generate", "--preset", "hong-kong"}), 2);
}

TEST_F(CliCommands, StatsMissingFileFails) {
  EXPECT_EQ(run_cli({"stats", "/no/such/file"}), 1);
}

TEST_F(CliCommands, FilterValidatesKeepProb) {
  const std::string trace = track(path("small.trace"));
  write_trace_file(trace, TemporalGraph(2, {{0, 1, 0.0, 1.0}}));
  EXPECT_EQ(run_cli({"filter", trace, "--out", track(path("o.trace")),
                     "--keep-prob", "1.5"}),
            2);
  EXPECT_EQ(run_cli({"filter", trace, "--out", track(path("o2.trace")),
                     "--window-lo", "0"}),
            2);  // window-hi missing
}

TEST_F(CliCommands, CdfOnTinyTrace) {
  const std::string trace = track(path("tiny.trace"));
  write_trace_file(
      trace, TemporalGraph(3, {{0, 1, 0.0, 600.0}, {1, 2, 900.0, 1800.0}}));
  EXPECT_EQ(run_cli({"cdf", trace, "--max-hops", "3", "--grid-lo", "60",
                     "--grid-hi", "1h"}),
            0);
}

TEST_F(CliCommands, CdfHopBudgetPastFixpointSucceeds) {
  // Two contacts => the DP fixpoint is at 2 hops; asking for more hop
  // columns than the result materializes must print, not crash
  // (regression: the hop-column loop indexed cdf_by_hops[k-1] blindly).
  const std::string trace = track(path("tiny_fix.trace"));
  write_trace_file(
      trace, TemporalGraph(3, {{0, 1, 0.0, 600.0}, {1, 2, 900.0, 1800.0}}));
  EXPECT_EQ(run_cli({"cdf", trace, "--max-hops", "12", "--grid-lo", "60",
                     "--grid-hi", "1h"}),
            0);
}

TEST_F(CliCommands, CdfValidatesMaxHops) {
  const std::string trace = track(path("tiny_hops.trace"));
  write_trace_file(trace, TemporalGraph(2, {{0, 1, 0.0, 1.0}}));
  EXPECT_EQ(run_cli({"cdf", trace, "--max-hops", "0"}), 2);
  EXPECT_EQ(run_cli({"cdf", trace, "--max-hops", "-4"}), 2);
}

TEST_F(CliCommands, CdfShardedMatchesUsage) {
  const std::string trace = track(path("tiny_shard.trace"));
  write_trace_file(
      trace, TemporalGraph(3, {{0, 1, 0.0, 600.0}, {1, 2, 900.0, 1800.0}}));
  EXPECT_EQ(run_cli({"cdf", trace, "--max-hops", "3", "--grid-lo", "60",
                     "--grid-hi", "1h", "--shards", "2"}),
            0);
  EXPECT_EQ(run_cli({"cdf", trace, "--shards", "2", "--shard-policy",
                     "degree-balanced"}),
            0);
  EXPECT_EQ(run_cli({"cdf", trace, "--shards", "-2"}), 2);
  EXPECT_EQ(run_cli({"cdf", trace, "--shards", "2", "--shard-policy",
                     "round-robin"}),
            2);
}

TEST_F(CliCommands, GenerateRejectsNegativeSeed) {
  EXPECT_EQ(run_cli({"generate", "--preset", "hong-kong", "--seed", "-1",
                     "--out", track(path("neg.trace"))}),
            2);
}

TEST_F(CliCommands, PresetNamesAreCaseFoldedSafely) {
  // Mixed case must resolve; non-ASCII bytes (negative chars) must be
  // rejected cleanly, not hit UB in std::tolower.
  const std::string trace = track(path("case.trace"));
  EXPECT_EQ(run_cli({"generate", "--preset", "Hong-Kong", "--seed", "7",
                     "--out", trace}),
            0);
  EXPECT_EQ(run_cli({"generate", "--preset", "caf\xC3\xA9", "--out",
                     track(path("utf8.trace"))}),
            2);
}

TEST_F(CliCommands, CdfDaytimeWindows) {
  const std::string trace = track(path("tiny_day.trace"));
  // Contacts around 10:00 and 11:00 of day 0.
  write_trace_file(trace,
                   TemporalGraph(3, {{0, 1, 10 * kHour, 10 * kHour + 600},
                                     {1, 2, 11 * kHour, 11 * kHour + 600}}));
  EXPECT_EQ(run_cli({"cdf", trace, "--max-hops", "3", "--grid-lo", "60",
                     "--grid-hi", "2h", "--daytime", "9-18"}),
            0);
  EXPECT_EQ(run_cli({"cdf", trace, "--daytime", "18-9"}), 2);
  EXPECT_EQ(run_cli({"cdf", trace, "--daytime", "nonsense"}), 2);
  // Hours that never intersect the trace span.
  EXPECT_EQ(run_cli({"cdf", trace, "--daytime", "1-2"}), 2);
}

TEST_F(CliCommands, McRunsAndValidates) {
  EXPECT_EQ(run_cli({"mc", "--case", "short", "--n", "150", "--lambda",
                     "0.5", "--trials", "20", "--seed", "3"}),
            0);
  // Explicit budget + thread count; 0 threads = shared pool.
  EXPECT_EQ(run_cli({"mc", "--case", "long", "--n", "150", "--lambda", "0.5",
                     "--tau", "2.0", "--gamma", "1.0", "--trials", "20",
                     "--threads", "2"}),
            0);
  EXPECT_EQ(run_cli({"mc", "--case", "nope", "--n", "150", "--lambda",
                     "0.5"}),
            2);
  EXPECT_EQ(run_cli({"mc", "--case", "short", "--lambda", "0.5"}), 2);
  EXPECT_EQ(run_cli({"mc", "--case", "short", "--n", "150", "--lambda",
                     "0.5", "--threads", "-1"}),
            2);
}

TEST_F(CliCommands, NegativeCountsAreUsageErrors) {
  // Regression: these used to static_cast negative longs to unsigned,
  // silently wrapping into astronomically large values.
  EXPECT_EQ(run_cli({"mc", "--case", "short", "--n", "150", "--lambda",
                     "0.5", "--trials", "-1"}),
            2);
  EXPECT_EQ(run_cli({"mc", "--case", "short", "--n", "-3", "--lambda",
                     "0.5"}),
            2);
  EXPECT_EQ(run_cli({"mc", "--case", "short", "--n", "150", "--lambda",
                     "0.5", "--seed", "-1"}),
            2);
  const std::string trace = track(path("neg_counts.trace"));
  write_trace_file(trace, TemporalGraph(2, {{0, 1, 0.0, 1.0}}));
  EXPECT_EQ(run_cli({"filter", trace, "--out", track(path("neg_out.trace")),
                     "--internal", "-2"}),
            2);
  EXPECT_EQ(run_cli({"route", trace, "--src", "-1", "--dst", "1"}), 2);
}

TEST_F(CliCommands, RouteRejectsBadNodes) {
  const std::string trace = track(path("tiny2.trace"));
  write_trace_file(trace, TemporalGraph(2, {{0, 1, 0.0, 1.0}}));
  EXPECT_EQ(run_cli({"route", trace, "--src", "0", "--dst", "9"}), 2);
}

TEST_F(CliCommands, ImportConvertsCrawdadAndOne) {
  const std::string crawdad = track(path("contacts.dat"));
  {
    std::ofstream out(crawdad);
    out << "# crawdad style\n1 2 100 200\n2 3 150 400\n";
  }
  const std::string converted = track(path("imported.trace"));
  ASSERT_EQ(run_cli({"import", crawdad, "--format", "crawdad", "--out",
                     converted}),
            0);
  const auto g = read_trace_file(converted);
  EXPECT_EQ(g.num_nodes(), 3u);  // ids shifted to 0-based
  EXPECT_EQ(g.num_contacts(), 2u);

  const std::string one = track(path("events.one"));
  {
    std::ofstream out(one);
    out << "10 CONN 0 1 up\n30 CONN 0 1 down\n";
  }
  const std::string converted2 = track(path("imported2.trace"));
  ASSERT_EQ(
      run_cli({"import", one, "--format", "one", "--out", converted2}), 0);
  EXPECT_EQ(read_trace_file(converted2).num_contacts(), 1u);

  EXPECT_EQ(run_cli({"import", crawdad, "--format", "nonsense", "--out",
                     track(path("x.trace"))}),
            2);
}

TEST_F(CliCommands, RejectsTrailingGarbage) {
  EXPECT_EQ(run_cli({"help", "--wat"}), 0);  // help ignores args
  const std::string trace = track(path("tiny3.trace"));
  write_trace_file(trace, TemporalGraph(2, {{0, 1, 0.0, 1.0}}));
  EXPECT_EQ(run_cli({"stats", trace, "--bogus"}), 2);
}

class CliServe : public CliCommands {
 protected:
  std::string serve_trace(const char* name) {
    const std::string trace = track(path(name));
    write_trace_file(trace, TemporalGraph(3, {{0, 1, 0.0, 600.0},
                                              {1, 2, 900.0, 1800.0}}));
    return trace;
  }
};

TEST_F(CliServe, ServeAnswersFinalLineWithoutNewline) {
  // Regression: a query batch whose final line has no trailing newline
  // must still be answered (the line-carry flush), not dropped at EOF.
  const std::string trace = serve_trace("srv_nl.trace");
  const std::string queries = track(path("srv_nl.q"));
  {
    std::ofstream out(queries);
    out << "cdf 0\ncdf 1";  // deliberately no final '\n'
  }
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(run_cli({"serve", "--trace", trace, "--input", queries,
                     "--grid-lo", "60", "--grid-hi", "1h", "--max-hops",
                     "3"}),
            0);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("cdf src=0"), std::string::npos);
  EXPECT_NE(out.find("cdf src=1"), std::string::npos);
}

TEST_F(CliServe, ServeIngestAppendsAndRefreshesAnswers) {
  const std::string trace = serve_trace("srv_ing.trace");
  const std::string queries = track(path("srv_ing.q"));
  {
    std::ofstream out(queries);
    // Before the ingest, node 2 only reaches node 1 (the 0--1 contact is
    // over by the time 2 first meets 1); the appended late 0--2 contact
    // makes node 0 reachable too.
    out << "reach 2 0\n"
        << "ingest 0 2 2000 2600\n"
        << "reach 2 0\n"
        << "ingest 0 1 100 200\n";  // below watermark: must error
  }
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(run_cli({"serve", "--trace", trace, "--input", queries,
                     "--grid-lo", "60", "--grid-hi", "1h", "--max-hops",
                     "3"}),
            0);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("reach src=2 t=0 count=1"), std::string::npos);
  EXPECT_NE(out.find("ingest ok epoch=1 contacts=3"), std::string::npos);
  EXPECT_NE(out.find("reach src=2 t=0 count=2"), std::string::npos);
  EXPECT_NE(out.find("error"), std::string::npos);
}

/// Strips the us=<latency> token so two runs can be compared bit-exactly.
std::string strip_latency(const std::string& text) {
  std::string out;
  std::istringstream in(text);
  for (std::string tok; in >> tok;)
    if (tok.compare(0, 3, "us=") != 0) out += tok + " ";
  return out;
}

TEST_F(CliServe, TailEpochSplitsEndIdentically) {
  // The final row of a many-epoch run must match the single-epoch run
  // bit for bit: incremental recompute may not depend on batching.
  const std::string trace = serve_trace("tail.trace");
  const auto last_line = [](const std::string& text) {
    const auto end = text.find_last_not_of('\n');
    const auto start = text.rfind('\n', end);
    return text.substr(start + 1, end - start);
  };
  std::vector<std::string> finals;
  for (const char* epoch : {"1", "1000"}) {
    ::testing::internal::CaptureStdout();
    ASSERT_EQ(run_cli({"tail", trace, "--epoch", epoch, "--grid-lo", "60",
                       "--grid-hi", "1h", "--max-hops", "3"}),
              0);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("epoch="), std::string::npos);
    finals.push_back(strip_latency(last_line(out)));
  }
  EXPECT_EQ(finals[0], finals[1]);
  EXPECT_NE(finals[0].find("converged=1"), std::string::npos);
}

TEST_F(CliServe, TailRejectsHeaderlessFeed) {
  const std::string feed = track(path("tail_bad.trace"));
  {
    std::ofstream out(feed);
    out << "0 1 0 600\n";
  }
  EXPECT_EQ(run_cli({"tail", feed}), 1);
}

}  // namespace
}  // namespace odtn::cli
