#include "stats/measure_cdf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/log_grid.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

// One segment (a, b] with arrival time `arr`: the exact measure of
// {t in (a,b] : max(0, arr - t) <= x} is b - max(a, arr - x), clamped.
double exact_segment_measure(double a, double b, double arr, double x) {
  return std::max(0.0, b - std::max(a, arr - x));
}

TEST(MeasureCdf, SingleSegmentMatchesClosedForm) {
  const std::vector<double> grid = make_log_grid(1.0, 1000.0, 40);
  MeasureCdfAccumulator acc(grid);
  acc.add_segment(10.0, 50.0, 80.0);  // delays from 30 to 70
  acc.add_observation_measure(40.0);
  const auto cdf = acc.cdf();
  for (std::size_t j = 0; j < grid.size(); ++j) {
    EXPECT_NEAR(cdf[j], exact_segment_measure(10, 50, 80, grid[j]) / 40.0,
                1e-12)
        << "x=" << grid[j];
  }
}

TEST(MeasureCdf, DelayZeroSegmentFullyCovered) {
  const std::vector<double> grid{0.5, 1.0, 10.0};
  MeasureCdfAccumulator acc(grid);
  acc.add_segment(0.0, 100.0, 0.0);  // arrival before every start: delay 0
  acc.add_observation_measure(100.0);
  for (double v : acc.cdf()) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(MeasureCdf, EmptySegmentIgnored) {
  MeasureCdfAccumulator acc({1.0, 2.0});
  acc.add_segment(5.0, 5.0, 10.0);
  acc.add_observation_measure(1.0);
  for (double v : acc.cdf()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MeasureCdf, ZeroDenominatorGivesZeros) {
  MeasureCdfAccumulator acc({1.0});
  acc.add_segment(0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(acc.cdf()[0], 0.0);
}

TEST(MeasureCdf, CdfIsMonotone) {
  const std::vector<double> grid = make_log_grid(0.1, 1e6, 100);
  MeasureCdfAccumulator acc(grid);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0, 1000);
    const double b = a + rng.uniform(0, 100);
    const double arr = a + rng.uniform(0, 2000);
    acc.add_segment(a, b, arr);
    acc.add_observation_measure(b - a);
  }
  const auto cdf = acc.cdf();
  for (std::size_t j = 1; j < cdf.size(); ++j) ASSERT_GE(cdf[j], cdf[j - 1]);
  for (double v : cdf) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
}

class MeasureCdfRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeasureCdfRandom, MatchesMonteCarloSampling) {
  Rng rng(GetParam());
  const std::vector<double> grid = make_log_grid(1.0, 500.0, 16);
  MeasureCdfAccumulator acc(grid);

  struct Seg {
    double a, b, arr;
  };
  std::vector<Seg> segs;
  double total = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double a = rng.uniform(0, 300);
    const double b = a + rng.uniform(1, 60);
    const double arr = rng.uniform(a - 50, a + 400);
    segs.push_back({a, b, arr});
    acc.add_segment(a, b, arr);
    acc.add_observation_measure(b - a);
    total += b - a;
  }
  const auto cdf = acc.cdf();

  // Monte-Carlo estimate: sample start times uniformly inside segments.
  const int samples = 200000;
  std::vector<int> hits(grid.size(), 0);
  for (int s = 0; s < samples; ++s) {
    // pick a segment weighted by length
    double pick = rng.uniform(0, total);
    const Seg* seg = &segs.back();
    for (const auto& sg : segs) {
      if (pick < sg.b - sg.a) {
        seg = &sg;
        break;
      }
      pick -= sg.b - sg.a;
    }
    const double t = rng.uniform(seg->a, seg->b);
    const double delay = std::max(0.0, seg->arr - t);
    for (std::size_t j = 0; j < grid.size(); ++j)
      if (delay <= grid[j]) ++hits[j];
  }
  for (std::size_t j = 0; j < grid.size(); ++j)
    EXPECT_NEAR(cdf[j], hits[j] / static_cast<double>(samples), 0.01)
        << "x=" << grid[j];
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasureCdfRandom,
                         ::testing::Values(3u, 1234u, 777777u));

TEST(MeasureCdf, MergeAddsNumeratorsAndDenominators) {
  const std::vector<double> grid{1.0, 10.0};
  MeasureCdfAccumulator a(grid), b(grid);
  a.add_segment(0, 10, 5);
  a.add_observation_measure(10);
  b.add_segment(0, 10, 100);  // all delays > 10
  b.add_observation_measure(10);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.denominator(), 20.0);
  const auto cdf = a.cdf();
  // From segment a: delay <= 1 for t in [4,10] -> 6; delay <= 10 all 10.
  EXPECT_NEAR(cdf[0], 6.0 / 20.0, 1e-12);
  EXPECT_NEAR(cdf[1], 10.0 / 20.0, 1e-12);
}

TEST(MeasureCdf, MergeRejectsDifferentGrids) {
  MeasureCdfAccumulator a({1.0}), b({2.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MeasureCdf, RejectsBadGrids) {
  EXPECT_THROW(MeasureCdfAccumulator({}), std::invalid_argument);
  EXPECT_THROW(MeasureCdfAccumulator({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(MeasureCdfAccumulator({2.0, 2.0}), std::invalid_argument);
}

TEST(MeasureCdf, SingleRetractionCancelsToTheBit) {
  // One +1 / -1 pair on an otherwise empty accumulator: the diff-array
  // entries receive exactly negated addends, so the numerator is bitwise
  // zero -- no tolerance needed even for awkward non-representable
  // coordinates.
  const std::vector<double> grid = make_log_grid(0.1, 1000.0, 25);
  MeasureCdfAccumulator acc(grid);
  acc.add_segment(0.3, 107.7, 209.13);
  acc.add_segment(0.3, 107.7, 209.13, -1.0);
  acc.add_observation_measure(107.4);
  for (double v : acc.cdf()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MeasureCdf, SignedRetractionRoundTripsToZero) {
  // Many interleaved segments, then retract them all. Integer-valued
  // coordinates keep every intermediate sum exact, so the round trip is
  // exactly zero at every grid point, not merely within rounding.
  const std::vector<double> grid = make_log_grid(1.0, 4096.0, 30);
  MeasureCdfAccumulator acc(grid);
  Rng rng(42);
  struct Seg {
    double a, b, arr;
  };
  std::vector<Seg> segs;
  for (int i = 0; i < 100; ++i) {
    const double a = static_cast<double>(rng.below(2000));
    const double b = a + 1.0 + static_cast<double>(rng.below(500));
    const double arr = static_cast<double>(rng.below(4000));
    segs.push_back({a, b, arr});
    acc.add_segment(a, b, arr);
  }
  for (const Seg& s : segs) acc.add_segment(s.a, s.b, s.arr, -1.0);
  acc.add_observation_measure(1000.0);
  for (double v : acc.cdf()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MeasureCdf, WeightEqualsRepeatedAddition) {
  // weight = 3 is the same contribution as adding the segment 3 times
  // (exact for integer coordinates). The denominator is not touched by
  // weights -- only add_observation_measure moves it.
  const std::vector<double> grid{1.0, 8.0, 64.0, 512.0};
  MeasureCdfAccumulator weighted(grid), repeated(grid);
  weighted.add_segment(10.0, 40.0, 55.0, 3.0);
  for (int i = 0; i < 3; ++i) repeated.add_segment(10.0, 40.0, 55.0);
  weighted.add_observation_measure(90.0);
  repeated.add_observation_measure(90.0);
  const auto w = weighted.cdf(), r = repeated.cdf();
  for (std::size_t j = 0; j < grid.size(); ++j) EXPECT_DOUBLE_EQ(w[j], r[j]);
  EXPECT_DOUBLE_EQ(weighted.denominator(), 90.0);
}

TEST(MeasureCdf, PrefixMergeReconstructsPerLevelCdfs) {
  // Simulates the incremental all-pairs scheme on one destination whose
  // frontier improves at level 2: levels[0] holds the level-1 state and
  // the full observation measure, levels[1] holds only the delta
  // (retract old, add new), levels[2] is an empty delta (no change).
  // After prefix_merge, each level's CDF must equal a directly built
  // accumulator for that level's frontier, and the parked denominator
  // must have propagated everywhere.
  const std::vector<double> grid = make_log_grid(1.0, 512.0, 20);
  std::vector<MeasureCdfAccumulator> levels(3, MeasureCdfAccumulator(grid));
  // Level-1 frontier: arrival 120 over (0, 100].
  levels[0].add_segment(0.0, 100.0, 120.0);
  levels[0].add_observation_measure(100.0);
  // Level 2: a relay path improves (40, 100] to arrival 70.
  levels[1].add_segment(40.0, 100.0, 120.0, -1.0);
  levels[1].add_segment(40.0, 100.0, 70.0, +1.0);
  MeasureCdfAccumulator::prefix_merge(levels);

  MeasureCdfAccumulator direct1(grid), direct2(grid);
  direct1.add_segment(0.0, 100.0, 120.0);
  direct1.add_observation_measure(100.0);
  direct2.add_segment(0.0, 40.0, 120.0);
  direct2.add_segment(40.0, 100.0, 70.0);
  direct2.add_observation_measure(100.0);

  const auto l0 = levels[0].cdf(), l1 = levels[1].cdf(), l2 = levels[2].cdf();
  const auto d1 = direct1.cdf(), d2 = direct2.cdf();
  for (std::size_t j = 0; j < grid.size(); ++j) {
    EXPECT_DOUBLE_EQ(l0[j], d1[j]) << "x=" << grid[j];
    EXPECT_DOUBLE_EQ(l1[j], d2[j]) << "x=" << grid[j];
    EXPECT_DOUBLE_EQ(l2[j], l1[j]) << "x=" << grid[j];  // unchanged level
  }
  for (const auto& lvl : levels) EXPECT_DOUBLE_EQ(lvl.denominator(), 100.0);
}

TEST(MeasureCdf, PrefixMergeAddsDenominatorsCumulatively) {
  // Denominators prefix-sum exactly like numerators: parking the full
  // observation measure in levels[0] (the incremental scheme's contract)
  // relies on later levels contributing zero.
  std::vector<MeasureCdfAccumulator> levels(3, MeasureCdfAccumulator({1.0}));
  levels[0].add_observation_measure(5.0);
  levels[1].add_observation_measure(2.0);
  MeasureCdfAccumulator::prefix_merge(levels);
  EXPECT_DOUBLE_EQ(levels[0].denominator(), 5.0);
  EXPECT_DOUBLE_EQ(levels[1].denominator(), 7.0);
  EXPECT_DOUBLE_EQ(levels[2].denominator(), 7.0);
}

}  // namespace
}  // namespace odtn
