#include "stats/measure_cdf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/log_grid.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

// One segment (a, b] with arrival time `arr`: the exact measure of
// {t in (a,b] : max(0, arr - t) <= x} is b - max(a, arr - x), clamped.
double exact_segment_measure(double a, double b, double arr, double x) {
  return std::max(0.0, b - std::max(a, arr - x));
}

TEST(MeasureCdf, SingleSegmentMatchesClosedForm) {
  const std::vector<double> grid = make_log_grid(1.0, 1000.0, 40);
  MeasureCdfAccumulator acc(grid);
  acc.add_segment(10.0, 50.0, 80.0);  // delays from 30 to 70
  acc.add_observation_measure(40.0);
  const auto cdf = acc.cdf();
  for (std::size_t j = 0; j < grid.size(); ++j) {
    EXPECT_NEAR(cdf[j], exact_segment_measure(10, 50, 80, grid[j]) / 40.0,
                1e-12)
        << "x=" << grid[j];
  }
}

TEST(MeasureCdf, DelayZeroSegmentFullyCovered) {
  const std::vector<double> grid{0.5, 1.0, 10.0};
  MeasureCdfAccumulator acc(grid);
  acc.add_segment(0.0, 100.0, 0.0);  // arrival before every start: delay 0
  acc.add_observation_measure(100.0);
  for (double v : acc.cdf()) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(MeasureCdf, EmptySegmentIgnored) {
  MeasureCdfAccumulator acc({1.0, 2.0});
  acc.add_segment(5.0, 5.0, 10.0);
  acc.add_observation_measure(1.0);
  for (double v : acc.cdf()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MeasureCdf, ZeroDenominatorGivesZeros) {
  MeasureCdfAccumulator acc({1.0});
  acc.add_segment(0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(acc.cdf()[0], 0.0);
}

TEST(MeasureCdf, CdfIsMonotone) {
  const std::vector<double> grid = make_log_grid(0.1, 1e6, 100);
  MeasureCdfAccumulator acc(grid);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0, 1000);
    const double b = a + rng.uniform(0, 100);
    const double arr = a + rng.uniform(0, 2000);
    acc.add_segment(a, b, arr);
    acc.add_observation_measure(b - a);
  }
  const auto cdf = acc.cdf();
  for (std::size_t j = 1; j < cdf.size(); ++j) ASSERT_GE(cdf[j], cdf[j - 1]);
  for (double v : cdf) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
}

class MeasureCdfRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeasureCdfRandom, MatchesMonteCarloSampling) {
  Rng rng(GetParam());
  const std::vector<double> grid = make_log_grid(1.0, 500.0, 16);
  MeasureCdfAccumulator acc(grid);

  struct Seg {
    double a, b, arr;
  };
  std::vector<Seg> segs;
  double total = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double a = rng.uniform(0, 300);
    const double b = a + rng.uniform(1, 60);
    const double arr = rng.uniform(a - 50, a + 400);
    segs.push_back({a, b, arr});
    acc.add_segment(a, b, arr);
    acc.add_observation_measure(b - a);
    total += b - a;
  }
  const auto cdf = acc.cdf();

  // Monte-Carlo estimate: sample start times uniformly inside segments.
  const int samples = 200000;
  std::vector<int> hits(grid.size(), 0);
  for (int s = 0; s < samples; ++s) {
    // pick a segment weighted by length
    double pick = rng.uniform(0, total);
    const Seg* seg = &segs.back();
    for (const auto& sg : segs) {
      if (pick < sg.b - sg.a) {
        seg = &sg;
        break;
      }
      pick -= sg.b - sg.a;
    }
    const double t = rng.uniform(seg->a, seg->b);
    const double delay = std::max(0.0, seg->arr - t);
    for (std::size_t j = 0; j < grid.size(); ++j)
      if (delay <= grid[j]) ++hits[j];
  }
  for (std::size_t j = 0; j < grid.size(); ++j)
    EXPECT_NEAR(cdf[j], hits[j] / static_cast<double>(samples), 0.01)
        << "x=" << grid[j];
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasureCdfRandom,
                         ::testing::Values(3u, 1234u, 777777u));

TEST(MeasureCdf, MergeAddsNumeratorsAndDenominators) {
  const std::vector<double> grid{1.0, 10.0};
  MeasureCdfAccumulator a(grid), b(grid);
  a.add_segment(0, 10, 5);
  a.add_observation_measure(10);
  b.add_segment(0, 10, 100);  // all delays > 10
  b.add_observation_measure(10);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.denominator(), 20.0);
  const auto cdf = a.cdf();
  // From segment a: delay <= 1 for t in [4,10] -> 6; delay <= 10 all 10.
  EXPECT_NEAR(cdf[0], 6.0 / 20.0, 1e-12);
  EXPECT_NEAR(cdf[1], 10.0 / 20.0, 1e-12);
}

TEST(MeasureCdf, MergeRejectsDifferentGrids) {
  MeasureCdfAccumulator a({1.0}), b({2.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MeasureCdf, RejectsBadGrids) {
  EXPECT_THROW(MeasureCdfAccumulator({}), std::invalid_argument);
  EXPECT_THROW(MeasureCdfAccumulator({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(MeasureCdfAccumulator({2.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace odtn
