// Tests of the batched multi-source engine (core/batched_engine.hpp):
// lane-by-lane bit-identity against the per-source pooled engine at
// every level, partial-level bit-identity of process_source_block, and
// driver-level bit-identity of compute_delay_cdf across batch sizes --
// including directed and negative-time traces, multi-window
// accumulation, endpoint subsets and B > num_sources.
#include "core/batched_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/diameter.hpp"
#include "core/incremental_engine.hpp"
#include "core/optimal_paths.hpp"
#include "core/query_engine.hpp"
#include "core/source_cdf.hpp"
#include "stats/log_grid.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

TemporalGraph random_graph(std::uint64_t seed, std::size_t nodes,
                           int contacts, bool directed = false,
                           double t0 = 0.0) {
  Rng rng(seed);
  std::vector<Contact> cs;
  for (int i = 0; i < contacts; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    const double b = t0 + rng.uniform(0, 100);
    cs.push_back({u, v, b, b + rng.uniform(0, 5)});
  }
  return TemporalGraph(nodes, std::move(cs), directed);
}

DelayCdfOptions base_options() {
  DelayCdfOptions opt;
  opt.grid = make_log_grid(0.1, 200.0, 24);
  opt.max_hops = 5;
  opt.num_threads = 1;
  return opt;
}

void expect_views_bit_identical(const FrontierView& a, const FrontierView& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.ld(i), b.ld(i));
    ASSERT_EQ(a.ea(i), b.ea(i));
  }
}

void expect_acc_bit_identical(const MeasureCdfAccumulator& a,
                              const MeasureCdfAccumulator& b) {
  ASSERT_EQ(a.const_diff(), b.const_diff());
  ASSERT_EQ(a.slope_diff(), b.slope_diff());
  ASSERT_EQ(a.denominator(), b.denominator());
}

void expect_partial_bit_identical(const SourceCdfPartial& a,
                                  const SourceCdfPartial& b) {
  ASSERT_EQ(a.by_hops.size(), b.by_hops.size());
  for (std::size_t k = 0; k < a.by_hops.size(); ++k)
    expect_acc_bit_identical(a.by_hops[k], b.by_hops[k]);
  expect_acc_bit_identical(a.unbounded, b.unbounded);
  EXPECT_EQ(a.fixpoint_hops, b.fixpoint_hops);
  EXPECT_EQ(a.converged, b.converged);
}

void expect_equivalent_stats(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.contacts_examined, b.contacts_examined);
  EXPECT_EQ(a.pairs_inserted, b.pairs_inserted);
  EXPECT_EQ(a.pairs_dominated, b.pairs_dominated);
  EXPECT_EQ(a.frontier_copies_avoided, b.frontier_copies_avoided);
  EXPECT_EQ(a.cdf_pairs_integrated, b.cdf_pairs_integrated);
  EXPECT_EQ(a.merge_batches, b.merge_batches);
}

void expect_bit_identical(const DelayCdfResult& a, const DelayCdfResult& b) {
  ASSERT_EQ(a.grid, b.grid);
  ASSERT_EQ(a.cdf_by_hops.size(), b.cdf_by_hops.size());
  for (std::size_t k = 0; k < a.cdf_by_hops.size(); ++k)
    ASSERT_EQ(a.cdf_by_hops[k], b.cdf_by_hops[k]) << "hop budget " << k + 1;
  ASSERT_EQ(a.cdf_unbounded, b.cdf_unbounded);
  EXPECT_EQ(a.fixpoint_hops, b.fixpoint_hops);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.denominator, b.denominator);
  for (const double eps : {0.25, 0.05, 0.01, 0.001})
    EXPECT_EQ(a.diameter(eps), b.diameter(eps)) << "eps " << eps;
  EXPECT_EQ(a.diameter_absolute(0.01), b.diameter_absolute(0.01));
  expect_equivalent_stats(a.stats, b.stats);
}

// Every lane of a block must reproduce its per-source engine EXACTLY at
// every level: hop budget, fixpoint flag, the changed list (content AND
// publication order), the pre-change snapshots, and every frontier's
// bytes. This is the invariant everything else (CDF bit-identity at any
// B) rests on.
TEST(BatchedEngine, LanesMatchPerSourceEnginesLevelByLevel) {
  for (const bool directed : {false, true}) {
    const TemporalGraph g = random_graph(directed ? 71 : 17, 9, 60, directed,
                                         directed ? -50.0 : 0.0);
    std::vector<NodeId> sources;
    for (NodeId s = 0; s < g.num_nodes(); ++s) sources.push_back(s);
    BatchedSourceEngine block(g, sources);
    std::vector<SingleSourceEngine> solo;
    solo.reserve(sources.size());
    for (const NodeId s : sources) solo.emplace_back(g, s);

    for (int level = 1; level <= 20; ++level) {
      bool any_solo = false;
      for (SingleSourceEngine& e : solo) any_solo |= e.step();
      const bool any_block = block.step();
      ASSERT_EQ(any_block, any_solo) << "level " << level;
      for (std::size_t l = 0; l < sources.size(); ++l) {
        ASSERT_EQ(block.lane_hops(l), solo[l].hops()) << "lane " << l;
        ASSERT_EQ(block.lane_at_fixpoint(l), solo[l].at_fixpoint())
            << "lane " << l;
        ASSERT_EQ(block.last_changed(l), solo[l].last_changed())
            << "lane " << l << " level " << level;
        for (std::size_t i = 0; i < block.last_changed(l).size(); ++i)
          expect_views_bit_identical(block.previous_frontier_view(l, i),
                                     solo[l].previous_frontier_view(i));
        for (NodeId d = 0; d < g.num_nodes(); ++d)
          expect_views_bit_identical(block.frontier_view(l, d),
                                     solo[l].frontier_view(d));
      }
      if (!any_block) break;
    }
    ASSERT_TRUE(block.all_at_fixpoint());
  }
}

// reset() must recycle the workspace for a different block (different
// width included) without residue from the previous block.
TEST(BatchedEngine, ResetRecyclesAcrossBlocks) {
  const TemporalGraph g = random_graph(23, 8, 50);
  const std::vector<NodeId> first = {0, 1, 2, 3, 4};
  const std::vector<NodeId> second = {5, 6, 7};
  BatchedSourceEngine recycled(g, first);
  while (recycled.step()) {
  }
  recycled.reset(second);
  BatchedSourceEngine fresh(g, second);
  for (int level = 1; level <= 20; ++level) {
    const bool a = recycled.step();
    const bool b = fresh.step();
    ASSERT_EQ(a, b);
    for (std::size_t l = 0; l < second.size(); ++l) {
      ASSERT_EQ(recycled.last_changed(l), fresh.last_changed(l));
      for (NodeId d = 0; d < g.num_nodes(); ++d)
        expect_views_bit_identical(recycled.frontier_view(l, d),
                                   fresh.frontier_view(l, d));
    }
    if (!a) break;
  }
  EXPECT_EQ(recycled.stats().batch_blocks, 2u);
  EXPECT_EQ(recycled.stats().workspace_allocations, 1u);
  EXPECT_EQ(recycled.stats().workspace_reuses, 1u);
}

// process_source_block partials vs per-source process_source partials,
// bit for bit -- including a single-lane block (B = 1 ≡ pooled) and
// multi-window accumulation.
TEST(BatchedEngine, BlockPartialsMatchPerSourcePartials) {
  const TemporalGraph g = random_graph(5, 10, 70, false, -30.0);
  DelayCdfOptions opt = base_options();
  opt.windows = {{-30.0, -5.0}, {0.0, 40.0}, {55.0, 60.0}};
  const TimeWindows w = resolve_cdf_windows(g, opt);
  const std::vector<NodeId> endpoints = resolve_cdf_endpoints(g, opt);
  std::vector<std::uint8_t> is_endpoint(g.num_nodes(), 0);
  for (const NodeId n : endpoints) is_endpoint[n] = 1;

  std::vector<SourceCdfPartial> reference;
  SourceCdfWorker solo_worker;
  for (const NodeId src : endpoints) {
    SourceCdfPartial p(opt.grid, opt.max_hops);
    process_source(g, src, endpoints, is_endpoint, w, opt.max_hops,
                   opt.max_levels, EngineMode::kPooled, true, solo_worker, p);
    reference.push_back(std::move(p));
  }

  for (const std::size_t width : {std::size_t{1}, std::size_t{3},
                                  endpoints.size()}) {
    BatchedCdfWorker worker;
    std::vector<SourceCdfPartial> outs;
    for (std::size_t j = 0; j < width; ++j)
      outs.emplace_back(opt.grid, opt.max_hops);
    for (std::size_t lo = 0; lo < endpoints.size(); lo += width) {
      const std::size_t n = std::min(width, endpoints.size() - lo);
      for (std::size_t j = 0; j < n; ++j) outs[j].clear();
      process_source_block(g, std::span(endpoints).subspan(lo, n), endpoints,
                           is_endpoint, w, opt.max_hops, opt.max_levels,
                           worker, outs);
      for (std::size_t j = 0; j < n; ++j)
        expect_partial_bit_identical(outs[j], reference[lo + j]);
    }
  }
}

// Driver-level invariance: every batch size (including B larger than the
// source count, which clamps) must reproduce the per-source driver's
// result bit for bit, on undirected, directed and negative-time traces.
TEST(BatchedEngine, DriverBitIdenticalAcrossBatchSizes) {
  struct Workload {
    std::uint64_t seed;
    std::size_t nodes;
    int contacts;
    bool directed;
    double t0;
  };
  const Workload workloads[] = {
      {11, 12, 90, false, 0.0},
      {12, 10, 80, true, 0.0},
      {13, 11, 85, false, -200.0},
  };
  for (const Workload& wl : workloads) {
    const TemporalGraph g =
        random_graph(wl.seed, wl.nodes, wl.contacts, wl.directed, wl.t0);
    DelayCdfOptions opt = base_options();
    const DelayCdfResult reference = compute_delay_cdf(g, opt);
    for (const int batch : {2, 3, 5, 64}) {
      opt.source_batch = batch;
      const DelayCdfResult batched = compute_delay_cdf(g, opt);
      expect_bit_identical(batched, reference);
      EXPECT_GT(batched.stats.batch_blocks, 0u) << "batch " << batch;
      EXPECT_GE(batched.stats.batch_lane_slots,
                batched.stats.batch_lane_steps);
      EXPECT_EQ(reference.stats.batch_blocks, 0u);
    }
  }
}

// Endpoint subsets restrict both the sources batched into blocks and
// the destinations integrated; the batched driver must respect both.
TEST(BatchedEngine, EndpointSubsetBitIdentical) {
  const TemporalGraph g = random_graph(29, 14, 110);
  DelayCdfOptions opt = base_options();
  opt.endpoints = {1, 3, 4, 8, 11, 13};
  const DelayCdfResult reference = compute_delay_cdf(g, opt);
  for (const int batch : {2, 4, 6, 99}) {
    opt.source_batch = batch;
    expect_bit_identical(compute_delay_cdf(g, opt), reference);
  }
}

// The shared index walk only pays off when several lanes are active on
// the same node at the same level; on an all-pairs run of a connected
// trace that must actually happen.
TEST(BatchedEngine, CountsSavedIndexWalks) {
  const TemporalGraph g = random_graph(31, 10, 120);
  DelayCdfOptions opt = base_options();
  opt.source_batch = 10;
  const DelayCdfResult r = compute_delay_cdf(g, opt);
  EXPECT_GT(r.stats.index_walks_saved, 0u);
  EXPECT_GT(r.stats.batch_lane_steps, 0u);
}

// The sharded driver passes source_batch through the versioned wire
// request; each shard batches its OWN sources, and the coordinator's
// canonical fold must still reproduce the unsharded unbatched result.
TEST(BatchedEngine, ShardedBatchedBitIdentical) {
  const TemporalGraph g = random_graph(41, 12, 100);
  DelayCdfOptions opt = base_options();
  const DelayCdfResult reference = compute_delay_cdf(g, opt);
  opt.source_batch = 4;
  for (const int shards : {1, 3, 5}) {
    opt.sharding.num_shards = shards;
    expect_bit_identical(compute_delay_cdf(g, opt), reference);
  }
}

// Serving path: batched cold blocks, then a mixed hit/miss block (some
// sources pre-seeded by source_cdf), then a fully warm pass -- the CDFs
// must match the per-source engine's bit for bit in all three regimes
// (stats legitimately differ: hits skip the engine entirely).
TEST(BatchedEngine, QueryEngineBatchedColdWarmAndMixed) {
  const TemporalGraph g = random_graph(43, 10, 90);
  QueryEngineOptions qopt;
  qopt.grid = make_log_grid(0.1, 200.0, 24);
  qopt.max_hops = 5;
  qopt.num_threads = 1;
  QueryEngine plain(TemporalGraph(g), qopt);
  const DelayCdfResult reference = plain.all_pairs();

  qopt.source_batch = 4;
  QueryEngine batched(TemporalGraph(g), qopt);
  batched.source_cdf(2);  // seed a couple of partials so the
  batched.source_cdf(7);  // all-pairs blocks see a hit/miss mix
  const DelayCdfResult mixed = batched.all_pairs();
  const DelayCdfResult warm = batched.all_pairs();
  for (const DelayCdfResult* r : {&mixed, &warm}) {
    ASSERT_EQ(r->cdf_by_hops, reference.cdf_by_hops);
    ASSERT_EQ(r->cdf_unbounded, reference.cdf_unbounded);
    EXPECT_EQ(r->fixpoint_hops, reference.fixpoint_hops);
    EXPECT_EQ(r->denominator, reference.denominator);
    EXPECT_EQ(r->diameter(0.01), reference.diameter(0.01));
  }
  EXPECT_EQ(mixed.stats.cache_hits, 2u);
  EXPECT_EQ(warm.stats.cache_hits, g.num_nodes());
  EXPECT_EQ(warm.stats.batch_blocks, 0u);  // nothing left to compute
}

// Live-engine bootstrap: the first bulk batch seeds the per-source DPs
// from lockstep blocks; the version lists -- and hence every later
// all_pairs() and epoch append -- must match the per-source bootstrap
// bit for bit.
TEST(BatchedEngine, IncrementalBootstrapBatchedBitIdentical) {
  Rng rng(53);
  const std::size_t nodes = 9;
  std::vector<Contact> cs;
  for (int i = 0; i < 90; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    const double b = rng.uniform(0, 100);
    cs.push_back({u, v, b, b + rng.uniform(0, 5)});
  }
  std::sort(cs.begin(), cs.end(),
            [](const Contact& a, const Contact& b) { return a.begin < b.begin; });
  const std::span<const Contact> all(cs);
  const std::span<const Contact> bulk = all.subspan(0, 70);
  const std::span<const Contact> tail = all.subspan(70);

  IncrementalCdfOptions iopt;
  iopt.grid = make_log_grid(0.1, 200.0, 24);
  iopt.max_hops = 5;
  iopt.num_threads = 1;
  IncrementalAllPairsEngine plain(nodes, false, iopt);
  iopt.source_batch = 4;
  IncrementalAllPairsEngine batched(nodes, false, iopt);

  auto expect_same = [](const DelayCdfResult& a, const DelayCdfResult& b) {
    ASSERT_EQ(a.cdf_by_hops, b.cdf_by_hops);
    ASSERT_EQ(a.cdf_unbounded, b.cdf_unbounded);
    EXPECT_EQ(a.fixpoint_hops, b.fixpoint_hops);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.denominator, b.denominator);
    EXPECT_EQ(a.diameter(0.01), b.diameter(0.01));
  };
  plain.append(bulk);
  batched.append(bulk);
  expect_same(batched.all_pairs(), plain.all_pairs());
  plain.append(tail);  // later epochs always use the epoch machinery;
  batched.append(tail);  // they must compose with the batched bootstrap
  expect_same(batched.all_pairs(), plain.all_pairs());
}

TEST(BatchedEngine, ValidatesOptions) {
  const TemporalGraph g = random_graph(37, 6, 30);
  DelayCdfOptions opt = base_options();
  opt.source_batch = 0;
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);
  opt.source_batch = -4;
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);
  opt.source_batch = 2;
  opt.accumulation = CdfAccumulation::kDirect;
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);
  opt.accumulation = CdfAccumulation::kAuto;
  opt.engine = EngineMode::kIndexed;
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);
  opt.engine = EngineMode::kPooled;
  EXPECT_NO_THROW(compute_delay_cdf(g, opt));
  EXPECT_THROW(BatchedSourceEngine(g, std::span<const NodeId>{}),
               std::invalid_argument);
  const std::vector<NodeId> bad = {0, 99};
  EXPECT_THROW(BatchedSourceEngine(g, bad), std::out_of_range);
}

}  // namespace
}  // namespace odtn
