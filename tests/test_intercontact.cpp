#include "trace/intercontact.hpp"

#include <gtest/gtest.h>

#include "random/contact_process.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

TEST(InterContactTimes, PairGapsComputed) {
  TemporalGraph g(2, {{0, 1, 0.0, 10.0},
                      {0, 1, 30.0, 40.0},
                      {0, 1, 100.0, 101.0}});
  const auto gaps = pair_inter_contact_times(g, 0, 1);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 20.0);
  EXPECT_DOUBLE_EQ(gaps[1], 60.0);
  // Symmetric in the pair order.
  EXPECT_EQ(pair_inter_contact_times(g, 1, 0), gaps);
}

TEST(InterContactTimes, NestedContactsDoNotRewindTheHighWaterMark) {
  // [10,20] and [30,40] are nested inside [0,100]: the pair is never
  // actually out of contact, so both gaps are zero. The pre-fix code
  // overwrote previous_end with 20 and reported a phantom 10 s gap.
  TemporalGraph g(2, {{0, 1, 0.0, 100.0},
                      {0, 1, 10.0, 20.0},
                      {0, 1, 30.0, 40.0}});
  const auto gaps = pair_inter_contact_times(g, 0, 1);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 0.0);
  EXPECT_DOUBLE_EQ(gaps[1], 0.0);
  // And the real gap after the umbrella contact ends is measured from
  // its end, not from the last nested interval's.
  TemporalGraph g2(2, {{0, 1, 0.0, 100.0},
                       {0, 1, 10.0, 20.0},
                       {0, 1, 150.0, 160.0}});
  const auto gaps2 = pair_inter_contact_times(g2, 0, 1);
  ASSERT_EQ(gaps2.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps2[0], 0.0);
  EXPECT_DOUBLE_EQ(gaps2[1], 50.0);  // 150 - 100, not 150 - 20
}

TEST(InterContactTimes, PairAndAggregateAgreeOnOverlappingTraces) {
  // Property: the multiset union of pair_inter_contact_times over all
  // pairs equals all_inter_contact_times, including on traces full of
  // nested and overlapping contacts.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed);
    const std::size_t nodes = 2 + rng.below(8);
    std::vector<Contact> contacts;
    const std::size_t count = 20 + rng.below(150);
    for (std::size_t i = 0; i < count; ++i) {
      const auto u = static_cast<NodeId>(rng.below(nodes));
      auto v = static_cast<NodeId>(rng.below(nodes - 1));
      if (v >= u) ++v;
      const double begin = rng.uniform(0.0, 300.0);
      // Heavy overlap on purpose: long umbrellas plus short bursts.
      const double length = rng.bernoulli(0.3) ? rng.uniform(50.0, 200.0)
                                               : rng.uniform(0.0, 10.0);
      contacts.push_back({u, v, begin, begin + length});
    }
    TemporalGraph g(nodes, std::move(contacts));
    std::vector<double> from_pairs;
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
        const auto gaps = pair_inter_contact_times(g, u, v);
        from_pairs.insert(from_pairs.end(), gaps.begin(), gaps.end());
      }
    auto aggregate = all_inter_contact_times(g);
    std::sort(from_pairs.begin(), from_pairs.end());
    std::sort(aggregate.begin(), aggregate.end());
    EXPECT_EQ(from_pairs, aggregate) << "seed " << seed;
  }
}

TEST(InterContactTimes, SingleContactPairHasNoGap) {
  TemporalGraph g(3, {{0, 1, 0.0, 1.0}, {1, 2, 2.0, 3.0}});
  EXPECT_TRUE(pair_inter_contact_times(g, 0, 1).empty());
}

TEST(InterContactTimes, BadPairThrows) {
  TemporalGraph g(2, {});
  EXPECT_THROW(pair_inter_contact_times(g, 0, 0), std::invalid_argument);
  EXPECT_THROW(pair_inter_contact_times(g, 0, 9), std::invalid_argument);
}

TEST(InterContactTimes, AggregationMatchesPerPairUnion) {
  TemporalGraph g(3, {{0, 1, 0.0, 1.0},
                      {0, 1, 5.0, 6.0},
                      {1, 2, 2.0, 3.0},
                      {1, 2, 10.0, 11.0},
                      {0, 2, 4.0, 5.0}});
  auto all = all_inter_contact_times(g);
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 2u);  // one gap per multi-contact pair
  EXPECT_DOUBLE_EQ(all[0], 4.0);  // (0,1): 5 - 1
  EXPECT_DOUBLE_EQ(all[1], 7.0);  // (1,2): 10 - 3
}

TEST(InterContactTimes, ExponentialProcessHasExponentialGaps) {
  // For Poisson pairwise contacts, gaps are exponential: mean == stddev
  // (CV ~ 1) and the Hill tail exponent is large (light tail).
  Rng rng(8);
  ContactProcessOptions options;
  const auto g = make_contact_process_graph(20, 4.0, 2000.0, options, rng);
  const auto summary = summarize_inter_contact(g);
  ASSERT_GT(summary.count, 1000u);
  // Exponential: median = ln(2) * mean.
  EXPECT_NEAR(summary.median / summary.mean, 0.693, 0.08);
  EXPECT_GT(summary.tail_exponent, 2.0);  // light tail
}

TEST(InterContactTimes, HeavyTailedProcessHasSmallTailExponent) {
  Rng rng(9);
  ContactProcessOptions heavy;
  heavy.renewal.law = InterContactLaw::kBoundedPareto;
  heavy.renewal.pareto_alpha = 1.2;
  heavy.renewal.pareto_cap_factor = 1000.0;
  const auto g = make_contact_process_graph(20, 4.0, 2000.0, heavy, rng);
  const auto summary = summarize_inter_contact(g);
  ASSERT_GT(summary.count, 500u);
  Rng rng2(8);
  ContactProcessOptions light;
  const auto g2 = make_contact_process_graph(20, 4.0, 2000.0, light, rng2);
  EXPECT_LT(summary.tail_exponent,
            summarize_inter_contact(g2).tail_exponent);
  // Heavy tail: median far below the mean.
  EXPECT_LT(summary.median, 0.5 * summary.mean);
}

TEST(InterContactTimes, SummaryOnEmptyTrace) {
  TemporalGraph g(3, {});
  const auto summary = summarize_inter_contact(g);
  EXPECT_EQ(summary.count, 0u);
  EXPECT_THROW(summarize_inter_contact(g, 0.0), std::invalid_argument);
}

TEST(InterContactTimes, SyntheticConferenceHasDiurnalGaps) {
  // Conference traces should show a bimodal-ish gap structure: short
  // day-time gaps plus overnight gaps near 15-24 hours. At minimum the
  // p90 must exceed an hour while the median stays small.
  SyntheticTraceSpec spec;
  spec.num_internal = 20;
  spec.duration = 3 * kDay;
  spec.pair_contacts_mean = 2.0;
  spec.gatherings = {150.0, 0.4, 0.08, 10 * kMinute, 0.9, 0.1};
  spec.profile = ActivityProfile::conference();
  const auto trace = generate_trace(spec, 77);
  const auto summary = summarize_inter_contact(trace.graph);
  ASSERT_GT(summary.count, 100u);
  EXPECT_LT(summary.median, 6 * kHour);
  EXPECT_GT(summary.p90, kHour);
}

}  // namespace
}  // namespace odtn
