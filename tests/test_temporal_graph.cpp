#include "core/temporal_graph.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/time_format.hpp"

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TemporalGraph small_graph() {
  return TemporalGraph(4, {{0, 1, 10.0, 20.0},
                           {1, 2, 15.0, 25.0},
                           {2, 3, 30.0, 40.0},
                           {0, 1, 50.0, 60.0}});
}

TEST(TemporalGraph, SortsContacts) {
  TemporalGraph g(3, {{1, 2, 5.0, 6.0}, {0, 1, 1.0, 2.0}});
  EXPECT_DOUBLE_EQ(g.contacts()[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(g.contacts()[1].begin, 5.0);
}

TEST(TemporalGraph, RejectsMalformedContacts) {
  EXPECT_THROW(TemporalGraph(2, {{0, 0, 0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(TemporalGraph(2, {{0, 1, 3.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(TemporalGraph(2, {{0, 5, 0.0, 1.0}}), std::invalid_argument);
}

TEST(TemporalGraph, EmptyGraph) {
  TemporalGraph g(5, {});
  EXPECT_EQ(g.num_contacts(), 0u);
  EXPECT_DOUBLE_EQ(g.duration(), 0.0);
  EXPECT_DOUBLE_EQ(g.contact_rate(kDay), 0.0);
  EXPECT_EQ(g.num_connected_pairs(), 0u);
}

TEST(TemporalGraph, TimeSpan) {
  const auto g = small_graph();
  EXPECT_DOUBLE_EQ(g.start_time(), 10.0);
  EXPECT_DOUBLE_EQ(g.end_time(), 60.0);
  EXPECT_DOUBLE_EQ(g.duration(), 50.0);
}

TEST(TemporalGraph, EndTimeHandlesNonMonotoneEnds) {
  // A long contact that starts first but ends last.
  TemporalGraph g(3, {{0, 1, 0.0, 100.0}, {1, 2, 10.0, 20.0}});
  EXPECT_DOUBLE_EQ(g.end_time(), 100.0);
}

TEST(TemporalGraph, ContactRateCountsBothEndpoints) {
  // 4 contacts over 50 s among 4 nodes: 8 logs / 4 nodes / 50 s.
  const auto g = small_graph();
  EXPECT_NEAR(g.contact_rate(1.0), 8.0 / 4.0 / 50.0, 1e-12);
  // Directed graphs log once.
  TemporalGraph d(4, small_graph().contacts_vector(), true);
  EXPECT_NEAR(d.contact_rate(1.0), 4.0 / 4.0 / 50.0, 1e-12);
}

TEST(TemporalGraph, ContactsOfNode) {
  const auto g = small_graph();
  EXPECT_EQ(g.contacts_of(0).size(), 2u);
  EXPECT_EQ(g.contacts_of(1).size(), 3u);
  EXPECT_EQ(g.contacts_of(3).size(), 1u);
  EXPECT_THROW(g.contacts_of(99), std::out_of_range);
}

TEST(TemporalGraph, ContactsOfIsTimeOrdered) {
  const auto g = small_graph();
  const auto idx = g.contacts_of(1);
  for (std::size_t i = 1; i < idx.size(); ++i)
    EXPECT_LE(g.contacts()[idx[i - 1]].begin, g.contacts()[idx[i]].begin);
}

TEST(TemporalGraph, NextContactTime) {
  const auto g = small_graph();
  // Before any contact: first contact of node 0 begins at 10.
  EXPECT_DOUBLE_EQ(g.next_contact_time(0, 0.0), 10.0);
  // During a contact: "now".
  EXPECT_DOUBLE_EQ(g.next_contact_time(0, 15.0), 15.0);
  // Between contacts.
  EXPECT_DOUBLE_EQ(g.next_contact_time(0, 25.0), 50.0);
  // After everything: never again.
  EXPECT_EQ(g.next_contact_time(0, 70.0), kInf);
}

TEST(TemporalGraph, ConnectedPairs) {
  const auto g = small_graph();
  EXPECT_EQ(g.num_connected_pairs(), 3u);  // (0,1), (1,2), (2,3)
}

TEST(TemporalGraph, ContactDurations) {
  const auto g = small_graph();
  const auto d = g.contact_durations();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 10.0);
}

// Regression: end_time used to be seeded from 0.0 instead of the first
// contact, so an all-negative-time trace (e.g. an epoch-shifted import)
// reported end_time() == 0, inflating duration() and corrupting
// contact_rate() and the default CDF window.
TEST(TemporalGraph, AllNegativeTimesReportExactSpan) {
  TemporalGraph g(3, {{0, 1, -100.0, -90.0},
                      {1, 2, -80.0, -50.0},
                      {0, 2, -75.0, -60.0}});
  EXPECT_DOUBLE_EQ(g.start_time(), -100.0);
  EXPECT_DOUBLE_EQ(g.end_time(), -50.0);
  EXPECT_DOUBLE_EQ(g.duration(), 50.0);
  // 3 contacts, both endpoints logging, 3 nodes, 50 s span.
  EXPECT_DOUBLE_EQ(g.contact_rate(50.0), 2.0);
}

TEST(TemporalGraph, NegativeSpanInvariantUnderTimeShift) {
  const std::vector<Contact> base{{0, 1, 10.0, 20.0}, {1, 2, 15.0, 45.0}};
  const TemporalGraph g(3, base);
  std::vector<Contact> shifted = base;
  for (Contact& c : shifted) {
    c.begin -= 1e6;
    c.end -= 1e6;
  }
  const TemporalGraph h(3, shifted);
  EXPECT_DOUBLE_EQ(h.duration(), g.duration());
  EXPECT_DOUBLE_EQ(h.contact_rate(1.0), g.contact_rate(1.0));
}

}  // namespace
}  // namespace odtn
