#include "core/path_enumeration.hpp"

#include <gtest/gtest.h>

#include "core/optimal_paths.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

TEST(PathEnumeration, UnreachableGivesNoRoutes) {
  TemporalGraph g(3, {{0, 1, 0.0, 1.0}});
  EXPECT_TRUE(enumerate_optimal_routes(g, 0, 2).empty());
}

TEST(PathEnumeration, SingleDirectRoute) {
  TemporalGraph g(2, {{0, 1, 3.0, 9.0}});
  const auto routes = enumerate_optimal_routes(g, 0, 1);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_DOUBLE_EQ(routes[0].pair.ld, 9.0);
  EXPECT_DOUBLE_EQ(routes[0].pair.ea, 3.0);
  ASSERT_EQ(routes[0].hops(), 1);
  EXPECT_EQ(routes[0].contact_indices[0], 0u);
}

TEST(PathEnumeration, StoreAndForwardRoute) {
  TemporalGraph g(3, {{0, 1, 0.0, 2.0}, {1, 2, 5.0, 7.0}});
  const auto routes = enumerate_optimal_routes(g, 0, 2);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_DOUBLE_EQ(routes[0].pair.ld, 2.0);
  EXPECT_DOUBLE_EQ(routes[0].pair.ea, 5.0);
  EXPECT_EQ(routes[0].hops(), 2);
}

TEST(PathEnumeration, OneRoutePerParetoPair) {
  TemporalGraph g(3, {{0, 2, 10.0, 11.0},   // late direct
                      {0, 1, 0.0, 1.0},
                      {1, 2, 2.0, 3.0}});   // early relay route
  const auto routes = enumerate_optimal_routes(g, 0, 2);
  ASSERT_EQ(routes.size(), 2u);
  // Ordered by departure: relay route first, direct second.
  EXPECT_EQ(routes[0].hops(), 2);
  EXPECT_EQ(routes[1].hops(), 1);
  EXPECT_LT(routes[0].pair.ld, routes[1].pair.ld);
}

class PathEnumerationRandom : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PathEnumerationRandom, RoutesRealizeTheirPairs) {
  SyntheticTraceSpec spec;
  spec.num_internal = 12;
  spec.duration = kDay;
  spec.pair_contacts_mean = 1.0;
  spec.num_communities = 3;
  spec.gatherings = {40.0, 0.4, 0.1, 10 * kMinute, 0.8, 0.1};
  const auto g = generate_trace(spec, GetParam()).graph;

  SingleSourceEngine engine(g, 0);
  engine.run_to_fixpoint();
  for (NodeId dst = 1; dst < g.num_nodes(); ++dst) {
    const auto routes = enumerate_optimal_routes(g, 0, dst);
    ASSERT_EQ(routes.size(), engine.frontier(dst).size()) << "dst=" << dst;
    for (const auto& route : routes) {
      ASSERT_FALSE(route.contact_indices.empty());
      // The explicit sequence is time-respecting, starts at the source,
      // ends at the destination, and relays consistently.
      std::vector<Contact> seq;
      for (std::size_t idx : route.contact_indices)
        seq.push_back(g.contacts()[idx]);
      ASSERT_TRUE(is_time_respecting(seq));
      ASSERT_TRUE(seq.front().u == 0 || seq.front().v == 0);
      ASSERT_TRUE(seq.back().u == dst || seq.back().v == dst);
      NodeId at = 0;
      for (const Contact& c : seq) {
        ASSERT_TRUE(c.u == at || c.v == at) << "broken relay chain";
        at = (c.u == at) ? c.v : c.u;
      }
      ASSERT_EQ(at, dst);
      // The route achieves its pair's arrival when created at
      // min(LD, EA): the flooding-optimal delivery for that time.
      const double t0 = std::min(route.pair.ld, route.pair.ea);
      const PathPair realized = summarize_sequence(seq);
      ASSERT_LE(std::max(t0, realized.ea), route.pair.ea + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathEnumerationRandom,
                         ::testing::Values(2u, 33u, 444u));

TEST(PathEnumeration, RouteHopsAreMinimalForTheirArrival) {
  // Route hop counts never exceed the DP fixpoint level.
  SyntheticTraceSpec spec;
  spec.num_internal = 10;
  spec.duration = kDay;
  spec.pair_contacts_mean = 2.0;
  const auto g = generate_trace(spec, 5).graph;
  SingleSourceEngine engine(g, 0);
  const int fixpoint = engine.run_to_fixpoint();
  for (NodeId dst = 1; dst < g.num_nodes(); ++dst) {
    for (const auto& route : enumerate_optimal_routes(g, 0, dst))
      EXPECT_LE(route.hops(), fixpoint);
  }
}

}  // namespace
}  // namespace odtn
