// Tests of the hop-indexed optimal-path engine on hand-built temporal
// graphs with known answers.
#include "core/optimal_paths.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ExtendFrontier, IdentityThroughContactGivesContactPair) {
  DeliveryFunction identity;
  identity.insert({kInf, -kInf});
  DeliveryFunction out;
  EXPECT_TRUE(extend_frontier(identity, 3.0, 8.0, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.pairs()[0].ld, 8.0);
  EXPECT_DOUBLE_EQ(out.pairs()[0].ea, 3.0);
}

TEST(ExtendFrontier, RespectsConcatenationCondition) {
  DeliveryFunction from;
  from.insert({5.0, 4.0});  // arrives earliest at 4
  DeliveryFunction out;
  // Contact ends at 3 < EA(4): concatenation impossible.
  EXPECT_FALSE(extend_frontier(from, 1.0, 3.0, out));
  EXPECT_TRUE(out.empty());
}

TEST(ExtendFrontier, ComposesMinMax) {
  DeliveryFunction from;
  from.insert({5.0, 3.0});
  DeliveryFunction out;
  ASSERT_TRUE(extend_frontier(from, 7.0, 9.0, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.pairs()[0].ld, 5.0);  // min(5, 9)
  EXPECT_DOUBLE_EQ(out.pairs()[0].ea, 7.0);  // max(3, 7)
}

TEST(ExtendFrontier, ManyPairsKeepsOnlyUseful) {
  DeliveryFunction from;
  from.insert({5.0, 1.0});
  from.insert({10.0, 7.0});
  from.insert({20.0, 15.0});
  from.insert({30.0, 25.0});
  DeliveryFunction out;
  // Contact [8, 18]: usable by pairs with EA <= 18 (first three).
  ASSERT_TRUE(extend_frontier(from, 8.0, 18.0, out));
  // Candidates: (min(5,18), max(1,8))  = (5, 8)
  //             (min(10,18), max(7,8)) = (10, 8)  -- dominates (5, 8)
  //             (min(20,18), 15)       = (18, 15)
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.pairs()[0].ld, 10.0);
  EXPECT_DOUBLE_EQ(out.pairs()[0].ea, 8.0);
  EXPECT_DOUBLE_EQ(out.pairs()[1].ld, 18.0);
  EXPECT_DOUBLE_EQ(out.pairs()[1].ea, 15.0);
}

TEST(Engine, DirectContactAtLevelOne) {
  TemporalGraph g(3, {{0, 1, 2.0, 5.0}});
  SingleSourceEngine e(g, 0);
  EXPECT_EQ(e.hops(), 0);
  EXPECT_TRUE(e.frontier(1).empty());
  EXPECT_TRUE(e.step());
  EXPECT_EQ(e.hops(), 1);
  ASSERT_EQ(e.frontier(1).size(), 1u);
  EXPECT_DOUBLE_EQ(e.frontier(1).pairs()[0].ld, 5.0);
  EXPECT_DOUBLE_EQ(e.frontier(1).pairs()[0].ea, 2.0);
  EXPECT_TRUE(e.frontier(2).empty());  // two hops away
}

TEST(Engine, UndirectedContactsWorkBothWays) {
  TemporalGraph g(2, {{1, 0, 2.0, 5.0}});
  SingleSourceEngine e(g, 0);
  e.step();
  EXPECT_FALSE(e.frontier(1).empty());
}

TEST(Engine, DirectedContactsOneWayOnly) {
  TemporalGraph g(2, {{1, 0, 2.0, 5.0}}, /*directed=*/true);
  SingleSourceEngine e(g, 0);
  e.run_to_fixpoint();
  EXPECT_TRUE(e.frontier(1).empty());  // contact points 1 -> 0 only
  SingleSourceEngine r(g, 1);
  r.run_to_fixpoint();
  EXPECT_FALSE(r.frontier(0).empty());
}

TEST(Engine, TwoHopStoreAndForward) {
  // 0 meets 1 during [0, 2]; later 1 meets 2 during [4, 6].
  TemporalGraph g(3, {{0, 1, 0.0, 2.0}, {1, 2, 4.0, 6.0}});
  SingleSourceEngine e(g, 0);
  e.step();
  EXPECT_TRUE(e.frontier(2).empty());
  e.step();
  ASSERT_EQ(e.frontier(2).size(), 1u);
  EXPECT_DOUBLE_EQ(e.frontier(2).pairs()[0].ld, 2.0);
  EXPECT_DOUBLE_EQ(e.frontier(2).pairs()[0].ea, 4.0);
  // Message created at 1 is delivered at 4; at 3 it is too late.
  EXPECT_DOUBLE_EQ(e.frontier(2).deliver_at(1.0), 4.0);
  EXPECT_EQ(e.frontier(2).deliver_at(3.0), kInf);
}

TEST(Engine, ContemporaneousChainNeedsMultipleLevelsButWorks) {
  // Overlapping contacts 0-1 [0,10], 1-2 [0,10], 2-3 [0,10]: a message
  // can cross all three instantly (long-contact case), using 3 hops.
  TemporalGraph g(4, {{0, 1, 0.0, 10.0}, {1, 2, 0.0, 10.0}, {2, 3, 0.0, 10.0}});
  SingleSourceEngine e(g, 0);
  e.step();
  EXPECT_TRUE(e.frontier(3).empty());
  e.step();
  EXPECT_TRUE(e.frontier(3).empty());
  e.step();
  ASSERT_FALSE(e.frontier(3).empty());
  EXPECT_DOUBLE_EQ(e.frontier(3).deliver_at(5.0), 5.0);  // instantaneous
  EXPECT_DOUBLE_EQ(e.frontier(3).pairs()[0].ld, 10.0);
  EXPECT_DOUBLE_EQ(e.frontier(3).pairs()[0].ea, 0.0);
}

TEST(Engine, BackwardInTimeRelayRejected) {
  // 1 meets 2 BEFORE 0 meets 1: no time-respecting path 0 -> 2.
  TemporalGraph g(3, {{1, 2, 0.0, 1.0}, {0, 1, 4.0, 6.0}});
  SingleSourceEngine e(g, 0);
  e.run_to_fixpoint();
  EXPECT_TRUE(e.frontier(2).empty());
}

TEST(Engine, FixpointDetected) {
  TemporalGraph g(3, {{0, 1, 0.0, 2.0}, {1, 2, 4.0, 6.0}});
  SingleSourceEngine e(g, 0);
  const int fixpoint = e.run_to_fixpoint();
  EXPECT_EQ(fixpoint, 2);  // nothing improves beyond 2 hops
  EXPECT_TRUE(e.at_fixpoint());
  EXPECT_FALSE(e.step());  // further steps are no-ops
}

TEST(Engine, ExtraHopsImproveDelayNotOnlyReachability) {
  // Direct contact 0-2 late at [10, 11]; relay route via 1 much earlier.
  TemporalGraph g(3, {{0, 2, 10.0, 11.0}, {0, 1, 0.0, 1.0}, {1, 2, 2.0, 3.0}});
  SingleSourceEngine e(g, 0);
  e.step();
  // One hop: only the late direct contact.
  EXPECT_DOUBLE_EQ(e.frontier(2).deliver_at(0.0), 10.0);
  e.step();
  // Two hops: the relay route delivers at 2.
  EXPECT_DOUBLE_EQ(e.frontier(2).deliver_at(0.0), 2.0);
  // But the direct pair must STILL be present (departing later than the
  // relay route allows): it serves start times in (1, 11].
  EXPECT_DOUBLE_EQ(e.frontier(2).deliver_at(5.0), 10.0);
  EXPECT_EQ(e.frontier(2).size(), 2u);
}

TEST(Engine, FrontiersGrowMonotonicallyWithHops) {
  TemporalGraph g(4, {{0, 1, 0.0, 1.0},
                      {1, 2, 2.0, 3.0},
                      {2, 3, 4.0, 5.0},
                      {0, 3, 8.0, 9.0}});
  SingleSourceEngine e(g, 0);
  std::vector<double> previous(4, kInf);
  while (e.step()) {
    for (NodeId v = 0; v < 4; ++v) {
      const double now = e.frontier(v).deliver_at(0.0);
      EXPECT_LE(now, previous[v]);  // more hops never hurt
      previous[v] = now;
    }
  }
}

TEST(Engine, SelfFrontierIsIdentity) {
  TemporalGraph g(2, {{0, 1, 0.0, 1.0}});
  SingleSourceEngine e(g, 0);
  e.run_to_fixpoint();
  EXPECT_DOUBLE_EQ(e.frontier(0).deliver_at(123.0), 123.0);
}

TEST(Engine, SourceOutOfRangeThrows) {
  TemporalGraph g(2, {});
  EXPECT_THROW(SingleSourceEngine(g, 5), std::out_of_range);
}

TEST(ComputeHopProfiles, CapturesRequestedBudgets) {
  TemporalGraph g(3, {{0, 1, 0.0, 2.0}, {1, 2, 4.0, 6.0}, {0, 2, 10.0, 12.0}});
  const auto profiles = compute_hop_profiles(g, 0, {1, 2, kUnboundedHops});
  ASSERT_EQ(profiles.size(), 3u);
  // 1 hop: only the direct contact to 2.
  EXPECT_DOUBLE_EQ(profiles[0][2].deliver_at(0.0), 10.0);
  // 2 hops: relay route delivers at 4.
  EXPECT_DOUBLE_EQ(profiles[1][2].deliver_at(0.0), 4.0);
  // Unbounded equals 2 hops here.
  EXPECT_EQ(profiles[2][2], profiles[1][2]);
}

TEST(ComputeHopProfiles, RejectsNonPositiveBudget) {
  TemporalGraph g(2, {});
  EXPECT_THROW(compute_hop_profiles(g, 0, {0}), std::invalid_argument);
}

TEST(Engine, TotalPairsCountsFrontiers) {
  TemporalGraph g(3, {{0, 1, 0.0, 2.0}, {1, 2, 4.0, 6.0}});
  SingleSourceEngine e(g, 0);
  e.run_to_fixpoint();
  // identity at source + one pair at node 1 + one pair at node 2.
  EXPECT_EQ(e.total_pairs(), 3u);
}

TEST(Engine, ResetMatchesFreshEngine) {
  TemporalGraph g(4, {{0, 1, 0.0, 1.0},
                      {1, 2, 2.0, 3.0},
                      {2, 3, 4.0, 5.0},
                      {0, 3, 8.0, 9.0}});
  SingleSourceEngine reused(g, 0);
  reused.run_to_fixpoint();
  for (NodeId src = 0; src < 4; ++src) {
    reused.reset(src);
    EXPECT_EQ(reused.hops(), 0);
    EXPECT_FALSE(reused.at_fixpoint());
    SingleSourceEngine fresh(g, src);
    const int fa = reused.run_to_fixpoint();
    const int fb = fresh.run_to_fixpoint();
    EXPECT_EQ(fa, fb) << "src " << src;
    for (NodeId v = 0; v < 4; ++v)
      EXPECT_EQ(reused.frontier(v), fresh.frontier(v))
          << "src " << src << " dst " << v;
  }
  // Counters: one construction, one reuse per reset.
  EXPECT_EQ(reused.stats().workspace_allocations, 1u);
  EXPECT_EQ(reused.stats().workspace_reuses, 4u);
}

TEST(Engine, ResetRejectsOutOfRangeSource) {
  TemporalGraph g(2, {{0, 1, 0.0, 1.0}});
  SingleSourceEngine e(g, 0);
  EXPECT_THROW(e.reset(7), std::out_of_range);
}

TEST(Engine, ChangeTrackingExposesExactDeltas) {
  // Relay route improves node 2's frontier at level 2 while the direct
  // late contact created it at level 1: last_changed() must name exactly
  // the nodes whose frontier changed, and previous_frontier(i) must be
  // the pre-merge state so old + published == new.
  TemporalGraph g(3, {{0, 2, 10.0, 11.0}, {0, 1, 0.0, 1.0}, {1, 2, 2.0, 3.0}});
  SingleSourceEngine e(g, 0, EngineMode::kIndexed);
  e.track_changes(true);

  e.step();  // level 1: nodes 1 and 2 gain their first pairs
  {
    const auto& changed = e.last_changed();
    ASSERT_EQ(changed.size(), 2u);
    for (std::size_t i = 0; i < changed.size(); ++i) {
      EXPECT_TRUE(e.previous_frontier(i).empty());  // born this level
      EXPECT_FALSE(e.frontier(changed[i]).empty());
    }
  }

  e.step();  // level 2: only node 2 improves (via the relay)
  {
    const auto& changed = e.last_changed();
    ASSERT_EQ(changed.size(), 1u);
    EXPECT_EQ(changed[0], NodeId{2});
    // Pre-change frontier: the single late direct pair.
    ASSERT_EQ(e.previous_frontier(0).size(), 1u);
    EXPECT_DOUBLE_EQ(e.previous_frontier(0).pairs()[0].ea, 10.0);
    // Post-change frontier: relay pair joined the direct pair.
    EXPECT_EQ(e.frontier(2).size(), 2u);
  }

  e.step();  // fixpoint: nothing changes
  EXPECT_TRUE(e.at_fixpoint());
  EXPECT_TRUE(e.last_changed().empty());
}

TEST(Engine, ChangeTrackingSurvivesReset) {
  TemporalGraph g(3, {{0, 1, 0.0, 1.0}, {1, 2, 2.0, 3.0}});
  SingleSourceEngine e(g, 0, EngineMode::kIndexed);
  e.track_changes(true);
  e.run_to_fixpoint();
  e.reset(2);
  e.step();
  // From source 2 the level-1 delta is node 1 (undirected contact).
  ASSERT_EQ(e.last_changed().size(), 1u);
  EXPECT_EQ(e.last_changed()[0], NodeId{1});
  EXPECT_TRUE(e.previous_frontier(0).empty());
}

TEST(Engine, ChangeTrackingRequiresIndexedMode) {
  TemporalGraph g(2, {{0, 1, 0.0, 1.0}});
  SingleSourceEngine e(g, 0, EngineMode::kLevelSweep);
  EXPECT_THROW(e.track_changes(true), std::logic_error);
}

}  // namespace
}  // namespace odtn
